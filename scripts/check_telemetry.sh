#!/usr/bin/env bash
# Schema check for the three telemetry exporter outputs:
#
#   check_telemetry.sh <metrics.prom> <trace.json> <flame.folded> [min_families] [expect_windows]
#
# - the metrics file must be valid Prometheus text exposition 0.0.4:
#   every sample line is `name{labels} <integer>`, every family carries
#   # HELP / # TYPE headers, and at least [min_families] (default 20)
#   distinct families spanning the pipeline, defense and supervisor
#   layers are present;
# - the trace file must be a well-formed Chrome trace-event JSON array
#   whose events all carry "ph" and "name" (Perfetto's loader rejects
#   anything less);
# - the folded flamegraph must be `stack <integer>` per line, and its
#   total weight must equal both the flame and pipeline cycle counters
#   in the metrics file — the profiler attributes every simulated
#   cycle, or it lies.
set -euo pipefail

metrics=${1:?usage: check_telemetry.sh metrics.prom trace.json flame.folded [min_families]}
trace=${2:?missing trace.json}
flame=${3:?missing flame.folded}
min_families=${4:-20}

fail() { echo "check_telemetry: $*" >&2; exit 1; }

[ -s "$metrics" ] || fail "$metrics is missing or empty"
[ -s "$trace" ] || fail "$trace is missing or empty"
[ -s "$flame" ] || fail "$flame is missing or empty"

# --- Prometheus text format -------------------------------------------

awk '
  /^#/ { next }
  /^$/ { next }
  # name, optional {labels}, single space, integer value
  !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+$/ {
    print "bad sample line: " $0; bad = 1
  }
  END { exit bad }
' "$metrics" || fail "$metrics has malformed sample lines"

families=$(awk '!/^#/ && !/^$/ { sub(/[{ ].*/, "", $0); print }' "$metrics" \
  | sed -e 's/_bucket$//' -e 's/_sum$//' -e 's/_count$//' | sort -u)
n_families=$(printf '%s\n' "$families" | sed '/^$/d' | wc -l)
[ "$n_families" -ge "$min_families" ] \
  || fail "only $n_families metric families (< $min_families)"

for layer in protean_pipeline_ protean_defense_ protean_harness_; do
  printf '%s\n' "$families" | grep -q "^$layer" \
    || fail "no $layer* family in $metrics"
done

# Build/host provenance rides the runtime registry, so it must be in
# every export regardless of what the run computed.
printf '%s\n' "$families" | grep -q '^protean_build_info$' \
  || fail "no protean_build_info family in $metrics"
grep -q '^protean_build_info{.*ocaml=' "$metrics" \
  || fail "protean_build_info missing its ocaml label"

# Optional: a run that collected the speculation-window ledger must
# export its counter families (pass expect_windows=1 to require them).
expect_windows=${5:-0}
if [ "$expect_windows" = 1 ]; then
  printf '%s\n' "$families" | grep -q '^protean_window_opened_total$' \
    || fail "no protean_window_opened_total family in $metrics"
  printf '%s\n' "$families" | grep -q '^protean_window_interventions_' \
    || fail "no protean_window_interventions_* family in $metrics"
fi

helped=$(grep -c '^# HELP ' "$metrics")
typed=$(grep -c '^# TYPE ' "$metrics")
[ "$helped" -ge 1 ] && [ "$typed" -ge 1 ] || fail "missing HELP/TYPE headers"
[ "$helped" -eq "$typed" ] || fail "HELP/TYPE header counts differ"

# --- Chrome trace-event JSON ------------------------------------------

if command -v python3 >/dev/null 2>&1; then
  python3 - "$trace" <<'EOF' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    events = json.load(f)
assert isinstance(events, list) and events, "trace is not a non-empty array"
for e in events:
    assert "ph" in e and "name" in e, f"event missing ph/name: {e}"
    assert e["ph"] in ("X", "i", "C", "M"), f"unknown phase: {e['ph']}"
print(f"trace ok: {len(events)} events")
EOF
else
  # No python3: at least require the array shape and a phase field.
  head -c 1 "$trace" | grep -q '\[' || fail "$trace does not start with ["
  grep -q '"ph":' "$trace" || fail "$trace has no phase fields"
  echo "trace ok (shallow check; python3 unavailable)"
fi

# --- folded flamegraph -------------------------------------------------

awk '
  !/^[^ ]+ [0-9]+$/ { print "bad folded line: " $0; bad = 1 }
  END { exit bad }
' "$flame" || fail "$flame has malformed folded lines"

flame_total=$(awk '{ sum += $NF } END { print sum + 0 }' "$flame")
metric_flame=$(awk '!/^#/ && $1 ~ /^protean_flame_cycles_total/ { sum += $NF } END { print sum + 0 }' "$metrics")
metric_cycles=$(awk '!/^#/ && $1 ~ /^protean_pipeline_cycles_total/ { sum += $NF } END { print sum + 0 }' "$metrics")

[ "$flame_total" -gt 0 ] || fail "flamegraph total is zero"
[ "$flame_total" -eq "$metric_flame" ] \
  || fail "folded total $flame_total != protean_flame_cycles_total $metric_flame"
[ "$flame_total" -eq "$metric_cycles" ] \
  || fail "folded total $flame_total != protean_pipeline_cycles_total $metric_cycles"

echo "check_telemetry: ok ($n_families families, flame total $flame_total cycles)"
