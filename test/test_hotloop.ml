(* Hot-loop regression suite.

   Two halves:

   - hook-bus semantics under re-registration: [emit] iterates a
     snapshot, so a handler that unsubscribes (itself or a peer) or
     subscribes mid-delivery must not disturb the in-flight emission,
     and the change must be visible from the next emission on;
     unsubscribing the last subscriber of a kind must clear its
     interest bit so the guarded emission sites go back to the
     zero-cost path;

   - the paranoid scheduler cross-check: with --paranoid-sched the
     pipeline re-derives every scheduler index (unissued list, branch
     list, in-flight queue, LSQ queues, wakeup chains, dormancy) from a
     brute-force ROB scan each cycle and faults on any mismatch.  The
     whole golden corpus must run to completion under it and still
     reproduce the recorded lines bit-for-bit — the O(active) indexes
     are exactly the sets the scans would compute. *)

module Hooks = Protean_ooo.Hooks
module Pipeline = Protean_ooo.Pipeline
module Golden = Protean_harness.Golden
module E = Protean_harness.Experiment
module Suite = Protean_workloads.Suite
module Protcc = Protean_protcc.Protcc
module Config = Protean_ooo.Config
module Defense = Protean_defense.Defense
module Spec_window = Protean_ooo.Spec_window
module S = Protean_ooo.Pipeline_state
module Rob_entry = Protean_ooo.Rob_entry
module Insn = Protean_isa.Insn
module Reg = Protean_isa.Reg

(* --- Hook bus re-registration semantics ------------------------------ *)

let test_unsubscribe_during_emit () =
  let bus : unit Hooks.t = Hooks.create () in
  let log = ref [] in
  let seen name = log := name :: !log in
  Hooks.subscribe bus ~name:"a" (fun () _ ->
      seen "a";
      (* Unsubscribe a peer later in the array and ourselves: both must
         still be delivered to for *this* emission. *)
      Hooks.unsubscribe bus "b";
      Hooks.unsubscribe bus "a");
  Hooks.subscribe bus ~name:"b" (fun () _ -> seen "b");
  Hooks.emit bus () Hooks.On_cycle_end;
  Alcotest.(check (list string))
    "first emission delivers to the snapshot" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (list string)) "both gone afterwards" [] (Hooks.subscribers bus);
  log := [];
  Hooks.emit bus () Hooks.On_cycle_end;
  Alcotest.(check (list string)) "second emission delivers to nobody" [] !log

let test_subscribe_during_emit () =
  let bus : unit Hooks.t = Hooks.create () in
  let log = ref [] in
  Hooks.subscribe bus ~name:"a" (fun () _ ->
      log := "a" :: !log;
      if not (List.mem "late" (Hooks.subscribers bus)) then
        Hooks.subscribe bus ~name:"late" (fun () _ -> log := "late" :: !log));
  Hooks.emit bus () Hooks.On_cycle_end;
  Alcotest.(check (list string))
    "new subscriber not delivered to mid-flight" [ "a" ] (List.rev !log);
  Hooks.emit bus () Hooks.On_cycle_end;
  Alcotest.(check (list string))
    "visible from the next emission" [ "a"; "a"; "late" ]
    (List.sort compare !log)

let test_interest_mask_clearing () =
  let bus : unit Hooks.t = Hooks.create () in
  Alcotest.(check bool) "empty bus wants nothing" false
    (Hooks.wanted bus Hooks.k_stage);
  Hooks.subscribe bus ~name:"p1" ~kinds:[ Hooks.k_stage ] (fun () _ -> ());
  Hooks.subscribe bus ~name:"p2"
    ~kinds:[ Hooks.k_stage; Hooks.k_cycle_end ]
    (fun () _ -> ());
  Alcotest.(check bool) "k_stage wanted" true (Hooks.wanted bus Hooks.k_stage);
  Alcotest.(check bool) "k_cycle_end wanted" true
    (Hooks.wanted bus Hooks.k_cycle_end);
  Alcotest.(check bool) "undeclared kind not wanted" false
    (Hooks.wanted bus Hooks.k_fetch);
  Hooks.unsubscribe bus "p2";
  Alcotest.(check bool) "k_stage still wanted (p1 remains)" true
    (Hooks.wanted bus Hooks.k_stage);
  Alcotest.(check bool) "k_cycle_end bit cleared with its last subscriber"
    false
    (Hooks.wanted bus Hooks.k_cycle_end);
  Hooks.unsubscribe bus "p1";
  Alcotest.(check bool) "all bits cleared" false
    (Hooks.wanted bus Hooks.k_stage)

let test_mask_filtering () =
  let bus : unit Hooks.t = Hooks.create () in
  let got = ref 0 in
  Hooks.subscribe bus ~name:"narrow" ~kinds:[ Hooks.k_cycle_end ] (fun () _ ->
      incr got);
  Hooks.emit bus () Hooks.On_machine_clear;
  Alcotest.(check int) "undeclared kind filtered out" 0 !got;
  Hooks.emit bus () Hooks.On_cycle_end;
  Alcotest.(check int) "declared kind delivered" 1 !got

(* --- Paranoid scheduler cross-check over the golden corpus ----------- *)

let expected_file () =
  List.find Sys.file_exists
    [
      "golden_pipeline.expected";
      "test/golden_pipeline.expected";
      Filename.concat (Filename.dirname Sys.executable_name)
        "golden_pipeline.expected";
    ]

let read_expected () =
  let ic = open_in (expected_file ()) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_paranoid_golden () =
  Pipeline.set_paranoid_sched true;
  Fun.protect
    ~finally:(fun () -> Pipeline.set_paranoid_sched false)
    (fun () ->
      let expected = read_expected () in
      let actual = Golden.lines () in
      Alcotest.(check int) "corpus size" (List.length expected)
        (List.length actual);
      List.iteri
        (fun i (e, a) ->
          Alcotest.(check string) (Printf.sprintf "paranoid cell %d" i) e a)
        (List.combine expected actual))

(* The width corpus under the paranoid checker exercises the structural
   invariants the plain corpus cannot: port binding/oversubscription and
   the writeback-budget bound only fire on [Config.ports] configs. *)
let test_paranoid_width () =
  Pipeline.set_paranoid_sched true;
  Fun.protect
    ~finally:(fun () -> Pipeline.set_paranoid_sched false)
    (fun () ->
      List.iteri
        (fun i line ->
          Alcotest.(check bool)
            (Printf.sprintf "paranoid width cell %d nonempty" i)
            true
            (String.length line > 0))
        (Golden.width_lines ()))

(* --- Shared-frontend batch vs per-cell equivalence ------------------- *)

(* A mixed-defense grid slice: the base-binary defenses (unsafe, STT,
   SPT-SB) share one frontend per benchmark, each ProtCC pass gets one
   per (benchmark, pass) — several groups, each spanning multiple
   cells. *)
let grid_slice () =
  let bn = Suite.find "ossl.bnexp" in
  let bear = Suite.find "bearssl" in
  let config = Config.test_core in
  [
    E.spec ~config bn E.cfg_unsafe;
    E.spec ~config bn E.cfg_stt;
    E.spec ~config bn E.cfg_spt_sb;
    E.spec ~config bn (E.protean_cfg `Track Protcc.P_unr);
    E.spec ~config bn (E.protean_cfg `Delay Protcc.P_unr);
    E.spec ~config bear E.cfg_unsafe;
    E.spec ~config bear (E.protean_cfg `Track Protcc.P_ct);
  ]

let with_sharing v f =
  let saved = !E.share_frontend in
  E.share_frontend := v;
  Fun.protect ~finally:(fun () -> E.share_frontend := saved) f

(* Every observable of a cell must be identical whether its frontend
   came from the shared cache or was built per cell. *)
let test_shared_frontend_equivalence () =
  let specs = grid_slice () in
  let shared = with_sharing true (fun () -> List.map E.compute specs) in
  let solo = with_sharing false (fun () -> List.map E.compute specs) in
  List.iteri
    (fun i ((sh : E.run_result), (so : E.run_result)) ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d cycles" i)
        true
        (compare sh.E.cycles so.E.cycles = 0);
      Alcotest.(check bool)
        (Printf.sprintf "cell %d stats" i)
        true (sh.E.stats = so.E.stats);
      Alcotest.(check bool)
        (Printf.sprintf "cell %d code size" i)
        true
        (compare sh.E.code_size_ratio so.E.code_size_ratio = 0);
      Alcotest.(check int)
        (Printf.sprintf "cell %d moves" i)
        so.E.inserted_moves sh.E.inserted_moves;
      Alcotest.(check string)
        (Printf.sprintf "cell %d per-cell run untagged" i)
        "" so.E.frontend)
    (List.combine shared solo);
  (* ... and the shared run really did group: every cell tagged with
     its frontend key, strictly fewer groups than cells. *)
  let tags = List.map (fun (r : E.run_result) -> r.E.frontend) shared in
  List.iteri
    (fun i t ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d tagged" i)
        true (t <> ""))
    tags;
  Alcotest.(check bool) "frontends shared across cells" true
    (List.length (List.sort_uniq compare tags) < List.length tags)

(* Batched parallel prewarm (frontend groups as scheduling units) must
   land exactly the serial per-cell results in the session cache. *)
let test_shared_frontend_prewarm () =
  let specs = grid_slice () in
  let gen session () = List.iter (fun s -> ignore (E.run session s)) specs in
  let serial = E.create_session () in
  gen serial ();
  let par = E.create_session () in
  E.prewarm ~jobs:2 par (gen par);
  Alcotest.(check int) "cell count" (Hashtbl.length serial.E.cache)
    (Hashtbl.length par.E.cache);
  Hashtbl.iter
    (fun k (r : E.run_result) ->
      match Hashtbl.find_opt par.E.cache k with
      | None -> Alcotest.fail ("missing cell " ^ k)
      | Some (r' : E.run_result) ->
          Alcotest.(check bool) (k ^ " identical") true
            (compare r.E.cycles r'.E.cycles = 0
            && r.E.stats = r'.E.stats
            && compare r.E.code_size_ratio r'.E.code_size_ratio = 0
            && r.E.inserted_moves = r'.E.inserted_moves
            && String.equal r.E.frontend r'.E.frontend))
    serial.E.cache

(* --- Speculation-window ledger: free when detached ------------------- *)

let window_workload () =
  let b = Suite.find "bearssl" in
  match b.Suite.kind with
  | Suite.Single f -> f ()
  | Suite.Multi _ -> assert false

let window_fuel = 400_000

let window_drive t =
  while (not (Pipeline.is_done t)) && t.S.cycle < window_fuel do
    Pipeline.step ~until:window_fuel t
  done

(* A fresh pipeline (default stats subscriber only) must not want either
   window kind: the On_window_* emission sites stay on their guarded
   zero-cost path unless a ledger subscribes. *)
let test_window_kinds_unwatched () =
  let d = Defense.find "prot-track" in
  let t =
    Pipeline.create Config.test_core (d.Defense.make ()) (window_workload ())
      ~overlays:[]
  in
  Alcotest.(check bool) "k_window_open not wanted" false
    (S.wants t Hooks.k_window_open);
  Alcotest.(check bool) "k_window_close not wanted" false
    (S.wants t Hooks.k_window_close);
  let led = Spec_window.attach t in
  Alcotest.(check bool) "attached ledger wants window-open" true
    (S.wants t Hooks.k_window_open);
  Spec_window.detach t led;
  Alcotest.(check bool) "detach clears the interest bit" false
    (S.wants t Hooks.k_window_open)

(* The guarded emission pattern of the real sites (stage_rename /
   stage_issue_exec / squash): with no On_window_* subscriber the guard
   is one load and a bit test — a million un-wanted emissions must
   allocate zero minor words per iteration (only the two Gc probes'
   boxed floats show up). *)
let test_window_guard_alloc_free () =
  let bus : unit Hooks.t = Hooks.create () in
  Hooks.subscribe bus ~name:"other" ~kinds:[ Hooks.k_cycle_end ] (fun () _ ->
      ());
  let e =
    Rob_entry.create ~seq:0 ~pc:0
      ~insn:(Insn.make (Insn.Binop (Insn.Add, Reg.of_int 0, Insn.Imm 1L)))
      ~t_fetch:0 ()
  in
  let sink = ref 0 in
  let g0 = Gc.minor_words () in
  for _ = 1 to 1_000_000 do
    if Hooks.wanted bus Hooks.k_window_open then begin
      incr sink;
      Hooks.emit bus () (Hooks.On_window_open e)
    end;
    if Hooks.wanted bus Hooks.k_window_close then begin
      incr sink;
      Hooks.emit bus ()
        (Hooks.On_window_close { entry = e; cause = Hooks.W_resolved })
    end
  done;
  let g1 = Gc.minor_words () in
  Alcotest.(check int) "no emission fired" 0 !sink;
  Alcotest.(check bool)
    (Printf.sprintf "un-wanted window emissions allocation-free (%.0f words)"
       (g1 -. g0))
    true
    (g1 -. g0 < 64.)

(* Attaching the ledger must be observationally transparent to the
   simulation: identical cycle count and identical stats, with the
   ledger itself seeing the speculation the workload is known to have. *)
let test_window_ledger_transparent () =
  let d = Defense.find "prot-track" in
  let program = window_workload () in
  let make () =
    Pipeline.create Config.test_core (d.Defense.make ()) program ~overlays:[]
  in
  let plain = make () in
  window_drive plain;
  let t = make () in
  let led = Spec_window.attach t in
  window_drive t;
  Spec_window.detach t led;
  Alcotest.(check int) "cycles identical" plain.S.cycle t.S.cycle;
  Alcotest.(check bool) "stats identical with ledger attached" true
    (plain.S.stats = t.S.stats);
  let c = Spec_window.counters led in
  let n name = match List.assoc_opt name c with Some v -> v | None -> 0 in
  Alcotest.(check bool) "ledger saw windows" true (n "windows_opened" > 0);
  Alcotest.(check int) "every window accounted"
    (n "windows_opened")
    (n "windows_resolved" + n "windows_mispredicted" + n "windows_flushed"
   + n "windows_unclosed")

let tests =
  [
    Alcotest.test_case "hooks: unsubscribe during emit" `Quick
      test_unsubscribe_during_emit;
    Alcotest.test_case "hooks: subscribe during emit" `Quick
      test_subscribe_during_emit;
    Alcotest.test_case "hooks: interest bits track subscribers" `Quick
      test_interest_mask_clearing;
    Alcotest.test_case "hooks: per-subscriber kind filtering" `Quick
      test_mask_filtering;
    Alcotest.test_case "window ledger: kinds unwatched by default" `Quick
      test_window_kinds_unwatched;
    Alcotest.test_case "window ledger: un-wanted emission allocation-free"
      `Quick test_window_guard_alloc_free;
    Alcotest.test_case "window ledger: attach is observationally transparent"
      `Quick test_window_ledger_transparent;
    Alcotest.test_case "paranoid scheduler cross-check (golden corpus)" `Slow
      test_paranoid_golden;
    Alcotest.test_case "paranoid structural-port cross-check (width corpus)"
      `Slow test_paranoid_width;
    Alcotest.test_case "shared frontend: batch == per-cell" `Slow
      test_shared_frontend_equivalence;
    Alcotest.test_case "shared frontend: prewarm batches == serial" `Slow
      test_shared_frontend_prewarm;
  ]
