let () =
  Alcotest.run "protean"
    [
      ("isa", Test_isa.tests);
      ("arch", Test_arch.tests);
      ("protcc", Test_protcc.tests);
      ("certify", Test_certify.tests);
      ("ooo", Test_ooo.tests);
      ("defense", Test_defense.tests);
      ("workloads", Test_workloads.tests);
      ("amulet", Test_amulet.tests);
      ("harness", Test_harness.tests);
      ("edge", Test_edge.tests);
      ("robustness", Test_robustness.tests);
      (* golden runs its width corpus under a supervised two-shard grid,
         so it must precede the supervisor suite: the latter's final test
         sets PROTEAN_NO_SPAWN=1 for the rest of the process. *)
      ("golden", Test_golden.tests);
      ("supervisor", Test_supervisor.tests);
      ("transport", Test_transport.tests);
      ("telemetry", Test_telemetry.tests);
      ("hotloop", Test_hotloop.tests);
    ]
