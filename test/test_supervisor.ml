(* Shard-supervisor tests: the JSON wire format, the frame codec, shard
   splitting, checkpoint persistence, the lifecycle event bus, and the
   supervision state machine itself — driven through the [?spawn]
   transport hook with in-process (domain-backed) fake workers, so
   crash / stall / poison scenarios run deterministically without
   exec'ing real subprocesses. *)

module Supervisor = Protean_harness.Supervisor
module Shard = Protean_harness.Shard
module Json = Protean_harness.Shard.Json

(* --- JSON round-trips -------------------------------------------------- *)

let roundtrip j = Json.of_string (Json.to_string j)

let test_json_roundtrip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-123456789);
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \"quotes\" \\ back\nnew\ttab";
      Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("xs", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (Json.to_string j))
        true
        (roundtrip j = j))
    cases

(* Floats must survive the wire bit-exactly: the supervised merge is
   only byte-identical to the serial run if %.17g loses nothing. *)
let test_json_float_exact () =
  let floats = [ 0.1; 1.0 /. 3.0; 1e-300; -2.5e17; 0.0; 1.0000000000000002 ] in
  List.iter
    (fun f ->
      match roundtrip (Json.Float f) with
      | Json.Float g ->
          Alcotest.(check bool)
            (Printf.sprintf "float %h exact" f)
            true
            (Int64.bits_of_float f = Int64.bits_of_float g)
      | Json.Int i ->
          (* Integral floats may come back as ints; the value is what
             must be preserved. *)
          Alcotest.(check (float 0.0)) "integral float" f (float_of_int i)
      | _ -> Alcotest.fail "float did not parse back as a number")
    floats;
  (match roundtrip (Json.Float Float.nan) with
  | Json.Float g -> Alcotest.(check bool) "nan survives" true (Float.is_nan g)
  | _ -> Alcotest.fail "nan did not round-trip");
  match (roundtrip (Json.Float Float.infinity),
         roundtrip (Json.Float Float.neg_infinity)) with
  | Json.Float a, Json.Float b ->
      Alcotest.(check bool) "inf survives" true (a = Float.infinity);
      Alcotest.(check bool) "-inf survives" true (b = Float.neg_infinity)
  | _ -> Alcotest.fail "infinities did not round-trip"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | _ -> Alcotest.fail (Printf.sprintf "accepted garbage: %s" s)
      | exception Json.Parse _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "nul"; "\"unterminated"; "{}junk" ]

(* --- frame codec ------------------------------------------------------- *)

let sample_frames =
  [
    Shard.F_work
      [ { Shard.c_id = 0; c_key = "milc/stt" }; { Shard.c_id = 7; c_key = "lbm" } ];
    Shard.F_hb 3;
    Shard.F_result (7, Json.Obj [ ("cycles", Json.Int 123) ]);
    Shard.F_cellfault { fc_id = 2; fc_reason = "watchdog: commit stall" };
    Shard.F_log "[prewarm] 3/9 cells";
    Shard.F_done;
    Shard.F_exit;
  ]

(* Feed the concatenated encoding through the incremental decoder one
   byte at a time: frame boundaries never align with reads in practice. *)
let test_frame_decoder_byte_at_a_time () =
  let bytes =
    String.concat ""
      (List.map (fun f -> Bytes.to_string (Shard.encode_frame f)) sample_frames)
  in
  let dec = Shard.Decoder.create () in
  let out = ref [] in
  String.iter
    (fun c ->
      Shard.Decoder.feed dec (Bytes.make 1 c) 0 1;
      let rec pop () =
        match Shard.Decoder.next dec with
        | Some f ->
            out := f :: !out;
            pop ()
        | None -> ()
      in
      pop ())
    bytes;
  Alcotest.(check int) "all frames decoded" (List.length sample_frames)
    (List.length !out);
  Alcotest.(check bool) "frames identical" true (List.rev !out = sample_frames);
  Alcotest.(check int) "no leftover bytes" 0 (Shard.Decoder.pending_bytes dec)

let test_frame_decoder_truncation_pending () =
  let b = Shard.encode_frame (Shard.F_hb 1) in
  let dec = Shard.Decoder.create () in
  Shard.Decoder.feed dec b 0 (Bytes.length b - 2);
  Alcotest.(check bool) "incomplete frame not produced" true
    (Shard.Decoder.next dec = None);
  Alcotest.(check bool) "truncation visible" true
    (Shard.Decoder.pending_bytes dec > 0)

(* --- shard splitting --------------------------------------------------- *)

let cells_of n = List.init n (fun i -> { Shard.c_id = i; c_key = "k" ^ string_of_int i })

let test_split_shards () =
  List.iter
    (fun (shards, n) ->
      let parts = Supervisor.split_shards shards (cells_of n) in
      let flat = List.concat parts in
      Alcotest.(check int)
        (Printf.sprintf "%d cells / %d shards: nothing lost" n shards)
        n (List.length flat);
      Alcotest.(check bool) "order preserved (contiguous ranges)" true
        (List.map (fun c -> c.Shard.c_id) flat = List.init n Fun.id);
      Alcotest.(check bool) "no empty shard" true
        (List.for_all (fun p -> p <> []) parts);
      Alcotest.(check bool) "balanced within one" true
        (match parts with
        | [] -> n = 0
        | _ ->
            let sizes = List.map List.length parts in
            List.fold_left max 0 sizes - List.fold_left min n sizes <= 1))
    [ (1, 5); (2, 5); (3, 9); (4, 2); (8, 3); (2, 0) ]

(* --- checkpoints ------------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "protean_sup_test.%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_checkpoint_roundtrip_and_staleness () =
  with_temp_dir (fun dir ->
      let cells = cells_of 4 in
      Supervisor.Checkpoint.save dir 0
        [ (0, "k0", Json.Int 10); (1, "k1", Json.Int 11) ];
      Supervisor.Checkpoint.save dir 1 [ (3, "k3", Json.Int 13) ];
      let loaded = Supervisor.Checkpoint.load_all dir cells in
      Alcotest.(check int) "all saved cells load" 3 (List.length loaded);
      Alcotest.(check bool) "values intact" true
        (List.exists (fun (id, _, r) -> id = 1 && r = Json.Int 11) loaded);
      (* A checkpoint whose (id, key) no longer matches the grid — a
         stale file from a different run — must be ignored, not merged. *)
      Supervisor.Checkpoint.save dir 2 [ (2, "WRONG-KEY", Json.Int 99) ];
      let reloaded = Supervisor.Checkpoint.load_all dir cells in
      Alcotest.(check bool) "stale entry dropped" true
        (not (List.exists (fun (id, _, _) -> id = 2) reloaded));
      (* Corrupt files are skipped silently. *)
      let oc = open_out (Filename.concat dir "shard-9.json") in
      output_string oc "[{\"id\":0,";
      close_out oc;
      let again = Supervisor.Checkpoint.load_all dir cells in
      Alcotest.(check int) "corrupt file ignored" (List.length reloaded)
        (List.length again))

(* --- event bus --------------------------------------------------------- *)

let test_bus_order_and_unsubscribe () =
  let bus = Supervisor.create_bus () in
  let trace = ref [] in
  Supervisor.subscribe bus ~name:"a" (fun _ -> trace := "a" :: !trace);
  Supervisor.subscribe bus ~name:"b" (fun _ -> trace := "b" :: !trace);
  Supervisor.emit bus (Supervisor.Fallback { reason = "test" });
  Alcotest.(check (list string)) "registration order" [ "a"; "b" ]
    (List.rev !trace);
  Supervisor.unsubscribe bus "a";
  trace := [];
  Supervisor.emit bus (Supervisor.Merged { cells = 0; faults = 0 });
  Alcotest.(check (list string)) "unsubscribed handler gone" [ "b" ]
    (List.rev !trace)

(* --- fake-worker transports -------------------------------------------- *)

(* In-process worker transport: a domain runs [Shard.serve] (the real
   worker loop) over pipes.  [misbehave] replaces the loop for crash /
   stall scripts. *)
let domain_transport ?misbehave ~compute () =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let crashed = ref false in
  let d =
    Domain.spawn (fun () ->
        (match misbehave with
        | Some script -> ( try script in_r out_w with _ -> crashed := true)
        | None -> (
            try Shard.serve ~compute in_r out_w with _ -> crashed := true));
        (try Unix.close out_w with Unix.Unix_error _ -> ());
        try Unix.close in_r with Unix.Unix_error _ -> ())
  in
  {
    Supervisor.t_pid = None;
    t_read = out_r;
    t_write = in_w;
    t_err = None;
    t_kill = ignore (* a domain cannot be killed; scripts return fast *);
    t_wait =
      (fun () ->
        Domain.join d;
        if !crashed then ("signal SIGSEGV", false) else ("exit 0", true));
  }

(* Crash after streaming the first result: the classic mid-shard death.
   Reports a signal status so the supervisor treats it as a failure. *)
let crash_after_first compute in_r out_w =
  (match Shard.read_frame in_r with
  | Some (Shard.F_work (c :: _)) ->
      Shard.write_frame out_w (Shard.F_result (c.Shard.c_id, compute c.Shard.c_key))
  | _ -> ());
  raise Exit

(* Die instantly — before streaming anything — whenever the batch
   contains [poison]; serve normally otherwise.  Streaming no partial
   results forces the supervisor to isolate the bad cell by bisection
   alone (a worker that streams results narrows the shard for free and
   never needs to bisect). *)
let crash_on_cell ~poison compute in_r out_w =
  (match Shard.read_frame in_r with
  | Some (Shard.F_work cells) ->
      if List.exists (fun c -> c.Shard.c_id = poison) cells then raise Exit;
      List.iter
        (fun c ->
          Shard.write_frame out_w
            (Shard.F_result (c.Shard.c_id, compute c.Shard.c_key)))
        cells;
      Shard.write_frame out_w Shard.F_done;
      ignore (Shard.read_frame in_r)
  | _ -> ());
  raise Exit

(* Read the work order, then fall silent without ever writing a frame —
   the shape of a livelocked worker. *)
let stall ~secs in_r _out_w =
  ignore (Shard.read_frame in_r);
  Unix.sleepf secs;
  raise Exit

let compute key = Json.Obj [ ("v", Json.Str ("computed:" ^ key)) ]

let expected_ok n =
  List.init n (fun i ->
      (i, Supervisor.O_ok (Json.Obj [ ("v", Json.Str (Printf.sprintf "computed:k%d" i)) ])))

let record_events bus =
  let events = ref [] in
  Supervisor.subscribe bus ~name:"record" (fun e -> events := e :: !events);
  fun () -> List.rev !events

let no_fallback _ = Alcotest.fail "fallback must not run in this scenario"

let config ?(shards = 2) ?(max_attempts = 2) () =
  {
    Supervisor.default_config with
    Supervisor.shards;
    max_attempts;
    heartbeat = 30.0;
    wall = 60.0;
    backoff = 0.01 (* keep retry latency out of the test suite *);
  }

(* Happy path: two domain-backed workers serve the real worker loop;
   results come back complete and in cell order. *)
let test_supervised_happy_path () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let spawn ~shard:_ ~attempt:_ ~env_fault:_ = domain_transport ~compute () in
  let out =
    Supervisor.run ~bus ~spawn (config ()) ~worker_argv:[||]
      ~fallback:no_fallback (cells_of 5)
  in
  Alcotest.(check bool) "all cells ok, in id order" true (out = expected_ok 5);
  let spawns =
    List.length
      (List.filter (function Supervisor.Spawn _ -> true | _ -> false) (events ()))
  in
  Alcotest.(check int) "one spawn per shard" 2 spawns;
  Alcotest.(check bool) "merged event closes the run" true
    (List.exists
       (function Supervisor.Merged { cells = 5; faults = 0 } -> true | _ -> false)
       (events ()))

(* A worker that dies mid-shard is retried; streamed results are kept
   and the final merge is unaffected. *)
let test_supervised_crash_then_recover () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let spawn ~shard:_ ~attempt ~env_fault:_ =
    if attempt = 1 then
      domain_transport ~misbehave:(crash_after_first compute) ~compute ()
    else domain_transport ~compute ()
  in
  let out =
    Supervisor.run ~bus ~spawn
      (config ~shards:1 ())
      ~worker_argv:[||] ~fallback:no_fallback (cells_of 4)
  in
  Alcotest.(check bool) "identical to serial despite the crash" true
    (out = expected_ok 4);
  Alcotest.(check bool) "a retry was scheduled" true
    (List.exists
       (function Supervisor.Retry { attempt = 2; _ } -> true | _ -> false)
       (events ()))

(* A single poisoned cell is bisected out and reported as a structured
   fault; every other cell still completes. *)
let test_supervised_poisoned_cell_bisected () =
  let poison = 2 in
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let spawn ~shard:_ ~attempt:_ ~env_fault:_ =
    domain_transport ~misbehave:(crash_on_cell ~poison compute) ~compute ()
  in
  let out =
    Supervisor.run ~bus ~spawn (config ()) ~worker_argv:[||]
      ~fallback:no_fallback (cells_of 6)
  in
  List.iter
    (fun (id, o) ->
      if id = poison then
        match o with
        | Supervisor.O_fault { f_key; f_attempts; _ } ->
            Alcotest.(check string) "fault names the cell key" "k2" f_key;
            Alcotest.(check bool) "attempts exhausted" true (f_attempts >= 2)
        | Supervisor.O_ok _ -> Alcotest.fail "poisoned cell reported ok"
      else
        Alcotest.(check bool)
          (Printf.sprintf "cell %d completed" id)
          true
          (o = List.assoc id (expected_ok 6)))
    out;
  Alcotest.(check bool) "bisection happened" true
    (List.exists
       (function Supervisor.Bisect _ -> true | _ -> false)
       (events ()));
  Alcotest.(check bool) "poison event names the cell" true
    (List.exists
       (function
         | Supervisor.Poisoned { cell; key = "k2"; _ } -> cell = poison
         | _ -> false)
       (events ()))

(* A silent worker trips the heartbeat deadline, is killed, and the
   retry completes the shard. *)
let test_supervised_heartbeat_kill_recovers () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let spawn ~shard:_ ~attempt ~env_fault:_ =
    if attempt = 1 then domain_transport ~misbehave:(stall ~secs:1.5) ~compute ()
    else domain_transport ~compute ()
  in
  let cfg = { (config ~shards:1 ()) with Supervisor.heartbeat = 0.2 } in
  let out =
    Supervisor.run ~bus ~spawn cfg ~worker_argv:[||] ~fallback:no_fallback
      (cells_of 3)
  in
  Alcotest.(check bool) "recovered after the kill" true (out = expected_ok 3);
  Alcotest.(check bool) "kill cites the heartbeat deadline" true
    (List.exists
       (function
         | Supervisor.Kill { reason; _ } ->
             String.length reason >= 9 && String.sub reason 0 9 = "heartbeat"
         | _ -> false)
       (events ()))

(* A worker that reports a cell fault over the protocol (the in-process
   exception barrier caught it) poisons just that cell, with no retry:
   the worker itself is healthy. *)
let test_supervised_cellfault_is_final () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let faulty key =
    if key = "k1" then raise (Failure "simulated Sim_fault") else compute key
  in
  let spawn ~shard:_ ~attempt:_ ~env_fault:_ =
    domain_transport ~compute:faulty ()
  in
  let out =
    Supervisor.run ~bus ~spawn
      (config ~shards:1 ())
      ~worker_argv:[||] ~fallback:no_fallback (cells_of 3)
  in
  (match List.assoc 1 out with
  | Supervisor.O_fault { f_reason; _ } ->
      Alcotest.(check bool) "reason forwarded" true
        (String.length f_reason > 0)
  | Supervisor.O_ok _ -> Alcotest.fail "faulted cell reported ok");
  Alcotest.(check bool) "other cells unaffected" true
    (List.assoc 0 out = List.assoc 0 (expected_ok 3)
    && List.assoc 2 out = List.assoc 2 (expected_ok 3));
  Alcotest.(check bool) "no retry for an in-worker fault" true
    (not
       (List.exists
          (function Supervisor.Retry _ -> true | _ -> false)
          (events ())))

(* Exec failure degrades to the in-process fallback for the whole batch. *)
let test_supervised_spawn_failure_falls_back () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let spawn ~shard:_ ~attempt:_ ~env_fault:_ = failwith "exec ENOENT" in
  let fallback cells =
    List.map (fun c -> (c.Shard.c_id, compute c.Shard.c_key)) cells
  in
  let out =
    Supervisor.run ~bus ~spawn (config ()) ~worker_argv:[||] ~fallback
      (cells_of 4)
  in
  Alcotest.(check bool) "fallback computed everything" true
    (out = expected_ok 4);
  Alcotest.(check bool) "fallback event emitted" true
    (List.exists
       (function Supervisor.Fallback _ -> true | _ -> false)
       (events ()))

(* Checkpoint resume: results persisted by a previous run are loaded,
   and only the remainder is dispatched to workers. *)
let test_supervised_checkpoint_resume () =
  with_temp_dir (fun dir ->
      Supervisor.Checkpoint.save dir 0
        [ (0, "k0", compute "k0"); (1, "k1", compute "k1") ];
      let bus = Supervisor.create_bus () in
      let events = record_events bus in
      let dispatched = ref [] in
      let spawn ~shard:_ ~attempt:_ ~env_fault:_ =
        domain_transport
          ~compute:(fun key ->
            dispatched := key :: !dispatched;
            compute key)
          ()
      in
      let cfg = { (config ~shards:1 ()) with Supervisor.checkpoint_dir = Some dir } in
      let out =
        Supervisor.run ~bus ~spawn cfg ~worker_argv:[||] ~fallback:no_fallback
          (cells_of 4)
      in
      Alcotest.(check bool) "merged output complete" true (out = expected_ok 4);
      Alcotest.(check bool) "resumed cells never recomputed" true
        (List.sort compare !dispatched = [ "k2"; "k3" ]);
      Alcotest.(check bool) "resume event emitted" true
        (List.exists
           (function
             | Supervisor.Checkpoint_loaded { cells = 2 } -> true | _ -> false)
           (events ())))

(* --- transport-level chaos over pipes ---------------------------------- *)

(* Stream one good result, then raw garbage bytes whose length prefix
   is absurd: the supervisor must fault structurally ("protocol
   corruption"), kill the worker, and recover on retry — keeping the
   result that arrived before the corruption. *)
let garbage_after_first compute in_r out_w =
  (match Shard.read_frame in_r with
  | Some (Shard.F_work (c :: _)) ->
      Shard.write_frame out_w
        (Shard.F_result (c.Shard.c_id, compute c.Shard.c_key));
      ignore (Unix.write out_w (Bytes.make 64 '\xff') 0 64)
  | _ -> ());
  raise Exit

let test_supervised_garbage_midstream () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let spawn ~shard:_ ~attempt ~env_fault:_ =
    if attempt = 1 then
      domain_transport ~misbehave:(garbage_after_first compute) ~compute ()
    else domain_transport ~compute ()
  in
  let out =
    Supervisor.run ~bus ~spawn
      (config ~shards:1 ())
      ~worker_argv:[||] ~fallback:no_fallback (cells_of 4)
  in
  Alcotest.(check bool) "identical to serial despite the corruption" true
    (out = expected_ok 4);
  Alcotest.(check bool) "kill cites protocol corruption" true
    (List.exists
       (function
         | Supervisor.Kill { reason; _ } ->
             String.length reason >= 19
             && String.sub reason 0 19 = "protocol corruption"
         | _ -> false)
       (events ()))

(* A well-behaved but slow wire: every frame dribbles in one byte at a
   time, with heartbeats interleaved between results.  Frame boundaries
   never align with reads; the decoder must reassemble everything. *)
let dribble_with_heartbeats compute in_r out_w =
  let put frame =
    let b = Shard.encode_frame frame in
    Bytes.iter (fun ch -> ignore (Unix.write out_w (Bytes.make 1 ch) 0 1)) b
  in
  (match Shard.read_frame in_r with
  | Some (Shard.F_work cells) ->
      List.iter
        (fun c ->
          put (Shard.F_hb c.Shard.c_id);
          put (Shard.F_result (c.Shard.c_id, compute c.Shard.c_key)))
        cells;
      put Shard.F_done;
      ignore (Shard.read_frame in_r)
  | _ -> ());
  ()

let test_supervised_partial_frames_and_heartbeats () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let spawn ~shard:_ ~attempt:_ ~env_fault:_ =
    domain_transport ~misbehave:(dribble_with_heartbeats compute) ~compute ()
  in
  let out =
    Supervisor.run ~bus ~spawn
      (config ~shards:1 ())
      ~worker_argv:[||] ~fallback:no_fallback (cells_of 5)
  in
  Alcotest.(check bool) "byte-dribbled frames reassemble" true
    (out = expected_ok 5);
  Alcotest.(check bool) "interleaved heartbeats observed" true
    (List.exists
       (function Supervisor.Heartbeat _ -> true | _ -> false)
       (events ()));
  Alcotest.(check bool) "no kill, no retry" true
    (not
       (List.exists
          (function Supervisor.Kill _ | Supervisor.Retry _ -> true | _ -> false)
          (events ())))

(* --- TCP worker pool --------------------------------------------------- *)

let pool_config () =
  {
    Supervisor.default_pool_config with
    Supervisor.pl_listen = "127.0.0.1:0";
    pl_accept_wall = 30.0;
  }

(* Spawn [n] dial-in workers — real [Shard.connect_worker] loops on
   domains — as soon as the pool announces its bound port.  Returns a
   join function yielding each worker's terminal outcome ([None] =
   clean F_exit, [Some e] = raised). *)
let dialers ?(name = "dialers") ?(token = "protean") ?(compute = compute) bus n
    =
  let domains = ref [] in
  Supervisor.subscribe bus ~name (function
    | Supervisor.Listening { port; _ } ->
        let addr = Printf.sprintf "127.0.0.1:%d" port in
        for _ = 1 to n do
          domains :=
            Domain.spawn (fun () ->
                match
                  Shard.connect_worker ~reconnect:8 ~backoff:0.05 ~addr ~token
                    ~compute ()
                with
                | () -> None
                | exception e -> Some e)
            :: !domains
        done
    | _ -> ());
  fun () ->
    let outcomes = List.map Domain.join !domains in
    (* connect_worker rewired the global log sink to its (now closed)
       connection; put stderr back for the rest of the suite. *)
    Protean_telemetry.Log.reset_sink ();
    outcomes

(* Happy path: two remote workers dial in, lease work, and the merged
   output is byte-identical to the serial run. *)
let test_pool_happy_path () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let join = dialers bus 2 in
  let out =
    Supervisor.run_pool ~bus (config ()) ~pool:(pool_config ())
      ~fallback:no_fallback (cells_of 6)
  in
  Alcotest.(check bool) "all workers exited cleanly" true
    (List.for_all (( = ) None) (join ()));
  Alcotest.(check bool) "identical to serial" true (out = expected_ok 6);
  Alcotest.(check bool) "workers authenticated" true
    (List.exists
       (function Supervisor.Worker_connected _ -> true | _ -> false)
       (events ()));
  Alcotest.(check bool) "leases granted" true
    (List.exists
       (function Supervisor.Lease_granted _ -> true | _ -> false)
       (events ()));
  Alcotest.(check bool) "merged event closes the run" true
    (List.exists
       (function Supervisor.Merged { cells = 6; faults = 0 } -> true | _ -> false)
       (events ()))

(* A worker with the wrong campaign token is rejected (and does not
   redial — the rejection is terminal); the campaign completes on the
   healthy worker alone. *)
let test_pool_rejects_bad_token () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let join_bad = dialers ~name:"bad" ~token:"WRONG" bus 1 in
  let join_good = dialers ~name:"good" bus 1 in
  let out =
    Supervisor.run_pool ~bus (config ()) ~pool:(pool_config ())
      ~fallback:no_fallback (cells_of 4)
  in
  (match join_bad () with
  | [ Some (Failure msg) ] ->
      Alcotest.(check bool) "rejection names the token" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "bad-token worker was not rejected");
  Alcotest.(check bool) "good worker exits cleanly" true
    (join_good () = [ None ]);
  Alcotest.(check bool) "campaign unaffected" true (out = expected_ok 4);
  Alcotest.(check bool) "rejection event emitted" true
    (List.exists
       (function
         | Supervisor.Worker_rejected { reason = "bad campaign token"; _ } ->
             true
         | _ -> false)
       (events ()))

(* A peer speaking a different protocol generation is turned away at
   the handshake with a reason naming both versions. *)
let test_pool_rejects_bad_version () =
  let bus = Supervisor.create_bus () in
  let reply = ref None in
  Supervisor.subscribe bus ~name:"archaic" (function
    | Supervisor.Listening { port; _ } ->
        let addr = Printf.sprintf "127.0.0.1:%d" port in
        ignore
          (Domain.spawn (fun () ->
               let sock = Shard.dial addr in
               Shard.write_frame sock
                 (Shard.F_hello { h_version = 999; h_token = "protean" });
               reply := Shard.read_frame sock;
               Unix.close sock))
    | _ -> ());
  let join = dialers bus 1 in
  let out =
    Supervisor.run_pool ~bus (config ()) ~pool:(pool_config ())
      ~fallback:no_fallback (cells_of 3)
  in
  ignore (join ());
  Alcotest.(check bool) "campaign unaffected" true (out = expected_ok 3);
  match !reply with
  | Some (Shard.F_reject reason) ->
      Alcotest.(check bool) "reason names the version skew" true
        (String.length reason >= 16
        && String.sub reason 0 16 = "protocol version")
  | _ -> Alcotest.fail "version-skewed hello was not rejected"

(* Run [f] with a network fault armed for dial-in workers in this
   process, restoring a clean slate afterwards. *)
let with_net_fault mode f =
  Unix.putenv Protean_defense.Fault_inject.net_env mode;
  Shard.Transport.fault_spent := false;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Protean_defense.Fault_inject.net_env "";
      Shard.Transport.fault_spent := false)
    f

(* A dropped result frame: the worker's F_done arrives short of one
   cell.  The missing cell is requeued (never invented) and the same —
   still connected — worker completes it on the retry lease. *)
let test_pool_dropped_frame_requeued () =
  with_net_fault "net-drop:2" (fun () ->
      let bus = Supervisor.create_bus () in
      let events = record_events bus in
      let join = dialers bus 1 in
      let out =
        Supervisor.run_pool ~bus
          (config ~shards:1 ())
          ~pool:(pool_config ()) ~fallback:no_fallback (cells_of 4)
      in
      Alcotest.(check bool) "worker exits cleanly" true (join () = [ None ]);
      Alcotest.(check bool) "identical to serial despite the drop" true
        (out = expected_ok 4);
      Alcotest.(check bool) "missing results requeued" true
        (List.exists
           (function Supervisor.Retry { attempt = 2; _ } -> true | _ -> false)
           (events ())))

(* Garbage bytes mid-stream on TCP: the supervisor faults the
   connection ("protocol corruption"), the worker redials — its
   one-shot fault is spent — and the re-dispatched lease completes.
   This is the acceptance scenario: a garbage-injected worker pool
   still produces byte-identical output. *)
let test_pool_garbage_worker_reconnects () =
  with_net_fault "net-garbage:2" (fun () ->
      let bus = Supervisor.create_bus () in
      let events = record_events bus in
      let join = dialers bus 1 in
      let out =
        Supervisor.run_pool ~bus
          (config ~shards:1 ())
          ~pool:(pool_config ()) ~fallback:no_fallback (cells_of 4)
      in
      Alcotest.(check bool) "worker exits cleanly after reconnect" true
        (join () = [ None ]);
      Alcotest.(check bool) "identical to serial despite the garbage" true
        (out = expected_ok 4);
      Alcotest.(check bool) "disconnect cites protocol corruption" true
        (List.exists
           (function
             | Supervisor.Worker_disconnected { reason; _ } ->
                 String.length reason >= 19
                 && String.sub reason 0 19 = "protocol corruption"
             | _ -> false)
           (events ()));
      Alcotest.(check bool) "lease re-dispatched" true
        (List.exists
           (function
             | Supervisor.Retry _ | Supervisor.Bisect _ -> true | _ -> false)
           (events ())))

(* A pool with work but no workers must not hang: after the accept
   budget it degrades to the in-process fallback. *)
let test_pool_no_workers_falls_back () =
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let pool =
    { (pool_config ()) with Supervisor.pl_accept_wall = 0.3 }
  in
  let fallback cells =
    List.map (fun c -> (c.Shard.c_id, compute c.Shard.c_key)) cells
  in
  let out =
    Supervisor.run_pool ~bus (config ()) ~pool ~fallback (cells_of 3)
  in
  Alcotest.(check bool) "fallback served the batch" true (out = expected_ok 3);
  Alcotest.(check bool) "fallback event emitted" true
    (List.exists
       (function Supervisor.Fallback _ -> true | _ -> false)
       (events ()))

(* PROTEAN_NO_SPAWN disables process spawning entirely (the documented
   degradation path for platforms without fork/exec).  Runs last in the
   suite: the environment variable cannot be unset portably. *)
let test_supervised_no_spawn_env_falls_back () =
  Unix.putenv "PROTEAN_NO_SPAWN" "1";
  Alcotest.(check bool) "can_spawn honours the veto" false (Shard.can_spawn ());
  let bus = Supervisor.create_bus () in
  let events = record_events bus in
  let spawn ~shard:_ ~attempt:_ ~env_fault:_ =
    Alcotest.fail "no transport may be created under PROTEAN_NO_SPAWN"
  in
  let fallback cells =
    List.map (fun c -> (c.Shard.c_id, compute c.Shard.c_key)) cells
  in
  let out =
    Supervisor.run ~bus ~spawn (config ()) ~worker_argv:[||] ~fallback
      (cells_of 3)
  in
  Alcotest.(check bool) "fallback served the batch" true (out = expected_ok 3);
  Alcotest.(check bool) "fallback event emitted" true
    (List.exists
       (function Supervisor.Fallback _ -> true | _ -> false)
       (events ()))

let tests =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json floats bit-exact" `Quick test_json_float_exact;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "frame decoder, byte at a time" `Quick
      test_frame_decoder_byte_at_a_time;
    Alcotest.test_case "frame decoder reports truncation" `Quick
      test_frame_decoder_truncation_pending;
    Alcotest.test_case "split_shards covers and balances" `Quick
      test_split_shards;
    Alcotest.test_case "checkpoints round-trip, stale entries dropped" `Quick
      test_checkpoint_roundtrip_and_staleness;
    Alcotest.test_case "event bus order and unsubscribe" `Quick
      test_bus_order_and_unsubscribe;
    Alcotest.test_case "supervised happy path" `Quick test_supervised_happy_path;
    Alcotest.test_case "crash mid-shard retried, results kept" `Quick
      test_supervised_crash_then_recover;
    Alcotest.test_case "poisoned cell bisected to a structured fault" `Quick
      test_supervised_poisoned_cell_bisected;
    Alcotest.test_case "heartbeat deadline kills and recovers" `Quick
      test_supervised_heartbeat_kill_recovers;
    Alcotest.test_case "in-worker cell fault is final" `Quick
      test_supervised_cellfault_is_final;
    Alcotest.test_case "spawn failure degrades to fallback" `Quick
      test_supervised_spawn_failure_falls_back;
    Alcotest.test_case "checkpoint resume skips completed cells" `Quick
      test_supervised_checkpoint_resume;
    Alcotest.test_case "garbage bytes mid-stream killed and retried" `Quick
      test_supervised_garbage_midstream;
    Alcotest.test_case "byte-dribbled frames with interleaved heartbeats"
      `Quick test_supervised_partial_frames_and_heartbeats;
    Alcotest.test_case "tcp pool happy path" `Quick test_pool_happy_path;
    Alcotest.test_case "tcp pool rejects a bad campaign token" `Quick
      test_pool_rejects_bad_token;
    Alcotest.test_case "tcp pool rejects a protocol version skew" `Quick
      test_pool_rejects_bad_version;
    Alcotest.test_case "tcp pool requeues a dropped result frame" `Quick
      test_pool_dropped_frame_requeued;
    Alcotest.test_case "tcp pool survives a garbage-injecting worker" `Quick
      test_pool_garbage_worker_reconnects;
    Alcotest.test_case "tcp pool with no workers falls back" `Quick
      test_pool_no_workers_falls_back;
    Alcotest.test_case "PROTEAN_NO_SPAWN forces fallback" `Quick
      test_supervised_no_spawn_env_falls_back;
  ]
