(* Robustness layer tests: microarchitectural invariant checking,
   watchdog deadlock/livelock detection, fuzzer self-testing via fault
   injection, counterexample shrinking and campaign checkpoint/resume
   (the PR-1 acceptance scenarios). *)

open Protean_isa
module Config = Protean_ooo.Config
module Pipeline = Protean_ooo.Pipeline
module Policy = Protean_ooo.Policy
module Invariants = Protean_ooo.Invariants
module Defense = Protean_defense.Defense
module Fault_inject = Protean_defense.Fault_inject
module Fuzz = Protean_amulet.Fuzz

let r = Asm.r
let i = Asm.i

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go k = k + n <= m && (String.sub s k n = sub || go (k + 1)) in
  go 0

(* --- invariants ------------------------------------------------------ *)

(* Every seed workload, under both an unprotected and a fully protected
   policy, must run to completion with the invariant checker in Fail
   mode on every cycle. *)
let test_invariants_on_workloads () =
  let checker = Invariants.checker ~every:1 Invariants.Fail in
  List.iter
    (fun (dname, (d : Defense.t)) ->
      List.iter
        (fun (name, program) ->
          let result =
            Pipeline.run ~fuel:2_000_000 ~on_cycle:checker Config.test_core
              (d.Defense.make ()) program ~overlays:[]
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s finished with invariants on" name
               dname)
            true result.Pipeline.finished)
        Helpers.all_programs)
    [ ("unsafe", Defense.unsafe); ("prot-track", Defense.prot_track) ]

(* A just-created pipeline satisfies every invariant. *)
let test_invariants_initial () =
  let program = Helpers.sum_loop 5 in
  let t =
    Pipeline.create Config.test_core Policy.unsafe program ~overlays:[]
  in
  Alcotest.(check int) "no violations at reset" 0 (List.length (Invariants.check t))

let test_mode_of_string () =
  Alcotest.(check bool) "off" true (Invariants.mode_of_string "off" = Invariants.Off);
  Alcotest.(check bool) "warn" true (Invariants.mode_of_string "warn" = Invariants.Warn);
  Alcotest.(check bool) "fail" true (Invariants.mode_of_string "fail" = Invariants.Fail);
  Alcotest.(check bool) "junk rejected" true
    (match Invariants.mode_of_string "junk" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- watchdog -------------------------------------------------------- *)

(* A policy that never lets a transmitter (load) execute livelocks any
   program containing a load: the ROB head never completes, commit
   starves, and the heartbeat must convert that into a structured
   Commit_stall fault carrying the pipeline state. *)
let test_watchdog_commit_stall () =
  let stuck =
    { Policy.unsafe with Policy.may_execute_transmitter = (fun _ _ -> false) }
  in
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rdi (i 0x2000);
  Asm.store c (Asm.mb Reg.rdi) (i 42);
  Asm.load c Reg.rax (Asm.mb Reg.rdi);
  Asm.halt c;
  let program = Asm.finish c in
  let watchdog = { Pipeline.heartbeat = 200; budget = None } in
  match
    Pipeline.run ~watchdog Config.test_core stuck program ~overlays:[]
  with
  | _ -> Alcotest.fail "livelocked program finished"
  | exception Pipeline.Sim_fault f ->
      Alcotest.(check string)
        "fault kind" "commit-stall"
        (Pipeline.fault_kind_name f.Pipeline.fault_kind);
      Alcotest.(check bool)
        "fault cycle past heartbeat" true
        (f.Pipeline.fault_cycle > 200);
      (* The dump names the stuck instruction at the ROB head. *)
      Alcotest.(check bool)
        "head pc recorded" true
        (f.Pipeline.fault_head_pc >= 0)

(* An architecturally infinite loop keeps committing, so the heartbeat
   never fires — only the hard cycle budget catches it. *)
let test_watchdog_budget () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.label c "self";
  Asm.add c Reg.rax (i 1);
  Asm.jmp c "self";
  let program = Asm.finish c in
  let watchdog = { Pipeline.default_watchdog with Pipeline.budget = Some 2_000 } in
  match
    Pipeline.run ~watchdog Config.test_core Policy.unsafe program ~overlays:[]
  with
  | _ -> Alcotest.fail "infinite loop finished"
  | exception Pipeline.Sim_fault f ->
      Alcotest.(check string)
        "fault kind" "cycle-budget-exhausted"
        (Pipeline.fault_kind_name f.Pipeline.fault_kind)

(* --- fuzzer self-test: injected faults must be caught ---------------- *)

let test_fault_injection_matrix () =
  let rows = Fuzz.self_test_matrix ~seed:1 ~programs:3 ~inputs:5 () in
  Alcotest.(check int)
    "one row per fault mode"
    (List.length Fault_inject.all_modes)
    (List.length rows);
  List.iter
    (fun (defense_id, contract, (g : Fuzz.gap)) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s injected into %s caught by %s-SEQ fuzzing"
           (Fault_inject.mode_name g.Fuzz.g_mode)
           defense_id contract)
        true g.Fuzz.g_detected)
    rows

(* --- counterexample shrinking ---------------------------------------- *)

(* The unprotected core violates CT-SEQ; the shrunk counterexample must
   still violate and be no larger than the original. *)
let test_shrinking_preserves_violation () =
  let campaign = Fuzz.campaign_for ~seed:1 ~programs:4 ~inputs:3 "ct" in
  let r = Fuzz.run_resilient campaign Defense.unsafe in
  Alcotest.(check bool) "unsafe violates CT-SEQ" true
    (r.Fuzz.r_outcome.Fuzz.violations > 0);
  match r.Fuzz.r_counterexample with
  | None -> Alcotest.fail "no counterexample produced"
  | Some sh ->
      Alcotest.(check bool) "shrunk program still violates" true
        sh.Fuzz.sh_verified;
      Alcotest.(check bool) "shrinking did not grow the program" true
        (sh.Fuzz.sh_insns <= sh.Fuzz.sh_original_insns);
      Alcotest.(check bool) "some replays were spent" true
        (sh.Fuzz.sh_attempts > 0)

(* --- checkpointing --------------------------------------------------- *)

let ck =
  {
    Fuzz.Checkpoint.ck_seed = 42;
    ck_programs = 10;
    ck_inputs = 5;
    ck_next = 7;
    ck_tests = 31;
    ck_skipped = 4;
    ck_violations = 2;
    ck_false_positives = 1;
    ck_faulted = 1;
    ck_example_seed = 42 + (3 * 7919);
    ck_example_input = 2;
  }

let test_checkpoint_json_roundtrip () =
  match Fuzz.Checkpoint.of_json (Fuzz.Checkpoint.to_json ck) with
  | None -> Alcotest.fail "checkpoint JSON did not parse back"
  | Some c -> Alcotest.(check bool) "round-trip equal" true (c = ck)

let test_checkpoint_file_roundtrip () =
  let path = Filename.temp_file "protean_ck" ".json" in
  Fuzz.Checkpoint.save path ck;
  let back = Fuzz.Checkpoint.load path in
  Sys.remove path;
  Alcotest.(check bool) "file round-trip equal" true (back = Some ck);
  Alcotest.(check bool) "missing file loads as None" true
    (Fuzz.Checkpoint.load path = None)

let test_checkpoint_malformed () =
  Alcotest.(check bool) "garbage rejected" true
    (Fuzz.Checkpoint.of_json "{not json" = None)

(* A checkpoint file truncated mid-write (crash before the atomic rename
   could be introduced, disk-full, ...) must be detected and ignored with
   a warning — never raise, never resume from half a record. *)
let test_checkpoint_truncated_warns () =
  let path = Filename.temp_file "protean_trunc" ".json" in
  let full = Fuzz.Checkpoint.to_json ck in
  let oc = open_out path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  let warned = ref [] in
  let back = Fuzz.Checkpoint.load ~warn:(fun p -> warned := p :: !warned) path in
  Alcotest.(check bool) "truncated checkpoint ignored" true (back = None);
  Alcotest.(check (list string)) "warning fired once, naming the file"
    [ path ] !warned;
  (* An intact file must load silently through the same path. *)
  Fuzz.Checkpoint.save path ck;
  warned := [];
  let back = Fuzz.Checkpoint.load ~warn:(fun p -> warned := p :: !warned) path in
  Sys.remove path;
  Alcotest.(check bool) "intact checkpoint loads" true (back = Some ck);
  Alcotest.(check (list string)) "no warning for intact file" [] !warned

(* Checkpoint saves are atomic: a save over an existing checkpoint goes
   through a tmp file + rename, so a reader never observes a mix of old
   and new bytes and no .tmp residue survives a completed save. *)
let test_checkpoint_save_atomic () =
  let path = Filename.temp_file "protean_atomic" ".json" in
  Fuzz.Checkpoint.save path ck;
  Fuzz.Checkpoint.save path { ck with Fuzz.Checkpoint.ck_next = 9 };
  Alcotest.(check bool) "tmp file removed by rename" false
    (Sys.file_exists (path ^ ".tmp"));
  let back = Fuzz.Checkpoint.load path in
  Sys.remove path;
  match back with
  | Some c ->
      Alcotest.(check int) "second save wins" 9 c.Fuzz.Checkpoint.ck_next
  | None -> Alcotest.fail "overwritten checkpoint did not load"

(* A checkpoint claiming the campaign already finished makes
   run_resilient return the saved counts without re-running anything. *)
let test_checkpoint_resume () =
  let campaign = Fuzz.campaign_for ~seed:9 ~programs:3 ~inputs:2 "arch" in
  let path = Filename.temp_file "protean_resume" ".json" in
  Fuzz.Checkpoint.save path
    {
      Fuzz.Checkpoint.ck_seed = 9;
      ck_programs = 3;
      ck_inputs = 2;
      ck_next = 3;
      ck_tests = 5;
      ck_skipped = 1;
      ck_violations = 0;
      ck_false_positives = 0;
      ck_faulted = 0;
      ck_example_seed = -1;
      ck_example_input = -1;
    };
  let r = Fuzz.run_resilient ~checkpoint:path campaign Defense.stt in
  Sys.remove path;
  Alcotest.(check bool) "resumed" true (r.Fuzz.r_resumed_from = Some 3);
  Alcotest.(check int) "saved tests restored" 5 r.Fuzz.r_outcome.Fuzz.tests;
  Alcotest.(check int) "saved skips restored" 1 r.Fuzz.r_outcome.Fuzz.skipped;
  Alcotest.(check int) "all programs counted done" 3 r.Fuzz.r_completed

(* A mismatched checkpoint (different campaign) is ignored. *)
let test_checkpoint_mismatch_ignored () =
  let campaign = Fuzz.campaign_for ~seed:10 ~programs:2 ~inputs:2 "arch" in
  let path = Filename.temp_file "protean_mismatch" ".json" in
  Fuzz.Checkpoint.save path { ck with Fuzz.Checkpoint.ck_seed = 11 };
  let r = Fuzz.run_resilient ~checkpoint:path campaign Defense.stt in
  Sys.remove path;
  Alcotest.(check bool) "not resumed" true (r.Fuzz.r_resumed_from = None)

(* --- campaign-level deadlock survival -------------------------------- *)

(* An architecturally terminating program whose hardware run exceeds the
   per-program cycle budget: thousands of data-dependent divisions. *)
let slow_program () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (i 1_000_000);
  Asm.mov c Reg.rbx (i 1);
  for _ = 1 to 4_000 do
    Asm.div c Reg.rax Reg.rax (r Reg.rbx)
  done;
  Asm.halt c;
  Asm.finish c

(* Acceptance scenario: a campaign containing a program that blows the
   watchdog budget completes the remaining programs and reports the
   skip. *)
let test_campaign_survives_timeout () =
  let campaign =
    {
      (Fuzz.campaign_for ~seed:3 ~programs:3 ~inputs:2 "arch") with
      Fuzz.timeout_cycles = Some 20_000;
    }
  in
  let slow = slow_program () in
  let program_of idx = if idx = 1 then Some slow else None in
  let r = Fuzz.run_resilient ~program_of campaign Defense.unsafe in
  Alcotest.(check int) "other programs completed" 2 r.Fuzz.r_completed;
  (match r.Fuzz.r_skipped with
  | [ s ] ->
      Alcotest.(check int) "skipped program index" 1 s.Fuzz.sk_index;
      Alcotest.(check int) "skipped program seed"
        (Fuzz.program_seed campaign 1) s.Fuzz.sk_seed;
      Alcotest.(check bool)
        (Printf.sprintf "skip reason names the watchdog: %s" s.Fuzz.sk_reason)
        true
        (contains ~sub:"budget-exhausted" s.Fuzz.sk_reason)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one skip, got %d" (List.length l)));
  Alcotest.(check bool) "remaining programs were tested" true
    (r.Fuzz.r_outcome.Fuzz.tests > 0)

let tests =
  [
    Alcotest.test_case "invariants hold on all seed workloads" `Slow
      test_invariants_on_workloads;
    Alcotest.test_case "invariants hold at reset" `Quick
      test_invariants_initial;
    Alcotest.test_case "invariant mode parsing" `Quick test_mode_of_string;
    Alcotest.test_case "watchdog converts livelock into Commit_stall" `Quick
      test_watchdog_commit_stall;
    Alcotest.test_case "watchdog budget catches infinite loop" `Quick
      test_watchdog_budget;
    Alcotest.test_case "every injected fault is detected" `Slow
      test_fault_injection_matrix;
    Alcotest.test_case "shrinking preserves the violation" `Slow
      test_shrinking_preserves_violation;
    Alcotest.test_case "checkpoint JSON round-trips" `Quick
      test_checkpoint_json_roundtrip;
    Alcotest.test_case "checkpoint file round-trips" `Quick
      test_checkpoint_file_roundtrip;
    Alcotest.test_case "malformed checkpoint rejected" `Quick
      test_checkpoint_malformed;
    Alcotest.test_case "truncated checkpoint warns and is ignored" `Quick
      test_checkpoint_truncated_warns;
    Alcotest.test_case "checkpoint saves are atomic" `Quick
      test_checkpoint_save_atomic;
    Alcotest.test_case "campaign resumes from checkpoint" `Quick
      test_checkpoint_resume;
    Alcotest.test_case "mismatched checkpoint ignored" `Quick
      test_checkpoint_mismatch_ignored;
    Alcotest.test_case "campaign survives a deadlocking program" `Slow
      test_campaign_survives_timeout;
  ]
