(* Telemetry-layer tests: registry semantics, deterministic snapshots
   and merges (serial vs [-j N] vs the shard frame protocol), exporter
   well-formedness (Prometheus text, JSON, Chrome trace events, folded
   flamegraphs), the structured logger, and the profiler's
   detach-flush path (a profiler unsubscribed mid-run must still
   deliver its partial samples). *)

module Metrics = Protean_telemetry.Metrics
module Trace = Protean_telemetry.Trace
module Flame = Protean_telemetry.Flame
module Tlog = Protean_telemetry.Log
module Hooks = Protean_ooo.Hooks
module Profile = Protean_ooo.Profile
module Pipeline = Protean_ooo.Pipeline
module Config = Protean_ooo.Config
module Stats = Protean_ooo.Stats
module Policy = Protean_ooo.Policy
module Suite = Protean_workloads.Suite
module E = Protean_harness.Experiment
module Report = Protean_harness.Report
module Supervisor = Protean_harness.Supervisor
module Json = Protean_harness.Shard.Json
module Fuzz = Protean_amulet.Fuzz
module Gen = Protean_amulet.Gen
module Parallel = Protean_harness.Parallel
module Defense = Protean_defense.Defense
module Twindow = Protean_telemetry.Window

(* --- registry semantics ---------------------------------------------- *)

let test_registry_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"h" ~labels:[ ("b", "2"); ("a", "1") ] "c" in
  Metrics.inc c;
  Metrics.inc ~n:41 c;
  let g = Metrics.gauge reg "g" in
  Metrics.set g 7;
  Metrics.set g 3; (* gauges keep the max: order-free merges *)
  let h = Metrics.histogram reg ~buckets:[| 10; 100 |] "h" in
  List.iter (Metrics.observe h) [ 5; 50; 500; 10 ];
  let snap = Metrics.snapshot reg in
  Alcotest.(check int) "three samples" 3 (List.length snap);
  let find f = List.find (fun s -> s.Metrics.s_family = f) snap in
  Alcotest.(check int) "counter" 42 (find "c").Metrics.s_value;
  Alcotest.(check (list (pair string string)))
    "labels sorted at registration"
    [ ("a", "1"); ("b", "2") ]
    (find "c").Metrics.s_labels;
  Alcotest.(check int) "gauge keeps max" 7 (find "g").Metrics.s_value;
  let hs = find "h" in
  Alcotest.(check int) "histogram sum" 565 hs.Metrics.s_value;
  Alcotest.(check int) "histogram count" 4 hs.Metrics.s_count;
  (* Buckets are non-cumulative internally: [5,10] / [50] / [500]. *)
  Alcotest.(check (array int)) "buckets" [| 2; 1; 1 |] hs.Metrics.s_buckets;
  (* Re-registering the same (family, labels) returns the same cell. *)
  let c' =
    Metrics.counter reg ~labels:[ ("a", "1"); ("b", "2") ] "c"
  in
  Metrics.inc c';
  Alcotest.(check int) "same cell" 43
    (List.find (fun s -> s.Metrics.s_family = "c") (Metrics.snapshot reg))
      .Metrics.s_value

let fill_a reg =
  Metrics.inc ~n:5 (Metrics.counter reg ~labels:[ ("x", "1") ] "m");
  Metrics.set (Metrics.gauge reg "peak") 10;
  Metrics.observe (Metrics.histogram reg ~buckets:[| 10 |] "lat") 3

let fill_b reg =
  Metrics.inc ~n:7 (Metrics.counter reg ~labels:[ ("x", "1") ] "m");
  Metrics.inc ~n:2 (Metrics.counter reg ~labels:[ ("x", "2") ] "m");
  Metrics.set (Metrics.gauge reg "peak") 4;
  Metrics.observe (Metrics.histogram reg ~buckets:[| 10 |] "lat") 30

let test_merge_deterministic () =
  let ra = Metrics.create () and rb = Metrics.create () in
  fill_a ra;
  fill_b rb;
  let a = Metrics.snapshot ra and b = Metrics.snapshot rb in
  let ab = Metrics.merge a b and ba = Metrics.merge b a in
  Alcotest.(check string) "merge is commutative (rendered bytes)"
    (Metrics.to_prometheus ab) (Metrics.to_prometheus ba);
  (* The merge must equal filling one registry with both shard's
     increments: sums for counters/histograms, max for gauges. *)
  let whole = Metrics.create () in
  fill_a whole;
  fill_b whole;
  Alcotest.(check string) "merge == serial fill"
    (Metrics.to_prometheus (Metrics.snapshot whole))
    (Metrics.to_prometheus ab);
  (* absorb round-trips a snapshot into a registry. *)
  let rt = Metrics.create () in
  Metrics.absorb rt ab;
  Alcotest.(check string) "absorb round-trip"
    (Metrics.to_prometheus ab)
    (Metrics.to_prometheus (Metrics.snapshot rt))

let test_prometheus_format () =
  let reg = Metrics.create () in
  fill_a reg;
  Metrics.inc
    (Metrics.counter reg ~labels:[ ("odd", "a\\b\"c\nd") ] "esc_total");
  let text = Metrics.to_prometheus (Metrics.snapshot reg) in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun l ->
      if l <> "" && l.[0] <> '#' then begin
        (* every sample line is "name[{labels}] <integer>" *)
        match String.rindex_opt l ' ' with
        | None -> Alcotest.failf "unparseable sample line: %s" l
        | Some i ->
            let v = String.sub l (i + 1) (String.length l - i - 1) in
            Alcotest.(check bool)
              (Printf.sprintf "integer value in %S" l)
              true
              (match int_of_string_opt v with Some _ -> true | None -> false)
      end)
    lines;
  Alcotest.(check bool) "HELP emitted" true
    (List.exists (fun l -> String.length l > 6 && String.sub l 0 6 = "# HELP") lines);
  (* label values escape backslash, quote and newline *)
  Alcotest.(check bool) "label escaping" true
    (List.exists
       (fun l ->
         String.length l > 9 && String.sub l 0 9 = "esc_total"
         && String.index_opt l '\n' = None)
       lines);
  (* histogram renders cumulative buckets with +Inf == _count *)
  Alcotest.(check bool) "+Inf bucket present" true
    (List.exists
       (fun l ->
         String.length l > 10
         && String.sub l 0 10 = "lat_bucket"
         && String.index_opt l 'I' <> None)
       lines)

let test_json_exporter_wellformed () =
  let reg = Metrics.create () in
  fill_a reg;
  fill_b reg;
  match Json.of_string (Metrics.to_json (Metrics.snapshot reg)) with
  | Json.List items ->
      Alcotest.(check bool) "non-empty" true (items <> []);
      List.iter
        (fun item ->
          match (Json.member "family" item, Json.member "value" item) with
          | Json.Str _, Json.Int _ -> ()
          | _ -> Alcotest.fail "metric item missing family/value")
        items
  | _ -> Alcotest.fail "metrics JSON did not parse as an array"

(* --- Chrome trace export --------------------------------------------- *)

let test_chrome_trace_wellformed () =
  let tr = Trace.create ~epoch:1000.0 () in
  Trace.name_process tr ~pid:0 "protean";
  Trace.name_thread tr ~pid:0 ~tid:1 "worker \"one\"";
  Trace.span tr ~cat:"cell" ~t0:1000.5 ~t1:1001.25 "milc|unsafe|P-core";
  Trace.instant tr ~cat:"supervisor" "spawn shard=0\nnewline";
  Trace.counter tr "cells" [ ("done", 3) ];
  let s = Trace.to_chrome_json tr in
  match Json.of_string s with
  | Json.List items ->
      Alcotest.(check int) "all events exported" 5 (List.length items);
      let phases =
        List.map
          (fun e ->
            match Json.member "ph" e with
            | Json.Str p -> p
            | _ -> Alcotest.fail "event without ph")
          items
      in
      Alcotest.(check (list string))
        "phases in record order"
        [ "M"; "M"; "X"; "i"; "C" ]
        phases;
      List.iter
        (fun e ->
          match Json.member "name" e with
          | Json.Str _ -> ()
          | _ -> Alcotest.fail "event without name")
        items;
      (* the span's microsecond arithmetic: 0.75s duration, 0.5s start *)
      let span = List.nth items 2 in
      Alcotest.(check bool) "span ts/dur" true
        (Json.member "ts" span = Json.Int 500_000
        && Json.member "dur" span = Json.Int 750_000)
  | _ -> Alcotest.fail "trace did not parse as a JSON array"

(* --- flamegraph folding ---------------------------------------------- *)

let test_flame_folding () =
  let fl = Flame.create () in
  Flame.add fl ~frames:[ "unsafe"; "milc"; "ARCH"; "kernel" ] 10;
  Flame.add fl ~frames:[ "unsafe"; "milc"; "ARCH"; "kernel" ] 5;
  Flame.add fl ~frames:[ "unsafe"; "milc"; "(no-commit)" ] 2;
  (* separators and whitespace in frames must be neutralized *)
  Flame.add fl ~frames:[ "un;safe"; "fn with space" ] 1;
  Flame.add fl ~frames:[ "dropme" ] 0;
  Alcotest.(check int) "total" 18 (Flame.total fl);
  let folded = Flame.to_folded fl in
  Alcotest.(check string) "folded, sorted, cleaned"
    "un_safe;fn_with_space 1\n\
     unsafe;milc;(no-commit) 2\n\
     unsafe;milc;ARCH;kernel 15\n"
    folded;
  let fl2 = Flame.of_list (Flame.to_list fl) in
  Flame.merge ~into:fl2 fl;
  Alcotest.(check int) "merge doubles" 36 (Flame.total fl2)

(* --- structured logger ----------------------------------------------- *)

let with_captured_log f =
  let lines = ref [] in
  Tlog.set_sink (fun l -> lines := l :: !lines);
  Fun.protect
    ~finally:(fun () ->
      Tlog.reset_sink ();
      Tlog.set_json false;
      Tlog.set_level Tlog.Info)
    (fun () ->
      f ();
      List.rev !lines)

let test_log_levels_and_json () =
  let lines =
    with_captured_log (fun () ->
        Tlog.debug ~src:"t" "suppressed at info";
        Tlog.warn ~src:"t" ~fields:[ ("k", "v") ] "be%s" "ware";
        Tlog.set_json true;
        Tlog.error ~src:"t" ~fields:[ ("path", "a\"b") ] "broke")
  in
  match lines with
  | [ text; json ] ->
      Alcotest.(check string) "text rendering"
        "[warn] t: beware (k=v)" text;
      (match Json.of_string json with
      | Json.Obj _ as j ->
          Alcotest.(check bool) "json fields" true
            (Json.member "level" j = Json.Str "error"
            && Json.member "src" j = Json.Str "t"
            && Json.member "msg" j = Json.Str "broke"
            && Json.member "path" j = Json.Str "a\"b")
      | _ -> Alcotest.fail "json log line did not parse as an object")
  | ls -> Alcotest.failf "expected 2 lines, got %d" (List.length ls)

(* Harness diagnostics route through the logger, so one sink captures
   lines from every domain/worker (satellite: structured [log_line]). *)
let test_log_line_routed () =
  let lines =
    with_captured_log (fun () -> E.log_line "cell %s took %dms" "x" 3)
  in
  Alcotest.(check (list string))
    "log_line routes through Telemetry.Log"
    [ "[info] harness: cell x took 3ms" ]
    lines

(* --- profiler detach flush (hooks [on_remove]) ----------------------- *)

let test_on_remove_finalizer () =
  let bus : unit Hooks.t = Hooks.create () in
  let flushed = ref (-1) in
  Hooks.subscribe bus ~name:"p"
    ~kinds:[ Hooks.k_cycle_end ]
    ~on_remove:(fun () ->
      (* the finalizer observes the bus *after* removal: interest bits
         are already clear, so a flush cannot re-enter the handler *)
      flushed := List.length (Hooks.subscribers bus))
    (fun () _ -> ());
  Alcotest.(check bool) "wanted before" true (Hooks.wanted bus Hooks.k_cycle_end);
  Hooks.unsubscribe bus "p";
  Alcotest.(check int) "finalizer ran after removal" 0 !flushed;
  Alcotest.(check bool) "interest cleared" false
    (Hooks.wanted bus Hooks.k_cycle_end);
  (* unsubscribing a name with no on_remove (or absent) is a no-op *)
  Hooks.unsubscribe bus "p"

let tiny =
  {
    Suite.name = "tiny";
    suite = "test";
    klass = Protean_isa.Program.Arch;
    kind = Suite.Single (fun () -> Helpers.store_load_sum 8);
  }

let stats_cycles (r : E.run_result) =
  List.fold_left (fun acc (s : Stats.t) -> acc + s.Stats.cycles) 0 r.E.stats

let with_collection f =
  E.collect_policy_metrics := true;
  E.collect_flame := true;
  Fun.protect
    ~finally:(fun () ->
      E.collect_policy_metrics := false;
      E.collect_flame := false)
    f

(* A profiler detached mid-run (here: at the natural end of the run,
   through [Profile.detach]'s [on_remove] flush) must account for every
   cycle: folded weights sum exactly to the run's cycle count. *)
let test_flame_totals_equal_cycles () =
  with_collection (fun () ->
      let session = E.create_session () in
      let r = E.run session (E.spec tiny E.cfg_stt) in
      let flame_total =
        List.fold_left (fun acc (_, n) -> acc + n) 0 r.E.flame
      in
      Alcotest.(check bool) "flame non-empty" true (r.E.flame <> []);
      Alcotest.(check int) "flame total == cycles" (stats_cycles r)
        flame_total)

let test_detach_flushes_partial_samples () =
  let profiled = ref None in
  let state = ref None in
  let program = Helpers.store_load_sum 8 in
  let policy = Protean_defense.Defense.unsafe.Protean_defense.Defense.make () in
  let r =
    Pipeline.run Config.test_core policy program ~overlays:[]
      ~on_start:(fun t ->
        let p = Profile.create () in
        Profile.attach ~sink:(fun snap -> profiled := Some snap) p t;
        state := Some t)
  in
  (* mid-run detach from the caller's perspective: the run is over but
     the profiler was never asked to report — unsubscribing must flush *)
  Alcotest.(check bool) "no flush before detach" true (!profiled = None);
  (match !state with Some t -> Profile.detach t | None -> ());
  match !profiled with
  | None -> Alcotest.fail "detach did not flush the profiler"
  | Some snap ->
      let attributed =
        List.fold_left (fun acc (_, n) -> acc + n) 0 snap.Profile.snap_flame
        + snap.Profile.snap_residual
      in
      Alcotest.(check int) "flush accounts for every cycle"
        r.Pipeline.stats.Stats.cycles attributed

(* --- collection switches off => telemetry is free -------------------- *)

let test_telemetry_off_is_free () =
  let session = E.create_session () in
  let r = E.run session (E.spec tiny E.cfg_stt) in
  Alcotest.(check bool) "no policy counters collected" true
    (r.E.policy_metrics = []);
  Alcotest.(check bool) "no flame collected" true (r.E.flame = [])

(* --- end-to-end determinism: serial vs -j 4 vs frame round-trip ------ *)

let grid session =
  List.iter
    (fun cfg -> ignore (E.run session (E.spec tiny cfg)))
    [ E.cfg_unsafe; E.cfg_stt; E.cfg_spt; E.cfg_spt_sb ]

let render session = Metrics.to_prometheus (Metrics.snapshot (Report.of_session session))

let test_session_metrics_deterministic () =
  with_collection (fun () ->
      let serial = E.create_session () in
      grid serial;
      let parallel = E.create_session () in
      E.prewarm ~jobs:4 parallel (fun () -> grid parallel);
      Alcotest.(check string) "serial == -j 4 (rendered bytes)"
        (render serial) (render parallel);
      (* The shard path: every cell's result crosses the frame protocol
         as JSON.  Round-tripping the whole cache must preserve the
         rendered registry and the folded flamegraph byte-for-byte. *)
      let shipped = E.create_session () in
      Hashtbl.iter
        (fun key r ->
          Hashtbl.replace shipped.E.cache key
            (Supervisor.Grid.result_of_json (Supervisor.Grid.result_to_json r)))
        serial.E.cache;
      Alcotest.(check string) "frame round-trip preserves metrics"
        (render serial) (render shipped);
      Alcotest.(check string) "frame round-trip preserves flame"
        (Flame.to_folded (Report.flame_of_session serial))
        (Flame.to_folded (Report.flame_of_session shipped));
      (* ≥ the acceptance floor of distinct families for a real grid *)
      let fams = Metrics.families (Metrics.snapshot (Report.of_session serial)) in
      Alcotest.(check bool)
        (Printf.sprintf "family count sane (%d)" (List.length fams))
        true
        (List.length fams >= 15))

(* --- speculation-window ledger: grid determinism --------------------- *)

(* With window collection on, the ledger's summary counters ride the
   run_result (and the frame codec's "wn" member) exactly like the
   policy metrics: serial, -j 4 and the shard round-trip must render the
   same registry bytes, window families included. *)
let test_window_counters_deterministic () =
  let saved = !E.collect_window in
  E.collect_window := true;
  Fun.protect
    ~finally:(fun () -> E.collect_window := saved)
    (fun () ->
      let serial = E.create_session () in
      grid serial;
      let parallel = E.create_session () in
      E.prewarm ~jobs:4 parallel (fun () -> grid parallel);
      Alcotest.(check string) "serial == -j 4 (rendered bytes)"
        (render serial) (render parallel);
      let shipped = E.create_session () in
      Hashtbl.iter
        (fun key r ->
          Hashtbl.replace shipped.E.cache key
            (Supervisor.Grid.result_of_json (Supervisor.Grid.result_to_json r)))
        serial.E.cache;
      Alcotest.(check string) "frame round-trip preserves window counters"
        (render serial) (render shipped);
      let fams =
        Metrics.families (Metrics.snapshot (Report.of_session serial))
      in
      Alcotest.(check bool) "window family exported" true
        (List.mem "protean_window_opened_total" fams);
      (* ... and the counters really came from the runs *)
      Hashtbl.iter
        (fun key (r : E.run_result) ->
          Alcotest.(check bool) (key ^ " saw windows") true
            (Twindow.counter "windows_opened" r.E.window > 0))
        serial.E.cache)

(* --- leakage attribution: deterministic across drivers --------------- *)

(* Every program of a G_gadget campaign is the known v1
   bounds-check-bypass gadget, so the unsafe baseline must violate and
   the attribution must name the probe transmitter with family v1 —
   identically from the serial driver, the -j 4 driver, and the
   supervised-style recovery (per-shard outcomes merged in cell order,
   witness replayed from the merged example's seed, exactly what
   protean-fuzz does under --shards). *)
let gadget_campaign =
  {
    Fuzz.default_campaign with
    Fuzz.programs = 4;
    inputs_per_program = 2;
    seed = 11;
    gen_klass = Gen.G_gadget;
    mode_of = Fuzz.arch_seq;
  }

let supervised_style_attribution campaign d =
  let ids = List.init campaign.Fuzz.programs Fun.id in
  let shard k = List.filter (fun i -> i mod 2 = k) ids in
  let per_cell =
    List.concat_map
      (fun k ->
        List.map
          (fun i ->
            let program = Fuzz.generate_program campaign i in
            (i, Fuzz.test_program campaign d ~index:i ~program))
          (shard k))
      [ 0; 1 ]
  in
  let out = Fuzz.fresh_outcome () in
  List.iter
    (fun (_, sub) -> Fuzz.merge_outcome ~into:out sub)
    (List.sort (fun (a, _) (b, _) -> compare a b) per_cell);
  match out.Fuzz.example with
  | None -> None
  | Some (pseed, _) ->
      let index = (pseed - campaign.Fuzz.seed) / 7919 in
      let w = ref None in
      let program = Fuzz.generate_program campaign index in
      (try ignore (Fuzz.test_program ~witness:w campaign d ~index ~program)
       with _ -> ());
      Option.bind !w (Fuzz.attribute_witness campaign d)

let test_attribution_deterministic () =
  let campaign = gadget_campaign in
  let d = Defense.unsafe in
  let serial = Fuzz.run_resilient ~shrink:false campaign d in
  let par = Parallel.fuzz_run_resilient ~jobs:4 ~shrink:false campaign d in
  let sharded = supervised_style_attribution campaign d in
  match serial.Fuzz.r_attribution with
  | None -> Alcotest.fail "gadget campaign produced no attribution"
  | Some a ->
      Alcotest.(check string) "gadget family" "v1" a.Twindow.at_family;
      Alcotest.(check bool) "transmitter pc named" true
        (a.Twindow.at_xmit_pc >= 0);
      Alcotest.(check bool) "source access pc named" true
        (a.Twindow.at_src_pc >= 0);
      Alcotest.(check bool) "window identified" true
        (a.Twindow.at_window_id >= 0 && a.Twindow.at_window_depth >= 0);
      Alcotest.(check bool) "serial == -j 4" true
        (par.Fuzz.r_attribution = Some a);
      Alcotest.(check bool) "serial == shard-style recovery" true
        (sharded = Some a)

let tests =
  [
    Alcotest.test_case "registry basics" `Quick test_registry_basics;
    Alcotest.test_case "merge deterministic" `Quick test_merge_deterministic;
    Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
    Alcotest.test_case "json exporter well-formed" `Quick
      test_json_exporter_wellformed;
    Alcotest.test_case "chrome trace well-formed" `Quick
      test_chrome_trace_wellformed;
    Alcotest.test_case "flame folding" `Quick test_flame_folding;
    Alcotest.test_case "log levels and json" `Quick test_log_levels_and_json;
    Alcotest.test_case "log_line routed through logger" `Quick
      test_log_line_routed;
    Alcotest.test_case "hooks on_remove finalizer" `Quick
      test_on_remove_finalizer;
    Alcotest.test_case "flame totals equal cycles" `Quick
      test_flame_totals_equal_cycles;
    Alcotest.test_case "detach flushes partial samples" `Quick
      test_detach_flushes_partial_samples;
    Alcotest.test_case "telemetry off is free" `Quick
      test_telemetry_off_is_free;
    Alcotest.test_case "session metrics deterministic" `Quick
      test_session_metrics_deterministic;
    Alcotest.test_case "window counters deterministic" `Quick
      test_window_counters_deterministic;
    Alcotest.test_case "attribution deterministic across drivers" `Quick
      test_attribution_deterministic;
  ]
