(* Certificate checker tests: every pass's certificates must validate on
   real benchmarks and on large fuzzed-program populations (translation
   validation with zero false positives), while each Fault_inject
   pass-mutation mode must be refuted as a structured Cert_violation. *)

module Protcc = Protean_protcc.Protcc
module Certificate = Protean_protcc.Certificate
module Certify = Protean_protcc.Certify
module Gen = Protean_amulet.Gen
module Fault_inject = Protean_defense.Fault_inject
module Suite = Protean_workloads.Suite

let check_clean what stats =
  (match stats.Certify.violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%s: %s" what (Certify.violation_to_string v));
  Alcotest.(check bool) (what ^ ": audited") true (stats.Certify.checked > 0)

(* Every single-program benchmark, compiled in the default multi-class
   mode (each function under the pass for its own class), must carry
   certificates the independent checker validates. *)
let test_benchmarks_validate () =
  let audited = ref 0 in
  List.iter
    (fun (b : Suite.benchmark) ->
      match b.Suite.kind with
      | Suite.Multi _ -> ()
      | Suite.Single f ->
          let p = f () in
          let res = Protcc.instrument p in
          let stats = Certify.audit ~original:p res in
          check_clean ("benchmark " ^ b.Suite.name) stats;
          audited := !audited + 1)
    Suite.all;
  Alcotest.(check bool) "audited a real population" true (!audited >= 10)

(* Fuzzer-style audit: overlay pairs sharing the public region and
   differing in the secret region, exactly as the AMuLeT campaigns
   drive the checker. *)
let fuzz_inputs seed =
  let rng = Random.State.make [| seed; 0xce47 |] in
  List.init 3 (fun _ ->
      let public = Gen.random_public rng in
      let a = Gen.random_secret rng in
      let b = Gen.random_secret rng in
      ([ public; a ], [ public; b ]))

let audit_generated pass gen seed =
  let p = Gen.generate { Gen.default_spec with Gen.seed; klass = gen } in
  let res = Protcc.instrument ~pass_override:pass p in
  Certify.audit ~inputs:(fuzz_inputs seed) ~original:p res

(* The acceptance bar: a 500-program fuzz population across all four
   passes with zero violations — the passes are sound and the checker
   raises no false refutations. *)
let test_fuzz_population_clean () =
  let combos =
    [
      ("ct", Protcc.P_ct, Gen.G_ct);
      ("cts", Protcc.P_cts, Gen.G_ct);
      ("unr", Protcc.P_unr, Gen.G_unr);
      ("arch", Protcc.P_arch, Gen.G_arch);
      ("rand", Protcc.P_rand (7, 0.5), Gen.G_arch);
    ]
  in
  List.iter
    (fun (name, pass, gen) ->
      for seed = 1 to 100 do
        let stats = audit_generated pass gen seed in
        check_clean (Printf.sprintf "%s seed %d" name seed) stats
      done)
    combos

(* ARCH and RAND certify nothing: their certificates are vacuous /
   uncertified markers with zero claims. *)
let test_vacuous_styles () =
  let p = Gen.generate { Gen.default_spec with Gen.seed = 3 } in
  List.iter
    (fun pass ->
      let res = Protcc.instrument ~pass_override:pass p in
      List.iter
        (fun c ->
          Alcotest.(check bool) "claims nothing" true
            (Certificate.claims_nothing c);
          Alcotest.(check int) "no claims" 0 (Certificate.claim_count c))
        res.Protcc.certs)
    [ Protcc.P_arch; Protcc.P_rand (11, 0.5) ]

(* A certified pass must produce a non-trivial number of claims — the
   certificate actually says something. *)
let test_certified_claims_exist () =
  let p = Gen.generate { Gen.default_spec with Gen.seed = 5; klass = Gen.G_ct } in
  let res = Protcc.instrument ~pass_override:Protcc.P_ct p in
  let claims =
    List.fold_left (fun n c -> n + Certificate.claim_count c) 0 res.Protcc.certs
  in
  Alcotest.(check bool) "claims emitted" true (claims > 0)

(* Each pass-mutation mode must be refuted somewhere in a seeded
   population; cert-drop-prot must be refuted on *every* program that
   has an installed PROT to drop (the static audit is deterministic). *)
let mutation_catches mode pass gen =
  let caught = ref 0 and mutated = ref 0 in
  for seed = 1 to 20 do
    let p = Gen.generate { Gen.default_spec with Gen.seed; klass = gen } in
    let res = Protcc.instrument ~pass_override:pass p in
    let res' = Fault_inject.mutate mode res in
    if res' <> res then begin
      incr mutated;
      let stats = Certify.audit ~inputs:(fuzz_inputs seed) ~original:p res' in
      if stats.Certify.violations <> [] then incr caught
    end
  done;
  (!caught, !mutated)

let test_mutation_drop_prot () =
  let caught, mutated =
    mutation_catches Fault_inject.CF_drop_prot Protcc.P_ct Gen.G_ct
  in
  Alcotest.(check bool) "population mutated" true (mutated > 0);
  Alcotest.(check int) "every dropped PROT refuted" mutated caught

let test_mutation_widen_safe () =
  let caught, mutated =
    mutation_catches Fault_inject.CF_widen_safe Protcc.P_ct Gen.G_ct
  in
  Alcotest.(check bool) "population mutated" true (mutated > 0);
  Alcotest.(check bool)
    (Printf.sprintf "widened claims refuted (%d/%d)" caught mutated)
    true
    (caught > mutated / 2)

let test_mutation_stale_fact () =
  let caught, mutated =
    mutation_catches Fault_inject.CF_stale_fact Protcc.P_ct Gen.G_ct
  in
  Alcotest.(check bool) "population mutated" true (mutated > 0);
  Alcotest.(check bool)
    (Printf.sprintf "stale facts refuted (%d/%d)" caught mutated)
    true
    (caught > mutated / 2)

(* audit_exn surfaces the first violation as the structured exception
   the supervisor fault path expects (and the registered printer gives
   it a readable form). *)
let test_violation_exception () =
  let p = Gen.generate { Gen.default_spec with Gen.seed = 2; klass = Gen.G_ct } in
  let res =
    Fault_inject.mutate Fault_inject.CF_drop_prot
      (Protcc.instrument ~pass_override:Protcc.P_ct p)
  in
  match Certify.audit_exn ~inputs:(fuzz_inputs 2) ~original:p res with
  | _ -> Alcotest.fail "mutated certificate must raise"
  | exception Certify.Cert_violation v ->
      let s = Printexc.to_string (Certify.Cert_violation v) in
      Alcotest.(check bool) "printer registered" true
        (String.length s >= 14 && String.sub s 0 14 = "cert-violation")

let tests =
  [
    Alcotest.test_case "benchmark certificates validate" `Quick
      test_benchmarks_validate;
    Alcotest.test_case "500-program fuzz population clean" `Slow
      test_fuzz_population_clean;
    Alcotest.test_case "arch/rand are vacuous" `Quick test_vacuous_styles;
    Alcotest.test_case "certified passes emit claims" `Quick
      test_certified_claims_exist;
    Alcotest.test_case "mutation: drop-prot refuted" `Quick
      test_mutation_drop_prot;
    Alcotest.test_case "mutation: widen-safe refuted" `Quick
      test_mutation_widen_safe;
    Alcotest.test_case "mutation: stale-fact refuted" `Quick
      test_mutation_stale_fact;
    Alcotest.test_case "violation raises structured fault" `Quick
      test_violation_exception;
  ]
