(* Golden determinism suite: the stage-module pipeline must reproduce
   the seed pipeline's recorded observables bit-for-bit — cycle counts,
   committed/squash counters and the MD5 digest of the full
   attacker-visible trace — for every corpus cell, both serially and
   when the cells run on a parallel grid.

   The expected file was recorded from the pre-refactor pipeline
   (`protean-tables golden`); a mismatch means the refactor changed
   simulated behavior, not that the expectation moved. *)

module Golden = Protean_harness.Golden

(* `dune runtest` executes in _build/default/test (where the (deps ...)
   copy lives); `dune exec test/test_main.exe` runs from the project
   root — accept both. *)
let expected_file () =
  List.find Sys.file_exists
    [
      "golden_pipeline.expected";
      "test/golden_pipeline.expected";
      Filename.concat (Filename.dirname Sys.executable_name)
        "golden_pipeline.expected";
    ]

let read_expected () =
  let ic = open_in (expected_file ()) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let check_lines name actual =
  let expected = read_expected () in
  Alcotest.(check int)
    (name ^ ": corpus size") (List.length expected) (List.length actual);
  List.iteri
    (fun i (e, a) ->
      Alcotest.(check string) (Printf.sprintf "%s: cell %d" name i) e a)
    (List.combine expected actual)

let test_serial () = check_lines "serial" (Golden.lines ())

let test_parallel () = check_lines "parallel -j 4" (Golden.lines ~jobs:4 ())

let tests =
  [
    Alcotest.test_case "cycle-exact (serial)" `Slow test_serial;
    Alcotest.test_case "cycle-exact (-j 4)" `Slow test_parallel;
  ]
