(* Golden determinism suite: the stage-module pipeline must reproduce
   the seed pipeline's recorded observables bit-for-bit — cycle counts,
   committed/squash counters and the MD5 digest of the full
   attacker-visible trace — for every corpus cell, both serially and
   when the cells run on a parallel grid.

   The expected file was recorded from the pre-refactor pipeline
   (`protean-tables golden`); a mismatch means the refactor changed
   simulated behavior, not that the expectation moved. *)

module Golden = Protean_harness.Golden
module Supervisor = Protean_harness.Supervisor
module Shard = Protean_harness.Shard
module Json = Protean_harness.Shard.Json
module Pipeline = Protean_ooo.Pipeline

(* The recorded expectations were produced by the spinning machine;
   event-driven skip-ahead is the optimization under test, so the
   corpus must be byte-identical with it on (the default everywhere
   else in this file) *and* off. *)
let with_skip_ahead v f =
  let saved = Pipeline.skip_ahead_enabled () in
  Pipeline.set_skip_ahead v;
  Fun.protect ~finally:(fun () -> Pipeline.set_skip_ahead saved) f

(* `dune runtest` executes in _build/default/test (where the (deps ...)
   copy lives); `dune exec test/test_main.exe` runs from the project
   root — accept both. *)
let expected_file base =
  List.find Sys.file_exists
    [
      base;
      Filename.concat "test" base;
      Filename.concat (Filename.dirname Sys.executable_name) base;
    ]

let read_expected base =
  let ic = open_in (expected_file base) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let check_lines ?(base = "golden_pipeline.expected") name actual =
  let expected = read_expected base in
  Alcotest.(check int)
    (name ^ ": corpus size") (List.length expected) (List.length actual);
  List.iteri
    (fun i (e, a) ->
      Alcotest.(check string) (Printf.sprintf "%s: cell %d" name i) e a)
    (List.combine expected actual)

let test_serial () = check_lines "serial" (Golden.lines ())

let test_parallel () = check_lines "parallel -j 4" (Golden.lines ~jobs:4 ())

let test_serial_no_skip () =
  with_skip_ahead false (fun () ->
      check_lines "serial --no-skip-ahead" (Golden.lines ()))

let test_parallel_no_skip () =
  with_skip_ahead false (fun () ->
      check_lines "-j 4 --no-skip-ahead" (Golden.lines ~jobs:4 ()))

(* --- width corpus ------------------------------------------------------ *)

let check_width name actual =
  check_lines ~base:"golden_width.expected" name actual

let test_width_serial () = check_width "width serial" (Golden.width_lines ())

let test_width_parallel () =
  check_width "width -j 4" (Golden.width_lines ~jobs:4 ())

(* Two crash-isolated shard workers (in-process domains running the real
   [Shard.serve] loop over pipes) compute the width corpus by cell key;
   the supervised merge must be byte-identical to the serial lines. *)
let domain_transport ~compute () =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let crashed = ref false in
  let d =
    Domain.spawn (fun () ->
        (try Shard.serve ~compute in_r out_w with _ -> crashed := true);
        (try Unix.close out_w with Unix.Unix_error _ -> ());
        try Unix.close in_r with Unix.Unix_error _ -> ())
  in
  {
    Supervisor.t_pid = None;
    t_read = out_r;
    t_write = in_w;
    t_err = None;
    t_kill = ignore;
    t_wait =
      (fun () ->
        Domain.join d;
        if !crashed then ("signal SIGSEGV", false) else ("exit 0", true));
  }

let run_width_shards name =
  let keys = Golden.width_keys () in
  let cells = List.mapi (fun i k -> { Shard.c_id = i; c_key = k }) keys in
  let compute k = Json.Str (Golden.run_width_key k) in
  let spawn ~shard:_ ~attempt:_ ~env_fault:_ = domain_transport ~compute () in
  let config =
    {
      Supervisor.default_config with
      Supervisor.shards = 2;
      max_attempts = 2;
      heartbeat = 60.0;
      wall = 300.0;
      backoff = 0.01;
    }
  in
  let out =
    Supervisor.run ~spawn config ~worker_argv:[||]
      ~fallback:(fun _ -> Alcotest.fail "width shard fell back in-process")
      cells
  in
  let actual =
    List.map
      (function
        | _, Supervisor.O_ok (Json.Str line) -> line
        | id, _ -> Alcotest.fail (Printf.sprintf "width cell %d faulted" id))
      out
  in
  check_width name actual

let test_width_shards () = run_width_shards "width --shards 2"

let test_width_shards_no_skip () =
  with_skip_ahead false (fun () ->
      run_width_shards "width --shards 2 --no-skip-ahead")

let tests =
  [
    Alcotest.test_case "cycle-exact (serial)" `Slow test_serial;
    Alcotest.test_case "cycle-exact (-j 4)" `Slow test_parallel;
    Alcotest.test_case "cycle-exact (serial, --no-skip-ahead)" `Slow
      test_serial_no_skip;
    Alcotest.test_case "cycle-exact (-j 4, --no-skip-ahead)" `Slow
      test_parallel_no_skip;
    Alcotest.test_case "width sweep cycle-exact (serial)" `Slow
      test_width_serial;
    Alcotest.test_case "width sweep cycle-exact (-j 4)" `Slow
      test_width_parallel;
    Alcotest.test_case "width sweep cycle-exact (--shards 2)" `Slow
      test_width_shards;
    Alcotest.test_case "width sweep cycle-exact (--shards 2, --no-skip-ahead)"
      `Slow test_width_shards_no_skip;
  ]
