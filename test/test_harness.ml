(* Harness tests: memoization, normalization sanity, geomean, and the
   text renderers. *)

module E = Protean_harness.Experiment
module Textplot = Protean_harness.Textplot
module Parallel = Protean_harness.Parallel
module Suite = Protean_workloads.Suite

let tiny =
  {
    Suite.name = "tiny";
    suite = "test";
    klass = Protean_isa.Program.Arch;
    kind = Suite.Single (fun () -> Helpers.store_load_sum 8);
  }

let test_normalized_unsafe_is_one () =
  let session = E.create_session () in
  Alcotest.(check (float 1e-9)) "unsafe/unsafe = 1" 1.0
    (E.normalized session tiny E.cfg_unsafe)

let test_memoization () =
  let session = E.create_session () in
  let r1 = E.run session (E.spec tiny E.cfg_unsafe) in
  let r2 = E.run session (E.spec tiny E.cfg_unsafe) in
  Alcotest.(check bool) "same object" true (r1 == r2)

let test_defense_never_free_lunch () =
  (* SPT-SB can never be faster than unsafe on a transmitter-containing
     benchmark (it only ever adds stalls). *)
  let session = E.create_session () in
  Alcotest.(check bool) "spt-sb >= 1" true
    (E.normalized session tiny E.cfg_spt_sb >= 1.0)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (E.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 3.0 (E.geomean [ 3.0 ])

let test_textplot_table () =
  let buf = Buffer.create 64 in
  let out = Format.formatter_of_buffer buf in
  Textplot.table ~out ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ];
  Format.pp_print_flush out ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "header present" true
    (String.length s > 0
    && String.index_opt s 'a' <> None
    && String.index_opt s '-' <> None)

let test_protcc_overhead_metric () =
  let session = E.create_session () in
  let size, runtime, _ =
    E.protcc_overhead session tiny Protean_protcc.Protcc.P_ct
  in
  Alcotest.(check bool) "code grows or stays" true (size >= 1.0);
  Alcotest.(check bool) "runtime sane" true (runtime > 0.5 && runtime < 3.0)

(* --- Parallel.map failure semantics ---------------------------------- *)

exception Boom of int

(* A raising task must not hang or starve the scheduler: every other
   task still runs to completion before the exception propagates. *)
let test_parallel_raise_does_not_hang () =
  let n = 16 in
  let ran = Array.make n false in
  let tasks =
    Array.init n (fun i () ->
        ran.(i) <- true;
        if i = 5 then raise (Boom i);
        i * i)
  in
  (match Parallel.map ~jobs:4 tasks with
  | _ -> Alcotest.fail "exception was swallowed"
  | exception Boom 5 -> ());
  Alcotest.(check bool) "all tasks ran despite the failure" true
    (Array.for_all Fun.id ran)

(* When several tasks raise, the exception of the lowest task index is
   the one re-raised — independent of scheduling — so parallel failures
   are as deterministic as serial ones. *)
let test_parallel_first_by_index_raised () =
  let tasks =
    Array.init 12 (fun i () ->
        if i = 3 || i = 7 || i = 11 then raise (Boom i);
        i)
  in
  (* Serial and parallel agree on which failure surfaces. *)
  (match Parallel.map ~jobs:1 tasks with
  | _ -> Alcotest.fail "serial: exception was swallowed"
  | exception Boom i -> Alcotest.(check int) "serial first-by-index" 3 i);
  match Parallel.map ~jobs:4 tasks with
  | _ -> Alcotest.fail "parallel: exception was swallowed"
  | exception Boom i -> Alcotest.(check int) "parallel first-by-index" 3 i

(* Non-failing results are still computed (visible via side effects):
   a failed cell costs exactly that cell, nothing downstream of it. *)
let test_parallel_survivors_computed () =
  let n = 10 in
  let acc = Array.make n (-1) in
  let tasks =
    Array.init n (fun i () ->
        if i = 0 then raise (Boom 0);
        acc.(i) <- 2 * i;
        2 * i)
  in
  (match Parallel.map ~jobs:3 tasks with
  | _ -> Alcotest.fail "exception was swallowed"
  | exception Boom 0 -> ());
  for i = 1 to n - 1 do
    Alcotest.(check int) (Printf.sprintf "task %d result materialized" i)
      (2 * i) acc.(i)
  done;
  Alcotest.(check int) "failed task left no result" (-1) acc.(0)

let tests =
  [
    Alcotest.test_case "normalized unsafe = 1" `Quick test_normalized_unsafe_is_one;
    Alcotest.test_case "memoization" `Quick test_memoization;
    Alcotest.test_case "spt-sb never free" `Quick test_defense_never_free_lunch;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "textplot table" `Quick test_textplot_table;
    Alcotest.test_case "protcc overhead metric" `Quick test_protcc_overhead_metric;
    Alcotest.test_case "parallel raise does not hang" `Quick
      test_parallel_raise_does_not_hang;
    Alcotest.test_case "parallel re-raises first failure by index" `Quick
      test_parallel_first_by_index_raised;
    Alcotest.test_case "parallel failure spares other results" `Quick
      test_parallel_survivors_computed;
  ]
