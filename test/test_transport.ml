(* Transport-layer tests: the [Shard.Transport] seam shared by pipe and
   TCP workers, address parsing, frame-size caps, network fault
   injection semantics, syscall hygiene (EINTR retry, SIGPIPE
   suppression), and the /metrics HTTP listener.  Everything here runs
   in-process over pipes / socketpairs — no real network peers. *)

module Shard = Protean_harness.Shard
module Json = Protean_harness.Shard.Json
module Fault_inject = Protean_defense.Fault_inject
module Http_listener = Protean_telemetry.Http_listener
module Transport = Shard.Transport

(* --- address parsing --------------------------------------------------- *)

let test_sockaddr_parsing () =
  let ip, port = Shard.sockaddr_of_string "127.0.0.1:8080" in
  Alcotest.(check string) "numeric host" "127.0.0.1"
    (Unix.string_of_inet_addr ip);
  Alcotest.(check int) "port" 8080 port;
  let _, p0 = Shard.sockaddr_of_string "0.0.0.0:0" in
  Alcotest.(check int) "port 0 allowed (ephemeral)" 0 p0;
  List.iter
    (fun s ->
      match Shard.sockaddr_of_string s with
      | _ -> Alcotest.fail (Printf.sprintf "accepted bad address %S" s)
      | exception Invalid_argument _ -> ())
    [ "no-port"; "127.0.0.1:badport"; "127.0.0.1:70000"; "127.0.0.1:-1" ]

(* --- handshake frame codec --------------------------------------------- *)

let test_handshake_frames_roundtrip () =
  List.iter
    (fun f ->
      let b = Shard.encode_frame f in
      let dec = Shard.Decoder.create () in
      Shard.Decoder.feed dec b 0 (Bytes.length b);
      Alcotest.(check bool) "handshake frame round-trips" true
        (Shard.Decoder.next dec = Some f))
    [
      Shard.F_hello { h_version = 1; h_token = "secret" };
      Shard.F_hello { h_version = 99; h_token = "" };
      Shard.F_welcome 1;
      Shard.F_reject "bad campaign token";
    ]

(* --- transport round-trips --------------------------------------------- *)

let with_pipe_transport ?fault f =
  Transport.fault_spent := false;
  let r, w = Unix.pipe ~cloexec:false () in
  let tr = Transport.of_fds ?fault ~input:r ~output:w () in
  Fun.protect
    ~finally:(fun () ->
      Transport.fault_spent := false;
      Transport.close tr)
    (fun () -> f tr r w)

(* A transport writing into its own pipe: what [send] puts on the wire
   is exactly what [recv] yields, for every frame shape. *)
let test_transport_roundtrip_pipe () =
  with_pipe_transport (fun tr _r _w ->
      let frames =
        [
          Shard.F_work [ { Shard.c_id = 1; c_key = "milc" } ];
          Shard.F_hb 1;
          Shard.F_result (1, Json.Obj [ ("v", Json.Int 42) ]);
          Shard.F_done;
        ]
      in
      List.iter (Transport.send tr) frames;
      List.iter
        (fun f ->
          Alcotest.(check bool) "frame received intact" true
            (Transport.recv tr = Some f))
        frames;
      Alcotest.(check bool) "pipe transport is not a socket" true
        (not tr.Transport.tr_socket))

(* Over a socketpair the same fd serves both directions; the transport
   must classify itself as a socket (half-close via shutdown). *)
let test_transport_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Transport.fault_spent := false;
  let tra = Transport.of_fds ~desc:"sock" ~input:a ~output:a () in
  let trb = Transport.of_fds ~desc:"sock" ~input:b ~output:b () in
  Fun.protect
    ~finally:(fun () ->
      Transport.close tra;
      Transport.close trb)
    (fun () ->
      Alcotest.(check bool) "socket transport detected" true
        tra.Transport.tr_socket;
      Transport.send tra (Shard.F_hb 7);
      Alcotest.(check bool) "frame crosses the socketpair" true
        (Transport.recv trb = Some (Shard.F_hb 7));
      (* Half-close: [shutdown_send] ends our writes but the peer's
         reads see a clean EOF, not an error. *)
      Transport.shutdown_send tra;
      Alcotest.(check bool) "half-close reads as EOF" true
        (Transport.recv trb = None))

(* --- frame-size cap ---------------------------------------------------- *)

let prefix_of len =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  b

(* The decoder must fault on an oversized length prefix as soon as the
   prefix arrives — before any payload shows up, so a hostile or
   corrupt peer cannot make it allocate the promised gigabytes. *)
let test_decoder_rejects_oversized_frame () =
  let dec = Shard.Decoder.create ~max_frame:1024 () in
  let b = prefix_of 4096 in
  Shard.Decoder.feed dec b 0 4;
  (match Shard.Decoder.next dec with
  | _ -> Alcotest.fail "oversized frame accepted"
  | exception Shard.Protocol msg ->
      Alcotest.(check bool) "error names the cap" true
        (String.length msg > 0));
  (* An all-ones prefix — what NF_garbage puts on the wire — is far
     beyond even the default cap. *)
  let dec = Shard.Decoder.create () in
  Shard.Decoder.feed dec (Bytes.make 8 '\xff') 0 8;
  (match Shard.Decoder.next dec with
  | _ -> Alcotest.fail "garbage prefix accepted"
  | exception Shard.Protocol _ -> ());
  (* At or under the cap still decodes. *)
  let dec = Shard.Decoder.create ~max_frame:1024 () in
  let b = Shard.encode_frame (Shard.F_hb 3) in
  Shard.Decoder.feed dec b 0 (Bytes.length b);
  Alcotest.(check bool) "frame under the cap decodes" true
    (Shard.Decoder.next dec = Some (Shard.F_hb 3))

let test_read_frame_rejects_oversized_frame () =
  let r, w = Unix.pipe ~cloexec:false () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let b = prefix_of (2 * 1024 * 1024) in
      ignore (Unix.write w b 0 4);
      match Shard.read_frame ~max_frame:1024 r with
      | _ -> Alcotest.fail "blocking reader accepted oversized frame"
      | exception Shard.Protocol _ -> ())

(* --- network fault modes ----------------------------------------------- *)

let test_net_mode_of_string () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Fault_inject.net_mode_name m ^ " round-trips")
        true
        (Fault_inject.net_mode_of_string (Fault_inject.net_mode_name m) = m))
    [
      Fault_inject.NF_drop 2;
      Fault_inject.NF_garbage 1;
      Fault_inject.NF_delay 0.5;
      Fault_inject.NF_half_close 3;
      Fault_inject.NF_short_write 1;
    ];
  List.iter
    (fun s ->
      match Fault_inject.net_mode_of_string s with
      | _ -> Alcotest.fail (Printf.sprintf "accepted bad mode %S" s)
      | exception Invalid_argument _ -> ())
    [ "net-drop:0"; "net-drop:x"; "net-delay:-1"; "worker-kill"; "" ]

(* NF_drop: the nth frame vanishes; neighbours are untouched and the
   fault is spent (exactly-once per process). *)
let test_net_fault_drop () =
  with_pipe_transport ~fault:(Fault_inject.NF_drop 2) (fun tr _r _w ->
      Transport.send tr (Shard.F_hb 1);
      Transport.send tr (Shard.F_hb 2);
      (* dropped *)
      Transport.send tr (Shard.F_hb 3);
      Alcotest.(check bool) "frame 1 arrives" true
        (Transport.recv tr = Some (Shard.F_hb 1));
      Alcotest.(check bool) "frame 2 dropped, frame 3 next" true
        (Transport.recv tr = Some (Shard.F_hb 3));
      Alcotest.(check bool) "fault spent after firing" true
        !Transport.fault_spent)

(* NF_garbage: the peer faults structurally (oversized prefix), it does
   not allocate or misparse. *)
let test_net_fault_garbage () =
  with_pipe_transport ~fault:(Fault_inject.NF_garbage 1) (fun tr r _w ->
      Transport.send tr (Shard.F_hb 1);
      let dec = Shard.Decoder.create () in
      let buf = Bytes.create 4096 in
      let k = Unix.read r buf 0 (Bytes.length buf) in
      Shard.Decoder.feed dec buf 0 k;
      match Shard.Decoder.next dec with
      | _ -> Alcotest.fail "garbage bytes decoded as a frame"
      | exception Shard.Protocol _ -> ())

(* NF_half_close: the peer sees EOF from that frame on. *)
let test_net_fault_half_close () =
  with_pipe_transport ~fault:(Fault_inject.NF_half_close 2) (fun tr _r _w ->
      Transport.send tr (Shard.F_hb 1);
      Transport.send tr (Shard.F_hb 2);
      Alcotest.(check bool) "frame 1 arrives" true
        (Transport.recv tr = Some (Shard.F_hb 1));
      Alcotest.(check bool) "then EOF" true (Transport.recv tr = None))

(* NF_short_write: a few bytes of a real frame, then EOF — the reader
   must report a truncation fault, not hang or misparse. *)
let test_net_fault_short_write () =
  with_pipe_transport ~fault:(Fault_inject.NF_short_write 1) (fun tr _r _w ->
      Transport.send tr (Shard.F_hb 1);
      match Transport.recv tr with
      | _ -> Alcotest.fail "short write parsed as a frame"
      | exception Shard.Protocol _ -> ())

(* NF_delay delivers everything (slowly); it is the one mode that does
   not spend itself. *)
let test_net_fault_delay () =
  with_pipe_transport ~fault:(Fault_inject.NF_delay 0.01) (fun tr _r _w ->
      Transport.send tr (Shard.F_hb 1);
      Transport.send tr (Shard.F_hb 2);
      Alcotest.(check bool) "delayed frames still arrive" true
        (Transport.recv tr = Some (Shard.F_hb 1)
        && Transport.recv tr = Some (Shard.F_hb 2));
      Alcotest.(check bool) "delay is not one-shot" true
        (not !Transport.fault_spent))

(* --- syscall hygiene --------------------------------------------------- *)

let test_retry_intr () =
  let attempts = ref 0 in
  let v =
    Shard.retry_intr (fun () ->
        incr attempts;
        if !attempts < 3 then raise (Unix.Unix_error (Unix.EINTR, "read", ""))
        else if !attempts < 4 then
          raise (Unix.Unix_error (Unix.EAGAIN, "read", ""))
        else 42)
  in
  Alcotest.(check int) "value returned after retries" 42 v;
  Alcotest.(check int) "EINTR and EAGAIN both retried" 4 !attempts;
  (* Other errors pass straight through. *)
  match Shard.retry_intr (fun () -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))) with
  | _ -> Alcotest.fail "EPIPE must not be retried"
  | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()

(* A frame write to a dead peer must raise EPIPE — recoverable by the
   supervisor's requeue path — rather than killing the process with
   SIGPIPE.  This is the worker-SIGKILLed-mid-write regression. *)
let test_sigpipe_write_to_dead_peer () =
  Shard.ignore_sigpipe ();
  let r, w = Unix.pipe ~cloexec:false () in
  Unix.close r;
  Fun.protect
    ~finally:(fun () -> try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      match Shard.write_frame w (Shard.F_hb 1) with
      | () -> Alcotest.fail "write to closed pipe succeeded"
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ())

(* --- /metrics HTTP listener -------------------------------------------- *)

(* Drive the listener the way its owner would: select on [fds], feed
   the readable set to [handle], until the client socket answers. *)
let http_request listener request =
  let sock = Shard.dial (Printf.sprintf "127.0.0.1:%d" (Http_listener.port listener)) in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.of_string request in
      ignore (Unix.write sock b 0 (Bytes.length b));
      let buf = Buffer.create 1024 in
      let scratch = Bytes.create 1024 in
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec pump () =
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "http listener never answered";
        let fds = sock :: Http_listener.fds listener in
        let readable, _, _ = Unix.select fds [] [] 0.25 in
        Http_listener.handle listener
          (List.filter (fun fd -> not (fd == sock)) readable);
        if List.memq sock readable then begin
          match Unix.read sock scratch 0 (Bytes.length scratch) with
          | 0 -> Buffer.contents buf
          | k ->
              Buffer.add_subbytes buf scratch 0 k;
              pump ()
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
              Buffer.contents buf
        end
        else pump ()
      in
      pump ())

let test_http_metrics_endpoint () =
  let listener =
    Http_listener.create ~addr:"127.0.0.1:0" (fun () ->
        "# TYPE protean_cells_total counter\nprotean_cells_total 5\n")
  in
  Fun.protect
    ~finally:(fun () -> Http_listener.close listener)
    (fun () ->
      Alcotest.(check bool) "ephemeral port bound" true
        (Http_listener.port listener > 0);
      let resp = http_request listener "GET /metrics HTTP/1.0\r\n\r\n" in
      let has needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "200 OK" true (has "HTTP/1.0 200 OK" resp);
      Alcotest.(check bool) "prometheus content type" true
        (has "Content-Type: text/plain; version=0.0.4" resp);
      Alcotest.(check bool) "body is the exposition" true
        (has "protean_cells_total 5" resp);
      let resp404 = http_request listener "GET /nope HTTP/1.0\r\n\r\n" in
      Alcotest.(check bool) "unknown path is 404" true
        (has "404 Not Found" resp404);
      let resp400 = http_request listener "BREW /coffee HTTP/1.0\r\n\r\n" in
      Alcotest.(check bool) "non-GET is 400" true (has "400 Bad Request" resp400);
      (* A second scrape works: the listener survives its clients. *)
      let again = http_request listener "GET /metrics HTTP/1.0\r\n\r\n" in
      Alcotest.(check bool) "listener survives across scrapes" true
        (has "200 OK" again))

(* --- pool-level fault injection ---------------------------------------- *)

(* The in-process mode tests above pin down per-frame semantics; these
   drive the remaining PROTEAN_NET_FAULT modes (delay, half-close)
   through a real TCP worker pool and assert the supervisor's lease
   re-dispatch keeps the merged output byte-identical to a serial run —
   the same acceptance bar the drop/garbage modes already meet in the
   supervisor suite. *)

module Supervisor = Protean_harness.Supervisor

let pool_compute key = Json.Obj [ ("v", Json.Str ("computed:" ^ key)) ]

let pool_cells n =
  List.init n (fun i -> { Shard.c_id = i; c_key = "k" ^ string_of_int i })

let pool_expected n =
  List.init n (fun i ->
      ( i,
        Supervisor.O_ok
          (Json.Obj [ ("v", Json.Str (Printf.sprintf "computed:k%d" i)) ]) ))

let pool_no_fallback _ = Alcotest.fail "fallback must not run in this scenario"

let pool_sup_config () =
  {
    Supervisor.default_config with
    Supervisor.shards = 1;
    max_attempts = 2;
    heartbeat = 30.0;
    wall = 60.0;
    backoff = 0.01;
  }

let pool_config () =
  {
    Supervisor.default_pool_config with
    Supervisor.pl_listen = "127.0.0.1:0";
    pl_accept_wall = 30.0;
  }

let pool_record_events bus =
  let events = ref [] in
  Supervisor.subscribe bus ~name:"record" (fun e -> events := e :: !events);
  fun () -> List.rev !events

(* One real dial-in worker on a domain, started as soon as the pool
   announces its port; join returns its terminal outcome. *)
let pool_dialer bus =
  let domain = ref None in
  Supervisor.subscribe bus ~name:"dialer" (function
    | Supervisor.Listening { port; _ } ->
        let addr = Printf.sprintf "127.0.0.1:%d" port in
        domain :=
          Some
            (Domain.spawn (fun () ->
                 match
                   Shard.connect_worker ~reconnect:8 ~backoff:0.05 ~addr
                     ~token:"protean" ~compute:pool_compute ()
                 with
                 | () -> None
                 | exception e -> Some e))
    | _ -> ());
  fun () ->
    let outcome = Option.map Domain.join !domain in
    (* connect_worker rewired the global log sink to its (now closed)
       connection; put stderr back for the rest of the suite. *)
    Protean_telemetry.Log.reset_sink ();
    outcome

let with_net_fault mode f =
  Unix.putenv Fault_inject.net_env mode;
  Transport.fault_spent := false;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Fault_inject.net_env "";
      Transport.fault_spent := false)
    f

(* net-delay throttles every frame on the wire but loses none: the
   campaign completes without any re-dispatch, byte-identical. *)
let test_pool_delay_byte_identical () =
  with_net_fault "net-delay:0.02" (fun () ->
      let bus = Supervisor.create_bus () in
      let events = pool_record_events bus in
      let join = pool_dialer bus in
      let out =
        Supervisor.run_pool ~bus (pool_sup_config ()) ~pool:(pool_config ())
          ~fallback:pool_no_fallback (pool_cells 4)
      in
      Alcotest.(check bool) "worker exits cleanly" true (join () = Some None);
      Alcotest.(check bool) "identical to serial despite the delay" true
        (out = pool_expected 4);
      Alcotest.(check bool) "no cell was poisoned" true
        (not
           (List.exists
              (function Supervisor.Poisoned _ -> true | _ -> false)
              (events ()))))

(* net-half-close silently ends the worker's sends mid-lease: the
   supervisor sees a clean EOF, re-dispatches the lease, the worker
   redials (its one-shot fault now spent), and the merged output is
   still byte-identical to the serial run. *)
let test_pool_half_close_redispatches () =
  with_net_fault "net-half-close:2" (fun () ->
      let bus = Supervisor.create_bus () in
      let events = pool_record_events bus in
      let join = pool_dialer bus in
      let out =
        Supervisor.run_pool ~bus (pool_sup_config ()) ~pool:(pool_config ())
          ~fallback:pool_no_fallback (pool_cells 4)
      in
      Alcotest.(check bool) "worker exits cleanly after redial" true
        (join () = Some None);
      Alcotest.(check bool) "identical to serial despite the half-close" true
        (out = pool_expected 4);
      Alcotest.(check bool) "worker loss observed" true
        (List.exists
           (function Supervisor.Worker_disconnected _ -> true | _ -> false)
           (events ()));
      Alcotest.(check bool) "lease re-dispatched" true
        (List.exists
           (function
             | Supervisor.Retry _ | Supervisor.Bisect _ -> true
             | _ -> false)
           (events ())))

let tests =
  [
    Alcotest.test_case "sockaddr parsing" `Quick test_sockaddr_parsing;
    Alcotest.test_case "handshake frames round-trip" `Quick
      test_handshake_frames_roundtrip;
    Alcotest.test_case "transport round-trip over a pipe" `Quick
      test_transport_roundtrip_pipe;
    Alcotest.test_case "transport over a socketpair, half-close" `Quick
      test_transport_socketpair;
    Alcotest.test_case "decoder rejects oversized frames" `Quick
      test_decoder_rejects_oversized_frame;
    Alcotest.test_case "blocking reader rejects oversized frames" `Quick
      test_read_frame_rejects_oversized_frame;
    Alcotest.test_case "net fault mode parsing" `Quick test_net_mode_of_string;
    Alcotest.test_case "net fault: drop" `Quick test_net_fault_drop;
    Alcotest.test_case "net fault: garbage" `Quick test_net_fault_garbage;
    Alcotest.test_case "net fault: half-close" `Quick test_net_fault_half_close;
    Alcotest.test_case "net fault: short write" `Quick
      test_net_fault_short_write;
    Alcotest.test_case "net fault: delay" `Quick test_net_fault_delay;
    Alcotest.test_case "retry_intr retries EINTR/EAGAIN only" `Quick
      test_retry_intr;
    Alcotest.test_case "write to dead peer raises EPIPE, not SIGPIPE" `Quick
      test_sigpipe_write_to_dead_peer;
    Alcotest.test_case "/metrics http listener" `Quick
      test_http_metrics_endpoint;
    Alcotest.test_case "pool survives net-delay byte-identically" `Quick
      test_pool_delay_byte_identical;
    Alcotest.test_case "pool re-dispatches after net-half-close" `Quick
      test_pool_half_close_redispatches;
  ]
