(* protean-fuzz: AMuLeT*-style security fuzzing of the simulated
   hardware configurations against security contracts (Section VII-B).

     protean-fuzz --defense prot-track --contract ct --programs 50
     protean-fuzz --inject-faults      # self-test: must catch planted bugs
     protean-fuzz --resume state.json  # checkpointed, crash-resilient run
     protean-fuzz --table-ii           # the scaled-down Table II grid

   Exit status: 0 = clean; 1 = real contract violations found, or an
   injected fault went undetected (a detector gap) — so CI can gate on
   either direction of failure. *)

open Cmdliner
module Fuzz = Protean_amulet.Fuzz
module Gen = Protean_amulet.Gen
module Defense = Protean_defense.Defense
module Fault_inject = Protean_defense.Fault_inject
module Protcc = Protean_protcc.Protcc
module Tables = Protean_harness.Tables
module Parallel = Protean_harness.Parallel

let defense_arg =
  Arg.(value & opt string "prot-track" & info [ "defense"; "d" ] ~docv:"ID"
         ~doc:"Defense to test.")

let contract_arg =
  Arg.(value & opt string "ct" & info [ "contract"; "c" ] ~docv:"CONTRACT"
         ~doc:"Contract: arch, cts, ct, unprot.")

let programs_arg =
  Arg.(value & opt int 20 & info [ "programs"; "n" ] ~docv:"N"
         ~doc:"Number of random programs.")

let inputs_arg =
  Arg.(value & opt int 5 & info [ "inputs"; "i" ] ~docv:"K"
         ~doc:"Input pairs per program.")

let adversary_arg =
  Arg.(value & opt string "cache" & info [ "adversary"; "a" ] ~docv:"ADV"
         ~doc:"Adversary model: cache (cache+TLB tags) or timing.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let squash_bug_arg =
  Arg.(value & flag & info [ "squash-bug" ]
         ~doc:"Re-enable the pending-squash corner case (Section VII-B4b).")

let table_ii_arg =
  Arg.(value & flag & info [ "table-ii" ]
         ~doc:"Run the scaled-down Table II campaign grid and exit.")

let timeout_arg =
  Arg.(value & opt (some int) None & info [ "timeout-cycles" ] ~docv:"CYCLES"
         ~doc:"Per-simulation cycle budget; a run exceeding it is skipped \
               (with a report) instead of hanging the campaign.")

let resume_arg =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
         ~doc:"Checkpoint file: progress is saved there after every program \
               and a matching interrupted campaign resumes from it.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Domains fuzzing programs concurrently; 0 = all cores. The \
               outcome is identical to -j 1 (programs are independent). \
               Incompatible with --resume: checkpointing is sequential, so \
               a resumed campaign runs serially (with a warning).")

let inject_arg =
  Arg.(value & flag & info [ "inject-faults" ]
         ~doc:"Self-test the fuzzer: inject deliberate faults into the \
               defenses and verify each one is caught as a violation. \
               Runs the canonical fault-mode/defense/contract matrix \
               (each fault paired with a defense where the faulted layer \
               is load-bearing), so --defense/--contract are ignored. \
               Undetected faults (detector gaps) fail the run.")

let campaign_of contract adversary programs inputs seed squash_bug timeout =
  let adversary =
    match adversary with
    | "cache" -> Fuzz.Cache_tlb
    | "timing" -> Fuzz.Timing
    | s -> invalid_arg ("unknown adversary: " ^ s)
  in
  {
    (Fuzz.campaign_for ~seed ~programs ~inputs contract) with
    Fuzz.adversary;
    squash_bug;
    timeout_cycles = timeout;
  }

let report_skips (r : Fuzz.report) =
  (match r.Fuzz.r_resumed_from with
  | Some i -> Printf.printf "resumed from checkpoint at program %d\n" i
  | None -> ());
  List.iter
    (fun (s : Fuzz.skip) ->
      Printf.printf "skipped program %d (seed %d) after retry: %s\n"
        s.Fuzz.sk_index s.Fuzz.sk_seed s.Fuzz.sk_reason)
    r.Fuzz.r_skipped

let run_self_test ~jobs ~programs ~inputs ~seed ~timeout =
  (* The canonical fault-mode pairings are independent campaigns: fan
     them out and print the matrix in its fixed order. *)
  let tasks =
    Array.of_list
      (List.map
         (fun (m, defense_id, contract) () ->
           let campaign =
             {
               (Fuzz.campaign_for ~seed ~programs ~inputs contract) with
               Fuzz.timeout_cycles = timeout;
             }
           in
           let d = Defense.find defense_id in
           match Fuzz.self_test ~modes:[ m ] campaign d with
           | [ g ] -> (defense_id, contract, g)
           | _ -> assert false)
         Fuzz.canonical_pairings)
  in
  let rows = Array.to_list (Parallel.map ~jobs tasks) in
  Printf.printf "fuzzer self-test (%d injected fault modes):\n"
    (List.length rows);
  List.iter
    (fun (defense_id, contract, (g : Fuzz.gap)) ->
      Printf.printf "  %-20s on %-10s vs %-6s %3d tests, %3d violations -> %s\n"
        (Fault_inject.mode_name g.Fuzz.g_mode)
        defense_id
        (String.uppercase_ascii contract ^ "-SEQ")
        g.Fuzz.g_tests g.Fuzz.g_violations
        (if g.Fuzz.g_detected then "caught" else "NOT CAUGHT (detector gap)"))
    rows;
  let missed = Fuzz.gaps (List.map (fun (_, _, g) -> g) rows) in
  if missed <> [] then begin
    Printf.printf "%d/%d injected faults went undetected\n" (List.length missed)
      (List.length rows);
    exit 1
  end
  else Printf.printf "all injected faults detected\n"

let run_campaign ~jobs campaign d contract resume =
  let r =
    match resume with
    | None when jobs > 1 -> Parallel.fuzz_run_resilient ~jobs campaign d
    | _ ->
        if jobs > 1 then
          Printf.eprintf
            "warning: --resume checkpoints sequentially; ignoring -j %d\n%!"
            jobs;
        Fuzz.run_resilient ?checkpoint:resume campaign d
  in
  let out = r.Fuzz.r_outcome in
  Printf.printf
    "%s vs %s-SEQ (%s adversary): %d tests, %d skipped, %d violations, %d \
     false positives (%d/%d programs completed)\n"
    d.Defense.id (String.uppercase_ascii contract)
    (Fuzz.adversary_name campaign.Fuzz.adversary)
    out.Fuzz.tests out.Fuzz.skipped out.Fuzz.violations
    out.Fuzz.false_positives r.Fuzz.r_completed campaign.Fuzz.programs;
  report_skips r;
  (match out.Fuzz.example with
  | Some (pseed, k) ->
      Printf.printf "first violation: program seed %d, input pair %d\n" pseed k
  | None -> ());
  (match r.Fuzz.r_counterexample with
  | Some sh ->
      Printf.printf
        "counterexample shrunk from %d to %d instructions (%d replays%s)\n"
        sh.Fuzz.sh_original_insns sh.Fuzz.sh_insns sh.Fuzz.sh_attempts
        (if sh.Fuzz.sh_verified then "" else "; NOT verified")
  | None -> ());
  if out.Fuzz.violations > 0 then exit 1

let run table_ii defense contract programs inputs adversary seed squash_bug
    timeout resume inject jobs =
  let jobs = if jobs = 0 then Parallel.default_jobs () else max 1 jobs in
  if table_ii then Tables.table_ii ~jobs ~programs ~inputs ()
  else if inject then run_self_test ~jobs ~programs ~inputs ~seed ~timeout
  else begin
    let d = Defense.find defense in
    let campaign =
      campaign_of contract adversary programs inputs seed squash_bug timeout
    in
    run_campaign ~jobs campaign d contract resume
  end

let cmd =
  let doc = "fuzz simulated Spectre defenses against security contracts" in
  Cmd.v
    (Cmd.info "protean-fuzz" ~doc)
    Term.(
      const run $ table_ii_arg $ defense_arg $ contract_arg $ programs_arg
      $ inputs_arg $ adversary_arg $ seed_arg $ squash_bug_arg $ timeout_arg
      $ resume_arg $ inject_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
