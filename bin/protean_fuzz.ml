(* protean-fuzz: AMuLeT*-style security fuzzing of the simulated
   hardware configurations against security contracts (Section VII-B).

     protean-fuzz --defense prot-track --contract ct --programs 50
     protean-fuzz --inject-faults      # self-test: must catch planted bugs
     protean-fuzz --resume state.json  # checkpointed, crash-resilient run
     protean-fuzz --table-ii           # the scaled-down Table II grid

   Exit status: 0 = clean; 1 = real contract violations found, or an
   injected fault went undetected (a detector gap) — so CI can gate on
   either direction of failure. *)

open Cmdliner
module Fuzz = Protean_amulet.Fuzz
module Gen = Protean_amulet.Gen
module Config = Protean_ooo.Config
module Defense = Protean_defense.Defense
module Fault_inject = Protean_defense.Fault_inject
module Protcc = Protean_protcc.Protcc
module Certify = Protean_protcc.Certify
module Tables = Protean_harness.Tables
module Parallel = Protean_harness.Parallel
module Supervisor = Protean_harness.Supervisor
module Shard = Protean_harness.Shard
module Json = Shard.Json
module Report = Protean_harness.Report
module Metrics = Protean_telemetry.Metrics
module Twindow = Protean_telemetry.Window
module Trace = Protean_telemetry.Trace
module Flame = Protean_telemetry.Flame
module Tlog = Protean_telemetry.Log

let defense_arg =
  Arg.(value & opt string "prot-track" & info [ "defense"; "d" ] ~docv:"ID"
         ~doc:"Defense to test.")

let contract_arg =
  Arg.(value & opt string "ct" & info [ "contract"; "c" ] ~docv:"CONTRACT"
         ~doc:"Contract: arch, cts, ct, unprot.")

let programs_arg =
  Arg.(value & opt int 20 & info [ "programs"; "n" ] ~docv:"N"
         ~doc:"Number of random programs.")

let inputs_arg =
  Arg.(value & opt int 5 & info [ "inputs"; "i" ] ~docv:"K"
         ~doc:"Input pairs per program.")

let adversary_arg =
  Arg.(value & opt string "cache" & info [ "adversary"; "a" ] ~docv:"ADV"
         ~doc:"Adversary model: cache (cache+TLB tags) or timing.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let core_width_arg =
  Arg.(value & opt int 0 & info [ "core-width" ] ~docv:"N"
         ~doc:"Rescale the campaign's core to an $(docv)-wide superscalar \
               with the structural execution-port model attached \
               (Config.with_width); fuzzes the port/writeback scheduler \
               paths the default port-free config never reaches. 0 keeps \
               the campaign's native core.")

let squash_bug_arg =
  Arg.(value & flag & info [ "squash-bug" ]
         ~doc:"Re-enable the pending-squash corner case (Section VII-B4b).")

let gadget_arg =
  Arg.(value & flag & info [ "gadget" ]
         ~doc:"Generate gadget-only programs: every slot emits the v1 \
               bounds-check-bypass gadget, so an unsound defense (e.g. \
               --defense unsafe) violates deterministically. The \
               attribution smoke test's program source.")

let table_ii_arg =
  Arg.(value & flag & info [ "table-ii" ]
         ~doc:"Run the scaled-down Table II campaign grid and exit.")

let timeout_arg =
  Arg.(value & opt (some int) None & info [ "timeout-cycles" ] ~docv:"CYCLES"
         ~doc:"Per-simulation cycle budget; a run exceeding it is skipped \
               (with a report) instead of hanging the campaign.")

let resume_arg =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE"
         ~doc:"Checkpoint file: progress is saved there after every program \
               and a matching interrupted campaign resumes from it.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Domains fuzzing programs concurrently; 0 = all cores. The \
               outcome is identical to -j 1 (programs are independent). \
               Incompatible with --resume: checkpointing is sequential, so \
               a resumed campaign runs serially (with a warning).")

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
         ~doc:"Crash-isolated worker processes for the campaign (composes \
               with -j inside each worker). A worker that segfaults or \
               hangs is retried; a program that kills its worker on every \
               attempt is bisected out and reported as a skip, like the \
               in-process retry barrier. Incompatible with --resume.")

let worker_arg =
  Arg.(value & flag & info [ "worker" ]
         ~doc:"Internal: serve campaign programs over the supervisor frame \
               protocol on stdin/stdout. Spawned by --shards; not for \
               interactive use.")

let inject_worker_arg =
  Arg.(value & opt (some string) None
         & info [ "inject-worker-fault" ] ~docv:"MODE"
         ~doc:"Self-test the shard supervisor: worker-kill, worker-stall, \
               worker-truncate, or worker-poison:N. Requires --shards > 1.")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"PATH"
         ~doc:"Write campaign metrics to $(docv): Prometheus text \
               exposition, or JSON when the path ends in .json.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"PATH"
         ~doc:"Write a Chrome trace-event JSON timeline to $(docv); load \
               it in Perfetto or chrome://tracing.")

let flamegraph_out_arg =
  Arg.(value & opt (some string) None & info [ "flamegraph-out" ] ~docv:"PATH"
         ~doc:"Write a collapsed-stack flamegraph of campaign effort \
               (contract tests by defense, contract and verdict) to \
               $(docv); render with flamegraph.pl or speedscope.")

let attr_out_arg =
  Arg.(value & opt (some string) None & info [ "attr-out" ] ~docv:"PATH"
         ~doc:"Write the campaign's leakage-attribution record (leaking \
               transmitter pc, source access pc, trigger window, gadget \
               family) as JSON to $(docv); the rendered record also \
               prints on stdout.")

let log_json_arg =
  Arg.(value & flag & info [ "log-json" ]
         ~doc:"Emit diagnostic log lines as structured JSON on stderr.")

let listen_arg =
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT"
         ~doc:"Run the campaign as a TCP worker pool: bind $(docv) (port 0 \
               picks one), lease program batches to workers that dial in \
               with --connect, and re-dispatch the lease of any worker \
               that disconnects or times out. --shards then bounds \
               in-flight leases.")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
         ~doc:"Serve campaign programs as a remote worker: dial a \
               --listen'ing supervisor, authenticate with \
               --campaign-token, and reconnect with backoff if the \
               connection drops.")

let token_arg =
  Arg.(value & opt string "protean" & info [ "campaign-token" ] ~docv:"TOKEN"
         ~doc:"Shared secret for the worker-pool handshake; a dial-in \
               worker presenting a different token is rejected.")

let metrics_listen_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-listen" ] ~docv:"HOST:PORT"
         ~doc:"Serve live Prometheus metrics over HTTP at $(docv)/metrics \
               for the duration of the campaign (port 0 picks one; the \
               bound port is logged).")

let no_skip_ahead_arg =
  Arg.(value & flag & info [ "no-skip-ahead" ]
         ~doc:"Disable event-driven skip-ahead: the simulator steps every \
               idle cycle instead of jumping to the next event horizon. \
               Results are bit-identical either way; this is the escape \
               hatch (also PROTEAN_NO_SKIP_AHEAD=1). Exported to the \
               environment so --shards workers inherit it.")

let no_shared_frontend_arg =
  Arg.(value & flag & info [ "no-shared-frontend" ]
         ~doc:"Disable shared-frontend batching in the harness layers \
               (--table-ii reaches the experiment grid); the escape hatch, \
               also PROTEAN_NO_SHARED_FRONTEND=1. Results are \
               bit-identical either way.")

let check_certs_arg =
  Arg.(value & flag & info [ "check-certs" ]
         ~doc:"Audit the protection certificates of every instrumented \
               program against the SEQ contract executor (static claim \
               audit plus lockstep replay on the campaign's own input \
               pairs), so the campaign doubles as a translation-validation \
               audit of ProtCC. A certificate violation fails the run; \
               under --shards it poisons only the offending program's \
               cell.")

let inject_pass_fault_arg =
  Arg.(value & opt (some string) None
       & info [ "inject-pass-fault" ] ~docv:"MODE"
         ~doc:"Self-test the certificate checker: mutate each compile \
               result as a broken ProtCC pass would (cert-drop-prot, \
               cert-widen-safe or cert-stale-fact) and verify \
               --check-certs refutes it. Implies nothing by itself; \
               combine with --check-certs.")

let inject_arg =
  Arg.(value & flag & info [ "inject-faults" ]
         ~doc:"Self-test the fuzzer: inject deliberate faults into the \
               defenses and verify each one is caught as a violation. \
               Runs the canonical fault-mode/defense/contract matrix \
               (each fault paired with a defense where the faulted layer \
               is load-bearing), so --defense/--contract are ignored. \
               Undetected faults (detector gaps) fail the run.")

let campaign_of ?(gadget = false) contract adversary programs inputs seed
    squash_bug timeout core_width check_certs pass_fault =
  let adversary =
    match adversary with
    | "cache" -> Fuzz.Cache_tlb
    | "timing" -> Fuzz.Timing
    | s -> invalid_arg ("unknown adversary: " ^ s)
  in
  let base = Fuzz.campaign_for ~seed ~programs ~inputs contract in
  {
    base with
    Fuzz.adversary;
    squash_bug;
    timeout_cycles = timeout;
    check_certs;
    cert_fault = Option.map Fault_inject.cert_mode_of_string pass_fault;
    gen_klass = (if gadget then Gen.G_gadget else base.Fuzz.gen_klass);
    config =
      (if core_width > 0 then Config.with_width core_width base.Fuzz.config
       else base.Fuzz.config);
  }

(* --- telemetry -------------------------------------------------------- *)

(* Campaigns don't run through an [Experiment] session, so the exporters
   feed a binary-local registry and flame accumulator instead: campaign
   effort (contract tests) folded by defense, contract and verdict.
   Supervisor lifecycle counters and the trace recorder are shared with
   the other binaries through [Report]. *)
let fuzz_reg = Metrics.create ()
let fuzz_flame = Flame.create ()

let record_campaign ~defense_id ~contract ~adversary (r : Fuzz.report) =
  let labels =
    [
      ("adversary", adversary); ("contract", contract); ("defense", defense_id);
    ]
  in
  let c name help =
    Metrics.counter fuzz_reg ~help ~labels ("protean_fuzz_" ^ name)
  in
  let out = r.Fuzz.r_outcome in
  Metrics.inc ~n:out.Fuzz.tests (c "tests_total" "contract tests executed");
  Metrics.inc ~n:out.Fuzz.skipped (c "tests_skipped_total" "tests skipped");
  Metrics.inc ~n:out.Fuzz.violations
    (c "violations_total" "contract violations observed");
  Metrics.inc ~n:out.Fuzz.false_positives
    (c "false_positives_total" "tolerated false positives");
  Metrics.inc ~n:r.Fuzz.r_completed
    (c "programs_completed_total" "programs fully tested");
  Metrics.inc
    ~n:(List.length r.Fuzz.r_skipped)
    (c "programs_skipped_total" "programs skipped after retry");
  (match r.Fuzz.r_attribution with
  | Some a ->
      Metrics.inc
        (Metrics.counter fuzz_reg
           ~help:"contract violations attributed by the speculation ledger"
           ~labels:[ ("defense", defense_id); ("family", a.Twindow.at_family) ]
           "protean_leak_attributed_total")
  | None -> ());
  if out.Fuzz.certs_checked > 0 || out.Fuzz.cert_violations > 0 then begin
    let cc name help =
      Metrics.counter fuzz_reg ~help ~labels ("protean_cert_" ^ name)
    in
    Metrics.inc ~n:out.Fuzz.certs_checked
      (cc "checked_total" "protection certificates audited");
    Metrics.inc ~n:out.Fuzz.cert_claims
      (cc "claims_total" "individual certificate claims audited");
    Metrics.inc ~n:out.Fuzz.cert_violations
      (cc "violations_total" "certificate claims refuted by the checker")
  end;
  let stack verdict n =
    Flame.add fuzz_flame ~frames:[ defense_id; contract ^ "-seq"; verdict ] n
  in
  stack "violation" out.Fuzz.violations;
  stack "false-positive" out.Fuzz.false_positives;
  stack "clean"
    (out.Fuzz.tests - out.Fuzz.violations - out.Fuzz.false_positives);
  stack "skipped" out.Fuzz.skipped

let record_self_test rows =
  List.iter
    (fun (defense_id, contract, (g : Fuzz.gap)) ->
      let labels =
        [
          ("contract", contract); ("defense", defense_id);
          ("mode", Fault_inject.mode_name g.Fuzz.g_mode);
        ]
      in
      let c name help =
        Metrics.counter fuzz_reg ~help ~labels ("protean_fuzz_selftest_" ^ name)
      in
      Metrics.inc ~n:g.Fuzz.g_tests (c "tests_total" "self-test executions");
      Metrics.inc ~n:g.Fuzz.g_violations
        (c "violations_total" "violations under the injected fault");
      if g.Fuzz.g_detected then
        Metrics.inc (c "detected_total" "injected faults caught"))
    rows

(* Write whatever the exporter flags asked for; merged with [Report]'s
   runtime (supervisor) registry so sharded campaigns expose their
   process lifecycle too. *)
let write_telemetry (tele : Report.config) =
  (match tele.Report.metrics_out with
  | Some path ->
      let snap =
        Metrics.merge (Metrics.snapshot fuzz_reg)
          (Metrics.snapshot Report.runtime)
      in
      Report.write_file path
        (if Filename.check_suffix path ".json" then Metrics.to_json snap
         else Metrics.to_prometheus snap)
  | None -> ());
  (match tele.Report.trace_out with
  | Some path -> (
      match !Report.tracer with
      | Some tr -> Report.write_file path (Trace.to_chrome_json tr)
      | None -> ())
  | None -> ());
  match tele.Report.flamegraph_out with
  | Some path -> Report.write_file path (Flame.to_folded fuzz_flame)
  | None -> ()

let with_span name f =
  match !Report.tracer with
  | None -> f ()
  | Some tr ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      Trace.span tr ~cat:"campaign" ~t0 ~t1:(Unix.gettimeofday ()) name;
      r

let report_skips (r : Fuzz.report) =
  (match r.Fuzz.r_resumed_from with
  | Some i -> Printf.printf "resumed from checkpoint at program %d\n" i
  | None -> ());
  List.iter
    (fun (s : Fuzz.skip) ->
      Printf.printf "skipped program %d (seed %d) after retry: %s\n"
        s.Fuzz.sk_index s.Fuzz.sk_seed s.Fuzz.sk_reason)
    r.Fuzz.r_skipped

let run_self_test ~jobs ~programs ~inputs ~seed ~timeout =
  (* The canonical fault-mode pairings are independent campaigns: fan
     them out and print the matrix in its fixed order. *)
  let tasks =
    Array.of_list
      (List.map
         (fun (m, defense_id, contract) () ->
           let campaign =
             {
               (Fuzz.campaign_for ~seed ~programs ~inputs contract) with
               Fuzz.timeout_cycles = timeout;
             }
           in
           let d = Defense.find defense_id in
           match Fuzz.self_test ~modes:[ m ] campaign d with
           | [ g ] -> (defense_id, contract, g)
           | _ -> assert false)
         Fuzz.canonical_pairings)
  in
  let rows = Array.to_list (Parallel.map ~jobs tasks) in
  record_self_test rows;
  Printf.printf "fuzzer self-test (%d injected fault modes):\n"
    (List.length rows);
  List.iter
    (fun (defense_id, contract, (g : Fuzz.gap)) ->
      Printf.printf "  %-20s on %-10s vs %-6s %3d tests, %3d violations -> %s\n"
        (Fault_inject.mode_name g.Fuzz.g_mode)
        defense_id
        (String.uppercase_ascii contract ^ "-SEQ")
        g.Fuzz.g_tests g.Fuzz.g_violations
        (if g.Fuzz.g_detected then "caught" else "NOT CAUGHT (detector gap)"))
    rows;
  let missed = Fuzz.gaps (List.map (fun (_, _, g) -> g) rows) in
  if missed <> [] then begin
    Printf.printf "%d/%d injected faults went undetected\n" (List.length missed)
      (List.length rows);
    true
  end
  else begin
    Printf.printf "all injected faults detected\n";
    false
  end

(* --- sharded campaigns ------------------------------------------------ *)

(* One program of the campaign as a supervised cell: the worker applies
   the same retry-once-then-skip barrier as [Fuzz.run_resilient] and
   returns the sub-outcome as a frame payload.  Witnesses (programs)
   don't cross the pipe — the supervisor replays the first violating
   index in-process when it shrinks. *)
let fuzz_cell ?(cert_poison = false) campaign d index =
  let sub_json (o : Fuzz.outcome) skip =
    Json.Obj
      ([
         ("tests", Json.Int o.Fuzz.tests);
         ("skipped", Json.Int o.Fuzz.skipped);
         ("violations", Json.Int o.Fuzz.violations);
         ("false_positives", Json.Int o.Fuzz.false_positives);
         ( "example",
           match o.Fuzz.example with
           | Some (s, k) -> Json.List [ Json.Int s; Json.Int k ]
           | None -> Json.Null );
         ( "skip",
           match skip with Some r -> Json.Str r | None -> Json.Null );
       ]
      @
      (* Certificate counters only when the campaign audits them: frames
         of a plain campaign stay byte-identical to the uncertified
         protocol. *)
      if campaign.Fuzz.check_certs then
        [
          ("certs_checked", Json.Int o.Fuzz.certs_checked);
          ("cert_claims", Json.Int o.Fuzz.cert_claims);
          ("cert_violations", Json.Int o.Fuzz.cert_violations);
          ( "cert_example",
            match o.Fuzz.cert_example with
            | Some s -> Json.Str s
            | None -> Json.Null );
        ]
      else [])
  in
  let program = Fuzz.generate_program campaign index in
  let cert_witness = ref None in
  let attempt () = Fuzz.test_program ~cert_witness campaign d ~index ~program in
  let finish sub =
    (* In a shard worker a refuted certificate is escalated to the
       structured fault: the supervisor retries, bisects and poisons
       only this cell, and the ledger records the printed violation. *)
    match (cert_poison, !cert_witness) with
    | true, Some v -> raise (Certify.Cert_violation v)
    | _ -> sub_json sub None
  in
  match attempt () with
  | sub -> finish sub
  | exception (Certify.Cert_violation _ as e) -> raise e
  | exception _ -> (
      match attempt () with
      | sub -> finish sub
      | exception e -> sub_json (Fuzz.fresh_outcome ()) (Some (Fuzz.describe_exn e)))

let outcome_of_json j =
  let int_member key = match Json.member key j with
    | Json.Int n -> n
    | _ -> 0
  in
  {
    Fuzz.tests = Json.(to_int (member "tests" j));
    skipped = Json.(to_int (member "skipped" j));
    violations = Json.(to_int (member "violations" j));
    false_positives = Json.(to_int (member "false_positives" j));
    example =
      (match Json.member "example" j with
      | Json.List [ Json.Int s; Json.Int k ] -> Some (s, k)
      | _ -> None);
    certs_checked = int_member "certs_checked";
    cert_claims = int_member "cert_claims";
    cert_violations = int_member "cert_violations";
    cert_example =
      (match Json.member "cert_example" j with
      | Json.Str s -> Some s
      | _ -> None);
  }

(* Merge supervised per-program outcomes, in index order, into the same
   report shape as the in-process resilient campaign.  A program whose
   worker died on every attempt (a poisoned cell) becomes a structured
   skip — exactly how the in-process barrier reports a program that
   faults twice. *)
let run_campaign_supervised ~tele ~shards ~jobs ~inject ?pool ?http
    ?(shrink = true) campaign d =
  let cells =
    List.init campaign.Fuzz.programs (fun i ->
        { Shard.c_id = i; c_key = string_of_int i })
  in
  let config =
    {
      Supervisor.default_config with
      Supervisor.shards;
      inject = Option.map Fault_inject.worker_mode_of_string inject;
    }
  in
  let bus = Supervisor.create_bus () in
  Supervisor.subscribe bus ~name:"log" (Supervisor.logger ());
  if Report.wanted tele || http <> None then
    Supervisor.subscribe bus ~name:"telemetry" (Report.supervisor_observer ());
  let worker_argv =
    Supervisor.self_worker_argv
      ~drop:
        [
          "--shards"; "--inject-worker-fault"; "--listen"; "--metrics-listen";
          "--campaign-token";
        ]
      ()
  in
  let fallback remaining =
    let remaining = Array.of_list remaining in
    let rs =
      Parallel.map ~jobs
        (Array.map
           (fun (c : Shard.cell) () -> fuzz_cell campaign d c.Shard.c_id)
           remaining)
    in
    Array.to_list
      (Array.mapi (fun i (c : Shard.cell) -> (c.Shard.c_id, rs.(i))) remaining)
  in
  let outcomes =
    match pool with
    | Some p -> Supervisor.run_pool ~bus ?http config ~pool:p ~fallback cells
    | None -> Supervisor.run ~bus ?http config ~worker_argv ~fallback cells
  in
  let out = Fuzz.fresh_outcome () in
  let skips = ref [] in
  List.iter
    (fun (id, o) ->
      let skip reason =
        skips :=
          {
            Fuzz.sk_index = id;
            sk_seed = Fuzz.program_seed campaign id;
            sk_reason = reason;
          }
          :: !skips
      in
      match o with
      | Supervisor.O_ok j -> (
          Fuzz.merge_outcome ~into:out (outcome_of_json j);
          match Json.member "skip" j with
          | Json.Str reason -> skip reason
          | _ -> ())
      | Supervisor.O_fault { f_attempts; f_reason; _ } ->
          skip
            (Printf.sprintf "worker crashed on every attempt (%d): %s"
               f_attempts f_reason))
    outcomes;
  (* Recover the first violating program from its seed and replay it
     with witness capture in-process (witnesses never cross the pipe);
     the witness feeds both the shrinker and the attribution replay. *)
  let witness =
    match out.Fuzz.example with
    | Some (pseed, _) ->
        let index = (pseed - campaign.Fuzz.seed) / 7919 in
        let w = ref None in
        let program = Fuzz.generate_program campaign index in
        (try ignore (Fuzz.test_program ~witness:w campaign d ~index ~program)
         with _ -> ());
        !w
    | None -> None
  in
  let counterexample =
    if shrink then Option.map (Fuzz.shrink_witness campaign d) witness
    else None
  in
  let attribution =
    Option.bind witness (Fuzz.attribute_witness campaign d)
  in
  {
    Fuzz.r_outcome = out;
    r_completed = campaign.Fuzz.programs - List.length !skips;
    r_skipped = List.rev !skips;
    r_resumed_from = None;
    r_counterexample = counterexample;
    r_attribution = attribution;
  }

let run_campaign ~tele ~jobs ~shards ~inject_worker ?pool ?http campaign d
    contract resume =
  let r =
    with_span
      (Printf.sprintf "%s|%s" d.Defense.id contract)
      (fun () ->
        match resume with
        | None when shards > 1 || pool <> None ->
            run_campaign_supervised ~tele ~shards ~jobs ~inject:inject_worker
              ?pool ?http campaign d
        | None when jobs > 1 -> Parallel.fuzz_run_resilient ~jobs campaign d
        | _ ->
            if jobs > 1 || shards > 1 then
              Tlog.warn ~src:"fuzz"
                "--resume checkpoints sequentially; ignoring -j %d --shards %d"
                jobs shards;
            Fuzz.run_resilient ?checkpoint:resume campaign d)
  in
  record_campaign ~defense_id:d.Defense.id ~contract
    ~adversary:(Fuzz.adversary_name campaign.Fuzz.adversary)
    r;
  let out = r.Fuzz.r_outcome in
  Printf.printf
    "%s vs %s-SEQ (%s adversary): %d tests, %d skipped, %d violations, %d \
     false positives (%d/%d programs completed)\n"
    d.Defense.id (String.uppercase_ascii contract)
    (Fuzz.adversary_name campaign.Fuzz.adversary)
    out.Fuzz.tests out.Fuzz.skipped out.Fuzz.violations
    out.Fuzz.false_positives r.Fuzz.r_completed campaign.Fuzz.programs;
  report_skips r;
  (match out.Fuzz.example with
  | Some (pseed, k) ->
      Printf.printf "first violation: program seed %d, input pair %d\n" pseed k
  | None -> ());
  (match r.Fuzz.r_counterexample with
  | Some sh ->
      Printf.printf
        "counterexample shrunk from %d to %d instructions (%d replays%s)\n"
        sh.Fuzz.sh_original_insns sh.Fuzz.sh_insns sh.Fuzz.sh_attempts
        (if sh.Fuzz.sh_verified then "" else "; NOT verified")
  | None -> ());
  (match r.Fuzz.r_attribution with
  | Some a -> print_endline (Twindow.render_attribution a)
  | None -> ());
  (match tele.Report.attr_out with
  | Some path ->
      Report.write_file path
        (Printf.sprintf
           "{\"defense\":\"%s\",\"contract\":\"%s\",\"attribution\":%s}\n"
           (String.escaped d.Defense.id)
           (String.escaped contract)
           (match r.Fuzz.r_attribution with
           | Some a -> Twindow.attribution_to_json a
           | None -> "null"))
  | None -> ());
  let cert_failed =
    if not campaign.Fuzz.check_certs then false
    else begin
      (* A refuted certificate surfaces either in the merged counters
         (serial/-j paths) or as a poisoned cell whose skip reason
         carries the rendered violation (--shards path). *)
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        n = 0 || go 0
      in
      let poisoned =
        List.filter
          (fun (s : Fuzz.skip) -> contains s.Fuzz.sk_reason "cert-violation")
          r.Fuzz.r_skipped
      in
      Printf.printf
        "certificates: %d checked, %d claims, %d violations%s\n"
        out.Fuzz.certs_checked out.Fuzz.cert_claims
        (out.Fuzz.cert_violations + List.length poisoned)
        (if poisoned = [] then ""
         else Printf.sprintf " (%d as poisoned cells)" (List.length poisoned));
      (match (out.Fuzz.cert_example, poisoned) with
      | Some ex, _ -> Printf.printf "first certificate violation: %s\n" ex
      | None, s :: _ ->
          Printf.printf "first certificate violation: %s\n" s.Fuzz.sk_reason
      | None, [] -> ());
      out.Fuzz.cert_violations > 0 || poisoned <> []
    end
  in
  out.Fuzz.violations > 0 || cert_failed

let run table_ii defense contract programs inputs adversary seed core_width
    squash_bug gadget timeout resume inject jobs shards worker inject_worker
    check_certs no_skip_ahead no_shared_frontend pass_fault metrics_out
    trace_out flamegraph_out attr_out log_json listen connect token
    metrics_listen =
  Protean_ooo.Gc_tune.tune ();
  if log_json then Tlog.set_json true;
  (* Escape hatches, exported to the environment so spawned --shards
     workers (which re-read it at startup) run the same mode. *)
  if no_skip_ahead then begin
    Protean_ooo.Pipeline.set_skip_ahead false;
    Unix.putenv "PROTEAN_NO_SKIP_AHEAD" "1"
  end;
  if no_shared_frontend then begin
    Protean_harness.Experiment.share_frontend := false;
    Unix.putenv "PROTEAN_NO_SHARED_FRONTEND" "1"
  end;
  let tele = { Report.metrics_out; trace_out; flamegraph_out; attr_out } in
  Report.enable ~worker:(worker || connect <> None) tele;
  if check_certs then Certify.enabled := true;
  let jobs = if jobs = 0 then Parallel.default_jobs () else max 1 jobs in
  let shards = max 1 shards in
  if worker || connect <> None then begin
    (* Spawned by a supervisor (--worker: frames on stdin/stdout) or
       dialing one remotely (--connect); cell key = program index. *)
    let d = Defense.find defense in
    let campaign =
      campaign_of ~gadget contract adversary programs inputs seed squash_bug
        timeout core_width check_certs pass_fault
    in
    let compute key =
      fuzz_cell ~cert_poison:check_certs campaign d (int_of_string key)
    in
    match connect with
    | None -> Shard.worker_main ~jobs ~compute ()
    | Some addr -> Shard.connect_worker ~jobs ~addr ~token ~compute ()
  end
  else begin
    let pool =
      Option.map
        (fun addr ->
          {
            Supervisor.default_pool_config with
            Supervisor.pl_listen = addr;
            pl_token = token;
          })
        listen
    in
    let http =
      Option.bind metrics_listen (fun addr ->
          Report.listen_metrics ~src:"fuzz" addr (fun () ->
              Metrics.to_prometheus
                (Metrics.merge (Metrics.snapshot fuzz_reg)
                   (Metrics.snapshot Report.runtime))))
    in
    let failed =
      Fun.protect
        ~finally:(fun () ->
          Option.iter Protean_telemetry.Http_listener.close http)
        (fun () ->
          if table_ii then begin
            Tables.table_ii ~jobs ~programs ~inputs ();
            false
          end
          else if inject then
            run_self_test ~jobs ~programs ~inputs ~seed ~timeout
          else begin
            let d = Defense.find defense in
            let campaign =
              campaign_of ~gadget contract adversary programs inputs seed
                squash_bug timeout core_width check_certs pass_fault
            in
            run_campaign ~tele ~jobs ~shards ~inject_worker ?pool ?http
              campaign d contract resume
          end)
    in
    if Report.wanted tele then write_telemetry tele;
    if failed then exit 1
  end

let cmd =
  let doc = "fuzz simulated Spectre defenses against security contracts" in
  Cmd.v
    (Cmd.info "protean-fuzz" ~doc)
    Term.(
      const run $ table_ii_arg $ defense_arg $ contract_arg $ programs_arg
      $ inputs_arg $ adversary_arg $ seed_arg $ core_width_arg
      $ squash_bug_arg $ gadget_arg $ timeout_arg
      $ resume_arg $ inject_arg $ jobs_arg $ shards_arg $ worker_arg
      $ inject_worker_arg $ check_certs_arg $ no_skip_ahead_arg
      $ no_shared_frontend_arg $ inject_pass_fault_arg
      $ metrics_out_arg $ trace_out_arg
      $ flamegraph_out_arg $ attr_out_arg $ log_json_arg $ listen_arg
      $ connect_arg $ token_arg $ metrics_listen_arg)

let () = exit (Cmd.eval cmd)
