(* protean-sim: run benchmarks under one defense configuration and
   print execution statistics.

     protean-sim --bench milc --defense prot-track --pass ct --core p
     protean-sim -b milc -b lbm -b mcf -d stt -j 3 --invariants warn

   Mirrors the artifact's per-benchmark entry point (Section A-G3).
   Multiple --bench flags simulate on `-j N` domains; reports print in
   benchmark order either way. *)

open Cmdliner
module Suite = Protean_workloads.Suite
module Defense = Protean_defense.Defense
module Protcc = Protean_protcc.Protcc
module Config = Protean_ooo.Config
module Pipeline = Protean_ooo.Pipeline
module Multicore = Protean_ooo.Multicore
module Policy = Protean_ooo.Policy
module Invariants = Protean_ooo.Invariants
module Stats = Protean_ooo.Stats
module Parallel = Protean_harness.Parallel

let bench_arg =
  let doc = "Benchmark name (repeatable; see --list)." in
  Arg.(value & opt_all string [ "milc" ] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let defense_arg =
  let doc =
    "Defense: unsafe, nda, stt, spt, spt-sb, prot-delay, prot-track, ..."
  in
  Arg.(value & opt string "unsafe" & info [ "defense"; "d" ] ~docv:"ID" ~doc)

let pass_arg =
  let doc = "ProtCC pass: none, arch, cts, ct, unr, multiclass." in
  Arg.(value & opt string "none" & info [ "pass"; "p" ] ~docv:"PASS" ~doc)

let core_arg =
  let doc = "Core configuration: p, e or test." in
  Arg.(value & opt string "p" & info [ "core" ] ~docv:"CORE" ~doc)

let spec_model_arg =
  let doc = "Speculation model: atcommit or control." in
  Arg.(value & opt string "atcommit" & info [ "spec-model" ] ~docv:"MODEL" ~doc)

let invariants_arg =
  let doc =
    "Microarchitectural invariant checking: off, warn (report on stderr, \
     keep going) or fail (raise a simulation fault)."
  in
  Arg.(value & opt string "off" & info [ "invariants" ] ~docv:"MODE" ~doc)

let invariant_every_arg =
  let doc = "Check invariants every N cycles (with --invariants)." in
  Arg.(value & opt int 1 & info [ "invariant-every" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Domains for multi-benchmark runs; 0 = all cores." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let list_arg =
  let doc = "List available benchmarks and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let config_of = function
  | "p" -> Config.p_core
  | "e" -> Config.e_core
  | "test" -> Config.test_core
  | s -> invalid_arg ("unknown core: " ^ s)

let model_of = function
  | "atcommit" -> Policy.Atcommit
  | "control" -> Policy.Control
  | s -> invalid_arg ("unknown speculation model: " ^ s)

let instrument pass program =
  match pass with
  | "none" -> program
  | "multiclass" -> (Protcc.instrument program).Protcc.program
  | p ->
      let pass =
        match p with
        | "arch" -> Protcc.P_arch
        | "cts" -> Protcc.P_cts
        | "ct" -> Protcc.P_ct
        | "unr" -> Protcc.P_unr
        | s -> invalid_arg ("unknown pass: " ^ s)
      in
      (Protcc.instrument ~pass_override:pass program).Protcc.program

(* Render one benchmark's report into a string, so parallel runs can
   print completed reports in benchmark order. *)
let simulate (b : Suite.benchmark) (d : Defense.t) config spec_model pass
    invariants invariant_every bench =
  match b.Suite.kind with
  | Suite.Single f ->
      let program = instrument pass (f ()) in
      let on_cycle =
        match invariants with
        | Invariants.Off -> None
        | mode -> Some (Invariants.checker ~every:invariant_every mode)
      in
      let r =
        Pipeline.run ~spec_model ~fuel:50_000_000 ?on_cycle config
          (d.Defense.make ()) program ~overlays:[]
      in
      Format.asprintf "%s under %s on %s:@.  %a@.  measured cycles: %d@."
        bench d.Defense.id config.Config.name Stats.pp r.Pipeline.stats
        (Stats.measured_cycles r.Pipeline.stats)
  | Suite.Multi f ->
      let programs = Array.map (instrument pass) (f ()) in
      let r =
        Multicore.run ~spec_model ~fuel:50_000_000 ~invariants
          ~invariant_every config ~make_policy:d.Defense.make programs
      in
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      Format.fprintf ppf "%s under %s on %d cores: %d cycles@." bench
        d.Defense.id (Array.length programs) r.Multicore.cycles;
      Array.iteri
        (fun i (c : Pipeline.result) ->
          Format.fprintf ppf "  core %d: %a@." i Stats.pp c.Pipeline.stats)
        r.Multicore.per_core;
      Format.pp_print_flush ppf ();
      Buffer.contents buf

let run list benches defense pass core spec_model invariants invariant_every
    jobs =
  if list then
    List.iter
      (fun (b : Suite.benchmark) ->
        Printf.printf "%-18s %-12s %s\n" b.Suite.name b.Suite.suite
          (Protean_isa.Program.string_of_klass b.Suite.klass))
      Suite.all
  else begin
    let jobs = if jobs = 0 then Parallel.default_jobs () else max 1 jobs in
    let d = Defense.find defense in
    let config = config_of core in
    let spec_model = model_of spec_model in
    let invariants = Invariants.mode_of_string invariants in
    let tasks =
      Array.of_list
        (List.map
           (fun bench () ->
             let b = Suite.find bench in
             match
               simulate b d config spec_model pass invariants invariant_every
                 bench
             with
             | report -> Ok report
             | exception Pipeline.Sim_fault f -> Error (bench, f))
           benches)
    in
    let reports = Parallel.map ~jobs tasks in
    let faulted = ref false in
    Array.iter
      (function
        | Ok report -> print_string report
        | Error (bench, f) ->
            (* Report the faulting configuration instead of dying with a
               raw backtrace, and exit non-zero so scripts notice. *)
            Printf.eprintf "[fault] bench=%s defense=%s core=%s: %s\n%!"
              bench d.Defense.id config.Config.name
              (Pipeline.fault_to_string f);
            faulted := true)
      reports;
    if !faulted then exit 3
  end

let cmd =
  let doc = "simulate a PROTEAN benchmark under a Spectre defense" in
  Cmd.v
    (Cmd.info "protean-sim" ~doc)
    Term.(
      const run $ list_arg $ bench_arg $ defense_arg $ pass_arg $ core_arg
      $ spec_model_arg $ invariants_arg $ invariant_every_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
