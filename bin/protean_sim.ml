(* protean-sim: run benchmarks under one defense configuration and
   print execution statistics.

     protean-sim --bench milc --defense prot-track --pass ct --core p
     protean-sim -b milc -b lbm -b mcf -d stt -j 3 --invariants warn

   Mirrors the artifact's per-benchmark entry point (Section A-G3).
   Multiple --bench flags simulate on `-j N` domains; reports print in
   benchmark order either way. *)

open Cmdliner
module Suite = Protean_workloads.Suite
module Defense = Protean_defense.Defense
module Protcc = Protean_protcc.Protcc
module Certify = Protean_protcc.Certify
module Config = Protean_ooo.Config
module Pipeline = Protean_ooo.Pipeline
module Multicore = Protean_ooo.Multicore
module Policy = Protean_ooo.Policy
module Invariants = Protean_ooo.Invariants
module Stats = Protean_ooo.Stats
module Parallel = Protean_harness.Parallel
module Supervisor = Protean_harness.Supervisor
module Shard = Protean_harness.Shard
module Json = Protean_harness.Shard.Json
module Fault_inject = Protean_defense.Fault_inject
module E = Protean_harness.Experiment
module Report = Protean_harness.Report
module Profile = Protean_ooo.Profile
module Spec_window = Protean_ooo.Spec_window
module Twindow = Protean_telemetry.Window
module Flame = Protean_telemetry.Flame
module Trace = Protean_telemetry.Trace
module Tlog = Protean_telemetry.Log

let bench_arg =
  let doc = "Benchmark name (repeatable; see --list)." in
  Arg.(value & opt_all string [ "milc" ] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let defense_arg =
  let doc =
    "Defense: unsafe, nda, stt, spt, spt-sb, prot-delay, prot-track, ..."
  in
  Arg.(value & opt string "unsafe" & info [ "defense"; "d" ] ~docv:"ID" ~doc)

let pass_arg =
  let doc = "ProtCC pass: none, arch, cts, ct, unr, multiclass." in
  Arg.(value & opt string "none" & info [ "pass"; "p" ] ~docv:"PASS" ~doc)

let core_arg =
  let doc = "Core configuration: p, e or test." in
  Arg.(value & opt string "p" & info [ "core" ] ~docv:"CORE" ~doc)

let core_width_arg =
  let doc =
    "Rescale the chosen core to an $(docv)-wide superscalar: \
     fetch/rename/issue/commit widths become $(docv), the ROB/LSQ window \
     scales proportionally, and the structural execution-port model \
     (per-port capability masks, blocking mul/div, a bounded writeback \
     bus) is attached. 0 keeps the core's native width with the \
     port-unconstrained issue model."
  in
  Arg.(value & opt int 0 & info [ "core-width" ] ~docv:"N" ~doc)

let spec_model_arg =
  let doc = "Speculation model: atcommit or control." in
  Arg.(value & opt string "atcommit" & info [ "spec-model" ] ~docv:"MODEL" ~doc)

let invariants_arg =
  let doc =
    "Microarchitectural invariant checking: off, warn (report on stderr, \
     keep going) or fail (raise a simulation fault)."
  in
  Arg.(value & opt string "off" & info [ "invariants" ] ~docv:"MODE" ~doc)

let invariant_every_arg =
  let doc = "Check invariants every N cycles (with --invariants)." in
  Arg.(value & opt int 1 & info [ "invariant-every" ] ~docv:"N" ~doc)

let paranoid_sched_arg =
  let doc =
    "Cross-check the O(active) scheduler indexes (unissued/branch lists, \
     in-flight and LSQ queues, wakeup chains, dormancy) against a \
     brute-force ROB scan every cycle, raising a simulation fault on any \
     mismatch. Slow; a debugging aid for scheduler changes. Also enabled \
     by PROTEAN_PARANOID_SCHED=1."
  in
  Arg.(value & flag & info [ "paranoid-sched" ] ~doc)

let no_skip_ahead_arg =
  Arg.(value & flag & info [ "no-skip-ahead" ]
         ~doc:"Disable event-driven skip-ahead: the simulator steps every \
               idle cycle instead of jumping to the next event horizon. \
               Results are bit-identical either way; this is the escape \
               hatch (also PROTEAN_NO_SKIP_AHEAD=1). Exported to the \
               environment so --shards workers inherit it.")

let no_shared_frontend_arg =
  Arg.(value & flag & info [ "no-shared-frontend" ]
         ~doc:"Disable shared-frontend batching in the harness layers: \
               build, instrument and decode each workload independently \
               instead of reusing one frontend per (benchmark, pass) \
               group. Results are bit-identical either way (also \
               PROTEAN_NO_SHARED_FRONTEND=1).")

let check_certs_arg =
  Arg.(value & flag & info [ "check-certs" ]
         ~doc:"Audit each compiled benchmark's protection certificates \
               with the independent checker (static claim audit plus SEQ \
               lockstep replay) before simulating it; a refuted \
               certificate is reported as a structured fault for that \
               benchmark while the rest complete.")

let jobs_arg =
  let doc = "Domains for multi-benchmark runs; 0 = all cores." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let list_arg =
  let doc = "List available benchmarks and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
         ~doc:"Crash-isolated worker processes for multi-benchmark runs \
               (composes with -j inside each worker). Reports still print \
               in benchmark order; a benchmark whose worker keeps crashing \
               is isolated and reported as a fault while the rest complete.")

let worker_arg =
  Arg.(value & flag & info [ "worker" ]
         ~doc:"Internal: serve benchmark cells over the supervisor frame \
               protocol on stdin/stdout. Spawned by --shards; not for \
               interactive use.")

let inject_arg =
  Arg.(value & opt (some string) None & info [ "inject-faults" ] ~docv:"MODE"
         ~doc:"Self-test the shard supervisor: worker-kill, worker-stall, \
               worker-truncate, or worker-poison:N. Requires --shards > 1.")

let heartbeat_arg =
  Arg.(value & opt float 120.0 & info [ "shard-heartbeat" ] ~docv:"SECS"
         ~doc:"Kill a worker that sends no frame for this long.")

let wall_arg =
  Arg.(value & opt float 3600.0 & info [ "shard-wall" ] ~docv:"SECS"
         ~doc:"Kill a worker spawn that outlives this wall-clock budget.")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"PATH"
         ~doc:"Write run metrics to $(docv): Prometheus text exposition, \
               or JSON when the path ends in .json.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"PATH"
         ~doc:"Write a Chrome trace-event JSON timeline to $(docv); load \
               it in Perfetto or chrome://tracing.")

let flamegraph_out_arg =
  Arg.(value & opt (some string) None & info [ "flamegraph-out" ] ~docv:"PATH"
         ~doc:"Write a collapsed-stack flamegraph (simulated cycles by \
               defense, benchmark and function) to $(docv); render with \
               flamegraph.pl or speedscope.")

let attr_out_arg =
  Arg.(value & opt (some string) None & info [ "attr-out" ] ~docv:"PATH"
         ~doc:"Attach the speculation-window ledger and write the per-cell \
               window summary (leaky windows, tainted transmitters, defense \
               interventions, over-protection ratio) as JSON to $(docv); a \
               rendered text summary prints on stdout.")

let log_json_arg =
  Arg.(value & flag & info [ "log-json" ]
         ~doc:"Emit diagnostic log lines as structured JSON on stderr.")

let listen_arg =
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT"
         ~doc:"Run multi-benchmark simulation as a TCP worker pool: bind \
               $(docv) (port 0 picks one), lease benchmarks to workers \
               that dial in with --connect, and re-dispatch the lease of \
               any worker that disconnects or times out. --shards then \
               bounds in-flight leases.")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
         ~doc:"Serve benchmark cells as a remote worker: dial a \
               --listen'ing supervisor, authenticate with \
               --campaign-token, and reconnect with backoff if the \
               connection drops.")

let token_arg =
  Arg.(value & opt string "protean" & info [ "campaign-token" ] ~docv:"TOKEN"
         ~doc:"Shared secret for the worker-pool handshake; a dial-in \
               worker presenting a different token is rejected.")

let metrics_listen_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-listen" ] ~docv:"HOST:PORT"
         ~doc:"Serve live Prometheus metrics over HTTP at $(docv)/metrics \
               for the duration of the run (port 0 picks one; the bound \
               port is logged).")

(* Dropped from the worker argv.  The exporter flags are deliberately
   *not* here: workers keep them so they collect telemetry for their
   cells (the results ride home over the frame protocol); only the
   parent writes files. *)
let supervisor_flags =
  [ "--shards"; "--inject-faults"; "--shard-heartbeat"; "--shard-wall";
    "--listen"; "--metrics-listen"; "--campaign-token" ]

let config_of = function
  | "p" -> Config.p_core
  | "e" -> Config.e_core
  | "test" -> Config.test_core
  | s -> invalid_arg ("unknown core: " ^ s)

let model_of = function
  | "atcommit" -> Policy.Atcommit
  | "control" -> Policy.Control
  | s -> invalid_arg ("unknown speculation model: " ^ s)

let instrument pass program =
  (* With --check-certs every compile result passes the independent
     checker before it is simulated; a refuted certificate raises the
     structured [Certify.Cert_violation] handled by the fault paths. *)
  let audited (r : Protcc.result) =
    if !Certify.enabled then ignore (Certify.audit_exn ~original:program r);
    r.Protcc.program
  in
  match pass with
  | "none" -> program
  | "multiclass" -> audited (Protcc.instrument program)
  | p ->
      let pass =
        match p with
        | "arch" -> Protcc.P_arch
        | "cts" -> Protcc.P_cts
        | "ct" -> Protcc.P_ct
        | "unr" -> Protcc.P_unr
        | s -> invalid_arg ("unknown pass: " ^ s)
      in
      audited (Protcc.instrument ~pass_override:pass program)

(* Render one benchmark's report into a string, so parallel runs can
   print completed reports in benchmark order.  Also returns the run's
   telemetry as an [Experiment.run_result] (stats always; policy
   counters and flame stacks only when collection is enabled) so the
   exporters can fold it into a session. *)
let simulate (b : Suite.benchmark) (d : Defense.t) config spec_model pass
    invariants invariant_every bench =
  let flame_acc = if !E.collect_flame then Some (Flame.create ()) else None in
  let attached = ref [] in
  let attach ~root program t =
    match flame_acc with
    | None -> ()
    | Some acc ->
        let p = Profile.create () in
        let sink snap = E.fold_flame ~root program snap acc in
        Profile.attach ~sink p t;
        attached := t :: !attached
  in
  let ledgers : (Pipeline.t * Spec_window.t) list ref = ref [] in
  let attach_ledger (t : Pipeline.t) =
    if !E.collect_window then ledgers := (t, Spec_window.attach t) :: !ledgers
  in
  let finish_tele policies =
    List.iter Profile.detach !attached;
    let pm =
      if !E.collect_policy_metrics then E.merge_policy_metrics policies
      else []
    in
    let fl = match flame_acc with None -> [] | Some acc -> Flame.to_list acc in
    let wn =
      List.fold_left
        (fun acc (t, led) ->
          Spec_window.detach t led;
          (match (!E.window_hook, Spec_window.leaky_windows led) with
          | Some f, (_ :: _ as leaky) -> f (d.Defense.id ^ "/" ^ bench) leaky
          | _ -> ());
          Twindow.merge_counters acc (Spec_window.counters led))
        [] !ledgers
    in
    (pm, fl, wn)
  in
  let result ~cycles ~stats ~pm ~fl ~wn =
    {
      E.cycles = float_of_int cycles;
      stats;
      code_size_ratio = nan;
      inserted_moves = 0;
      policy_metrics = pm;
      flame = fl;
      frontend = "";
      window = wn;
    }
  in
  match b.Suite.kind with
  | Suite.Single f ->
      let program = instrument pass (f ()) in
      let on_cycle =
        match invariants with
        | Invariants.Off -> None
        | mode -> Some (Invariants.checker ~every:invariant_every mode)
      in
      let policy = d.Defense.make () in
      let r =
        Pipeline.run ~spec_model ~fuel:50_000_000 ?on_cycle
          ~on_start:(fun t ->
            attach ~root:[ d.Defense.id; bench ] program t;
            attach_ledger t)
          config policy program ~overlays:[]
      in
      let pm, fl, wn = finish_tele [ policy ] in
      let report =
        Format.asprintf "%s under %s on %s:@.  %a@.  measured cycles: %d@."
          bench d.Defense.id config.Config.name Stats.pp r.Pipeline.stats
          (Stats.measured_cycles r.Pipeline.stats)
      in
      ( report,
        result
          ~cycles:(Stats.measured_cycles r.Pipeline.stats)
          ~stats:[ r.Pipeline.stats ] ~pm ~fl ~wn )
  | Suite.Multi f ->
      let programs = Array.map (instrument pass) (f ()) in
      let policies = ref [] in
      let make_policy () =
        let p = d.Defense.make () in
        policies := p :: !policies;
        p
      in
      let on_core i t =
        attach
          ~root:[ d.Defense.id; bench; Printf.sprintf "core%d" i ]
          programs.(i) t;
        attach_ledger t
      in
      let r =
        Multicore.run ~spec_model ~fuel:50_000_000 ~invariants
          ~invariant_every ~on_core config ~make_policy programs
      in
      let pm, fl, wn = finish_tele !policies in
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      Format.fprintf ppf "%s under %s on %d cores: %d cycles@." bench
        d.Defense.id (Array.length programs) r.Multicore.cycles;
      Array.iteri
        (fun i (c : Pipeline.result) ->
          Format.fprintf ppf "  core %d: %a@." i Stats.pp c.Pipeline.stats)
        r.Multicore.per_core;
      Format.pp_print_flush ppf ();
      ( Buffer.contents buf,
        result ~cycles:r.Multicore.cycles
          ~stats:
            (Array.to_list
               (Array.map (fun (c : Pipeline.result) -> c.Pipeline.stats)
                  r.Multicore.per_core))
          ~pm ~fl ~wn )

let run list benches defense pass core core_width spec_model invariants
    invariant_every paranoid_sched no_skip_ahead no_shared_frontend
    check_certs jobs shards worker inject heartbeat wall metrics_out trace_out
    flamegraph_out attr_out log_json listen connect token metrics_listen =
  Protean_ooo.Gc_tune.tune ();
  if log_json then Tlog.set_json true;
  (* Stays in the worker argv (not a supervisor flag): shard workers
     audit the certificates of the cells they compile. *)
  if check_certs then Report.enable_cert_audit ();
  if paranoid_sched then begin
    Pipeline.set_paranoid_sched true;
    (* Spawned --shards workers re-read the environment at startup. *)
    Unix.putenv "PROTEAN_PARANOID_SCHED" "1"
  end;
  if no_skip_ahead then begin
    Pipeline.set_skip_ahead false;
    Unix.putenv "PROTEAN_NO_SKIP_AHEAD" "1"
  end;
  if no_shared_frontend then begin
    E.share_frontend := false;
    Unix.putenv "PROTEAN_NO_SHARED_FRONTEND" "1"
  end;
  if list then
    List.iter
      (fun (b : Suite.benchmark) ->
        Printf.printf "%-18s %-12s %s\n" b.Suite.name b.Suite.suite
          (Protean_isa.Program.string_of_klass b.Suite.klass))
      Suite.all
  else begin
    let jobs = if jobs = 0 then Parallel.default_jobs () else max 1 jobs in
    let shards = max 1 shards in
    let d = Defense.find defense in
    let config = config_of core in
    (* --core-width stays in the worker argv (it is not a supervisor
       flag), so --shards workers rebuild the identical config. *)
    let config =
      if core_width > 0 then Config.with_width core_width config else config
    in
    let spec_model = model_of spec_model in
    let invariants = Invariants.mode_of_string invariants in
    let tele = { Report.metrics_out; trace_out; flamegraph_out; attr_out } in
    Report.enable ~worker tele;
    let session = E.create_session () in
    let cell_key bench =
      Printf.sprintf "%s|%s|%s" bench d.Defense.id config.Config.name
    in
    let record bench res =
      if Report.wanted tele then
        Hashtbl.replace session.E.cache (cell_key bench) res
    in
    let with_span bench f =
      match !Report.tracer with
      | None -> f ()
      | Some tr ->
          let t0 = Unix.gettimeofday () in
          let r = f () in
          Trace.span tr ~cat:"cell" ~t0 ~t1:(Unix.gettimeofday ())
            (cell_key bench);
          r
    in
    let finish code =
      if (not worker) && Report.wanted tele then
        Report.write_outputs tele session;
      if code <> 0 then exit code
    in
    (* One cell per benchmark; the cell key is the benchmark name, so the
       worker's enumeration is the supervisor's by construction. *)
    let sim_cell bench =
      let b = Suite.find bench in
      match
        simulate b d config spec_model pass invariants invariant_every bench
      with
      | report, res ->
          Json.Obj
            [
              ("report", Json.Str report);
              ("result", Supervisor.Grid.result_to_json res);
            ]
      | exception Pipeline.Sim_fault f ->
          Json.Obj [ ("fault", Json.Str (Pipeline.fault_to_string f)) ]
      | exception (Certify.Cert_violation _ as e) ->
          Json.Obj [ ("fault", Json.Str (Printexc.to_string e)) ]
    in
    let report_fault bench reason =
      Printf.eprintf "[fault] bench=%s defense=%s core=%s: %s\n%!" bench
        d.Defense.id config.Config.name reason
    in
    if worker then Shard.worker_main ~jobs ~compute:sim_cell ()
    else if connect <> None then
      Shard.connect_worker ~jobs ~addr:(Option.get connect) ~token
        ~compute:sim_cell ()
    else if shards > 1 || listen <> None then begin
      let cells =
        List.mapi (fun i b -> { Shard.c_id = i; c_key = b }) benches
      in
      let sup_config =
        {
          Supervisor.default_config with
          Supervisor.shards;
          heartbeat;
          wall;
          inject = Option.map Fault_inject.worker_mode_of_string inject;
        }
      in
      let bus = Supervisor.create_bus () in
      Supervisor.subscribe bus ~name:"log" (Supervisor.logger ());
      if Report.wanted tele || metrics_listen <> None then
        Supervisor.subscribe bus ~name:"telemetry"
          (Report.supervisor_observer ());
      let worker_argv = Supervisor.self_worker_argv ~drop:supervisor_flags () in
      let fallback cells =
        let tasks =
          Array.of_list
            (List.map
               (fun c () -> (c.Shard.c_id, sim_cell c.Shard.c_key))
               cells)
        in
        Array.to_list (Parallel.map ~jobs tasks)
      in
      let pool =
        Option.map
          (fun addr ->
            {
              Supervisor.default_pool_config with
              Supervisor.pl_listen = addr;
              pl_token = token;
            })
          listen
      in
      let http =
        Option.bind metrics_listen (fun addr ->
            Report.listen_metrics ~src:"sim" addr
              (Report.live_metrics session))
      in
      let outcomes =
        Fun.protect
          ~finally:(fun () ->
            Option.iter Protean_telemetry.Http_listener.close http)
          (fun () ->
            match pool with
            | Some p ->
                Supervisor.run_pool ~bus ?http sup_config ~pool:p ~fallback
                  cells
            | None ->
                Supervisor.run ~bus ?http sup_config ~worker_argv ~fallback
                  cells)
      in
      let faulted = ref false in
      List.iter
        (fun (id, outcome) ->
          let bench = List.nth benches id in
          match outcome with
          | Supervisor.O_ok j -> (
              match Json.member "report" j with
              | Json.Str report ->
                  print_string report;
                  (match Json.member "result" j with
                  | Json.Null -> ()
                  | rj -> record bench (Supervisor.Grid.result_of_json rj))
              | _ ->
                  let reason =
                    match Json.member "fault" j with
                    | Json.Str s -> s
                    | _ -> "malformed worker result frame"
                  in
                  report_fault bench reason;
                  faulted := true)
          | Supervisor.O_fault { f_attempts; f_reason; _ } ->
              report_fault bench
                (Printf.sprintf "worker crashed on every attempt (%d): %s"
                   f_attempts f_reason);
              faulted := true)
        outcomes;
      finish (if !faulted then 3 else 0)
    end
    else begin
      let tasks =
        Array.of_list
          (List.map
             (fun bench () ->
               let b = Suite.find bench in
               match
                 with_span bench (fun () ->
                     simulate b d config spec_model pass invariants
                       invariant_every bench)
               with
               | report, res -> Ok (bench, report, res)
               | exception Pipeline.Sim_fault f ->
                   Error (bench, Pipeline.fault_to_string f)
               | exception (Certify.Cert_violation _ as e) ->
                   Error (bench, Printexc.to_string e))
             benches)
      in
      let reports = Parallel.map ~jobs tasks in
      let faulted = ref false in
      Array.iter
        (function
          | Ok (bench, report, res) ->
              print_string report;
              record bench res
          | Error (bench, reason) ->
              (* Report the faulting configuration instead of dying with a
                 raw backtrace, and exit non-zero so scripts notice. *)
              report_fault bench reason;
              faulted := true)
        reports;
      finish (if !faulted then 3 else 0)
    end
  end

let cmd =
  let doc = "simulate a PROTEAN benchmark under a Spectre defense" in
  Cmd.v
    (Cmd.info "protean-sim" ~doc)
    Term.(
      const run $ list_arg $ bench_arg $ defense_arg $ pass_arg $ core_arg
      $ core_width_arg $ spec_model_arg $ invariants_arg $ invariant_every_arg
      $ paranoid_sched_arg $ no_skip_ahead_arg $ no_shared_frontend_arg
      $ check_certs_arg $ jobs_arg $ shards_arg
      $ worker_arg $ inject_arg
      $ heartbeat_arg $ wall_arg $ metrics_out_arg $ trace_out_arg
      $ flamegraph_out_arg $ attr_out_arg $ log_json_arg $ listen_arg
      $ connect_arg $ token_arg $ metrics_listen_arg)

let () = exit (Cmd.eval cmd)
