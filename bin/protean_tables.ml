(* protean-tables: regenerate the paper's results tables and figures
   (the artifact's table-*.py / figure-*.py scripts, Section A-G).

     protean-tables table-v
     protean-tables table-iv --bench perlbench --bench milc
     protean-tables all -j 8
     protean-tables table-v --shards 4 -j 2

   `-j N` runs the experiment grid on N domains via Experiment.prewarm;
   `--shards N` additionally spreads the grid over N crash-isolated
   worker *processes* (each running `-j N` domains internally) under
   the Supervisor: a worker that segfaults, stalls or gets OOM-killed
   is retried and, if a single cell keeps crashing, that cell is
   bisected out and reported as a structured fault while the rest of
   the grid completes.  Either way the printed output is byte-identical
   to the serial run. *)

open Cmdliner
module E = Protean_harness.Experiment
module Parallel = Protean_harness.Parallel
module Supervisor = Protean_harness.Supervisor
module Fault_inject = Protean_defense.Fault_inject
module Tables = Protean_harness.Tables
module Figures = Protean_harness.Figures
module Studies = Protean_harness.Studies
module Report = Protean_harness.Report

let what_arg =
  let doc =
    "What to generate: table-i, table-ii, table-iv, table-v, figure-5, \
     figure-6, protcc-overhead, l1d-variants, ablation-access, \
     control-model, bugfix-cost, width-sweep, over-protection, area, \
     golden, golden-width, or all."
  in
  Arg.(value & pos 0 string "table-v" & info [] ~docv:"WHAT" ~doc)

let bench_arg =
  let doc = "Restrict to these benchmarks (repeatable)." in
  Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let core_width_arg =
  Arg.(value & opt_all int [] & info [ "core-width" ] ~docv:"N"
         ~doc:"Restrict the width-sweep target to these issue widths \
               (repeatable; default 1 2 4 6 8). Other targets ignore it.")

let fuzz_programs_arg =
  Arg.(value & opt int 10 & info [ "fuzz-programs" ] ~docv:"N"
         ~doc:"Programs per Table II campaign.")

let check_certs_arg =
  Arg.(value & flag & info [ "check-certs" ]
         ~doc:"Audit the protection certificates of every ProtCC compile \
               in the grid with the independent checker before the binary \
               runs; a refuted certificate becomes a structured cell \
               fault. Stays in the worker argv, so shard workers audit \
               the cells they compile.")

let no_skip_ahead_arg =
  Arg.(value & flag & info [ "no-skip-ahead" ]
         ~doc:"Disable event-driven skip-ahead: the simulator steps every \
               idle cycle instead of jumping to the next event horizon. \
               Results are bit-identical either way; this is the escape \
               hatch (also PROTEAN_NO_SKIP_AHEAD=1). Stays in the worker \
               argv, and is exported to the environment so shard workers \
               inherit it.")

let no_shared_frontend_arg =
  Arg.(value & flag & info [ "no-shared-frontend" ]
         ~doc:"Disable shared-frontend batching: build, instrument and \
               decode every grid cell's workload independently instead of \
               reusing one frontend per (benchmark, pass) group. Results \
               are bit-identical either way; this is the escape hatch \
               (also PROTEAN_NO_SHARED_FRONTEND=1).")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Simulation domains; 0 = all cores. Output is byte-identical \
               to -j 1.")

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
         ~doc:"Crash-isolated worker processes for the experiment grid \
               (composes with -j inside each worker). Output is \
               byte-identical to the serial run; a crashing cell is \
               isolated by bisection and reported as a structured fault.")

let worker_arg =
  Arg.(value & flag & info [ "worker" ]
         ~doc:"Internal: serve grid cells over the supervisor frame \
               protocol on stdin/stdout. Spawned by --shards; not for \
               interactive use.")

let inject_arg =
  Arg.(value & opt (some string) None & info [ "inject-faults" ] ~docv:"MODE"
         ~doc:"Self-test the shard supervisor by arming a worker-level \
               fault: worker-kill, worker-stall, worker-truncate, or \
               worker-poison:N (abort whenever computing cell N). \
               Requires --shards > 1; the supervised run must still \
               complete (recovering, or isolating the poisoned cell).")

let heartbeat_arg =
  Arg.(value & opt float 120.0 & info [ "shard-heartbeat" ] ~docv:"SECS"
         ~doc:"Kill a worker that sends no frame for this long.")

let wall_arg =
  Arg.(value & opt float 3600.0 & info [ "shard-wall" ] ~docv:"SECS"
         ~doc:"Kill a worker spawn that outlives this wall-clock budget.")

let checkpoint_dir_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
         ~doc:"Persist per-shard results there (atomic JSON files); a \
               restarted supervised run resumes completed cells from them.")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"PATH"
         ~doc:"Write grid metrics to $(docv): Prometheus text exposition, \
               or JSON when the path ends in .json. Simulation-derived \
               families are byte-identical across -j and --shards.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"PATH"
         ~doc:"Write a Chrome trace-event JSON timeline (cell spans, \
               supervisor lifecycle instants) to $(docv); load it in \
               Perfetto or chrome://tracing.")

let flamegraph_out_arg =
  Arg.(value & opt (some string) None & info [ "flamegraph-out" ] ~docv:"PATH"
         ~doc:"Write a collapsed-stack flamegraph (simulated cycles by \
               defense, benchmark and function) to $(docv); render with \
               flamegraph.pl or speedscope.")

let attr_out_arg =
  Arg.(value & opt (some string) None & info [ "attr-out" ] ~docv:"PATH"
         ~doc:"Write the per-cell speculation-window ledger summary \
               (window counters and over-protection ratios) as JSON to \
               $(docv), and print the rendered report. Byte-identical \
               across -j and --shards.")

let log_json_arg =
  Arg.(value & flag & info [ "log-json" ]
         ~doc:"Emit diagnostic log lines as structured JSON on stderr.")

let listen_arg =
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT"
         ~doc:"Run the grid as a TCP worker pool: bind $(docv) (port 0 \
               picks one), lease work to workers that dial in with \
               --connect, and re-dispatch the lease of any worker that \
               disconnects or times out. --shards then bounds in-flight \
               leases. Output stays byte-identical to the serial run.")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
         ~doc:"Serve grid cells as a remote worker: dial a --listen'ing \
               supervisor, authenticate with --campaign-token, and \
               reconnect with backoff if the connection drops.")

let token_arg =
  Arg.(value & opt string "protean" & info [ "campaign-token" ] ~docv:"TOKEN"
         ~doc:"Shared secret for the worker-pool handshake; a dial-in \
               worker presenting a different token is rejected.")

let metrics_listen_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-listen" ] ~docv:"HOST:PORT"
         ~doc:"Serve live Prometheus metrics over HTTP at $(docv)/metrics \
               for the duration of the run (port 0 picks one; the bound \
               port is logged).")

(* Supervisor-only flags must not reach the worker's argv: the worker
   re-runs the same discovery pass, and any argv drift would change the
   cell enumeration.  The telemetry exporter flags are deliberately
   *kept*: workers flip the collection switches from them, and cell
   telemetry rides home over the frame protocol ([F_result]'s "pm"/"fl"
   fields); only the parent writes files. *)
let supervisor_flags =
  [ "--shards"; "--inject-faults"; "--shard-heartbeat"; "--shard-wall";
    "--checkpoint-dir"; "--listen"; "--metrics-listen"; "--campaign-token" ]

let run what benches core_widths fuzz_programs check_certs no_skip_ahead
    no_shared_frontend jobs shards worker inject heartbeat wall checkpoint_dir
    metrics_out trace_out flamegraph_out attr_out log_json listen connect
    token metrics_listen =
  Protean_ooo.Gc_tune.tune ();
  if log_json then Protean_telemetry.Log.set_json true;
  if check_certs then Report.enable_cert_audit ();
  (* Both escape hatches stay in the worker argv and are exported to the
     environment: spawned --shards workers re-read it at startup, so the
     whole grid runs one scheduling mode. *)
  if no_skip_ahead then begin
    Protean_ooo.Pipeline.set_skip_ahead false;
    Unix.putenv "PROTEAN_NO_SKIP_AHEAD" "1"
  end;
  if no_shared_frontend then begin
    E.share_frontend := false;
    Unix.putenv "PROTEAN_NO_SHARED_FRONTEND" "1"
  end;
  let jobs = if jobs = 0 then Parallel.default_jobs () else max 1 jobs in
  let shards = max 1 shards in
  let benches = match benches with [] -> None | bs -> Some bs in
  let widths = match core_widths with [] -> None | ws -> Some ws in
  let tele = { Report.metrics_out; trace_out; flamegraph_out; attr_out } in
  (* The over-protection audit reads the ledger's summary counters from
     every cell; flip collection before any simulation runs.  The switch
     rides the worker argv (the positional target is kept), so shard
     workers collect too and the counters ride home in [F_result]. *)
  if what = "over-protection" then E.collect_window := true;
  Report.enable ~worker tele;
  let session = E.create_session ~log:true () in
  (* Targets memoized through [session] can be prewarmed in parallel;
     the rest manage their own parallelism (or have none to exploit). *)
  let session_gen = function
    | "table-i" -> Some (fun () -> Tables.table_i ?benches session)
    | "table-iv" -> Some (fun () -> Tables.table_iv ?benches session)
    | "table-v" -> Some (fun () -> Tables.table_v ?benches session)
    | "figure-5" -> Some (fun () -> Figures.figure_5 ?benches session)
    | "figure-6" -> Some (fun () -> Figures.figure_6 ?benches session)
    | "protcc-overhead" -> Some (fun () -> Studies.protcc_overhead ?benches session)
    | "l1d-variants" -> Some (fun () -> Studies.l1d_variants ?benches session)
    | "ablation-access" -> Some (fun () -> Studies.ablation_access ?benches session)
    | "control-model" -> Some (fun () -> Studies.control_model ?benches session)
    | "bugfix-cost" -> Some (fun () -> Studies.bugfix_cost ?benches session)
    | "width-sweep" ->
        Some (fun () -> Tables.width_sweep ?benches ?widths session)
    (* Not in [session_targets]: `all` keeps the ledger detached so its
       grid cells stay byte-identical to the golden corpora. *)
    | "over-protection" ->
        Some (fun () -> Tables.over_protection ?benches session)
    | _ -> None
  in
  let session_targets =
    [
      "table-v"; "table-iv"; "table-i"; "figure-6"; "figure-5";
      "protcc-overhead"; "l1d-variants"; "ablation-access";
      "control-model"; "bugfix-cost";
    ]
  in
  (* One generator per sharded/prewarm scope: the target's own, or the
     combined session sweep for `all` (cells shared between tables run
     once, in one parallel or supervised pass). *)
  let combined_gen () =
    List.iter (fun w -> Option.get (session_gen w) ()) session_targets
  in
  let supervised gen =
    let config =
      {
        Supervisor.default_config with
        Supervisor.shards;
        heartbeat;
        wall;
        checkpoint_dir;
        inject = Option.map Fault_inject.worker_mode_of_string inject;
      }
    in
    let bus = Supervisor.create_bus () in
    Supervisor.subscribe bus ~name:"log" (Supervisor.logger ());
    if Report.wanted tele || metrics_listen <> None then
      Supervisor.subscribe bus ~name:"telemetry"
        (Report.supervisor_observer ());
    let worker_argv =
      Supervisor.self_worker_argv ~drop:supervisor_flags ()
    in
    let pool =
      Option.map
        (fun addr ->
          {
            Supervisor.default_pool_config with
            Supervisor.pl_listen = addr;
            pl_token = token;
          })
        listen
    in
    let http =
      Option.bind metrics_listen (fun addr ->
          Report.listen_metrics ~src:"tables" addr
            (Report.live_metrics session))
    in
    Fun.protect
      ~finally:(fun () ->
        Option.iter Protean_telemetry.Http_listener.close http)
      (fun () ->
        Supervisor.Grid.supervised ~bus ~config ?pool ?http ~worker_argv ~jobs
          session gen)
  in
  let gen_session g =
    if shards > 1 || listen <> None then supervised g
    else E.prewarm ~jobs session g
  in
  let gen w =
    match session_gen w with
    | Some g -> gen_session g
    | None -> (
        match w with
        | "table-ii" -> Tables.table_ii ~jobs ~programs:fuzz_programs ()
        | "area" -> Studies.area_report ()
        | "golden" ->
            (* Regenerate the golden determinism corpus
               (test/golden_pipeline.expected). *)
            List.iter print_endline (Protean_harness.Golden.lines ~jobs ())
        | "golden-width" ->
            (* Regenerate the width-sweep golden corpus
               (test/golden_width.expected). *)
            List.iter print_endline
              (Protean_harness.Golden.width_lines ~jobs ())
        | s -> invalid_arg ("unknown table/figure: " ^ s))
  in
  if worker || connect <> None then
    (* Spawned by a supervisor (--worker: frames on stdin/stdout) or
       dialing one remotely (--connect).  The discovery pass below
       enumerates exactly the supervisor's cells because the argv
       (minus supervisor flags) matches. *)
    let g =
      match what with
      | "all" -> combined_gen
      | w -> (
          match session_gen w with
          | Some g -> g
          | None ->
              invalid_arg ("--worker is only meaningful for grid targets: " ^ w))
    in
    Supervisor.Grid.worker ~jobs ?connect ~token session g
  else begin
    (match what with
    | "all" ->
        gen_session combined_gen;
        gen "area";
        gen "table-ii"
    | w -> gen w);
    if Report.wanted tele then Report.write_outputs tele session
  end

let cmd =
  let doc = "regenerate the PROTEAN paper's tables and figures" in
  Cmd.v
    (Cmd.info "protean-tables" ~doc)
    Term.(
      const run $ what_arg $ bench_arg $ core_width_arg $ fuzz_programs_arg
      $ check_certs_arg $ no_skip_ahead_arg $ no_shared_frontend_arg
      $ jobs_arg
      $ shards_arg $ worker_arg $ inject_arg $ heartbeat_arg $ wall_arg
      $ checkpoint_dir_arg $ metrics_out_arg $ trace_out_arg
      $ flamegraph_out_arg $ attr_out_arg $ log_json_arg $ listen_arg
      $ connect_arg $ token_arg $ metrics_listen_arg)

let () = exit (Cmd.eval cmd)
