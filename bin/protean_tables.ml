(* protean-tables: regenerate the paper's results tables and figures
   (the artifact's table-*.py / figure-*.py scripts, Section A-G).

     protean-tables table-v
     protean-tables table-iv --bench perlbench --bench milc
     protean-tables all -j 8

   `-j N` runs the experiment grid on N domains via Experiment.prewarm;
   the printed output is byte-identical to the serial run. *)

open Cmdliner
module E = Protean_harness.Experiment
module Parallel = Protean_harness.Parallel
module Tables = Protean_harness.Tables
module Figures = Protean_harness.Figures
module Studies = Protean_harness.Studies

let what_arg =
  let doc =
    "What to generate: table-i, table-ii, table-iv, table-v, figure-5, \
     figure-6, protcc-overhead, l1d-variants, ablation-access, \
     control-model, bugfix-cost, area, golden, or all."
  in
  Arg.(value & pos 0 string "table-v" & info [] ~docv:"WHAT" ~doc)

let bench_arg =
  let doc = "Restrict to these benchmarks (repeatable)." in
  Arg.(value & opt_all string [] & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let fuzz_programs_arg =
  Arg.(value & opt int 10 & info [ "fuzz-programs" ] ~docv:"N"
         ~doc:"Programs per Table II campaign.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Simulation domains; 0 = all cores. Output is byte-identical \
               to -j 1.")

let run what benches fuzz_programs jobs =
  let jobs = if jobs = 0 then Parallel.default_jobs () else max 1 jobs in
  let benches = match benches with [] -> None | bs -> Some bs in
  let session = E.create_session ~log:true () in
  (* Targets memoized through [session] can be prewarmed in parallel;
     the rest manage their own parallelism (or have none to exploit). *)
  let session_gen = function
    | "table-i" -> Some (fun () -> Tables.table_i ?benches session)
    | "table-iv" -> Some (fun () -> Tables.table_iv ?benches session)
    | "table-v" -> Some (fun () -> Tables.table_v ?benches session)
    | "figure-5" -> Some (fun () -> Figures.figure_5 ?benches session)
    | "figure-6" -> Some (fun () -> Figures.figure_6 ?benches session)
    | "protcc-overhead" -> Some (fun () -> Studies.protcc_overhead ?benches session)
    | "l1d-variants" -> Some (fun () -> Studies.l1d_variants ?benches session)
    | "ablation-access" -> Some (fun () -> Studies.ablation_access ?benches session)
    | "control-model" -> Some (fun () -> Studies.control_model ?benches session)
    | "bugfix-cost" -> Some (fun () -> Studies.bugfix_cost ?benches session)
    | _ -> None
  in
  let gen w =
    match session_gen w with
    | Some g -> E.prewarm ~jobs session g
    | None -> (
        match w with
        | "table-ii" -> Tables.table_ii ~jobs ~programs:fuzz_programs ()
        | "area" -> Studies.area_report ()
        | "golden" ->
            (* Regenerate the golden determinism corpus
               (test/golden_pipeline.expected). *)
            List.iter print_endline (Protean_harness.Golden.lines ~jobs ())
        | s -> invalid_arg ("unknown table/figure: " ^ s))
  in
  match what with
  | "all" ->
      let session_targets =
        [
          "table-v"; "table-iv"; "table-i"; "figure-6"; "figure-5";
          "protcc-overhead"; "l1d-variants"; "ablation-access";
          "control-model"; "bugfix-cost";
        ]
      in
      (* One prewarm across every session target so the whole grid fills
         in a single parallel pass (cells shared between tables run once). *)
      E.prewarm ~jobs session (fun () ->
          List.iter (fun w -> Option.get (session_gen w) ()) session_targets);
      gen "area";
      gen "table-ii"
  | w -> gen w

let cmd =
  let doc = "regenerate the PROTEAN paper's tables and figures" in
  Cmd.v
    (Cmd.info "protean-tables" ~doc)
    Term.(const run $ what_arg $ bench_arg $ fuzz_programs_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
