(* ProtCC-UNR (Section V-A4): instrumentation for unrestricted code.

   Unrestricted programs may place secrets in any data register, so only
   registers that *never* hold secret program data may stay unprotected:
   the stack pointer, registers initialized with constants, and registers
   computed solely from those.  A forward must-analysis computes this
   "safe" register set; everything else is PROT-prefixed.

   This is what lets PROTEAN-UNR dramatically outperform SPT-SB on
   stack-heavy code (Section IX-A1): fixed-offset stack accesses have an
   unprotected address operand and need not be stalled. *)

open Protean_isa

let safe_registers ~entry_public (code : Insn.t array) cfg =
  let transfer pc x =
    let op = code.(pc).Insn.op in
    match op with
    | Insn.Call _ ->
        (* Only the stack pointer is guaranteed safe across a call. *)
        if Regset.mem Reg.rsp x then Regset.singleton Reg.rsp
        else Regset.empty
    | _ ->
        List.fold_left
          (fun acc r ->
            if Leak.output_public x op r then Regset.add r acc
            else Regset.remove r acc)
          x (Insn.writes op)
  in
  Dataflow.solve cfg ~dir:Dataflow.Forward ~top:Regset.full
    ~boundary:(Regset.add Reg.rsp entry_public) ~meet:Regset.inter ~transfer

(* Protection certificate: the safe set consists of registers derived
   solely from constants and the stack pointer, so every fact is an
   unconditional forward (value-equality) claim. *)
let certificate ~entry_public ~fname (code : Insn.t array) ~lo ~hi
    (instr : Instr.t) =
  let cfg = Cfg.build code ~lo ~hi in
  let before, after = safe_registers ~entry_public code cfg in
  let points =
    Array.init (hi - lo) (fun i ->
        {
          Certificate.fwd_before = before.(i);
          fwd_after = after.(i);
          bwd_before = Regset.empty;
          bwd_after = Regset.empty;
          prot = instr.Instr.prot.(i);
          unprotect_before = instr.Instr.unprotect_before.(i);
        })
  in
  {
    Certificate.style = Certificate.S_unr;
    fname;
    lo;
    hi;
    entry_public;
    points;
  }

let run ?(entry_public = Regset.empty) (code : Insn.t array) ~lo ~hi =
  let cfg = Cfg.build code ~lo ~hi in
  let _, after = safe_registers ~entry_public code cfg in
  let out = Instr.make ~lo ~hi in
  for pc = lo to hi - 1 do
    let i = pc - lo in
    let op = code.(pc).Insn.op in
    out.Instr.prot.(i) <-
      List.exists
        (fun r -> not (Regset.mem r after.(i)))
        (Leak.relevant_outputs op)
  done;
  out
