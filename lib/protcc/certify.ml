(* Independent certificate checker (translation validation of ProtCC).

   [audit] validates the protection certificates a pass emitted against
   the SEQ contract executor in [lib/arch/], without re-running the
   pass's own analyses:

   - a *static* audit checks the certificate's internal consistency
     against the installed instrumentation: every unprotected
     instruction's relevant outputs must be covered by a claim, and
     every unprotection move must be justified by a fact at its point;

   - a *dynamic* audit replays the instrumented binary in lockstep on
     input pairs that differ only in secret memory and refutes any
     forward (value-equality) claim the executor can observe leaking: a
     forward-claimed register holding different values in the two
     executions is, by definition, secret-dependent, so omitting its
     PROT was unsound.

   Backward claims (bound-to-leak, all of CTS typing) are conditional on
   the program conforming to its class; the dynamic audit therefore
   stops a pair's replay — without flagging — at the first point where
   the pair's executions transmit different data (the program itself is
   out of class for that pair, voiding the conditional facts). *)

open Protean_isa
module Exec = Protean_arch.Exec

type violation = {
  v_fname : string;
  v_style : string;
  v_pc : int; (* original pc of the offending certificate point *)
  v_reason : string;
}

exception Cert_violation of violation

let violation_to_string v =
  Printf.sprintf "cert-violation: %s pass=%s pc=%d: %s" v.v_fname v.v_style
    v.v_pc v.v_reason

let () =
  Printexc.register_printer (function
    | Cert_violation v -> Some (violation_to_string v)
    | _ -> None)

(* Master switch for the harness compile path (--check-certs). *)
let enabled = ref false

(* Observer hook: called once per audited certificate so the harness can
   feed protean_cert_* telemetry without this library depending on the
   telemetry registry. *)
let on_audit : (style:string -> claims:int -> violations:int -> unit) ref =
  ref (fun ~style:_ ~claims:_ ~violations:_ -> ())

type stats = { checked : int; claims : int; violations : violation list }

(* ------------------------------------------------------------------ *)
(* Static audit                                                        *)

let static_violations (c : Certificate.t) (code : Insn.t array) =
  if Certificate.claims_nothing c then []
  else begin
    let vs = ref [] in
    let add pc reason =
      vs :=
        {
          v_fname = c.Certificate.fname;
          v_style = Certificate.style_name c.Certificate.style;
          v_pc = pc;
          v_reason = reason;
        }
        :: !vs
    in
    Array.iteri
      (fun i (p : Certificate.point) ->
        let pc = c.Certificate.lo + i in
        let op = code.(pc).Insn.op in
        let after = Regset.union p.Certificate.fwd_after p.Certificate.bwd_after in
        if not p.Certificate.prot then
          List.iter
            (fun r ->
              if not (Regset.mem r after) then
                add pc
                  (Printf.sprintf "unprotected output %s has no claim"
                     (Reg.name r)))
            (Leak.relevant_outputs op);
        let before =
          Regset.union p.Certificate.fwd_before p.Certificate.bwd_before
        in
        let before =
          if i = 0 then Regset.union before c.Certificate.entry_public
          else before
        in
        if not (Regset.subset p.Certificate.unprotect_before before) then
          add pc "unprotection move without a justifying fact")
      c.Certificate.points;
    List.rev !vs
  end

(* ------------------------------------------------------------------ *)
(* Dynamic audit: executor-backed lockstep refutation                  *)

(* Map each relaid-out pc holding a certified function's instruction to
   its certificate point.  The instruction originally at [pc] sits at
   [old_to_new.(pc+1) - 1], after its unprotection moves. *)
let claim_table (res : Protcc.result) =
  let n = Array.length res.Protcc.program.Program.code in
  let tbl = Array.make n None in
  List.iter
    (fun (c : Certificate.t) ->
      if not (Certificate.claims_nothing c) then
        for pc = c.Certificate.lo to c.Certificate.hi - 1 do
          let np = res.Protcc.old_to_new.(pc + 1) - 1 in
          if np >= 0 && np < n then tbl.(np) <- Some (c, pc - c.Certificate.lo)
        done)
    res.Protcc.certs;
  tbl

(* Operands whose relational divergence voids a pair's conditional
   claims.  CT facts assume all fully-transmitted data agreed so far;
   CTS typing assumes every sensitive operand (including the partially
   transmitted division inputs) is public.  UNR's safe set is derived
   solely from constants and the stack pointer, so its claims survive
   arbitrary architectural leakage — only control divergence (which
   ends the lockstep anyway) stops that audit. *)
let voiding_operands style op =
  match (style : Certificate.style) with
  | Certificate.S_ct -> Leak.fully_transmitted op
  | Certificate.S_cts -> Leak.sensitive op
  | Certificate.S_unr | Certificate.S_arch | Certificate.S_rand ->
      Regset.empty

(* Replay [res.program] on two memory overlays in lockstep and refute
   forward claims.  Stops at the first violation (one witness is enough
   for the fault path) and at any execution divergence. *)
let lockstep ?fuel (res : Protcc.result) tbl (in1, in2) =
  let p = res.Protcc.program in
  let s1 = Exec.init p and s2 = Exec.init p in
  Exec.overlay s1 in1;
  Exec.overlay s2 in2;
  let found = ref None in
  let differs r = not (Int64.equal (Exec.reg s1 r) (Exec.reg s2 r)) in
  let flag (c : Certificate.t) i reason =
    if !found = None then
      found :=
        Some
          {
            v_fname = c.Certificate.fname;
            v_style = Certificate.style_name c.Certificate.style;
            v_pc = c.Certificate.lo + i;
            v_reason = reason;
          }
  in
  let refuted set c i where =
    match List.find_opt differs (Regset.to_list set) with
    | Some r ->
        flag c i
          (Printf.sprintf "forward claim on %s refuted %s pc" (Reg.name r)
             where);
        true
    | None -> false
  in
  let info_at pc =
    if pc >= 0 && pc < Array.length tbl then tbl.(pc) else None
  in
  Exec.lockstep ?fuel p s1 s2
    ~before:(fun pc ->
      match info_at pc with
      | None -> `Continue
      | Some (c, i) ->
          let point = c.Certificate.points.(i) in
          let op = (Program.insn p pc).Insn.op in
          (* Forward claims are value equalities: check before the
             step... *)
          if refuted point.Certificate.fwd_before c i "before" then `Stop
            (* ...then void the pair's conditional claims if this point
               transmits different data in the two executions. *)
          else if
            List.exists differs
              (Regset.to_list (voiding_operands c.Certificate.style op))
          then `Stop
          else `Continue)
    ~after:(fun pc ->
      match info_at pc with
      | None -> `Continue
      | Some (c, i) ->
          let point = c.Certificate.points.(i) in
          if refuted point.Certificate.fwd_after c i "after" then `Stop
          else `Continue);
  match !found with Some v -> [ v ] | None -> []

(* Self-generated input pairs for harness paths that have no fuzzer
   inputs at hand: seeded random byte strings over the program's secret
   regions (two fresh draws per pair). *)
let gen_pairs ?(pairs = 3) ?(seed = 0x5eed) (original : Program.t) =
  match Program.secret_ranges original with
  | [] -> []
  | ranges ->
      let rng = Random.State.make [| seed; List.length ranges |] in
      let draw () =
        List.map
          (fun (addr, len) ->
            ( addr,
              String.init (Int64.to_int len) (fun _ ->
                  Char.chr (Random.State.int rng 256)) ))
          ranges
      in
      List.init pairs (fun _ ->
          let a = draw () in
          let b = draw () in
          (a, b))

(* ------------------------------------------------------------------ *)

(* Audit every certificate in [res] against [original] (the pre-pass
   program the certificates' pc ranges refer to).  [inputs] supplies
   memory-overlay pairs for the dynamic audit; when absent, pairs are
   self-generated from the program's secret regions. *)
let audit ?fuel ?pairs ?seed ?inputs ~(original : Program.t)
    (res : Protcc.result) =
  let code = original.Program.code in
  let static_vs =
    List.concat_map (fun c -> static_violations c code) res.Protcc.certs
  in
  let input_pairs =
    match inputs with
    | Some l -> l
    | None -> gen_pairs ?pairs ?seed original
  in
  let tbl = claim_table res in
  let dyn_vs =
    List.concat_map (fun pair -> lockstep ?fuel res tbl pair) input_pairs
  in
  let violations = static_vs @ dyn_vs in
  let claims = ref 0 in
  List.iter
    (fun (c : Certificate.t) ->
      let cc = Certificate.claim_count c in
      claims := !claims + cc;
      let nv =
        List.length
          (List.filter (fun v -> v.v_fname = c.Certificate.fname) violations)
      in
      !on_audit
        ~style:(Certificate.style_name c.Certificate.style)
        ~claims:cc ~violations:nv)
    res.Protcc.certs;
  { checked = List.length res.Protcc.certs; claims = !claims; violations }

(* As [audit], but raise the first violation as a structured fault for
   the supervisor/ledger path (poisons only the offending cell). *)
let audit_exn ?fuel ?pairs ?seed ?inputs ~original res =
  let stats = audit ?fuel ?pairs ?seed ?inputs ~original res in
  match stats.violations with
  | [] -> stats
  | v :: _ -> raise (Cert_violation v)
