(** ProtCC: compiler passes that automatically program ProtISA ProtSets
    (Section V).

    ProtCC instruments a program function-by-function according to each
    function's vulnerable-code class, then relays the code out (identity
    moves shift instruction addresses) and patches static control-flow
    targets.  Return addresses need no relocation: [call] pushes its
    successor's address at run time. *)

open Protean_isa

type pass =
  | P_arch  (** no-op: unmodified binaries program the ARCH ProtSet *)
  | P_cts  (** Serberus-style secrecy-type inference (Section V-A2) *)
  | P_ct  (** past-leaked + bound-to-leak dataflow analyses (V-A3) *)
  | P_unr  (** unprotect only stack-pointer/constant-derived data (V-A4) *)
  | P_rand of int * float
      (** PROT-prefix a random subset: seed, probability (testing only,
          Section VII-B4b) *)

val pass_for_klass : Program.klass -> pass
val pass_name : pass -> string

type result = {
  program : Program.t;  (** the instrumented, relaid-out ProtISA binary *)
  typing : Protean_arch.Observer.typing;
      (** publicly-typed output registers per new pc, for the CTS-SEQ
          observer mode *)
  old_to_new : int array;  (** start position of each old pc (length+1) *)
  inserted_moves : int;
  code_size_ratio : float;
  certs : Certificate.t list;
      (** per-function protection certificates, in [funcs] order — the
          machine-checkable claims audited by {!Certify} *)
}

val instrument :
  ?classes:(string * Program.klass) list ->
  ?annotations:(string * Reg.t list) list ->
  ?pass_override:pass ->
  Program.t ->
  result
(** Instrument a program.  [classes] overrides the class of named
    functions (the user-facing compilation flags of Section V-A);
    [annotations] declares per-function registers that are public at
    entry, refining the inferred ProtSets (the Section V-C extension);
    [pass_override] forces one pass for every function (single-class
    experiments and fuzzing).  By default each function is compiled with
    the pass for its own class — the multi-class mode of Fig. 1. *)
