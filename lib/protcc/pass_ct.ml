(* ProtCC-CT (Section V-A3): instrumentation for constant-time code.

   Constant-time programs never place secrets in registers that are
   architecturally fully transmitted.  Therefore a register is safe to
   leave (or make) unprotected at a program point whenever its value

   - was already fully transmitted on all control-flow paths reaching the
     point, or is a deterministic function of such data or of constants
     (the *past-leaked* forward must-analysis), or
   - is bound to be fully transmitted on all control-flow paths leaving
     the point before being overwritten (the *bound-to-leak* backward
     must-analysis).

   The pass PROT-prefixes every instruction with an output register that
   is neither past-leaked nor bound-to-leak, and inserts identity moves
   where a register newly becomes unprotectable, architecturally
   declassifying it as early as possible. *)

open Protean_isa

type facts = {
  pl_before : Regset.t array;
  pl_after : Regset.t array;
  btl_before : Regset.t array;
  btl_after : Regset.t array;
}

(* Forward past-leaked analysis.  [entry_public] (user annotations,
   Section V-C) seeds registers that are public on entry. *)
let past_leaked ~entry_public (code : Insn.t array) cfg =
  let transfer pc x =
    let op = code.(pc).Insn.op in
    (* Executing the instruction fully transmits its sensitive operands. *)
    let x = Regset.union x (Leak.fully_transmitted op) in
    (* Calls clobber the analysis state: the callee is analyzed
       separately and may overwrite anything (conservatively keep only
       what the call itself leaks). *)
    let x = match op with Insn.Call _ -> Leak.fully_transmitted op | _ -> x in
    List.fold_left
      (fun acc r ->
        if Leak.output_public x op r then Regset.add r acc
        else Regset.remove r acc)
      x (Insn.writes op)
  in
  Dataflow.solve cfg ~dir:Dataflow.Forward ~top:Regset.full
    ~boundary:entry_public ~meet:Regset.inter ~transfer

(* Backward bound-to-leak analysis. *)
let bound_to_leak (code : Insn.t array) cfg =
  let transfer pc a =
    let op = code.(pc).Insn.op in
    match op with
    | Insn.Call _ ->
        (* Nothing is known to leak across a call. *)
        Leak.fully_transmitted op
    | _ ->
        let writes = Regset.of_list (Insn.writes op) in
        let b = Regset.diff a writes in
        let b = Regset.union b (Leak.fully_transmitted op) in
        (* A full-width register copy whose destination is bound to leak
           also dooms the source. *)
        let b =
          match op with
          | Insn.Mov (Insn.W64, d, Insn.Reg s) when Regset.mem d a ->
              Regset.add s b
          | _ -> b
        in
        b
  in
  Dataflow.solve cfg ~dir:Dataflow.Backward ~top:Regset.full
    ~boundary:Regset.empty ~meet:Regset.inter ~transfer

let analyze ~entry_public code cfg =
  let pl_before, pl_after = past_leaked ~entry_public code cfg in
  let btl_before, btl_after = bound_to_leak code cfg in
  { pl_before; pl_after; btl_before; btl_after }

(* Protection certificate (translation validation): past-leaked facts
   are forward (relationally refutable) claims, bound-to-leak facts are
   backward claims.  The [prot]/[unprotect_before] recorded are the ones
   actually emitted, so the checker audits the installed instrumentation
   rather than a re-run of this analysis. *)
let certificate ~entry_public ~fname (code : Insn.t array) ~lo ~hi
    (instr : Instr.t) =
  let cfg = Cfg.build code ~lo ~hi in
  let f = analyze ~entry_public code cfg in
  let points =
    Array.init (hi - lo) (fun i ->
        {
          Certificate.fwd_before = f.pl_before.(i);
          fwd_after = f.pl_after.(i);
          bwd_before = f.btl_before.(i);
          bwd_after = f.btl_after.(i);
          prot = instr.Instr.prot.(i);
          unprotect_before = instr.Instr.unprotect_before.(i);
        })
  in
  { Certificate.style = Certificate.S_ct; fname; lo; hi; entry_public; points }

let run ?(entry_public = Regset.empty) (code : Insn.t array) ~lo ~hi =
  let cfg = Cfg.build code ~lo ~hi in
  let f = analyze ~entry_public code cfg in
  let out = Instr.make ~lo ~hi in
  let pub_before i = Regset.union f.pl_before.(i) f.btl_before.(i) in
  let pub_after i = Regset.union f.pl_after.(i) f.btl_after.(i) in
  for pc = lo to hi - 1 do
    let i = pc - lo in
    let op = code.(pc).Insn.op in
    (* PROT-prefix instructions with an output that may hold a secret. *)
    let needs_prot =
      List.exists
        (fun r -> not (Regset.mem r (pub_after i)))
        (Leak.relevant_outputs op)
    in
    out.Instr.prot.(i) <- needs_prot;
    (* Unprotect registers that become publicly-known at this point but
       were not on every incoming edge.  Unprotection is justified by the
       point's own must-fact, so placing the moves before the join is
       safe even when only some edges made the register public. *)
    let incoming =
      match Cfg.preds cfg pc with
      | [] -> Regset.empty
      | q :: qs ->
          List.fold_left
            (fun acc q -> Regset.inter acc (pub_after (q - lo)))
            (pub_after (q - lo))
            qs
    in
    let incoming = if pc = lo then Regset.empty else incoming in
    let newly = Regset.diff (pub_before i) incoming in
    out.Instr.unprotect_before.(i) <- Regset.inter newly Instr.movable
  done;
  out
