(* Protection certificates: a machine-checkable record of what a ProtCC
   pass claims at each program point and why (the dataflow facts that
   justify each PROT omission).

   Certificates are emitted against the *original* (pre-layout) pc range
   of a function and are independent of the relaid-out binary; the
   checker in [Certify] uses [Protcc.result.old_to_new] to locate the
   instrumented instructions.

   Claims are split into two classes with different checking semantics:

   - forward claims ([fwd_before]/[fwd_after]) assert that the register's
     value is a deterministic function of data the pass considers already
     public — constants, the stack pointer, past fully-transmitted
     operands.  These are *relationally refutable*: in two sequential
     executions that differ only in secret memory and agree on everything
     transmitted so far, a forward-claimed register must hold equal
     values.  ProtCC-CT's past-leaked facts and ProtCC-UNR's safe set are
     forward claims.

   - backward claims ([bwd_before]/[bwd_after]) assert that the register
     is *doomed* to be transmitted (CT's bound-to-leak) or is required
     public by secrecy typing (all of CTS — the publicly-derivable
     analysis is seeded from the typing assumption at entry, so every CTS
     fact is conditional on the program conforming to its type).  These
     justify PROT omissions but are not value-equality statements, so the
     executor can only audit them structurally. *)

type style = S_arch | S_cts | S_ct | S_unr | S_rand

let style_name = function
  | S_arch -> "arch"
  | S_cts -> "cts"
  | S_ct -> "ct"
  | S_unr -> "unr"
  | S_rand -> "rand"

(* Facts at one original pc.  [prot] and [unprotect_before] mirror the
   pass's emitted instrumentation so the checker audits the certificate
   against what was actually installed, not against a re-run of the
   (possibly buggy) analysis. *)
type point = {
  fwd_before : Regset.t;
  fwd_after : Regset.t;
  bwd_before : Regset.t;
  bwd_after : Regset.t;
  prot : bool;
  unprotect_before : Regset.t;
}

type t = {
  style : style;
  fname : string;
  lo : int;  (* original pc range [lo, hi) *)
  hi : int;
  entry_public : Regset.t;
  points : point array;
      (* indexed by pc - lo; empty for vacuous/uncertified styles *)
}

(* ARCH makes no protection claims (unmodified binaries program the ARCH
   ProtSet, whose contract permits everything architecturally
   observable); RAND is a testing-only pass that certifies nothing. *)
let claims_nothing c =
  match c.style with S_arch | S_rand -> true | S_cts | S_ct | S_unr -> false

let vacuous ~style ~fname ~lo ~hi ~entry_public =
  { style; fname; lo; hi; entry_public; points = [||] }

(* Number of individual (pc, register) protection claims: the registers
   the pass asserts safe after each point. *)
let claim_count c =
  Array.fold_left
    (fun acc p ->
      acc
      + List.length (Regset.to_list (Regset.union p.fwd_after p.bwd_after)))
    0 c.points
