(* ProtCC driver (Section V): instruments a program function-by-function
   according to each function's vulnerable-code class, then relays out the
   code (identity-move insertions shift instruction addresses) and patches
   all static control-flow targets.

   Return addresses need no relocation: [call] pushes the address of its
   own successor at run time, which is correct in the new layout. *)

open Protean_isa

type pass =
  | P_arch
  | P_cts
  | P_ct
  | P_unr
  | P_rand of int * float (* seed, probability *)

let pass_for_klass = function
  | Program.Arch -> P_arch
  | Program.Cts -> P_cts
  | Program.Ct -> P_ct
  | Program.Unr -> P_unr

let pass_name = function
  | P_arch -> "ProtCC-ARCH"
  | P_cts -> "ProtCC-CTS"
  | P_ct -> "ProtCC-CT"
  | P_unr -> "ProtCC-UNR"
  | P_rand _ -> "ProtCC-RAND"

type result = {
  program : Program.t;
  typing : Protean_arch.Observer.typing;
      (* publicly-typed output registers per (new) pc, for the CTS-SEQ
         observer mode *)
  old_to_new : int array; (* length old+1; start position of each old pc *)
  inserted_moves : int;
  code_size_ratio : float;
  certs : Certificate.t list; (* one per function, in [funcs] order *)
}

let run_pass pass ~entry_public code ~lo ~hi =
  match pass with
  | P_arch -> None (* no-op: unmodified binaries program the ARCH ProtSet *)
  | P_cts -> Some (Pass_cts.run ~entry_public code ~lo ~hi)
  | P_ct -> Some (Pass_ct.run ~entry_public code ~lo ~hi)
  | P_unr -> Some (Pass_unr.run ~entry_public code ~lo ~hi)
  | P_rand (seed, prob) -> Some (Pass_rand.run ~seed ~prob code ~lo ~hi)

(* Instrument [p].  [classes] overrides the class of named functions (the
   user-facing compilation flags of Section V-A); [pass_override] forces a
   single pass for every function (used for single-class experiments and
   fuzzing). *)
let instrument ?(classes = []) ?(annotations = []) ?pass_override
    (p : Program.t) =
  let len = Array.length p.Program.code in
  let new_prot = Array.map (fun i -> i.Insn.prot) p.Program.code in
  let insert_before = Array.make len Regset.empty in
  let is_cts_pc = Array.make len false in
  let certs = ref [] in
  (* Run the per-function passes, each emitting a protection
     certificate over the function's original pc range. *)
  List.iter
    (fun (f : Program.func) ->
      let klass =
        match List.assoc_opt f.Program.fname classes with
        | Some k -> k
        | None -> f.Program.klass
      in
      let pass =
        match pass_override with Some pv -> pv | None -> pass_for_klass klass
      in
      let entry_public =
        match List.assoc_opt f.Program.fname annotations with
        | Some regs -> Regset.of_list regs
        | None -> Regset.empty
      in
      let fname = f.Program.fname in
      let lo = f.Program.entry and hi = f.Program.entry + f.Program.size in
      let cert =
        match run_pass pass ~entry_public p.Program.code ~lo ~hi with
        | None ->
            Certificate.vacuous ~style:Certificate.S_arch ~fname ~lo ~hi
              ~entry_public
        | Some instr ->
            for pc = lo to hi - 1 do
              new_prot.(pc) <- instr.Instr.prot.(pc - lo);
              insert_before.(pc) <- instr.Instr.unprotect_before.(pc - lo);
              if pass = P_cts then is_cts_pc.(pc) <- true
            done;
            (match pass with
            | P_arch -> assert false (* run_pass P_arch = None *)
            | P_cts ->
                Pass_cts.certificate ~entry_public ~fname p.Program.code ~lo
                  ~hi instr
            | P_ct ->
                Pass_ct.certificate ~entry_public ~fname p.Program.code ~lo
                  ~hi instr
            | P_unr ->
                Pass_unr.certificate ~entry_public ~fname p.Program.code ~lo
                  ~hi instr
            | P_rand _ ->
                (* Testing-only pass: certifies nothing. *)
                Certificate.vacuous ~style:Certificate.S_rand ~fname ~lo ~hi
                  ~entry_public)
      in
      certs := cert :: !certs)
    p.Program.funcs;
  (* Relayout. *)
  let buf = ref [] in
  let n = ref 0 in
  let emit i =
    buf := i :: !buf;
    incr n
  in
  let old_to_new = Array.make (len + 1) 0 in
  let inserted = ref 0 in
  let typing : Protean_arch.Observer.typing = Hashtbl.create 64 in
  for pc = 0 to len - 1 do
    old_to_new.(pc) <- !n;
    let moves = Instr.id_moves insert_before.(pc) in
    inserted := !inserted + List.length moves;
    List.iter
      (fun (m : Insn.t) ->
        if is_cts_pc.(pc) then
          Hashtbl.replace typing !n (Leak.relevant_outputs m.Insn.op);
        emit m)
      moves;
    let insn = { (p.Program.code.(pc)) with Insn.prot = new_prot.(pc) } in
    if is_cts_pc.(pc) && not insn.Insn.prot then
      Hashtbl.replace typing !n (Leak.relevant_outputs insn.Insn.op);
    emit insn
  done;
  old_to_new.(len) <- !n;
  let code = Array.of_list (List.rev !buf) in
  (* Patch static targets. *)
  let remap t = if t >= 0 && t <= len then old_to_new.(t) else t in
  Array.iteri
    (fun i (insn : Insn.t) ->
      let op' =
        match insn.Insn.op with
        | Insn.Jcc (c, t) -> Insn.Jcc (c, remap t)
        | Insn.Jmp t -> Insn.Jmp (remap t)
        | Insn.Call t -> Insn.Call (remap t)
        | op -> op
      in
      code.(i) <- { insn with Insn.op = op' })
    code;
  let funcs =
    List.map
      (fun (f : Program.func) ->
        let entry = old_to_new.(f.Program.entry) in
        let size = old_to_new.(f.Program.entry + f.Program.size) - entry in
        { f with Program.entry; size })
      p.Program.funcs
  in
  let program =
    {
      p with
      Program.code;
      funcs;
      main = old_to_new.(p.Program.main);
    }
  in
  let ratio =
    if len = 0 then 1.0 else float_of_int (Array.length code) /. float_of_int len
  in
  {
    program;
    typing;
    old_to_new;
    inserted_moves = !inserted;
    code_size_ratio = ratio;
    certs = List.rev !certs;
  }
