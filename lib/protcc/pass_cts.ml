(* ProtCC-CTS (Section V-A2): instrumentation for static constant-time
   code via conservative secrecy-type inference.

   Following the Serberus approach, all registers start secretly typed;
   standard secrecy typing rules are applied iteratively, retyping a
   register definition public whenever a type error would otherwise arise
   (a transmitter with a secretly-typed sensitive operand), until
   convergence.  Because public-typed outputs require public-typed inputs,
   the "must be publicly typed" requirement propagates backwards through
   data dependencies; the fixpoint is exactly a backward may-analysis:

     PUBREQ_before(q) = sensitive(q)
                      ∪ (PUBREQ_after(q) \ writes(q))
                      ∪ (data inputs of q, when an output of q is in
                         PUBREQ_after(q))

   with PUBREQ_after(q) the union over successors.  All sensitive
   transmitter operands — including the partially-transmitted division
   inputs — must be publicly typed.

   The pass then PROT-prefixes every instruction with an output that is
   not required public (i.e. stays secretly typed) and inserts identity
   moves at function entry to architecturally unprotect each publicly
   typed argument. *)

open Protean_isa

let public_required (code : Insn.t array) cfg =
  let transfer pc a =
    let op = code.(pc).Insn.op in
    let writes = Regset.of_list (Insn.writes op) in
    let b = Regset.diff a writes in
    let b = Regset.union b (Leak.sensitive op) in
    let output_required =
      not (Regset.is_empty (Regset.inter writes a))
    in
    if output_required then Regset.union b (Leak.data_inputs op) else b
  in
  Dataflow.solve cfg ~dir:Dataflow.Backward ~top:Regset.empty
    ~boundary:Regset.empty ~meet:Regset.union ~transfer

(* Publicly-*derivable* registers: a forward must-analysis closing the
   required-public facts under computation — an output whose inputs are
   all publicly typed may itself be typed public (the typing rules only
   force secret outputs for secret inputs).  Without this, an
   instruction like `add r12, 1` whose flags output is dead would be
   secretly typed (and PROT-prefixed) even though its value is a
   function of the public loop counter, protecting the counter and
   turning every array access into a stalled access transmitter. *)
let public_derivable ~entry_public (code : Insn.t array) cfg
    (pubreq_before, pubreq_after) =
  let transfer pc x =
    let op = code.(pc).Insn.op in
    let i = pc - cfg.Cfg.lo in
    let x =
      match op with
      | Insn.Call _ -> Regset.singleton Reg.rsp
      | _ -> x
    in
    List.fold_left
      (fun acc r ->
        if Regset.mem r pubreq_after.(i) || Leak.output_public x op r then
          Regset.add r acc
        else Regset.remove r acc)
      x (Insn.writes op)
  in
  (* User annotations (Section V-C) seed additional public registers at
     function entry. *)
  let boundary =
    if Cfg.size cfg = 0 then Regset.add Reg.rsp entry_public
    else Regset.union entry_public (Regset.add Reg.rsp pubreq_before.(0))
  in
  Dataflow.solve cfg ~dir:Dataflow.Forward ~top:Regset.full ~boundary
    ~meet:Regset.inter ~transfer

(* Protection certificate: every CTS fact — required-public and
   derivable-public alike — is a *backward* claim.  The derivable
   analysis seeds its entry boundary from [pubreq_before.(0)] (the
   typing assumption about function arguments), so even its forward-
   looking facts are conditional on the program conforming to its
   inferred secrecy type and cannot be checked as value equalities. *)
let certificate ~entry_public ~fname (code : Insn.t array) ~lo ~hi
    (instr : Instr.t) =
  let cfg = Cfg.build code ~lo ~hi in
  let before, after = public_required code cfg in
  let deriv_before, deriv_after =
    public_derivable ~entry_public code cfg (before, after)
  in
  let points =
    Array.init (hi - lo) (fun i ->
        {
          Certificate.fwd_before = Regset.empty;
          fwd_after = Regset.empty;
          bwd_before = Regset.union before.(i) deriv_before.(i);
          bwd_after = Regset.union after.(i) deriv_after.(i);
          prot = instr.Instr.prot.(i);
          unprotect_before = instr.Instr.unprotect_before.(i);
        })
  in
  {
    Certificate.style = Certificate.S_cts;
    fname;
    lo;
    hi;
    entry_public;
    points;
  }

let run ?(entry_public = Regset.empty) (code : Insn.t array) ~lo ~hi =
  let cfg = Cfg.build code ~lo ~hi in
  let before, after = public_required code cfg in
  let _, deriv_after =
    public_derivable ~entry_public code cfg (before, after)
  in
  let out = Instr.make ~lo ~hi in
  for pc = lo to hi - 1 do
    let i = pc - lo in
    let op = code.(pc).Insn.op in
    let public r = Regset.mem r after.(i) || Regset.mem r deriv_after.(i) in
    let secret_output =
      List.exists (fun r -> not (public r)) (Leak.relevant_outputs op)
    in
    out.Instr.prot.(i) <- secret_output
  done;
  (* Unprotect publicly-typed function arguments (and any annotated
     public registers) on entry. *)
  if hi > lo then
    out.Instr.unprotect_before.(0) <-
      Regset.inter (Regset.union entry_public before.(0)) Instr.movable;
  out

(* Publicly-typed output registers per instruction, used to build the
   typing table consumed by the CTS-SEQ observer mode: the outputs of
   unprefixed (publicly-typed) definitions. *)
let public_outputs (instr : Instr.t) (code : Insn.t array) pc =
  let i = pc - instr.Instr.lo in
  if instr.Instr.prot.(i) then []
  else Leak.relevant_outputs code.(pc).Insn.op
