(* Leveled structured logger.

   One process-global logger: the harness is already process-global in
   its sinks ([Experiment.line_sink], shard F_log frames), and the point
   here is precisely to unify them.  Records carry a level, a source, a
   message and optional key/value fields; two render modes:

   - text:  "[warn] fuzz.checkpoint: truncated frame (path=...)"
   - json:  {"level":"warn","src":"fuzz.checkpoint","msg":"...","path":"..."}

   The sink is swappable: the default writes stderr, the experiment
   session retargets it at its log file, and shard workers retarget it
   at F_log frames so worker records surface through the supervisor's
   lifecycle bus.  Emission is mutex-serialized, same as the old
   [Experiment.log_line]. *)

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let min_level = ref Info
let json_mode = ref false

let set_level l = min_level := l
let set_json b = json_mode := b

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let default_sink line =
  Printf.eprintf "%s\n%!" line

let sink : (string -> unit) ref = ref default_sink
let set_sink f = sink := f
let reset_sink () = sink := default_sink

let lock = Mutex.create ()

let render_text ~level ~src ~fields msg =
  let kvs =
    match fields with
    | [] -> ""
    | kvs ->
        " ("
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ ")"
  in
  Printf.sprintf "[%s] %s: %s%s" (level_name level) src msg kvs

let render_json ~level ~src ~fields msg =
  let esc = Metrics.json_escape in
  let base =
    Printf.sprintf "{\"level\":\"%s\",\"src\":\"%s\",\"msg\":\"%s\""
      (level_name level) (esc src) (esc msg)
  in
  let rest =
    String.concat ""
      (List.map
         (fun (k, v) -> Printf.sprintf ",\"%s\":\"%s\"" (esc k) (esc v))
         fields)
  in
  base ^ rest ^ "}"

let log ?(src = "protean") ?(fields = []) level fmt =
  Printf.ksprintf
    (fun msg ->
      if level_rank level >= level_rank !min_level then begin
        let line =
          if !json_mode then render_json ~level ~src ~fields msg
          else render_text ~level ~src ~fields msg
        in
        Mutex.lock lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> !sink line)
      end)
    fmt

let debug ?src ?fields fmt = log ?src ?fields Debug fmt
let info ?src ?fields fmt = log ?src ?fields Info fmt
let warn ?src ?fields fmt = log ?src ?fields Warn fmt
let error ?src ?fields fmt = log ?src ?fields Error fmt
