(* Speculation-window telemetry: the structured leakage-attribution
   record and the summary-counter helpers shared by the harness layers.

   The ledger itself lives in the simulator ([Protean_ooo.Spec_window]);
   this module is pure data — the attribution record a violation replay
   produces, its JSON/text renderings, and the commutative merge /
   over-protection arithmetic over the ledger's summary counters — so
   every telemetry consumer (report, shard codec, tables, CLIs) can
   handle window data without depending on the simulator. *)

(* A leakage attribution: which speculative window leaked, through which
   transmitter, from which access.  [at_family] is the heuristic
   gadget-family classification per the SoK taxonomy: "v1"
   (bounds-check-bypass, conditional trigger), "v2" (indirect-branch
   trigger), "rsb" (return misprediction), "v4" (store bypass: divergence
   driven by a memory-order violation, no window divergence), or
   "unknown". *)
type attribution = {
  at_family : string;
  at_xmit_pc : int; (* the leaking transmitter *)
  at_src_pc : int; (* the access the tainted operand derives from; -1 *)
  at_window_id : int; (* -1 for window-less families (v4/unknown) *)
  at_window_pc : int; (* trigger branch pc; -1 likewise *)
  at_window_depth : int; (* nesting depth at open; -1 likewise *)
}

let attribution_to_json a =
  Printf.sprintf
    {|{"family":"%s","xmit_pc":%d,"src_pc":%d,"window_id":%d,"window_pc":%d,"window_depth":%d}|}
    (String.escaped a.at_family)
    a.at_xmit_pc a.at_src_pc a.at_window_id a.at_window_pc a.at_window_depth

let render_attribution a =
  if a.at_window_id < 0 then
    Printf.sprintf "leak family=%s xmit_pc=%d src_pc=%d (no trigger window)"
      a.at_family a.at_xmit_pc a.at_src_pc
  else
    Printf.sprintf
      "leak family=%s xmit_pc=%d src_pc=%d window=%d trigger_pc=%d depth=%d"
      a.at_family a.at_xmit_pc a.at_src_pc a.at_window_id a.at_window_pc
      a.at_window_depth

(* ------------------------------------------------------------------ *)
(* Summary-counter helpers                                             *)
(* ------------------------------------------------------------------ *)

(* Ledger summaries travel as [(name, count) list] (the same shape as
   policy metrics).  Merging sums per name — commutative and
   associative, so shard/job merge order cannot change the result. *)
let merge_counters (a : (string * int) list) (b : (string * int) list) =
  let add acc (name, n) =
    let prev = try List.assoc name acc with Not_found -> 0 in
    (name, prev + n) :: List.remove_assoc name acc
  in
  let merged = List.fold_left add (List.fold_left add [] a) b in
  List.sort (fun (x, _) (y, _) -> compare x y) merged

let counter name counters =
  match List.assoc_opt name counters with Some n -> n | None -> 0

(* Over-protection ratio: interventions charged to windows that never
   leaked, over all interventions.  [None] when the defense never
   intervened (the ratio is undefined, not zero). *)
let over_protection counters =
  let benign = counter "interventions_benign" counters in
  let leaky = counter "interventions_leaky" counters in
  let total = benign + leaky in
  if total = 0 then None else Some (float_of_int benign /. float_of_int total)

let counters_to_json counters =
  "{"
  ^ String.concat ","
      (List.map
         (fun (name, n) -> Printf.sprintf {|"%s":%d|} (String.escaped name) n)
         counters)
  ^ "}"

let render_counters counters =
  String.concat "\n"
    (List.map (fun (name, n) -> Printf.sprintf "%-24s %d" name n) counters)
