(* Collapsed-stack ("folded") flamegraph accumulation.

   One line per distinct stack, frames separated by semicolons, the
   sample weight last:

     bearssl;ct:aes_ct;decrypt 123456

   which is exactly the input of flamegraph.pl / inferno / speedscope.
   Weights here are simulated cycles (integers), attributed by the
   {!Profile} observer's commit-gap histogram, so the folded total of a
   run equals its simulated cycle count — the invariant the telemetry
   smoke test checks. *)

type t = (string, int) Hashtbl.t

let create () : t = Hashtbl.create 64

let frame_sep = ';'

(* Frames must not contain the separator or newlines; weights would
   silently mis-fold otherwise. *)
let clean_frame f =
  String.map (fun c -> if c = frame_sep || c = '\n' || c = ' ' then '_' else c) f

let stack_of_frames frames =
  String.concat (String.make 1 frame_sep) (List.map clean_frame frames)

let add (t : t) ~frames n =
  if n > 0 then begin
    let stack = stack_of_frames frames in
    let prev = try Hashtbl.find t stack with Not_found -> 0 in
    Hashtbl.replace t stack (prev + n)
  end

let add_stack (t : t) stack n =
  if n > 0 then begin
    let prev = try Hashtbl.find t stack with Not_found -> 0 in
    Hashtbl.replace t stack (prev + n)
  end

let merge ~into (src : t) = Hashtbl.iter (fun stack n -> add_stack into stack n) src

let total (t : t) = Hashtbl.fold (fun _ n acc -> acc + n) t 0

let to_list (t : t) =
  Hashtbl.fold (fun stack n acc -> (stack, n) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let of_list pairs =
  let t = create () in
  List.iter (fun (stack, n) -> add_stack t stack n) pairs;
  t

(* Folded text, stacks sorted for deterministic output. *)
let to_folded (t : t) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (stack, n) -> Buffer.add_string b (Printf.sprintf "%s %d\n" stack n))
    (to_list t);
  Buffer.contents b
