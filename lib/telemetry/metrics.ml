(* Metrics registry: counters, gauges and fixed-bucket histograms.

   Design constraints, in priority order:

   - *Integer determinism.*  Every stored value is an [int]; snapshots
     carry no floats, so a merged snapshot is a pure function of the
     per-shard snapshots and serial / `-j N` / `--shards N` runs render
     byte-identical reports.  (Wall-clock belongs in {!Trace}, not
     here.)
   - *Free when detached.*  The registry itself allocates only at
     metric registration; the hot paths ([inc]/[observe]) are one array
     or field store.  Simulation-side producers are additionally gated
     behind the hook bus's interest mask, so a run with no exporter
     attached never reaches them at all.
   - *Deterministic rendering.*  Snapshots are sorted by (family,
     labels); exporters iterate the sorted snapshot, so the same data
     always prints the same bytes.

   Naming follows the Prometheus conventions documented in
   docs/observability.md: `protean_<layer>_<noun>[_total]`, labels for
   per-cell dimensions (bench, defense, core, ...). *)

type kind =
  | Counter (* monotone; merge = sum *)
  | Gauge (* last-known level; merge = max, which is order-free *)
  | Histogram of int array (* ascending inclusive bucket bounds *)

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram _ -> "histogram"

type metric = {
  m_family : string;
  m_help : string;
  m_kind : kind;
  m_labels : (string * string) list; (* sorted by label name *)
  mutable m_value : int; (* counter/gauge value; histogram sum *)
  mutable m_count : int; (* histogram observation count *)
  m_buckets : int array; (* cumulative-free per-bucket counts; [||] otherwise *)
}

type t = {
  tbl : (string, metric) Hashtbl.t; (* family + rendered labels -> metric *)
  lock : Mutex.t;
      (* registration and snapshotting may race with parallel fill
         domains; the per-metric mutations are single-writer per cell *)
}

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let label_key labels =
  String.concat "\x00" (List.map (fun (k, v) -> k ^ "\x01" ^ v) labels)

let metric_key family labels = family ^ "\x00" ^ label_key labels

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t ~help ~kind family labels =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let key = metric_key family labels in
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some m -> m
      | None ->
          let m =
            {
              m_family = family;
              m_help = help;
              m_kind = kind;
              m_labels = labels;
              m_value = 0;
              m_count = 0;
              m_buckets =
                (match kind with
                | Histogram bounds -> Array.make (Array.length bounds + 1) 0
                | Counter | Gauge -> [||]);
            }
          in
          Hashtbl.replace t.tbl key m;
          m)

let counter t ?(help = "") ?(labels = []) family =
  register t ~help ~kind:Counter family labels

let gauge t ?(help = "") ?(labels = []) family =
  register t ~help ~kind:Gauge family labels

let histogram t ?(help = "") ?(labels = []) ~buckets family =
  register t ~help ~kind:(Histogram buckets) family labels

let inc ?(n = 1) m = m.m_value <- m.m_value + n

(* Gauges keep the maximum level seen: unlike "last write wins" this is
   insensitive to the order shards report in, so merged gauges stay
   deterministic. *)
let set m v = if v > m.m_value then m.m_value <- v

let observe m v =
  match m.m_kind with
  | Histogram bounds ->
      let n = Array.length bounds in
      let i = ref 0 in
      while !i < n && v > bounds.(!i) do
        incr i
      done;
      m.m_buckets.(!i) <- m.m_buckets.(!i) + 1;
      m.m_count <- m.m_count + 1;
      m.m_value <- m.m_value + v
  | Counter | Gauge -> invalid_arg "Metrics.observe: not a histogram"

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(* A snapshot is pure data: samples sorted by (family, labels), each
   carrying enough of the metric's identity to merge and render without
   the registry that produced it. *)

type sample = {
  s_family : string;
  s_help : string;
  s_kind : kind;
  s_labels : (string * string) list;
  s_value : int;
  s_count : int;
  s_buckets : int array;
}

type snapshot = sample list

let sample_order a b =
  match compare a.s_family b.s_family with
  | 0 -> compare a.s_labels b.s_labels
  | c -> c

let snapshot t : snapshot =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ m acc ->
          {
            s_family = m.m_family;
            s_help = m.m_help;
            s_kind = m.m_kind;
            s_labels = m.m_labels;
            s_value = m.m_value;
            s_count = m.m_count;
            s_buckets = Array.copy m.m_buckets;
          }
          :: acc)
        t.tbl [])
  |> List.sort sample_order

(* Merge by (family, labels): counters and histograms sum, gauges take
   the max.  Commutative and associative, so any merge tree over the
   per-shard snapshots yields the same result. *)
let merge_samples a b =
  {
    a with
    s_value =
      (match a.s_kind with
      | Gauge -> max a.s_value b.s_value
      | Counter | Histogram _ -> a.s_value + b.s_value);
    s_count = a.s_count + b.s_count;
    s_buckets =
      (if a.s_buckets = [||] then b.s_buckets
       else if b.s_buckets = [||] then a.s_buckets
       else Array.mapi (fun i x -> x + b.s_buckets.(i)) a.s_buckets);
  }

let merge (a : snapshot) (b : snapshot) : snapshot =
  let tbl = Hashtbl.create 64 in
  let add s =
    let key = metric_key s.s_family s.s_labels in
    match Hashtbl.find_opt tbl key with
    | None -> Hashtbl.replace tbl key s
    | Some prev -> Hashtbl.replace tbl key (merge_samples prev s)
  in
  List.iter add a;
  List.iter add b;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl [] |> List.sort sample_order

let merge_all = function [] -> [] | s :: rest -> List.fold_left merge s rest

(* Add every sample of [snap] into live registry [t] (used to fold
   per-cell snapshots back into a run-level registry). *)
let absorb t (snap : snapshot) =
  List.iter
    (fun s ->
      let m = register t ~help:s.s_help ~kind:s.s_kind s.s_family s.s_labels in
      (match s.s_kind with
      | Gauge -> set m s.s_value
      | Counter | Histogram _ -> m.m_value <- m.m_value + s.s_value);
      m.m_count <- m.m_count + s.s_count;
      if s.s_buckets <> [||] then
        Array.iteri
          (fun i v -> m.m_buckets.(i) <- m.m_buckets.(i) + v)
          s.s_buckets)
    snap

let families (snap : snapshot) =
  List.sort_uniq compare (List.map (fun s -> s.s_family) snap)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) kvs)
      ^ "}"

(* Prometheus text exposition format, version 0.0.4: one # HELP / # TYPE
   pair per family (first occurrence wins), then the samples.  The
   snapshot is already family-sorted, so families render contiguously. *)
let to_prometheus (snap : snapshot) =
  let b = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      if s.s_family <> !last_family then begin
        last_family := s.s_family;
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" s.s_family
             (if s.s_help = "" then s.s_family else s.s_help));
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.s_family (kind_name s.s_kind))
      end;
      match s.s_kind with
      | Counter | Gauge ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" s.s_family (render_labels s.s_labels)
               s.s_value)
      | Histogram bounds ->
          let cum = ref 0 in
          Array.iteri
            (fun i le ->
              cum := !cum + s.s_buckets.(i);
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" s.s_family
                   (render_labels ~extra:("le", string_of_int le) s.s_labels)
                   !cum))
            bounds;
          cum := !cum + s.s_buckets.(Array.length bounds);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" s.s_family
               (render_labels ~extra:("le", "+Inf") s.s_labels)
               !cum);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" s.s_family
               (render_labels s.s_labels) s.s_value);
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" s.s_family
               (render_labels s.s_labels) s.s_count))
    snap;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON exporter: an array of sample objects, snapshot order.  Integers
   only, so the rendering is exact and stable. *)
let to_json (snap : snapshot) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "  {\"family\":\"%s\",\"type\":\"%s\",\"labels\":{"
           (json_escape s.s_family) (kind_name s.s_kind));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        s.s_labels;
      Buffer.add_string b (Printf.sprintf "},\"value\":%d" s.s_value);
      (match s.s_kind with
      | Histogram bounds ->
          Buffer.add_string b (Printf.sprintf ",\"count\":%d,\"buckets\":[" s.s_count);
          Array.iteri
            (fun j le ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "{\"le\":%d,\"n\":%d}" le s.s_buckets.(j)))
            bounds;
          if Array.length bounds > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"le\":\"+Inf\",\"n\":%d}]"
               s.s_buckets.(Array.length bounds))
      | Counter | Gauge -> ());
      Buffer.add_string b "}")
    snap;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
