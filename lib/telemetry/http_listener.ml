(* Minimal HTTP/1.0 endpoint serving the Prometheus exposition of a
   live metrics registry, so long-running campaigns are scrapable
   mid-run instead of only via end-of-run files.

   Deliberately tiny: no keep-alive, no chunking, no threads.  The
   owner (the supervisor's select loop) polls [fds] alongside its
   worker pipes and calls [handle] for whichever became readable, so
   scraping shares the event loop instead of needing one of its own.
   Only [GET /metrics] exists; everything else is 404.  Requests are
   read incrementally (a scraper that dribbles its request bytes
   cannot stall the campaign) and bounded to [max_request] bytes. *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t; (* request bytes until the blank line *)
}

type t = {
  sock : Unix.file_descr;
  port : int;
  provider : unit -> string; (* Prometheus 0.0.4 text, rendered per scrape *)
  mutable conns : conn list;
}

let max_request = 8192

(* A request *line* longer than this is rejected with 414 as soon as the
   bound is crossed — before the blank line, so a scraper streaming an
   endless URI is cut off after one read past the limit instead of being
   buffered up to [max_request]. *)
let max_request_line = 2048

let rec retry_intr f =
  try f ()
  with Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> retry_intr f

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* [addr] is "HOST:PORT"; port 0 binds an ephemeral port, reported by
   [port t] (tests and log lines need the real one). *)
let create ~addr provider =
  let host, port_s =
    match String.rindex_opt addr ':' with
    | Some i ->
        ( String.sub addr 0 i,
          String.sub addr (i + 1) (String.length addr - i - 1) )
    | None -> invalid_arg ("Http_listener.create: HOST:PORT expected: " ^ addr)
  in
  let ip =
    try Unix.inet_addr_of_string host
    with Failure _ -> invalid_arg ("Http_listener.create: bad host: " ^ host)
  in
  let port =
    match int_of_string_opt port_s with
    | Some p when p >= 0 && p < 65536 -> p
    | _ -> invalid_arg ("Http_listener.create: bad port: " ^ port_s)
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (ip, port));
     Unix.listen sock 8
   with e ->
     close_quiet sock;
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sock; port; provider; conns = [] }

let port t = t.port

(* All fds the owner should select on: the listen socket plus any
   connections still reading their request. *)
let fds t = t.sock :: List.map (fun c -> c.fd) t.conns

let send_response fd status body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\n\
       Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (String.length body)
  in
  let payload = Bytes.of_string (head ^ body) in
  let len = Bytes.length payload in
  (try
     let off = ref 0 in
     while !off < len do
       off := !off + retry_intr (fun () -> Unix.write fd payload !off (len - !off))
     done
   with Unix.Unix_error _ -> ());
  close_quiet fd

let respond t (c : conn) =
  let req = Buffer.contents c.buf in
  let line =
    match String.index_opt req '\r' with
    | Some i -> String.sub req 0 i
    | None -> req
  in
  match String.split_on_char ' ' line with
  | [ "GET"; "/metrics"; _ ] | [ "GET"; "/metrics" ] ->
      send_response c.fd "200 OK" (t.provider ())
  | [ "GET"; _; _ ] | [ "GET"; _ ] ->
      send_response c.fd "404 Not Found" "not found\n"
  | _ -> send_response c.fd "400 Bad Request" "bad request\n"

(* True when the first CRLF has not arrived within [max_request_line]
   bytes: the request line itself is over-long. *)
let request_line_too_long buf =
  let s = Buffer.contents buf in
  let n = String.length s in
  if n <= max_request_line then false
  else
    match String.index_opt s '\r' with
    | Some i -> i > max_request_line
    | None -> true

let request_complete buf =
  let s = Buffer.contents buf in
  let n = String.length s in
  let rec scan i =
    if i + 3 >= n then false
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then true
    else scan (i + 1)
  in
  scan 0

(* Advance whichever of [t]'s fds turned up readable in the owner's
   select.  Accepts new connections, reads request bytes, answers and
   closes completed requests.  Never raises on socket errors — a
   misbehaving scraper must not take a campaign down. *)
let handle t readable =
  if List.memq t.sock readable then begin
    match retry_intr (fun () -> Unix.accept t.sock) with
    | fd, _ -> t.conns <- { fd; buf = Buffer.create 256 } :: t.conns
    | exception Unix.Unix_error _ -> ()
  end;
  let scratch = Bytes.create 1024 in
  let step (c : conn) =
    if not (List.memq c.fd readable) then Some c
    else
      match retry_intr (fun () -> Unix.read c.fd scratch 0 (Bytes.length scratch)) with
      | 0 ->
          close_quiet c.fd;
          None
      | k ->
          Buffer.add_subbytes c.buf scratch 0 k;
          if request_complete c.buf then begin
            respond t c;
            None
          end
          else if request_line_too_long c.buf then begin
            send_response c.fd "414 URI Too Long" "request line too long\n";
            None
          end
          else if Buffer.length c.buf > max_request then begin
            send_response c.fd "400 Bad Request" "request too large\n";
            None
          end
          else Some c
      | exception Unix.Unix_error _ ->
          close_quiet c.fd;
          None
  in
  t.conns <- List.filter_map step t.conns

let close t =
  List.iter (fun c -> close_quiet c.fd) t.conns;
  t.conns <- [];
  close_quiet t.sock
