(* Span-based tracing with Chrome trace-event JSON export.

   A recorder accumulates typed events — spans with a duration, instant
   markers, and counter series — and renders them in the Trace Event
   Format's "JSON array" flavor, which chrome://tracing and Perfetto
   load directly (https://ui.perfetto.dev, "Open trace file").

   Timestamps are microseconds relative to the recorder's epoch (its
   creation time by default), as integers: Perfetto needs only relative
   ordering, and small integers keep traces compact and diff-friendly.

   Recording is mutex-serialized: spans arrive from parallel fill
   domains and from the supervisor's select loop.  When no recorder is
   installed the producers are gated at their call sites (the same
   attached/detached discipline as the metrics registry), so tracing
   costs nothing unless an exporter asked for it. *)

type event =
  | Span of {
      name : string;
      cat : string;
      ts_us : int; (* start, relative to epoch *)
      dur_us : int;
      pid : int;
      tid : int;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : int;
      pid : int;
      tid : int;
      args : (string * string) list;
    }
  | Counter of {
      name : string;
      ts_us : int;
      pid : int;
      series : (string * int) list;
    }
  | Meta of { name : string; pid : int; tid : int; label : string }
      (* process_name / thread_name metadata records *)

type t = {
  epoch : float; (* Unix.gettimeofday at creation *)
  mutable events : event list; (* newest first *)
  lock : Mutex.t;
}

let create ?epoch () =
  {
    epoch = (match epoch with Some e -> e | None -> Unix.gettimeofday ());
    events = [];
    lock = Mutex.create ();
  }

let now_us t = int_of_float ((Unix.gettimeofday () -. t.epoch) *. 1e6)
let us_of t wall = int_of_float ((wall -. t.epoch) *. 1e6)

let record t ev =
  Mutex.lock t.lock;
  t.events <- ev :: t.events;
  Mutex.unlock t.lock

(* A completed span from wall-clock endpoints ([Unix.gettimeofday]). *)
let span t ?(cat = "cell") ?(pid = 0) ?(tid = 0) ?(args = []) ~t0 ~t1 name =
  record t
    (Span
       {
         name;
         cat;
         ts_us = us_of t t0;
         dur_us = max 0 (int_of_float ((t1 -. t0) *. 1e6));
         pid;
         tid;
         args;
       })

(* A completed span from raw microsecond endpoints already relative to
   the epoch.  Used for simulated-time tracks (one simulated cycle = one
   microsecond, on a pid of their own), where wall-clock conversion
   would be meaningless. *)
let span_us t ?(cat = "cell") ?(pid = 0) ?(tid = 0) ?(args = []) ~ts_us
    ~dur_us name =
  record t (Span { name; cat; ts_us; dur_us = max 0 dur_us; pid; tid; args })

(* A span measured around [f]. *)
let with_span t ?cat ?pid ?tid ?args name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> span t ?cat ?pid ?tid ?args ~t0 ~t1:(Unix.gettimeofday ()) name)
    f

let instant t ?(cat = "event") ?(pid = 0) ?(tid = 0) ?(args = []) name =
  record t (Instant { name; cat; ts_us = now_us t; pid; tid; args })

let counter t ?(pid = 0) name series =
  record t (Counter { name; ts_us = now_us t; pid; series })

let name_process t ~pid label = record t (Meta { name = "process_name"; pid; tid = 0; label })
let name_thread t ~pid ~tid label = record t (Meta { name = "thread_name"; pid; tid; label })

let count t =
  Mutex.lock t.lock;
  let n = List.length t.events in
  Mutex.unlock t.lock;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let esc = Metrics.json_escape

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)) args)
  ^ "}"

let event_json = function
  | Span { name; cat; ts_us; dur_us; pid; tid; args } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\
         \"pid\":%d,\"tid\":%d,\"args\":%s}"
        (esc name) (esc cat) ts_us dur_us pid tid (args_json args)
  | Instant { name; cat; ts_us; pid; tid; args } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\
         \"pid\":%d,\"tid\":%d,\"args\":%s}"
        (esc name) (esc cat) ts_us pid tid (args_json args)
  | Counter { name; ts_us; pid; series } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"args\":{%s}}"
        (esc name) ts_us pid
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (esc k) v) series))
  | Meta { name; pid; tid; label } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
        (esc name) pid tid (esc label)

(* The JSON-array format: events in chronological record order.  A
   trailing newline and no trailing comma — strict parsers (Perfetto's
   JSON ingestion, python -m json.tool) accept it as-is. *)
let to_chrome_json t =
  Mutex.lock t.lock;
  let events = List.rev t.events in
  Mutex.unlock t.lock;
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (event_json ev))
    events;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
