(* Shared taint machinery for the tracking-based protection mechanisms
   (AccessTrack/STT, SPT, ProtTrack).

   Taint is represented per ROB entry by the sequence number of the
   youngest speculative access instruction the entry's data transitively
   depends on (STT's youngest root of taint).  An entry is tainted while
   that root is still speculative under the configured speculation model;
   untainting is therefore implicit when the root reaches the ROB head
   (ATCOMMIT) or all older branches resolve (CONTROL) — no broadcast
   needed. *)

open Protean_ooo
open Protean_isa

(* Taint root of one renamed source: the producer's root (committed
   producers are untainted). *)
let src_root (api : Policy.api) (e : Rob_entry.t) i =
  let p = e.Rob_entry.src_producer.(i) in
  if p < 0 then -1
  else
    let prod = api.Policy.peek p in
    if Rob_entry.is_null prod then -1 else prod.Rob_entry.taint_root

(* Is any *sensitive* operand of [e] tainted?  Used to gate transmitter
   execution and branch resolution. *)
let sensitive_tainted (api : Policy.api) (e : Rob_entry.t) =
  let tainted = ref false in
  Array.iteri
    (fun i (_, role) ->
      match role with
      | Insn.Addr | Insn.Cond_in | Insn.Target | Insn.Divide ->
          if Policy.root_speculative api (src_root api e i) then tainted := true
      | Insn.Data -> ())
    e.Rob_entry.srcs;
  !tainted

(* The taint of an indirect branch's loaded target ([ret] pops its target
   from the stack): the entry's own access status. *)
let own_load_tainted (api : Policy.api) (e : Rob_entry.t) =
  (e.Rob_entry.access_at_rename || e.Rob_entry.late_access)
  && Policy.root_speculative api e.Rob_entry.seq

(* Does the entry's resolution depend on its own loaded data?  True for
   [ret] (and any indirect control transfer through memory). *)
let resolves_from_memory (e : Rob_entry.t) =
  match e.Rob_entry.insn.Insn.op with Insn.Ret -> true | _ -> false
