(* SPT — Speculative Privacy Tracking (Section III-C, VI-B2).

   Hardware-defined ProtSet: all registers and memory bytes that have not
   been architecturally transmitted in the past; targets constant-time
   code.  SPT extends AccessTrack in two ways:

   - it tracks a *transmitted* (therefore public) status for architectural
     registers and memory: once a transmitter retires, its sensitive
     operands become transmitted, and outputs computed solely from
     transmitted data are transmitted too;
   - a transmitter whose sensitive operand holds *untransmitted* data may
     only execute/resolve once it is non-speculative — only already-leaked
     data may leak speculatively.

   Because SPT cannot know at rename whether a load will read transmitted
   memory, it conservatively taints every load's output (the performance
   conservatism ProtTrack's predictor removes).

   [w32_fix] models the paper's upstreamed performance patch (Section
   VII-B4c): with the fix, a 32-bit register write — which zeroes the
   upper 32 bits — takes the transmitted-status of its source; without it,
   the stale status of the old upper bits lingers, keeping the register
   conservatively protected. *)

open Protean_ooo
open Protean_isa
open Protean_arch

type state = {
  reg_xmit : bool array; (* committed transmitted-status per register *)
  mem_xmit : Protset.t; (* protected = untransmitted *)
  w32_fix : bool;
}

let src_pub st (e : Rob_entry.t) api i =
  let r, _ = e.Rob_entry.srcs.(i) in
  let p = e.Rob_entry.src_producer.(i) in
  if p < 0 then st.reg_xmit.(Reg.to_int r)
  else
    let prod = api.Policy.peek p in
    if Rob_entry.is_null prod then st.reg_xmit.(Reg.to_int r)
      (* An in-flight producer's flags output is always a fresh,
         untransmitted value (its [pol_out_pub] describes the data
         destination). *)
    else if Reg.equal r Reg.flags then false
    else prod.Rob_entry.pol_out_pub

(* Transmitted-status of the value a register operand holds, looked up in
   the per-entry snapshot filled at rename. *)
let reg_pub (e : Rob_entry.t) r =
  let n = Array.length e.Rob_entry.srcs in
  let rec loop i =
    if i >= n then false
    else if Reg.equal (fst e.Rob_entry.srcs.(i)) r then
      e.Rob_entry.pol_src_pub.(i)
    else loop (i + 1)
  in
  loop 0

(* Is the (non-flags) value produced by [e] transmitted-equivalent to
   already-transmitted data?  SPT's unprotection extends from directly
   transmitted values only through *invertible* arithmetic dependencies
   (Section III-C): register moves, add/sub/xor/not/neg and stack-pointer
   bumps.  Lossy operations (and/or/shifts/mul/div/compares) produce
   fresh, untransmitted values even from transmitted inputs — which is
   why SPT must stall the first transmission of such values until they
   are non-speculative, its main cost on constant-time code
   (Section IX-B3).  Loads are resolved at execute from the memory
   shadow; here they are conservatively private.

   Flags outputs are never transmitted-equivalent: a comparison is not
   invertible.  They become transmitted only when a conditional branch
   retires (fully transmitting its condition). *)
let out_pub st (e : Rob_entry.t) =
  let op = e.Rob_entry.insn.Insn.op in
  let src_ok = function
    | Insn.Imm _ -> true
    | Insn.Reg r -> reg_pub e r
  in
  match op with
  | Insn.Mov (Insn.W64, _, s) -> src_ok s
  | Insn.Mov (Insn.W32, d, s) ->
      if st.w32_fix then src_ok s else src_ok s && reg_pub e d
  | Insn.Mov (Insn.W8, _, _) -> false (* partial merge: not invertible *)
  | Insn.Lea (_, m) -> (
      (* base + index*scale + disp is invertible in at most one register
         operand. *)
      match Insn.mem_regs m with
      | [ r ] -> reg_pub e r
      | [] -> true
      | _ -> List.for_all (fun r -> reg_pub e r) (Insn.mem_regs m))
  | Insn.Binop ((Insn.Add | Insn.Sub | Insn.Xor), d, s) ->
      reg_pub e d && src_ok s
  | Insn.Binop ((Insn.And | Insn.Or | Insn.Shl | Insn.Shr | Insn.Sar | Insn.Mul), _, _)
    ->
      false
  | Insn.Unop ((Insn.Not | Insn.Neg), d) -> reg_pub e d
  | Insn.Div _ | Insn.Rem _ -> false
  | Insn.Cmp _ | Insn.Test _ -> false
  | Insn.Setcc _ -> false
  | Insn.Cmov _ -> false
  | Insn.Call _ | Insn.Push _ -> reg_pub e Reg.rsp
  | Insn.Pop _ | Insn.Ret
  | Insn.Load _ | Insn.Store _ | Insn.Jcc _ | Insn.Jmp _ | Insn.Jmpi _
  | Insn.Nop | Insn.Halt ->
      false

(* Sensitive operands all hold transmitted data? *)
let sensitive_pub (e : Rob_entry.t) =
  let ok = ref true in
  Array.iteri
    (fun i (_, role) ->
      match role with
      | Insn.Addr | Insn.Cond_in | Insn.Target | Insn.Divide ->
          if not e.Rob_entry.pol_src_pub.(i) then ok := false
      | Insn.Data -> ())
    e.Rob_entry.srcs;
  !ok

let make ?(w32_fix = true) () =
  let st =
    {
      reg_xmit = Array.make Reg.count false;
      mem_xmit = Protset.create ();
      w32_fix;
    }
  in
  (* The stack pointer's initial value is public. *)
  st.reg_xmit.(Reg.to_int Reg.rsp) <- true;
  (* Policy-local counters for [Policy.metrics]: how much of the
     transmitted-status machinery actually fires. *)
  let n_xmit_retire = ref 0 in
  let n_public_loads = ref 0 in
  let n_shadow_stores = ref 0 in
  let on_rename api (e : Rob_entry.t) =
    Array.iteri
      (fun i _ -> e.Rob_entry.pol_src_pub.(i) <- src_pub st e api i)
      e.Rob_entry.pol_src_pub;
    e.Rob_entry.pol_out_pub <- out_pub st e;
    (* AccessTrack-style taint: every load taints its output at rename. *)
    let inherited = Policy.inherited_taint api e in
    let self = if Rob_entry.is_load e then e.Rob_entry.seq else -1 in
    e.Rob_entry.access_at_rename <- Rob_entry.is_load e;
    e.Rob_entry.taint_root <- max inherited self
  in
  let on_load_executed _api (e : Rob_entry.t) =
    (* The shadow tracks transmitted memory precisely: a load of
       transmitted bytes produces transmitted (public) data. *)
    if not (Protset.mem_protected st.mem_xmit e.Rob_entry.addr e.Rob_entry.msize)
    then begin
      e.Rob_entry.pol_out_pub <- true;
      incr n_public_loads
    end
  in
  let may_execute_transmitter api (e : Rob_entry.t) =
    (not (Policy.is_speculative api e))
    || (sensitive_pub e && not (Taint.sensitive_tainted api e))
  in
  let may_resolve api (e : Rob_entry.t) =
    (not (Policy.is_speculative api e))
    || (sensitive_pub e
       && (not (Taint.sensitive_tainted api e))
       && ((not (Taint.resolves_from_memory e))
          || (e.Rob_entry.pol_out_pub && not (Taint.own_load_tainted api e))))
  in
  let on_commit _api (e : Rob_entry.t) =
    (* Outputs derived from transmitted data are transmitted.  The stack
       pointer update of pop/ret is public arithmetic on rsp even though
       the loaded destination may be private. *)
    let op = e.Rob_entry.insn.Insn.op in
    let dst_pub r =
      if Reg.equal r Reg.flags then false (* fresh flags: untransmitted *)
      else
        match op with
        | Insn.Pop d ->
            if Reg.equal r d then e.Rob_entry.pol_out_pub else reg_pub e Reg.rsp
        | Insn.Ret ->
            if Reg.equal r Reg.tmp then e.Rob_entry.pol_out_pub
            else reg_pub e Reg.rsp
        | _ -> e.Rob_entry.pol_out_pub
    in
    Array.iter
      (fun r -> st.reg_xmit.(Reg.to_int r) <- dst_pub r)
      e.Rob_entry.dsts;
    (* Stores write their data operand's status into the memory shadow;
       call pushes a public return address. *)
    if Rob_entry.is_store e then begin
      let data_pub =
        match op with
        | Insn.Call _ -> true
        | Insn.Store (_, _, Insn.Imm _) | Insn.Push (Insn.Imm _) -> true
        | Insn.Store (_, _, Insn.Reg r) | Insn.Push (Insn.Reg r) ->
            reg_pub e r
        | _ -> false
      in
      Protset.set_mem st.mem_xmit e.Rob_entry.addr e.Rob_entry.msize
        ~protected:(not data_pub);
      incr n_shadow_stores
    end;
    (* Retiring a transmitter architecturally transmits its sensitive
       register operands: they are now public forever. *)
    if Rob_entry.is_transmitter e then incr n_xmit_retire;
    if Rob_entry.is_transmitter e then
      Array.iteri
        (fun i (r, role) ->
          match role with
          | Insn.Addr | Insn.Cond_in | Insn.Target ->
              ignore i;
              st.reg_xmit.(Reg.to_int r) <- true
          | Insn.Divide | Insn.Data -> ())
        e.Rob_entry.srcs
  in
  let metrics () =
    [
      ("transmitter_retirements", !n_xmit_retire);
      ("public_load_upgrades", !n_public_loads);
      ("shadow_store_writes", !n_shadow_stores);
    ]
  in
  {
    Policy.unsafe with
    Policy.name = (if w32_fix then "spt" else "spt-no-w32-fix");
    on_rename;
    on_load_executed;
    may_execute_transmitter;
    may_resolve;
    on_commit;
    metrics;
  }
