(* ProtDelay (Section VI-B1): the delay-based enforcement of ProtISA
   ProtSets, extending AccessDelay.

   On ProtISA hardware, access instructions are instructions with
   protected register or memory inputs (Definition 1); access transmitters
   additionally have a protected *sensitive* input.

   Security extension over AccessDelay: access transmitters may not
   transmit their protected sensitive operand until non-speculative —
   AccessDelay would let `leak rax` transmit its own protected input.

   Performance relaxation over AccessDelay: only *unprefixed* access
   instructions delay the wakeup of their dependents.  A PROT-prefixed
   access writes a protected output, so its dependents are themselves
   access instructions that ProtDelay will delay as needed; they may
   safely execute speculatively (this is what makes PROTEAN-Delay fast on
   ProtCC-ARCH code, where dependent chains of unprotected loads flow
   freely).

   [selective_wakeup:false] disables the relaxation, approximating plain
   AccessDelay applied to ProtISA programs (the Section IX-A4 ablation). *)

open Protean_ooo

(* Protected *sensitive* register operand (access-transmitter test). *)
let protected_sensitive = Rob_entry.protected_sensitive_reg

(* Is [e] an access instruction: protected register input, or a load that
   read protected memory (known after execute via the LSQ bit)? *)
let is_access (e : Rob_entry.t) =
  Rob_entry.protected_reg_input e
  || (Rob_entry.is_load e && e.Rob_entry.addr_ready && e.Rob_entry.mem_prot)

let make ?(selective_wakeup = true) () =
  let n_fwd_blocks = ref 0 in
  let n_selective_passes = ref 0 in
  let may_execute_transmitter api (e : Rob_entry.t) =
    (not (protected_sensitive e)) || not (Policy.is_speculative api e)
  in
  let may_resolve api (e : Rob_entry.t) =
    if Policy.is_speculative api e then
      (not (protected_sensitive e))
      && ((not (Taint.resolves_from_memory e)) || not e.Rob_entry.mem_prot)
    else true
  in
  let may_forward api (e : Rob_entry.t) =
    if not (Policy.is_speculative api e) then true
    else if not (is_access e) then true
    else begin
      (* Accesses with protected outputs may wake their dependents
         immediately: the dependents are access instructions themselves
         and will be delayed as needed. *)
      let ok = selective_wakeup && e.Rob_entry.out_prot in
      if ok then incr n_selective_passes else incr n_fwd_blocks;
      ok
    end
  in
  {
    Policy.unsafe with
    Policy.name =
      (if selective_wakeup then "prot-delay" else "prot-delay-unselective");
    uses_protisa = true;
    may_execute_transmitter;
    may_resolve;
    may_forward;
    metrics =
      (fun () ->
        [
          ("forward_blocks", !n_fwd_blocks);
          ("selective_wakeup_passes", !n_selective_passes);
        ]);
  }
