(* Deliberate fault injection into defenses, used to self-test the
   fuzzer (mutation testing for the security harness): each mode breaks
   one layer of a protection mechanism in a way that must show up as a
   contract violation.  A campaign that does NOT flag an injected fault
   has a detector gap — its passing verdicts on the real defenses carry
   no weight.

   Faults wrap an existing [Defense.t]'s policy hooks; the pipeline and
   the defense itself are untouched, exactly like a hardware bug slipping
   into one gate of the implementation. *)

open Protean_ooo

type mode =
  | F_unprotect
      (* clear ProtISA protection bits (sources and output) at rename:
         models a rename-map tag bit stuck at zero *)
  | F_drop_taint
      (* drop the taint root of loads after rename: models a broken
         taint-propagation network (STT/ProtTrack YRoT lost) *)
  | F_corrupt_predictor
      (* force no-access predictions on every load and disable the
         false-negative (ProtDelay fallback) recovery: models a corrupted
         access predictor with broken misprediction handling *)
  | F_open_execute_gate
      (* transmitters always allowed to execute speculatively *)
  | F_open_forward_gate
      (* completed results always forwarded to dependents immediately *)
  | F_open_resolve_gate
      (* branches always allowed to resolve (and squash) immediately *)

let all_modes =
  [
    F_unprotect;
    F_drop_taint;
    F_corrupt_predictor;
    F_open_execute_gate;
    F_open_forward_gate;
    F_open_resolve_gate;
  ]

let mode_name = function
  | F_unprotect -> "unprotect"
  | F_drop_taint -> "drop-taint"
  | F_corrupt_predictor -> "corrupt-predictor"
  | F_open_execute_gate -> "open-execute-gate"
  | F_open_forward_gate -> "open-forward-gate"
  | F_open_resolve_gate -> "open-resolve-gate"

let mode_of_string s =
  match List.find_opt (fun m -> String.equal (mode_name m) s) all_modes with
  | Some m -> m
  | None -> invalid_arg ("Fault_inject.mode_of_string: " ^ s)

let mode_description = function
  | F_unprotect -> "protection bits cleared at rename"
  | F_drop_taint -> "taint roots of loads dropped"
  | F_corrupt_predictor -> "access predictor forced no-access, fallback dead"
  | F_open_execute_gate -> "transmitter execution gate stuck open"
  | F_open_forward_gate -> "wakeup/forwarding gate stuck open"
  | F_open_resolve_gate -> "branch-resolution gate stuck open"

let wrap mode (p : Policy.t) : Policy.t =
  match mode with
  | F_unprotect ->
      {
        p with
        Policy.on_rename =
          (fun api (e : Rob_entry.t) ->
            Array.iteri
              (fun i _ -> e.Rob_entry.src_prot.(i) <- false)
              e.Rob_entry.src_prot;
            e.Rob_entry.out_prot <- false;
            p.Policy.on_rename api e);
      }
  | F_drop_taint ->
      {
        p with
        Policy.on_rename =
          (fun api (e : Rob_entry.t) ->
            p.Policy.on_rename api e;
            if Rob_entry.is_load e then e.Rob_entry.taint_root <- -1);
      }
  | F_corrupt_predictor ->
      {
        p with
        Policy.on_rename =
          (fun api (e : Rob_entry.t) ->
            p.Policy.on_rename api e;
            if Rob_entry.is_load e then begin
              e.Rob_entry.pred_no_access <- true;
              e.Rob_entry.access_at_rename <- false;
              e.Rob_entry.taint_root <- Policy.inherited_taint api e
            end);
        on_load_executed = Policy.nop_hook;
      }
  | F_open_execute_gate ->
      { p with Policy.may_execute_transmitter = Policy.always }
  | F_open_forward_gate -> { p with Policy.may_forward = Policy.always }
  | F_open_resolve_gate -> { p with Policy.may_resolve = Policy.always }

let inject mode (d : Defense.t) : Defense.t =
  {
    Defense.id = d.Defense.id ^ "+" ^ mode_name mode;
    description =
      Printf.sprintf "%s with injected fault: %s" d.Defense.description
        (mode_description mode);
    make = (fun () -> wrap mode (d.Defense.make ()));
  }
