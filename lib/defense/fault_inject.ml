(* Deliberate fault injection into defenses, used to self-test the
   fuzzer (mutation testing for the security harness): each mode breaks
   one layer of a protection mechanism in a way that must show up as a
   contract violation.  A campaign that does NOT flag an injected fault
   has a detector gap — its passing verdicts on the real defenses carry
   no weight.

   Faults wrap an existing [Defense.t]'s policy hooks; the pipeline and
   the defense itself are untouched, exactly like a hardware bug slipping
   into one gate of the implementation. *)

open Protean_ooo

type mode =
  | F_unprotect
      (* clear ProtISA protection bits (sources and output) at rename:
         models a rename-map tag bit stuck at zero *)
  | F_drop_taint
      (* drop the taint root of loads after rename: models a broken
         taint-propagation network (STT/ProtTrack YRoT lost) *)
  | F_corrupt_predictor
      (* force no-access predictions on every load and disable the
         false-negative (ProtDelay fallback) recovery: models a corrupted
         access predictor with broken misprediction handling *)
  | F_open_execute_gate
      (* transmitters always allowed to execute speculatively *)
  | F_open_forward_gate
      (* completed results always forwarded to dependents immediately *)
  | F_open_resolve_gate
      (* branches always allowed to resolve (and squash) immediately *)

let all_modes =
  [
    F_unprotect;
    F_drop_taint;
    F_corrupt_predictor;
    F_open_execute_gate;
    F_open_forward_gate;
    F_open_resolve_gate;
  ]

let mode_name = function
  | F_unprotect -> "unprotect"
  | F_drop_taint -> "drop-taint"
  | F_corrupt_predictor -> "corrupt-predictor"
  | F_open_execute_gate -> "open-execute-gate"
  | F_open_forward_gate -> "open-forward-gate"
  | F_open_resolve_gate -> "open-resolve-gate"

let mode_of_string s =
  match List.find_opt (fun m -> String.equal (mode_name m) s) all_modes with
  | Some m -> m
  | None -> invalid_arg ("Fault_inject.mode_of_string: " ^ s)

let mode_description = function
  | F_unprotect -> "protection bits cleared at rename"
  | F_drop_taint -> "taint roots of loads dropped"
  | F_corrupt_predictor -> "access predictor forced no-access, fallback dead"
  | F_open_execute_gate -> "transmitter execution gate stuck open"
  | F_open_forward_gate -> "wakeup/forwarding gate stuck open"
  | F_open_resolve_gate -> "branch-resolution gate stuck open"

let wrap mode (p : Policy.t) : Policy.t =
  match mode with
  | F_unprotect ->
      {
        p with
        Policy.on_rename =
          (fun api (e : Rob_entry.t) ->
            Array.iteri
              (fun i _ -> e.Rob_entry.src_prot.(i) <- false)
              e.Rob_entry.src_prot;
            e.Rob_entry.out_prot <- false;
            p.Policy.on_rename api e);
      }
  | F_drop_taint ->
      {
        p with
        Policy.on_rename =
          (fun api (e : Rob_entry.t) ->
            p.Policy.on_rename api e;
            if Rob_entry.is_load e then e.Rob_entry.taint_root <- -1);
      }
  | F_corrupt_predictor ->
      {
        p with
        Policy.on_rename =
          (fun api (e : Rob_entry.t) ->
            p.Policy.on_rename api e;
            if Rob_entry.is_load e then begin
              e.Rob_entry.pred_no_access <- true;
              e.Rob_entry.access_at_rename <- false;
              e.Rob_entry.taint_root <- Policy.inherited_taint api e
            end);
        on_load_executed = Policy.nop_hook;
      }
  | F_open_execute_gate ->
      { p with Policy.may_execute_transmitter = Policy.always }
  | F_open_forward_gate -> { p with Policy.may_forward = Policy.always }
  | F_open_resolve_gate -> { p with Policy.may_resolve = Policy.always }

let inject mode (d : Defense.t) : Defense.t =
  {
    Defense.id = d.Defense.id ^ "+" ^ mode_name mode;
    description =
      Printf.sprintf "%s with injected fault: %s" d.Defense.description
        (mode_description mode);
    make = (fun () -> wrap mode (d.Defense.make ()));
  }

(* --- ProtCC pass-mutation fault injection ---------------------------- *)

(* The certificate checker (Protean_protcc.Certify) is self-tested the
   same way the contract-violation detectors are: these modes mutate a
   *compiler pass result* — the instrumented binary and/or its
   protection certificates — the way a broken dataflow analysis would,
   and the checker must refute each one as a structured Cert_violation.
   A checker that stays green under an injected pass bug has an audit
   gap.

   - [CF_drop_prot]: the first installed PROT prefix of every certified
     function is dropped, and the certificate's bookkeeping is updated
     to match (models a pass whose emission step loses a protection it
     proved necessary; the static audit must find the uncovered
     output);
   - [CF_widen_safe]: every forward claim is widened to the full
     register set while the binary is untouched (models an analysis
     whose transfer function is unsound-optimistic; only the dynamic
     executor-backed replay can refute value-equality claims);
   - [CF_stale_fact]: each certificate point keeps its installed
     instrumentation but takes the dataflow facts of its successor
     point (models an off-by-one between analysis and emission — stale
     facts justifying the wrong instruction). *)

module Pcc = Protean_protcc

type cert_mode = CF_drop_prot | CF_widen_safe | CF_stale_fact

let cert_modes = [ CF_drop_prot; CF_widen_safe; CF_stale_fact ]

let cert_mode_name = function
  | CF_drop_prot -> "cert-drop-prot"
  | CF_widen_safe -> "cert-widen-safe"
  | CF_stale_fact -> "cert-stale-fact"

let cert_mode_of_string s =
  match
    List.find_opt (fun m -> String.equal (cert_mode_name m) s) cert_modes
  with
  | Some m -> m
  | None -> invalid_arg ("Fault_inject.cert_mode_of_string: " ^ s)

let cert_mode_description = function
  | CF_drop_prot -> "installed PROT prefix dropped, certificate updated"
  | CF_widen_safe -> "forward claims widened to every register"
  | CF_stale_fact -> "certificate points justify their successor's facts"

let mutate_cert mode (res : Pcc.Protcc.result) (code : Protean_isa.Insn.t array)
    (c : Pcc.Certificate.t) =
  let open Pcc in
  if Certificate.claims_nothing c then c
  else
    let n = Array.length c.Certificate.points in
    match mode with
    | CF_drop_prot -> (
        let first_prot = ref None in
        Array.iteri
          (fun i (p : Certificate.point) ->
            if !first_prot = None && p.Certificate.prot then
              first_prot := Some i)
          c.Certificate.points;
        match !first_prot with
        | None -> c
        | Some i ->
            let np = res.Protcc.old_to_new.(c.Certificate.lo + i + 1) - 1 in
            code.(np) <-
              { (code.(np)) with Protean_isa.Insn.prot = false };
            let points = Array.copy c.Certificate.points in
            points.(i) <- { (points.(i)) with Certificate.prot = false };
            { c with Certificate.points })
    | CF_widen_safe ->
        let points =
          Array.map
            (fun (p : Certificate.point) ->
              {
                p with
                Certificate.fwd_before = Regset.full;
                fwd_after = Regset.full;
              })
            c.Certificate.points
        in
        { c with Certificate.points }
    | CF_stale_fact ->
        if n < 2 then c
        else
          let points =
            Array.init n (fun i ->
                let own = c.Certificate.points.(i) in
                let next = c.Certificate.points.((i + 1) mod n) in
                {
                  next with
                  Certificate.prot = own.Certificate.prot;
                  unprotect_before = own.Certificate.unprotect_before;
                })
          in
          { c with Certificate.points }

(* Apply a pass mutation to a compile result: the returned result is
   what a buggy pass would have produced.  [CF_drop_prot] changes the
   binary itself; the other modes corrupt only the certificates. *)
let mutate mode (res : Pcc.Protcc.result) : Pcc.Protcc.result =
  let code = Array.copy res.Pcc.Protcc.program.Protean_isa.Program.code in
  let certs = List.map (mutate_cert mode res code) res.Pcc.Protcc.certs in
  {
    res with
    Pcc.Protcc.program =
      Protean_isa.Program.with_code res.Pcc.Protcc.program code;
    certs;
  }

(* --- worker-level fault injection ------------------------------------ *)

(* The supervised-execution layer (Protean_harness.Supervisor) is
   self-tested the same way the detectors are: these modes break a
   *worker process* instead of a defense layer, and the supervisor's
   recovery paths (heartbeat kill, retry, bisection) must absorb each
   one without corrupting the merged output.

   - [WF_kill]: the worker SIGKILLs itself after its first result frame
     (models an OOM kill or segfault mid-shard; transient — retries are
     clean, so every cell still completes);
   - [WF_stall]: the worker stops sending frames and sleeps (models a
     hung simulation; the supervisor's heartbeat deadline must fire);
   - [WF_truncate]: the worker emits a truncated result frame and exits
     (models a crash mid-write; the frame decoder must not accept it);
   - [WF_poison n]: the worker aborts whenever asked to compute the
     cell with global id [n], on *every* attempt (models a cell whose
     simulation segfaults deterministically; the supervisor must bisect
     down to it, report a structured fault, and complete the rest). *)
type worker_mode =
  | WF_kill
  | WF_stall
  | WF_truncate
  | WF_poison of int

let worker_mode_name = function
  | WF_kill -> "worker-kill"
  | WF_stall -> "worker-stall"
  | WF_truncate -> "worker-truncate"
  | WF_poison n -> Printf.sprintf "worker-poison:%d" n

let worker_mode_of_string s =
  match s with
  | "worker-kill" -> WF_kill
  | "worker-stall" -> WF_stall
  | "worker-truncate" -> WF_truncate
  | _ ->
      let prefix = "worker-poison:" in
      let plen = String.length prefix in
      if String.length s > plen && String.sub s 0 plen = prefix then
        match int_of_string_opt (String.sub s plen (String.length s - plen)) with
        | Some n when n >= 0 -> WF_poison n
        | _ -> invalid_arg ("Fault_inject.worker_mode_of_string: " ^ s)
      else invalid_arg ("Fault_inject.worker_mode_of_string: " ^ s)

let worker_mode_description = function
  | WF_kill -> "worker SIGKILLs itself after the first result"
  | WF_stall -> "worker stops heartbeating and hangs"
  | WF_truncate -> "worker writes a truncated result frame and exits"
  | WF_poison n ->
      Printf.sprintf "worker aborts whenever computing cell %d" n

(* [WF_poison] is deterministic per cell, so it must stay armed across
   retries for bisection to isolate the cell; the other modes model
   one-off crashes and are armed only on the first spawn. *)
let worker_mode_persistent = function
  | WF_poison _ -> true
  | WF_kill | WF_stall | WF_truncate -> false

(* Environment variable through which a supervisor arms a fault in the
   worker process it spawns. *)
let worker_env = "PROTEAN_WORKER_FAULT"

(* --- network-level fault injection ----------------------------------- *)

(* The TCP shard transport (Protean_harness.Shard.Transport) is hardened
   the same way: these modes corrupt the *byte stream between supervisor
   and worker* instead of the worker process, modelling the failure
   modes of a real network.  Applied at the transport seam (every frame
   send passes through it), so pipe and socket transports are faulted
   identically.  The campaign must still complete with byte-identical
   merged output: the supervisor treats a corrupted or half-closed
   connection as a dead worker and re-dispatches its lease.

   - [NF_drop n]: the nth frame sent is silently discarded (a lost
     datagram / a switch eating a segment): the peer sees a gap — a
     missing result must be re-dispatched, never invented;
   - [NF_garbage n]: the nth frame is replaced by garbage bytes whose
     length prefix is invalid, poisoning the stream (bit corruption /
     a confused middlebox): the peer's decoder must reject it as a
     structured protocol fault, not allocate gigabytes;
   - [NF_delay s]: every send stalls [s] seconds first (congestion);
     correctness must not depend on latency;
   - [NF_half_close n]: before the nth frame the sender shuts down its
     write side and stops (a half-open TCP connection): the peer sees
     clean EOF mid-lease;
   - [NF_short_write n]: the nth frame is cut off after a few bytes and
     the write side shut down (sender crashed mid-write): the peer sees
     a truncated frame.

   All modes except [NF_delay] fire exactly once per *process* (tracked
   by the transport layer), so a worker that reconnects after its own
   injected fault serves cleanly — which is exactly the reconnect path
   chaos tests need to exercise. *)
type net_mode =
  | NF_drop of int
  | NF_garbage of int
  | NF_delay of float
  | NF_half_close of int
  | NF_short_write of int

let net_mode_name = function
  | NF_drop n -> Printf.sprintf "net-drop:%d" n
  | NF_garbage n -> Printf.sprintf "net-garbage:%d" n
  | NF_delay s -> Printf.sprintf "net-delay:%g" s
  | NF_half_close n -> Printf.sprintf "net-half-close:%d" n
  | NF_short_write n -> Printf.sprintf "net-short-write:%d" n

let net_mode_of_string s =
  let num prefix of_tok mk =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match of_tok (String.sub s plen (String.length s - plen)) with
      | Some n -> Some (mk n)
      | None -> invalid_arg ("Fault_inject.net_mode_of_string: " ^ s)
    else None
  in
  let pos_int tok =
    match int_of_string_opt tok with Some n when n >= 1 -> Some n | _ -> None
  in
  let pos_float tok =
    match float_of_string_opt tok with
    | Some f when f >= 0.0 -> Some f
    | _ -> None
  in
  let candidates =
    [
      num "net-drop:" pos_int (fun n -> NF_drop n);
      num "net-garbage:" pos_int (fun n -> NF_garbage n);
      num "net-delay:" pos_float (fun f -> NF_delay f);
      num "net-half-close:" pos_int (fun n -> NF_half_close n);
      num "net-short-write:" pos_int (fun n -> NF_short_write n);
    ]
  in
  match List.find_opt Option.is_some candidates with
  | Some (Some m) -> m
  | _ -> invalid_arg ("Fault_inject.net_mode_of_string: " ^ s)

let net_mode_description = function
  | NF_drop n -> Printf.sprintf "frame %d silently dropped" n
  | NF_garbage n -> Printf.sprintf "frame %d replaced by garbage bytes" n
  | NF_delay s -> Printf.sprintf "every frame delayed %gs" s
  | NF_half_close n ->
      Printf.sprintf "write side shut down before frame %d" n
  | NF_short_write n ->
      Printf.sprintf "frame %d cut off mid-write, then shutdown" n

(* Environment variable through which a chaos harness arms a network
   fault in a worker process (read by the transport layer at dial-in). *)
let net_env = "PROTEAN_NET_FAULT"
