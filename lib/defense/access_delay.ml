(* AccessDelay — the protection mechanism of NDA and SpecShield
   (Section VI-A1).

   Hardware-defined ProtSet: all of memory, no registers; targets
   non-secret-accessing (ARCH) code.  Access instructions are loads.  They
   may execute and write back speculatively but may not wake up their
   dependents until they become non-speculative, so transiently-accessed
   data never reaches a transmitter. *)

open Protean_ooo

let make () =
  let n_fwd_blocks = ref 0 in
  {
    Policy.unsafe with
    Policy.name = "access-delay";
    may_forward =
      (fun api e ->
        if Rob_entry.is_load e then begin
          let ok = not (Policy.is_speculative api e) in
          if not ok then incr n_fwd_blocks;
          ok
        end
        else true);
    metrics = (fun () -> [ ("forward_blocks", !n_fwd_blocks) ]);
  }
