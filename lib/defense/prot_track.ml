(* ProtTrack (Section VI-B2): the tracking-based enforcement of ProtISA
   ProtSets, extending AccessTrack with

   - the access-transmitter delay (like ProtDelay): a transmitter with a
     protected sensitive operand stalls until non-speculative;
   - a secure access predictor: a 1-bit table indexed by load PC predicts
     at rename whether a load will read protected memory.  Loads predicted
     *no-access* with unprotected outputs are left untainted; everything
     else is tainted as in AccessTrack;
   - secure misprediction recovery: a false negative (predicted no-access
     but the load read protected memory) falls back to ProtDelay — the
     load's dependents are not woken until it is non-speculative, so
     protected data never propagates into untainted registers;
   - secure tainted store forwarding: an untainted load that forwards from
     a store of tainted data delays its wakeup of dependents until the
     store's data untaints.

   [predictor_entries = 0] gives an infinite (fully tagged) predictor for
   the Fig. 5 sensitivity study; [~predictor:false] disables it entirely,
   approximating AccessTrack on ProtISA programs (Section IX-A4). *)

open Protean_ooo

type predictor = {
  table : Bytes.t; (* 1 bit per entry, byte-encoded: 1 = access *)
  entries : int;
  infinite : (int, bool) Hashtbl.t option;
}

let predictor_create entries =
  if entries = 0 then
    { table = Bytes.empty; entries = 0; infinite = Some (Hashtbl.create 1024) }
  else
    (* Initialized to *access*: unseen loads are conservatively treated
       as accesses. *)
    { table = Bytes.make entries '\001'; entries; infinite = None }

let predictor_lookup p pc =
  match p.infinite with
  | Some h -> ( match Hashtbl.find_opt h pc with Some b -> b | None -> true)
  | None -> Bytes.get p.table (pc land (p.entries - 1)) = '\001'

let predictor_update p pc access =
  match p.infinite with
  | Some h -> Hashtbl.replace h pc access
  | None ->
      Bytes.set p.table (pc land (p.entries - 1)) (if access then '\001' else '\000')

let make ?(predictor = true) ?(predictor_entries = 1024) () =
  let pred = predictor_create predictor_entries in
  (* Policy-local counters, surfaced through [Policy.metrics]: the
     predictor split and the two recovery mechanisms the Stats record
     has no fields for. *)
  let n_taints = ref 0 in
  let n_pred_no_access = ref 0 in
  let n_late_access = ref 0 in
  let n_fwd_blocks = ref 0 in
  let on_rename api (e : Rob_entry.t) =
    let inherited = Policy.inherited_taint api e in
    let self_access =
      if Rob_entry.protected_reg_input e then true
      else if Rob_entry.is_load e then
        if not predictor then true (* AccessTrack: taint every load *)
        else begin
          api.Policy.stats.Stats.access_pred_lookups <-
            api.Policy.stats.Stats.access_pred_lookups + 1;
          let predicted_access = predictor_lookup pred e.Rob_entry.pc in
          if (not predicted_access) && not e.Rob_entry.out_prot then begin
            (* Predicted no-access with an unprotected output: leave the
               load untainted (Fig. 4b). *)
            e.Rob_entry.pred_no_access <- true;
            incr n_pred_no_access;
            false
          end
          else true
        end
      else false
    in
    e.Rob_entry.access_at_rename <- self_access;
    if self_access then incr n_taints;
    e.Rob_entry.taint_root <-
      max inherited (if self_access then e.Rob_entry.seq else -1)
  in
  let on_load_executed api (e : Rob_entry.t) =
    let actual_access = e.Rob_entry.mem_prot in
    if e.Rob_entry.pred_no_access && actual_access then begin
      (* False negative: fall back to ProtDelay for this load. *)
      e.Rob_entry.late_access <- true;
      incr n_late_access;
      api.Policy.stats.Stats.access_pred_false_negatives <-
        api.Policy.stats.Stats.access_pred_false_negatives + 1
    end;
    (* Secure tainted store forwarding (Section VI-B2c). *)
    if
      e.Rob_entry.fwd_from >= 0
      && (not e.Rob_entry.access_at_rename)
      && not e.Rob_entry.late_access
    then
      let st = api.Policy.peek e.Rob_entry.fwd_from in
      if
        (not (Rob_entry.is_null st))
        && Policy.root_speculative api st.Rob_entry.taint_root
      then begin
        e.Rob_entry.fwd_block_store <- st.Rob_entry.seq;
        incr n_fwd_blocks
      end
  in
  let may_forward api (e : Rob_entry.t) =
    if e.Rob_entry.late_access then not (Policy.is_speculative api e)
    else if e.Rob_entry.fwd_block_store >= 0 then
      let st = api.Policy.peek e.Rob_entry.fwd_block_store in
      if Rob_entry.is_null st then true
        (* the store committed: its data is architectural *)
      else not (Policy.root_speculative api st.Rob_entry.taint_root)
    else true
  in
  let may_execute_transmitter api (e : Rob_entry.t) =
    (not (Policy.is_speculative api e))
    || ((not (Taint.sensitive_tainted api e))
       && not (Rob_entry.protected_sensitive_reg e))
  in
  let may_resolve api (e : Rob_entry.t) =
    (not (Policy.is_speculative api e))
    || ((not (Taint.sensitive_tainted api e))
       && (not (Rob_entry.protected_sensitive_reg e))
       && ((not (Taint.resolves_from_memory e))
          || ((not (Taint.own_load_tainted api e))
             && not (e.Rob_entry.addr_ready && e.Rob_entry.mem_prot))))
  in
  let on_commit api (e : Rob_entry.t) =
    if Rob_entry.is_load e && predictor then begin
      let actual_access = e.Rob_entry.mem_prot in
      (* Paper metric (Fig. 5): mispredictions among retired unprefixed
         loads with unprotected outputs. *)
      if not e.Rob_entry.out_prot then begin
        let predicted_access = not e.Rob_entry.pred_no_access in
        if predicted_access <> actual_access then
          api.Policy.stats.Stats.access_pred_mispredicts <-
            api.Policy.stats.Stats.access_pred_mispredicts + 1
      end;
      predictor_update pred e.Rob_entry.pc actual_access
    end
  in
  let metrics () =
    [
      ("taints_applied", !n_taints);
      ("pred_no_access", !n_pred_no_access);
      ("protdelay_fallbacks", !n_late_access);
      ("tainted_fwd_blocks", !n_fwd_blocks);
    ]
  in
  {
    Policy.name = (if predictor then "prot-track" else "prot-track-nopred");
    uses_protisa = true;
    on_rename;
    may_execute_transmitter;
    may_forward;
    may_resolve;
    on_load_executed;
    on_commit;
    metrics;
  }
