(* Sequential (architectural) execution of Protean ISA programs.

   This is the reference semantics: the out-of-order pipeline must produce
   exactly the same architectural results (a property test enforces it),
   and the SEQ execution mode of security contracts (Section II-C) is a
   run of this machine under an observer. *)

open Protean_isa

type state = {
  regs : int64 array;
  mem : Memory.t;
  mutable pc : int;
  mutable halted : bool;
  mutable steps : int;
}

(* Everything one instruction did, for observers and ProtSet tracking. *)
type effect_ = {
  e_pc : int;
  e_insn : Insn.t;
  e_next_pc : int;
  e_load : (int64 * int * int64) option; (* addr, size, value *)
  e_store : (int64 * int * int64) option;
  e_branch : (bool * int) option; (* taken, actual target *)
  e_div : (int64 * int64) option; (* dividend, divisor *)
  e_fault : bool;
  e_written : (Reg.t * int64) list;
}

let no_effect pc insn next =
  {
    e_pc = pc;
    e_insn = insn;
    e_next_pc = next;
    e_load = None;
    e_store = None;
    e_branch = None;
    e_div = None;
    e_fault = false;
    e_written = [];
  }

let init (p : Program.t) =
  let mem = Memory.create () in
  List.iter (fun (d : Program.data_init) -> Memory.write_string mem d.addr d.bytes) p.data;
  let regs = Array.make Reg.count 0L in
  regs.(Reg.to_int Reg.rsp) <- p.stack_base;
  { regs; mem; pc = p.main; halted = false; steps = 0 }

(* Apply extra memory overlays (e.g. the fuzzer's secret-region inputs). *)
let overlay state overlays =
  List.iter (fun (addr, bytes) -> Memory.write_string state.mem addr bytes) overlays

let reg state r = state.regs.(Reg.to_int r)
let set_reg state r v = state.regs.(Reg.to_int r) <- v

let src_value state = function
  | Insn.Reg r -> reg state r
  | Insn.Imm v -> v

let ea state m = Sem.effective_address (reg state) m

let write_reg state w r v =
  let old = reg state r in
  let v' = Sem.apply_width w ~old v in
  set_reg state r v';
  (r, v')

(* Execute the instruction at [state.pc].  Returns its effect; advances
   the state.  Running off the end of the code array halts. *)
let step (p : Program.t) state =
  if state.halted then no_effect state.pc (Insn.make Insn.Halt) state.pc
  else if not (Program.in_bounds p state.pc) then begin
    state.halted <- true;
    no_effect state.pc (Insn.make Insn.Halt) state.pc
  end
  else begin
    let pc = state.pc in
    let insn = Program.insn p pc in
    state.steps <- state.steps + 1;
    let next = pc + 1 in
    let eff = no_effect pc insn next in
    let eff =
      match insn.op with
      | Insn.Nop -> eff
      | Insn.Halt ->
          state.halted <- true;
          { eff with e_next_pc = pc }
      | Insn.Mov (w, d, s) ->
          let wr = write_reg state w d (src_value state s) in
          { eff with e_written = [ wr ] }
      | Insn.Lea (d, m) ->
          let wr = write_reg state Insn.W64 d (ea state m) in
          { eff with e_written = [ wr ] }
      | Insn.Load (w, d, m) ->
          let addr = ea state m in
          let size = Insn.width_bytes w in
          let v = Memory.read state.mem addr size in
          let wr = write_reg state w d v in
          { eff with e_load = Some (addr, size, v); e_written = [ wr ] }
      | Insn.Store (w, m, s) ->
          let addr = ea state m in
          let size = Insn.width_bytes w in
          let v = Sem.truncate_width w (src_value state s) in
          Memory.write state.mem addr size v;
          { eff with e_store = Some (addr, size, v) }
      | Insn.Binop (o, d, s) ->
          let r, fl = Sem.eval_binop o (reg state d) (src_value state s) in
          let wr = write_reg state Insn.W64 d r in
          let wf = write_reg state Insn.W64 Reg.flags fl in
          { eff with e_written = [ wr; wf ] }
      | Insn.Unop (o, d) ->
          let r, fl = Sem.eval_unop o (reg state d) in
          let wr = write_reg state Insn.W64 d r in
          let wf = write_reg state Insn.W64 Reg.flags fl in
          { eff with e_written = [ wr; wf ] }
      | Insn.Div (d, n, s) ->
          let nv = reg state n in
          let dv = src_value state s in
          if Int64.equal dv 0L then
            (* Suppressed architectural fault: the quotient reads as
               all-ones and execution continues, but the event is recorded
               so the pipeline can model the conditional machine clear. *)
            let wr = write_reg state Insn.W64 d Int64.minus_one in
            { eff with e_div = Some (nv, dv); e_fault = true; e_written = [ wr ] }
          else
            let wr = write_reg state Insn.W64 d (Sem.eval_div nv dv) in
            { eff with e_div = Some (nv, dv); e_written = [ wr ] }
      | Insn.Rem (d, n, s) ->
          let nv = reg state n in
          let dv = src_value state s in
          if Int64.equal dv 0L then
            let wr = write_reg state Insn.W64 d Int64.minus_one in
            { eff with e_div = Some (nv, dv); e_fault = true; e_written = [ wr ] }
          else
            let wr = write_reg state Insn.W64 d (Sem.eval_rem nv dv) in
            { eff with e_div = Some (nv, dv); e_written = [ wr ] }
      | Insn.Cmp (a, s) ->
          let fl = Sem.eval_cmp (reg state a) (src_value state s) in
          let wf = write_reg state Insn.W64 Reg.flags fl in
          { eff with e_written = [ wf ] }
      | Insn.Test (a, s) ->
          let fl = Sem.eval_test (reg state a) (src_value state s) in
          let wf = write_reg state Insn.W64 Reg.flags fl in
          { eff with e_written = [ wf ] }
      | Insn.Setcc (c, d) ->
          let v = if Sem.eval_cond c (reg state Reg.flags) then 1L else 0L in
          let wr = write_reg state Insn.W64 d v in
          { eff with e_written = [ wr ] }
      | Insn.Cmov (c, d, s) ->
          let v =
            if Sem.eval_cond c (reg state Reg.flags) then src_value state s
            else reg state d
          in
          let wr = write_reg state Insn.W64 d v in
          { eff with e_written = [ wr ] }
      | Insn.Jcc (c, t) ->
          let taken = Sem.eval_cond c (reg state Reg.flags) in
          let target = if taken then t else next in
          { eff with e_branch = Some (taken, target); e_next_pc = target }
      | Insn.Jmp t -> { eff with e_branch = Some (true, t); e_next_pc = t }
      | Insn.Jmpi rt ->
          let target = Int64.to_int (reg state rt) in
          { eff with e_branch = Some (true, target); e_next_pc = target }
      | Insn.Call t ->
          let sp = Int64.sub (reg state Reg.rsp) 8L in
          Memory.write state.mem sp 8 (Int64.of_int next);
          let wr = write_reg state Insn.W64 Reg.rsp sp in
          {
            eff with
            e_store = Some (sp, 8, Int64.of_int next);
            e_branch = Some (true, t);
            e_next_pc = t;
            e_written = [ wr ];
          }
      | Insn.Ret ->
          let sp = reg state Reg.rsp in
          let v = Memory.read state.mem sp 8 in
          let target = Int64.to_int v in
          let wr = write_reg state Insn.W64 Reg.rsp (Int64.add sp 8L) in
          let wt = write_reg state Insn.W64 Reg.tmp v in
          {
            eff with
            e_load = Some (sp, 8, v);
            e_branch = Some (true, target);
            e_next_pc = target;
            e_written = [ wr; wt ];
          }
      | Insn.Push s ->
          let sp = Int64.sub (reg state Reg.rsp) 8L in
          let v = src_value state s in
          Memory.write state.mem sp 8 v;
          let wr = write_reg state Insn.W64 Reg.rsp sp in
          { eff with e_store = Some (sp, 8, v); e_written = [ wr ] }
      | Insn.Pop d ->
          let sp = reg state Reg.rsp in
          let v = Memory.read state.mem sp 8 in
          let wr = write_reg state Insn.W64 d v in
          let ws = write_reg state Insn.W64 Reg.rsp (Int64.add sp 8L) in
          { eff with e_load = Some (sp, 8, v); e_written = [ wr; ws ] }
    in
    state.pc <- eff.e_next_pc;
    eff
  end

(* Step two states over the same program in lockstep, for relational
   (two-trace) analyses such as certificate refutation: the pair
   advances while the pcs agree and neither machine has halted.
   [before pc] runs ahead of each paired step, [after pc] behind it;
   either may stop the replay. *)
let lockstep ?(fuel = 50_000) p s1 s2 ~before ~after =
  let steps = ref 0 in
  let continue = ref true in
  while
    !continue && (not s1.halted) && (not s2.halted) && s1.pc = s2.pc
    && !steps < fuel
  do
    incr steps;
    let pc = s1.pc in
    match before pc with
    | `Stop -> continue := false
    | `Continue -> (
        ignore (step p s1);
        ignore (step p s2);
        match after pc with
        | `Stop -> continue := false
        | `Continue -> ())
  done

(* Run until halt or [fuel] instructions, applying [f] to each effect. *)
let run ?(fuel = 1_000_000) p state ~f =
  let rec loop n =
    if n <= 0 || state.halted then ()
    else begin
      let eff = step p state in
      f eff;
      loop (n - 1)
    end
  in
  loop fuel

let run_to_halt ?fuel p state = run ?fuel p state ~f:(fun _ -> ())
