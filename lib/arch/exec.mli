(** Sequential (architectural) execution of Protean ISA programs.

    This is the reference semantics: the out-of-order pipeline must
    produce exactly the same architectural results (enforced by property
    tests), and the SEQ execution mode of security contracts
    (Section II-C) is a run of this machine under an observer. *)

open Protean_isa

type state = {
  regs : int64 array;
  mem : Memory.t;
  mutable pc : int;
  mutable halted : bool;
  mutable steps : int;
}

(** Everything one instruction did, for observers and ProtSet tracking. *)
type effect_ = {
  e_pc : int;
  e_insn : Insn.t;
  e_next_pc : int;
  e_load : (int64 * int * int64) option;  (** address, size, value *)
  e_store : (int64 * int * int64) option;
  e_branch : (bool * int) option;  (** taken, actual target *)
  e_div : (int64 * int64) option;  (** dividend, divisor *)
  e_fault : bool;  (** division fault (suppressed architecturally) *)
  e_written : (Reg.t * int64) list;
}

val no_effect : int -> Insn.t -> int -> effect_

val init : Program.t -> state
(** Fresh state: data sections loaded, [rsp] at the stack base. *)

val overlay : state -> (int64 * string) list -> unit
(** Apply extra memory overlays (e.g. the fuzzer's secret inputs). *)

val reg : state -> Reg.t -> int64
val set_reg : state -> Reg.t -> int64 -> unit

val step : Program.t -> state -> effect_
(** Execute the instruction at [state.pc]; running off the end of the
    code halts. *)

val lockstep :
  ?fuel:int ->
  Program.t ->
  state ->
  state ->
  before:(int -> [ `Continue | `Stop ]) ->
  after:(int -> [ `Continue | `Stop ]) ->
  unit
(** Step two states over the same program in lockstep, for relational
    (two-trace) analyses such as certificate refutation.  The pair
    advances while the pcs agree and neither machine has halted;
    [before pc] runs ahead of each paired step and [after pc] behind
    it, and either callback may stop the replay. *)

val run : ?fuel:int -> Program.t -> state -> f:(effect_ -> unit) -> unit
val run_to_halt : ?fuel:int -> Program.t -> state -> unit
