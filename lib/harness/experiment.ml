(* Experiment runner: simulate (benchmark, defense-configuration) pairs
   and report runtimes normalized to the unsafe baseline, with
   memoization so the table/figure generators can share runs.

   Following the paper's methodology (Section VIII-A):
   - baselines (unsafe, STT, SPT, SPT-SB) run the *base* binary;
   - PROTEAN configurations run the *ProtCC* binary, compiled with the
     appropriate pass (or with per-function classes for multi-class
     programs);
   - normalized runtime = cycles(defense) / cycles(unsafe-on-base). *)

module Defense = Protean_defense.Defense
module Protcc = Protean_protcc.Protcc
module Config = Protean_ooo.Config
module Pipeline = Protean_ooo.Pipeline
module Policy = Protean_ooo.Policy
module Multicore = Protean_ooo.Multicore
module Stats = Protean_ooo.Stats
module Profile = Protean_ooo.Profile
module Pstate = Protean_ooo.Pipeline_state
module Spec_window = Protean_ooo.Spec_window
module Suite = Protean_workloads.Suite
module Program = Protean_isa.Program
module Tlog = Protean_telemetry.Log
module Flame = Protean_telemetry.Flame
module Twindow = Protean_telemetry.Window

type defense_cfg = {
  label : string;
  defense : Defense.t;
  pass : Protcc.pass option;
      (* ProtCC pass to compile the benchmark with; [None] = base binary.
         [Some P_arch] also runs the base binary (ProtCC-ARCH is a no-op)
         but is kept distinct for labelling. *)
}

let base label defense = { label; defense; pass = None }

let protean label defense pass = { label; defense; pass = Some pass }

(* The named configurations of the evaluation (Section VIII-A5). *)
let cfg_unsafe = base "unsafe" Defense.unsafe
let cfg_stt = base "STT" Defense.stt
let cfg_spt = base "SPT" Defense.spt
let cfg_spt_sb = base "SPT-SB" Defense.spt_sb

let protean_cfg mech pass =
  let d, mname =
    match mech with
    | `Delay -> (Defense.prot_delay, "Delay")
    | `Track -> (Defense.prot_track, "Track")
  in
  let pname = Protcc.pass_name pass in
  protean (Printf.sprintf "PROTEAN-%s-%s" mname pname) d pass

(* Multi-class PROTEAN: instrument with each function's own class. *)
let protean_multiclass mech =
  let d, mname =
    match mech with
    | `Delay -> (Defense.prot_delay, "Delay")
    | `Track -> (Defense.prot_track, "Track")
  in
  { label = "PROTEAN-" ^ mname; defense = d; pass = None }

type run_spec = {
  bench : Suite.benchmark;
  dcfg : defense_cfg;
  config : Config.t;
  spec_model : Policy.spec_model;
  squash_bug : bool;
  multiclass : bool; (* instrument with per-function classes *)
}

type run_result = {
  cycles : float;
  stats : Stats.t list; (* one per core *)
  code_size_ratio : float;
  inserted_moves : int;
  policy_metrics : (string * int) list;
      (* the defense policy's named counters ([Policy.metrics]), read
         once after the run; [] unless telemetry collection is enabled *)
  flame : (string * int) list;
      (* folded flamegraph stacks ("bench;klass;func" -> simulated
         cycles) from the commit-gap profiler; [] unless flame
         collection is enabled.  Per cell, sum of weights == the cell's
         [Stats.cycles] (summed over cores). *)
  frontend : string;
      (* the shared-frontend group this cell ran under (its frontend
         key), or "" when frontend sharing is disabled / the cell
         faulted before the frontend was prepared.  Purely an
         accounting tag: the reporting layer sums reuse per group into
         [protean_frontend_reuse_total]. *)
  window : (string * int) list;
      (* the speculation-window ledger's summary counters
         ([Spec_window.counters]), summed across cores; [] unless window
         collection is enabled.  All members merge by summation, so
         shard/job merge order cannot change the totals. *)
}

(* Telemetry collection switches, process-global like the line sink:
   flipped by the CLIs (and by [--worker] re-execs, which keep the
   exporter flags in argv precisely so workers collect too).  Both
   default off, so grids without exporters simulate exactly as before —
   no profiler subscription, no policy-metrics read. *)
let collect_policy_metrics = ref false
let collect_flame = ref false
let collect_window = ref false

(* Observation hook for leaky speculation windows (mispredicted with a
   tainted transmitter under them), installed by the reporting layer to
   record one Chrome-trace span per leaking window.  Called once per
   attached ledger with a cell label and the (oldest-first) leaky
   windows; a plain callback so this module needs no tracer
   dependency. *)
let window_hook : (string -> Spec_window.window list -> unit) option ref =
  ref None

(* Observation hook for cell computations (key, wall start, wall end),
   installed by the reporting layer to record Chrome-trace spans.  A
   plain callback so this module needs no dependency on the tracer. *)
let cell_hook : (string -> float -> float -> unit) option ref = ref None

let default_fuel = 30_000_000

(* Compiled-ProtCC-binary cache: instrumentation is deterministic per
   (workload, pass), and the same instrumented binary is re-simulated
   under many defense configurations, so grids (especially parallel
   ones) share compilations instead of re-running the passes.  Guarded
   by a mutex: parallel prewarm fills run on multiple domains. *)
let protcc_cache :
    (string, Protean_isa.Program.t * float * int) Hashtbl.t =
  Hashtbl.create 64

let protcc_cache_lock = Mutex.create ()

let pass_id = function
  | Protcc.P_rand (seed, prob) -> Printf.sprintf "rand:%d:%g" seed prob
  | p -> Protcc.pass_name p

(* [ckey] identifies the source program (benchmark + core index). *)
let instrument_program ~ckey spec program =
  let compile () =
    (* --check-certs: every compile result is audited by the independent
       checker before the binary runs; a refuted certificate raises the
       structured [Certify.Cert_violation], which the cell fault paths
       report without taking down the rest of the grid.  Cache hits skip
       the re-audit (the verdict is deterministic per compile). *)
    let audited (r : Protcc.result) =
      if !Protean_protcc.Certify.enabled then
        ignore (Protean_protcc.Certify.audit_exn ~original:program r);
      (r.Protcc.program, r.Protcc.code_size_ratio, r.Protcc.inserted_moves)
    in
    match (spec.dcfg.pass, spec.multiclass) with
    | None, false -> (program, 1.0, 0)
    | None, true -> audited (Protcc.instrument program)
    | Some pass, _ -> audited (Protcc.instrument ~pass_override:pass program)
  in
  match (spec.dcfg.pass, spec.multiclass) with
  | None, false -> compile ()
  | _ ->
      let k =
        Printf.sprintf "%s|%s|%b" ckey
          (match spec.dcfg.pass with
          | Some pass -> pass_id pass
          | None -> "multiclass")
          spec.multiclass
      in
      let cached =
        Mutex.lock protcc_cache_lock;
        let c = Hashtbl.find_opt protcc_cache k in
        Mutex.unlock protcc_cache_lock;
        c
      in
      (match cached with
      | Some r -> r
      | None ->
          let r = compile () in
          Mutex.lock protcc_cache_lock;
          Hashtbl.replace protcc_cache k r;
          Mutex.unlock protcc_cache_lock;
          r)

(* ------------------------------------------------------------------ *)
(* Shared frontend                                                     *)
(* ------------------------------------------------------------------ *)

(* The defense-*independent* frontend of a cell: the built workload
   program(s), their ProtCC instrumentation, and the per-pc decode
   operand templates ([Pipeline.decode_program]).  Cells that differ
   only in defense mechanism / core model / speculation model share all
   of it — the dynamic fetch/rename *stream* cannot be shared
   bit-identically (squash timing, and hence the wrong-path fetch
   schedule, differs per defense), so the replayable trace is exactly
   the per-pc part the stream is generated from.  The record is
   immutable and domain-safe: programs are never mutated by runs (the
   ProtCC cache already shares them across cells), and the decode
   templates are read-only per construction. *)
type frontend = {
  fe_key : string;
  fe_programs : Program.t array; (* one per core *)
  fe_decode :
    ((Protean_isa.Reg.t * Protean_isa.Insn.role) array array
    * Protean_isa.Reg.t array array)
    array; (* one template pair per core, same order *)
  fe_ratio : float;
  fe_moves : int;
}

(* Escape hatch: [--no-shared-frontend] / PROTEAN_NO_SHARED_FRONTEND
   fall back to per-cell frontend construction.  The env var is how the
   CLI flag reaches [--shards] worker re-execs. *)
let share_frontend =
  ref (Sys.getenv_opt "PROTEAN_NO_SHARED_FRONTEND" = None)

(* The defense-independent prefix of {!key}: suite/name, the ProtCC
   pass actually applied (base binary when none), multiclass.  Core
   model, speculation model, squash bug and defense label are absent on
   purpose — none of them affect what the frontend produces. *)
let frontend_key spec =
  Printf.sprintf "%s/%s|%s|%b" spec.bench.Suite.suite spec.bench.Suite.name
    (match spec.dcfg.pass with
    | Some pass -> pass_id pass
    | None -> if spec.multiclass then "multiclass" else "base")
    spec.multiclass

(* Process-wide, like [protcc_cache] (and mutex-guarded for the same
   reason: parallel prewarm fills run on multiple domains). *)
let frontend_cache : (string, frontend) Hashtbl.t = Hashtbl.create 64
let frontend_cache_lock = Mutex.create ()

let build_frontend ~fe_key spec =
  let bkey =
    Printf.sprintf "%s/%s" spec.bench.Suite.suite spec.bench.Suite.name
  in
  let programs, ratio, moves =
    match spec.bench.Suite.kind with
    | Suite.Single f ->
        let program, ratio, moves =
          instrument_program ~ckey:bkey spec (f ())
        in
        ([| program |], ratio, moves)
    | Suite.Multi f ->
        let ratio = ref 1.0 and moves = ref 0 in
        let programs =
          Array.mapi
            (fun i p ->
              let ckey = Printf.sprintf "%s#%d" bkey i in
              let p', r, m = instrument_program ~ckey spec p in
              ratio := r;
              moves := m;
              p')
            (f ())
        in
        (programs, !ratio, !moves)
  in
  {
    fe_key;
    fe_programs = programs;
    fe_decode = Array.map Pipeline.decode_program programs;
    fe_ratio = ratio;
    fe_moves = moves;
  }

(* A compile fault (e.g. a refuted certificate under [--check-certs])
   propagates out uncached, exactly as the per-cell path would raise
   it — the cell fault barrier in {!compute} owns the reporting. *)
let prepare_frontend spec =
  if not !share_frontend then build_frontend ~fe_key:"" spec
  else begin
    let fe_key = frontend_key spec in
    Mutex.lock frontend_cache_lock;
    let cached = Hashtbl.find_opt frontend_cache fe_key in
    Mutex.unlock frontend_cache_lock;
    match cached with
    | Some fe -> fe
    | None ->
        let fe = build_frontend ~fe_key spec in
        Mutex.lock frontend_cache_lock;
        Hashtbl.replace frontend_cache fe_key fe;
        Mutex.unlock frontend_cache_lock;
        fe
  end

(* Fold one profiler snapshot through the program's function table into
   collapsed stacks under [root] (defense label, benchmark, optionally
   core).  The residual — cycles after the last commit — goes to a
   synthetic "(no-commit)" frame so the folded weights sum to the run's
   cycle count exactly. *)
let fold_flame ~root program (snap : Profile.snapshot) acc =
  List.iter
    (fun (pc, cyc) ->
      let frames =
        match Program.func_at program pc with
        | Some f ->
            root @ [ Program.string_of_klass f.Program.klass; f.Program.fname ]
        | None -> root @ [ "(unknown)"; Printf.sprintf "pc_%d" pc ]
      in
      Flame.add acc ~frames cyc)
    snap.Profile.snap_flame;
  Flame.add acc ~frames:(root @ [ "(no-commit)" ]) snap.Profile.snap_residual

(* Sum named policy counters across cores (sorted by name, so the list
   is deterministic whatever order cores were created in). *)
let merge_policy_metrics (policies : Policy.t list) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (p : Policy.t) ->
      List.iter
        (fun (k, v) ->
          let prev = try Hashtbl.find tbl k with Not_found -> 0 in
          Hashtbl.replace tbl k (prev + v))
        (p.Policy.metrics ()))
    policies;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let execute spec =
  let bkey =
    Printf.sprintf "%s/%s" spec.bench.Suite.suite spec.bench.Suite.name
  in
  (* Flame collection: a commit-gap profiler per core, flushed through
     the unsubscribe finalizer when we detach after the run. *)
  let flame_acc = if !collect_flame then Some (Flame.create ()) else None in
  let attached : Pipeline.t list ref = ref [] in
  let attach_profiler ~root program (t : Pipeline.t) =
    match flame_acc with
    | None -> ()
    | Some acc ->
        let p = Profile.create () in
        let sink snap = fold_flame ~root program snap acc in
        Profile.attach ~sink p t;
        attached := t :: !attached
  in
  let detach_all () = List.iter Profile.detach !attached in
  (* Window ledgers: one per core, attached alongside the profiler and
     merged (summed) at the end of the run. *)
  let ledgers : (Pipeline.t * Spec_window.t) list ref = ref [] in
  let attach_ledger (t : Pipeline.t) =
    if !collect_window then ledgers := (t, Spec_window.attach t) :: !ledgers
  in
  let finish_tele policies =
    detach_all ();
    let pm =
      if !collect_policy_metrics then merge_policy_metrics policies else []
    in
    let fl = match flame_acc with None -> [] | Some acc -> Flame.to_list acc in
    let wn =
      List.fold_left
        (fun acc (t, led) ->
          Spec_window.detach t led;
          (match (!window_hook, Spec_window.leaky_windows led) with
          | Some f, (_ :: _ as leaky) ->
              f (spec.dcfg.label ^ "/" ^ bkey) leaky
          | _ -> ());
          Twindow.merge_counters acc (Spec_window.counters led))
        [] !ledgers
    in
    (pm, fl, wn)
  in
  let fe = prepare_frontend spec in
  match spec.bench.Suite.kind with
  | Suite.Single _ ->
      let program = fe.fe_programs.(0) in
      let policy = spec.dcfg.defense.Defense.make () in
      let r =
        Pipeline.run ~squash_bug:spec.squash_bug ~spec_model:spec.spec_model
          ~decode:fe.fe_decode.(0) ~fuel:default_fuel
          ~on_start:(fun t ->
            attach_profiler ~root:[ spec.dcfg.label; bkey ] program t;
            attach_ledger t)
          spec.config policy program ~overlays:[]
      in
      let policy_metrics, flame, window = finish_tele [ policy ] in
      if not r.Pipeline.finished then
        failwith
          (Printf.sprintf "experiment %s/%s did not finish"
             spec.bench.Suite.name spec.dcfg.label);
      {
        cycles = float_of_int (Stats.measured_cycles r.Pipeline.stats);
        stats = [ r.Pipeline.stats ];
        code_size_ratio = fe.fe_ratio;
        inserted_moves = fe.fe_moves;
        policy_metrics;
        flame;
        frontend = fe.fe_key;
        window;
      }
  | Suite.Multi _ ->
      let programs = fe.fe_programs in
      let policies = ref [] in
      let make_policy () =
        let p = spec.dcfg.defense.Defense.make () in
        policies := p :: !policies;
        p
      in
      let on_core i t =
        attach_profiler
          ~root:[ spec.dcfg.label; bkey; Printf.sprintf "core%d" i ]
          programs.(i) t;
        attach_ledger t
      in
      let r =
        Multicore.run ~squash_bug:spec.squash_bug ~spec_model:spec.spec_model
          ~decode:fe.fe_decode ~fuel:default_fuel ~on_core spec.config
          ~make_policy programs
      in
      let policy_metrics, flame, window = finish_tele !policies in
      if not r.Multicore.finished then
        failwith
          (Printf.sprintf "experiment %s/%s did not finish"
             spec.bench.Suite.name spec.dcfg.label);
      {
        cycles = float_of_int r.Multicore.cycles;
        stats =
          Array.to_list
            (Array.map (fun (c : Pipeline.result) -> c.Pipeline.stats) r.Multicore.per_core);
        code_size_ratio = fe.fe_ratio;
        inserted_moves = fe.fe_moves;
        policy_metrics;
        flame;
        frontend = fe.fe_key;
        window;
      }

(* Memoized session.  [collect], when set, switches [run] into a
   discovery mode used by {!prewarm}: cache misses are recorded (keyed
   for dedup) instead of simulated, so one silenced dry run of a
   generator yields the work-list for the parallel grid fill. *)
type session = {
  cache : (string, run_result) Hashtbl.t;
  mutable log : bool;
  mutable collect : (string, run_spec) Hashtbl.t option;
}

let create_session ?(log = false) () =
  { cache = Hashtbl.create 128; log; collect = None }

let key spec =
  (* The suite qualifies the name: e.g. `mcf` exists in both the
     SPEC2017 and the ARCH-Wasm suites. *)
  Printf.sprintf "%s/%s|%s|%s|%s|%b|%b" spec.bench.Suite.suite
    spec.bench.Suite.name spec.dcfg.label spec.config.Config.name
    (Policy.spec_model_name spec.spec_model)
    spec.squash_bug spec.multiclass

(* Sentinel for a faulted run: grids keep going and the affected table
   cells read as nan instead of the whole process aborting. *)
let faulted_result =
  {
    cycles = nan;
    stats = [];
    code_size_ratio = nan;
    inserted_moves = 0;
    policy_metrics = [];
    flame = [];
    frontend = "";
    window = [];
  }

(* Diagnostic lines (fault reports, [run] cache-miss logs, [prewarm]
   progress) are emitted by parallel fill workers on several domains —
   and, under supervised execution, by several *processes*.  They all
   route through the structured logger ([Telemetry.Log]), whose single
   mutex-serialized sink keeps lines whole; shard workers retarget the
   sink at the supervisor's frame protocol so per-worker output never
   shares a raw stderr. *)
let set_line_sink = Tlog.set_sink

let log_line fmt = Printf.ksprintf (fun s -> Tlog.info ~src:"harness" "%s" s) fmt

(* One cell, with the fault barrier: a deadlocked/livelocked simulation
   fails this cell only — report the faulting configuration and let the
   grid continue with a nan cell. *)
let compute spec =
  let t0 = Unix.gettimeofday () in
  let finish r =
    (match !cell_hook with
    | Some f -> f (key spec) t0 (Unix.gettimeofday ())
    | None -> ());
    r
  in
  match execute spec with
  | r -> finish r
  | exception Pipeline.Sim_fault f ->
      Tlog.warn ~src:"harness"
        "[fault] bench=%s defense=%s core=%s spec_model=%s: %s"
        spec.bench.Suite.name spec.dcfg.label spec.config.Config.name
        (Policy.spec_model_name spec.spec_model)
        (Pipeline.fault_to_string f);
      finish faulted_result
  | exception Failure msg ->
      Tlog.warn ~src:"harness" "[fault] bench=%s defense=%s core=%s: %s"
        spec.bench.Suite.name spec.dcfg.label spec.config.Config.name msg;
      finish faulted_result

let run session spec =
  let k = key spec in
  match Hashtbl.find_opt session.cache k with
  | Some r -> r
  | None -> (
      match session.collect with
      | Some pending ->
          (* Discovery pass: record the miss, return a placeholder
             (not cached — the parallel fill supplies the real result). *)
          if not (Hashtbl.mem pending k) then Hashtbl.replace pending k spec;
          faulted_result
      | None ->
          if session.log then log_line "[run] %s" k;
          let r = compute spec in
          Hashtbl.replace session.cache k r;
          r)

let spec ?(config = Config.p_core) ?(spec_model = Policy.Atcommit)
    ?(squash_bug = false) ?(multiclass = false) bench dcfg =
  { bench; dcfg; config; spec_model; squash_bug; multiclass }

(* Normalized runtime of [dcfg] on [bench] against the unsafe baseline on
   the base binary, same core configuration. *)
let normalized session ?config ?spec_model ?multiclass bench dcfg =
  let r = run session (spec ?config ?spec_model ?multiclass bench dcfg) in
  let u = run session (spec ?config ?spec_model bench cfg_unsafe) in
  r.cycles /. u.cycles

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

(* ProtCC static overhead (Section IX-A2): code size ratio and the
   runtime ratio of the instrumented binary on *unsafe* hardware. *)
let protcc_overhead session bench pass =
  let dcfg = { label = "unsafe+" ^ Protcc.pass_name pass; defense = Defense.unsafe; pass = Some pass } in
  let r = run session (spec bench dcfg) in
  let u = run session (spec bench cfg_unsafe) in
  (r.code_size_ratio, r.cycles /. u.cycles, r.inserted_moves)

(* ------------------------------------------------------------------ *)
(* Parallel grid prewarm                                               *)
(* ------------------------------------------------------------------ *)

(* Run [gen] (a table/figure generator driving [run] through [session])
   with all its simulations executed on [jobs] domains, producing output
   byte-identical to the serial run.  Three phases:

   1. discovery — [gen] runs once with [Format.std_formatter] silenced
      and the session in collect mode, so every cache miss is recorded
      (deduplicated, no simulation happens);
   2. fill — the recorded cells, sorted by key for a deterministic task
      order, run under {!Parallel.map} and land in the session cache;
   3. replay — [gen] runs again serially; every [run] now hits the warm
      cache, so the printed output is exactly the serial output.

   Correctness rests on generators being output-only consumers: the set
   of cells they request doesn't depend on cell results, and cells are
   pure functions of their spec.  [jobs <= 1] just runs [gen]. *)
(* Discovery (phase 1): run [gen] silenced with the session in collect
   mode and return the cache misses sorted by key — a deterministic cell
   list, so independent processes that run the same discovery enumerate
   the same cells at the same indices (the supervised-execution layer
   depends on this). *)
let discover session (gen : unit -> unit) =
  let pending = Hashtbl.create 64 in
  let saved_log = session.log in
  let ppf = Format.std_formatter in
  let saved_out = Format.pp_get_formatter_out_functions ppf () in
  Format.pp_print_flush ppf ();
  session.collect <- Some pending;
  session.log <- false;
  Format.pp_set_formatter_out_functions ppf
    {
      Format.out_string = (fun _ _ _ -> ());
      out_flush = (fun () -> ());
      out_newline = (fun () -> ());
      out_spaces = (fun _ -> ());
      out_indent = (fun _ -> ());
    };
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush ppf ();
      Format.pp_set_formatter_out_functions ppf saved_out;
      session.collect <- None;
      session.log <- saved_log)
    gen;
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k s acc -> (k, s) :: acc) pending [])

(* Install externally computed results (phase 2's output) so the replay
   run hits a warm cache. *)
let install session results =
  List.iter (fun (k, r) -> Hashtbl.replace session.cache k r) results

(* Batch the (key-sorted) cell list by frontend group, preserving the
   order of first appearance.  Each group is the parallel-fill
   scheduling unit: its cells run sequentially on one domain, so the
   group's frontend is prepared exactly once instead of being raced by
   every cell.  With sharing disabled every cell is its own group —
   the pre-sharing per-cell schedule. *)
let group_cells cells =
  if not !share_frontend then List.map (fun c -> [ c ]) cells
  else begin
    let tbl = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun ((_, s) as cell) ->
        let fk = frontend_key s in
        match Hashtbl.find_opt tbl fk with
        | Some group -> group := cell :: !group
        | None ->
            Hashtbl.replace tbl fk (ref [ cell ]);
            order := fk :: !order)
      cells;
    List.rev_map (fun fk -> List.rev !(Hashtbl.find tbl fk)) !order
  end

let prewarm ?(jobs = Parallel.default_jobs ()) session (gen : unit -> unit) =
  if jobs <= 1 then gen ()
  else begin
    let cells = discover session gen in
    let groups = group_cells cells in
    if session.log then
      log_line "[prewarm] %d cells in %d frontend groups on %d domains"
        (List.length cells) (List.length groups) jobs;
    let tasks =
      Array.of_list
        (List.map
           (fun group () -> List.map (fun (k, s) -> (k, compute s)) group)
           groups)
    in
    let results = Parallel.map ~jobs tasks in
    install session (List.concat (Array.to_list results));
    gen ()
  end
