(* Worker half of the supervised-execution layer (the supervisor half
   is {!Supervisor}): a shard worker is a separate OS process that
   receives a batch of cell ids over a pipe, computes them, and streams
   results back, so that a segfault, OOM kill or runaway cell takes
   down one worker instead of the whole grid.

   The wire protocol is length-prefixed JSON frames on stdin/stdout
   (stdout is therefore *owned* by the protocol in worker mode — all
   worker diagnostics are routed through [F_log] frames instead of a
   shared stderr, so per-worker output never interleaves mid-line):

     <4-byte big-endian payload length> <payload: one JSON object>

   supervisor -> worker
     {"t":"work","cells":[{"id":I,"key":S},...]}   the shard's batch
     {"t":"exit"}                                  drain and terminate

   worker -> supervisor
     {"t":"hb","next":I}          about to compute cell id I (liveness)
     {"t":"result","id":I,"r":J}  cell I computed, payload J
     {"t":"cellfault","id":I,"reason":S}
                                  cell I raised in-process (structured
                                  fault: no retry/bisection needed)
     {"t":"log","line":S}         a diagnostic line for the run log
     {"t":"done"}                 batch complete, worker exits 0

   Cells are identified by a dense global id (their index in the
   deterministic, key-sorted cell list that both supervisor and worker
   enumerate independently) plus the key itself as a cross-check: a
   worker that cannot resolve a key reports a cellfault rather than
   computing the wrong cell.

   Worker-level fault injection ([Protean_defense.Fault_inject]'s
   [worker_mode], armed via the [worker_env] environment variable) is
   implemented here so the supervisor's recovery paths are self-tested
   end-to-end with real processes. *)

module Fault_inject = Protean_defense.Fault_inject

(* ------------------------------------------------------------------ *)
(* Minimal JSON                                                        *)
(* ------------------------------------------------------------------ *)

(* No external JSON dependency is available, and the payloads are
   machine-generated, so a small strict parser suffices.  Floats print
   as %.17g (lossless for doubles) with nan/inf as quoted strings the
   parser maps back, so numeric results round-trip bit-exactly — the
   checkpoint-merge determinism guarantee depends on this. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let buf_add_escaped b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_nan f then Buffer.add_string b "\"nan\""
        else if f = Float.infinity then Buffer.add_string b "\"inf\""
        else if f = Float.neg_infinity then Buffer.add_string b "\"-inf\""
        else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Str s ->
        Buffer.add_char b '"';
        buf_add_escaped b s;
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            buf_add_escaped b k;
            Buffer.add_string b "\":";
            emit b v)
          kvs;
        Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 256 in
    emit b j;
    Buffer.contents b

  exception Parse of string

  let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else parse_error "expected %c at %d" c !pos
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then parse_error "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              if !pos >= n then parse_error "unterminated escape";
              (match s.[!pos] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 >= n then parse_error "short \\u escape";
                  let hex = String.sub s (!pos + 1) 4 in
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> parse_error "bad \\u escape %s" hex
                  in
                  (* Payloads are generated by [emit], which only
                     \u-escapes control characters. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else parse_error "non-ascii \\u escape";
                  pos := !pos + 4
              | c -> parse_error "bad escape \\%c" c);
              advance ();
              go ()
          | c ->
              Buffer.add_char b c;
              advance ();
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> parse_error "bad number %s" tok)
    in
    let literal word v =
      let w = String.length word in
      if !pos + w <= n && String.sub s !pos w = word then begin
        pos := !pos + w;
        v
      end
      else parse_error "bad literal at %d" !pos
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> parse_error "unexpected end of input"
      | Some '"' -> (
          let str = parse_string () in
          (* nan/inf round-trip through strings. *)
          match str with
          | "nan" -> Float Float.nan
          | "inf" -> Float Float.infinity
          | "-inf" -> Float Float.neg_infinity
          | _ -> Str str)
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> parse_error "expected , or } at %d" !pos
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> parse_error "expected , or ] at %d" !pos
            in
            List (elements [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_error "trailing bytes at %d" !pos;
    v

  (* Accessors: the protocol is typed at the frame layer, so lookups
     raise [Parse] on shape mismatches and the frame decoder turns that
     into a protocol error. *)
  let member k = function
    | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
    | _ -> Null

  let to_int = function
    | Int i -> i
    | j -> parse_error "expected int, got %s" (to_string j)

  let to_float = function
    | Float f -> f
    | Int i -> float_of_int i
    | j -> parse_error "expected float, got %s" (to_string j)

  let to_str = function
    | Str s -> s
    | j -> parse_error "expected string, got %s" (to_string j)

  let to_list = function
    | List xs -> xs
    | j -> parse_error "expected list, got %s" (to_string j)
end

(* ------------------------------------------------------------------ *)
(* Length-prefixed frames                                              *)
(* ------------------------------------------------------------------ *)

type cell = { c_id : int; c_key : string }

type frame =
  | F_work of cell list
  | F_exit
  | F_hb of int (* next cell id the worker is about to compute *)
  | F_result of int * Json.t
  | F_cellfault of { fc_id : int; fc_reason : string }
  | F_log of string
  | F_done

let frame_to_json = function
  | F_work cells ->
      Json.Obj
        [
          ("t", Json.Str "work");
          ( "cells",
            Json.List
              (List.map
                 (fun c ->
                   Json.Obj
                     [ ("id", Json.Int c.c_id); ("key", Json.Str c.c_key) ])
                 cells) );
        ]
  | F_exit -> Json.Obj [ ("t", Json.Str "exit") ]
  | F_hb next -> Json.Obj [ ("t", Json.Str "hb"); ("next", Json.Int next) ]
  | F_result (id, r) ->
      Json.Obj [ ("t", Json.Str "result"); ("id", Json.Int id); ("r", r) ]
  | F_cellfault { fc_id; fc_reason } ->
      Json.Obj
        [
          ("t", Json.Str "cellfault");
          ("id", Json.Int fc_id);
          ("reason", Json.Str fc_reason);
        ]
  | F_log line -> Json.Obj [ ("t", Json.Str "log"); ("line", Json.Str line) ]
  | F_done -> Json.Obj [ ("t", Json.Str "done") ]

let frame_of_json j =
  match Json.(to_str (member "t" j)) with
  | "work" ->
      F_work
        (List.map
           (fun c ->
             {
               c_id = Json.(to_int (member "id" c));
               c_key = Json.(to_str (member "key" c));
             })
           Json.(to_list (member "cells" j)))
  | "exit" -> F_exit
  | "hb" -> F_hb Json.(to_int (member "next" j))
  | "result" -> F_result (Json.(to_int (member "id" j)), Json.member "r" j)
  | "cellfault" ->
      F_cellfault
        {
          fc_id = Json.(to_int (member "id" j));
          fc_reason = Json.(to_str (member "reason" j));
        }
  | "log" -> F_log Json.(to_str (member "line" j))
  | "done" -> F_done
  | t -> Json.parse_error "unknown frame type %s" t

(* A frame payload larger than this is a protocol error (a corrupted
   length prefix would otherwise make the reader try to allocate and
   then block on gigabytes). *)
let max_frame = 64 * 1024 * 1024

let encode_frame frame =
  let payload = Json.to_string (frame_to_json frame) in
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 b 4 len;
  b

(* Frame writes from a worker happen on multiple domains (log lines from
   parallel cell computations), so they are serialized; a single
   [Unix.write] of the whole frame also keeps a SIGKILL from splitting a
   frame across the pipe except at its very end — which the decoder
   rejects as truncated. *)
let write_lock = Mutex.create ()

let write_frame fd frame =
  let b = encode_frame frame in
  Mutex.lock write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock write_lock)
    (fun () ->
      let len = Bytes.length b in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write fd b !off (len - !off)
      done)

(* Blocking frame read (worker side; the supervisor uses the incremental
   [Decoder] below).  Returns [None] on clean EOF. *)
let read_frame fd =
  let read_exactly buf off len =
    let got = ref 0 in
    let eof = ref false in
    while (not !eof) && !got < len do
      let k = Unix.read fd buf (off + !got) (len - !got) in
      if k = 0 then eof := true else got := !got + k
    done;
    !got = len
  in
  let hdr = Bytes.create 4 in
  if not (read_exactly hdr 0 4) then None
  else begin
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len < 0 || len > max_frame then
      Json.parse_error "frame length %d out of range" len;
    let payload = Bytes.create len in
    if not (read_exactly payload 0 len) then
      Json.parse_error "truncated frame (%d bytes expected)" len;
    Some (frame_of_json (Json.of_string (Bytes.to_string payload)))
  end

(* Incremental decoder for the supervisor's select loop: feed whatever
   bytes arrived, pop the complete frames. *)
module Decoder = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let feed t bytes off count =
    if t.len + count > Bytes.length t.buf then begin
      let cap = ref (max 4096 (Bytes.length t.buf)) in
      while t.len + count > !cap do
        cap := !cap * 2
      done;
      let buf = Bytes.create !cap in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    Bytes.blit bytes off t.buf t.len count;
    t.len <- t.len + count

  (* [Some frame] per complete frame; raises [Json.Parse] on a corrupt
     prefix or payload (the supervisor treats that as a dead worker). *)
  let next t =
    if t.len < 4 then None
    else begin
      let len =
        (Char.code (Bytes.get t.buf 0) lsl 24)
        lor (Char.code (Bytes.get t.buf 1) lsl 16)
        lor (Char.code (Bytes.get t.buf 2) lsl 8)
        lor Char.code (Bytes.get t.buf 3)
      in
      if len < 0 || len > max_frame then
        Json.parse_error "frame length %d out of range" len;
      if t.len < 4 + len then None
      else begin
        let payload = Bytes.sub_string t.buf 4 len in
        Bytes.blit t.buf (4 + len) t.buf 0 (t.len - 4 - len);
        t.len <- t.len - 4 - len;
        Some (frame_of_json (Json.of_string payload))
      end
    end

  (* Bytes sitting in the buffer that do not form a complete frame —
     non-zero after EOF means the worker died mid-write. *)
  let pending_bytes t = t.len
end

(* ------------------------------------------------------------------ *)
(* Worker loop                                                         *)
(* ------------------------------------------------------------------ *)

(* Can this platform run exec'd shard workers at all?  [Sys.win32] lacks
   the POSIX process control the supervisor needs; PROTEAN_NO_SPAWN=1
   forces the in-process fallback (used to test graceful degradation).
   When unavailable, supervised runs degrade to [Parallel.map]. *)
let can_spawn () =
  (not Sys.win32) && Sys.getenv_opt "PROTEAN_NO_SPAWN" = None

let armed_fault () =
  match Sys.getenv_opt Fault_inject.worker_env with
  | None | Some "" -> None
  | Some s -> Some (Fault_inject.worker_mode_of_string s)

(* Abort the current process the way a real crash would: no OCaml
   cleanup, no flush — the supervisor must cope with the raw pipe
   state. *)
let crash_self signal = Unix.kill (Unix.getpid ()) signal

let inject_before_cell fault out (cell : cell) =
  match fault with
  | Some (Fault_inject.WF_poison n) when n = cell.c_id ->
      (* Leave a half-written frame behind, like a segfault mid-cell. *)
      ignore (Unix.write out (Bytes.of_string "\x00\x00\x01") 0 3);
      crash_self Sys.sigabrt
  | Some Fault_inject.WF_stall ->
      (* Hold the pipe open but go silent; the heartbeat deadline must
         convert this into a kill. *)
      while true do
        Unix.sleepf 3600.0
      done
  | _ -> ()

let inject_after_first_result fault out ~results_sent =
  if results_sent = 1 then
    match fault with
    | Some Fault_inject.WF_kill -> crash_self Sys.sigkill
    | Some Fault_inject.WF_truncate ->
        (* A length prefix promising 256 bytes, then silence. *)
        ignore (Unix.write out (Bytes.of_string "\x00\x00\x01\x00junk") 0 8);
        exit 2
    | _ -> ()

(* Serve one work batch on [input]/[output] (stdin/stdout of an exec'd
   worker, or a pipe pair in tests).  [compute] resolves a cell key to
   a result payload; exceptions it raises become structured cellfault
   frames, not worker deaths.  [jobs] computes each chunk of the batch
   on that many domains ([--shards] composes with [-j]): results are
   still emitted in batch order, and the heartbeat granularity is the
   chunk. *)
let serve ?(jobs = 1) ~(compute : string -> Json.t) input output =
  let fault = armed_fault () in
  let results_sent = ref 0 in
  let send frame =
    write_frame output frame;
    match frame with
    | F_result _ | F_cellfault _ ->
        incr results_sent;
        inject_after_first_result fault output ~results_sent:!results_sent
    | _ -> ()
  in
  let compute_cell (cell : cell) =
    match compute cell.c_key with
    | r -> F_result (cell.c_id, r)
    | exception e ->
        F_cellfault { fc_id = cell.c_id; fc_reason = Printexc.to_string e }
  in
  let run_batch cells =
    let rec chunks = function
      | [] -> ()
      | cells ->
          let chunk, rest =
            let rec take k = function
              | x :: xs when k > 0 ->
                  let a, b = take (k - 1) xs in
                  (x :: a, b)
              | xs -> ([], xs)
            in
            take (max 1 jobs) cells
          in
          List.iter (fun c -> inject_before_cell fault output c) chunk;
          (match chunk with
          | c :: _ -> send (F_hb c.c_id)
          | [] -> ());
          let frames =
            if jobs <= 1 then List.map compute_cell chunk
            else
              Array.to_list
                (Parallel.map ~jobs
                   (Array.of_list (List.map (fun c () -> compute_cell c) chunk)))
          in
          List.iter send frames;
          chunks rest
    in
    chunks cells;
    send F_done
  in
  let rec loop () =
    match read_frame input with
    | None | Some F_exit -> ()
    | Some (F_work cells) ->
        run_batch cells;
        loop ()
    | Some _ -> loop () (* supervisor-bound frames are ignored here *)
  in
  loop ()

(* Entry point for a CLI's [--worker] mode: speak the protocol on
   stdin/stdout and route every diagnostic line through log frames. *)
let worker_main ?jobs ~compute () =
  let stdout_fd = Unix.stdout in
  Experiment.set_line_sink (fun line -> write_frame stdout_fd (F_log line));
  serve ?jobs ~compute Unix.stdin stdout_fd
