(* Worker half of the supervised-execution layer (the supervisor half
   is {!Supervisor}): a shard worker is a separate OS process that
   receives a batch of cell ids over a pipe, computes them, and streams
   results back, so that a segfault, OOM kill or runaway cell takes
   down one worker instead of the whole grid.

   The wire protocol is length-prefixed JSON frames on stdin/stdout
   (stdout is therefore *owned* by the protocol in worker mode — all
   worker diagnostics are routed through [F_log] frames instead of a
   shared stderr, so per-worker output never interleaves mid-line):

     <4-byte big-endian payload length> <payload: one JSON object>

   supervisor -> worker
     {"t":"work","cells":[{"id":I,"key":S},...]}   the shard's batch
     {"t":"exit"}                                  drain and terminate
     {"t":"welcome","v":I}        TCP pool: handshake accepted
     {"t":"reject","reason":S}    TCP pool: handshake refused

   worker -> supervisor
     {"t":"hello","v":I,"token":S}
                                  TCP pool: dial-in handshake (protocol
                                  version + campaign token)
     {"t":"hb","next":I}          about to compute cell id I (liveness)
     {"t":"result","id":I,"r":J}  cell I computed, payload J
     {"t":"cellfault","id":I,"reason":S}
                                  cell I raised in-process (structured
                                  fault: no retry/bisection needed)
     {"t":"log","line":S}         a diagnostic line for the run log
     {"t":"done"}                 batch complete, worker exits 0

   The same frames run over pipes (local [--shards N] workers on
   stdin/stdout) and TCP sockets (remote [--connect] workers dialing a
   [--listen] supervisor); {!Transport} abstracts the seam, and is also
   where network fault injection ({!Fault_inject.net_mode}) corrupts
   the byte stream for chaos tests.

   Cells are identified by a dense global id (their index in the
   deterministic, key-sorted cell list that both supervisor and worker
   enumerate independently) plus the key itself as a cross-check: a
   worker that cannot resolve a key reports a cellfault rather than
   computing the wrong cell.

   Worker-level fault injection ([Protean_defense.Fault_inject]'s
   [worker_mode], armed via the [worker_env] environment variable) is
   implemented here so the supervisor's recovery paths are self-tested
   end-to-end with real processes. *)

module Fault_inject = Protean_defense.Fault_inject

(* ------------------------------------------------------------------ *)
(* Minimal JSON                                                        *)
(* ------------------------------------------------------------------ *)

(* No external JSON dependency is available, and the payloads are
   machine-generated, so a small strict parser suffices.  Floats print
   as %.17g (lossless for doubles) with nan/inf as quoted strings the
   parser maps back, so numeric results round-trip bit-exactly — the
   checkpoint-merge determinism guarantee depends on this. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let buf_add_escaped b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_nan f then Buffer.add_string b "\"nan\""
        else if f = Float.infinity then Buffer.add_string b "\"inf\""
        else if f = Float.neg_infinity then Buffer.add_string b "\"-inf\""
        else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Str s ->
        Buffer.add_char b '"';
        buf_add_escaped b s;
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            buf_add_escaped b k;
            Buffer.add_string b "\":";
            emit b v)
          kvs;
        Buffer.add_char b '}'

  let to_string j =
    let b = Buffer.create 256 in
    emit b j;
    Buffer.contents b

  exception Parse of string

  let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else parse_error "expected %c at %d" c !pos
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then parse_error "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              if !pos >= n then parse_error "unterminated escape";
              (match s.[!pos] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 >= n then parse_error "short \\u escape";
                  let hex = String.sub s (!pos + 1) 4 in
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> parse_error "bad \\u escape %s" hex
                  in
                  (* Payloads are generated by [emit], which only
                     \u-escapes control characters. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else parse_error "non-ascii \\u escape";
                  pos := !pos + 4
              | c -> parse_error "bad escape \\%c" c);
              advance ();
              go ()
          | c ->
              Buffer.add_char b c;
              advance ();
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> parse_error "bad number %s" tok)
    in
    let literal word v =
      let w = String.length word in
      if !pos + w <= n && String.sub s !pos w = word then begin
        pos := !pos + w;
        v
      end
      else parse_error "bad literal at %d" !pos
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> parse_error "unexpected end of input"
      | Some '"' -> (
          let str = parse_string () in
          (* nan/inf round-trip through strings. *)
          match str with
          | "nan" -> Float Float.nan
          | "inf" -> Float Float.infinity
          | "-inf" -> Float Float.neg_infinity
          | _ -> Str str)
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> parse_error "expected , or } at %d" !pos
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> parse_error "expected , or ] at %d" !pos
            in
            List (elements [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_error "trailing bytes at %d" !pos;
    v

  (* Accessors: the protocol is typed at the frame layer, so lookups
     raise [Parse] on shape mismatches and the frame decoder turns that
     into a protocol error. *)
  let member k = function
    | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
    | _ -> Null

  let to_int = function
    | Int i -> i
    | j -> parse_error "expected int, got %s" (to_string j)

  let to_float = function
    | Float f -> f
    | Int i -> float_of_int i
    | j -> parse_error "expected float, got %s" (to_string j)

  let to_str = function
    | Str s -> s
    | j -> parse_error "expected string, got %s" (to_string j)

  let to_list = function
    | List xs -> xs
    | j -> parse_error "expected list, got %s" (to_string j)
end

(* ------------------------------------------------------------------ *)
(* Syscall hygiene                                                     *)
(* ------------------------------------------------------------------ *)

(* Retry barrier for the slow syscalls the frame protocol rests on:
   a stray signal (SIGCHLD from a reaped worker, a profiler's SIGPROF)
   interrupting [read]/[write]/[select] must never abort a campaign.
   EAGAIN is retried too — all protocol fds are blocking, so it can
   only mean a transient kernel condition, never a spin. *)
let rec retry_intr f =
  try f ()
  with Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> retry_intr f

(* A frame write to a dead peer (worker SIGKILLed, TCP connection
   reset) must surface as [Unix_error EPIPE] — recoverable by the
   supervisor's requeue logic — not deliver a process-killing SIGPIPE.
   Installed by every protocol endpoint (supervisor loops, worker
   loops); idempotent. *)
let ignore_sigpipe () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Length-prefixed frames                                              *)
(* ------------------------------------------------------------------ *)

(* Version of the frame protocol, exchanged in the TCP pool handshake:
   a worker built from a different protocol generation is rejected at
   dial-in instead of corrupting a campaign mid-run. *)
let protocol_version = 1

(* Structured protocol fault: the stream violated the framing rules
   (oversized or negative length prefix, truncated payload).  Distinct
   from [Json.Parse] (payload corruption) so callers can report which
   layer failed; supervisors treat both as a dead peer. *)
exception Protocol of string

let protocol_error fmt = Printf.ksprintf (fun s -> raise (Protocol s)) fmt

type cell = { c_id : int; c_key : string }

type frame =
  | F_work of cell list
  | F_exit
  | F_hello of { h_version : int; h_token : string }
  | F_welcome of int (* the supervisor's protocol version *)
  | F_reject of string
  | F_hb of int (* next cell id the worker is about to compute *)
  | F_result of int * Json.t
  | F_cellfault of { fc_id : int; fc_reason : string }
  | F_log of string
  | F_done

let frame_to_json = function
  | F_work cells ->
      Json.Obj
        [
          ("t", Json.Str "work");
          ( "cells",
            Json.List
              (List.map
                 (fun c ->
                   Json.Obj
                     [ ("id", Json.Int c.c_id); ("key", Json.Str c.c_key) ])
                 cells) );
        ]
  | F_exit -> Json.Obj [ ("t", Json.Str "exit") ]
  | F_hello { h_version; h_token } ->
      Json.Obj
        [
          ("t", Json.Str "hello");
          ("v", Json.Int h_version);
          ("token", Json.Str h_token);
        ]
  | F_welcome v -> Json.Obj [ ("t", Json.Str "welcome"); ("v", Json.Int v) ]
  | F_reject reason ->
      Json.Obj [ ("t", Json.Str "reject"); ("reason", Json.Str reason) ]
  | F_hb next -> Json.Obj [ ("t", Json.Str "hb"); ("next", Json.Int next) ]
  | F_result (id, r) ->
      Json.Obj [ ("t", Json.Str "result"); ("id", Json.Int id); ("r", r) ]
  | F_cellfault { fc_id; fc_reason } ->
      Json.Obj
        [
          ("t", Json.Str "cellfault");
          ("id", Json.Int fc_id);
          ("reason", Json.Str fc_reason);
        ]
  | F_log line -> Json.Obj [ ("t", Json.Str "log"); ("line", Json.Str line) ]
  | F_done -> Json.Obj [ ("t", Json.Str "done") ]

let frame_of_json j =
  match Json.(to_str (member "t" j)) with
  | "work" ->
      F_work
        (List.map
           (fun c ->
             {
               c_id = Json.(to_int (member "id" c));
               c_key = Json.(to_str (member "key" c));
             })
           Json.(to_list (member "cells" j)))
  | "exit" -> F_exit
  | "hello" ->
      F_hello
        {
          h_version = Json.(to_int (member "v" j));
          h_token = Json.(to_str (member "token" j));
        }
  | "welcome" -> F_welcome Json.(to_int (member "v" j))
  | "reject" -> F_reject Json.(to_str (member "reason" j))
  | "hb" -> F_hb Json.(to_int (member "next" j))
  | "result" -> F_result (Json.(to_int (member "id" j)), Json.member "r" j)
  | "cellfault" ->
      F_cellfault
        {
          fc_id = Json.(to_int (member "id" j));
          fc_reason = Json.(to_str (member "reason" j));
        }
  | "log" -> F_log Json.(to_str (member "line" j))
  | "done" -> F_done
  | t -> Json.parse_error "unknown frame type %s" t

(* A frame payload larger than this is a protocol error (a corrupted
   or malicious length prefix would otherwise make the reader allocate
   and then block on gigabytes).  This is the default cap; decoders and
   blocking readers accept a tighter [?max_frame] so transports exposed
   to untrusted networks can bound their allocation budget. *)
let default_max_frame = 64 * 1024 * 1024
let max_frame = default_max_frame

let check_frame_len ~cap len =
  if len < 0 || len > cap then
    protocol_error "frame length %d out of range (cap %d)" len cap

let encode_frame frame =
  let payload = Json.to_string (frame_to_json frame) in
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 b 4 len;
  b

(* Frame writes from a worker happen on multiple domains (log lines from
   parallel cell computations), so they are serialized; a single
   [Unix.write] of the whole frame also keeps a SIGKILL from splitting a
   frame across the pipe except at its very end — which the decoder
   rejects as truncated. *)
let write_lock = Mutex.create ()

let write_frame fd frame =
  let b = encode_frame frame in
  Mutex.lock write_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock write_lock)
    (fun () ->
      let len = Bytes.length b in
      let off = ref 0 in
      while !off < len do
        off := !off + retry_intr (fun () -> Unix.write fd b !off (len - !off))
      done)

(* Blocking frame read (worker side; the supervisor uses the incremental
   [Decoder] below).  Returns [None] on clean EOF. *)
let read_frame ?(max_frame = default_max_frame) fd =
  let read_upto buf off len =
    let got = ref 0 in
    let eof = ref false in
    while (not !eof) && !got < len do
      let k = retry_intr (fun () -> Unix.read fd buf (off + !got) (len - !got)) in
      if k = 0 then eof := true else got := !got + k
    done;
    !got
  in
  let hdr = Bytes.create 4 in
  match read_upto hdr 0 4 with
  | 0 -> None (* clean EOF: no frame had started *)
  | k when k < 4 -> protocol_error "truncated frame header (%d of 4 bytes)" k
  | _ ->
      let len =
        (Char.code (Bytes.get hdr 0) lsl 24)
        lor (Char.code (Bytes.get hdr 1) lsl 16)
        lor (Char.code (Bytes.get hdr 2) lsl 8)
        lor Char.code (Bytes.get hdr 3)
      in
      check_frame_len ~cap:max_frame len;
      let payload = Bytes.create len in
      let got = read_upto payload 0 len in
      if got <> len then
        protocol_error "truncated frame (%d of %d payload bytes)" got len;
      Some (frame_of_json (Json.of_string (Bytes.to_string payload)))

(* Incremental decoder for the supervisor's select loop: feed whatever
   bytes arrived, pop the complete frames. *)
module Decoder = struct
  type t = { mutable buf : Bytes.t; mutable len : int; cap : int }

  let create ?(max_frame = default_max_frame) () =
    { buf = Bytes.create 4096; len = 0; cap = max_frame }

  let feed t bytes off count =
    if t.len + count > Bytes.length t.buf then begin
      let cap = ref (max 4096 (Bytes.length t.buf)) in
      while t.len + count > !cap do
        cap := !cap * 2
      done;
      let buf = Bytes.create !cap in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    Bytes.blit bytes off t.buf t.len count;
    t.len <- t.len + count

  (* [Some frame] per complete frame; raises [Protocol] on a corrupt
     prefix and [Json.Parse] on a corrupt payload (the supervisor treats
     either as a dead worker).  The length check fires as soon as the
     4-byte prefix arrives — *before* any payload allocation — so a
     corrupt or malicious prefix cannot drive an unbounded [Bytes]
     allocation. *)
  let next t =
    if t.len < 4 then None
    else begin
      let len =
        (Char.code (Bytes.get t.buf 0) lsl 24)
        lor (Char.code (Bytes.get t.buf 1) lsl 16)
        lor (Char.code (Bytes.get t.buf 2) lsl 8)
        lor Char.code (Bytes.get t.buf 3)
      in
      check_frame_len ~cap:t.cap len;
      if t.len < 4 + len then None
      else begin
        let payload = Bytes.sub_string t.buf 4 len in
        Bytes.blit t.buf (4 + len) t.buf 0 (t.len - 4 - len);
        t.len <- t.len - 4 - len;
        Some (frame_of_json (Json.of_string payload))
      end
    end

  (* Bytes sitting in the buffer that do not form a complete frame —
     non-zero after EOF means the worker died mid-write. *)
  let pending_bytes t = t.len
end

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

(* A frame endpoint over a pair of file descriptors: a pipe pair for
   local exec'd workers, one TCP socket (same fd both ways) for remote
   dial-in workers.  This seam is also where network fault injection
   lives — every frame sent passes through [send], so drop / garbage /
   delay / half-close / short-write chaos applies identically to both
   transport kinds. *)
module Transport = struct
  type t = {
    tr_in : Unix.file_descr;
    tr_out : Unix.file_descr;
    tr_desc : string;
    tr_socket : bool; (* half-close via shutdown rather than close *)
    mutable tr_fault : Fault_inject.net_mode option;
    mutable tr_sent : int; (* frames sent, for nth-frame fault modes *)
    mutable tr_closed : bool;
  }

  let of_fds ?(desc = "pipe") ?fault ~input ~output () =
    {
      tr_in = input;
      tr_out = output;
      tr_desc = desc;
      tr_socket = input == output;
      tr_fault = fault;
      tr_sent = 0;
      tr_closed = false;
    }

  (* One-shot fault modes fire once per *process*, not per transport:
     a worker that reconnects after its own injected fault must serve
     cleanly (that clean second life is the re-dispatch path the chaos
     tests exercise). *)
  let fault_spent = ref false

  let shutdown_send t =
    if t.tr_socket then (
      try Unix.shutdown t.tr_out Unix.SHUTDOWN_SEND
      with Unix.Unix_error _ -> ())
    else (try Unix.close t.tr_out with Unix.Unix_error _ -> ())

  (* Raw bytes on the wire, bypassing the framing (garbage / partial
     frames only exist below the frame layer). *)
  let send_raw t bytes =
    let len = Bytes.length bytes in
    let off = ref 0 in
    while !off < len do
      off :=
        !off + retry_intr (fun () -> Unix.write t.tr_out bytes !off (len - !off))
    done

  let spend t =
    t.tr_fault <- None;
    fault_spent := true

  let send t frame =
    t.tr_sent <- t.tr_sent + 1;
    match t.tr_fault with
    | Some (Fault_inject.NF_delay s) ->
        Unix.sleepf s;
        write_frame t.tr_out frame
    | Some (Fault_inject.NF_drop n) when t.tr_sent = n -> spend t
    | Some (Fault_inject.NF_garbage n) when t.tr_sent = n ->
        spend t;
        (* An all-ones length prefix decodes far beyond any sane frame
           cap: the peer must fault structurally, not allocate. *)
        send_raw t (Bytes.make 64 '\xff')
    | Some (Fault_inject.NF_half_close n) when t.tr_sent >= n ->
        spend t;
        shutdown_send t
    | Some (Fault_inject.NF_short_write n) when t.tr_sent = n ->
        spend t;
        let b = encode_frame frame in
        send_raw t (Bytes.sub b 0 (min 3 (Bytes.length b)));
        shutdown_send t
    | _ -> write_frame t.tr_out frame

  let recv ?max_frame t = read_frame ?max_frame t.tr_in

  let close t =
    if not t.tr_closed then begin
      t.tr_closed <- true;
      (try Unix.close t.tr_in with Unix.Unix_error _ -> ());
      if not (t.tr_in == t.tr_out) then
        try Unix.close t.tr_out with Unix.Unix_error _ -> ()
    end
end

(* Network fault armed for this worker process via the environment
   (chaos harnesses set it on the worker they start, like
   [Fault_inject.worker_env] for process-level faults).  Honoured once
   per process — see [Transport.fault_spent]. *)
let armed_net_fault () =
  if !Transport.fault_spent then None
  else
    match Sys.getenv_opt Fault_inject.net_env with
    | None | Some "" -> None
    | Some s -> Some (Fault_inject.net_mode_of_string s)

(* ------------------------------------------------------------------ *)
(* TCP plumbing                                                        *)
(* ------------------------------------------------------------------ *)

(* "HOST:PORT" -> socket address.  Numeric hosts only resolve through
   [inet_addr_of_string]; names go through the resolver. *)
let sockaddr_of_string s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg ("address must be HOST:PORT: " ^ s)
  | Some i ->
      let host = String.sub s 0 i in
      let port =
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some p when p >= 0 && p < 65536 -> p
        | _ -> invalid_arg ("bad port in address: " ^ s)
      in
      let addr =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                invalid_arg ("cannot resolve host: " ^ host)
            | h -> h.Unix.h_addr_list.(0)
            | exception Not_found -> invalid_arg ("cannot resolve host: " ^ host))
      in
      (addr, port)

let string_of_sockaddr = function
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

(* Bound + listening TCP socket for a worker pool or /metrics endpoint;
   returns the socket and the actual port (meaningful when the caller
   bound port 0). *)
let listen_socket ?(backlog = 16) addr =
  let ip, port = sockaddr_of_string addr in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (ip, port));
     Unix.listen sock backlog
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (sock, port)

let dial addr =
  let ip, port = sockaddr_of_string addr in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_INET (ip, port))
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  sock

(* ------------------------------------------------------------------ *)
(* Worker loop                                                         *)
(* ------------------------------------------------------------------ *)

(* Can this platform run exec'd shard workers at all?  [Sys.win32] lacks
   the POSIX process control the supervisor needs; PROTEAN_NO_SPAWN=1
   forces the in-process fallback (used to test graceful degradation).
   When unavailable, supervised runs degrade to [Parallel.map]. *)
let can_spawn () =
  (not Sys.win32) && Sys.getenv_opt "PROTEAN_NO_SPAWN" = None

let armed_fault () =
  match Sys.getenv_opt Fault_inject.worker_env with
  | None | Some "" -> None
  | Some s -> Some (Fault_inject.worker_mode_of_string s)

(* Abort the current process the way a real crash would: no OCaml
   cleanup, no flush — the supervisor must cope with the raw pipe
   state. *)
let crash_self signal = Unix.kill (Unix.getpid ()) signal

let inject_before_cell fault out (cell : cell) =
  match fault with
  | Some (Fault_inject.WF_poison n) when n = cell.c_id ->
      (* Leave a half-written frame behind, like a segfault mid-cell. *)
      ignore (Unix.write out (Bytes.of_string "\x00\x00\x01") 0 3);
      crash_self Sys.sigabrt
  | Some Fault_inject.WF_stall ->
      (* Hold the pipe open but go silent; the heartbeat deadline must
         convert this into a kill. *)
      while true do
        Unix.sleepf 3600.0
      done
  | _ -> ()

let inject_after_first_result fault out ~results_sent =
  if results_sent = 1 then
    match fault with
    | Some Fault_inject.WF_kill -> crash_self Sys.sigkill
    | Some Fault_inject.WF_truncate ->
        (* A length prefix promising 256 bytes, then silence. *)
        ignore (Unix.write out (Bytes.of_string "\x00\x00\x01\x00junk") 0 8);
        exit 2
    | _ -> ()

(* Serve work batches on a transport (stdin/stdout of an exec'd worker,
   a pipe pair in tests, or a TCP socket for dial-in workers).
   [compute] resolves a cell key to a result payload; exceptions it
   raises become structured cellfault frames, not worker deaths.
   [jobs] computes each chunk of the batch on that many domains
   ([--shards] composes with [-j]): results are still emitted in batch
   order, and the heartbeat granularity is the chunk.

   Returns [`Exit] when the supervisor sent [F_exit] (campaign over —
   a dial-in worker must not reconnect) and [`Eof] on connection loss
   (a dial-in worker should redial). *)
let serve_transport ?(jobs = 1) ~(compute : string -> Json.t)
    (tr : Transport.t) =
  let fault = armed_fault () in
  let output = tr.Transport.tr_out in
  let results_sent = ref 0 in
  let send frame =
    Transport.send tr frame;
    match frame with
    | F_result _ | F_cellfault _ ->
        incr results_sent;
        inject_after_first_result fault output ~results_sent:!results_sent
    | _ -> ()
  in
  let compute_cell (cell : cell) =
    match compute cell.c_key with
    | r -> F_result (cell.c_id, r)
    | exception e ->
        F_cellfault { fc_id = cell.c_id; fc_reason = Printexc.to_string e }
  in
  let run_batch cells =
    let rec chunks = function
      | [] -> ()
      | cells ->
          let chunk, rest =
            let rec take k = function
              | x :: xs when k > 0 ->
                  let a, b = take (k - 1) xs in
                  (x :: a, b)
              | xs -> ([], xs)
            in
            take (max 1 jobs) cells
          in
          List.iter (fun c -> inject_before_cell fault output c) chunk;
          (match chunk with
          | c :: _ -> send (F_hb c.c_id)
          | [] -> ());
          let frames =
            if jobs <= 1 then List.map compute_cell chunk
            else
              Array.to_list
                (Parallel.map ~jobs
                   (Array.of_list (List.map (fun c () -> compute_cell c) chunk)))
          in
          List.iter send frames;
          chunks rest
    in
    chunks cells;
    send F_done
  in
  let rec loop () =
    match Transport.recv tr with
    | None -> `Eof
    | Some F_exit -> `Exit
    | Some (F_work cells) ->
        run_batch cells;
        loop ()
    | Some _ -> loop () (* supervisor-bound frames are ignored here *)
  in
  loop ()

let serve ?jobs ~compute input output =
  ignore
    (serve_transport ?jobs ~compute (Transport.of_fds ~input ~output ()))

(* Entry point for a CLI's [--worker] mode: speak the protocol on
   stdin/stdout and route every diagnostic line through log frames. *)
let worker_main ?jobs ~compute () =
  ignore_sigpipe ();
  let stdout_fd = Unix.stdout in
  Experiment.set_line_sink (fun line -> write_frame stdout_fd (F_log line));
  serve ?jobs ~compute Unix.stdin stdout_fd

(* ------------------------------------------------------------------ *)
(* Dial-in worker (TCP pool member)                                    *)
(* ------------------------------------------------------------------ *)

(* Entry point for a CLI's [--connect HOST:PORT] mode: dial a
   [--listen]ing supervisor, authenticate with the campaign token,
   serve batches, and redial (up to [reconnect] extra attempts) if the
   connection drops before the supervisor says [F_exit].  The reconnect
   path is what turns a network blip — or an injected transport fault
   on our own side — into a re-dispatched lease instead of a lost
   campaign.

   Redials pace themselves with exponential backoff and decorrelated
   jitter: each sleep is drawn uniformly from [backoff, 3 * previous],
   capped at [backoff_cap].  A fleet of workers redialing a restarted
   supervisor therefore spreads out instead of thundering in lockstep
   at fixed multiples of [backoff] — and no worker ever waits more than
   the cap, however many attempts it has made.

   Raises [Failure] if the supervisor rejects the handshake (wrong
   token or protocol version: redialing would be rejected again). *)
let connect_worker ?jobs ?(reconnect = 5) ?(backoff = 0.2)
    ?(backoff_cap = 5.0) ~addr ~token ~compute () =
  ignore_sigpipe ();
  let session () =
    let sock = dial addr in
    let tr =
      Transport.of_fds ~desc:addr ?fault:(armed_net_fault ()) ~input:sock
        ~output:sock ()
    in
    let finish r = Transport.close tr; r in
    (* The handshake bypasses fault injection ([write_frame], not
       [Transport.send]): chaos targets the campaign stream, and an
       unauthenticated connection holds no lease to re-dispatch. *)
    match
      write_frame sock (F_hello { h_version = protocol_version; h_token = token });
      read_frame sock
    with
    | Some (F_welcome _) ->
        (* Diagnostics from [compute] flow to the supervisor's run log;
           once the link is gone they are dropped, not fatal. *)
        Experiment.set_line_sink (fun line ->
            try Transport.send tr (F_log line) with _ -> ());
        let r = (try serve_transport ?jobs ~compute tr with
                 | Unix.Unix_error _ | Protocol _ | Json.Parse _ -> `Eof)
        in
        finish r
    | Some (F_reject reason) ->
        ignore (finish ());
        failwith ("supervisor rejected worker: " ^ reason)
    | Some _ | None -> finish `Eof
    | exception (Unix.Unix_error _ | Protocol _ | Json.Parse _) ->
        finish `Eof
  in
  (* Jitter only perturbs wall-clock pacing, never campaign output, so
     the state seeds itself (pid + clock) rather than touching the
     global [Random] sequence deterministic runs rely on. *)
  let rng =
    Random.State.make
      [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |]
  in
  let pause prev =
    let hi = Float.min backoff_cap (prev *. 3.) in
    let s =
      if hi <= backoff then backoff
      else backoff +. Random.State.float rng (hi -. backoff)
    in
    Unix.sleepf s;
    s
  in
  let rec attempt n prev =
    match session () with
    | `Exit -> ()
    | `Eof -> if n < reconnect then attempt (n + 1) (pause prev)
    | exception (Unix.Unix_error _ as e) ->
        (* Dial failure: the supervisor may not be listening yet. *)
        if n < reconnect then attempt (n + 1) (pause prev) else raise e
  in
  attempt 0 backoff
