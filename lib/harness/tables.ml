(* Generators for the paper's results tables.

   Each function regenerates one table of the evaluation from fresh
   simulations (Section VIII/IX); `~benches` narrows the benchmark set
   (the artifact's --bench flag), and the bench harness uses the same
   entry points with scaled-down inputs. *)

open Protean_isa
module E = Experiment
module Suite = Protean_workloads.Suite
module Protcc = Protean_protcc.Protcc
module Config = Protean_ooo.Config
module Defense = Protean_defense.Defense
module Twindow = Protean_telemetry.Window

let fmt_norm v = Printf.sprintf "%.3f" v

let filter_benches names benches =
  match names with
  | None -> benches
  | Some ns -> List.filter (fun (b : Suite.benchmark) -> List.mem b.Suite.name ns) benches

(* The (baseline, pass) pairing per class, per Table I/IV/V. *)
let class_rows =
  [
    (Program.Arch, E.cfg_stt, Protcc.P_arch);
    (Program.Cts, E.cfg_spt, Protcc.P_cts);
    (Program.Ct, E.cfg_spt, Protcc.P_ct);
    (Program.Unr, E.cfg_spt_sb, Protcc.P_unr);
  ]

(* ------------------------------------------------------------------ *)
(* Table IV: geomean normalized runtimes on SPEC2017 and PARSEC for    *)
(* all eight PROTEAN single-class configurations and their baselines.  *)
(* ------------------------------------------------------------------ *)

let table_iv ?benches session =
  let spec = filter_benches benches Suite.spec2017 in
  let parsec = filter_benches benches Suite.parsec in
  let geo benches cfg config =
    E.geomean (List.map (fun b -> E.normalized session ~config b cfg) benches)
  in
  Format.printf
    "Table IV: geomean normalized runtime (SPEC2017 P/E-core, PARSEC)@.@.";
  List.iter
    (fun (klass, baseline, pass) ->
      let delay = E.protean_cfg `Delay pass in
      let track = E.protean_cfg `Track pass in
      Format.printf "-- class %s --@." (Program.string_of_klass klass);
      Textplot.table
        ~header:[ ""; baseline.E.label; delay.E.label; track.E.label ]
        [
          [
            "SPEC2017 P-core";
            fmt_norm (geo spec baseline Config.p_core);
            fmt_norm (geo spec delay Config.p_core);
            fmt_norm (geo spec track Config.p_core);
          ];
          [
            "SPEC2017 E-core";
            fmt_norm (geo spec baseline Config.e_core);
            fmt_norm (geo spec delay Config.e_core);
            fmt_norm (geo spec track Config.e_core);
          ];
          [
            "PARSEC";
            fmt_norm (geo parsec baseline Config.p_core);
            fmt_norm (geo parsec delay Config.p_core);
            fmt_norm (geo parsec track Config.p_core);
          ];
        ];
      Format.printf "@.")
    class_rows

(* ------------------------------------------------------------------ *)
(* Table V: per-benchmark normalized runtimes for the single-class     *)
(* suites and multi-class nginx, on a P-core.                          *)
(* ------------------------------------------------------------------ *)

let suite_rows =
  [
    ("ARCH-Wasm", Suite.arch_wasm, E.cfg_stt, Some Protcc.P_arch);
    ("CTS-Crypto", Suite.cts_crypto, E.cfg_spt, Some Protcc.P_cts);
    ("CT-Crypto", Suite.ct_crypto, E.cfg_spt, Some Protcc.P_ct);
    ("UNR-Crypto", Suite.unr_crypto, E.cfg_spt_sb, Some Protcc.P_unr);
    ("Multi-Class Web Server", Suite.nginx, E.cfg_spt_sb, None);
  ]

let protean_cfgs_for pass =
  match pass with
  | Some p -> (E.protean_cfg `Delay p, E.protean_cfg `Track p)
  | None -> (E.protean_multiclass `Delay, E.protean_multiclass `Track)

let table_v ?benches session =
  Format.printf
    "Table V: normalized runtime on single-class and multi-class workloads \
     (P-core)@.@.";
  List.iter
    (fun (suite_name, suite, baseline, pass) ->
      let suite = filter_benches benches suite in
      if suite <> [] then begin
        let delay, track = protean_cfgs_for pass in
        let multiclass = pass = None in
        let rows =
          List.map
            (fun (b : Suite.benchmark) ->
              [
                b.Suite.name;
                fmt_norm (E.normalized session b baseline);
                fmt_norm (E.normalized session ~multiclass b delay);
                fmt_norm (E.normalized session ~multiclass b track);
              ])
            suite
        in
        let geo cfg multiclass =
          E.geomean
            (List.map
               (fun b ->
                 E.normalized session ~multiclass b cfg)
               suite)
        in
        let rows =
          rows
          @ [
              [
                "geomean";
                fmt_norm (geo baseline false);
                fmt_norm (geo delay multiclass);
                fmt_norm (geo track multiclass);
              ];
            ]
        in
        Format.printf "-- %s --@." suite_name;
        Textplot.table
          ~header:[ "benchmark"; baseline.E.label; "PROTEAN-Delay"; "PROTEAN-Track" ]
          rows;
        Format.printf "@."
      end)
    suite_rows

(* ------------------------------------------------------------------ *)
(* Table I: the overhead summary by targeted class.                    *)
(* ------------------------------------------------------------------ *)

let pct v = Printf.sprintf "%.0f%%" ((v -. 1.0) *. 100.0)

let table_i ?benches session =
  Format.printf
    "Table I: runtime overhead of securing each vulnerable-code class with \
     the most performant defense that secures it@.@.";
  let geo_suite suite cfg multiclass =
    let suite = filter_benches benches suite in
    E.geomean (List.map (fun b -> E.normalized session ~multiclass b cfg) suite)
  in
  let rows =
    List.map
      (fun (suite_name, suite, baseline, pass) ->
        let suite' = filter_benches benches suite in
        if suite' = [] then [ suite_name; "-"; "-"; "-" ]
        else
          let delay, track = protean_cfgs_for pass in
          let multiclass = pass = None in
          [
            suite_name;
            pct (geo_suite suite baseline false);
            pct (geo_suite suite delay multiclass);
            pct (geo_suite suite track multiclass);
          ])
      suite_rows
  in
  Textplot.table
    ~header:[ "class"; "best secure baseline"; "PROTEAN-Delay"; "PROTEAN-Track" ]
    rows;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Width sweep: defense stall attribution across issue widths on the   *)
(* structural-port core ([Config.with_width]).                         *)
(* ------------------------------------------------------------------ *)

let width_sweep_widths = [ 1; 2; 4; 6; 8 ]

(* Bench × instrumentation pairs proven in the golden corpus; each
   delay-style cell uses the pass already exercised for it there. *)
let width_sweep_benches =
  [
    ("bearssl", Protcc.P_ct);
    ("hacl.poly1305", Protcc.P_cts);
    ("ossl.bnexp", Protcc.P_unr);
  ]

(* STT needs no instrumentation pass and only bites on workloads with
   tainted speculative transmitters; lbm is the corpus's strongest. *)
let width_sweep_stt_benches = [ "bearssl"; "ossl.bnexp"; "lbm" ]

let width_sweep ?benches ?widths session =
  let widths = Option.value widths ~default:width_sweep_widths in
  let picked =
    match benches with
    | None -> width_sweep_benches
    | Some ns -> List.filter (fun (n, _) -> List.mem n ns) width_sweep_benches
  in
  let picked_stt =
    match benches with
    | None -> width_sweep_stt_benches
    | Some ns -> List.filter (fun n -> List.mem n ns) width_sweep_stt_benches
  in
  Format.printf
    "Width sweep: stall attribution vs issue width (test core rescaled by \
     Config.with_width; structural = no-free-port + CDB-deferral \
     entry-cycles, protection = transmitter + wakeup + resolution \
     entry-cycles; shares are per simulated cycle, geomean runtime is \
     vs unsafe at the same width)@.@.";
  let pct num den =
    if den = 0 then "0.00%"
    else Printf.sprintf "%.2f%%" (100.0 *. float_of_int num /. float_of_int den)
  in
  let sweep label cells =
    let rows =
      List.map
        (fun w ->
          let config = Config.with_width w Config.test_core in
          let cycles = ref 0 in
          let structural = ref 0 in
          let protection = ref 0 in
          let norms =
            List.map
              (fun (name, dcfg) ->
                let b = Suite.find name in
                let r = E.run session (E.spec ~config b dcfg) in
                let u = E.run session (E.spec ~config b E.cfg_unsafe) in
                List.iter
                  (fun (st : Protean_ooo.Stats.t) ->
                    let open Protean_ooo.Stats in
                    cycles := !cycles + st.cycles;
                    structural :=
                      !structural + st.port_structural_stall_cycles
                      + st.wb_queue_stall_cycles;
                    protection :=
                      !protection + st.transmitter_stall_cycles
                      + st.wakeup_delay_cycles + st.resolution_delay_cycles)
                  r.E.stats;
                r.E.cycles /. u.E.cycles)
              cells
          in
          [
            string_of_int w;
            fmt_norm (E.geomean norms);
            pct !protection !cycles;
            pct !structural !cycles;
            string_of_int !protection;
            string_of_int !structural;
          ])
        widths
    in
    Format.printf "-- %s --@." label;
    Textplot.table
      ~header:
        [
          "width"; "norm runtime"; "prot-stall share"; "struct-stall share";
          "prot cycles"; "struct cycles";
        ]
      rows;
    Format.printf "@."
  in
  let with_pass mech = List.map (fun (n, p) -> (n, E.protean_cfg mech p)) picked in
  sweep "PROTEAN-Delay" (with_pass `Delay);
  sweep "PROTEAN-Track" (with_pass `Track);
  sweep "STT" (List.map (fun n -> (n, E.cfg_stt)) picked_stt)

(* ------------------------------------------------------------------ *)
(* Table II: AMuLeT* contract violations.                              *)
(* ------------------------------------------------------------------ *)

module Fuzz = Protean_amulet.Fuzz
module Gen = Protean_amulet.Gen

type fuzz_row = {
  contract : string;
  instrumentation : string;
  campaign : Fuzz.campaign;
}

let fuzz_rows ~programs ~inputs =
  let base c = { Fuzz.default_campaign with Fuzz.programs; inputs_per_program = inputs; seed = 7; adversary = c } in
  let with_adv c = base c in
  List.concat_map
    (fun adversary ->
      [
        {
          contract = "UNPROT-SEQ";
          instrumentation = "ProtCC-RAND";
          campaign =
            {
              (with_adv adversary) with
              Fuzz.mode_of = Fuzz.unprot_seq;
              (* ARCH-style generation: architecturally secret-free, so
                 the random PROT prefixes do not expose secret data and
                 test pairs stay contract-equivalent — the transient
                 gadget leaks are what the contract must catch. *)
              gen_klass = Gen.G_arch;
              instrumentation = Fuzz.I_pass (Protcc.P_rand (11, 0.5));
            };
        };
        {
          contract = "ARCH-SEQ";
          instrumentation = "ProtCC-ARCH";
          campaign =
            {
              (with_adv adversary) with
              Fuzz.mode_of = Fuzz.arch_seq;
              gen_klass = Gen.G_arch;
              instrumentation = Fuzz.I_none;
            };
        };
        {
          contract = "CTS-SEQ";
          instrumentation = "ProtCC-CTS";
          campaign =
            {
              (with_adv adversary) with
              Fuzz.mode_of = Fuzz.cts_seq;
              gen_klass = Gen.G_ct;
              instrumentation = Fuzz.I_pass Protcc.P_cts;
            };
        };
        {
          contract = "CT-SEQ";
          instrumentation = "ProtCC-CT";
          campaign =
            {
              (with_adv adversary) with
              Fuzz.mode_of = Fuzz.ct_seq;
              gen_klass = Gen.G_ct;
              instrumentation = Fuzz.I_pass Protcc.P_ct;
            };
        };
        {
          contract = "CT-SEQ";
          instrumentation = "ProtCC-UNR";
          campaign =
            {
              (with_adv adversary) with
              Fuzz.mode_of = Fuzz.ct_seq;
              gen_klass = Gen.G_unr;
              instrumentation = Fuzz.I_pass Protcc.P_unr;
            };
        };
      ])
    [ Fuzz.Cache_tlb; Fuzz.Timing ]

(* Merge the two adversaries' outcomes per (contract, pass) row, like the
   paper's Table II. *)
let table_ii ?(jobs = 1) ?(programs = 10) ?(inputs = 4) () =
  Format.printf
    "Table II: AMuLeT*-detected contract violations (true positives, false \
     positives in parentheses)@.@.";
  let rows = fuzz_rows ~programs ~inputs in
  let defenses =
    [ ("Unsafe", Defense.unsafe); ("ProtDelay", Defense.prot_delay); ("ProtTrack", Defense.prot_track) ]
  in
  (* fold both adversaries per (contract,instrumentation) *)
  let keys =
    List.sort_uniq compare (List.map (fun r -> (r.contract, r.instrumentation)) rows)
  in
  let cells =
    List.map
      (fun (contract, instr) ->
        let rs = List.filter (fun r -> r.contract = contract && r.instrumentation = instr) rows in
        let per_defense =
          List.map
            (fun (_, d) ->
              let totals =
                List.map (fun r -> Parallel.fuzz_run ~jobs r.campaign d) rs
              in
              let v = List.fold_left (fun a o -> a + o.Fuzz.violations) 0 totals in
              let fp = List.fold_left (fun a o -> a + o.Fuzz.false_positives) 0 totals in
              Printf.sprintf "%d (%d)" v fp)
            defenses
        in
        (contract, instr, per_defense))
      keys
  in
  Textplot.table
    ~header:([ "contract"; "instrumentation" ] @ List.map fst defenses)
    (List.map (fun (c, i, cs) -> c :: i :: cs) cells);
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Over-protection audit                                               *)
(* ------------------------------------------------------------------ *)

(* Interventions charged to windows that never leaked (resolved on the
   correct path, flushed before retiring anything, or mispredicted but
   with no tainted transmitter under them) ÷ all interventions, per
   defense × benchmark.  A high ratio means the defense spends most of
   its cost guarding speculation that could not have leaked — the
   headroom a programmable policy can reclaim.  Needs the
   speculation-window ledger: the CLI flips [E.collect_window] for this
   target, so cached cells carry their window counters. *)
let over_protection ?benches session =
  Format.printf
    "Over-protection audit: defense interventions charged to \
     never-leaking speculation windows (benign) vs windows that leaked \
     (mispredicted with a tainted transmitter); ratio = benign / total, \
     '-' when the defense never intervened@.@.";
  (* Per-defense cell lists, mirroring the width sweep's pairings: the
     delay mechanism bites where ProtCC marked transmitters (its proven
     (bench, pass) pairs), STT where tainted speculative transmitters
     exist (lbm is the corpus's strongest); unsafe runs the union as the
     zero-intervention control. *)
  let keep cells =
    match benches with
    | None -> cells
    | Some ns -> List.filter (fun (n, _) -> List.mem n ns) cells
  in
  let delay_cells =
    List.map (fun (n, p) -> (n, E.protean_cfg `Delay p)) width_sweep_benches
  in
  let stt_cells =
    List.map (fun n -> (n, E.cfg_stt)) width_sweep_stt_benches
  in
  let unsafe_cells =
    List.map (fun (n, _) -> (n, E.cfg_unsafe))
      (List.sort_uniq compare
         (List.map (fun (n, _) -> (n, ())) (delay_cells @ stt_cells)))
  in
  let defenses =
    [
      ("unsafe", keep unsafe_cells);
      ("STT", keep stt_cells);
      ("PROT-Delay", keep delay_cells);
    ]
  in
  let rows =
    List.concat_map
      (fun (dlabel, cells) ->
        let total = ref [] in
        let cells =
          List.map
            (fun (name, dcfg) ->
              let b = Suite.find name in
              let r = E.run session (E.spec b dcfg) in
              total := Twindow.merge_counters !total r.E.window;
              let c k = Twindow.counter k r.E.window in
              let benign = c "interventions_benign" in
              let leaky = c "interventions_leaky" in
              [
                dlabel;
                name;
                string_of_int (c "windows_opened");
                string_of_int (c "windows_leaky");
                string_of_int benign;
                string_of_int leaky;
                (match Twindow.over_protection r.E.window with
                | None -> "-"
                | Some ratio -> fmt_norm ratio);
              ])
            cells
        in
        let c k = Twindow.counter k !total in
        cells
        @ [
            [
              dlabel;
              "TOTAL";
              string_of_int (c "windows_opened");
              string_of_int (c "windows_leaky");
              string_of_int (c "interventions_benign");
              string_of_int (c "interventions_leaky");
              (match Twindow.over_protection !total with
              | None -> "-"
              | Some ratio -> fmt_norm ratio);
            ];
          ])
      defenses
  in
  Textplot.table
    ~header:
      [
        "defense"; "bench"; "windows"; "leaky"; "interv benign";
        "interv leaky"; "over-protection";
      ]
    rows;
  Format.printf "@."
