(* Crash-isolated multi-process shard supervisor.

   [run] shards a deterministic cell list across N worker processes
   (exec'd copies of the current CLI in [--worker] mode, speaking
   {!Shard}'s length-prefixed JSON frame protocol on stdin/stdout) and
   owns robustness end-to-end:

   - liveness: per-worker heartbeat deadlines (no frame for
     [heartbeat] seconds) and a wall-clock budget per spawn; an expired
     worker is SIGKILLed and its *uncompleted* cells requeued — results
     streamed before the kill are kept;
   - retry: a failed shard (crash, kill, protocol corruption) is
     re-spawned with exponential backoff;
   - bisection: a shard that keeps failing is split in half until the
     failure is isolated to a single cell, which is reported as a
     structured fault — in the style of [Pipeline.Sim_fault] — instead
     of crashing the run, while every other cell completes;
   - checkpointing: completed cells are persisted per origin shard in
     atomic (write-to-temp + rename) JSON files, merged
     deterministically by cell id, so a killed *supervisor* resumes and
     the merged output is byte-identical to a serial run;
   - degradation: when processes cannot be spawned (Windows,
     PROTEAN_NO_SPAWN=1, exec failure) the whole batch falls back to
     in-process [Parallel.map].

   Shard lifecycle (spawn / heartbeat / retry / bisect / kill / poison)
   is surfaced through the same observer pattern as the pipeline's hook
   bus ([Protean_ooo.Hooks]): typed events, subscribers in registration
   order, so run-log tooling needs no supervisor-code changes. *)

module Fault_inject = Protean_defense.Fault_inject
module Json = Shard.Json
module Http_listener = Protean_telemetry.Http_listener

(* ------------------------------------------------------------------ *)
(* Lifecycle event bus                                                 *)
(* ------------------------------------------------------------------ *)

type event =
  | Spawn of { shard : int; attempt : int; pid : int option; cells : int }
  | Heartbeat of { shard : int; cell : int }
  | Cell_done of { shard : int; cell : int }
  | Cell_fault of { shard : int; cell : int; reason : string }
  | Worker_log of { shard : int; line : string }
  | Worker_stderr of { shard : int; line : string }
  | Kill of { shard : int; reason : string }
  | Worker_exit of { shard : int; status : string; ok : bool }
  | Retry of { shard : int; attempt : int; delay : float }
  | Bisect of { shard : int; left : int; right : int }
  | Poisoned of { cell : int; key : string; attempts : int; reason : string }
  | Checkpoint_loaded of { cells : int }
  | Fallback of { reason : string }
  | Merged of { cells : int; faults : int }
  (* TCP worker-pool lifecycle ([run_pool]): *)
  | Listening of { addr : string; port : int }
  | Worker_connected of { worker : int; peer : string }
  | Worker_rejected of { peer : string; reason : string }
  | Lease_granted of { shard : int; worker : int; cells : int; attempt : int }
  | Worker_disconnected of { worker : int; reason : string }

type subscriber = { s_name : string; s_handler : event -> unit }
type bus = { mutable subs : subscriber array }

let create_bus () = { subs = [||] }

let subscribe bus ~name handler =
  bus.subs <- Array.append bus.subs [| { s_name = name; s_handler = handler } |]

let unsubscribe bus name =
  bus.subs <-
    Array.of_list
      (List.filter (fun s -> s.s_name <> name) (Array.to_list bus.subs))

let emit bus ev = Array.iter (fun s -> s.s_handler ev) bus.subs

let event_to_string = function
  | Spawn { shard; attempt; pid; cells } ->
      Printf.sprintf "shard %d: spawn attempt %d (%s) for %d cells" shard
        attempt
        (match pid with Some p -> "pid " ^ string_of_int p | None -> "in-proc")
        cells
  | Heartbeat { shard; cell } ->
      Printf.sprintf "shard %d: heartbeat at cell %d" shard cell
  | Cell_done { shard; cell } -> Printf.sprintf "shard %d: cell %d done" shard cell
  | Cell_fault { shard; cell; reason } ->
      Printf.sprintf "shard %d: cell %d faulted in-process: %s" shard cell reason
  | Worker_log { shard; line } -> Printf.sprintf "shard %d: %s" shard line
  | Worker_stderr { shard; line } ->
      Printf.sprintf "shard %d (stderr): %s" shard line
  | Kill { shard; reason } -> Printf.sprintf "shard %d: killed (%s)" shard reason
  | Worker_exit { shard; status; ok } ->
      Printf.sprintf "shard %d: exited %s (%s)" shard status
        (if ok then "ok" else "failed")
  | Retry { shard; attempt; delay } ->
      Printf.sprintf "shard %d: retry attempt %d after %.2fs backoff" shard
        attempt delay
  | Bisect { shard; left; right } ->
      Printf.sprintf "shard %d: bisected into %d + %d cells" shard left right
  | Poisoned { cell; key; attempts; reason } ->
      Printf.sprintf "cell %d poisoned after %d attempts (%s): %s" cell attempts
        key reason
  | Checkpoint_loaded { cells } ->
      Printf.sprintf "resumed %d cells from checkpoints" cells
  | Fallback { reason } -> Printf.sprintf "in-process fallback: %s" reason
  | Merged { cells; faults } ->
      Printf.sprintf "merged %d cells (%d faulted)" cells faults
  | Listening { addr; port } ->
      Printf.sprintf "worker pool listening on %s (port %d)" addr port
  | Worker_connected { worker; peer } ->
      Printf.sprintf "worker %d connected from %s" worker peer
  | Worker_rejected { peer; reason } ->
      Printf.sprintf "connection from %s rejected: %s" peer reason
  | Lease_granted { shard; worker; cells; attempt } ->
      Printf.sprintf "lease %d (attempt %d, %d cells) granted to worker %d"
        shard attempt cells worker
  | Worker_disconnected { worker; reason } ->
      Printf.sprintf "worker %d disconnected: %s" worker reason

(* Run-log subscriber: serialized through the experiment-layer line sink
   so supervisor lines never interleave with in-process fill output. *)
let logger ?(quiet_heartbeat = true) () =
  fun ev ->
    match ev with
    | Heartbeat _ when quiet_heartbeat -> ()
    | Cell_done _ -> ()
    | Worker_log { line; _ } -> Experiment.log_line "%s" line
    | Worker_stderr { shard; line } ->
        Experiment.log_line "[shard %d] %s" shard line
    | ev -> Experiment.log_line "[supervisor] %s" (event_to_string ev)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  shards : int;
  heartbeat : float; (* s without any frame before a worker is killed *)
  wall : float; (* s per spawn before a worker is killed *)
  max_attempts : int; (* failures of one shard before bisect/poison *)
  backoff : float; (* base retry delay, doubled per attempt *)
  checkpoint_dir : string option;
  inject : Fault_inject.worker_mode option;
}

let default_config =
  {
    shards = 2;
    heartbeat = 120.0;
    wall = 3600.0;
    max_attempts = 2;
    backoff = 0.25;
    checkpoint_dir = None;
    inject = None;
  }

(* Worker-pool mode ([run_pool]): instead of exec'ing local workers the
   supervisor listens on TCP and remote workers dial in, so a campaign
   spans machines.  [cfg.shards] then bounds the number of in-flight
   *leases* (work batches), not processes.  Dial-in connections must
   present the campaign [token] and a matching protocol version before
   they are leased any work. *)
type pool_config = {
  pl_listen : string; (* HOST:PORT to bind; port 0 picks one *)
  pl_token : string; (* shared campaign secret for the handshake *)
  pl_accept_wall : float;
      (* s with work pending but no workers connected before the
         campaign degrades to the in-process fallback *)
}

let default_pool_config =
  { pl_listen = "127.0.0.1:0"; pl_token = "protean"; pl_accept_wall = 60.0 }

type outcome =
  | O_ok of Json.t
  | O_fault of { f_key : string; f_attempts : int; f_reason : string }
      (* the structured record a poisoned cell resolves to *)

(* ------------------------------------------------------------------ *)
(* Worker transports                                                   *)
(* ------------------------------------------------------------------ *)

(* The process-management half is abstracted so tests can drive the
   supervisor with in-process (domain-backed) workers while production
   uses fork/exec. *)
type transport = {
  t_pid : int option;
  t_read : Unix.file_descr; (* frames from the worker *)
  t_write : Unix.file_descr; (* frames to the worker *)
  t_err : Unix.file_descr option; (* the worker's raw stderr *)
  t_kill : unit -> unit;
  t_wait : unit -> string * bool; (* reap; (status text, clean exit) *)
}

(* OCaml's [Sys] signal numbers are its own encoding (negative for the
   portable set); name the ones workers actually die of. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else string_of_int s

let status_to_string = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "signal %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %s" (signal_name s)

(* Spawn [argv] (normally this executable with [--worker]) with frame
   pipes on its stdin/stdout and a captured stderr. *)
let spawn_exec ~argv ~env_fault : transport =
  let to_worker_r, to_worker_w = Unix.pipe ~cloexec:false () in
  let from_worker_r, from_worker_w = Unix.pipe ~cloexec:false () in
  let err_r, err_w = Unix.pipe ~cloexec:false () in
  let env =
    let base =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not
               (String.length kv > String.length Fault_inject.worker_env
               && String.sub kv 0 (String.length Fault_inject.worker_env + 1)
                  = Fault_inject.worker_env ^ "="))
    in
    match env_fault with
    | None -> Array.of_list base
    | Some m ->
        Array.of_list ((Fault_inject.worker_env ^ "=" ^ m) :: base)
  in
  let pid =
    Unix.create_process_env argv.(0) argv env to_worker_r from_worker_w err_w
  in
  Unix.close to_worker_r;
  Unix.close from_worker_w;
  Unix.close err_w;
  {
    t_pid = Some pid;
    t_read = from_worker_r;
    t_write = to_worker_w;
    t_err = Some err_r;
    t_kill =
      (fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    t_wait =
      (fun () ->
        let _, status = Unix.waitpid [] pid in
        (status_to_string status, status = Unix.WEXITED 0));
  }

(* Build the argv for re-exec'ing the current CLI as a shard worker:
   the original command line minus supervisor-only flags (so the
   worker's discovery pass enumerates exactly the same cells), plus
   [--worker].  Flags in [drop] are removed together with their
   separate-token value; [--flag=value] spellings too. *)
let self_worker_argv ~drop () =
  let rec filter = function
    | [] -> []
    | tok :: rest when List.mem tok drop -> (
        match rest with _ :: rest' -> filter rest' | [] -> [])
    | tok :: rest
      when List.exists
             (fun d ->
               let dl = String.length d in
               String.length tok > dl + 1 && String.sub tok 0 (dl + 1) = d ^ "=")
             drop ->
        filter rest
    | tok :: rest -> tok :: filter rest
  in
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> filter rest
    | [] -> []
  in
  Array.of_list ((Sys.executable_name :: args) @ [ "--worker" ])

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

module Checkpoint = struct
  let path dir origin = Filename.concat dir (Printf.sprintf "shard-%d.json" origin)

  let rec ensure_dir dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
    then begin
      ensure_dir (Filename.dirname dir);
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  (* Atomic per-shard save: a kill mid-write leaves the previous file
     intact, never a truncated one. *)
  let save dir origin (completed : (int * string * Json.t) list) =
    ensure_dir dir;
    let file = path dir origin in
    let tmp = file ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Json.to_string
             (Json.List
                (List.map
                   (fun (id, key, r) ->
                     Json.Obj
                       [ ("id", Json.Int id); ("key", Json.Str key); ("r", r) ])
                   completed)));
        output_char oc '\n');
    Sys.rename tmp file

  (* Load every shard-*.json in [dir]; entries whose (id, key) no longer
     match the current cell list are ignored (a stale checkpoint from a
     different grid must not poison the merge). *)
  let load_all dir (cells : Shard.cell list) =
    if not (Sys.file_exists dir) then []
    else begin
      let key_of = Hashtbl.create 64 in
      List.iter (fun c -> Hashtbl.replace key_of c.Shard.c_id c.Shard.c_key) cells;
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 6
               && String.sub f 0 6 = "shard-"
               && Filename.check_suffix f ".json")
        |> List.sort compare
      in
      List.concat_map
        (fun f ->
          let file = Filename.concat dir f in
          match
            let ic = open_in_bin file in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            Json.of_string (String.trim s)
          with
          | exception _ -> [] (* unreadable/corrupt checkpoint: ignored *)
          | Json.List entries ->
              List.filter_map
                (fun e ->
                  match
                    ( Json.(to_int (member "id" e)),
                      Json.(to_str (member "key" e)) )
                  with
                  | id, key when Hashtbl.find_opt key_of id = Some key ->
                      Some (id, key, Json.member "r" e)
                  | _ -> None
                  | exception _ -> None)
                entries
          | _ -> [])
        files
    end
end

(* ------------------------------------------------------------------ *)
(* The supervision loop                                                *)
(* ------------------------------------------------------------------ *)

type pending = {
  p_shard : int; (* display id *)
  p_origin : int; (* initial shard this work descends from *)
  p_cells : Shard.cell list;
  p_attempt : int;
  p_not_before : float;
}

type active = {
  a_shard : int;
  a_origin : int;
  a_cells : Shard.cell list;
  a_attempt : int;
  a_tr : transport;
  a_dec : Shard.Decoder.t;
  mutable a_errbuf : string;
  mutable a_last : float; (* last frame (liveness) *)
  a_spawned : float;
  mutable a_done : bool; (* F_done received *)
  mutable a_failed : string option; (* kill/protocol failure reason *)
}

let split_shards shards (cells : Shard.cell list) =
  let n = List.length cells in
  let shards = max 1 (min shards n) in
  let arr = Array.of_list cells in
  (* Contiguous ranges: deterministic, and bisection then narrows a
     crashing range monotonically. *)
  List.init shards (fun s ->
      let lo = s * n / shards and hi = (s + 1) * n / shards in
      Array.to_list (Array.sub arr lo (hi - lo)))
  |> List.filter (fun l -> l <> [])

(* Result ledger shared by the pipe supervisor ([run]) and the TCP
   worker pool ([run_pool]): which cells are resolved, the per-origin
   completion lists that back checkpoints, and the final deterministic
   merge.  Commutative bookkeeping — results can arrive from any
   worker in any order and the merge is still byte-identical to a
   serial run. *)
module Ledger = struct
  type t = {
    g_bus : bus;
    g_cells : Shard.cell list;
    g_n : int;
    g_key_of_id : (int, string) Hashtbl.t;
    g_results : (int, outcome) Hashtbl.t;
    g_completed : (int, (int * string * Json.t) list ref) Hashtbl.t;
    g_dir : string option;
    mutable g_faults : int;
  }

  let create ~bus ~checkpoint_dir cells =
    let key_of_id = Hashtbl.create 64 in
    List.iter
      (fun c -> Hashtbl.replace key_of_id c.Shard.c_id c.Shard.c_key)
      cells;
    {
      g_bus = bus;
      g_cells = cells;
      g_n = List.length cells;
      g_key_of_id = key_of_id;
      g_results = Hashtbl.create 64;
      g_completed = Hashtbl.create 8;
      g_dir = checkpoint_dir;
      g_faults = 0;
    }

  let have t id = Hashtbl.mem t.g_results id
  let key_of t id = try Hashtbl.find t.g_key_of_id id with Not_found -> ""

  let record_ok t ~origin id r =
    if not (have t id) then begin
      Hashtbl.replace t.g_results id (O_ok r);
      let lst =
        match Hashtbl.find_opt t.g_completed origin with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.g_completed origin l;
            l
      in
      lst := (id, key_of t id, r) :: !lst
    end

  (* A structured fault is final: no retry or bisection rescues it. *)
  let poison t ~attempts id reason =
    if not (have t id) then begin
      t.g_faults <- t.g_faults + 1;
      let key = key_of t id in
      Hashtbl.replace t.g_results id
        (O_fault { f_key = key; f_attempts = attempts; f_reason = reason });
      emit t.g_bus (Poisoned { cell = id; key; attempts; reason })
    end

  let save_checkpoint t origin =
    match t.g_dir with
    | None -> ()
    | Some dir -> (
        match Hashtbl.find_opt t.g_completed origin with
        | Some l when !l <> [] -> (
            try Checkpoint.save dir origin (List.rev !l)
            with Sys_error _ | Unix.Unix_error _ -> ()
            (* checkpointing is best-effort *))
        | _ -> ())

  let load_checkpoints t =
    match t.g_dir with
    | None -> ()
    | Some dir ->
        let loaded = Checkpoint.load_all dir t.g_cells in
        if loaded <> [] then begin
          List.iter (fun (id, _, r) -> record_ok t ~origin:0 id r) loaded;
          emit t.g_bus (Checkpoint_loaded { cells = List.length loaded })
        end

  let remaining t =
    List.filter (fun c -> not (have t c.Shard.c_id)) t.g_cells

  let finish t =
    emit t.g_bus (Merged { cells = t.g_n; faults = t.g_faults });
    List.map
      (fun c ->
        match Hashtbl.find_opt t.g_results c.Shard.c_id with
        | Some o -> (c.Shard.c_id, o)
        | None ->
            (* Unreachable by construction — every cell is either
               resulted, poisoned, or recomputed by the fallback. *)
            ( c.Shard.c_id,
              O_fault
                {
                  f_key = c.Shard.c_key;
                  f_attempts = 0;
                  f_reason = "supervisor lost track of cell";
                } ))
      t.g_cells
end

(* Failure disposition shared by pipe shards and pool leases: retry
   with exponential backoff while the attempt budget lasts, then
   bisect a multi-cell batch towards the failing cell, and poison a
   single cell that keeps failing. *)
let requeue_failed ~bus ~cfg ~(ledger : Ledger.t) ~pending ~fresh_shard ~now
    ~shard ~origin ~cells ~attempt reason =
  let rest =
    List.filter (fun c -> not (Ledger.have ledger c.Shard.c_id)) cells
  in
  if rest = [] then ()
  else if attempt >= cfg.max_attempts then
    if List.length rest > 1 then begin
      (* Bisect: narrow the crashing batch towards the poisoned cell;
         each half restarts its attempt budget. *)
      let arr = Array.of_list rest in
      let mid = Array.length arr / 2 in
      let left = Array.to_list (Array.sub arr 0 mid) in
      let right = Array.to_list (Array.sub arr mid (Array.length arr - mid)) in
      emit bus
        (Bisect { shard; left = List.length left; right = List.length right });
      let mk cells =
        {
          p_shard = fresh_shard ();
          p_origin = origin;
          p_cells = cells;
          p_attempt = 1;
          p_not_before = now () +. cfg.backoff;
        }
      in
      pending := !pending @ [ mk left; mk right ]
    end
    else Ledger.poison ledger ~attempts:attempt (List.hd rest).Shard.c_id reason
  else begin
    let delay = cfg.backoff *. (2.0 ** float_of_int (attempt - 1)) in
    emit bus (Retry { shard; attempt = attempt + 1; delay });
    pending :=
      !pending
      @ [
          {
            p_shard = shard;
            p_origin = origin;
            p_cells = rest;
            p_attempt = attempt + 1;
            p_not_before = now () +. delay;
          };
        ]
  end

let run ?(bus = create_bus ()) ?spawn ?http (cfg : config)
    ~(worker_argv : string array)
    ~(fallback : Shard.cell list -> (int * Json.t) list)
    (cells : Shard.cell list) : (int * outcome) list =
  Shard.ignore_sigpipe ();
  let ledger = Ledger.create ~bus ~checkpoint_dir:cfg.checkpoint_dir cells in
  let record_ok = Ledger.record_ok ledger in
  let save_checkpoint = Ledger.save_checkpoint ledger in
  let finish () = Ledger.finish ledger in
  let run_fallback reason remaining =
    emit bus (Fallback { reason });
    List.iter (fun (id, r) -> record_ok ~origin:0 id r) (fallback remaining);
    save_checkpoint 0
  in
  if cells = [] then finish ()
  else begin
    (* Resume from per-shard checkpoints, when given. *)
    Ledger.load_checkpoints ledger;
    let remaining = Ledger.remaining ledger in
    if remaining = [] then finish ()
    else if not (Shard.can_spawn ()) then begin
      run_fallback "process spawning unavailable" remaining;
      finish ()
    end
    else begin
      let next_shard = ref 0 in
      let fresh_shard () =
        let s = !next_shard in
        incr next_shard;
        s
      in
      let now () = Unix.gettimeofday () in
      let pending : pending list ref =
        ref
          (List.map
             (fun cs ->
               let s = fresh_shard () in
               {
                 p_shard = s;
                 p_origin = s;
                 p_cells = cs;
                 p_attempt = 1;
                 p_not_before = 0.0;
               })
             (split_shards cfg.shards remaining))
      in
      let active : active list ref = ref [] in
      let aborted = ref None in
      let spawn_one (p : pending) =
        let env_fault =
          match cfg.inject with
          | None -> None
          | Some m ->
              if Fault_inject.worker_mode_persistent m then
                Some (Fault_inject.worker_mode_name m)
              else if p.p_shard = 0 && p.p_attempt = 1 then
                Some (Fault_inject.worker_mode_name m)
              else None
        in
        let tr =
          match spawn with
          | Some f -> f ~shard:p.p_shard ~attempt:p.p_attempt ~env_fault
          | None -> spawn_exec ~argv:worker_argv ~env_fault
        in
        emit bus
          (Spawn
             {
               shard = p.p_shard;
               attempt = p.p_attempt;
               pid = tr.t_pid;
               cells = List.length p.p_cells;
             });
        Shard.write_frame tr.t_write (Shard.F_work p.p_cells);
        active :=
          {
            a_shard = p.p_shard;
            a_origin = p.p_origin;
            a_cells = p.p_cells;
            a_attempt = p.p_attempt;
            a_tr = tr;
            a_dec = Shard.Decoder.create ();
            a_errbuf = "";
            a_last = now ();
            a_spawned = now ();
            a_done = false;
            a_failed = None;
          }
          :: !active
      in
      let requeue (a : active) reason =
        requeue_failed ~bus ~cfg ~ledger ~pending ~fresh_shard ~now
          ~shard:a.a_shard ~origin:a.a_origin ~cells:a.a_cells
          ~attempt:a.a_attempt reason
      in
      let finalize (a : active) =
        active := List.filter (fun x -> x != a) !active;
        (try Unix.close a.a_tr.t_write with Unix.Unix_error _ -> ());
        let status, clean = a.a_tr.t_wait () in
        (try Unix.close a.a_tr.t_read with Unix.Unix_error _ -> ());
        (match a.a_tr.t_err with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        let all_resulted =
          List.for_all (fun c -> Ledger.have ledger c.Shard.c_id) a.a_cells
        in
        let truncated = Shard.Decoder.pending_bytes a.a_dec > 0 in
        let ok =
          a.a_failed = None && a.a_done && clean && all_resulted
          && not truncated
        in
        emit bus (Worker_exit { shard = a.a_shard; status; ok });
        save_checkpoint a.a_origin;
        if not ok then begin
          let reason =
            match a.a_failed with
            | Some r -> r
            | None ->
                if truncated then
                  Printf.sprintf "worker died mid-frame (%s)" status
                else if not (a.a_done && clean) then
                  Printf.sprintf "worker crashed (%s)" status
                else "worker exited without completing its cells"
          in
          requeue a reason
        end
      in
      let kill (a : active) reason =
        emit bus (Kill { shard = a.a_shard; reason });
        a.a_failed <- Some reason;
        a.a_tr.t_kill ();
        finalize a
      in
      let handle_frame (a : active) = function
        | Shard.F_hb cell ->
            emit bus (Heartbeat { shard = a.a_shard; cell })
        | Shard.F_result (id, r) ->
            record_ok ~origin:a.a_origin id r;
            emit bus (Cell_done { shard = a.a_shard; cell = id })
        | Shard.F_cellfault { fc_id; fc_reason } ->
            (* The worker caught the failure itself: a structured fault,
               final immediately — no retry or bisection needed. *)
            Ledger.poison ledger ~attempts:a.a_attempt fc_id fc_reason;
            emit bus
              (Cell_fault { shard = a.a_shard; cell = fc_id; reason = fc_reason })
        | Shard.F_log line -> emit bus (Worker_log { shard = a.a_shard; line })
        | Shard.F_done ->
            a.a_done <- true;
            (* Ask the worker to exit cleanly; EOF follows. *)
            (try Shard.write_frame a.a_tr.t_write Shard.F_exit
             with Unix.Unix_error _ -> ())
        | Shard.F_work _ | Shard.F_exit | Shard.F_hello _ | Shard.F_welcome _
        | Shard.F_reject _ ->
            ()
      in
      let buf = Bytes.create 65536 in
      let drain_err (a : active) =
        match a.a_tr.t_err with
        | None -> ()
        | Some fd -> (
            match Shard.retry_intr (fun () -> Unix.read fd buf 0 (Bytes.length buf)) with
            | 0 -> ()
            | k ->
                a.a_errbuf <- a.a_errbuf ^ Bytes.sub_string buf 0 k;
                let rec lines () =
                  match String.index_opt a.a_errbuf '\n' with
                  | Some i ->
                      let line = String.sub a.a_errbuf 0 i in
                      a.a_errbuf <-
                        String.sub a.a_errbuf (i + 1)
                          (String.length a.a_errbuf - i - 1);
                      if line <> "" then
                        emit bus (Worker_stderr { shard = a.a_shard; line });
                      lines ()
                  | None -> ()
                in
                lines ()
            | exception Unix.Unix_error _ -> ())
      in
      (try
         while (!pending <> [] || !active <> []) && !aborted = None do
           let t = now () in
           (* Spawn what is due, up to the concurrency cap. *)
           let due, later =
             List.partition (fun p -> p.p_not_before <= t) !pending
           in
           let slots = cfg.shards - List.length !active in
           let to_spawn, back =
             let rec take k = function
               | x :: xs when k > 0 ->
                   let a, b = take (k - 1) xs in
                   (x :: a, b)
               | xs -> ([], xs)
             in
             take (max 0 slots) due
           in
           pending := back @ later;
           (try List.iter spawn_one to_spawn
            with e ->
              (* exec failed: degrade to in-process execution for
                 everything not yet computed. *)
              List.iter (fun (a : active) -> a.a_tr.t_kill ()) !active;
              List.iter (fun (a : active) -> ignore (a.a_tr.t_wait ())) !active;
              active := [];
              pending := [];
              aborted := Some (Printexc.to_string e));
           if !aborted = None then begin
             (* Deadlines. *)
             List.iter
               (fun (a : active) ->
                 if t -. a.a_last > cfg.heartbeat then
                   kill a
                     (Printf.sprintf "heartbeat deadline (%.0fs) expired"
                        cfg.heartbeat)
                 else if t -. a.a_spawned > cfg.wall then
                   kill a
                     (Printf.sprintf "wall-clock budget (%.0fs) expired" cfg.wall))
               (List.filter (fun a -> a.a_failed = None) !active);
             (* Wait for frames (and, when live-scraping is enabled,
                /metrics requests on the same select). *)
             let http_fds =
               match http with Some h -> Http_listener.fds h | None -> []
             in
             let fds =
               List.concat_map
                 (fun (a : active) ->
                   a.a_tr.t_read
                   :: (match a.a_tr.t_err with Some e -> [ e ] | None -> []))
                 !active
               @ http_fds
             in
             let timeout =
               let next_deadline =
                 List.fold_left
                   (fun acc (a : active) ->
                     min acc
                       (min (a.a_last +. cfg.heartbeat) (a.a_spawned +. cfg.wall)))
                   infinity !active
               in
               let next_spawn =
                 List.fold_left
                   (fun acc p -> min acc p.p_not_before)
                   infinity !pending
               in
               let dt = min next_deadline next_spawn -. now () in
               if dt = infinity then 0.5 else Float.max 0.01 (Float.min dt 0.5)
             in
             if fds = [] then (if !pending <> [] then Unix.sleepf timeout)
             else begin
               match
                 Shard.retry_intr (fun () -> Unix.select fds [] [] timeout)
               with
               | readable, _, _ ->
                   (match http with
                   | Some h -> Http_listener.handle h readable
                   | None -> ());
                   List.iter
                     (fun (a : active) ->
                       if
                         List.exists (fun x -> x == a) !active
                         (* may have been killed this round *)
                       then begin
                         (match a.a_tr.t_err with
                         | Some e when List.memq e readable -> drain_err a
                         | _ -> ());
                         if List.memq a.a_tr.t_read readable then begin
                           match
                             Shard.retry_intr (fun () ->
                                 Unix.read a.a_tr.t_read buf 0 (Bytes.length buf))
                           with
                           | 0 -> finalize a (* EOF *)
                           | k -> (
                               a.a_last <- now ();
                               Shard.Decoder.feed a.a_dec buf 0 k;
                               try
                                 let rec pop () =
                                   match Shard.Decoder.next a.a_dec with
                                   | Some f ->
                                       handle_frame a f;
                                       pop ()
                                   | None -> ()
                                 in
                                 pop ()
                               with
                               | Json.Parse msg ->
                                   kill a ("protocol corruption: " ^ msg)
                               | Shard.Protocol msg ->
                                   kill a ("protocol corruption: " ^ msg))
                           | exception Unix.Unix_error _ -> finalize a
                         end
                       end)
                     (List.filter (fun _ -> true) !active)
             end
           end
         done
       with e ->
         (* Never leak workers, whatever happens in the loop. *)
         List.iter
           (fun (a : active) ->
             a.a_tr.t_kill ();
             ignore (a.a_tr.t_wait ()))
           !active;
         raise e);
      (match !aborted with
      | Some reason ->
          run_fallback ("spawn failed: " ^ reason) (Ledger.remaining ledger)
      | None -> ());
      finish ()
    end
  end

(* ------------------------------------------------------------------ *)
(* TCP worker pool                                                     *)
(* ------------------------------------------------------------------ *)

(* One dial-in connection.  [pc_worker] is a stable display id granted
   at accept; a connection holds at most one lease (work batch) at a
   time, so a dead connection forfeits exactly one batch. *)
type pool_conn = {
  pc_worker : int;
  pc_fd : Unix.file_descr;
  pc_peer : string;
  pc_dec : Shard.Decoder.t;
  mutable pc_authed : bool;
  mutable pc_last : float; (* last byte received (liveness) *)
  mutable pc_lease : pending option;
  mutable pc_leased_at : float;
}

(* [run] over TCP: listen on [pool.pl_listen], lease work batches to
   authenticated dial-in workers, and re-dispatch the lease of any
   worker that disconnects, times out, half-closes, or corrupts the
   stream — through the same backoff/bisection/poison logic as the
   pipe supervisor, against the same ledger, so the merged output is
   byte-identical to a serial run no matter which machines computed
   what.  [cfg.shards] bounds in-flight leases; worker count is
   whatever dials in.  Emits [Listening] with the bound port before
   accepting (subscribers — tests, log tooling — learn the real port
   when [pl_listen] ends in ":0"). *)
let run_pool ?(bus = create_bus ()) ?http (cfg : config)
    ?(pool = default_pool_config)
    ~(fallback : Shard.cell list -> (int * Json.t) list)
    (cells : Shard.cell list) : (int * outcome) list =
  Shard.ignore_sigpipe ();
  let ledger = Ledger.create ~bus ~checkpoint_dir:cfg.checkpoint_dir cells in
  let finish () = Ledger.finish ledger in
  let run_fallback reason remaining =
    emit bus (Fallback { reason });
    List.iter
      (fun (id, r) -> Ledger.record_ok ledger ~origin:0 id r)
      (fallback remaining);
    Ledger.save_checkpoint ledger 0
  in
  if cells = [] then finish ()
  else begin
    Ledger.load_checkpoints ledger;
    let remaining = Ledger.remaining ledger in
    if remaining = [] then finish ()
    else begin
      let lsock, port = Shard.listen_socket pool.pl_listen in
      emit bus (Listening { addr = pool.pl_listen; port });
      let now () = Unix.gettimeofday () in
      let next_shard = ref 0 in
      let fresh_shard () =
        let s = !next_shard in
        incr next_shard;
        s
      in
      let next_worker = ref 0 in
      let pending : pending list ref =
        ref
          (List.map
             (fun cs ->
               let s = fresh_shard () in
               {
                 p_shard = s;
                 p_origin = s;
                 p_cells = cs;
                 p_attempt = 1;
                 p_not_before = 0.0;
               })
             (split_shards cfg.shards remaining))
      in
      let conns : pool_conn list ref = ref [] in
      let aborted = ref None in
      (* Last time the campaign moved (connect, lease, result): the
         no-worker give-up clock measures from here. *)
      let progress = ref (now ()) in
      let close_conn (c : pool_conn) =
        conns := List.filter (fun x -> x != c) !conns;
        try Unix.close c.pc_fd with Unix.Unix_error _ -> ()
      in
      let requeue_lease (p : pending) reason =
        requeue_failed ~bus ~cfg ~ledger ~pending ~fresh_shard ~now
          ~shard:p.p_shard ~origin:p.p_origin ~cells:p.p_cells
          ~attempt:p.p_attempt reason;
        Ledger.save_checkpoint ledger p.p_origin
      in
      let drop_conn (c : pool_conn) reason =
        if c.pc_authed then
          emit bus (Worker_disconnected { worker = c.pc_worker; reason });
        (match c.pc_lease with
        | Some p ->
            c.pc_lease <- None;
            requeue_lease p reason
        | None -> ());
        close_conn c
      in
      let shard_of (c : pool_conn) =
        match c.pc_lease with Some p -> p.p_shard | None -> c.pc_worker
      in
      let attempt_of (c : pool_conn) =
        match c.pc_lease with Some p -> p.p_attempt | None -> 1
      in
      let reject (c : pool_conn) reason =
        emit bus (Worker_rejected { peer = c.pc_peer; reason });
        (try Shard.write_frame c.pc_fd (Shard.F_reject reason)
         with Unix.Unix_error _ -> ());
        close_conn c
      in
      let dispatch () =
        let t = now () in
        let due, later = List.partition (fun p -> p.p_not_before <= t) !pending in
        let idle =
          ref (List.filter (fun c -> c.pc_authed && c.pc_lease = None) !conns)
        in
        let still_due = ref [] in
        List.iter
          (fun p ->
            match !idle with
            | [] -> still_due := p :: !still_due
            | c :: rest -> (
                match Shard.write_frame c.pc_fd (Shard.F_work p.p_cells) with
                | () ->
                    idle := rest;
                    c.pc_lease <- Some p;
                    c.pc_leased_at <- t;
                    c.pc_last <- t;
                    progress := t;
                    emit bus
                      (Lease_granted
                         {
                           shard = p.p_shard;
                           worker = c.pc_worker;
                           cells = List.length p.p_cells;
                           attempt = p.p_attempt;
                         })
                | exception Unix.Unix_error _ ->
                    (* Found dead at grant time: the lease never left,
                       so it stays pending rather than burning an
                       attempt. *)
                    idle := rest;
                    still_due := p :: !still_due;
                    drop_conn c "write failed at lease grant"))
          due;
        pending := List.rev !still_due @ later
      in
      let handle_frame (c : pool_conn) frame =
        if not c.pc_authed then
          match frame with
          | Shard.F_hello { h_version; h_token } ->
              if h_version <> Shard.protocol_version then
                reject c
                  (Printf.sprintf "protocol version %d (supervisor speaks %d)"
                     h_version Shard.protocol_version)
              else if h_token <> pool.pl_token then reject c "bad campaign token"
              else begin
                match
                  Shard.write_frame c.pc_fd
                    (Shard.F_welcome Shard.protocol_version)
                with
                | () ->
                    c.pc_authed <- true;
                    progress := now ();
                    emit bus
                      (Worker_connected { worker = c.pc_worker; peer = c.pc_peer })
                | exception Unix.Unix_error _ -> close_conn c
              end
          | _ -> reject c "frame before handshake"
        else
          match frame with
          | Shard.F_hb cell -> emit bus (Heartbeat { shard = shard_of c; cell })
          | Shard.F_result (id, r) ->
              (match c.pc_lease with
              | Some p -> Ledger.record_ok ledger ~origin:p.p_origin id r
              | None -> Ledger.record_ok ledger ~origin:0 id r);
              progress := now ();
              emit bus (Cell_done { shard = shard_of c; cell = id })
          | Shard.F_cellfault { fc_id; fc_reason } ->
              Ledger.poison ledger ~attempts:(attempt_of c) fc_id fc_reason;
              progress := now ();
              emit bus
                (Cell_fault { shard = shard_of c; cell = fc_id; reason = fc_reason })
          | Shard.F_log line -> emit bus (Worker_log { shard = shard_of c; line })
          | Shard.F_done -> (
              match c.pc_lease with
              | None -> ()
              | Some p ->
                  c.pc_lease <- None;
                  Ledger.save_checkpoint ledger p.p_origin;
                  (* A "done" lease can still be short of results (a
                     dropped frame): the missing cells are requeued —
                     never invented — and the conn stays in the pool. *)
                  if
                    List.exists
                      (fun cell -> not (Ledger.have ledger cell.Shard.c_id))
                      p.p_cells
                  then
                    requeue_failed ~bus ~cfg ~ledger ~pending ~fresh_shard ~now
                      ~shard:p.p_shard ~origin:p.p_origin ~cells:p.p_cells
                      ~attempt:p.p_attempt "lease completed with missing results")
          | Shard.F_hello _ -> () (* duplicate hello: ignored *)
          | Shard.F_work _ | Shard.F_exit | Shard.F_welcome _ | Shard.F_reject _
            ->
              ()
      in
      let buf = Bytes.create 65536 in
      let outstanding () =
        !pending <> [] || List.exists (fun c -> c.pc_lease <> None) !conns
      in
      (try
         while outstanding () && !aborted = None do
           dispatch ();
           let t = now () in
           (* Deadlines: a leased connection is held to the same
              heartbeat/wall budgets as a pipe worker; an unauthed
              connection gets a short handshake budget. *)
           List.iter
             (fun (c : pool_conn) ->
               if List.exists (fun x -> x == c) !conns then
                 match c.pc_lease with
                 | Some _ when t -. c.pc_last > cfg.heartbeat ->
                     drop_conn c
                       (Printf.sprintf "heartbeat deadline (%.0fs) expired"
                          cfg.heartbeat)
                 | Some _ when t -. c.pc_leased_at > cfg.wall ->
                     drop_conn c
                       (Printf.sprintf "wall-clock budget (%.0fs) expired"
                          cfg.wall)
                 | None
                   when (not c.pc_authed)
                        && t -. c.pc_last > Float.min cfg.heartbeat 10.0 ->
                     close_conn c
                 | _ -> ())
             (List.filter (fun _ -> true) !conns);
           (* Work is pending, nobody is serving it, nothing has moved
              for the accept budget: degrade instead of hanging. *)
           if
             !pending <> []
             && List.for_all (fun c -> c.pc_lease = None) !conns
             && t -. !progress > pool.pl_accept_wall
           then aborted := Some "no connected workers"
           else begin
             let http_fds =
               match http with Some h -> Http_listener.fds h | None -> []
             in
             let fds =
               (lsock :: List.map (fun c -> c.pc_fd) !conns) @ http_fds
             in
             match Shard.retry_intr (fun () -> Unix.select fds [] [] 0.25) with
             | readable, _, _ ->
                 if List.memq lsock readable then begin
                   match Shard.retry_intr (fun () -> Unix.accept lsock) with
                   | fd, peer ->
                       let w = !next_worker in
                       incr next_worker;
                       conns :=
                         {
                           pc_worker = w;
                           pc_fd = fd;
                           pc_peer = Shard.string_of_sockaddr peer;
                           pc_dec = Shard.Decoder.create ();
                           pc_authed = false;
                           pc_last = now ();
                           pc_lease = None;
                           pc_leased_at = now ();
                         }
                         :: !conns
                   | exception Unix.Unix_error _ -> ()
                 end;
                 (match http with
                 | Some h -> Http_listener.handle h readable
                 | None -> ());
                 List.iter
                   (fun (c : pool_conn) ->
                     if
                       List.exists (fun x -> x == c) !conns
                       && List.memq c.pc_fd readable
                     then begin
                       match
                         Shard.retry_intr (fun () ->
                             Unix.read c.pc_fd buf 0 (Bytes.length buf))
                       with
                       | 0 -> drop_conn c "connection closed"
                       | k -> (
                           c.pc_last <- now ();
                           Shard.Decoder.feed c.pc_dec buf 0 k;
                           try
                             let rec pop () =
                               if List.exists (fun x -> x == c) !conns then
                                 match Shard.Decoder.next c.pc_dec with
                                 | Some f ->
                                     handle_frame c f;
                                     pop ()
                                 | None -> ()
                             in
                             pop ()
                           with
                           | Json.Parse msg ->
                               drop_conn c ("protocol corruption: " ^ msg)
                           | Shard.Protocol msg ->
                               drop_conn c ("protocol corruption: " ^ msg))
                       | exception Unix.Unix_error _ -> drop_conn c "read error"
                     end)
                   (List.filter (fun _ -> true) !conns)
           end
         done
       with e ->
         List.iter
           (fun (c : pool_conn) ->
             try Unix.close c.pc_fd with Unix.Unix_error _ -> ())
           !conns;
         (try Unix.close lsock with Unix.Unix_error _ -> ());
         raise e);
      (* Campaign over: tell every surviving worker to exit cleanly
         (a dial-in worker that merely lost its connection would
         redial; F_exit is what ends it). *)
      List.iter
        (fun (c : pool_conn) ->
          (try Shard.write_frame c.pc_fd Shard.F_exit
           with Unix.Unix_error _ -> ());
          try Unix.close c.pc_fd with Unix.Unix_error _ -> ())
        !conns;
      conns := [];
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      (match !aborted with
      | Some reason ->
          run_fallback ("worker pool gave up: " ^ reason)
            (Ledger.remaining ledger)
      | None -> ());
      finish ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Experiment-grid client                                              *)
(* ------------------------------------------------------------------ *)

(* Glue between the generic supervisor and [Experiment] sessions: the
   discovery pass enumerates the cells (sorted by serializable key, so
   supervisor and workers agree on ids), workers compute
   [Experiment.run_result]s, and the merged results are installed in
   the session cache before the generator replays — making supervised
   output byte-identical to the serial run. *)
module Grid = struct
  module E = Experiment
  module Stats = Protean_ooo.Stats

  (* The per-port array rides as the list tail, after the fixed scalar
     counters — variable-length, so it must come last. *)
  let stats_to_json (s : Stats.t) =
    Json.List
      (List.map
         (fun i -> Json.Int i)
         ([
            s.Stats.cycles; s.Stats.marker_cycle; s.Stats.committed;
            s.Stats.fetched; s.Stats.squashes; s.Stats.squashed_insns;
            s.Stats.branch_mispredicts; s.Stats.machine_clears;
            s.Stats.mem_order_violations; s.Stats.l1d_accesses;
            s.Stats.l1d_misses; s.Stats.transmitter_stall_cycles;
            s.Stats.wakeup_delay_cycles; s.Stats.resolution_delay_cycles;
            s.Stats.access_pred_lookups; s.Stats.access_pred_mispredicts;
            s.Stats.access_pred_false_negatives; s.Stats.loads_executed;
            s.Stats.loads_protected_mem; s.Stats.port_structural_stall_cycles;
            s.Stats.wb_queue_stall_cycles; s.Stats.skipped_cycles;
          ]
         @ Array.to_list s.Stats.port_busy))

  let stats_of_json j =
    match List.map Json.to_int (Json.to_list j) with
    | cycles :: marker_cycle :: committed :: fetched :: squashes
      :: squashed_insns :: branch_mispredicts :: machine_clears
      :: mem_order_violations :: l1d_accesses :: l1d_misses
      :: transmitter_stall_cycles :: wakeup_delay_cycles
      :: resolution_delay_cycles :: access_pred_lookups
      :: access_pred_mispredicts :: access_pred_false_negatives
      :: loads_executed :: loads_protected_mem
      :: port_structural_stall_cycles :: wb_queue_stall_cycles
      :: skipped_cycles :: port_busy ->
        {
          Stats.cycles; marker_cycle; committed; fetched; squashes;
          squashed_insns; branch_mispredicts; machine_clears;
          mem_order_violations; l1d_accesses; l1d_misses;
          transmitter_stall_cycles; wakeup_delay_cycles;
          resolution_delay_cycles; access_pred_lookups;
          access_pred_mispredicts; access_pred_false_negatives;
          loads_executed; loads_protected_mem; port_structural_stall_cycles;
          wb_queue_stall_cycles; skipped_cycles;
          port_busy = Array.of_list port_busy;
        }
    | _ -> Json.parse_error "bad stats payload"

  (* Named-counter lists (policy metrics, folded flame stacks) ride the
     frame protocol as [[name, n], ...] pairs. *)
  let counters_to_json kvs =
    Json.List
      (List.map
         (fun (k, v) -> Json.List [ Json.Str k; Json.Int v ])
         kvs)

  let counters_of_json j =
    List.map
      (fun e ->
        match Json.to_list e with
        | [ k; v ] -> (Json.to_str k, Json.to_int v)
        | _ -> Json.parse_error "bad counter pair")
      (Json.to_list j)

  let result_to_json (r : E.run_result) =
    Json.Obj
      ([
         ("cycles", Json.Float r.E.cycles);
         ("stats", Json.List (List.map stats_to_json r.E.stats));
         ("code_size_ratio", Json.Float r.E.code_size_ratio);
         ("inserted_moves", Json.Int r.E.inserted_moves);
       ]
      (* Telemetry payloads (and the shared-frontend tag) are omitted
         when empty: keeps frames (and checkpoints written by
         telemetry-free or sharing-disabled runs) byte-compatible. *)
      @ (if r.E.policy_metrics = [] then []
         else [ ("pm", counters_to_json r.E.policy_metrics) ])
      @ (if r.E.flame = [] then [] else [ ("fl", counters_to_json r.E.flame) ])
      @ (if r.E.window = [] then []
         else [ ("wn", counters_to_json r.E.window) ])
      @ if r.E.frontend = "" then [] else [ ("fe", Json.Str r.E.frontend) ])

  let result_of_json j =
    {
      E.cycles = Json.(to_float (member "cycles" j));
      stats = List.map stats_of_json Json.(to_list (member "stats" j));
      code_size_ratio = Json.(to_float (member "code_size_ratio" j));
      inserted_moves = Json.(to_int (member "inserted_moves" j));
      policy_metrics =
        (match Json.member "pm" j with
        | Json.Null -> []
        | pm -> counters_of_json pm);
      flame =
        (match Json.member "fl" j with
        | Json.Null -> []
        | fl -> counters_of_json fl);
      frontend =
        (match Json.member "fe" j with
        | Json.Null -> ""
        | fe -> Json.to_str fe);
      window =
        (match Json.member "wn" j with
        | Json.Null -> []
        | wn -> counters_of_json wn);
    }

  (* [--worker] mode of a tables/figures CLI: rerun the same discovery
     (same argv modulo supervisor flags, so the same cells at the same
     ids), then serve cell computations — over stdin/stdout for a local
     supervisor, or by dialing a [--listen]ing one when [connect] is
     given. *)
  let worker ?(jobs = 1) ?connect ?(token = default_pool_config.pl_token)
      session gen =
    let cells = E.discover session gen in
    let by_key = Hashtbl.create 64 in
    List.iter (fun (k, s) -> Hashtbl.replace by_key k s) cells;
    let compute key =
      match Hashtbl.find_opt by_key key with
      | Some spec -> result_to_json (E.compute spec)
      | None -> failwith ("unknown cell key: " ^ key)
    in
    match connect with
    | None -> Shard.worker_main ~jobs ~compute ()
    | Some addr -> Shard.connect_worker ~jobs ~addr ~token ~compute ()

  (* Supervised [Experiment.prewarm]: discovery, sharded fill across
     worker processes, deterministic merge into the session cache,
     serial replay.  Poisoned cells resolve to the grid's usual faulted
     sentinel (a nan cell) plus a structured fault report, so one
     crashing cell cannot take the grid down. *)
  let supervised ?bus ?(config = default_config) ?pool ?http ~worker_argv
      ?(jobs = 1) session gen =
    let cells = E.discover session gen in
    if cells = [] then gen ()
    else begin
      (* Re-sort so cells of one shared-frontend group are contiguous:
         [split_shards] hands out contiguous id ranges, so grouped
         cells land on the same worker and its process-local frontend
         cache is built once per group instead of once per shard-span
         fragment.  Purely a scheduling permutation — the merge below
         is key-based, so replayed output stays byte-identical. *)
      let cells =
        if not !E.share_frontend then cells
        else
          List.stable_sort
            (fun (ka, sa) (kb, sb) ->
              match compare (E.frontend_key sa) (E.frontend_key sb) with
              | 0 -> compare (ka : string) kb
              | c -> c)
            cells
      in
      let specs = Array.of_list (List.map snd cells) in
      let keys = Array.of_list (List.map fst cells) in
      let shard_cells =
        List.mapi (fun i (k, _) -> { Shard.c_id = i; c_key = k }) cells
      in
      let fallback remaining =
        let remaining = Array.of_list remaining in
        let rs =
          Parallel.map ~jobs
            (Array.map
               (fun (c : Shard.cell) () ->
                 result_to_json (E.compute specs.(c.Shard.c_id)))
               remaining)
        in
        Array.to_list
          (Array.mapi (fun i (c : Shard.cell) -> (c.Shard.c_id, rs.(i))) remaining)
      in
      let outcomes =
        match pool with
        | Some p -> run_pool ?bus ?http config ~pool:p ~fallback shard_cells
        | None -> run ?bus ?http config ~worker_argv ~fallback shard_cells
      in
      let merged =
        List.map
          (fun (id, o) ->
            match o with
            | O_ok r -> (keys.(id), result_of_json r)
            | O_fault { f_key; f_attempts; f_reason } ->
                E.log_line "[fault] cell=%s: %s (after %d worker attempts)"
                  f_key f_reason f_attempts;
                (keys.(id), E.faulted_result))
          outcomes
      in
      E.install session merged;
      gen ()
    end
end
