(* Crash-isolated multi-process shard supervisor.

   [run] shards a deterministic cell list across N worker processes
   (exec'd copies of the current CLI in [--worker] mode, speaking
   {!Shard}'s length-prefixed JSON frame protocol on stdin/stdout) and
   owns robustness end-to-end:

   - liveness: per-worker heartbeat deadlines (no frame for
     [heartbeat] seconds) and a wall-clock budget per spawn; an expired
     worker is SIGKILLed and its *uncompleted* cells requeued — results
     streamed before the kill are kept;
   - retry: a failed shard (crash, kill, protocol corruption) is
     re-spawned with exponential backoff;
   - bisection: a shard that keeps failing is split in half until the
     failure is isolated to a single cell, which is reported as a
     structured fault — in the style of [Pipeline.Sim_fault] — instead
     of crashing the run, while every other cell completes;
   - checkpointing: completed cells are persisted per origin shard in
     atomic (write-to-temp + rename) JSON files, merged
     deterministically by cell id, so a killed *supervisor* resumes and
     the merged output is byte-identical to a serial run;
   - degradation: when processes cannot be spawned (Windows,
     PROTEAN_NO_SPAWN=1, exec failure) the whole batch falls back to
     in-process [Parallel.map].

   Shard lifecycle (spawn / heartbeat / retry / bisect / kill / poison)
   is surfaced through the same observer pattern as the pipeline's hook
   bus ([Protean_ooo.Hooks]): typed events, subscribers in registration
   order, so run-log tooling needs no supervisor-code changes. *)

module Fault_inject = Protean_defense.Fault_inject
module Json = Shard.Json

(* ------------------------------------------------------------------ *)
(* Lifecycle event bus                                                 *)
(* ------------------------------------------------------------------ *)

type event =
  | Spawn of { shard : int; attempt : int; pid : int option; cells : int }
  | Heartbeat of { shard : int; cell : int }
  | Cell_done of { shard : int; cell : int }
  | Cell_fault of { shard : int; cell : int; reason : string }
  | Worker_log of { shard : int; line : string }
  | Worker_stderr of { shard : int; line : string }
  | Kill of { shard : int; reason : string }
  | Worker_exit of { shard : int; status : string; ok : bool }
  | Retry of { shard : int; attempt : int; delay : float }
  | Bisect of { shard : int; left : int; right : int }
  | Poisoned of { cell : int; key : string; attempts : int; reason : string }
  | Checkpoint_loaded of { cells : int }
  | Fallback of { reason : string }
  | Merged of { cells : int; faults : int }

type subscriber = { s_name : string; s_handler : event -> unit }
type bus = { mutable subs : subscriber array }

let create_bus () = { subs = [||] }

let subscribe bus ~name handler =
  bus.subs <- Array.append bus.subs [| { s_name = name; s_handler = handler } |]

let unsubscribe bus name =
  bus.subs <-
    Array.of_list
      (List.filter (fun s -> s.s_name <> name) (Array.to_list bus.subs))

let emit bus ev = Array.iter (fun s -> s.s_handler ev) bus.subs

let event_to_string = function
  | Spawn { shard; attempt; pid; cells } ->
      Printf.sprintf "shard %d: spawn attempt %d (%s) for %d cells" shard
        attempt
        (match pid with Some p -> "pid " ^ string_of_int p | None -> "in-proc")
        cells
  | Heartbeat { shard; cell } ->
      Printf.sprintf "shard %d: heartbeat at cell %d" shard cell
  | Cell_done { shard; cell } -> Printf.sprintf "shard %d: cell %d done" shard cell
  | Cell_fault { shard; cell; reason } ->
      Printf.sprintf "shard %d: cell %d faulted in-process: %s" shard cell reason
  | Worker_log { shard; line } -> Printf.sprintf "shard %d: %s" shard line
  | Worker_stderr { shard; line } ->
      Printf.sprintf "shard %d (stderr): %s" shard line
  | Kill { shard; reason } -> Printf.sprintf "shard %d: killed (%s)" shard reason
  | Worker_exit { shard; status; ok } ->
      Printf.sprintf "shard %d: exited %s (%s)" shard status
        (if ok then "ok" else "failed")
  | Retry { shard; attempt; delay } ->
      Printf.sprintf "shard %d: retry attempt %d after %.2fs backoff" shard
        attempt delay
  | Bisect { shard; left; right } ->
      Printf.sprintf "shard %d: bisected into %d + %d cells" shard left right
  | Poisoned { cell; key; attempts; reason } ->
      Printf.sprintf "cell %d poisoned after %d attempts (%s): %s" cell attempts
        key reason
  | Checkpoint_loaded { cells } ->
      Printf.sprintf "resumed %d cells from checkpoints" cells
  | Fallback { reason } -> Printf.sprintf "in-process fallback: %s" reason
  | Merged { cells; faults } ->
      Printf.sprintf "merged %d cells (%d faulted)" cells faults

(* Run-log subscriber: serialized through the experiment-layer line sink
   so supervisor lines never interleave with in-process fill output. *)
let logger ?(quiet_heartbeat = true) () =
  fun ev ->
    match ev with
    | Heartbeat _ when quiet_heartbeat -> ()
    | Cell_done _ -> ()
    | Worker_log { line; _ } -> Experiment.log_line "%s" line
    | Worker_stderr { shard; line } ->
        Experiment.log_line "[shard %d] %s" shard line
    | ev -> Experiment.log_line "[supervisor] %s" (event_to_string ev)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  shards : int;
  heartbeat : float; (* s without any frame before a worker is killed *)
  wall : float; (* s per spawn before a worker is killed *)
  max_attempts : int; (* failures of one shard before bisect/poison *)
  backoff : float; (* base retry delay, doubled per attempt *)
  checkpoint_dir : string option;
  inject : Fault_inject.worker_mode option;
}

let default_config =
  {
    shards = 2;
    heartbeat = 120.0;
    wall = 3600.0;
    max_attempts = 2;
    backoff = 0.25;
    checkpoint_dir = None;
    inject = None;
  }

type outcome =
  | O_ok of Json.t
  | O_fault of { f_key : string; f_attempts : int; f_reason : string }
      (* the structured record a poisoned cell resolves to *)

(* ------------------------------------------------------------------ *)
(* Worker transports                                                   *)
(* ------------------------------------------------------------------ *)

(* The process-management half is abstracted so tests can drive the
   supervisor with in-process (domain-backed) workers while production
   uses fork/exec. *)
type transport = {
  t_pid : int option;
  t_read : Unix.file_descr; (* frames from the worker *)
  t_write : Unix.file_descr; (* frames to the worker *)
  t_err : Unix.file_descr option; (* the worker's raw stderr *)
  t_kill : unit -> unit;
  t_wait : unit -> string * bool; (* reap; (status text, clean exit) *)
}

(* OCaml's [Sys] signal numbers are its own encoding (negative for the
   portable set); name the ones workers actually die of. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else string_of_int s

let status_to_string = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "signal %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %s" (signal_name s)

(* Spawn [argv] (normally this executable with [--worker]) with frame
   pipes on its stdin/stdout and a captured stderr. *)
let spawn_exec ~argv ~env_fault : transport =
  let to_worker_r, to_worker_w = Unix.pipe ~cloexec:false () in
  let from_worker_r, from_worker_w = Unix.pipe ~cloexec:false () in
  let err_r, err_w = Unix.pipe ~cloexec:false () in
  let env =
    let base =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not
               (String.length kv > String.length Fault_inject.worker_env
               && String.sub kv 0 (String.length Fault_inject.worker_env + 1)
                  = Fault_inject.worker_env ^ "="))
    in
    match env_fault with
    | None -> Array.of_list base
    | Some m ->
        Array.of_list ((Fault_inject.worker_env ^ "=" ^ m) :: base)
  in
  let pid =
    Unix.create_process_env argv.(0) argv env to_worker_r from_worker_w err_w
  in
  Unix.close to_worker_r;
  Unix.close from_worker_w;
  Unix.close err_w;
  {
    t_pid = Some pid;
    t_read = from_worker_r;
    t_write = to_worker_w;
    t_err = Some err_r;
    t_kill =
      (fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    t_wait =
      (fun () ->
        let _, status = Unix.waitpid [] pid in
        (status_to_string status, status = Unix.WEXITED 0));
  }

(* Build the argv for re-exec'ing the current CLI as a shard worker:
   the original command line minus supervisor-only flags (so the
   worker's discovery pass enumerates exactly the same cells), plus
   [--worker].  Flags in [drop] are removed together with their
   separate-token value; [--flag=value] spellings too. *)
let self_worker_argv ~drop () =
  let rec filter = function
    | [] -> []
    | tok :: rest when List.mem tok drop -> (
        match rest with _ :: rest' -> filter rest' | [] -> [])
    | tok :: rest
      when List.exists
             (fun d ->
               let dl = String.length d in
               String.length tok > dl + 1 && String.sub tok 0 (dl + 1) = d ^ "=")
             drop ->
        filter rest
    | tok :: rest -> tok :: filter rest
  in
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> filter rest
    | [] -> []
  in
  Array.of_list ((Sys.executable_name :: args) @ [ "--worker" ])

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

module Checkpoint = struct
  let path dir origin = Filename.concat dir (Printf.sprintf "shard-%d.json" origin)

  let rec ensure_dir dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
    then begin
      ensure_dir (Filename.dirname dir);
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  (* Atomic per-shard save: a kill mid-write leaves the previous file
     intact, never a truncated one. *)
  let save dir origin (completed : (int * string * Json.t) list) =
    ensure_dir dir;
    let file = path dir origin in
    let tmp = file ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Json.to_string
             (Json.List
                (List.map
                   (fun (id, key, r) ->
                     Json.Obj
                       [ ("id", Json.Int id); ("key", Json.Str key); ("r", r) ])
                   completed)));
        output_char oc '\n');
    Sys.rename tmp file

  (* Load every shard-*.json in [dir]; entries whose (id, key) no longer
     match the current cell list are ignored (a stale checkpoint from a
     different grid must not poison the merge). *)
  let load_all dir (cells : Shard.cell list) =
    if not (Sys.file_exists dir) then []
    else begin
      let key_of = Hashtbl.create 64 in
      List.iter (fun c -> Hashtbl.replace key_of c.Shard.c_id c.Shard.c_key) cells;
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 6
               && String.sub f 0 6 = "shard-"
               && Filename.check_suffix f ".json")
        |> List.sort compare
      in
      List.concat_map
        (fun f ->
          let file = Filename.concat dir f in
          match
            let ic = open_in_bin file in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            Json.of_string (String.trim s)
          with
          | exception _ -> [] (* unreadable/corrupt checkpoint: ignored *)
          | Json.List entries ->
              List.filter_map
                (fun e ->
                  match
                    ( Json.(to_int (member "id" e)),
                      Json.(to_str (member "key" e)) )
                  with
                  | id, key when Hashtbl.find_opt key_of id = Some key ->
                      Some (id, key, Json.member "r" e)
                  | _ -> None
                  | exception _ -> None)
                entries
          | _ -> [])
        files
    end
end

(* ------------------------------------------------------------------ *)
(* The supervision loop                                                *)
(* ------------------------------------------------------------------ *)

type pending = {
  p_shard : int; (* display id *)
  p_origin : int; (* initial shard this work descends from *)
  p_cells : Shard.cell list;
  p_attempt : int;
  p_not_before : float;
}

type active = {
  a_shard : int;
  a_origin : int;
  a_cells : Shard.cell list;
  a_attempt : int;
  a_tr : transport;
  a_dec : Shard.Decoder.t;
  mutable a_errbuf : string;
  mutable a_last : float; (* last frame (liveness) *)
  a_spawned : float;
  mutable a_done : bool; (* F_done received *)
  mutable a_failed : string option; (* kill/protocol failure reason *)
}

let split_shards shards (cells : Shard.cell list) =
  let n = List.length cells in
  let shards = max 1 (min shards n) in
  let arr = Array.of_list cells in
  (* Contiguous ranges: deterministic, and bisection then narrows a
     crashing range monotonically. *)
  List.init shards (fun s ->
      let lo = s * n / shards and hi = (s + 1) * n / shards in
      Array.to_list (Array.sub arr lo (hi - lo)))
  |> List.filter (fun l -> l <> [])

let run ?(bus = create_bus ()) ?spawn (cfg : config)
    ~(worker_argv : string array)
    ~(fallback : Shard.cell list -> (int * Json.t) list)
    (cells : Shard.cell list) : (int * outcome) list =
  let n = List.length cells in
  let key_of_id = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace key_of_id c.Shard.c_id c.Shard.c_key) cells;
  let results : (int, outcome) Hashtbl.t = Hashtbl.create 64 in
  let completed_by_origin : (int, (int * string * Json.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let fault_count = ref 0 in
  let finish () =
    emit bus (Merged { cells = n; faults = !fault_count });
    List.map
      (fun c ->
        match Hashtbl.find_opt results c.Shard.c_id with
        | Some o -> (c.Shard.c_id, o)
        | None ->
            (* Unreachable by construction — every cell is either
               resulted, poisoned, or recomputed by the fallback. *)
            ( c.Shard.c_id,
              O_fault
                {
                  f_key = c.Shard.c_key;
                  f_attempts = 0;
                  f_reason = "supervisor lost track of cell";
                } ))
      cells
  in
  let record_ok ~origin id r =
    if not (Hashtbl.mem results id) then begin
      Hashtbl.replace results id (O_ok r);
      let key = try Hashtbl.find key_of_id id with Not_found -> "" in
      let lst =
        match Hashtbl.find_opt completed_by_origin origin with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace completed_by_origin origin l;
            l
      in
      lst := (id, key, r) :: !lst
    end
  in
  let save_checkpoint origin =
    match cfg.checkpoint_dir with
    | None -> ()
    | Some dir -> (
        match Hashtbl.find_opt completed_by_origin origin with
        | Some l when !l <> [] ->
            (try Checkpoint.save dir origin (List.rev !l)
             with Sys_error _ | Unix.Unix_error _ -> ()
             (* checkpointing is best-effort *))
        | _ -> ())
  in
  let run_fallback reason remaining =
    emit bus (Fallback { reason });
    List.iter (fun (id, r) -> record_ok ~origin:0 id r) (fallback remaining);
    save_checkpoint 0
  in
  if n = 0 then finish ()
  else begin
    (* Resume from per-shard checkpoints, when given. *)
    (match cfg.checkpoint_dir with
    | Some dir ->
        let loaded = Checkpoint.load_all dir cells in
        if loaded <> [] then begin
          List.iter (fun (id, _, r) -> record_ok ~origin:0 id r) loaded;
          emit bus (Checkpoint_loaded { cells = List.length loaded })
        end
    | None -> ());
    let remaining =
      List.filter (fun c -> not (Hashtbl.mem results c.Shard.c_id)) cells
    in
    if remaining = [] then finish ()
    else if not (Shard.can_spawn ()) then begin
      run_fallback "process spawning unavailable" remaining;
      finish ()
    end
    else begin
      let next_shard = ref 0 in
      let fresh_shard () =
        let s = !next_shard in
        incr next_shard;
        s
      in
      let now () = Unix.gettimeofday () in
      let pending : pending list ref =
        ref
          (List.map
             (fun cs ->
               let s = fresh_shard () in
               {
                 p_shard = s;
                 p_origin = s;
                 p_cells = cs;
                 p_attempt = 1;
                 p_not_before = 0.0;
               })
             (split_shards cfg.shards remaining))
      in
      let active : active list ref = ref [] in
      let aborted = ref None in
      let spawn_one (p : pending) =
        let env_fault =
          match cfg.inject with
          | None -> None
          | Some m ->
              if Fault_inject.worker_mode_persistent m then
                Some (Fault_inject.worker_mode_name m)
              else if p.p_shard = 0 && p.p_attempt = 1 then
                Some (Fault_inject.worker_mode_name m)
              else None
        in
        let tr =
          match spawn with
          | Some f -> f ~shard:p.p_shard ~attempt:p.p_attempt ~env_fault
          | None -> spawn_exec ~argv:worker_argv ~env_fault
        in
        emit bus
          (Spawn
             {
               shard = p.p_shard;
               attempt = p.p_attempt;
               pid = tr.t_pid;
               cells = List.length p.p_cells;
             });
        Shard.write_frame tr.t_write (Shard.F_work p.p_cells);
        active :=
          {
            a_shard = p.p_shard;
            a_origin = p.p_origin;
            a_cells = p.p_cells;
            a_attempt = p.p_attempt;
            a_tr = tr;
            a_dec = Shard.Decoder.create ();
            a_errbuf = "";
            a_last = now ();
            a_spawned = now ();
            a_done = false;
            a_failed = None;
          }
          :: !active
      in
      let requeue (a : active) reason =
        let rest =
          List.filter (fun c -> not (Hashtbl.mem results c.Shard.c_id)) a.a_cells
        in
        if rest = [] then ()
        else if a.a_attempt >= cfg.max_attempts then
          if List.length rest > 1 then begin
            (* Bisect: narrow the crashing shard towards the poisoned
               cell; each half restarts its attempt budget. *)
            let arr = Array.of_list rest in
            let mid = Array.length arr / 2 in
            let left = Array.to_list (Array.sub arr 0 mid) in
            let right =
              Array.to_list (Array.sub arr mid (Array.length arr - mid))
            in
            emit bus
              (Bisect
                 {
                   shard = a.a_shard;
                   left = List.length left;
                   right = List.length right;
                 });
            let mk cells =
              {
                p_shard = fresh_shard ();
                p_origin = a.a_origin;
                p_cells = cells;
                p_attempt = 1;
                p_not_before = now () +. cfg.backoff;
              }
            in
            let pl = mk left in
            let pr = mk right in
            pending := !pending @ [ pl; pr ]
          end
          else begin
            let c = List.hd rest in
            incr fault_count;
            emit bus
              (Poisoned
                 {
                   cell = c.Shard.c_id;
                   key = c.Shard.c_key;
                   attempts = a.a_attempt;
                   reason;
                 });
            Hashtbl.replace results c.Shard.c_id
              (O_fault
                 {
                   f_key = c.Shard.c_key;
                   f_attempts = a.a_attempt;
                   f_reason = reason;
                 })
          end
        else begin
          let delay = cfg.backoff *. (2.0 ** float_of_int (a.a_attempt - 1)) in
          emit bus
            (Retry { shard = a.a_shard; attempt = a.a_attempt + 1; delay });
          pending :=
            !pending
            @ [
                {
                  p_shard = a.a_shard;
                  p_origin = a.a_origin;
                  p_cells = rest;
                  p_attempt = a.a_attempt + 1;
                  p_not_before = now () +. delay;
                };
              ]
        end
      in
      let finalize (a : active) =
        active := List.filter (fun x -> x != a) !active;
        (try Unix.close a.a_tr.t_write with Unix.Unix_error _ -> ());
        let status, clean = a.a_tr.t_wait () in
        (try Unix.close a.a_tr.t_read with Unix.Unix_error _ -> ());
        (match a.a_tr.t_err with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        let all_resulted =
          List.for_all (fun c -> Hashtbl.mem results c.Shard.c_id) a.a_cells
        in
        let truncated = Shard.Decoder.pending_bytes a.a_dec > 0 in
        let ok =
          a.a_failed = None && a.a_done && clean && all_resulted
          && not truncated
        in
        emit bus (Worker_exit { shard = a.a_shard; status; ok });
        save_checkpoint a.a_origin;
        if not ok then begin
          let reason =
            match a.a_failed with
            | Some r -> r
            | None ->
                if truncated then
                  Printf.sprintf "worker died mid-frame (%s)" status
                else if not (a.a_done && clean) then
                  Printf.sprintf "worker crashed (%s)" status
                else "worker exited without completing its cells"
          in
          requeue a reason
        end
      in
      let kill (a : active) reason =
        emit bus (Kill { shard = a.a_shard; reason });
        a.a_failed <- Some reason;
        a.a_tr.t_kill ();
        finalize a
      in
      let handle_frame (a : active) = function
        | Shard.F_hb cell ->
            emit bus (Heartbeat { shard = a.a_shard; cell })
        | Shard.F_result (id, r) ->
            record_ok ~origin:a.a_origin id r;
            emit bus (Cell_done { shard = a.a_shard; cell = id })
        | Shard.F_cellfault { fc_id; fc_reason } ->
            (* The worker caught the failure itself: a structured fault,
               final immediately — no retry or bisection needed. *)
            if not (Hashtbl.mem results fc_id) then begin
              incr fault_count;
              let key = try Hashtbl.find key_of_id fc_id with Not_found -> "" in
              Hashtbl.replace results fc_id
                (O_fault
                   {
                     f_key = key;
                     f_attempts = a.a_attempt;
                     f_reason = fc_reason;
                   });
              emit bus
                (Poisoned
                   {
                     cell = fc_id;
                     key;
                     attempts = a.a_attempt;
                     reason = fc_reason;
                   })
            end;
            emit bus
              (Cell_fault { shard = a.a_shard; cell = fc_id; reason = fc_reason })
        | Shard.F_log line -> emit bus (Worker_log { shard = a.a_shard; line })
        | Shard.F_done ->
            a.a_done <- true;
            (* Ask the worker to exit cleanly; EOF follows. *)
            (try Shard.write_frame a.a_tr.t_write Shard.F_exit
             with Unix.Unix_error _ -> ())
        | Shard.F_work _ | Shard.F_exit -> ()
      in
      let buf = Bytes.create 65536 in
      let drain_err (a : active) =
        match a.a_tr.t_err with
        | None -> ()
        | Some fd -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> ()
            | k ->
                a.a_errbuf <- a.a_errbuf ^ Bytes.sub_string buf 0 k;
                let rec lines () =
                  match String.index_opt a.a_errbuf '\n' with
                  | Some i ->
                      let line = String.sub a.a_errbuf 0 i in
                      a.a_errbuf <-
                        String.sub a.a_errbuf (i + 1)
                          (String.length a.a_errbuf - i - 1);
                      if line <> "" then
                        emit bus (Worker_stderr { shard = a.a_shard; line });
                      lines ()
                  | None -> ()
                in
                lines ()
            | exception Unix.Unix_error _ -> ())
      in
      (try
         while (!pending <> [] || !active <> []) && !aborted = None do
           let t = now () in
           (* Spawn what is due, up to the concurrency cap. *)
           let due, later =
             List.partition (fun p -> p.p_not_before <= t) !pending
           in
           let slots = cfg.shards - List.length !active in
           let to_spawn, back =
             let rec take k = function
               | x :: xs when k > 0 ->
                   let a, b = take (k - 1) xs in
                   (x :: a, b)
               | xs -> ([], xs)
             in
             take (max 0 slots) due
           in
           pending := back @ later;
           (try List.iter spawn_one to_spawn
            with e ->
              (* exec failed: degrade to in-process execution for
                 everything not yet computed. *)
              List.iter (fun (a : active) -> a.a_tr.t_kill ()) !active;
              List.iter (fun (a : active) -> ignore (a.a_tr.t_wait ())) !active;
              active := [];
              pending := [];
              aborted := Some (Printexc.to_string e));
           if !aborted = None then begin
             (* Deadlines. *)
             List.iter
               (fun (a : active) ->
                 if t -. a.a_last > cfg.heartbeat then
                   kill a
                     (Printf.sprintf "heartbeat deadline (%.0fs) expired"
                        cfg.heartbeat)
                 else if t -. a.a_spawned > cfg.wall then
                   kill a
                     (Printf.sprintf "wall-clock budget (%.0fs) expired" cfg.wall))
               (List.filter (fun a -> a.a_failed = None) !active);
             (* Wait for frames. *)
             let fds =
               List.concat_map
                 (fun (a : active) ->
                   a.a_tr.t_read
                   :: (match a.a_tr.t_err with Some e -> [ e ] | None -> []))
                 !active
             in
             let timeout =
               let next_deadline =
                 List.fold_left
                   (fun acc (a : active) ->
                     min acc
                       (min (a.a_last +. cfg.heartbeat) (a.a_spawned +. cfg.wall)))
                   infinity !active
               in
               let next_spawn =
                 List.fold_left
                   (fun acc p -> min acc p.p_not_before)
                   infinity !pending
               in
               let dt = min next_deadline next_spawn -. now () in
               if dt = infinity then 0.5 else Float.max 0.01 (Float.min dt 0.5)
             in
             if fds = [] then (if !pending <> [] then Unix.sleepf timeout)
             else begin
               match Unix.select fds [] [] timeout with
               | readable, _, _ ->
                   List.iter
                     (fun (a : active) ->
                       if
                         List.exists (fun x -> x == a) !active
                         (* may have been killed this round *)
                       then begin
                         (match a.a_tr.t_err with
                         | Some e when List.memq e readable -> drain_err a
                         | _ -> ());
                         if List.memq a.a_tr.t_read readable then begin
                           match
                             Unix.read a.a_tr.t_read buf 0 (Bytes.length buf)
                           with
                           | 0 -> finalize a (* EOF *)
                           | k -> (
                               a.a_last <- now ();
                               Shard.Decoder.feed a.a_dec buf 0 k;
                               try
                                 let rec pop () =
                                   match Shard.Decoder.next a.a_dec with
                                   | Some f ->
                                       handle_frame a f;
                                       pop ()
                                   | None -> ()
                                 in
                                 pop ()
                               with Json.Parse msg ->
                                 kill a ("protocol corruption: " ^ msg))
                           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                           | exception Unix.Unix_error _ -> finalize a
                         end
                       end)
                     (List.filter (fun _ -> true) !active)
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             end
           end
         done
       with e ->
         (* Never leak workers, whatever happens in the loop. *)
         List.iter
           (fun (a : active) ->
             a.a_tr.t_kill ();
             ignore (a.a_tr.t_wait ()))
           !active;
         raise e);
      (match !aborted with
      | Some reason ->
          let remaining =
            List.filter (fun c -> not (Hashtbl.mem results c.Shard.c_id)) cells
          in
          run_fallback ("spawn failed: " ^ reason) remaining
      | None -> ());
      finish ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Experiment-grid client                                              *)
(* ------------------------------------------------------------------ *)

(* Glue between the generic supervisor and [Experiment] sessions: the
   discovery pass enumerates the cells (sorted by serializable key, so
   supervisor and workers agree on ids), workers compute
   [Experiment.run_result]s, and the merged results are installed in
   the session cache before the generator replays — making supervised
   output byte-identical to the serial run. *)
module Grid = struct
  module E = Experiment
  module Stats = Protean_ooo.Stats

  let stats_to_json (s : Stats.t) =
    Json.List
      (List.map
         (fun i -> Json.Int i)
         [
           s.Stats.cycles; s.Stats.marker_cycle; s.Stats.committed;
           s.Stats.fetched; s.Stats.squashes; s.Stats.squashed_insns;
           s.Stats.branch_mispredicts; s.Stats.machine_clears;
           s.Stats.mem_order_violations; s.Stats.l1d_accesses;
           s.Stats.l1d_misses; s.Stats.transmitter_stall_cycles;
           s.Stats.wakeup_delay_cycles; s.Stats.resolution_delay_cycles;
           s.Stats.access_pred_lookups; s.Stats.access_pred_mispredicts;
           s.Stats.access_pred_false_negatives; s.Stats.loads_executed;
           s.Stats.loads_protected_mem;
         ])

  let stats_of_json j =
    match List.map Json.to_int (Json.to_list j) with
    | [
     cycles; marker_cycle; committed; fetched; squashes; squashed_insns;
     branch_mispredicts; machine_clears; mem_order_violations; l1d_accesses;
     l1d_misses; transmitter_stall_cycles; wakeup_delay_cycles;
     resolution_delay_cycles; access_pred_lookups; access_pred_mispredicts;
     access_pred_false_negatives; loads_executed; loads_protected_mem;
    ] ->
        {
          Stats.cycles; marker_cycle; committed; fetched; squashes;
          squashed_insns; branch_mispredicts; machine_clears;
          mem_order_violations; l1d_accesses; l1d_misses;
          transmitter_stall_cycles; wakeup_delay_cycles;
          resolution_delay_cycles; access_pred_lookups;
          access_pred_mispredicts; access_pred_false_negatives;
          loads_executed; loads_protected_mem;
        }
    | _ -> Json.parse_error "bad stats payload"

  (* Named-counter lists (policy metrics, folded flame stacks) ride the
     frame protocol as [[name, n], ...] pairs. *)
  let counters_to_json kvs =
    Json.List
      (List.map
         (fun (k, v) -> Json.List [ Json.Str k; Json.Int v ])
         kvs)

  let counters_of_json j =
    List.map
      (fun e ->
        match Json.to_list e with
        | [ k; v ] -> (Json.to_str k, Json.to_int v)
        | _ -> Json.parse_error "bad counter pair")
      (Json.to_list j)

  let result_to_json (r : E.run_result) =
    Json.Obj
      ([
         ("cycles", Json.Float r.E.cycles);
         ("stats", Json.List (List.map stats_to_json r.E.stats));
         ("code_size_ratio", Json.Float r.E.code_size_ratio);
         ("inserted_moves", Json.Int r.E.inserted_moves);
       ]
      (* Telemetry payloads are omitted when empty: keeps frames (and
         checkpoints written by telemetry-free runs) byte-compatible. *)
      @ (if r.E.policy_metrics = [] then []
         else [ ("pm", counters_to_json r.E.policy_metrics) ])
      @
      if r.E.flame = [] then [] else [ ("fl", counters_to_json r.E.flame) ])

  let result_of_json j =
    {
      E.cycles = Json.(to_float (member "cycles" j));
      stats = List.map stats_of_json Json.(to_list (member "stats" j));
      code_size_ratio = Json.(to_float (member "code_size_ratio" j));
      inserted_moves = Json.(to_int (member "inserted_moves" j));
      policy_metrics =
        (match Json.member "pm" j with
        | Json.Null -> []
        | pm -> counters_of_json pm);
      flame =
        (match Json.member "fl" j with
        | Json.Null -> []
        | fl -> counters_of_json fl);
    }

  (* [--worker] mode of a tables/figures CLI: rerun the same discovery
     (same argv modulo supervisor flags, so the same cells at the same
     ids), then serve cell computations over stdin/stdout. *)
  let worker ?(jobs = 1) session gen =
    let cells = E.discover session gen in
    let by_key = Hashtbl.create 64 in
    List.iter (fun (k, s) -> Hashtbl.replace by_key k s) cells;
    Shard.worker_main ~jobs
      ~compute:(fun key ->
        match Hashtbl.find_opt by_key key with
        | Some spec -> result_to_json (E.compute spec)
        | None -> failwith ("unknown cell key: " ^ key))
      ()

  (* Supervised [Experiment.prewarm]: discovery, sharded fill across
     worker processes, deterministic merge into the session cache,
     serial replay.  Poisoned cells resolve to the grid's usual faulted
     sentinel (a nan cell) plus a structured fault report, so one
     crashing cell cannot take the grid down. *)
  let supervised ?bus ?(config = default_config) ~worker_argv ?(jobs = 1)
      session gen =
    let cells = E.discover session gen in
    if cells = [] then gen ()
    else begin
      let specs = Array.of_list (List.map snd cells) in
      let keys = Array.of_list (List.map fst cells) in
      let shard_cells =
        List.mapi (fun i (k, _) -> { Shard.c_id = i; c_key = k }) cells
      in
      let fallback remaining =
        let remaining = Array.of_list remaining in
        let rs =
          Parallel.map ~jobs
            (Array.map
               (fun (c : Shard.cell) () ->
                 result_to_json (E.compute specs.(c.Shard.c_id)))
               remaining)
        in
        Array.to_list
          (Array.mapi (fun i (c : Shard.cell) -> (c.Shard.c_id, rs.(i))) remaining)
      in
      let outcomes = run ?bus config ~worker_argv ~fallback shard_cells in
      let merged =
        List.map
          (fun (id, o) ->
            match o with
            | O_ok r -> (keys.(id), result_of_json r)
            | O_fault { f_key; f_attempts; f_reason } ->
                E.log_line "[fault] cell=%s: %s (after %d worker attempts)"
                  f_key f_reason f_attempts;
                (keys.(id), E.faulted_result))
          outcomes
      in
      E.install session merged;
      gen ()
    end
end
