(* Golden determinism corpus: a fixed set of (program × defense ×
   configuration) cells whose cycle counts and observer-trace digests
   were recorded from the pre-refactor (seed) pipeline.

   The stage-module pipeline must be *cycle-exact*: it has to reproduce
   every recorded line bit-for-bit, serially and under a parallel grid
   (`-j 4`).  `test/golden_pipeline.expected` holds the recorded lines;
   `protean-tables golden` regenerates them (only ever rerecord from a
   pipeline known to be correct). *)

module Defense = Protean_defense.Defense
module Protcc = Protean_protcc.Protcc
module Config = Protean_ooo.Config
module Pipeline = Protean_ooo.Pipeline
module Multicore = Protean_ooo.Multicore
module Policy = Protean_ooo.Policy
module Stats = Protean_ooo.Stats
module Hw_trace = Protean_ooo.Hw_trace
module Suite = Protean_workloads.Suite
module Gen = Protean_amulet.Gen

type source =
  | Bench of string (* Suite benchmark name *)
  | Rand of Gen.klass_gen * int (* generated program, by class and seed *)

type cell = {
  c_source : source;
  c_defense : string; (* Defense id *)
  c_pass : string; (* none | arch | cts | ct | unr | multiclass *)
  c_config : string; (* test | p *)
  c_model : Policy.spec_model;
  c_squash_bug : bool;
}

let cell ?(pass = "none") ?(config = "test") ?(model = Policy.Atcommit)
    ?(squash_bug = false) source defense =
  {
    c_source = source;
    c_defense = defense;
    c_pass = pass;
    c_config = config;
    c_model = model;
    c_squash_bug = squash_bug;
  }

let source_name = function
  | Bench n -> n
  | Rand (k, seed) ->
      let kn =
        match k with
        | Gen.G_arch -> "arch"
        | Gen.G_ct -> "ct"
        | Gen.G_unr -> "unr"
        | Gen.G_gadget -> "gadget"
      in
      Printf.sprintf "gen:%s:%d" kn seed

let key c =
  Printf.sprintf "%s|%s|%s|%s|%s|%b" (source_name c.c_source) c.c_defense
    c.c_pass c.c_config
    (Policy.spec_model_name c.c_model)
    c.c_squash_bug

(* Config names accept a "@wN" suffix ("test@w4"): the base core
   rescaled to an N-wide structural-port superscalar
   ([Config.with_width]).  The rescaled config names itself with the
   same suffix, so cell keys and experiment cache keys stay aligned. *)
let config_of s =
  let base = function
    | "test" -> Config.test_core
    | "p" -> Config.p_core
    | b -> invalid_arg ("Golden.config_of: " ^ b)
  in
  match String.index_opt s '@' with
  | Some i
    when i + 2 < String.length s
         && s.[i + 1] = 'w'
         && String.for_all (fun c -> c >= '0' && c <= '9')
              (String.sub s (i + 2) (String.length s - i - 2)) ->
      Config.with_width
        (int_of_string (String.sub s (i + 2) (String.length s - i - 2)))
        (base (String.sub s 0 i))
  | _ -> base s

let instrument pass program =
  match pass with
  | "none" -> program
  | "multiclass" -> (Protcc.instrument program).Protcc.program
  | p ->
      let pass =
        match p with
        | "arch" -> Protcc.P_arch
        | "cts" -> Protcc.P_cts
        | "ct" -> Protcc.P_ct
        | "unr" -> Protcc.P_unr
        | s -> invalid_arg ("Golden.instrument: " ^ s)
      in
      (Protcc.instrument ~pass_override:pass program).Protcc.program

(* Shared frontend: program construction + ProtCC instrumentation + the
   per-pc decode templates are defense- and core-config-independent, so
   corpus cells that differ only in defense/config/model share one
   build.  Keyed by (source, pass) — the only inputs the frontend
   reads.  Honors the same escape hatch as the experiment layer
   ([Experiment.share_frontend], i.e. --no-shared-frontend /
   PROTEAN_NO_SHARED_FRONTEND); mutex-guarded because parallel corpus
   runs fill from several domains. *)
let frontend_cache = Hashtbl.create 32
let frontend_cache_lock = Mutex.create ()

let build_frontend c =
  let programs =
    match c.c_source with
    | Rand (klass, seed) ->
        [|
          instrument c.c_pass
            (Gen.generate { Gen.seed; klass; blocks = 24; block_len = 12 });
        |]
    | Bench name -> (
        let b = Suite.find name in
        match b.Suite.kind with
        | Suite.Single f -> [| instrument c.c_pass (f ()) |]
        | Suite.Multi f -> Array.map (instrument c.c_pass) (f ()))
  in
  (programs, Array.map Pipeline.decode_program programs)

let frontend_key c = source_name c.c_source ^ "|" ^ c.c_pass

let frontend c =
  if not !Experiment.share_frontend then build_frontend c
  else begin
    let k = frontend_key c in
    Mutex.lock frontend_cache_lock;
    let cached = Hashtbl.find_opt frontend_cache k in
    Mutex.unlock frontend_cache_lock;
    match cached with
    | Some fe -> fe
    | None ->
        let fe = build_frontend c in
        Mutex.lock frontend_cache_lock;
        Hashtbl.replace frontend_cache k fe;
        Mutex.unlock frontend_cache_lock;
        fe
  end

let trace_digest trace =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Format.asprintf "%a" Hw_trace.pp_event e);
      Buffer.add_char buf '\n')
    (Hw_trace.all trace);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* One corpus line: the cell key followed by its observable outcome. *)
let run_cell c =
  let d = Defense.find c.c_defense in
  let config = config_of c.c_config in
  let fuel = 30_000_000 in
  let programs, decode = frontend c in
  let single () =
    let r =
      Pipeline.run ~trace:true ~squash_bug:c.c_squash_bug
        ~spec_model:c.c_model ~decode:decode.(0) ~fuel config
        (d.Defense.make ()) programs.(0) ~overlays:[]
    in
    Printf.sprintf "%d|%d|%d|%s" r.Pipeline.stats.Stats.cycles
      r.Pipeline.stats.Stats.committed r.Pipeline.stats.Stats.squashes
      (trace_digest r.Pipeline.trace)
  in
  let outcome =
    match c.c_source with
    | Rand _ -> single ()
    | Bench name -> (
        let b = Suite.find name in
        match b.Suite.kind with
        | Suite.Single _ -> single ()
        | Suite.Multi _ ->
            let r =
              Multicore.run ~squash_bug:c.c_squash_bug ~spec_model:c.c_model
                ~decode ~fuel config ~make_policy:d.Defense.make programs
            in
            let per_core =
              Array.to_list r.Multicore.per_core
              |> List.map (fun (p : Pipeline.result) ->
                     Printf.sprintf "%d:%d" p.Pipeline.stats.Stats.cycles
                       p.Pipeline.stats.Stats.committed)
              |> String.concat ","
            in
            Printf.sprintf "%d|%b|%s" r.Multicore.cycles r.Multicore.finished
              per_core)
  in
  key c ^ "|" ^ outcome

let corpus =
  (* Random programs exercise deep speculation, squashes, forwarding and
     the defense gates on the small test core. *)
  let rand =
    List.concat_map
      (fun seed ->
        List.map
          (fun d -> cell (Rand (Gen.G_arch, seed)) d)
          [ "unsafe"; "nda"; "stt"; "spt"; "spt-sb" ])
      [ 101; 102; 103 ]
    @ List.concat_map
        (fun seed ->
          List.map
            (fun d -> cell ~pass:"ct" (Rand (Gen.G_ct, seed)) d)
            [ "prot-delay"; "prot-track"; "spt" ])
        [ 201; 202 ]
    @ List.map
        (fun d -> cell ~pass:"unr" (Rand (Gen.G_unr, 301)) d)
        [ "prot-delay"; "prot-track" ]
    (* The pending-squash corner case and the CONTROL speculation model. *)
    @ [
        cell ~squash_bug:true (Rand (Gen.G_arch, 101)) "stt";
        cell ~squash_bug:true (Rand (Gen.G_arch, 101)) "spt-sb";
        cell ~model:Policy.Control (Rand (Gen.G_arch, 102)) "stt";
        cell ~model:Policy.Control ~pass:"arch" (Rand (Gen.G_arch, 102))
          "prot-track";
      ]
    (* The three-level hierarchy (P-core has an L3; the test core none). *)
    @ [ cell ~config:"p" (Rand (Gen.G_arch, 101)) "unsafe" ]
  in
  (* Real workloads: each defense × a few benchmarks per class. *)
  let benches =
    [
      cell (Bench "bearssl") "unsafe";
      cell (Bench "bearssl") "stt";
      cell ~pass:"ct" (Bench "bearssl") "prot-track";
      cell (Bench "hacl.poly1305") "unsafe";
      cell ~pass:"cts" (Bench "hacl.poly1305") "prot-delay";
      cell (Bench "ossl.bnexp") "unsafe";
      cell (Bench "ossl.bnexp") "spt-sb";
      cell ~pass:"unr" (Bench "ossl.bnexp") "prot-track";
      cell (Bench "w32-index") "spt";
      cell (Bench "w32-index") "spt-no-w32-fix";
      cell (Bench "lbm") "unsafe";
      cell ~config:"p" (Bench "lbm") "unsafe";
      cell (Bench "lbm") "stt";
      (* Multicore cells: lockstep cores sharing the LLC. *)
      cell (Bench "swaptions.p") "unsafe";
      cell (Bench "swaptions.p") "stt";
      cell ~pass:"multiclass" (Bench "nginx.c1r1") "prot-track";
    ]
  in
  rand @ benches

(* Parallel corpus runner: cells are batched by shared-frontend group
   (each group's cells run sequentially on one domain, so the group's
   frontend is built once instead of being raced by every cell), and
   the lines are re-emitted in corpus order.  With sharing disabled
   every cell is its own task — the per-cell schedule. *)
let parallel_lines ~jobs corpus =
  let cells = List.mapi (fun i c -> (i, c)) corpus in
  let groups =
    if not !Experiment.share_frontend then List.map (fun c -> [ c ]) cells
    else begin
      let tbl = Hashtbl.create 32 in
      let order = ref [] in
      List.iter
        (fun ((_, c) as cell) ->
          let fk = frontend_key c in
          match Hashtbl.find_opt tbl fk with
          | Some group -> group := cell :: !group
          | None ->
              Hashtbl.replace tbl fk (ref [ cell ]);
              order := fk :: !order)
        cells;
      List.rev_map (fun fk -> List.rev !(Hashtbl.find tbl fk)) !order
    end
  in
  let tasks =
    Array.of_list
      (List.map
         (fun group () -> List.map (fun (i, c) -> (i, run_cell c)) group)
         groups)
  in
  Parallel.map ~jobs tasks
  |> Array.to_list |> List.concat
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  |> List.map snd

(* All corpus lines, in corpus order.  [jobs > 1] runs the cells on a
   parallel grid ([Parallel.map]); the lines are identical either way —
   that equality is the determinism property the golden suite asserts. *)
let lines ?(jobs = 1) () =
  if jobs <= 1 then List.map run_cell corpus else parallel_lines ~jobs corpus

(* Width-sweep corpus: the structural-port model across issue widths
   1/2/4/6/8 on three single-core benchmarks × three defenses.  Each
   (bench, delay-defense) pair keeps the instrumentation pass already
   proven for it in the main corpus.  Recorded in
   test/golden_width.expected; the suite asserts serial, `-j 4` and a
   two-shard supervised run all reproduce it byte-for-byte. *)
let width_corpus =
  let widths = [ 1; 2; 4; 6; 8 ] in
  let benches =
    [ ("bearssl", "ct"); ("hacl.poly1305", "cts"); ("ossl.bnexp", "unr") ]
  in
  List.concat_map
    (fun w ->
      let config = "test@w" ^ string_of_int w in
      List.concat_map
        (fun (b, delay_pass) ->
          [
            cell ~config (Bench b) "unsafe";
            cell ~config (Bench b) "stt";
            cell ~config ~pass:delay_pass (Bench b) "prot-delay";
          ])
        benches)
    widths

let width_lines ?(jobs = 1) () =
  if jobs <= 1 then List.map run_cell width_corpus
  else parallel_lines ~jobs width_corpus

let width_keys () = List.map key width_corpus

(* Run one width cell by key — the compute function a supervised shard
   worker uses when the grid distributes the width corpus. *)
let run_width_key k =
  match List.find_opt (fun c -> String.equal (key c) k) width_corpus with
  | Some c -> run_cell c
  | None -> invalid_arg ("Golden.run_width_key: unknown cell " ^ k)
