(* The telemetry reporting layer: turns a memoized experiment session
   (plus the supervisor's lifecycle bus and wall-clock cell spans) into
   the three exporter formats — Prometheus/JSON metrics, Chrome
   trace-event JSON, and collapsed-stack flamegraphs.

   Split of responsibilities:
   - *deterministic* metrics (pipeline counters from [Stats.t], defense
     policy counters, flame totals) derive purely from the session
     cache, so serial / [-j N] / [--shards N] runs render byte-identical
     metric families;
   - *runtime* metrics (the [protean_supervisor_*] families) and the
     trace record wall-clock process topology and are excluded from
     determinism comparisons (they describe *this* run's execution, not
     the simulated machine).

   Collection is free when no exporter asked for it: [enable] flips the
   experiment-layer switches, and without it no profiler subscribes, no
   policy counters are read, and no span is recorded. *)

module Metrics = Protean_telemetry.Metrics
module Trace = Protean_telemetry.Trace
module Flame = Protean_telemetry.Flame
module Twindow = Protean_telemetry.Window
module Stats = Protean_ooo.Stats
module Spec_window = Protean_ooo.Spec_window
module E = Experiment

type config = {
  metrics_out : string option;
  trace_out : string option;
  flamegraph_out : string option;
  attr_out : string option;
      (* per-cell speculation-window summary + over-protection report *)
}

let no_exports =
  {
    metrics_out = None;
    trace_out = None;
    flamegraph_out = None;
    attr_out = None;
  }

let wanted c =
  c.metrics_out <> None || c.trace_out <> None || c.flamegraph_out <> None
  || c.attr_out <> None

(* Runtime registry: supervisor lifecycle counters, filled by the bus
   observer as the run executes. *)
let runtime = Metrics.create ()
let tracer : Trace.t option ref = ref None

(* ------------------------------------------------------------------ *)
(* Build/host metadata                                                 *)
(* ------------------------------------------------------------------ *)

(* Self-describing runs: host parallelism, toolchain, source revision
   and any active escape-hatch env vars, so a metrics snapshot (or a
   bench JSON) records the environment that produced it — the ROADMAP's
   1-core-host bench caveat made explicit. *)

let escape_hatches =
  [
    "PROTEAN_NO_SKIP_AHEAD";
    "PROTEAN_NO_SHARED_FRONTEND";
    "PROTEAN_PARANOID_SCHED";
    "PROTEAN_NET_FAULT";
    "PROTEAN_NO_SPAWN";
  ]

let hatch_active v =
  match Sys.getenv_opt v with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* Source revision from .git/HEAD (one level of ref indirection), no
   subprocess; "unknown" outside a checkout. *)
let git_rev () =
  let first_line path =
    match open_in path with
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> match input_line ic with l -> Some l | exception _ -> None)
    | exception _ -> None
  in
  let short s = String.sub s 0 (min 12 (String.length s)) in
  match first_line (Filename.concat ".git" "HEAD") with
  | Some line when String.length line > 5 && String.sub line 0 5 = "ref: " ->
      let r = String.sub line 5 (String.length line - 5) in
      (match first_line (Filename.concat ".git" (String.trim r)) with
      | Some rev -> short (String.trim rev)
      | None -> "unknown")
  | Some rev when String.trim rev <> "" -> short (String.trim rev)
  | _ -> "unknown"

let build_info_labels () =
  [
    ("cores", string_of_int (Domain.recommended_domain_count ()));
    ("ocaml", Sys.ocaml_version);
    ("rev", git_rev ());
    ("hatches", String.concat "," (List.filter hatch_active escape_hatches));
  ]

(* Registered once into the runtime registry, which merges into every
   metrics output path (files, /metrics scrapes, worker or parent). *)
let () =
  Metrics.set
    (Metrics.gauge runtime
       ~help:"build/host metadata (constant 1; the labels are the data)"
       ~labels:(build_info_labels ()) "protean_build_info")
    1

(* Flip the collection switches for this process.  Workers call this
   too ([--worker] keeps the exporter flags in argv) so cells computed
   in shard processes carry their telemetry home over the frame
   protocol — but only the parent ever opens the tracer or writes
   files. *)
let enable ?(worker = false) c =
  if c.metrics_out <> None then E.collect_policy_metrics := true;
  if c.flamegraph_out <> None then E.collect_flame := true;
  if c.metrics_out <> None || c.attr_out <> None then E.collect_window := true;
  if (not worker) && wanted c then begin
    let tr = Trace.create () in
    Trace.name_process tr ~pid:0 "protean";
    tracer := Some tr;
    if c.trace_out <> None then begin
      E.cell_hook :=
        Some (fun key t0 t1 -> Trace.span tr ~cat:"cell" ~t0 ~t1 key);
      (* One span per *leaking* speculation window, on a simulated-time
         track (one cycle = one microsecond, its own pid). *)
      Trace.name_process tr ~pid:1 "simulated-windows";
      E.window_hook :=
        Some
          (fun label ws ->
            List.iter
              (fun (w : Spec_window.window) ->
                Trace.span_us tr ~cat:"window" ~pid:1
                  ~args:
                    [
                      ("trigger_pc", string_of_int w.Spec_window.w_pc);
                      ( "family",
                        Spec_window.trigger_family w.Spec_window.w_trigger );
                      ( "tainted",
                        string_of_int w.Spec_window.w_tainted );
                      ( "interventions",
                        string_of_int w.Spec_window.w_interventions );
                    ]
                  ~ts_us:w.Spec_window.w_opened
                  ~dur_us:(w.Spec_window.w_closed - w.Spec_window.w_opened)
                  (Printf.sprintf "%s window#%d" label w.Spec_window.w_id))
              ws)
    end
  end

(* --check-certs: flip the independent checker's switch and feed its
   per-certificate observations into protean_cert_* counters.  These
   live in the *runtime* registry, not the deterministic session one:
   the ProtCC compile cache is per-process, so audit counts vary with
   the -j/--shards process topology even though the verdicts do not. *)
let enable_cert_audit () =
  Protean_protcc.Certify.enabled := true;
  Protean_protcc.Certify.on_audit :=
    fun ~style ~claims ~violations ->
      let c name help =
        Metrics.counter runtime ~help
          ~labels:[ ("pass", style) ]
          ("protean_cert_" ^ name)
      in
      Metrics.inc (c "checked_total" "protection certificates audited");
      Metrics.inc ~n:claims
        (c "claims_total" "individual certificate claims audited");
      Metrics.inc ~n:violations
        (c "violations_total" "certificate claims refuted by the checker")

(* ------------------------------------------------------------------ *)
(* Deterministic metrics from the session cache                        *)
(* ------------------------------------------------------------------ *)

(* Cell keys are "suite/name|defense|config|spec_model|squash_bug|mc";
   the first three become the per-cell label set. *)
let labels_of_key key =
  match String.split_on_char '|' key with
  | bench :: defense :: core :: _ ->
      [ ("bench", bench); ("core", core); ("defense", defense) ]
  | _ -> [ ("cell", key) ]

(* One row per [Stats.t] field worth a family of its own (the marker
   position is bookkeeping, not a count, and is skipped). *)
let stat_families : (string * string * (Stats.t -> int)) list =
  [
    ( "protean_pipeline_cycles_total",
      "simulated cycles",
      fun s -> s.Stats.cycles );
    ( "protean_pipeline_committed_total",
      "instructions committed",
      fun s -> s.Stats.committed );
    ( "protean_pipeline_fetched_total",
      "instructions fetched (wrong path included)",
      fun s -> s.Stats.fetched );
    ( "protean_cycles_skipped_total",
      "idle cycles the event-driven scheduler skipped instead of \
       spinning (a subset of protean_pipeline_cycles_total)",
      fun s -> s.Stats.skipped_cycles );
    ( "protean_pipeline_squashes_total",
      "pipeline squashes",
      fun s -> s.Stats.squashes );
    ( "protean_pipeline_squashed_insns_total",
      "instructions flushed by squashes",
      fun s -> s.Stats.squashed_insns );
    ( "protean_pipeline_branch_mispredicts_total",
      "branch mispredictions",
      fun s -> s.Stats.branch_mispredicts );
    ( "protean_pipeline_machine_clears_total",
      "machine clears (faulting commits)",
      fun s -> s.Stats.machine_clears );
    ( "protean_pipeline_mem_order_violations_total",
      "memory order violations",
      fun s -> s.Stats.mem_order_violations );
    ( "protean_pipeline_loads_executed_total",
      "loads executed",
      fun s -> s.Stats.loads_executed );
    ( "protean_pipeline_loads_protected_mem_total",
      "loads that read protected memory",
      fun s -> s.Stats.loads_protected_mem );
    ( "protean_cache_l1d_accesses_total",
      "L1D accesses",
      fun s -> s.Stats.l1d_accesses );
    ( "protean_cache_l1d_misses_total",
      "L1D misses",
      fun s -> s.Stats.l1d_misses );
    ( "protean_defense_transmitter_stall_cycles_total",
      "cycles ready transmitters were stalled by the policy",
      fun s -> s.Stats.transmitter_stall_cycles );
    ( "protean_defense_wakeup_delay_cycles_total",
      "cycles completed results were held back from dependents",
      fun s -> s.Stats.wakeup_delay_cycles );
    ( "protean_defense_resolution_delay_cycles_total",
      "cycles executed branches were denied resolution",
      fun s -> s.Stats.resolution_delay_cycles );
    ( "protean_predictor_lookups_total",
      "access-predictor lookups",
      fun s -> s.Stats.access_pred_lookups );
    ( "protean_predictor_mispredicts_total",
      "access-predictor mispredictions among retired loads",
      fun s -> s.Stats.access_pred_mispredicts );
    ( "protean_predictor_false_negatives_total",
      "access-predictor false negatives (ProtDelay fallbacks)",
      fun s -> s.Stats.access_pred_false_negatives );
  ]

(* Ledger counter names → metric families.  "windows_opened" →
   protean_window_opened_total, "window_cycles" →
   protean_window_cycles_total, "transmitters" →
   protean_window_transmitters_total: strip the ledger's own
   windows_/window_ prefix, then re-root under the one family prefix. *)
let window_family name =
  let strip p s =
    let lp = String.length p in
    if String.length s > lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  let core =
    match strip "windows_" name with
    | Some s -> s
    | None -> ( match strip "window_" name with Some s -> s | None -> name)
  in
  "protean_window_" ^ core ^ "_total"

(* Per-cell measured-cycle histogram bounds: decades from 1k to 10M
   (cells beyond the fuel limit cannot exist). *)
let cell_cycle_buckets =
  [| 1_000; 10_000; 100_000; 1_000_000; 10_000_000 |]

let flame_total fl = List.fold_left (fun acc (_, n) -> acc + n) 0 fl

(* Build the deterministic registry from every cached cell.  Hashtable
   iteration order varies with insertion history (serial vs parallel
   fill), but every fold below is a commutative integer sum and
   snapshots sort by (family, labels), so the rendered bytes do not. *)
let of_session (session : E.session) =
  let reg = Metrics.create () in
  let cells =
    Metrics.counter reg ~help:"experiment cells computed"
      "protean_harness_cells_total"
  in
  let faults =
    Metrics.counter reg ~help:"cells resolved to the faulted sentinel"
      "protean_harness_cell_faults_total"
  in
  Hashtbl.iter
    (fun key (r : E.run_result) ->
      let labels = labels_of_key key in
      Metrics.inc cells;
      if Float.is_nan r.E.cycles then Metrics.inc faults
      else begin
        let h =
          Metrics.histogram reg
            ~help:"measured cycles per experiment cell"
            ~labels:[ ("defense", List.assoc "defense" labels) ]
            ~buckets:cell_cycle_buckets "protean_harness_cell_cycles"
        in
        Metrics.observe h (int_of_float r.E.cycles)
      end;
      List.iter
        (fun (st : Stats.t) ->
          List.iter
            (fun (family, help, field) ->
              let v = field st in
              if v <> 0 then
                Metrics.inc ~n:v (Metrics.counter reg ~help ~labels family))
            stat_families;
          (* Structural-port families (nonzero only when the cell ran a
             [Config.ports] config): per-port issue counts, and the
             stall attribution split into structural causes (no free
             port, CDB budget) vs protection causes (the defense's
             delay gates) — both labeled by kind so dashboards can
             stack them against total cycles. *)
          Array.iteri
            (fun port v ->
              if v <> 0 then
                Metrics.inc ~n:v
                  (Metrics.counter reg
                     ~help:"issues bound to each execution port"
                     ~labels:(("port", string_of_int port) :: labels)
                     "protean_port_busy_total"))
            st.Stats.port_busy;
          let stall family kind help v =
            if v <> 0 then
              Metrics.inc ~n:v
                (Metrics.counter reg ~help
                   ~labels:(("kind", kind) :: labels)
                   family)
          in
          stall "protean_stall_structural_cycles_total" "port"
            "entry-cycles ready instructions found no compatible free port"
            st.Stats.port_structural_stall_cycles;
          stall "protean_stall_structural_cycles_total" "writeback"
            "entry-cycles completions were deferred by the CDB budget"
            st.Stats.wb_queue_stall_cycles;
          stall "protean_stall_protection_cycles_total" "transmitter"
            "entry-cycles ready transmitters were stalled by the policy"
            st.Stats.transmitter_stall_cycles;
          stall "protean_stall_protection_cycles_total" "wakeup"
            "entry-cycles completed results were held back from dependents"
            st.Stats.wakeup_delay_cycles;
          stall "protean_stall_protection_cycles_total" "resolution"
            "entry-cycles executed branches were denied resolution"
            st.Stats.resolution_delay_cycles)
        r.E.stats;
      List.iter
        (fun (name, v) ->
          let m =
            Metrics.counter reg ~help:"defense policy-local counter" ~labels
              ("protean_defense_" ^ name ^ "_total")
          in
          Metrics.inc ~n:v m)
        r.E.policy_metrics;
      List.iter
        (fun (name, v) ->
          if v <> 0 then
            Metrics.inc ~n:v
              (Metrics.counter reg
                 ~help:"speculation-window ledger counter" ~labels
                 (window_family name)))
        r.E.window;
      match r.E.flame with
      | [] -> ()
      | fl ->
          let m =
            Metrics.counter reg
              ~help:
                "cycles attributed by the commit-gap flame profiler \
                 (equals protean_pipeline_cycles_total when flame export \
                 is on)"
              ~labels "protean_flame_cycles_total"
          in
          Metrics.inc ~n:(flame_total fl) m)
    session.E.cache;
  (* Shared-frontend accounting: every cell tagged with a frontend
     group key shared that group's one workload build + instrumentation
     + decode; reuse per group = group size - 1 (the first cell paid
     for the build).  Zero groups — sharing disabled, or no cells —
     emit no family at all, keeping sharing-off snapshots byte-stable
     with pre-sharing ones. *)
  let fe_groups = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (r : E.run_result) ->
      if r.E.frontend <> "" then
        Hashtbl.replace fe_groups r.E.frontend
          (1
          + Option.value ~default:0 (Hashtbl.find_opt fe_groups r.E.frontend)))
    session.E.cache;
  Hashtbl.iter
    (fun fe n ->
      if n > 1 then
        Metrics.inc ~n:(n - 1)
          (Metrics.counter reg
             ~help:"cells that reused a shared frontend build"
             ~labels:[ ("frontend", fe) ]
             "protean_frontend_reuse_total"))
    fe_groups;
  reg

let flame_of_session (session : E.session) =
  let acc = Flame.create () in
  Hashtbl.iter
    (fun _ (r : E.run_result) ->
      List.iter (fun (stack, n) -> Flame.add_stack acc stack n) r.E.flame)
    session.E.cache;
  acc

(* ------------------------------------------------------------------ *)
(* Supervisor lifecycle observer                                       *)
(* ------------------------------------------------------------------ *)

(* Subscribe the returned handler to a supervisor bus: lifecycle events
   become [protean_supervisor_*] counters in the runtime registry, plus
   trace instants when a tracer is open. *)
let supervisor_observer () =
  let c name help =
    Metrics.counter runtime ~help ("protean_supervisor_" ^ name)
  in
  let spawns = c "spawns_total" "worker processes spawned" in
  let heartbeats = c "heartbeats_total" "worker heartbeat frames" in
  let cells_done = c "cells_done_total" "cells completed by workers" in
  let cell_faults = c "cell_faults_total" "structured in-worker cell faults" in
  let kills = c "kills_total" "workers killed (deadline or corruption)" in
  let exits = c "worker_exits_total" "worker processes reaped" in
  let retries = c "retries_total" "shard retry attempts" in
  let bisects = c "bisects_total" "shard bisections" in
  let poisoned = c "poisoned_cells_total" "cells poisoned after retries" in
  let checkpoint =
    c "checkpoint_cells_total" "cells resumed from checkpoints"
  in
  let fallbacks = c "fallbacks_total" "in-process fallbacks" in
  let merged = c "merged_cells_total" "cells in the final merge" in
  let connects = c "workers_connected_total" "dial-in workers accepted" in
  let rejects = c "workers_rejected_total" "dial-in handshakes refused" in
  let leases = c "leases_granted_total" "work batches leased to workers" in
  let disconnects =
    c "workers_disconnected_total" "dial-in workers lost mid-campaign"
  in
  fun (ev : Supervisor.event) ->
    (match !tracer with
    | Some tr -> (
        match ev with
        | Supervisor.Heartbeat _ | Supervisor.Cell_done _
        | Supervisor.Worker_log _ | Supervisor.Worker_stderr _ ->
            () (* too chatty for instants; counted below *)
        | ev ->
            Trace.instant tr ~cat:"supervisor"
              (Supervisor.event_to_string ev))
    | None -> ());
    match ev with
    | Supervisor.Spawn _ -> Metrics.inc spawns
    | Supervisor.Heartbeat _ -> Metrics.inc heartbeats
    | Supervisor.Cell_done _ -> Metrics.inc cells_done
    | Supervisor.Cell_fault _ -> Metrics.inc cell_faults
    | Supervisor.Kill _ -> Metrics.inc kills
    | Supervisor.Worker_exit _ -> Metrics.inc exits
    | Supervisor.Retry _ -> Metrics.inc retries
    | Supervisor.Bisect _ -> Metrics.inc bisects
    | Supervisor.Poisoned _ -> Metrics.inc poisoned
    | Supervisor.Checkpoint_loaded { cells } ->
        Metrics.inc ~n:cells checkpoint
    | Supervisor.Fallback _ -> Metrics.inc fallbacks
    | Supervisor.Merged { cells; _ } -> Metrics.inc ~n:cells merged
    | Supervisor.Worker_connected _ -> Metrics.inc connects
    | Supervisor.Worker_rejected _ -> Metrics.inc rejects
    | Supervisor.Lease_granted _ -> Metrics.inc leases
    | Supervisor.Worker_disconnected _ -> Metrics.inc disconnects
    | Supervisor.Listening _ | Supervisor.Worker_log _
    | Supervisor.Worker_stderr _ ->
        ()

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Deterministic session metrics merged with the runtime families. *)
let final_snapshot session =
  Metrics.merge
    (Metrics.snapshot (of_session session))
    (Metrics.snapshot runtime)

(* Scrape body for a live /metrics HTTP listener: rendered per request,
   so mid-campaign scrapes see the runtime families (supervisor
   lifecycle counters) the observer is filling in real time. *)
let live_metrics session () = Metrics.to_prometheus (final_snapshot session)

(* Bind the live /metrics HTTP listener for [--metrics-listen],
   degrading gracefully when the address is unavailable (port already
   bound, unresolvable interface): a structured warning and [None], so
   the run continues without live metrics instead of aborting — losing
   a scrape endpoint is never worth losing the campaign. *)
let listen_metrics ~src addr body =
  match Protean_telemetry.Http_listener.create ~addr body with
  | h ->
      Protean_telemetry.Log.info ~src "serving /metrics on port %d"
        (Protean_telemetry.Http_listener.port h);
      Some h
  | exception Unix.Unix_error (err, fn, _) ->
      Protean_telemetry.Log.warn ~src
        "--metrics-listen %s unavailable (%s in %s); continuing without \
         live metrics"
        addr (Unix.error_message err) fn;
      None
  | exception Failure reason ->
      Protean_telemetry.Log.warn ~src
        "--metrics-listen %s unavailable (%s); continuing without live \
         metrics"
        addr reason;
      None

(* --attr-out: the per-cell speculation-window report.  One JSON object
   per cell that carried window counters (sorted by key — deterministic
   across -j/--shards), each with its over-protection ratio, plus
   campaign-wide totals; the rendered text summary goes to stdout so an
   interactive run shows the audit without opening the file. *)
let attr_report session =
  let cells =
    Hashtbl.fold
      (fun key (r : E.run_result) acc ->
        if r.E.window = [] then acc else (key, r.E.window) :: acc)
      session.E.cache []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let totals =
    List.fold_left
      (fun acc (_, w) -> Twindow.merge_counters acc w)
      [] cells
  in
  (cells, totals)

let op_json = function
  | Some r -> Printf.sprintf "%.4f" r
  | None -> "null"

let attr_json cells totals =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"cells\": [\n";
  List.iteri
    (fun i (key, w) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"cell\": \"%s\", \"window\": %s, \"over_protection\": %s}"
           (String.escaped key)
           (Twindow.counters_to_json w)
           (op_json (Twindow.over_protection w))))
    cells;
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"totals\": %s,\n  \"over_protection\": %s\n}\n"
       (Twindow.counters_to_json totals)
       (op_json (Twindow.over_protection totals)));
  Buffer.contents b

let render_attr cells totals =
  let b = Buffer.create 1024 in
  Buffer.add_string b "speculation-window audit\n";
  List.iter
    (fun (key, w) ->
      let op =
        match Twindow.over_protection w with
        | Some r -> Printf.sprintf "over-protection %.2f" r
        | None -> "no interventions"
      in
      Buffer.add_string b
        (Printf.sprintf "  %-48s leaky %d/%d  %s\n" key
           (Twindow.counter "windows_leaky" w)
           (Twindow.counter "windows_opened" w)
           op))
    cells;
  (match Twindow.over_protection totals with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  total over-protection ratio: %.4f\n" r)
  | None -> Buffer.add_string b "  total: no interventions recorded\n");
  Buffer.contents b

(* Write whatever [c] asked for.  [.json] metric paths get the JSON
   exporter, anything else Prometheus text. *)
let write_outputs c session =
  (match c.metrics_out with
  | Some path ->
      let snap = final_snapshot session in
      if Filename.check_suffix path ".json" then
        write_file path (Metrics.to_json snap)
      else write_file path (Metrics.to_prometheus snap)
  | None -> ());
  (match c.trace_out with
  | Some path -> (
      match !tracer with
      | Some tr -> write_file path (Trace.to_chrome_json tr)
      | None -> ())
  | None -> ());
  (match c.flamegraph_out with
  | Some path ->
      write_file path (Flame.to_folded (flame_of_session session))
  | None -> ());
  match c.attr_out with
  | Some path ->
      let cells, totals = attr_report session in
      write_file path (attr_json cells totals);
      print_string (render_attr cells totals)
  | None -> ()
