(* Work-stealing grid scheduler on raw OCaml 5 domains (no external
   dependencies).

   Experiment grids are embarrassingly parallel — independent
   (benchmark × defense-configuration) cells — but cell runtimes vary
   by two orders of magnitude (a W32 microbenchmark vs. a multicore
   PARSEC cell), so static partitioning leaves domains idle.  Tasks are
   dealt round-robin into per-worker deques; a worker pops from the
   front of its own deque and, when empty, steals from the *back* of
   the longest other deque, so stealing grabs the work its owner would
   reach last.

   Every simulation in this codebase is deterministic (seeded
   [Random.State], no wall-clock reads), and tasks share no mutable
   state except explicitly mutex-guarded caches, so parallel execution
   is observably identical to serial: [map] returns results indexed by
   task, regardless of which domain ran what. *)

let default_jobs () = Domain.recommended_domain_count ()

(* The simulator allocates heavily (boxed [Int64] addresses every
   cycle), and OCaml 5 minor collections are stop-the-world across
   *all* domains — with the default 256k-word minor heap, multi-domain
   runs spend most of their time in collection barriers (measured 3×
   slower than serial at [-j 2]).  Growing the per-domain minor heap
   ~64× makes the barriers rare enough to not matter. *)
let grid_minor_heap_words = 16 * 1024 * 1024

let with_grid_gc f =
  let saved = (Gc.get ()).Gc.minor_heap_size in
  if saved >= grid_minor_heap_words then f ()
  else begin
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = grid_minor_heap_words };
    Fun.protect
      ~finally:(fun () ->
        Gc.set { (Gc.get ()) with Gc.minor_heap_size = saved })
      f
  end

type 'a cell = Pending | Done of 'a | Raised of exn * Printexc.raw_backtrace

(* Run every task, using [jobs] domains (including the calling one);
   returns the results in task order.  The first task exception (by
   task index) is re-raised after all workers drain.  [jobs <= 1] runs
   serially in the calling domain. *)
let map ?(jobs = default_jobs ()) (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.map (fun f -> f ()) tasks
  else begin
    let queues = Array.init jobs (fun _ -> ref []) in
    let locks = Array.init jobs (fun _ -> Mutex.create ()) in
    (* Deal in reverse so each deque's front holds the lowest index. *)
    for i = n - 1 downto 0 do
      let q = queues.(i mod jobs) in
      q := i :: !q
    done;
    let results = Array.make n Pending in
    let with_lock w f =
      Mutex.lock locks.(w);
      Fun.protect ~finally:(fun () -> Mutex.unlock locks.(w)) f
    in
    let pop_own w =
      with_lock w (fun () ->
          match !(queues.(w)) with
          | [] -> None
          | i :: rest ->
              queues.(w) := rest;
              Some i)
    in
    let steal_from w =
      with_lock w (fun () ->
          match List.rev !(queues.(w)) with
          | [] -> None
          | i :: rest_rev ->
              queues.(w) := List.rev rest_rev;
              Some i)
    in
    let steal me =
      (* Longest victim first: grab from where the backlog is. *)
      let order =
        List.sort
          (fun a b -> compare (List.length !(queues.(b))) (List.length !(queues.(a))))
          (List.filter (fun w -> w <> me) (List.init jobs Fun.id))
      in
      List.fold_left
        (fun acc w -> match acc with Some _ -> acc | None -> steal_from w)
        None order
    in
    let run_task i =
      results.(i) <-
        (match tasks.(i) () with
        | v -> Done v
        | exception e -> Raised (e, Printexc.get_raw_backtrace ()))
    in
    let rec worker w =
      match pop_own w with
      | Some i ->
          run_task i;
          worker w
      | None -> (
          match steal w with
          | Some i ->
              run_task i;
              worker w
          | None -> () (* no new tasks are ever produced: safe to exit *))
    in
    with_grid_gc (fun () ->
        let domains =
          Array.init (jobs - 1) (fun k ->
              Domain.spawn (fun () -> worker (k + 1)))
        in
        worker 0;
        Array.iter Domain.join domains);
    Array.map
      (function
        | Done v -> v
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false (* every index was dealt and drained *))
      results
  end

(* ------------------------------------------------------------------ *)
(* Parallel fuzzing campaigns                                          *)
(* ------------------------------------------------------------------ *)

module Fuzz = Protean_amulet.Fuzz

(* [Fuzz.run], parallelized over programs.  Programs are independent
   (per-program seeded RNG); merging sub-outcomes in index order makes
   the result — including the first-violation example — identical to
   the serial campaign. *)
let fuzz_run ?jobs (campaign : Fuzz.campaign) defense =
  let tasks =
    Array.init campaign.Fuzz.programs (fun index () ->
        let program = Fuzz.generate_program campaign index in
        Fuzz.test_program campaign defense ~index ~program)
  in
  let subs = map ?jobs tasks in
  let out = Fuzz.fresh_outcome () in
  Array.iter (fun sub -> Fuzz.merge_outcome ~into:out sub) subs;
  out

(* [Fuzz.run_resilient], parallelized over programs: the same
   per-program retry-once-then-skip barrier, witness capture and
   shrinking (shrinking replays serially at the end).  Checkpointing is
   inherently sequential and is not supported here — callers with
   [--resume] use the serial path. *)
let fuzz_run_resilient ?jobs ?(shrink = true) ?(shrink_budget = 64)
    (campaign : Fuzz.campaign) defense =
  let tasks =
    Array.init campaign.Fuzz.programs (fun index () ->
        let pseed = Fuzz.program_seed campaign index in
        let program = Fuzz.generate_program campaign index in
        let witness = ref None in
        let attempt () =
          Fuzz.test_program ~witness campaign defense ~index ~program
        in
        match attempt () with
        | sub -> (Some sub, !witness, None)
        | exception _ -> (
            match attempt () with
            | sub -> (Some sub, !witness, None)
            | exception e ->
                ( None,
                  None,
                  Some
                    {
                      Fuzz.sk_index = index;
                      sk_seed = pseed;
                      sk_reason = Fuzz.describe_exn e;
                    } )))
  in
  let per_program = map ?jobs tasks in
  let out = Fuzz.fresh_outcome () in
  let skips = ref [] in
  let witness = ref None in
  Array.iter
    (fun (sub, w, skip) ->
      (match sub with Some s -> Fuzz.merge_outcome ~into:out s | None -> ());
      (match (w, !witness) with Some _, None -> witness := w | _ -> ());
      match skip with Some s -> skips := s :: !skips | None -> ())
    per_program;
  let counterexample =
    match !witness with
    | Some w when shrink ->
        Some (Fuzz.shrink_witness ~budget:shrink_budget campaign defense w)
    | _ -> None
  in
  (* The attribution replay is serial and deterministic: the witness is
     the index-order-first violation, identical to the serial
     campaign's, so -j N attributes the same leak. *)
  let attribution =
    match !witness with
    | Some w -> Fuzz.attribute_witness campaign defense w
    | None -> None
  in
  {
    Fuzz.r_outcome = out;
    r_completed = campaign.Fuzz.programs - List.length !skips;
    r_skipped = List.rev !skips;
    r_resumed_from = None;
    r_counterexample = counterexample;
    r_attribution = attribution;
  }
