(* Runtime GC tuning for simulation processes.

   The cycle loop's remaining allocations are short-lived boxes (Int64
   values flowing through execute, list nodes in observer paths) plus
   pooled ROB entries that live exactly as long as their loop
   iteration.  Under the 256k-word default minor heap a hot single-core
   run triggers a minor collection every few hundred simulated cycles,
   and each one promotes still-live pooled state to the major heap —
   paying the copy *and* the write-barrier (caml_modify darkening) tax
   on every subsequent mutation.  A larger nursery lets those
   generations die young: on the hotloop benchmark it is worth ~20%
   simulation throughput.

   [tune] is called from the CLI entry points and the benchmark driver
   — not from library code, so embedders keep control — and defers to
   any explicit user sizing (OCAMLRUNPARAM=s=..., or an earlier
   [Gc.set]): it only grows a nursery still at the runtime default. *)

let default_minor_heap = 262_144 (* words; the runtime's default *)
let tuned_minor_heap = 4 * 1024 * 1024 (* words *)

let tune () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size <= default_minor_heap then
    Gc.set { g with Gc.minor_heap_size = tuned_minor_heap }
