(* Microarchitectural invariant checker for the out-of-order core.

   The pipeline's internal consistency rests on a handful of structural
   invariants (ROB ring layout, LSQ occupancy accounting, rename-map
   producer validity, ProtISA protection-bit conservation, fetch-buffer
   sanity).  Violating any of them silently corrupts a simulation — and a
   corrupted simulation can report a defense as secure when it is not.

   [check] audits a pipeline snapshot and returns the violations it
   finds; [checker] packages it as a per-cycle hook (usable directly as
   [Pipeline.run]'s [on_cycle]) with off/warn/fail modes, sampled every
   [every] cycles; [attach] subscribes the same checker to the
   pipeline's hook bus on [On_cycle_end], which is how [Multicore.run]
   wires it per core. *)

open Protean_isa
module S = Pipeline_state

type mode = Off | Warn | Fail

let mode_name = function Off -> "off" | Warn -> "warn" | Fail -> "fail"

let mode_of_string = function
  | "off" -> Off
  | "warn" -> Warn
  | "fail" -> Fail
  | s -> invalid_arg ("Invariants.mode_of_string: " ^ s)

type violation = { inv : string; detail : string }

let check (t : S.t) : violation list =
  let vs = ref [] in
  let fail inv fmt =
    Printf.ksprintf (fun detail -> vs := { inv; detail } :: !vs) fmt
  in
  let rob = t.S.rob in
  let n = Array.length rob in
  let count = t.S.count in
  let head_seq = t.S.head_seq in
  let head_idx = t.S.head_idx in
  (* --- ROB ring/count consistency ---------------------------------- *)
  if count < 0 || count > n then
    fail "rob-count" "count %d outside [0, %d]" count n
  else begin
    (* Every occupied slot holds the sequence number its position
       implies; every slot outside the live window is empty. *)
    for i = 0 to count - 1 do
      let idx = (head_idx + i) mod n in
      match rob.(idx) with
      | None -> fail "rob-ring" "hole at slot %d (expected seq %d)" i (head_seq + i)
      | Some e ->
          if e.Rob_entry.seq <> head_seq + i then
            fail "rob-ring" "slot %d holds seq %d, expected %d" i
              e.Rob_entry.seq (head_seq + i)
    done;
    for i = count to n - 1 do
      let idx = (head_idx + i) mod n in
      match rob.(idx) with
      | Some e ->
          fail "rob-ring" "stale entry seq %d outside the live window"
            e.Rob_entry.seq
      | None -> ()
    done
  end;
  if t.S.next_seq <> head_seq + count then
    fail "rob-seq" "next_seq %d <> head_seq %d + count %d" t.S.next_seq
      head_seq count;
  (* --- LSQ occupancy ------------------------------------------------ *)
  let loads = ref 0 and stores = ref 0 in
  S.iter_rob t (fun e ->
      if Rob_entry.is_load e then incr loads;
      if Rob_entry.is_store e then incr stores);
  if t.S.lq_used <> !loads then
    fail "lsq-count" "lq_used %d but %d loads in the ROB" t.S.lq_used !loads;
  if t.S.sq_used <> !stores then
    fail "lsq-count" "sq_used %d but %d stores in the ROB" t.S.sq_used !stores;
  if t.S.lq_used > t.S.cfg.Config.lq_size then
    fail "lsq-bound" "lq_used %d exceeds lq_size %d" t.S.lq_used
      t.S.cfg.Config.lq_size;
  if t.S.sq_used > t.S.cfg.Config.sq_size then
    fail "lsq-bound" "sq_used %d exceeds sq_size %d" t.S.sq_used
      t.S.cfg.Config.sq_size;
  (* --- Rename-map producer validity -------------------------------- *)
  Array.iteri
    (fun ri p ->
      if p >= 0 then begin
        let r = Reg.of_int ri in
        match S.get_entry t p with
        | None ->
            fail "rmap-producer" "%s maps to seq %d, not in the ROB"
              (Reg.name r) p
        | Some e ->
            if not (Array.exists (fun d -> Reg.equal d r) e.Rob_entry.dsts)
            then
              fail "rmap-producer" "%s maps to seq %d which does not write it"
                (Reg.name r) p
            else
              (* The mapping must name the *youngest* in-flight writer. *)
              S.iter_rob t (fun y ->
                  if
                    y.Rob_entry.seq > p
                    && Array.exists (fun d -> Reg.equal d r) y.Rob_entry.dsts
                  then
                    fail "rmap-producer"
                      "%s maps to seq %d but seq %d is a younger writer"
                      (Reg.name r) p y.Rob_entry.seq)
      end)
    t.S.rmap_producer;
  (* --- Protection-bit conservation ---------------------------------- *)
  (* A register with no in-flight writer (released at commit or rebuilt
     by a squash) must agree with the committed architectural state, for
     both its value and its ProtISA protection bit — squash replay or
     commit release dropping a protection bit is a security bug, not
     just a correctness one. *)
  Array.iteri
    (fun ri p ->
      if p < 0 then begin
        let r = Reg.of_int ri in
        if t.S.rmap_prot.(ri) <> t.S.reg_prot.(ri) then
          fail "prot-conservation"
            "%s has no in-flight writer but rmap_prot=%b <> reg_prot=%b"
            (Reg.name r) t.S.rmap_prot.(ri) t.S.reg_prot.(ri);
        if not (Int64.equal t.S.rmap_value.(ri) t.S.regs.(ri)) then
          fail "rmap-value"
            "%s has no in-flight writer but rmap_value=%Ld <> regs=%Ld"
            (Reg.name r) t.S.rmap_value.(ri) t.S.regs.(ri)
      end)
    t.S.rmap_producer;
  (* --- Fetch-buffer sanity ------------------------------------------ *)
  let buf_len = Queue.length t.S.fetch_buf in
  if buf_len > S.fetch_buf_capacity then
    fail "fetch-buf" "length %d exceeds capacity %d" buf_len
      S.fetch_buf_capacity;
  Queue.iter
    (fun (item : S.fetch_item) ->
      if item.S.f_fetched > t.S.cycle then
        fail "fetch-buf" "item at pc %d fetched in the future (cycle %d)"
          item.S.f_pc item.S.f_fetched;
      if
        item.S.f_ready - item.S.f_fetched <> t.S.cfg.Config.frontend_latency
      then
        fail "fetch-buf" "item at pc %d has ready-fetched delta %d, expected %d"
          item.S.f_pc
          (item.S.f_ready - item.S.f_fetched)
          t.S.cfg.Config.frontend_latency)
    t.S.fetch_buf;
  List.rev !vs

let violations_to_string vs =
  String.concat "; " (List.map (fun v -> v.inv ^ ": " ^ v.detail) vs)

(* A per-cycle hook sampling the checks every [every] cycles.  [Warn]
   reports each distinct invariant once per checker instance on stderr;
   [Fail] raises [Pipeline_state.Sim_fault] with the full violation list
   in the dump. *)
let checker ?(every = 1) (mode : mode) : S.t -> unit =
  let every = max 1 every in
  let warned = Hashtbl.create 8 in
  fun t ->
    match mode with
    | Off -> ()
    | Warn | Fail -> (
        if t.S.cycle mod every = 0 then
          match check t with
          | [] -> ()
          | vs -> (
              match mode with
              | Off -> ()
              | Warn ->
                  List.iter
                    (fun v ->
                      if not (Hashtbl.mem warned v.inv) then begin
                        Hashtbl.replace warned v.inv ();
                        Printf.eprintf "[invariant:%s] cycle %d: %s\n%!" v.inv
                          t.S.cycle v.detail
                      end)
                    vs
              | Fail ->
                  raise
                    (S.Sim_fault
                       (S.fault t
                          (S.Invariant_violation (violations_to_string vs))))))

(* Subscribe a [checker] to the pipeline's hook bus, firing at
   [On_cycle_end].  One checker instance per pipeline: the warn-once
   table is per subscription. *)
let attach ?every mode (t : S.t) =
  let f = checker ?every mode in
  Hooks.subscribe t.S.hooks ~name:"invariants" (fun st ev ->
      match ev with Hooks.On_cycle_end -> f st | _ -> ())
