(* Microarchitectural invariant checker for the out-of-order core.

   The pipeline's internal consistency rests on a handful of structural
   invariants (ROB ring layout, LSQ occupancy accounting, rename-map
   producer validity, ProtISA protection-bit conservation, fetch-buffer
   sanity).  Violating any of them silently corrupts a simulation — and a
   corrupted simulation can report a defense as secure when it is not.

   [check] audits a pipeline snapshot and returns the violations it
   finds; [check_sched] cross-checks the O(active) scheduler's redundant
   indexes (unissued/branch lists, in-flight deque, store/load queues,
   wakeup chains, dormancy) against a brute-force ROB scan — it is what
   [Pipeline.step] runs per cycle under [--paranoid-sched].  [checker]
   packages both as a per-cycle hook (usable directly as [Pipeline.run]'s
   [on_cycle]) with off/warn/fail modes, sampled every [every] cycles;
   [attach] subscribes the same checker to the pipeline's hook bus on
   [On_cycle_end], which is how [Multicore.run] wires it per core. *)

open Protean_isa
module S = Pipeline_state

type mode = Off | Warn | Fail

let mode_name = function Off -> "off" | Warn -> "warn" | Fail -> "fail"

let mode_of_string = function
  | "off" -> Off
  | "warn" -> Warn
  | "fail" -> Fail
  | s -> invalid_arg ("Invariants.mode_of_string: " ^ s)

type violation = { inv : string; detail : string }

(* Cross-check the scheduler indexes against the ring.  Counting
   argument per index: every member must be a live entry in the right
   state (soundness), and the member count must equal the ring count of
   entries in that state (completeness) — together they prove the index
   is exactly the set it claims to be, without per-cycle hash tables. *)
let check_sched (t : S.t) : violation list =
  let vs = ref [] in
  let fail inv fmt =
    Printf.ksprintf (fun detail -> vs := { inv; detail } :: !vs) fmt
  in
  let live (e : Rob_entry.t) =
    (not (Rob_entry.is_null e)) && S.peek t e.Rob_entry.seq == e
  in
  (* Unissued list: exactly the live unissued entries, seq-ascending. *)
  let uq_count = ref 0 in
  let prev_seq = ref min_int in
  let cursor = ref t.S.uq_head in
  while not (Rob_entry.is_null !cursor) do
    let e = !cursor in
    incr uq_count;
    if not (live e) then fail "sched-uq" "dead entry seq %d linked" e.Rob_entry.seq;
    if e.Rob_entry.issued then
      fail "sched-uq" "issued entry seq %d still linked" e.Rob_entry.seq;
    if e.Rob_entry.seq <= !prev_seq then
      fail "sched-uq" "not seq-ascending at seq %d" e.Rob_entry.seq;
    prev_seq := e.Rob_entry.seq;
    cursor := e.Rob_entry.uq_next
  done;
  let ring_unissued = ref 0 in
  S.iter_rob t (fun e -> if not e.Rob_entry.issued then incr ring_unissued);
  if !uq_count <> !ring_unissued then
    fail "sched-uq" "list has %d entries, ring has %d unissued" !uq_count
      !ring_unissued;
  (* Unresolved-branch list: exactly the live unresolved branches. *)
  let bq_count = ref 0 in
  let prev_seq = ref min_int in
  let cursor = ref t.S.bq_head in
  while not (Rob_entry.is_null !cursor) do
    let e = !cursor in
    incr bq_count;
    if not (live e) then fail "sched-bq" "dead entry seq %d linked" e.Rob_entry.seq;
    if (not e.Rob_entry.is_branch) || e.Rob_entry.resolved then
      fail "sched-bq" "seq %d is not a live unresolved branch" e.Rob_entry.seq;
    if e.Rob_entry.seq <= !prev_seq then
      fail "sched-bq" "not seq-ascending at seq %d" e.Rob_entry.seq;
    prev_seq := e.Rob_entry.seq;
    cursor := e.Rob_entry.bq_next
  done;
  let ring_unresolved = ref 0 in
  S.iter_rob t (fun e ->
      if e.Rob_entry.is_branch && not e.Rob_entry.resolved then
        incr ring_unresolved);
  if !bq_count <> !ring_unresolved then
    fail "sched-bq" "list has %d entries, ring has %d unresolved branches"
      !bq_count !ring_unresolved;
  (* In-flight deque: exactly the live issued-but-not-executed entries. *)
  let inflight_count = ref 0 in
  Entryq.iter
    (fun e ->
      incr inflight_count;
      if not (live e) then
        fail "sched-inflight" "dead entry seq %d queued" e.Rob_entry.seq;
      if (not e.Rob_entry.issued) || e.Rob_entry.executed then
        fail "sched-inflight" "seq %d is not issued-and-unexecuted"
          e.Rob_entry.seq)
    t.S.inflight;
  let ring_inflight = ref 0 in
  S.iter_rob t (fun e ->
      if e.Rob_entry.issued && not e.Rob_entry.executed then incr ring_inflight);
  if !inflight_count <> !ring_inflight then
    fail "sched-inflight" "deque has %d entries, ring has %d in flight"
      !inflight_count !ring_inflight;
  (* Store/load queues: exactly the live stores/loads, seq-ascending
     (ascent is implied by membership + count + push order, but check it
     directly — it is what [lower_bound] relies on). *)
  let check_lsq name q is_kind used =
    let n = ref 0 in
    let prev_seq = ref min_int in
    Entryq.iter
      (fun e ->
        incr n;
        if not (live e) then fail name "dead entry seq %d queued" e.Rob_entry.seq;
        if not (is_kind e) then fail name "seq %d has the wrong kind" e.Rob_entry.seq;
        if e.Rob_entry.seq <= !prev_seq then
          fail name "not seq-ascending at seq %d" e.Rob_entry.seq;
        prev_seq := e.Rob_entry.seq)
      q;
    if !n <> used then fail name "queue has %d entries, counter says %d" !n used
  in
  check_lsq "sched-sq" t.S.lsq_stores Rob_entry.is_store t.S.sq_used;
  check_lsq "sched-lq" t.S.lsq_loads Rob_entry.is_load t.S.lq_used;
  (* Wakeup chains.  Soundness: every chain node (consumer, slot) must
     name a live consumer whose slot is non-ready and produced by the
     chain's owner.  Completeness: the total node count must equal the
     ring count of (entry, slot) pairs that are non-ready with a live,
     un-executed producer — so no waiting slot is missing from a chain.
     Dormancy: a dormant entry must be unissued with at least one
     non-ready source and *no* non-ready source whose producer is
     committed or executed (such an entry must stay active: its forward
     could be policy-gated, which emits per-cycle events). *)
  let chain_nodes = ref 0 in
  S.iter_rob t (fun p ->
      let c = ref p.Rob_entry.waiters in
      let s = ref p.Rob_entry.waiters_slot in
      if (not (Rob_entry.is_null !c)) && p.Rob_entry.executed then
        fail "sched-wake" "executed producer seq %d has a non-empty chain"
          p.Rob_entry.seq;
      while not (Rob_entry.is_null !c) do
        let cur = !c and slot = !s in
        incr chain_nodes;
        if slot < 0 || slot >= Array.length cur.Rob_entry.src_ready then begin
          fail "sched-wake" "bad slot %d for consumer seq %d in chain of seq %d"
            slot cur.Rob_entry.seq p.Rob_entry.seq;
          c := Rob_entry.null (* cannot follow a corrupt link *)
        end
        else begin
          if not (live cur) then
            fail "sched-wake" "dead consumer seq %d in chain of seq %d"
              cur.Rob_entry.seq p.Rob_entry.seq
          else begin
            if cur.Rob_entry.src_ready.(slot) then
              fail "sched-wake" "ready slot %d of seq %d still chained" slot
                cur.Rob_entry.seq;
            if cur.Rob_entry.src_producer.(slot) <> p.Rob_entry.seq then
              fail "sched-wake" "slot %d of seq %d chained to wrong producer %d"
                slot cur.Rob_entry.seq p.Rob_entry.seq
          end;
          c := cur.Rob_entry.wl_next.(slot);
          s := cur.Rob_entry.wl_slot.(slot)
        end
      done);
  let waiting_slots = ref 0 in
  S.iter_rob t (fun e ->
      let n = Array.length e.Rob_entry.src_ready in
      let pending = ref false in
      let blocked_or_done = ref false in
      for i = 0 to n - 1 do
        if not e.Rob_entry.src_ready.(i) then begin
          let p = S.peek t e.Rob_entry.src_producer.(i) in
          if Rob_entry.is_null p || p.Rob_entry.executed then
            blocked_or_done := true
          else begin
            pending := true;
            incr waiting_slots
          end
        end
      done;
      if e.Rob_entry.dormant then begin
        if e.Rob_entry.issued then
          fail "sched-dormant" "issued entry seq %d is dormant" e.Rob_entry.seq;
        if not !pending then
          fail "sched-dormant" "dormant seq %d has no pending producer"
            e.Rob_entry.seq;
        if !blocked_or_done then
          fail "sched-dormant"
            "dormant seq %d has a source with an executed/committed producer"
            e.Rob_entry.seq
      end);
  if !chain_nodes <> !waiting_slots then
    fail "sched-wake" "chains hold %d nodes, ring has %d waiting slots"
      !chain_nodes !waiting_slots;
  (* Structural port model (only when [Config.ports] is configured).
     The checker runs after the cycle counter advanced, so "last cycle"
     is [t.cycle - 1]; a blocking holder's busy-until satisfies
     busy_until = t.cycle + cycles_left - 1 whether or not its first
     tick has happened (both cases reduce to the same formula). *)
  (match t.S.cfg.Config.ports with
  | None -> ()
  | Some pc ->
      let n_ports = Array.length pc.Config.port_caps in
      (* Binding sanity: every bound entry names a real, compatible
         port; every issued entry is bound. *)
      S.iter_rob t (fun e ->
          let port = e.Rob_entry.port in
          if e.Rob_entry.issued && port < 0 then
            fail "sched-port" "issued entry seq %d has no port" e.Rob_entry.seq;
          if port >= 0 then begin
            if port >= n_ports then
              fail "sched-port" "seq %d bound to port %d of %d" e.Rob_entry.seq
                port n_ports
            else begin
              if not e.Rob_entry.issued then
                fail "sched-port" "unissued entry seq %d bound to port %d"
                  e.Rob_entry.seq port;
              let cls = Rob_entry.op_class e in
              if not (Config.port_can pc port cls) then
                fail "sched-port" "seq %d (%s) bound to incapable port %d"
                  e.Rob_entry.seq
                  (Config.op_class_name cls)
                  port
            end
          end);
      (* Port oversubscription, two forms.  Same-cycle: the entries that
         issued last cycle must occupy pairwise-distinct ports.
         Cross-cycle: at most one live, still-computing entry of an
         unpipelined class may hold each port, and the schedule's
         busy-until must agree with its remaining latency. *)
      let issued_on = Array.make n_ports (-1) in
      let holder_on = Array.make n_ports (-1) in
      S.iter_rob t (fun e ->
          let port = e.Rob_entry.port in
          if port >= 0 && port < n_ports then begin
            if e.Rob_entry.t_issue = t.S.cycle - 1 then begin
              if issued_on.(port) >= 0 then
                fail "sched-port" "seq %d and seq %d both issued to port %d"
                  issued_on.(port) e.Rob_entry.seq port;
              issued_on.(port) <- e.Rob_entry.seq
            end;
            if
              (not e.Rob_entry.executed)
              && e.Rob_entry.cycles_left > 0
              && not
                   pc.Config.cls_pipelined.(Config.op_class_index
                                              (Rob_entry.op_class e))
            then begin
              if holder_on.(port) >= 0 then
                fail "sched-port" "seq %d and seq %d both hold blocking port %d"
                  holder_on.(port) e.Rob_entry.seq port;
              holder_on.(port) <- e.Rob_entry.seq;
              let expect = t.S.cycle + e.Rob_entry.cycles_left - 1 in
              if t.S.port_busy_until.(port) <> expect then
                fail "sched-port"
                  "port %d busy-until %d disagrees with holder seq %d \
                   (expected %d)"
                  port
                  t.S.port_busy_until.(port)
                  e.Rob_entry.seq expect
            end
          end);
      (* Writeback budget: completions stamped last cycle cannot exceed
         the CDB width.  Every such entry is still live at check time
         (commit precedes the execute tick within a cycle), so a ring
         scan sees them all; a mid-cycle squash can only undercount,
         which keeps the bound sound. *)
      if pc.Config.wb_width > 0 then begin
        let completed_last = ref 0 in
        S.iter_rob t (fun e ->
            if e.Rob_entry.executed && e.Rob_entry.t_complete = t.S.cycle - 1
            then incr completed_last);
        if !completed_last > pc.Config.wb_width then
          fail "sched-wb" "%d completions last cycle exceed CDB width %d"
            !completed_last pc.Config.wb_width
      end);
  List.rev !vs

let check (t : S.t) : violation list =
  let vs = ref [] in
  let fail inv fmt =
    Printf.ksprintf (fun detail -> vs := { inv; detail } :: !vs) fmt
  in
  let rob = t.S.rob in
  let n = Array.length rob in
  let count = t.S.count in
  let head_seq = t.S.head_seq in
  let head_idx = t.S.head_idx in
  (* --- ROB ring/count consistency ---------------------------------- *)
  if count < 0 || count > n then
    fail "rob-count" "count %d outside [0, %d]" count n
  else begin
    (* Every occupied slot holds the sequence number its position
       implies; every slot outside the live window is empty. *)
    for i = 0 to count - 1 do
      let idx = (head_idx + i) mod n in
      let e = rob.(idx) in
      if Rob_entry.is_null e then
        fail "rob-ring" "hole at slot %d (expected seq %d)" i (head_seq + i)
      else if e.Rob_entry.seq <> head_seq + i then
        fail "rob-ring" "slot %d holds seq %d, expected %d" i e.Rob_entry.seq
          (head_seq + i)
    done;
    for i = count to n - 1 do
      let idx = (head_idx + i) mod n in
      let e = rob.(idx) in
      if not (Rob_entry.is_null e) then
        fail "rob-ring" "stale entry seq %d outside the live window"
          e.Rob_entry.seq
    done
  end;
  if t.S.next_seq <> head_seq + count then
    fail "rob-seq" "next_seq %d <> head_seq %d + count %d" t.S.next_seq
      head_seq count;
  (* --- LSQ occupancy ------------------------------------------------ *)
  let loads = ref 0 and stores = ref 0 in
  S.iter_rob t (fun e ->
      if Rob_entry.is_load e then incr loads;
      if Rob_entry.is_store e then incr stores);
  if t.S.lq_used <> !loads then
    fail "lsq-count" "lq_used %d but %d loads in the ROB" t.S.lq_used !loads;
  if t.S.sq_used <> !stores then
    fail "lsq-count" "sq_used %d but %d stores in the ROB" t.S.sq_used !stores;
  if t.S.lq_used > t.S.cfg.Config.lq_size then
    fail "lsq-bound" "lq_used %d exceeds lq_size %d" t.S.lq_used
      t.S.cfg.Config.lq_size;
  if t.S.sq_used > t.S.cfg.Config.sq_size then
    fail "lsq-bound" "sq_used %d exceeds sq_size %d" t.S.sq_used
      t.S.cfg.Config.sq_size;
  (* --- Rename-map producer validity -------------------------------- *)
  Array.iteri
    (fun ri p ->
      if p >= 0 then begin
        let r = Reg.of_int ri in
        match S.get_entry t p with
        | None ->
            fail "rmap-producer" "%s maps to seq %d, not in the ROB"
              (Reg.name r) p
        | Some e ->
            if not (Array.exists (fun d -> Reg.equal d r) e.Rob_entry.dsts)
            then
              fail "rmap-producer" "%s maps to seq %d which does not write it"
                (Reg.name r) p
            else
              (* The mapping must name the *youngest* in-flight writer. *)
              S.iter_rob t (fun y ->
                  if
                    y.Rob_entry.seq > p
                    && Array.exists (fun d -> Reg.equal d r) y.Rob_entry.dsts
                  then
                    fail "rmap-producer"
                      "%s maps to seq %d but seq %d is a younger writer"
                      (Reg.name r) p y.Rob_entry.seq)
      end)
    t.S.rmap_producer;
  (* --- Protection-bit conservation ---------------------------------- *)
  (* A register with no in-flight writer (released at commit or rebuilt
     by a squash) must agree with the committed architectural state, for
     both its value and its ProtISA protection bit — squash replay or
     commit release dropping a protection bit is a security bug, not
     just a correctness one. *)
  Array.iteri
    (fun ri p ->
      if p < 0 then begin
        let r = Reg.of_int ri in
        if t.S.rmap_prot.(ri) <> t.S.reg_prot.(ri) then
          fail "prot-conservation"
            "%s has no in-flight writer but rmap_prot=%b <> reg_prot=%b"
            (Reg.name r) t.S.rmap_prot.(ri) t.S.reg_prot.(ri);
        if not (Int64.equal t.S.rmap_value.(ri) t.S.regs.(ri)) then
          fail "rmap-value"
            "%s has no in-flight writer but rmap_value=%Ld <> regs=%Ld"
            (Reg.name r) t.S.rmap_value.(ri) t.S.regs.(ri)
      end)
    t.S.rmap_producer;
  (* --- Fetch-buffer sanity ------------------------------------------ *)
  let buf_len = S.fb_length t in
  if buf_len > S.fetch_buf_capacity then
    fail "fetch-buf" "length %d exceeds capacity %d" buf_len
      S.fetch_buf_capacity;
  S.fb_iter
    (fun (item : S.fetch_item) ->
      if item.S.f_fetched > t.S.cycle then
        fail "fetch-buf" "item at pc %d fetched in the future (cycle %d)"
          item.S.f_pc item.S.f_fetched;
      if
        item.S.f_ready - item.S.f_fetched <> t.S.cfg.Config.frontend_latency
      then
        fail "fetch-buf" "item at pc %d has ready-fetched delta %d, expected %d"
          item.S.f_pc
          (item.S.f_ready - item.S.f_fetched)
          t.S.cfg.Config.frontend_latency)
    t;
  List.rev !vs @ check_sched t

let violations_to_string vs =
  String.concat "; " (List.map (fun v -> v.inv ^ ": " ^ v.detail) vs)

(* A per-cycle hook sampling the checks every [every] cycles.  [Warn]
   reports each distinct invariant once per checker instance on stderr;
   [Fail] raises [Pipeline_state.Sim_fault] with the full violation list
   in the dump. *)
let checker ?(every = 1) (mode : mode) : S.t -> unit =
  let every = max 1 every in
  let warned = Hashtbl.create 8 in
  fun t ->
    match mode with
    | Off -> ()
    | Warn | Fail -> (
        if t.S.cycle mod every = 0 then
          match check t with
          | [] -> ()
          | vs -> (
              match mode with
              | Off -> ()
              | Warn ->
                  List.iter
                    (fun v ->
                      if not (Hashtbl.mem warned v.inv) then begin
                        Hashtbl.replace warned v.inv ();
                        Printf.eprintf "[invariant:%s] cycle %d: %s\n%!" v.inv
                          t.S.cycle v.detail
                      end)
                    vs
              | Fail ->
                  raise
                    (S.Sim_fault
                       (S.fault t
                          (S.Invariant_violation (violations_to_string vs))))))

(* Subscribe a [checker] to the pipeline's hook bus, firing at
   [On_cycle_end].  One checker instance per pipeline: the warn-once
   table is per subscription. *)
let attach ?every mode (t : S.t) =
  let f = checker ?every mode in
  Hooks.subscribe t.S.hooks ~name:"invariants" ~kinds:[ Hooks.k_cycle_end ]
    (fun st ev -> match ev with Hooks.On_cycle_end -> f st | _ -> ())
