(* Microarchitectural invariant checker for the out-of-order core.

   The pipeline's internal consistency rests on a handful of structural
   invariants (ROB ring layout, LSQ occupancy accounting, rename-map
   producer validity, ProtISA protection-bit conservation, fetch-buffer
   sanity).  Violating any of them silently corrupts a simulation — and a
   corrupted simulation can report a defense as secure when it is not.

   [check] audits a pipeline snapshot and returns the violations it
   finds; [checker] packages it as a per-cycle hook for [Pipeline.run]'s
   [on_cycle] with off/warn/fail modes, sampled every [every] cycles. *)

open Protean_isa

type mode = Off | Warn | Fail

let mode_name = function Off -> "off" | Warn -> "warn" | Fail -> "fail"

let mode_of_string = function
  | "off" -> Off
  | "warn" -> Warn
  | "fail" -> Fail
  | s -> invalid_arg ("Invariants.mode_of_string: " ^ s)

type violation = { inv : string; detail : string }

let check (t : Pipeline.t) : violation list =
  let vs = ref [] in
  let fail inv fmt =
    Printf.ksprintf (fun detail -> vs := { inv; detail } :: !vs) fmt
  in
  let rob = t.Pipeline.rob in
  let n = Array.length rob in
  let count = t.Pipeline.count in
  let head_seq = t.Pipeline.head_seq in
  let head_idx = t.Pipeline.head_idx in
  (* --- ROB ring/count consistency ---------------------------------- *)
  if count < 0 || count > n then
    fail "rob-count" "count %d outside [0, %d]" count n
  else begin
    (* Every occupied slot holds the sequence number its position
       implies; every slot outside the live window is empty. *)
    for i = 0 to count - 1 do
      let idx = (head_idx + i) mod n in
      match rob.(idx) with
      | None -> fail "rob-ring" "hole at slot %d (expected seq %d)" i (head_seq + i)
      | Some e ->
          if e.Rob_entry.seq <> head_seq + i then
            fail "rob-ring" "slot %d holds seq %d, expected %d" i
              e.Rob_entry.seq (head_seq + i)
    done;
    for i = count to n - 1 do
      let idx = (head_idx + i) mod n in
      match rob.(idx) with
      | Some e ->
          fail "rob-ring" "stale entry seq %d outside the live window"
            e.Rob_entry.seq
      | None -> ()
    done
  end;
  if t.Pipeline.next_seq <> head_seq + count then
    fail "rob-seq" "next_seq %d <> head_seq %d + count %d" t.Pipeline.next_seq
      head_seq count;
  (* --- LSQ occupancy ------------------------------------------------ *)
  let loads = ref 0 and stores = ref 0 in
  Pipeline.iter_rob t (fun e ->
      if Rob_entry.is_load e then incr loads;
      if Rob_entry.is_store e then incr stores);
  if t.Pipeline.lq_used <> !loads then
    fail "lsq-count" "lq_used %d but %d loads in the ROB" t.Pipeline.lq_used
      !loads;
  if t.Pipeline.sq_used <> !stores then
    fail "lsq-count" "sq_used %d but %d stores in the ROB" t.Pipeline.sq_used
      !stores;
  if t.Pipeline.lq_used > t.Pipeline.cfg.Config.lq_size then
    fail "lsq-bound" "lq_used %d exceeds lq_size %d" t.Pipeline.lq_used
      t.Pipeline.cfg.Config.lq_size;
  if t.Pipeline.sq_used > t.Pipeline.cfg.Config.sq_size then
    fail "lsq-bound" "sq_used %d exceeds sq_size %d" t.Pipeline.sq_used
      t.Pipeline.cfg.Config.sq_size;
  (* --- Rename-map producer validity -------------------------------- *)
  Array.iteri
    (fun ri p ->
      if p >= 0 then begin
        let r = Reg.of_int ri in
        match Pipeline.get_entry t p with
        | None ->
            fail "rmap-producer" "%s maps to seq %d, not in the ROB"
              (Reg.name r) p
        | Some e ->
            if not (Array.exists (fun d -> Reg.equal d r) e.Rob_entry.dsts)
            then
              fail "rmap-producer" "%s maps to seq %d which does not write it"
                (Reg.name r) p
            else
              (* The mapping must name the *youngest* in-flight writer. *)
              Pipeline.iter_rob t (fun y ->
                  if
                    y.Rob_entry.seq > p
                    && Array.exists (fun d -> Reg.equal d r) y.Rob_entry.dsts
                  then
                    fail "rmap-producer"
                      "%s maps to seq %d but seq %d is a younger writer"
                      (Reg.name r) p y.Rob_entry.seq)
      end)
    t.Pipeline.rmap_producer;
  (* --- Protection-bit conservation ---------------------------------- *)
  (* A register with no in-flight writer (released at commit or rebuilt
     by a squash) must agree with the committed architectural state, for
     both its value and its ProtISA protection bit — squash replay or
     commit release dropping a protection bit is a security bug, not
     just a correctness one. *)
  Array.iteri
    (fun ri p ->
      if p < 0 then begin
        let r = Reg.of_int ri in
        if t.Pipeline.rmap_prot.(ri) <> t.Pipeline.reg_prot.(ri) then
          fail "prot-conservation"
            "%s has no in-flight writer but rmap_prot=%b <> reg_prot=%b"
            (Reg.name r) t.Pipeline.rmap_prot.(ri) t.Pipeline.reg_prot.(ri);
        if not (Int64.equal t.Pipeline.rmap_value.(ri) t.Pipeline.regs.(ri))
        then
          fail "rmap-value"
            "%s has no in-flight writer but rmap_value=%Ld <> regs=%Ld"
            (Reg.name r) t.Pipeline.rmap_value.(ri) t.Pipeline.regs.(ri)
      end)
    t.Pipeline.rmap_producer;
  (* --- Fetch-buffer sanity ------------------------------------------ *)
  let buf_len = Queue.length t.Pipeline.fetch_buf in
  if buf_len > Pipeline.fetch_buf_capacity then
    fail "fetch-buf" "length %d exceeds capacity %d" buf_len
      Pipeline.fetch_buf_capacity;
  Queue.iter
    (fun (item : Pipeline.fetch_item) ->
      if item.Pipeline.f_fetched > t.Pipeline.cycle then
        fail "fetch-buf" "item at pc %d fetched in the future (cycle %d)"
          item.Pipeline.f_pc item.Pipeline.f_fetched;
      if
        item.Pipeline.f_ready - item.Pipeline.f_fetched
        <> t.Pipeline.cfg.Config.frontend_latency
      then
        fail "fetch-buf" "item at pc %d has ready-fetched delta %d, expected %d"
          item.Pipeline.f_pc
          (item.Pipeline.f_ready - item.Pipeline.f_fetched)
          t.Pipeline.cfg.Config.frontend_latency)
    t.Pipeline.fetch_buf;
  List.rev !vs

let violations_to_string vs =
  String.concat "; " (List.map (fun v -> v.inv ^ ": " ^ v.detail) vs)

(* A per-cycle hook for [Pipeline.run]'s [on_cycle], sampling the checks
   every [every] cycles.  [Warn] reports each distinct invariant once per
   checker instance on stderr; [Fail] raises [Pipeline.Sim_fault] with
   the full violation list in the dump. *)
let checker ?(every = 1) (mode : mode) : Pipeline.t -> unit =
  let every = max 1 every in
  let warned = Hashtbl.create 8 in
  fun t ->
    match mode with
    | Off -> ()
    | Warn | Fail -> (
        if t.Pipeline.cycle mod every = 0 then
          match check t with
          | [] -> ()
          | vs -> (
              match mode with
              | Off -> ()
              | Warn ->
                  List.iter
                    (fun v ->
                      if not (Hashtbl.mem warned v.inv) then begin
                        Hashtbl.replace warned v.inv ();
                        Printf.eprintf "[invariant:%s] cycle %d: %s\n%!" v.inv
                          t.Pipeline.cycle v.detail
                      end)
                    vs
              | Fail ->
                  raise
                    (Pipeline.Sim_fault
                       (Pipeline.fault t
                          (Pipeline.Invariant_violation
                             (violations_to_string vs))))))
