(* In-order commit stage.

   Makes results architectural: memory writeback (allocating in the L1D
   via [Mem_hierarchy]), ProtISA's commit-side protection updates,
   register-file and rename-map release, predictor training, then the
   [On_commit] event (policy notification, timing trace, counters) and
   ROB removal.  A committing faulting instruction triggers a machine
   clear ([On_machine_clear] + full squash); committing HALT finishes
   the run. *)

open Protean_isa
open Protean_arch
module S = Pipeline_state

(* ProtISA commit-side updates (Section IV-C2): stores write their LSQ
   protection bit into the L1D; unprefixed loads clear the protection of
   the bytes they accessed. *)
let commit_protisa_memory (t : S.t) (e : Rob_entry.t) =
  (match t.S.shadow_prot with
  | Some shadow ->
      if Rob_entry.is_store e then
        Protset.set_mem shadow e.Rob_entry.addr e.Rob_entry.msize
          ~protected:e.Rob_entry.mem_prot
      else if Rob_entry.is_load e && not e.Rob_entry.out_prot then
        Protset.set_mem shadow e.Rob_entry.addr e.Rob_entry.msize
          ~protected:false
  | None -> ());
  match t.S.cfg.Config.prot_mem with
  | Config.Prot_mem_l1d ->
      if Rob_entry.is_store e then
        Cache.set_protection t.S.l1d e.Rob_entry.addr e.Rob_entry.msize
          ~protected:e.Rob_entry.mem_prot
      else if Rob_entry.is_load e && not e.Rob_entry.out_prot then
        Cache.set_protection t.S.l1d e.Rob_entry.addr e.Rob_entry.msize
          ~protected:false
  | Config.Prot_mem_none | Config.Prot_mem_perfect -> ()

(* Stores to this address mark the start of measurement (end of the
   benchmark's warmup phase). *)
let measurement_marker = 0x7770L

let commit_one (t : S.t) (e : Rob_entry.t) =
  (* Architectural effects. *)
  if Rob_entry.is_store e then begin
    Memory.write t.S.mem e.Rob_entry.addr e.Rob_entry.msize
      e.Rob_entry.mem_value;
    (* Writeback allocates in the L1D. *)
    ignore (Mem_hierarchy.access t e.Rob_entry.addr)
  end;
  commit_protisa_memory t e;
  let dsts = e.Rob_entry.dsts in
  for i = 0 to Array.length dsts - 1 do
    let ri = Reg.to_int dsts.(i) in
    t.S.regs.(ri) <- e.Rob_entry.dst_val.(i);
    t.S.reg_prot.(ri) <- e.Rob_entry.out_prot
  done;
  (* Release the rename-map mapping if this entry is still the youngest
     writer. *)
  for i = 0 to Array.length dsts - 1 do
    let ri = Reg.to_int dsts.(i) in
    if t.S.rmap_producer.(ri) = e.Rob_entry.seq then begin
      t.S.rmap_producer.(ri) <- -1;
      t.S.rmap_value.(ri) <- t.S.regs.(ri)
    end
  done;
  (* Train predictors. *)
  (match e.Rob_entry.insn.Insn.op with
  | Insn.Jcc (_, target) ->
      Branch_pred.update_direction t.S.bp e.Rob_entry.pc
        (e.Rob_entry.actual_target = target && target <> e.Rob_entry.pc + 1)
  | Insn.Jmpi _ ->
      Branch_pred.update_indirect t.S.bp e.Rob_entry.pc
        e.Rob_entry.actual_target
  | _ -> ());
  if S.wants t Hooks.k_commit then S.emit t (Hooks.On_commit e);
  (* Remove from the ROB (and the live load/store queues — a committing
     load/store is necessarily the front of its seq-ascending queue). *)
  t.S.rob.(t.S.head_idx) <- Rob_entry.null;
  t.S.head_idx <-
    (let i = t.S.head_idx + 1 in
     if i >= S.rob_size t then 0 else i);
  t.S.head_seq <- t.S.head_seq + 1;
  t.S.count <- t.S.count - 1;
  if Rob_entry.is_load e then begin
    t.S.lq_used <- t.S.lq_used - 1;
    Entryq.drop_front t.S.lsq_loads
  end;
  if Rob_entry.is_store e then begin
    t.S.sq_used <- t.S.sq_used - 1;
    Entryq.drop_front t.S.lsq_stores
  end;
  t.S.last_commit_cycle <- t.S.cycle;
  t.S.progress <- true;
  (* The entry is now out of every index and every inbound pointer is
     gone (seq references range-check against [head_seq]): recycle it. *)
  S.pool_put t e

let run (t : S.t) =
  let committed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !committed < t.S.cfg.Config.commit_width && not t.S.done_
  do
    if t.S.count = 0 then continue_ := false
    else begin
      let e = t.S.rob.(t.S.head_idx) in
      if not e.Rob_entry.executed then continue_ := false
      else if e.Rob_entry.is_branch && not e.Rob_entry.resolved then
        (* The resolution stage handles it (at the head the policy must
           allow resolution: the branch is non-speculative). *)
        continue_ := false
      else begin
        let was_halt = e.Rob_entry.insn.Insn.op = Insn.Halt in
        let faulted = e.Rob_entry.fault in
        let next_pc = e.Rob_entry.pc + 1 in
        commit_one t e;
        incr committed;
        if was_halt then begin
          t.S.done_ <- true;
          continue_ := false
        end
        else if faulted then begin
          (* Division fault: machine clear (squash everything younger
             and refetch). *)
          if S.wants t Hooks.k_machine_clear then
            S.emit t Hooks.On_machine_clear;
          Squash.flush t ~from_seq:t.S.head_seq ~new_pc:next_pc;
          continue_ := false
        end
      end
    end
  done
