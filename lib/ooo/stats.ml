(* Execution statistics gathered by the pipeline, used for the performance
   evaluation (normalized runtime = cycles / unsafe-baseline cycles) and
   for the diagnostic breakdowns of Section IX. *)

type t = {
  mutable cycles : int;
  mutable marker_cycle : int;
      (* cycle at which the measurement marker committed (0 = none):
         benchmarks store to a magic address after their warmup phase,
         mirroring the paper's simpoint warmup methodology *)
  mutable committed : int;
  mutable fetched : int;
  mutable squashes : int;
  mutable squashed_insns : int;
  mutable branch_mispredicts : int;
  mutable machine_clears : int;
  mutable mem_order_violations : int;
  mutable l1d_accesses : int;
  mutable l1d_misses : int;
  mutable transmitter_stall_cycles : int;
  mutable wakeup_delay_cycles : int;
  mutable resolution_delay_cycles : int;
  mutable access_pred_lookups : int;
  mutable access_pred_mispredicts : int;
  mutable access_pred_false_negatives : int;
  mutable loads_executed : int;
  mutable loads_protected_mem : int;
  (* Structural-port model counters (all zero when [Config.ports] is
     [None]).  [port_busy] is grown on demand to the highest port seen;
     protection stalls (the three *_delay/_stall counters above) and
     these structural stalls together attribute every denied cycle. *)
  mutable port_busy : int array; (* per port: cycles an issue was bound *)
  mutable port_structural_stall_cycles : int;
      (* ready entry found no compatible free port (entry-cycles) *)
  mutable wb_queue_stall_cycles : int;
      (* completion deferred by the CDB broadcast budget (entry-cycles) *)
  mutable skipped_cycles : int;
      (* quiet cycles advanced in bulk by event-driven skip-ahead;
         always <= [cycles], and 0 when skip-ahead is disabled — every
         other counter is unaffected by skipping (a skippable cycle by
         definition changes no counter) *)
}

let create () =
  {
    cycles = 0;
    marker_cycle = 0;
    committed = 0;
    fetched = 0;
    squashes = 0;
    squashed_insns = 0;
    branch_mispredicts = 0;
    machine_clears = 0;
    mem_order_violations = 0;
    l1d_accesses = 0;
    l1d_misses = 0;
    transmitter_stall_cycles = 0;
    wakeup_delay_cycles = 0;
    resolution_delay_cycles = 0;
    access_pred_lookups = 0;
    access_pred_mispredicts = 0;
    access_pred_false_negatives = 0;
    loads_executed = 0;
    loads_protected_mem = 0;
    port_busy = [||];
    port_structural_stall_cycles = 0;
    wb_queue_stall_cycles = 0;
    skipped_cycles = 0;
  }

(* Count an issue bound to [port], growing the per-port array on first
   sight of a new port (at most once per port per run). *)
let bump_port_busy t port =
  if Array.length t.port_busy <= port then begin
    let grown = Array.make (port + 1) 0 in
    Array.blit t.port_busy 0 grown 0 (Array.length t.port_busy);
    t.port_busy <- grown
  end;
  t.port_busy.(port) <- t.port_busy.(port) + 1

(* Cycles after the measurement marker (whole run when no marker). *)
let measured_cycles t = t.cycles - t.marker_cycle

let ipc t = if t.cycles = 0 then 0.0 else float_of_int t.committed /. float_of_int t.cycles

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d committed=%d ipc=%.3f squashes=%d mispredicts=%d mclears=%d \
     mem-order=%d l1d=%d/%d xmit-stall=%d wakeup-delay=%d"
    t.cycles t.committed (ipc t) t.squashes t.branch_mispredicts
    t.machine_clears t.mem_order_violations t.l1d_misses t.l1d_accesses
    t.transmitter_stall_cycles t.wakeup_delay_cycles
