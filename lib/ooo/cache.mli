(** Set-associative cache with LRU replacement and, for the L1D, the
    per-byte protection bits of ProtISA's memory ProtSet tracking
    (Section IV-C2a).

    The cache models timing and tag state only; data always comes from
    the memory module or the LSQ.  A line fill starts with every byte
    protected — evictions make ProtISA forget what was unprotected. *)

type t

val create : ?prot:bool -> Config.cache_cfg -> t
(** [prot] (default true) enables per-byte protection tracking; pass
    [~prot:false] for caches whose bytes ProtISA never tracks (L2/L3) —
    they share one dummy protection buffer and skip the per-fill reset.
    Timing and tag behavior are identical either way. *)

type result = {
  hit : bool;
  set : int;
  tag : int64;
  evicted : int64 option;  (** line address of the victim, if any *)
}

val access : t -> int64 -> result
(** Access the line containing the address: LRU update, allocate on miss
    (evicting the LRU way; new lines all-protected). *)

val line_addr : t -> int64 -> int64
val set_index : t -> int64 -> int
val tag_of : t -> int64 -> int64

val protected_bytes : t -> int64 -> int -> bool
(** Are any of the [size] bytes at the address protected?  Bytes not
    present in the cache are protected by definition. *)

val set_protection : t -> int64 -> int -> protected:bool -> unit
(** Set the protection of the bytes that are present in the cache. *)

val stats : t -> int * int
(** [(accesses, misses)]. *)
