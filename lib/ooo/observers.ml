(* The default hook-bus subscribers, installed by [Pipeline.create]:

   - "policy": delivers the Policy notification hooks ([on_rename],
     [on_load_executed], [on_commit]).  The policy's *gates*
     ([may_forward], [may_execute_transmitter], [may_resolve]) stay
     synchronous queries called by the stage modules — a gate returns a
     decision, which an event cannot.  [Fault_inject] participates here
     too: it wraps the policy record, so its perturbed notification
     hooks are what this subscriber delivers.
   - "trace": the hardware observer trace ([Hw_trace]) — cache/TLB
     fills and evictions, squashes, machine clears, divider busy,
     per-stage commit timing.  Installed only when tracing is enabled:
     it is the sole claimant of the expensive kinds ([k_mem_path],
     [k_div_busy]), so untraced runs never pay for them.
   - "stats": the [Stats] counters.

   Each subscriber declares the event kinds it handles, which feeds the
   bus's interest mask: an emit site whose kind has no subscriber costs
   one load and a bit test.  The kind lists below must stay a superset
   of each handler's match arms — a kind missing here silently drops
   events for that handler.

   Registration order is policy, trace, stats; subscribers only touch
   state they own, so the order is not observable (policies write only
   their own counters), but it is fixed to keep runs reproducible. *)

open Protean_isa
module S = Pipeline_state

let policy_kinds = Hooks.[ k_rename; k_load_executed; k_commit ]

let policy_handler (t : S.t) (ev : Hooks.event) =
  match ev with
  | Hooks.On_rename e -> t.S.policy.Policy.on_rename (S.api t) e
  | Hooks.On_load_executed e -> t.S.policy.Policy.on_load_executed (S.api t) e
  | Hooks.On_commit e -> t.S.policy.Policy.on_commit (S.api t) e
  | _ -> ()

let trace_kinds =
  Hooks.[ k_mem_access; k_mem_path; k_div_busy; k_squash; k_machine_clear; k_commit ]

let trace_handler (t : S.t) (ev : Hooks.event) =
  let record = Hw_trace.record t.S.trace in
  match ev with
  | Hooks.On_mem_access { path; _ } ->
      List.iter
        (function
          | Hooks.M_tlb_fill page -> record (Hw_trace.E_tlb_fill page)
          | Hooks.M_fill { level; set; tag } ->
              record (Hw_trace.E_cache_fill { level; set; tag })
          | Hooks.M_evict { level; line } ->
              record (Hw_trace.E_cache_evict { level; line }))
        path
  | Hooks.On_div_busy { latency } ->
      record (Hw_trace.E_div_busy { cycle = t.S.cycle; latency })
  | Hooks.On_squash { flushed; _ } ->
      record (Hw_trace.E_squash { cycle = t.S.cycle; flushed })
  | Hooks.On_machine_clear ->
      record (Hw_trace.E_machine_clear { cycle = t.S.cycle })
  | Hooks.On_commit e ->
      record
        (Hw_trace.E_timing
           {
             pc = e.Rob_entry.pc;
             fetch = e.Rob_entry.t_fetch;
             rename = e.Rob_entry.t_rename;
             issue = e.Rob_entry.t_issue;
             complete = e.Rob_entry.t_complete;
             commit = t.S.cycle;
           })
  | _ -> ()

let stats_kinds =
  Hooks.
    [
      k_fetch;
      k_wakeup_blocked;
      k_exec_blocked;
      k_resolve_blocked;
      k_mem_access;
      k_load_executed;
      k_mispredict;
      k_order_violation;
      k_squash;
      k_machine_clear;
      k_commit;
      k_port_bound;
      k_port_stall;
      k_wb_queued;
      k_skip;
    ]

let stats_handler (t : S.t) (ev : Hooks.event) =
  let st = t.S.stats in
  match ev with
  | Hooks.On_fetch _ -> st.Stats.fetched <- st.Stats.fetched + 1
  | Hooks.On_wakeup_blocked _ ->
      st.Stats.wakeup_delay_cycles <- st.Stats.wakeup_delay_cycles + 1
  | Hooks.On_exec_blocked _ ->
      st.Stats.transmitter_stall_cycles <- st.Stats.transmitter_stall_cycles + 1
  | Hooks.On_resolve_blocked _ ->
      st.Stats.resolution_delay_cycles <- st.Stats.resolution_delay_cycles + 1
  | Hooks.On_mem_access { l1_hit; _ } ->
      st.Stats.l1d_accesses <- st.Stats.l1d_accesses + 1;
      if not l1_hit then st.Stats.l1d_misses <- st.Stats.l1d_misses + 1
  | Hooks.On_load_executed e ->
      st.Stats.loads_executed <- st.Stats.loads_executed + 1;
      (* Pop/ret read memory but only true loads carry the
         protected-access statistic. *)
      (match e.Rob_entry.insn.Insn.op with
      | Insn.Load _ ->
          if e.Rob_entry.mem_prot then
            st.Stats.loads_protected_mem <- st.Stats.loads_protected_mem + 1
      | _ -> ())
  | Hooks.On_mispredict _ ->
      st.Stats.branch_mispredicts <- st.Stats.branch_mispredicts + 1
  | Hooks.On_order_violation _ ->
      st.Stats.mem_order_violations <- st.Stats.mem_order_violations + 1
  | Hooks.On_squash { flushed; _ } ->
      st.Stats.squashes <- st.Stats.squashes + 1;
      st.Stats.squashed_insns <- st.Stats.squashed_insns + flushed
  | Hooks.On_machine_clear ->
      st.Stats.machine_clears <- st.Stats.machine_clears + 1
  | Hooks.On_port_bound { port; _ } -> Stats.bump_port_busy st port
  | Hooks.On_port_stall _ ->
      st.Stats.port_structural_stall_cycles <-
        st.Stats.port_structural_stall_cycles + 1
  | Hooks.On_wb_queued _ ->
      st.Stats.wb_queue_stall_cycles <- st.Stats.wb_queue_stall_cycles + 1
  | Hooks.On_skip { cycles } ->
      st.Stats.skipped_cycles <- st.Stats.skipped_cycles + cycles
  | Hooks.On_commit e ->
      if
        Rob_entry.is_store e
        && Int64.equal e.Rob_entry.addr Stage_commit.measurement_marker
        && st.Stats.marker_cycle = 0
      then st.Stats.marker_cycle <- t.S.cycle;
      st.Stats.committed <- st.Stats.committed + 1
  | _ -> ()

let install (t : S.t) =
  Hooks.subscribe t.S.hooks ~name:"policy" ~kinds:policy_kinds policy_handler;
  if Hw_trace.enabled t.S.trace then
    Hooks.subscribe t.S.hooks ~name:"trace" ~kinds:trace_kinds trace_handler;
  Hooks.subscribe t.S.hooks ~name:"stats" ~kinds:stats_kinds stats_handler
