(** Lockstep multicore simulation for multi-thread (PARSEC-style)
    workloads: one pipeline per thread sharing the last-level cache, all
    stepped cycle-by-cycle until every core halts (a barrier at program
    end — runtime is the slowest thread). *)

type result = {
  cycles : int;
  per_core : Pipeline.result array;
  finished : bool;
}

val run :
  ?squash_bug:bool ->
  ?spec_model:Policy.spec_model ->
  ?decode:
    ((Protean_isa.Reg.t * Protean_isa.Insn.role) array array
    * Protean_isa.Reg.t array array)
    array ->
  ?fuel:int ->
  ?watchdog:Pipeline.watchdog ->
  ?invariants:Invariants.mode ->
  ?invariant_every:int ->
  ?on_core:(int -> Pipeline.t -> unit) ->
  Config.t ->
  make_policy:(unit -> Policy.t) ->
  Protean_isa.Program.t array ->
  result
(** [decode], when given, carries one precomputed operand-template pair
    per core program (see {!Pipeline.decode_program}) so a batch of runs
    over the same programs shares the decode work.
    [make_policy] is called once per core: policies carry per-core
    mutable state.  The [watchdog] applies per core (default
    {!Pipeline.default_watchdog}); [invariants] (default [Off])
    subscribes a per-core invariant checker, sampled every
    [invariant_every] cycles, to each core's hook bus.  Either failure
    raises {!Pipeline.Sim_fault} with [fault_core] set to the faulting
    core's index.  [on_core i t] runs once per freshly created core
    before the first cycle — the registration point for per-core
    observers such as profilers. *)
