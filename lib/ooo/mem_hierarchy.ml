(* The L1D/L2/L3 + TLB access path.

   Walking the hierarchy mutates cache and TLB state (fills, evictions,
   replacement metadata) — wrong-path accesses included, since transient
   fills are exactly the side channel the defenses must close.  The walk
   is reported as a single [On_mem_access] event whose [path] lists the
   fills and evictions in the order they happened; the trace observer
   replays them, the stats observer counts the L1D access/miss.

   Building the path costs allocations per access, so it is gated on the
   pseudo-kind [Hooks.k_mem_path] (claimed by the trace observer): when
   no subscriber wants path detail, the walk records nothing and the
   event carries [path = []].  Cache/TLB mutations are identical either
   way. *)

module S = Pipeline_state

(* Walk the hierarchy for a data access at [addr]; returns the latency. *)
let access (t : S.t) addr =
  let with_path = S.wants t Hooks.k_mem_path in
  let path = ref [] in
  let fill level (r : Cache.result) =
    if with_path && not r.Cache.hit then begin
      path := Hooks.M_fill { level; set = r.Cache.set; tag = r.Cache.tag } :: !path;
      match r.Cache.evicted with
      | Some line -> path := Hooks.M_evict { level; line } :: !path
      | None -> ()
    end
  in
  let tlb_hit = Tlb.access t.S.tlb addr in
  if with_path && not tlb_hit then
    path := Hooks.M_tlb_fill (Tlb.page_of addr) :: !path;
  let tlb_penalty = if tlb_hit then 0 else t.S.cfg.Config.tlb_miss_latency in
  let r1 = Cache.access t.S.l1d addr in
  fill 1 r1;
  let l1_hit = r1.Cache.hit in
  let latency =
    if l1_hit then tlb_penalty + t.S.cfg.Config.l1d.Config.latency
    else begin
      let r2 = Cache.access t.S.l2 addr in
      fill 2 r2;
      if r2.Cache.hit then tlb_penalty + t.S.cfg.Config.l2.Config.latency
      else
        match t.S.l3 with
        | Some l3 ->
            let r3 = Cache.access l3 addr in
            fill 3 r3;
            if r3.Cache.hit then
              tlb_penalty
              + (match t.S.cfg.Config.l3 with Some c -> c.Config.latency | None -> 0)
            else tlb_penalty + t.S.cfg.Config.mem_latency
        | None -> tlb_penalty + t.S.cfg.Config.mem_latency
    end
  in
  if S.wants t Hooks.k_mem_access then
    S.emit t (Hooks.On_mem_access { addr; l1_hit; latency; path = List.rev !path });
  latency
