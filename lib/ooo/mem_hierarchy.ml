(* The L1D/L2/L3 + TLB access path.

   Walking the hierarchy mutates cache and TLB state (fills, evictions,
   replacement metadata) — wrong-path accesses included, since transient
   fills are exactly the side channel the defenses must close.  The walk
   is reported as a single [On_mem_access] event whose [path] lists the
   fills and evictions in the order they happened; the trace observer
   replays them, the stats observer counts the L1D access/miss. *)

module S = Pipeline_state

(* Walk the hierarchy for a data access at [addr]; returns the latency. *)
let access (t : S.t) addr =
  let path = ref [] in
  let add s = path := s :: !path in
  let fill level (r : Cache.result) =
    if not r.Cache.hit then begin
      add (Hooks.M_fill { level; set = r.Cache.set; tag = r.Cache.tag });
      match r.Cache.evicted with
      | Some line -> add (Hooks.M_evict { level; line })
      | None -> ()
    end
  in
  let tlb_hit = Tlb.access t.S.tlb addr in
  if not tlb_hit then add (Hooks.M_tlb_fill (Tlb.page_of addr));
  let tlb_penalty = if tlb_hit then 0 else t.S.cfg.Config.tlb_miss_latency in
  let r1 = Cache.access t.S.l1d addr in
  fill 1 r1;
  let l1_hit = r1.Cache.hit in
  let latency =
    if l1_hit then tlb_penalty + t.S.cfg.Config.l1d.Config.latency
    else begin
      let r2 = Cache.access t.S.l2 addr in
      fill 2 r2;
      if r2.Cache.hit then tlb_penalty + t.S.cfg.Config.l2.Config.latency
      else
        match t.S.l3 with
        | Some l3 ->
            let r3 = Cache.access l3 addr in
            fill 3 r3;
            if r3.Cache.hit then
              tlb_penalty
              + (match t.S.cfg.Config.l3 with Some c -> c.Config.latency | None -> 0)
            else tlb_penalty + t.S.cfg.Config.mem_latency
        | None -> tlb_penalty + t.S.cfg.Config.mem_latency
    end
  in
  S.emit t (Hooks.On_mem_access { addr; l1_hit; latency; path = List.rev !path });
  latency
