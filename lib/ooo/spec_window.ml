(* The speculation-window ledger (leakage provenance).

   A *speculation window* is the lifetime of an unresolved branch in the
   branch queue: it opens when the branch enters at rename
   ([On_window_open]) and closes when the branch leaves — resolved
   correctly, mispredicted, or flushed by an older squash
   ([On_window_close]).  While attached, the ledger records per window:
   its trigger pc and kind, nesting depth, duration, the transmitters
   that executed under it, how many of them had a *tainted* operand (a
   sensitive-role input derived from an access younger than the window's
   trigger — data that exists only transiently), and every defense
   intervention (execution/wakeup/resolution denial) attributed to it.

   The ledger is a plain hook-bus subscriber: nothing here touches
   pipeline structure, and every new emission site is [wants]-guarded, so
   a pipeline without a ledger attached runs the exact same cycles with
   zero extra allocation (asserted by test/test_hotloop.ml and the golden
   corpora).

   Taint shadow: policies only maintain [Rob_entry.taint_root] when a
   taint-tracking defense is active, so the ledger keeps its own
   data-root shadow — per live sequence number, the youngest load whose
   value the entry's result transitively derives from (STT's
   youngest-root-of-taint, tracked independently of any defense).  The
   shadow is a ring indexed [seq mod rob_size] with the stored seq as a
   validity check; a committed producer's root is always older than any
   still-open window's trigger, so stale slots can never create a false
   positive (and recycled slots fail the seq check).

   Leakiness: a window is *leaky* when it closed by its own
   misprediction AND at least one transmitter with a tainted operand
   executed under it — the transient-execution leak shape.  Every other
   window is *benign*; interventions charged to benign windows are the
   over-protection numerator. *)

open Protean_isa
module S = Pipeline_state

(* Gadget-family trigger kinds, per the SoK taxonomy: a conditional
   trigger is the v1 (bounds-check-bypass) shape, an indirect/direct
   jump or call the v2 (branch-target-injection) shape, a return the
   RSB-misprediction shape.  v4 (store bypass) has no trigger branch and
   is classified from order-violation divergence by the attribution
   layer. *)
type trigger = T_cond | T_indirect | T_return

let trigger_family = function
  | T_cond -> "v1"
  | T_indirect -> "v2"
  | T_return -> "rsb"

let trigger_of_op (op : Insn.op) =
  match op with
  | Insn.Jcc _ -> T_cond
  | Insn.Ret -> T_return
  | _ -> T_indirect

(* One transmitter execution, as logged in full mode: the transmitting
   pc, the address it touched, and — when tainted — the pc of the access
   instruction the sensitive operand derives from. *)
type xmit = {
  x_pc : int;
  x_addr : int64;
  x_src_pc : int; (* -1 when the operand was not tainted *)
  x_tainted : bool;
}

type window = {
  w_id : int; (* monotone ledger-wide id (seqs are recycled) *)
  w_pc : int; (* trigger branch pc *)
  w_seq : int; (* trigger seq — unique among *open* windows *)
  w_depth : int; (* enclosing open windows at open time *)
  w_trigger : trigger;
  w_opened : int; (* cycle *)
  mutable w_closed : int; (* cycle; -1 while open *)
  mutable w_cause : Hooks.window_close_cause;
  mutable w_xmits : int;
  mutable w_tainted : int;
  mutable w_interventions : int;
  mutable w_log : xmit list; (* full mode only, newest first *)
}

type t = {
  full : bool; (* retain per-window transmitter logs (attribution mode) *)
  cap : int; (* ROB size: live seqs map injectively to ring slots *)
  (* Data-root shadow rings, indexed [seq mod cap]. *)
  sh_seq : int array; (* the seq a slot currently describes, or -1 *)
  sh_droot : int array; (* youngest transitive load root, or -1 *)
  sh_pc : int array; (* pc of that root load, or -1 *)
  (* Open windows, seq-ascending by construction (opens happen in rename
     order); bounded by the branch-queue length <= ROB size. *)
  mutable open_arr : window array;
  mutable open_n : int;
  (* Summary counters. *)
  mutable next_id : int;
  mutable opened : int;
  mutable resolved : int;
  mutable mispredicted : int;
  mutable flushed : int;
  mutable unclosed : int; (* still open at detach: finalized benign *)
  mutable cycles_sum : int; (* total closed-window duration *)
  mutable xmits : int;
  mutable tainted : int;
  mutable leaky_n : int;
  mutable iv_leaky : int;
  mutable iv_benign : int;
  mutable order_violations : int;
  (* Retained windows (newest first; [leaky] always, [closed] in full
     mode). *)
  mutable leaky : window list;
  mutable closed : window list;
  mutable glog : xmit list; (* full mode: every transmitter, any window *)
}

let subscriber_name = "spec-window"

let kinds =
  [
    Hooks.k_window_open;
    Hooks.k_window_close;
    Hooks.k_rename;
    Hooks.k_load_executed;
    Hooks.k_exec_blocked;
    Hooks.k_wakeup_blocked;
    Hooks.k_resolve_blocked;
    Hooks.k_order_violation;
  ]

let sensitive = function
  | Insn.Addr | Insn.Cond_in | Insn.Target | Insn.Divide -> true
  | Insn.Data -> false

(* Data root of producer seq [p]: -1 for committed/unknown producers
   (their slot was recycled or predates the ledger), which is exact for
   taint purposes — a committed producer's root is older than every open
   window's trigger. *)
let droot led p =
  if p < 0 then -1
  else
    let i = p mod led.cap in
    if led.sh_seq.(i) = p then led.sh_droot.(i) else -1

let root_pc led p =
  if p < 0 then -1
  else
    let i = p mod led.cap in
    if led.sh_seq.(i) = p then led.sh_pc.(i) else -1

(* Maintain the shadow: a load's own value is a fresh root; anything
   else inherits the youngest root among its producers. *)
let on_rename led (e : Rob_entry.t) =
  let seq = e.Rob_entry.seq in
  let i = seq mod led.cap in
  if Rob_entry.is_load e then begin
    led.sh_seq.(i) <- seq;
    led.sh_droot.(i) <- seq;
    led.sh_pc.(i) <- e.Rob_entry.pc
  end
  else begin
    let best = ref (-1) and best_pc = ref (-1) in
    let prods = e.Rob_entry.src_producer in
    for k = 0 to Array.length prods - 1 do
      let p = prods.(k) in
      let d = droot led p in
      if d > !best then begin
        best := d;
        best_pc := root_pc led p
      end
    done;
    led.sh_seq.(i) <- seq;
    led.sh_droot.(i) <- !best;
    led.sh_pc.(i) <- !best_pc
  end

(* Innermost open window covering [seq]: the youngest trigger at or
   before it (open windows are seq-ascending, so scan from the tail). *)
let innermost led seq =
  let rec go k =
    if k < 0 then None
    else
      let w = led.open_arr.(k) in
      if w.w_seq <= seq then Some w else go (k - 1)
  in
  go (led.open_n - 1)

let push_open led w =
  let n = Array.length led.open_arr in
  if led.open_n >= n then begin
    let grown = Array.make (max 8 (2 * n)) w in
    Array.blit led.open_arr 0 grown 0 n;
    led.open_arr <- grown
  end;
  led.open_arr.(led.open_n) <- w;
  led.open_n <- led.open_n + 1

let open_window led (st : S.t) (e : Rob_entry.t) =
  let w =
    {
      w_id = led.next_id;
      w_pc = e.Rob_entry.pc;
      w_seq = e.Rob_entry.seq;
      w_depth = led.open_n;
      w_trigger = trigger_of_op e.Rob_entry.insn.Insn.op;
      w_opened = st.S.cycle;
      w_closed = -1;
      w_cause = Hooks.W_resolved;
      w_xmits = 0;
      w_tainted = 0;
      w_interventions = 0;
      w_log = [];
    }
  in
  led.next_id <- led.next_id + 1;
  led.opened <- led.opened + 1;
  push_open led w

(* Youngest data root among [e]'s sensitive-role operands, with the pc
   of the root access: tainted w.r.t. window [win_seq] when the root is
   younger than the trigger (the operand's value is transient). *)
let sensitive_root led (e : Rob_entry.t) =
  let best = ref (-1) and best_pc = ref (-1) in
  let srcs = e.Rob_entry.srcs in
  for k = 0 to Array.length srcs - 1 do
    if sensitive (snd srcs.(k)) then begin
      let p = e.Rob_entry.src_producer.(k) in
      let d = droot led p in
      if d > !best then begin
        best := d;
        best_pc := root_pc led p
      end
    end
  done;
  (!best, !best_pc)

let on_xmit led (e : Rob_entry.t) =
  match innermost led e.Rob_entry.seq with
  | None ->
      if led.full then
        led.glog <-
          {
            x_pc = e.Rob_entry.pc;
            x_addr = e.Rob_entry.addr;
            x_src_pc = -1;
            x_tainted = false;
          }
          :: led.glog
  | Some w ->
      w.w_xmits <- w.w_xmits + 1;
      let root, src_pc = sensitive_root led e in
      let tn = root > w.w_seq in
      if tn then w.w_tainted <- w.w_tainted + 1;
      if led.full then begin
        let x =
          {
            x_pc = e.Rob_entry.pc;
            x_addr = e.Rob_entry.addr;
            x_src_pc = (if tn then src_pc else -1);
            x_tainted = tn;
          }
        in
        w.w_log <- x :: w.w_log;
        led.glog <- x :: led.glog
      end

let on_intervention led (e : Rob_entry.t) =
  match innermost led e.Rob_entry.seq with
  | Some w -> w.w_interventions <- w.w_interventions + 1
  | None -> led.iv_benign <- led.iv_benign + 1

let is_leaky w = w.w_cause = Hooks.W_mispredicted && w.w_tainted > 0

let finalize_closed led w =
  led.cycles_sum <- led.cycles_sum + (w.w_closed - w.w_opened);
  (match w.w_cause with
  | Hooks.W_resolved -> led.resolved <- led.resolved + 1
  | Hooks.W_mispredicted -> led.mispredicted <- led.mispredicted + 1
  | Hooks.W_flushed -> led.flushed <- led.flushed + 1);
  led.xmits <- led.xmits + w.w_xmits;
  led.tainted <- led.tainted + w.w_tainted;
  if is_leaky w then begin
    led.leaky_n <- led.leaky_n + 1;
    led.iv_leaky <- led.iv_leaky + w.w_interventions;
    led.leaky <- w :: led.leaky
  end
  else led.iv_benign <- led.iv_benign + w.w_interventions;
  if led.full then led.closed <- w :: led.closed

let close_window led (st : S.t) (entry : Rob_entry.t) cause =
  let seq = entry.Rob_entry.seq in
  let idx = ref (-1) in
  (try
     for k = led.open_n - 1 downto 0 do
       if led.open_arr.(k).w_seq = seq then begin
         idx := k;
         raise Exit
       end
     done
   with Exit -> ());
  if !idx >= 0 then begin
    let w = led.open_arr.(!idx) in
    for k = !idx to led.open_n - 2 do
      led.open_arr.(k) <- led.open_arr.(k + 1)
    done;
    led.open_n <- led.open_n - 1;
    w.w_closed <- st.S.cycle;
    w.w_cause <- cause;
    finalize_closed led w
  end

let handler led (st : S.t) (ev : Hooks.event) =
  match ev with
  | Hooks.On_rename e -> on_rename led e
  | Hooks.On_window_open e -> open_window led st e
  | Hooks.On_window_close { entry; cause } -> close_window led st entry cause
  | Hooks.On_load_executed e -> on_xmit led e
  | Hooks.On_exec_blocked e | Hooks.On_resolve_blocked e ->
      on_intervention led e
  | Hooks.On_wakeup_blocked { consumer; _ } -> on_intervention led consumer
  | Hooks.On_order_violation _ ->
      led.order_violations <- led.order_violations + 1
  | _ -> ()

let create ~full ~rob_size =
  {
    full;
    cap = max 1 rob_size;
    sh_seq = Array.make (max 1 rob_size) (-1);
    sh_droot = Array.make (max 1 rob_size) (-1);
    sh_pc = Array.make (max 1 rob_size) (-1);
    open_arr = [||];
    open_n = 0;
    next_id = 0;
    opened = 0;
    resolved = 0;
    mispredicted = 0;
    flushed = 0;
    unclosed = 0;
    cycles_sum = 0;
    xmits = 0;
    tainted = 0;
    leaky_n = 0;
    iv_leaky = 0;
    iv_benign = 0;
    order_violations = 0;
    leaky = [];
    closed = [];
    glog = [];
  }

(* Attach a ledger to a pipeline (any time before or during a run).
   [full] additionally retains every closed window with its transmitter
   log — the attribution input; summary mode keeps counters plus the
   (rare) leaky windows only. *)
let attach ?(full = false) (st : S.t) =
  let led = create ~full ~rob_size:(S.rob_size st) in
  Hooks.subscribe ~kinds st.S.hooks ~name:subscriber_name (handler led);
  led

(* Unsubscribe and finalize: still-open windows (the branch never left
   the queue before the run ended) are charged as benign — they provably
   never squashed. *)
let detach (st : S.t) led =
  Hooks.unsubscribe st.S.hooks subscriber_name;
  for k = 0 to led.open_n - 1 do
    let w = led.open_arr.(k) in
    led.unclosed <- led.unclosed + 1;
    led.xmits <- led.xmits + w.w_xmits;
    led.tainted <- led.tainted + w.w_tainted;
    led.iv_benign <- led.iv_benign + w.w_interventions;
    if led.full then led.closed <- w :: led.closed
  done;
  led.open_n <- 0

(* Summary counters, in a fixed order.  All values merge by summation
   across cells/shards (no max-style members), matching how the harness
   folds per-cell counters into Prometheus families. *)
let counters led =
  [
    ("windows_opened", led.opened);
    ("windows_resolved", led.resolved);
    ("windows_mispredicted", led.mispredicted);
    ("windows_flushed", led.flushed);
    ("windows_unclosed", led.unclosed);
    ("windows_leaky", led.leaky_n);
    ("window_cycles", led.cycles_sum);
    ("transmitters", led.xmits);
    ("tainted_transmitters", led.tainted);
    ("interventions_leaky", led.iv_leaky);
    ("interventions_benign", led.iv_benign);
    ("order_violations", led.order_violations);
  ]

(* Retained windows, oldest first (by id). *)
let leaky_windows led = List.rev led.leaky
let closed_windows led = List.rev led.closed

(* Full-mode global transmitter log, program order. *)
let global_log led = List.rev led.glog
let order_violations led = led.order_violations
