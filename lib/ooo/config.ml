(* Processor configurations.  The P-core and E-core presets follow the
   paper's Table III (an Intel Alder Lake i9-12900KS hybrid): pipeline
   widths, ROB/LQ/SQ sizes, predictor sizes and the cache hierarchy. *)

type cache_cfg = {
  size_kib : int;
  ways : int;
  line : int; (* bytes *)
  latency : int; (* cycles on hit *)
}

type bp_cfg = {
  bimodal_entries : int;
  btb_entries : int;
  rsb_depth : int;
  use_tage : bool;
      (* Table III names a TAGE predictor; the default configurations use
         the bimodal tables for run-to-run comparability, and the TAGE
         implementation can be enabled per-configuration *)
}

(* How ProtISA tracks its memory ProtSet (Section IX-A3 variants). *)
type prot_mem_mode =
  | Prot_mem_l1d (* protection-tagged L1D: the paper's design *)
  | Prot_mem_none (* tagging disabled: all memory assumed protected *)
  | Prot_mem_perfect (* idealized shadow memory tracking all of memory *)

(* Structural execution-port model.  Opcode classes partition the ISA by
   the functional unit an instruction occupies; a port advertises the
   classes it can accept as a bitmask.  With [ports = None] (every
   default configuration) issue is limited only by [issue_width] and
   writeback is unbounded — the historical behavior, bit-identical to
   the golden corpus.  With [ports = Some _] an entry must win an issue
   slot *and* a compatible free port, unpipelined classes occupy their
   port for the full computation latency, and at most [wb_width]
   completions broadcast per cycle (the rest queue in seq order). *)

type op_class = Cls_alu | Cls_branch | Cls_muldiv | Cls_load | Cls_store

let n_op_classes = 5

let op_class_index = function
  | Cls_alu -> 0
  | Cls_branch -> 1
  | Cls_muldiv -> 2
  | Cls_load -> 3
  | Cls_store -> 4

let op_class_name = function
  | Cls_alu -> "alu"
  | Cls_branch -> "branch"
  | Cls_muldiv -> "muldiv"
  | Cls_load -> "load"
  | Cls_store -> "store"

let cls_bit c = 1 lsl op_class_index c

type port_cfg = {
  port_caps : int array; (* per port: OR of [cls_bit] capabilities *)
  cls_pipelined : bool array;
      (* per class (indexed by [op_class_index]): a pipelined class
         accepts a new instruction on its port every cycle; an
         unpipelined one blocks the port for the full latency *)
  wb_width : int; (* CDB broadcast budget per cycle; 0 = unbounded *)
}

let port_can (pc : port_cfg) port cls = pc.port_caps.(port) land cls_bit cls <> 0

type t = {
  name : string;
  fetch_width : int;
  rename_width : int;
  issue_width : int;
  commit_width : int;
  rob_size : int;
  lq_size : int;
  sq_size : int;
  frontend_latency : int; (* fetch-to-rename delay, cycles *)
  l1d : cache_cfg;
  l2 : cache_cfg;
  l3 : cache_cfg option;
  mem_latency : int;
  tlb_entries : int;
  tlb_miss_latency : int;
  bp : bp_cfg;
  alu_latency : int;
  mul_latency : int;
  div_base_latency : int;
  load_agu_latency : int; (* address generation before the cache access *)
  store_forward_latency : int;
  prot_mem : prot_mem_mode;
  ports : port_cfg option; (* None = unconstrained issue/writeback *)
}

let p_core =
  {
    name = "P-core";
    fetch_width = 6;
    rename_width = 6;
    issue_width = 6;
    commit_width = 6;
    rob_size = 512;
    lq_size = 192;
    sq_size = 114;
    frontend_latency = 4;
    l1d = { size_kib = 48; ways = 12; line = 64; latency = 4 };
    l2 = { size_kib = 1280; ways = 10; line = 64; latency = 14 };
    l3 = Some { size_kib = 30 * 1024; ways = 12; line = 64; latency = 42 };
    mem_latency = 150;
    tlb_entries = 64;
    tlb_miss_latency = 20;
    bp = { bimodal_entries = 4096; btb_entries = 4096; rsb_depth = 16; use_tage = false };
    alu_latency = 1;
    mul_latency = 3;
    div_base_latency = 12;
    load_agu_latency = 1;
    store_forward_latency = 2;
    prot_mem = Prot_mem_l1d;
    ports = None;
  }

let e_core =
  {
    p_core with
    name = "E-core";
    fetch_width = 5;
    rename_width = 5;
    issue_width = 5;
    commit_width = 5;
    rob_size = 256;
    lq_size = 80;
    sq_size = 50;
    frontend_latency = 4;
    l1d = { size_kib = 32; ways = 8; line = 64; latency = 4 };
    l2 = { size_kib = 2048; ways = 8; line = 64; latency = 16 };
    l3 = Some { size_kib = 30 * 1024; ways = 12; line = 64; latency = 42 };
  }

(* A small configuration for unit tests and fuzzing: short pipelines keep
   test programs fast while still exercising deep speculation. *)
let test_core =
  {
    p_core with
    name = "test-core";
    rob_size = 64;
    lq_size = 24;
    sq_size = 16;
    l1d = { size_kib = 4; ways = 2; line = 64; latency = 4 };
    l2 = { size_kib = 32; ways = 4; line = 64; latency = 12 };
    l3 = None;
    mem_latency = 60;
    bp = { bimodal_entries = 64; btb_entries = 64; rsb_depth = 8; use_tage = false };
  }

let prot_mem_name = function
  | Prot_mem_l1d -> "l1d"
  | Prot_mem_none -> "none"
  | Prot_mem_perfect -> "perfect"

let with_prot_mem mode t =
  { t with prot_mem = mode; name = t.name ^ "+protmem-" ^ prot_mem_name mode }

let with_tage t =
  { t with bp = { t.bp with use_tage = true }; name = t.name ^ "+tage" }

(* Port map for an N-wide structural core, after the Alder Lake P-core
   pattern (Tab. III): every port does ALU work; the specialist classes
   (mul/div, load AGU, store AGU, branch) rotate across the ports so an
   N >= 4 machine has ~N/4 ports per specialist class, and narrower
   machines fold the missing specialists onto the ports that exist
   (N = 1 is a single universal port).  Mul/div is the only unpipelined
   class; the writeback/CDB budget equals the machine width. *)
(* Default topology for an n-wide core, shaped after the Alder Lake
   P-core's split (Table III): every port takes ALU and branch ops, odd
   ports are load AGUs, ports =2 (mod 4) are store AGUs, and port 0
   carries the unpipelined multiply/divide unit.  Capability counts this
   way scale *proportionally* with width (loads: 1/1/2/3/4 ports at
   widths 1/2/4/6/8), so sweeps measure issue bandwidth rather than a
   lumpy capability cliff; narrow cores fall back to port 0 for any
   class that would otherwise have no home. *)
let ports_for_width n =
  let caps = Array.make n (cls_bit Cls_alu lor cls_bit Cls_branch) in
  caps.(0) <- caps.(0) lor cls_bit Cls_muldiv;
  for i = 0 to n - 1 do
    if i mod 2 = 1 then caps.(i) <- caps.(i) lor cls_bit Cls_load;
    if i mod 4 = 2 then caps.(i) <- caps.(i) lor cls_bit Cls_store
  done;
  if n < 2 then caps.(0) <- caps.(0) lor cls_bit Cls_load;
  if n < 3 then caps.(0) <- caps.(0) lor cls_bit Cls_store;
  let pipelined = Array.make n_op_classes true in
  pipelined.(op_class_index Cls_muldiv) <- false;
  { port_caps = caps; cls_pipelined = pipelined; wb_width = n }

(* Rescale a base configuration to an N-wide structural superscalar:
   all four pipeline widths become [n] and the execution-port /
   bounded-writeback model switches on.  The speculation window
   (ROB/LQ/SQ) scales proportionally with the width ratio — a wider
   core needs a deeper window to feed it (cf. the E-core's 5-wide/256
   vs the P-core's 6-wide/512 in Table III); without this, sweeps
   saturate on the fixed window instead of measuring issue bandwidth.
   At [n = t.issue_width] the window is exactly the base core's.  The
   memory hierarchy and predictors are inherited unchanged. *)
let with_width n t =
  if n <= 0 then invalid_arg "Config.with_width: width must be positive";
  let scale floor base = max floor (base * n / t.issue_width) in
  {
    t with
    name = t.name ^ "@w" ^ string_of_int n;
    fetch_width = n;
    rename_width = n;
    issue_width = n;
    commit_width = n;
    rob_size = scale 16 t.rob_size;
    lq_size = scale 8 t.lq_size;
    sq_size = scale 8 t.sq_size;
    ports = Some (ports_for_width n);
  }

let cache_sets (c : cache_cfg) = c.size_kib * 1024 / (c.line * c.ways)
