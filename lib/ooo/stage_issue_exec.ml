(* Issue/execute and branch-resolution stages.

   Dynamic issue under the policy's transmitter/wakeup/resolution gates:
   wakeup (source readiness through [may_forward]), dispatch of ready
   instructions up to [issue_width], per-opcode execution including the
   load/store paths (store-to-load forwarding, memory-order speculation
   with MDP-guided stalls, hierarchy walks via [Mem_hierarchy]), and
   delayed branch resolution with at most one squash per cycle.

   Cost model (the O(active) scheduler): the per-cycle work is
   - [tick]: one pass over the in-flight deque (issued, not executed),
   - the issue scan: the unissued list in seq order, skipping dormant
     entries with one flag test, breaking once [issue_width] is spent,
   - [resolve]: three passes over the unresolved-branch list.
   None of these ever visits an executed-but-uncommitted or committed
   slot, so cost tracks active instructions, not ROB capacity.  The
   traversal orders equal the old full-ring scans' (both seq-ascending),
   so every emission and policy query happens at the same point of the
   same cycle — asserted bit-for-bit by the golden corpus, and
   cross-checked against brute-force ring scans under
   [Pipeline_state.paranoid_sched].

   Events: [On_wakeup]/[On_wakeup_blocked] per source, [On_exec_blocked]
   and [On_resolve_blocked] per denied cycle, [On_forward] on LSQ hits,
   [On_load_executed], [On_div_busy], [On_order_violation],
   [On_mispredict]. *)

open Protean_isa
open Protean_arch
module S = Pipeline_state

(* Copy the value produced for register [r] by entry [p] into
   [e.src_val.(i)] (no-op when [p] does not write [r], matching the old
   [producer_value] returning [None]). *)
let copy_producer_value (p : Rob_entry.t) r (e : Rob_entry.t) i =
  let dsts = p.Rob_entry.dsts in
  let n = Array.length dsts in
  let rec loop j =
    if j < n then
      if Reg.equal dsts.(j) r then e.Rob_entry.src_val.(i) <- p.Rob_entry.dst_val.(j)
      else loop (j + 1)
  in
  loop 0

(* Try to make all of [e]'s sources ready; returns true when they are.
   Values from in-flight producers are only visible once the producer has
   executed *and* the policy allows it to forward (the AccessDelay /
   ProtDelay wakeup-gating point).

   Side effect on the scheduler: when nothing blocked on policy and some
   producer simply has not executed yet, every remaining non-ready
   source is waiting on an un-executed producer — the entry goes dormant
   and the issue scan skips it until [tick] wakes it.  Skipping is
   exact: for such an entry this function is pure and false (no
   emission, no mutation), and each of those sources already sits in its
   producer's wakeup chain (registered at rename, membership cleared
   only by the producer executing), so the *first* producer to execute
   wakes the entry.  No chain registration happens here. *)
let sources_ready (t : S.t) (e : Rob_entry.t) =
  let ap = S.api t in
  let ready = e.Rob_entry.src_ready in
  let n = Array.length ready in
  let all = ref true in
  let policy_blocked = ref false in
  for i = 0 to n - 1 do
    if not ready.(i) then begin
      let r, _ = e.Rob_entry.srcs.(i) in
      let prod = S.peek t e.Rob_entry.src_producer.(i) in
      if Rob_entry.is_null prod then begin
        (* Producer committed: its value is in the architectural
           register file (no younger writer can have committed). *)
        e.Rob_entry.src_val.(i) <- t.S.regs.(Reg.to_int r);
        ready.(i) <- true;
        t.S.progress <- true
      end
      else if prod.Rob_entry.executed then
        if t.S.policy.Policy.may_forward ap prod then begin
          copy_producer_value prod r e i;
          ready.(i) <- true;
          t.S.progress <- true;
          if S.wants t Hooks.k_wakeup then
            S.emit t (Hooks.On_wakeup { consumer = e; producer = prod })
        end
        else begin
          t.S.progress <- true;
          if S.wants t Hooks.k_wakeup_blocked then
            S.emit t (Hooks.On_wakeup_blocked { consumer = e; producer = prod });
          all := false;
          policy_blocked := true
        end
      else all := false
    end
  done;
  if (not !all) && not !policy_blocked then begin
    e.Rob_entry.dormant <- true;
    t.S.progress <- true
  end;
  !all

let src_value (e : Rob_entry.t) reg role =
  let i = Rob_entry.find_src e reg role in
  if i >= 0 then e.Rob_entry.src_val.(i)
  else invalid_arg "Pipeline.src_value: operand not found"

(* Value of a [src] operand (register via the renamed sources, or an
   immediate). *)
let operand_value (e : Rob_entry.t) (s : Insn.src) role =
  match s with Insn.Imm v -> v | Insn.Reg r -> src_value e r role

let ea_of (e : Rob_entry.t) (m : Insn.mem) =
  let read r = src_value e r Insn.Addr in
  Sem.effective_address read m

let alu_latency (t : S.t) (op : Insn.op) =
  match op with
  | Insn.Binop (Insn.Mul, _, _) -> t.S.cfg.Config.mul_latency
  | _ -> t.S.cfg.Config.alu_latency

let set_dst (e : Rob_entry.t) r v =
  let n = Array.length e.Rob_entry.dsts in
  let rec loop i =
    if i < n then
      if Reg.equal e.Rob_entry.dsts.(i) r then e.Rob_entry.dst_val.(i) <- v
      else loop (i + 1)
  in
  loop 0

(* Begin executing [e]; all sources are ready.  Returns false when the
   instruction could not start (e.g. a load waiting on a store).  Sets
   [cycles_left]; results are computed here and become architectural when
   the entry commits. *)
let start_execution (t : S.t) (e : Rob_entry.t) =
  let insn = e.Rob_entry.insn in
  let old_of r = src_value e r Insn.Data in
  let started = ref true in
  (match insn.Insn.op with
  | Insn.Nop | Insn.Halt -> e.Rob_entry.cycles_left <- 1
  | Insn.Mov (w, d, s) ->
      let v = operand_value e s Insn.Data in
      let old = match w with Insn.W8 -> old_of d | _ -> 0L in
      set_dst e d (Sem.apply_width w ~old v);
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Lea (d, m) ->
      let read r = src_value e r Insn.Data in
      set_dst e d (Sem.effective_address read m);
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Binop (o, d, s) ->
      let r, fl = Sem.eval_binop o (old_of d) (operand_value e s Insn.Data) in
      set_dst e d r;
      set_dst e Reg.flags fl;
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Unop (o, d) ->
      let r, fl = Sem.eval_unop o (old_of d) in
      set_dst e d r;
      set_dst e Reg.flags fl;
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Div (d, n, s) | Insn.Rem (d, n, s) ->
      let nv = src_value e n Insn.Divide in
      let dv = operand_value e s Insn.Divide in
      let lat =
        if Int64.equal dv 0L then t.S.cfg.Config.div_base_latency
        else t.S.cfg.Config.div_base_latency + (Sem.bit_length nv / 8)
      in
      if S.wants t Hooks.k_div_busy then
        S.emit t (Hooks.On_div_busy { latency = lat });
      if Int64.equal dv 0L then begin
        e.Rob_entry.fault <- true;
        set_dst e d Int64.minus_one
      end
      else begin
        let q =
          match insn.Insn.op with
          | Insn.Div _ -> Sem.eval_div nv dv
          | _ -> Sem.eval_rem nv dv
        in
        set_dst e d q
      end;
      e.Rob_entry.cycles_left <- lat
  | Insn.Cmp (a, s) ->
      set_dst e Reg.flags
        (Sem.eval_cmp (src_value e a Insn.Data) (operand_value e s Insn.Data));
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Test (a, s) ->
      set_dst e Reg.flags
        (Sem.eval_test (src_value e a Insn.Data) (operand_value e s Insn.Data));
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Setcc (c, d) ->
      let fl = src_value e Reg.flags Insn.Cond_in in
      set_dst e d (if Sem.eval_cond c fl then 1L else 0L);
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Cmov (c, d, s) ->
      let fl = src_value e Reg.flags Insn.Cond_in in
      let v =
        if Sem.eval_cond c fl then operand_value e s Insn.Data else old_of d
      in
      set_dst e d v;
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Jcc (c, target) ->
      let fl = src_value e Reg.flags Insn.Cond_in in
      e.Rob_entry.actual_target <-
        (if Sem.eval_cond c fl then target else e.Rob_entry.pc + 1);
      e.Rob_entry.cycles_left <- 1
  | Insn.Jmp target ->
      e.Rob_entry.actual_target <- target;
      e.Rob_entry.cycles_left <- 1
  | Insn.Jmpi r ->
      e.Rob_entry.actual_target <- Int64.to_int (src_value e r Insn.Target);
      e.Rob_entry.cycles_left <- 1
  | Insn.Load (w, d, m) ->
      let addr = ea_of e m in
      let size = Insn.width_bytes w in
      (match Stage_memory.forward_search t e addr size with
      | Stage_memory.Fwd_wait -> started := false
      | Stage_memory.Fwd_value st ->
          e.Rob_entry.addr <- addr;
          e.Rob_entry.msize <- size;
          e.Rob_entry.addr_ready <- true;
          e.Rob_entry.fwd_from <- st.Rob_entry.seq;
          let v = Stage_memory.forwarded_value st addr size in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- st.Rob_entry.mem_prot;
          let old = match w with Insn.W8 -> old_of d | _ -> 0L in
          set_dst e d (Sem.apply_width w ~old (Sem.truncate_width w v));
          e.Rob_entry.cycles_left <- t.S.cfg.Config.store_forward_latency;
          if S.wants t Hooks.k_forward then
            S.emit t (Hooks.On_forward { load = e; store = st })
      | Stage_memory.Fwd_none ->
          e.Rob_entry.addr <- addr;
          e.Rob_entry.msize <- size;
          e.Rob_entry.addr_ready <- true;
          let v = Memory.read t.S.mem addr size in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- S.l1d_protected t addr size;
          let old = match w with Insn.W8 -> old_of d | _ -> 0L in
          set_dst e d (Sem.apply_width w ~old v);
          let lat = t.S.cfg.Config.load_agu_latency + Mem_hierarchy.access t addr in
          e.Rob_entry.cycles_left <- lat);
      if !started && S.wants t Hooks.k_load_executed then
        S.emit t (Hooks.On_load_executed e)
  | Insn.Store (w, m, s) ->
      let addr = ea_of e m in
      let size = Insn.width_bytes w in
      e.Rob_entry.addr <- addr;
      e.Rob_entry.msize <- size;
      e.Rob_entry.addr_ready <- true;
      e.Rob_entry.mem_value <-
        Sem.truncate_width w (operand_value e s Insn.Data);
      (* The store's LSQ protection bit: its data operand's tag. *)
      e.Rob_entry.mem_prot <-
        (match s with
        | Insn.Reg r ->
            let i = Rob_entry.find_src e r Insn.Data in
            i >= 0 && e.Rob_entry.src_prot.(i)
        | Insn.Imm _ -> false);
      ignore (Tlb.access t.S.tlb addr);
      e.Rob_entry.cycles_left <- 1
  | Insn.Push s ->
      let sp = src_value e Reg.rsp Insn.Addr in
      let addr = Int64.sub sp 8L in
      e.Rob_entry.addr <- addr;
      e.Rob_entry.msize <- 8;
      e.Rob_entry.addr_ready <- true;
      e.Rob_entry.mem_value <- operand_value e s Insn.Data;
      e.Rob_entry.mem_prot <-
        (match s with
        | Insn.Reg r ->
            let i = Rob_entry.find_src e r Insn.Data in
            i >= 0 && e.Rob_entry.src_prot.(i)
        | Insn.Imm _ -> false);
      set_dst e Reg.rsp addr;
      ignore (Tlb.access t.S.tlb addr);
      e.Rob_entry.cycles_left <- 1
  | Insn.Call target ->
      let sp = src_value e Reg.rsp Insn.Addr in
      let addr = Int64.sub sp 8L in
      e.Rob_entry.addr <- addr;
      e.Rob_entry.msize <- 8;
      e.Rob_entry.addr_ready <- true;
      e.Rob_entry.mem_value <- Int64.of_int (e.Rob_entry.pc + 1);
      e.Rob_entry.mem_prot <- false;
      set_dst e Reg.rsp addr;
      e.Rob_entry.actual_target <- target;
      ignore (Tlb.access t.S.tlb addr);
      e.Rob_entry.cycles_left <- 1
  | Insn.Pop d ->
      let sp = src_value e Reg.rsp Insn.Addr in
      (match Stage_memory.forward_search t e sp 8 with
      | Stage_memory.Fwd_wait -> started := false
      | Stage_memory.Fwd_value st ->
          e.Rob_entry.addr <- sp;
          e.Rob_entry.msize <- 8;
          e.Rob_entry.addr_ready <- true;
          e.Rob_entry.fwd_from <- st.Rob_entry.seq;
          let v = Stage_memory.forwarded_value st sp 8 in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- st.Rob_entry.mem_prot;
          set_dst e d v;
          set_dst e Reg.rsp (Int64.add sp 8L);
          e.Rob_entry.cycles_left <- t.S.cfg.Config.store_forward_latency;
          if S.wants t Hooks.k_forward then
            S.emit t (Hooks.On_forward { load = e; store = st })
      | Stage_memory.Fwd_none ->
          e.Rob_entry.addr <- sp;
          e.Rob_entry.msize <- 8;
          e.Rob_entry.addr_ready <- true;
          let v = Memory.read t.S.mem sp 8 in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- S.l1d_protected t sp 8;
          set_dst e d v;
          set_dst e Reg.rsp (Int64.add sp 8L);
          e.Rob_entry.cycles_left <-
            t.S.cfg.Config.load_agu_latency + Mem_hierarchy.access t sp);
      if !started && S.wants t Hooks.k_load_executed then
        S.emit t (Hooks.On_load_executed e)
  | Insn.Ret ->
      let sp = src_value e Reg.rsp Insn.Addr in
      (match Stage_memory.forward_search t e sp 8 with
      | Stage_memory.Fwd_wait -> started := false
      | Stage_memory.Fwd_value st ->
          e.Rob_entry.addr <- sp;
          e.Rob_entry.msize <- 8;
          e.Rob_entry.addr_ready <- true;
          e.Rob_entry.fwd_from <- st.Rob_entry.seq;
          let v = Stage_memory.forwarded_value st sp 8 in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- st.Rob_entry.mem_prot;
          set_dst e Reg.tmp v;
          set_dst e Reg.rsp (Int64.add sp 8L);
          e.Rob_entry.actual_target <- Int64.to_int v;
          e.Rob_entry.cycles_left <- t.S.cfg.Config.store_forward_latency;
          if S.wants t Hooks.k_forward then
            S.emit t (Hooks.On_forward { load = e; store = st })
      | Stage_memory.Fwd_none ->
          e.Rob_entry.addr <- sp;
          e.Rob_entry.msize <- 8;
          e.Rob_entry.addr_ready <- true;
          let v = Memory.read t.S.mem sp 8 in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- S.l1d_protected t sp 8;
          set_dst e Reg.tmp v;
          set_dst e Reg.rsp (Int64.add sp 8L);
          e.Rob_entry.actual_target <- Int64.to_int v;
          e.Rob_entry.cycles_left <-
            t.S.cfg.Config.load_agu_latency + Mem_hierarchy.access t sp);
      if !started && S.wants t Hooks.k_load_executed then
        S.emit t (Hooks.On_load_executed e));
  if !started then begin
    e.Rob_entry.issued <- true;
    e.Rob_entry.t_issue <- t.S.cycle;
    t.S.progress <- true;
    (* A store whose address just resolved may expose a memory-order
       violation by a younger, already-executed load. *)
    if Rob_entry.is_store e then begin
      let ld = Stage_memory.check_order_violation t e in
      if not (Rob_entry.is_null ld) then begin
        if S.wants t Hooks.k_order_violation then
          S.emit t (Hooks.On_order_violation { store = e; load = ld });
        Stage_memory.mdp_flag t ld.Rob_entry.pc;
        Squash.flush t ~from_seq:ld.Rob_entry.seq ~new_pc:ld.Rob_entry.pc
      end
    end
  end;
  !started

(* Transmitters whose execution (as opposed to resolution) the policy can
   delay: memory accesses and divisions.  Branch resolution is gated
   separately. *)
let execution_gated (e : Rob_entry.t) =
  match e.Rob_entry.insn.Insn.op with
  | Insn.Load _ | Insn.Store _ | Insn.Push _ | Insn.Pop _ | Insn.Ret
  | Insn.Call _ | Insn.Div _ | Insn.Rem _ ->
      true
  | _ -> false

(* Complete [e]: mark it executed and wake the consumers parked on its
   wakeup chain (clear their chain memberships and let them rejoin the
   issue scan from this cycle on). *)
let complete_entry (t : S.t) (e : Rob_entry.t) =
  e.Rob_entry.executed <- true;
  e.Rob_entry.t_complete <- t.S.cycle;
  t.S.progress <- true;
  let c = ref e.Rob_entry.waiters in
  let s = ref e.Rob_entry.waiters_slot in
  e.Rob_entry.waiters <- Rob_entry.null;
  while not (Rob_entry.is_null !c) do
    let cur = !c and slot = !s in
    c := cur.Rob_entry.wl_next.(slot);
    s := cur.Rob_entry.wl_slot.(slot);
    cur.Rob_entry.wl_next.(slot) <- Rob_entry.null;
    cur.Rob_entry.wl_slot.(slot) <- -1;
    cur.Rob_entry.dormant <- false
  done

(* Tick the in-flight set: decrement, mark executed at zero, wake the
   dormant consumers parked on the completing producer, and compact the
   deque in place.  Runs before the issue scan, which is exact because
   every producer is strictly older than its consumers: in the old
   interleaved full-ring pass, a producer's tick always preceded its
   consumers' wakeup checks within the same cycle.

   Under a bounded writeback budget ([Config.ports] with [wb_width] > 0)
   at most [wb_width] finished computations broadcast per cycle, oldest
   sequence numbers first; the rest stay in the deque (cycles_left <= 0,
   still issued-and-unexecuted, so every scheduler invariant holds and
   their consumers stay correctly dormant) and contend again next
   cycle.  Each deferred completion is reported via [On_wb_queued]. *)
let tick (t : S.t) =
  let q = t.S.inflight in
  let a = q.Entryq.a in
  let front = q.Entryq.front and back = q.Entryq.back in
  let wb_budget =
    match t.S.cfg.Config.ports with
    | None -> 0
    | Some pc -> pc.Config.wb_width
  in
  if wb_budget <= 0 then begin
    (* Unbounded broadcast: the historical single compacting pass. *)
    let w = ref front in
    for i = front to back - 1 do
      let e = a.(i) in
      e.Rob_entry.cycles_left <- e.Rob_entry.cycles_left - 1;
      if e.Rob_entry.cycles_left <= 0 then complete_entry t e
      else begin
        a.(!w) <- e;
        incr w
      end
    done;
    for i = !w to back - 1 do
      a.(i) <- Rob_entry.null
    done;
    q.Entryq.back <- !w
  end
  else begin
    (* Decrement everything first; candidates are entries whose
       computation has finished (including ones deferred earlier). *)
    for i = front to back - 1 do
      let e = a.(i) in
      e.Rob_entry.cycles_left <- e.Rob_entry.cycles_left - 1
    done;
    (* Grant the broadcast slots oldest-seq-first: up to [wb_budget]
       selection passes over the deque (the deque is in issue order, not
       seq order).  Completing marks the entry executed, which both
       excludes it from later passes and lets the compaction below drop
       it. *)
    let granted = ref 0 in
    let continue_ = ref true in
    while !granted < wb_budget && !continue_ do
      let best = ref Rob_entry.null in
      for i = front to back - 1 do
        let e = a.(i) in
        if
          (not e.Rob_entry.executed)
          && e.Rob_entry.cycles_left <= 0
          && (Rob_entry.is_null !best
             || e.Rob_entry.seq < !best.Rob_entry.seq)
        then best := e
      done;
      if Rob_entry.is_null !best then continue_ := false
      else begin
        complete_entry t !best;
        incr granted
      end
    done;
    (* Compact: drop completed entries, keep running and deferred ones
       (a kept entry with cycles_left <= 0 lost the broadcast race). *)
    let w = ref front in
    for i = front to back - 1 do
      let e = a.(i) in
      if not e.Rob_entry.executed then begin
        if e.Rob_entry.cycles_left <= 0 then begin
          (* Deferred completion: the per-cycle [wb_queue_stall_cycles]
             accounting makes this cycle (and every cycle until the
             broadcast slot is won) unskippable. *)
          t.S.progress <- true;
          if S.wants t Hooks.k_wb_queued then S.emit t (Hooks.On_wb_queued e)
        end;
        a.(!w) <- e;
        incr w
      end
    done;
    for i = !w to back - 1 do
      a.(i) <- Rob_entry.null
    done;
    q.Entryq.back <- !w
  end

(* Lowest-numbered execution port that can accept an instruction of
   class [cls] this cycle: capability match, not already bound this
   cycle, and not held across cycles by an unpipelined computation.
   Returns -1 when every compatible port is occupied (a structural
   stall).  Lowest-first selection is deterministic and mirrors
   hardware's fixed port-arbitration priority. *)
let find_port (t : S.t) (pc : Config.port_cfg) cls =
  let n = Array.length pc.Config.port_caps in
  let rec go i =
    if i >= n then -1
    else if
      Config.port_can pc i cls
      && (not t.S.port_used.(i))
      && t.S.port_busy_until.(i) <= t.S.cycle
    then i
    else go (i + 1)
  in
  go 0

let run (t : S.t) =
  tick t;
  let ap = S.api t in
  let width = t.S.cfg.Config.issue_width in
  let pcfg = t.S.cfg.Config.ports in
  (match pcfg with
  | None -> ()
  | Some _ -> Array.fill t.S.port_used 0 (Array.length t.S.port_used) false);
  let issued = ref 0 in
  let cursor = ref t.S.uq_head in
  while (not (Rob_entry.is_null !cursor)) && !issued < width do
    let e = !cursor in
    let next = e.Rob_entry.uq_next in
    if (not e.Rob_entry.dormant) && sources_ready t e then begin
      if
        execution_gated e
        && not (t.S.policy.Policy.may_execute_transmitter ap e)
      then begin
        t.S.progress <- true;
        if S.wants t Hooks.k_exec_blocked then
          S.emit t (Hooks.On_exec_blocked e)
      end
      else if
        Rob_entry.is_load e
        && Stage_memory.mdp_flagged t e.Rob_entry.pc
        && Stage_memory.older_store_addr_unknown t e
      then () (* memory-dependence predictor: wait for stores *)
      else begin
        (* Structural port arbitration: a ready entry must win a
           compatible free port before it may start.  Losing does not
           consume an issue slot — a younger entry of another class may
           still issue behind it this cycle.  The port is claimed only
           after [start_execution] succeeds (a load parked on Fwd_wait
           holds neither a slot nor a port). *)
        let port =
          match pcfg with
          | None -> 0
          | Some pc -> find_port t pc (Rob_entry.op_class e)
        in
        if port < 0 then begin
          t.S.progress <- true;
          if S.wants t Hooks.k_port_stall then
            S.emit t (Hooks.On_port_stall e)
        end
        else if start_execution t e then begin
          incr issued;
          (match pcfg with
          | None -> ()
          | Some pc ->
              e.Rob_entry.port <- port;
              t.S.port_used.(port) <- true;
              if
                not
                  pc.Config.cls_pipelined.(Config.op_class_index
                                             (Rob_entry.op_class e))
              then
                t.S.port_busy_until.(port) <-
                  t.S.cycle + e.Rob_entry.cycles_left;
              if S.wants t Hooks.k_port_bound then
                S.emit t (Hooks.On_port_bound { port; entry = e }));
          S.uq_unlink t e;
          Entryq.push t.S.inflight e
        end
      end
    end;
    (* A store issuing above may have squashed from a younger load's seq,
       flushing [next].  Because the unissued list is seq-ascending, no
       unissued survivor can sit beyond a flushed [next] — stopping is
       exactly what the old bounded ring scan did (flushed slots read as
       empty). *)
    cursor :=
      (if
         Rob_entry.is_null next
         || S.peek t next.Rob_entry.seq != next
       then Rob_entry.null
       else next)
  done

(* Resolve branches: confirm correctly-predicted ones and initiate at most
   one squash per cycle from the oldest eligible misprediction.  All three
   passes walk the unresolved-branch list in seq order — the same entries,
   in the same order, as the old full-ring scans (every list member is a
   live unresolved branch and vice versa).

   With [squash_bug] set, the stage instead considers the oldest
   *detected* misprediction regardless of whether the policy allows it to
   resolve — so an older protected/tainted branch can block a younger
   unprotected one from squashing, a secret-dependent timing difference
   (the corner case AMuLeT* found in STT/SPT/SPT-SB, Section VII-B4b). *)
let resolve (t : S.t) =
  let ap = S.api t in
  (* Confirm correct predictions (no squash needed).  Resolving unlinks
     the entry, which immediately updates [oldest_unresolved_branch] —
     the same mid-pass visibility the memo-invalidation used to give. *)
  let cursor = ref t.S.bq_head in
  while not (Rob_entry.is_null !cursor) do
    let e = !cursor in
    let next = e.Rob_entry.bq_next in
    if
      e.Rob_entry.executed
      && (not e.Rob_entry.mispredicted)
      && e.Rob_entry.actual_target = e.Rob_entry.pred_target
    then
      if t.S.policy.Policy.may_resolve ap e then begin
        e.Rob_entry.resolved <- true;
        S.bq_unlink t e;
        t.S.progress <- true;
        if S.wants t Hooks.k_window_close then
          S.emit t
            (Hooks.On_window_close { entry = e; cause = Hooks.W_resolved })
      end
      else begin
        t.S.progress <- true;
        if S.wants t Hooks.k_resolve_blocked then
          S.emit t (Hooks.On_resolve_blocked e)
      end;
    cursor := next
  done;
  (* Detect mispredictions. *)
  let cursor = ref t.S.bq_head in
  while not (Rob_entry.is_null !cursor) do
    let e = !cursor in
    if
      e.Rob_entry.executed
      && e.Rob_entry.actual_target <> e.Rob_entry.pred_target
      && not e.Rob_entry.mispredicted
    then begin
      e.Rob_entry.mispredicted <- true;
      t.S.progress <- true
    end;
    cursor := e.Rob_entry.bq_next
  done;
  (* Oldest eligible misprediction wins the squash slot. *)
  let candidate = ref Rob_entry.null in
  (try
     let cursor = ref t.S.bq_head in
     while not (Rob_entry.is_null !cursor) do
       let e = !cursor in
       let next = e.Rob_entry.bq_next in
       if e.Rob_entry.executed && e.Rob_entry.mispredicted then begin
         if t.S.squash_bug then begin
           (* Buggy notification: the oldest detected misprediction wins
              the single notification slot even if its squash must be
              deferred. *)
           candidate := e;
           raise Exit
         end
         else if t.S.policy.Policy.may_resolve ap e then begin
           candidate := e;
           raise Exit
         end
         else begin
           t.S.progress <- true;
           if S.wants t Hooks.k_resolve_blocked then
             S.emit t (Hooks.On_resolve_blocked e)
         end
       end;
       cursor := next
     done
   with Exit -> ());
  let c = !candidate in
  if (not (Rob_entry.is_null c)) && t.S.policy.Policy.may_resolve ap c then begin
    c.Rob_entry.resolved <- true;
    S.bq_unlink t c;
    t.S.progress <- true;
    if S.wants t Hooks.k_window_close then
      S.emit t (Hooks.On_window_close { entry = c; cause = Hooks.W_mispredicted });
    if S.wants t Hooks.k_mispredict then S.emit t (Hooks.On_mispredict c);
    Squash.flush t ~from_seq:(c.Rob_entry.seq + 1)
      ~new_pc:c.Rob_entry.actual_target
  end
