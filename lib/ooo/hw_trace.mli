(** Attacker-visible hardware events and the two adversary models of the
    security evaluation (Section VII-B1).

    The default AMuLeT adversary observes data-cache and TLB tag-state
    changes (fills and evictions, unordered in time); the AMuLeT*
    timing-based adversary additionally observes per-stage cycles of
    committed instructions, squash timing and divider activity — the
    fine-grained information available to SMT receivers, which is what
    surfaced the division channel and the pending-squash bug. *)

type event =
  | E_cache_fill of { level : int; set : int; tag : int64 }
  | E_cache_evict of { level : int; line : int64 }
  | E_tlb_fill of int64
  | E_timing of {
      pc : int;
      fetch : int;
      rename : int;
      issue : int;
      complete : int;
      commit : int;
    }
  | E_squash of { cycle : int; flushed : int }
  | E_machine_clear of { cycle : int }
  | E_div_busy of { cycle : int; latency : int }

type t

val create : enabled:bool -> t
val enabled : t -> bool
val record : t -> event -> unit
val all : t -> event list

val cache_tlb_view : t -> event list
(** Projection for the default cache+TLB adversary. *)

val timing_view : t -> event list
(** Projection for the timing-based adversary (everything). *)

val view_equal : event list -> event list -> bool
val pp_event : Format.formatter -> event -> unit
