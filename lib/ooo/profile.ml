(* Sampling stage profiler, attached through the hook bus.

   When attached it subscribes to [On_stage] (emitted by [Pipeline.step]
   after each stage, ids below), [On_cycle_end] and [On_commit], and
   accumulates
   - wall-clock seconds per pipeline stage (delta between consecutive
     stage marks within a cycle),
   - simulated-cycle attribution per program counter: each committed
     instruction adds its fetch-to-commit latency to its pc's bucket, a
     cheap "where do the cycles go" histogram.

   Cost contract: the profiler is *provably free when off*.  [k_stage]
   and [k_cycle_end] have no other default claimant, so with no profiler
   attached [Pipeline.step] skips the [On_stage] emissions entirely (one
   interest-mask test per cycle) and allocates nothing.  The per-commit
   attribution rides the always-on [On_commit] event and only costs when
   attached. *)

module S = Pipeline_state

(* Stage ids, in the order [Pipeline.step] runs them.  "skipped" is the
   pseudo-stage owning the spans event-driven skip-ahead advanced in
   bulk (simulated cycles without stage work; its wall share is the
   skip bookkeeping itself).  The final id ("between") collects
   everything outside the five stages: watchdog, invariant subscribers,
   the driver's own per-cycle work. *)
let stage_names =
  [| "commit"; "resolve"; "issue_exec"; "rename"; "fetch"; "skipped"; "between" |]

let n_stages = Array.length stage_names
let skipped_stage = n_stages - 2

type t = {
  stage_s : float array; (* wall seconds per stage id *)
  mutable last : float; (* timestamp of the previous mark *)
  mutable cycles : int; (* cycles profiled *)
  pc_cycles : (int, int) Hashtbl.t; (* pc -> summed fetch-to-commit cycles *)
  pc_commit : (int, int) Hashtbl.t;
      (* pc -> commit-gap cycles: each commit owns the simulated cycles
         since the previous commit, so summing this table plus the
         residual after the last commit reproduces the run's cycle count
         exactly — the invariant the flamegraph exporter relies on *)
  mutable commit_last : int; (* cycle of the most recent commit *)
}

let create () =
  {
    stage_s = Array.make n_stages 0.0;
    last = 0.0;
    cycles = 0;
    pc_cycles = Hashtbl.create 64;
    pc_commit = Hashtbl.create 64;
    commit_last = 0;
  }

let handler (p : t) (t : S.t) (ev : Hooks.event) =
  match ev with
  | Hooks.On_stage i ->
      let now = Unix.gettimeofday () in
      p.stage_s.(i) <- p.stage_s.(i) +. (now -. p.last);
      p.last <- now
  | Hooks.On_cycle_end ->
      let now = Unix.gettimeofday () in
      p.stage_s.(n_stages - 1) <- p.stage_s.(n_stages - 1) +. (now -. p.last);
      p.last <- now;
      p.cycles <- p.cycles + 1
  | Hooks.On_skip { cycles } ->
      (* Bulk-advanced quiet span: count the simulated cycles so
         profiled cycles still equal the pipeline's clock, and bill the
         (tiny) wall time of the jump to the pseudo-stage. *)
      let now = Unix.gettimeofday () in
      p.stage_s.(skipped_stage) <- p.stage_s.(skipped_stage) +. (now -. p.last);
      p.last <- now;
      p.cycles <- p.cycles + cycles
  | Hooks.On_commit e ->
      let pc = e.Rob_entry.pc in
      let dt = t.S.cycle - e.Rob_entry.t_fetch in
      let prev = try Hashtbl.find p.pc_cycles pc with Not_found -> 0 in
      Hashtbl.replace p.pc_cycles pc (prev + dt);
      let gap = t.S.cycle - p.commit_last in
      p.commit_last <- t.S.cycle;
      if gap > 0 then begin
        let prev = try Hashtbl.find p.pc_commit pc with Not_found -> 0 in
        Hashtbl.replace p.pc_commit pc (prev + gap)
      end
  | _ -> ()

(* A snapshot is plain data: everything a reporting layer needs to fold
   the profile into exporter formats, detached from the live tables.
   [snap_residual] is the cycles between the last commit and [cycle]
   (the pipeline's clock when the snapshot was taken): attributed to no
   pc, it is what makes [snap_flame] + residual == simulated cycles. *)
type snapshot = {
  snap_cycles : int; (* cycles profiled while attached *)
  snap_stage_s : (string * float) list; (* wall seconds per stage *)
  snap_pc_cycles : (int * int) list; (* fetch-to-commit latency per pc *)
  snap_flame : (int * int) list; (* commit-gap cycles per pc *)
  snap_residual : int; (* cycles after the last commit *)
}

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let snapshot (p : t) ~cycle =
  {
    snap_cycles = p.cycles;
    snap_stage_s =
      Array.to_list (Array.mapi (fun i s -> (stage_names.(i), s)) p.stage_s);
    snap_pc_cycles = sorted_bindings p.pc_cycles;
    snap_flame = sorted_bindings p.pc_commit;
    snap_residual = max 0 (cycle - p.commit_last);
  }

(* [sink], when given, receives a final snapshot when the profiler is
   unsubscribed — including an unsubscribe mid-run, so partial samples
   are flushed rather than silently dropped (the bus runs the finalizer
   from [Hooks.unsubscribe]). *)
let attach ?sink (p : t) (t : S.t) =
  p.last <- Unix.gettimeofday ();
  p.commit_last <- t.S.cycle;
  let on_remove =
    match sink with
    | None -> None
    | Some f -> Some (fun () -> f (snapshot p ~cycle:t.S.cycle))
  in
  Hooks.subscribe ?on_remove t.S.hooks ~name:"profile"
    ~kinds:Hooks.[ k_stage; k_cycle_end; k_commit; k_skip ]
    (handler p)

let detach (t : S.t) = Hooks.unsubscribe t.S.hooks "profile"
let total_seconds p = Array.fold_left ( +. ) 0.0 p.stage_s

(* (stage name, seconds, share of profiled time), stage order. *)
let stage_breakdown p =
  let total = total_seconds p in
  Array.to_list
    (Array.mapi
       (fun i s ->
         (stage_names.(i), p.stage_s.(i), if total > 0.0 then s /. total else 0.0))
       p.stage_s)

(* Top-[n] program counters by attributed cycles. *)
let top_pcs ?(n = 10) p =
  let all = Hashtbl.fold (fun pc c acc -> (pc, c) :: acc) p.pc_cycles [] in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take n sorted
