(* Sampling stage profiler, attached through the hook bus.

   When attached it subscribes to [On_stage] (emitted by [Pipeline.step]
   after each stage, ids below), [On_cycle_end] and [On_commit], and
   accumulates
   - wall-clock seconds per pipeline stage (delta between consecutive
     stage marks within a cycle),
   - simulated-cycle attribution per program counter: each committed
     instruction adds its fetch-to-commit latency to its pc's bucket, a
     cheap "where do the cycles go" histogram.

   Cost contract: the profiler is *provably free when off*.  [k_stage]
   and [k_cycle_end] have no other default claimant, so with no profiler
   attached [Pipeline.step] skips the [On_stage] emissions entirely (one
   interest-mask test per cycle) and allocates nothing.  The per-commit
   attribution rides the always-on [On_commit] event and only costs when
   attached. *)

module S = Pipeline_state

(* Stage ids, in the order [Pipeline.step] runs them.  Id 5 ("between")
   collects everything outside the five stages: watchdog, invariant
   subscribers, the driver's own per-cycle work. *)
let stage_names = [| "commit"; "resolve"; "issue_exec"; "rename"; "fetch"; "between" |]
let n_stages = Array.length stage_names

type t = {
  stage_s : float array; (* wall seconds per stage id *)
  mutable last : float; (* timestamp of the previous mark *)
  mutable cycles : int; (* cycles profiled *)
  pc_cycles : (int, int) Hashtbl.t; (* pc -> summed fetch-to-commit cycles *)
}

let create () =
  {
    stage_s = Array.make n_stages 0.0;
    last = 0.0;
    cycles = 0;
    pc_cycles = Hashtbl.create 64;
  }

let handler (p : t) (t : S.t) (ev : Hooks.event) =
  match ev with
  | Hooks.On_stage i ->
      let now = Unix.gettimeofday () in
      p.stage_s.(i) <- p.stage_s.(i) +. (now -. p.last);
      p.last <- now
  | Hooks.On_cycle_end ->
      let now = Unix.gettimeofday () in
      p.stage_s.(n_stages - 1) <- p.stage_s.(n_stages - 1) +. (now -. p.last);
      p.last <- now;
      p.cycles <- p.cycles + 1
  | Hooks.On_commit e ->
      let pc = e.Rob_entry.pc in
      let dt = t.S.cycle - e.Rob_entry.t_fetch in
      let prev = try Hashtbl.find p.pc_cycles pc with Not_found -> 0 in
      Hashtbl.replace p.pc_cycles pc (prev + dt)
  | _ -> ()

let attach (p : t) (t : S.t) =
  p.last <- Unix.gettimeofday ();
  Hooks.subscribe t.S.hooks ~name:"profile"
    ~kinds:Hooks.[ k_stage; k_cycle_end; k_commit ]
    (handler p)

let detach (t : S.t) = Hooks.unsubscribe t.S.hooks "profile"
let total_seconds p = Array.fold_left ( +. ) 0.0 p.stage_s

(* (stage name, seconds, share of profiled time), stage order. *)
let stage_breakdown p =
  let total = total_seconds p in
  Array.to_list
    (Array.mapi
       (fun i s ->
         (stage_names.(i), p.stage_s.(i), if total > 0.0 then s /. total else 0.0))
       p.stage_s)

(* Top-[n] program counters by attributed cycles. *)
let top_pcs ?(n = 10) p =
  let all = Hashtbl.fold (fun pc c acc -> (pc, c) :: acc) p.pc_cycles [] in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take n sorted
