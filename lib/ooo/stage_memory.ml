(* Memory-disambiguation machinery: the LSQ search used for
   store-to-load forwarding, memory-order speculation and its recovery,
   and the store-set-style memory-dependence predictor (MDP).

   Pure queries over [Pipeline_state] plus the MDP bitmap; the actual
   load/store execution lives in [Stage_issue_exec], order-violation
   squashes in [Squash]. *)

module S = Pipeline_state

let mdp_index pc = pc land 1023
let mdp_flagged (t : S.t) pc = Bytes.get t.S.mdp (mdp_index pc) = '\001'
let mdp_flag (t : S.t) pc = Bytes.set t.S.mdp (mdp_index pc) '\001'

(* Is there an older store whose address is still unknown? *)
let older_store_addr_unknown (t : S.t) (e : Rob_entry.t) =
  let found = ref false in
  (try
     for seq = e.Rob_entry.seq - 1 downto t.S.head_seq do
       match S.get_entry t seq with
       | Some st when Rob_entry.is_store st && not st.Rob_entry.addr_ready ->
           found := true;
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  !found

type fwd_result =
  | Fwd_value of Rob_entry.t (* fully-covering executed older store *)
  | Fwd_wait (* overlapping older store not ready to forward *)
  | Fwd_none

(* Youngest older store overlapping the load's bytes.  Older stores whose
   address is still unknown are speculatively ignored (memory-order
   speculation); mis-speculation is caught when the store executes. *)
let forward_search (t : S.t) (e : Rob_entry.t) addr size =
  let result = ref Fwd_none in
  (try
     for seq = e.Rob_entry.seq - 1 downto t.S.head_seq do
       match S.get_entry t seq with
       | Some st when Rob_entry.is_store st && st.Rob_entry.addr_ready ->
           let sa = st.Rob_entry.addr and ss = st.Rob_entry.msize in
           let overlap =
             Int64.compare sa (Int64.add addr (Int64.of_int size)) < 0
             && Int64.compare addr (Int64.add sa (Int64.of_int ss)) < 0
           in
           if overlap then begin
             let covers =
               Int64.compare sa addr <= 0
               && Int64.compare (Int64.add sa (Int64.of_int ss))
                    (Int64.add addr (Int64.of_int size))
                  >= 0
             in
             if covers && st.Rob_entry.executed then result := Fwd_value st
             else result := Fwd_wait;
             raise Exit
           end
       | _ -> ()
     done
   with Exit -> ());
  !result

(* Extract the forwarded bytes from a covering store. *)
let forwarded_value (st : Rob_entry.t) addr size =
  let shift = Int64.to_int (Int64.sub addr st.Rob_entry.addr) * 8 in
  let v = Int64.shift_right_logical st.Rob_entry.mem_value shift in
  if size >= 8 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L (8 * size)) 1L)

(* Memory-order violation check, run when a store's address becomes
   known: any younger load that already executed on overlapping bytes
   without forwarding from this store read stale data. *)
let check_order_violation (t : S.t) (st : Rob_entry.t) =
  let victim = ref None in
  S.iter_rob t (fun ld ->
      if
        Rob_entry.is_load ld
        && ld.Rob_entry.seq > st.Rob_entry.seq
        && ld.Rob_entry.addr_ready
        && ld.Rob_entry.issued
        && ld.Rob_entry.fwd_from <> st.Rob_entry.seq
      then
        let overlap =
          Int64.compare st.Rob_entry.addr
            (Int64.add ld.Rob_entry.addr (Int64.of_int ld.Rob_entry.msize))
          < 0
          && Int64.compare ld.Rob_entry.addr
               (Int64.add st.Rob_entry.addr (Int64.of_int st.Rob_entry.msize))
             < 0
        in
        if overlap then
          match !victim with
          | Some (v : Rob_entry.t) when v.Rob_entry.seq <= ld.Rob_entry.seq -> ()
          | _ -> victim := Some ld);
  !victim
