(* Memory-disambiguation machinery: the LSQ search used for
   store-to-load forwarding, memory-order speculation and its recovery,
   and the store-set-style memory-dependence predictor (MDP).

   Pure queries over [Pipeline_state] plus the MDP bitmap; the actual
   load/store execution lives in [Stage_issue_exec], order-violation
   squashes in [Squash].

   All three searches run over the live store/load deques
   ([S.lsq_stores]/[S.lsq_loads], seq-ascending), not the ROB ring:
   cost is O(log lsq + matches scanned) instead of O(ROB occupancy),
   with the identical scan order (youngest-older-first for forwarding,
   oldest-younger-first for violation detection). *)

module S = Pipeline_state

let mdp_index pc = pc land 1023
let mdp_flagged (t : S.t) pc = Bytes.get t.S.mdp (mdp_index pc) = '\001'
let mdp_flag (t : S.t) pc = Bytes.set t.S.mdp (mdp_index pc) '\001'

(* Is there an older store whose address is still unknown? *)
let older_store_addr_unknown (t : S.t) (e : Rob_entry.t) =
  let q = t.S.lsq_stores in
  let hi = Entryq.lower_bound q e.Rob_entry.seq in
  let rec loop i =
    i > q.Entryq.front
    &&
    let st = q.Entryq.a.(i - 1) in
    (not st.Rob_entry.addr_ready) || loop (i - 1)
  in
  loop hi

type fwd_result =
  | Fwd_value of Rob_entry.t (* fully-covering executed older store *)
  | Fwd_wait (* overlapping older store not ready to forward *)
  | Fwd_none

(* Youngest older store overlapping the load's bytes.  Older stores whose
   address is still unknown are speculatively ignored (memory-order
   speculation); mis-speculation is caught when the store executes. *)
let forward_search (t : S.t) (e : Rob_entry.t) addr size =
  let q = t.S.lsq_stores in
  let hi = Entryq.lower_bound q e.Rob_entry.seq in
  let rec loop i =
    if i <= q.Entryq.front then Fwd_none
    else begin
      let st = q.Entryq.a.(i - 1) in
      if st.Rob_entry.addr_ready then begin
        let sa = st.Rob_entry.addr and ss = st.Rob_entry.msize in
        let overlap =
          Int64.compare sa (Int64.add addr (Int64.of_int size)) < 0
          && Int64.compare addr (Int64.add sa (Int64.of_int ss)) < 0
        in
        if overlap then begin
          let covers =
            Int64.compare sa addr <= 0
            && Int64.compare (Int64.add sa (Int64.of_int ss))
                 (Int64.add addr (Int64.of_int size))
               >= 0
          in
          if covers && st.Rob_entry.executed then Fwd_value st else Fwd_wait
        end
        else loop (i - 1)
      end
      else loop (i - 1)
    end
  in
  loop hi

(* Extract the forwarded bytes from a covering store. *)
let forwarded_value (st : Rob_entry.t) addr size =
  let shift = Int64.to_int (Int64.sub addr st.Rob_entry.addr) * 8 in
  let v = Int64.shift_right_logical st.Rob_entry.mem_value shift in
  if size >= 8 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L (8 * size)) 1L)

(* Memory-order violation check, run when a store's address becomes
   known: any younger load that already executed on overlapping bytes
   without forwarding from this store read stale data.  The oldest such
   load (= the first match of an ascending scan) is the squash point;
   [Rob_entry.null] when there is none. *)
let check_order_violation (t : S.t) (st : Rob_entry.t) =
  let q = t.S.lsq_loads in
  let lo = Entryq.lower_bound q (st.Rob_entry.seq + 1) in
  let rec loop i =
    if i >= q.Entryq.back then Rob_entry.null
    else begin
      let ld = q.Entryq.a.(i) in
      if
        ld.Rob_entry.addr_ready && ld.Rob_entry.issued
        && ld.Rob_entry.fwd_from <> st.Rob_entry.seq
        && Int64.compare st.Rob_entry.addr
             (Int64.add ld.Rob_entry.addr (Int64.of_int ld.Rob_entry.msize))
           < 0
        && Int64.compare ld.Rob_entry.addr
             (Int64.add st.Rob_entry.addr (Int64.of_int st.Rob_entry.msize))
           < 0
      then ld
      else loop (i + 1)
    end
  in
  loop lo
