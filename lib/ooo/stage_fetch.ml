(* Fetch stage: branch-predicted instruction fetch into the fetch buffer.

   Owns [fetch_pc], [fetch_stalled] and the fetch buffer; consults (and
   updates, for calls/returns) the branch predictor's RSB.  Emits
   [On_fetch] per fetched instruction. *)

open Protean_isa
module S = Pipeline_state

let predict_next (t : S.t) pc (insn : Insn.t) =
  match insn.Insn.op with
  | Insn.Jcc (_, target) ->
      if Branch_pred.predict_direction t.S.bp pc then target else pc + 1
  | Insn.Jmp target -> target
  | Insn.Call target ->
      Branch_pred.rsb_push t.S.bp (pc + 1);
      target
  | Insn.Ret -> (
      match Branch_pred.rsb_pop t.S.bp with Some p -> p | None -> -1)
  | Insn.Jmpi _ -> (
      match Branch_pred.predict_indirect t.S.bp pc with
      | Some target -> target
      | None -> -1)
  | Insn.Halt -> -1
  | _ -> pc + 1

let run (t : S.t) =
  let fetched = ref 0 in
  while
    (not t.S.fetch_stalled)
    && !fetched < t.S.cfg.Config.fetch_width
    && not (S.fb_full t)
  do
    let pc = t.S.fetch_pc in
    let insn =
      if Program.in_bounds t.S.program pc then Program.insn t.S.program pc
      else S.halt_insn
    in
    let next = predict_next t pc insn in
    S.fb_push t ~pc ~pred_target:next
      ~ready:(t.S.cycle + t.S.cfg.Config.frontend_latency)
      ~fetched:t.S.cycle;
    if S.wants t Hooks.k_fetch then S.emit t (Hooks.On_fetch { pc; insn });
    t.S.progress <- true;
    incr fetched;
    if next < 0 then t.S.fetch_stalled <- true else t.S.fetch_pc <- next
  done
