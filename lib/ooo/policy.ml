(* The protection-mechanism interface: Spectre defenses plug into the
   pipeline through this record of hooks (Section VI).

   A policy can
   - classify and taint instructions at rename ([on_rename]),
   - gate the execution/resolution of transmitters
     ([may_execute_transmitter], [may_resolve]),
   - gate the forwarding of a completed instruction's results to its
     dependents ([may_forward], the AccessDelay/ProtDelay mechanism),
   - react to a load learning whether it read protected memory
     ([on_load_executed]) and to commits ([on_commit]).

   The speculation model (Section II-B2) determines when an instruction
   stops being speculative: ATCOMMIT (at the ROB head — covers all
   speculation) or CONTROL (when all older branches have resolved). *)

type spec_model = Atcommit | Control

let spec_model_name = function Atcommit -> "ATCOMMIT" | Control -> "CONTROL"

type api = {
  cfg : Config.t;
  spec_model : spec_model;
  head_seq : unit -> int; (* seq at the ROB head; max_int when empty *)
  oldest_unresolved_branch : unit -> int; (* max_int when none *)
  get_entry : int -> Rob_entry.t option;
  peek : int -> Rob_entry.t;
      (* allocation-free [get_entry]: [Rob_entry.null] when not live —
         prefer it in per-cycle policy paths *)
  l1d_protected : int64 -> int -> bool;
  stats : Stats.t;
}

(* Is [e] still speculative under the configured speculation model? *)
let is_speculative api (e : Rob_entry.t) =
  match api.spec_model with
  | Atcommit -> e.Rob_entry.seq > api.head_seq ()
  | Control -> api.oldest_unresolved_branch () < e.Rob_entry.seq

(* Is the access instruction with sequence number [root] still
   speculative?  Roots that already committed are never speculative. *)
let root_speculative api root =
  root >= 0
  &&
  match api.spec_model with
  | Atcommit -> root > api.head_seq ()
  | Control -> api.oldest_unresolved_branch () < root

let tainted api (e : Rob_entry.t) = root_speculative api e.Rob_entry.taint_root

(* Taint inherited from the producers of [e]'s sources: the maximum of
   their taint roots (the youngest root dominates, exactly STT's
   youngest-root-of-taint).  Committed producers contribute no taint. *)
let inherited_taint api (e : Rob_entry.t) =
  let producers = e.Rob_entry.src_producer in
  let n = Array.length producers in
  let root = ref (-1) in
  for i = 0 to n - 1 do
    let p = producers.(i) in
    if p >= 0 then begin
      let prod = api.peek p in
      if not (Rob_entry.is_null prod) then
        if prod.Rob_entry.taint_root > !root then
          root := prod.Rob_entry.taint_root
    end
  done;
  !root

type t = {
  name : string;
  uses_protisa : bool;
      (* whether the pipeline should consult ProtISA protection tags
         (rename map, LSQ, L1D protection bits) for this policy *)
  on_rename : api -> Rob_entry.t -> unit;
  may_execute_transmitter : api -> Rob_entry.t -> bool;
  may_forward : api -> Rob_entry.t -> bool;
  may_resolve : api -> Rob_entry.t -> bool;
  on_load_executed : api -> Rob_entry.t -> unit;
  on_commit : api -> Rob_entry.t -> unit;
  metrics : unit -> (string * int) list;
      (* named policy-local counters for the telemetry layer, read once
         after a run; [] when the policy keeps no private state.  Names
         become Prometheus families (protean_defense_<name>_total), so
         use lowercase snake_case nouns. *)
}

let nop_hook _ _ = ()
let always _ _ = true
let no_metrics () = []

(* The unmodified out-of-order core: no protection at all. *)
let unsafe =
  {
    name = "unsafe";
    uses_protisa = false;
    on_rename = nop_hook;
    may_execute_transmitter = always;
    may_forward = always;
    may_resolve = always;
    on_load_executed = nop_hook;
    on_commit = nop_hook;
    metrics = no_metrics;
  }
