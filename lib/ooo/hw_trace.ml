(* Attacker-visible hardware events and the two adversary models of the
   security evaluation (Section VII-B1):

   - the default AMuLeT adversary observes data-cache and TLB tag state
     changes (the sequence of fills and evictions, without timestamps);
   - the AMuLeT* timing-based adversary additionally observes the cycle at
     which each committed instruction reaches each pipeline stage, squash
     timing, and divider activity, surfacing fine-grained timing channels
     visible to SMT receivers. *)

type event =
  | E_cache_fill of { level : int; set : int; tag : int64 }
  | E_cache_evict of { level : int; line : int64 }
  | E_tlb_fill of int64 (* page *)
  | E_timing of {
      pc : int;
      fetch : int;
      rename : int;
      issue : int;
      complete : int;
      commit : int;
    }
  | E_squash of { cycle : int; flushed : int }
  | E_machine_clear of { cycle : int }
  | E_div_busy of { cycle : int; latency : int }

type t = { mutable events : event list; mutable enabled : bool }

let create ~enabled = { events = []; enabled }
let enabled t = t.enabled

let record t e = if t.enabled then t.events <- e :: t.events

let all t = List.rev t.events

(* Projection for the default cache+TLB adversary: tag-state changes
   only, in order, no timing. *)
let cache_tlb_view t =
  List.filter
    (function
      | E_cache_fill _ | E_cache_evict _ | E_tlb_fill _ -> true
      | E_timing _ | E_squash _ | E_machine_clear _ | E_div_busy _ -> false)
    (all t)

(* Projection for the timing-based adversary: everything, including
   per-stage cycles of committed instructions, squashes and divider
   busy periods. *)
let timing_view t = all t

let view_equal a b = a = b

let pp_event fmt = function
  | E_cache_fill { level; set; tag } ->
      Format.fprintf fmt "L%d fill set=%d tag=%Ld" level set tag
  | E_cache_evict { level; line } ->
      Format.fprintf fmt "L%d evict line=%Ld" level line
  | E_tlb_fill p -> Format.fprintf fmt "TLB fill page=%Ld" p
  | E_timing { pc; fetch; rename; issue; complete; commit } ->
      Format.fprintf fmt "timing pc=%d f=%d r=%d i=%d x=%d c=%d" pc fetch
        rename issue complete commit
  | E_squash { cycle; flushed } ->
      Format.fprintf fmt "squash cycle=%d flushed=%d" cycle flushed
  | E_machine_clear { cycle } -> Format.fprintf fmt "machine-clear cycle=%d" cycle
  | E_div_busy { cycle; latency } ->
      Format.fprintf fmt "div cycle=%d lat=%d" cycle latency
