(* The speculative out-of-order core.

   A cycle-level model in the style of the gem5 O3 CPU: fetch with branch
   prediction, a fetch-to-rename frontend delay, register renaming with
   ProtISA protection tags (Section IV-C), a reorder buffer with
   load/store-queue occupancy limits, dynamic issue with store-to-load
   forwarding and memory-order speculation, delayed (policy-gated) branch
   resolution, and in-order commit.

   Wrong-path instructions really execute: transient loads fill and evict
   cache lines, divisions occupy the divider, and squashes have visible
   timing — these are the side channels the defenses must close.

   Defense policies (Section VI) hook in through [Policy.t]: they can
   taint at rename, gate transmitter execution and branch resolution, and
   gate the forwarding of completed results to dependents. *)

open Protean_isa
open Protean_arch

type fetch_item = {
  f_pc : int;
  f_insn : Insn.t;
  f_pred_target : int; (* -1 = no prediction (fetch stalled after this) *)
  f_ready : int; (* cycle at which the item can rename *)
  f_fetched : int;
}

type t = {
  cfg : Config.t;
  policy : Policy.t;
  spec_model : Policy.spec_model;
  squash_bug : bool;
      (* reintroduces the pending-squash corner case inherited from STT's
         gem5 implementation (Section VII-B4b) when true *)
  program : Program.t;
  mem : Memory.t; (* committed memory *)
  regs : int64 array; (* committed registers *)
  reg_prot : bool array; (* committed ProtISA register protections *)
  (* Rename map. *)
  rmap_producer : int array; (* per arch register: seq, or -1 *)
  rmap_value : int64 array;
  rmap_prot : bool array;
  (* Reorder buffer: a ring indexed by sequence number. *)
  rob : Rob_entry.t option array;
  mutable head_idx : int;
  mutable head_seq : int;
  mutable count : int;
  mutable next_seq : int;
  mutable lq_used : int;
  mutable sq_used : int;
  (* Frontend. *)
  mutable fetch_pc : int;
  mutable fetch_stalled : bool;
  fetch_buf : fetch_item Queue.t;
  bp : Branch_pred.t;
  mdp : Bytes.t;
      (* memory-dependence predictor (store-set style): a bit per load PC
         set after a memory-order violation; flagged loads wait until all
         older store addresses are known *)
  (* Memory hierarchy. *)
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t option;
  tlb : Tlb.t;
  shadow_prot : Protset.t option; (* Prot_mem_perfect variant *)
  (* Bookkeeping. *)
  trace : Hw_trace.t;
  stats : Stats.t;
  mutable cycle : int;
  mutable done_ : bool;
  mutable last_commit_cycle : int;
  mutable unresolved_memo_cycle : int;
  mutable unresolved_memo : int;
}

let fetch_buf_capacity = 48

let create ?(trace = false) ?(squash_bug = false)
    ?(spec_model = Policy.Atcommit) ?shared_l3 (cfg : Config.t)
    (policy : Policy.t) (program : Program.t) ~overlays =
  let mem = Memory.create () in
  List.iter
    (fun (d : Program.data_init) -> Memory.write_string mem d.addr d.bytes)
    program.Program.data;
  List.iter (fun (addr, bytes) -> Memory.write_string mem addr bytes) overlays;
  let regs = Array.make Reg.count 0L in
  regs.(Reg.to_int Reg.rsp) <- program.Program.stack_base;
  let l3 =
    match shared_l3 with
    | Some c -> Some c
    | None -> Option.map Cache.create cfg.Config.l3
  in
  {
    cfg;
    policy;
    spec_model;
    squash_bug;
    program;
    mem;
    regs;
    reg_prot = Array.make Reg.count false;
    rmap_producer = Array.make Reg.count (-1);
    rmap_value = Array.copy regs;
    rmap_prot = Array.make Reg.count false;
    rob = Array.make cfg.Config.rob_size None;
    head_idx = 0;
    head_seq = 0;
    count = 0;
    next_seq = 0;
    lq_used = 0;
    sq_used = 0;
    fetch_pc = program.Program.main;
    fetch_stalled = false;
    fetch_buf = Queue.create ();
    bp = Branch_pred.create cfg.Config.bp;
    mdp = Bytes.make 1024 '\000';
    l1d = Cache.create cfg.Config.l1d;
    l2 = Cache.create cfg.Config.l2;
    l3;
    tlb = Tlb.create cfg.Config.tlb_entries;
    shadow_prot =
      (match cfg.Config.prot_mem with
      | Config.Prot_mem_perfect -> Some (Protset.create ())
      | Config.Prot_mem_l1d | Config.Prot_mem_none -> None);
    trace = Hw_trace.create ~enabled:trace;
    stats = Stats.create ();
    cycle = 0;
    done_ = false;
    last_commit_cycle = 0;
    unresolved_memo_cycle = -1;
    unresolved_memo = max_int;
  }

(* ------------------------------------------------------------------ *)
(* ROB ring operations                                                 *)
(* ------------------------------------------------------------------ *)

let rob_size t = Array.length t.rob
let rob_full t = t.count >= rob_size t

let idx_of_seq t seq = (t.head_idx + (seq - t.head_seq)) mod rob_size t

let get_entry t seq =
  if seq < t.head_seq || seq >= t.head_seq + t.count then None
  else t.rob.(idx_of_seq t seq)

let head_entry t = if t.count = 0 then None else t.rob.(t.head_idx)

(* Iterate over ROB entries from oldest to youngest. *)
let iter_rob t f =
  for i = 0 to t.count - 1 do
    match t.rob.((t.head_idx + i) mod rob_size t) with
    | Some e -> f e
    | None -> ()
  done

let tail_seq t = t.head_seq + t.count - 1

(* ------------------------------------------------------------------ *)
(* Policy API                                                          *)
(* ------------------------------------------------------------------ *)

let oldest_unresolved_branch t =
  if t.unresolved_memo_cycle = t.cycle then t.unresolved_memo
  else begin
    let min_seq = ref max_int in
    (try
       iter_rob t (fun e ->
           if e.Rob_entry.is_branch && not e.Rob_entry.resolved then begin
             min_seq := e.Rob_entry.seq;
             raise Exit
           end)
     with Exit -> ());
    t.unresolved_memo_cycle <- t.cycle;
    t.unresolved_memo <- !min_seq;
    !min_seq
  end

let invalidate_unresolved_memo t = t.unresolved_memo_cycle <- -1

let l1d_protected t addr size =
  match t.cfg.Config.prot_mem with
  | Config.Prot_mem_none -> true
  | Config.Prot_mem_l1d -> Cache.protected_bytes t.l1d addr size
  | Config.Prot_mem_perfect ->
      Protset.mem_protected (Option.get t.shadow_prot) addr size

let api t : Policy.api =
  {
    Policy.cfg = t.cfg;
    spec_model = t.spec_model;
    head_seq = (fun () -> if t.count = 0 then max_int else t.head_seq);
    oldest_unresolved_branch = (fun () -> oldest_unresolved_branch t);
    get_entry = (fun seq -> get_entry t seq);
    l1d_protected = (fun addr size -> l1d_protected t addr size);
    stats = t.stats;
  }

(* ------------------------------------------------------------------ *)
(* Fetch                                                               *)
(* ------------------------------------------------------------------ *)

let predict_next t pc (insn : Insn.t) =
  match insn.Insn.op with
  | Insn.Jcc (_, target) ->
      if Branch_pred.predict_direction t.bp pc then target else pc + 1
  | Insn.Jmp target -> target
  | Insn.Call target ->
      Branch_pred.rsb_push t.bp (pc + 1);
      target
  | Insn.Ret -> (
      match Branch_pred.rsb_pop t.bp with Some p -> p | None -> -1)
  | Insn.Jmpi _ -> (
      match Branch_pred.predict_indirect t.bp pc with
      | Some target -> target
      | None -> -1)
  | Insn.Halt -> -1
  | _ -> pc + 1

let fetch_stage t =
  let fetched = ref 0 in
  while
    (not t.fetch_stalled)
    && !fetched < t.cfg.Config.fetch_width
    && Queue.length t.fetch_buf < fetch_buf_capacity
  do
    let pc = t.fetch_pc in
    let insn =
      if Program.in_bounds t.program pc then Program.insn t.program pc
      else Insn.make Insn.Halt
    in
    let next = predict_next t pc insn in
    Queue.add
      {
        f_pc = pc;
        f_insn = insn;
        f_pred_target = next;
        f_ready = t.cycle + t.cfg.Config.frontend_latency;
        f_fetched = t.cycle;
      }
      t.fetch_buf;
    t.stats.Stats.fetched <- t.stats.Stats.fetched + 1;
    incr fetched;
    if next < 0 then t.fetch_stalled <- true else t.fetch_pc <- next
  done

(* ------------------------------------------------------------------ *)
(* Rename / dispatch                                                   *)
(* ------------------------------------------------------------------ *)

let rename_one t (item : fetch_item) =
  let insn = item.f_insn in
  let seq = t.next_seq in
  let e = Rob_entry.create ~seq ~pc:item.f_pc ~insn ~t_fetch:item.f_fetched in
  e.Rob_entry.t_rename <- t.cycle;
  (* Read sources through the rename map. *)
  Array.iteri
    (fun i (r, _role) ->
      let ri = Reg.to_int r in
      let producer = t.rmap_producer.(ri) in
      e.Rob_entry.src_producer.(i) <- producer;
      e.Rob_entry.src_prot.(i) <- t.rmap_prot.(ri);
      if producer < 0 then begin
        e.Rob_entry.src_val.(i) <- t.rmap_value.(ri);
        e.Rob_entry.src_ready.(i) <- true
      end)
    e.Rob_entry.srcs;
  (* ProtISA output tag: PROT-prefixed instructions protect their outputs;
     unprefixed sub-register writes leave the old protection unchanged
     (Section IV-B1). *)
  let subreg_dst =
    match insn.Insn.op with
    | Insn.Mov (Insn.W8, d, _) | Insn.Load (Insn.W8, d, _) -> Some d
    | _ -> None
  in
  e.Rob_entry.out_prot <-
    (match subreg_dst with
    | Some d when not insn.Insn.prot -> t.rmap_prot.(Reg.to_int d)
    | _ -> insn.Insn.prot);
  (* Update the rename map. *)
  Array.iter
    (fun r ->
      let ri = Reg.to_int r in
      t.rmap_producer.(ri) <- seq;
      (match subreg_dst with
      | Some d when (not insn.Insn.prot) && Reg.equal d r -> ()
      | _ -> t.rmap_prot.(ri) <- insn.Insn.prot))
    e.Rob_entry.dsts;
  (* Branch prediction bookkeeping. *)
  if e.Rob_entry.is_branch then e.Rob_entry.pred_target <- item.f_pred_target;
  (* Insert into the ROB. *)
  let idx = (t.head_idx + t.count) mod rob_size t in
  if t.count = 0 then begin
    t.head_idx <- idx;
    t.head_seq <- seq
  end;
  t.rob.(idx) <- Some e;
  t.count <- t.count + 1;
  t.next_seq <- seq + 1;
  if Rob_entry.is_load e then t.lq_used <- t.lq_used + 1;
  if Rob_entry.is_store e then t.sq_used <- t.sq_used + 1;
  t.policy.Policy.on_rename (api t) e

let rename_stage t =
  let renamed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !renamed < t.cfg.Config.rename_width do
    match Queue.peek_opt t.fetch_buf with
    | None -> continue_ := false
    | Some item ->
        if item.f_ready > t.cycle || rob_full t then continue_ := false
        else begin
          let is_ld = Insn.is_load item.f_insn.Insn.op in
          let is_st = Insn.is_store item.f_insn.Insn.op in
          if
            (is_ld && t.lq_used >= t.cfg.Config.lq_size)
            || (is_st && t.sq_used >= t.cfg.Config.sq_size)
          then continue_ := false
          else begin
            ignore (Queue.pop t.fetch_buf);
            rename_one t item;
            incr renamed
          end
        end
  done

(* ------------------------------------------------------------------ *)
(* Source readiness                                                    *)
(* ------------------------------------------------------------------ *)

(* Value produced for register [r] by entry [p]. *)
let producer_value (p : Rob_entry.t) r =
  let n = Array.length p.Rob_entry.dsts in
  let rec loop i =
    if i >= n then None
    else if Reg.equal p.Rob_entry.dsts.(i) r then Some p.Rob_entry.dst_val.(i)
    else loop (i + 1)
  in
  loop 0

(* Try to make all of [e]'s sources ready; returns true when they are.
   Values from in-flight producers are only visible once the producer has
   executed *and* the policy allows it to forward (the AccessDelay /
   ProtDelay wakeup-gating point). *)
let sources_ready t (e : Rob_entry.t) =
  let ap = api t in
  let all = ref true in
  Array.iteri
    (fun i ready ->
      if not ready then begin
        let r, _ = e.Rob_entry.srcs.(i) in
        let p = e.Rob_entry.src_producer.(i) in
        match get_entry t p with
        | None ->
            (* Producer committed: its value is in the architectural
               register file (no younger writer can have committed). *)
            e.Rob_entry.src_val.(i) <- t.regs.(Reg.to_int r);
            e.Rob_entry.src_ready.(i) <- true
        | Some prod ->
            if prod.Rob_entry.executed then
              if t.policy.Policy.may_forward ap prod then begin
                (match producer_value prod r with
                | Some v -> e.Rob_entry.src_val.(i) <- v
                | None -> ());
                e.Rob_entry.src_ready.(i) <- true
              end
              else begin
                t.stats.Stats.wakeup_delay_cycles <-
                  t.stats.Stats.wakeup_delay_cycles + 1;
                all := false
              end
            else all := false
      end)
    e.Rob_entry.src_ready;
  !all

let src_value (e : Rob_entry.t) reg role =
  let i = Rob_entry.find_src e reg role in
  if i >= 0 then e.Rob_entry.src_val.(i)
  else invalid_arg "Pipeline.src_value: operand not found"

(* Value of a [src] operand (register via the renamed sources, or an
   immediate). *)
let operand_value (e : Rob_entry.t) (s : Insn.src) role =
  match s with Insn.Imm v -> v | Insn.Reg r -> src_value e r role

let ea_of (e : Rob_entry.t) (m : Insn.mem) =
  let read r = src_value e r Insn.Addr in
  Sem.effective_address read m

(* ------------------------------------------------------------------ *)
(* Memory access                                                       *)
(* ------------------------------------------------------------------ *)

(* Walk the cache hierarchy for a data access at [addr]; returns the
   latency and records fill/evict events. *)
let hierarchy_access t addr =
  let record_fill level (r : Cache.result) =
    if not r.Cache.hit then begin
      Hw_trace.record t.trace
        (Hw_trace.E_cache_fill { level; set = r.Cache.set; tag = r.Cache.tag });
      match r.Cache.evicted with
      | Some line -> Hw_trace.record t.trace (Hw_trace.E_cache_evict { level; line })
      | None -> ()
    end
  in
  let tlb_hit = Tlb.access t.tlb addr in
  if not tlb_hit then
    Hw_trace.record t.trace (Hw_trace.E_tlb_fill (Tlb.page_of addr));
  let tlb_penalty = if tlb_hit then 0 else t.cfg.Config.tlb_miss_latency in
  let r1 = Cache.access t.l1d addr in
  record_fill 1 r1;
  t.stats.Stats.l1d_accesses <- t.stats.Stats.l1d_accesses + 1;
  if r1.Cache.hit then tlb_penalty + t.cfg.Config.l1d.Config.latency
  else begin
    t.stats.Stats.l1d_misses <- t.stats.Stats.l1d_misses + 1;
    let r2 = Cache.access t.l2 addr in
    record_fill 2 r2;
    if r2.Cache.hit then tlb_penalty + t.cfg.Config.l2.Config.latency
    else
      match t.l3 with
      | Some l3 ->
          let r3 = Cache.access l3 addr in
          record_fill 3 r3;
          if r3.Cache.hit then
            tlb_penalty + (match t.cfg.Config.l3 with Some c -> c.Config.latency | None -> 0)
          else tlb_penalty + t.cfg.Config.mem_latency
      | None -> tlb_penalty + t.cfg.Config.mem_latency
  end

let mdp_index pc = pc land 1023
let mdp_flagged t pc = Bytes.get t.mdp (mdp_index pc) = '\001'
let mdp_flag t pc = Bytes.set t.mdp (mdp_index pc) '\001'

(* Is there an older store whose address is still unknown? *)
let older_store_addr_unknown t (e : Rob_entry.t) =
  let found = ref false in
  (try
     for seq = e.Rob_entry.seq - 1 downto t.head_seq do
       match get_entry t seq with
       | Some st when Rob_entry.is_store st && not st.Rob_entry.addr_ready ->
           found := true;
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  !found

type fwd_result =
  | Fwd_value of Rob_entry.t (* fully-covering executed older store *)
  | Fwd_wait (* overlapping older store not ready to forward *)
  | Fwd_none

(* Youngest older store overlapping the load's bytes.  Older stores whose
   address is still unknown are speculatively ignored (memory-order
   speculation); mis-speculation is caught when the store executes. *)
let forward_search t (e : Rob_entry.t) addr size =
  let result = ref Fwd_none in
  (try
     for seq = e.Rob_entry.seq - 1 downto t.head_seq do
       match get_entry t seq with
       | Some st
         when Rob_entry.is_store st && st.Rob_entry.addr_ready ->
           let sa = st.Rob_entry.addr and ss = st.Rob_entry.msize in
           let overlap =
             Int64.compare sa (Int64.add addr (Int64.of_int size)) < 0
             && Int64.compare addr (Int64.add sa (Int64.of_int ss)) < 0
           in
           if overlap then begin
             let covers =
               Int64.compare sa addr <= 0
               && Int64.compare (Int64.add sa (Int64.of_int ss))
                    (Int64.add addr (Int64.of_int size))
                  >= 0
             in
             if covers && st.Rob_entry.executed then result := Fwd_value st
             else result := Fwd_wait;
             raise Exit
           end
       | _ -> ()
     done
   with Exit -> ());
  !result

(* Extract the forwarded bytes from a covering store. *)
let forwarded_value (st : Rob_entry.t) addr size =
  let shift = Int64.to_int (Int64.sub addr st.Rob_entry.addr) * 8 in
  let v = Int64.shift_right_logical st.Rob_entry.mem_value shift in
  if size >= 8 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L (8 * size)) 1L)

(* Memory-order violation check, run when a store's address becomes
   known: any younger load that already executed on overlapping bytes
   without forwarding from this store read stale data. *)
let check_order_violation t (st : Rob_entry.t) =
  let victim = ref None in
  iter_rob t (fun ld ->
      if
        Rob_entry.is_load ld
        && ld.Rob_entry.seq > st.Rob_entry.seq
        && ld.Rob_entry.addr_ready
        && ld.Rob_entry.issued
        && ld.Rob_entry.fwd_from <> st.Rob_entry.seq
      then
        let overlap =
          Int64.compare st.Rob_entry.addr
            (Int64.add ld.Rob_entry.addr (Int64.of_int ld.Rob_entry.msize))
          < 0
          && Int64.compare ld.Rob_entry.addr
               (Int64.add st.Rob_entry.addr (Int64.of_int st.Rob_entry.msize))
             < 0
        in
        if overlap then
          match !victim with
          | Some (v : Rob_entry.t) when v.Rob_entry.seq <= ld.Rob_entry.seq -> ()
          | _ -> victim := Some ld);
  !victim

(* ------------------------------------------------------------------ *)
(* Squash                                                              *)
(* ------------------------------------------------------------------ *)

(* Remove every entry with seq >= [from_seq] and refetch at [new_pc]. *)
let squash t ~from_seq ~new_pc =
  let flushed = ref 0 in
  let keep = from_seq - t.head_seq in
  let keep = if keep < 0 then 0 else keep in
  for i = keep to t.count - 1 do
    let idx = (t.head_idx + i) mod rob_size t in
    (match t.rob.(idx) with
    | Some e ->
        incr flushed;
        if Rob_entry.is_load e then t.lq_used <- t.lq_used - 1;
        if Rob_entry.is_store e then t.sq_used <- t.sq_used - 1
    | None -> ());
    t.rob.(idx) <- None
  done;
  t.count <- min t.count keep;
  (* Squashed sequence numbers are reused so the ROB ring stays
     contiguous.  Every surviving reference (source producers, taint
     roots, forwarding stores) points at strictly older entries, so no
     alias with a reused number can arise. *)
  t.next_seq <- t.head_seq + t.count;
  flushed := !flushed + Queue.length t.fetch_buf;
  Queue.clear t.fetch_buf;
  (* Rebuild the rename map from the committed state plus surviving
     entries, replaying ProtISA's protection updates in order. *)
  Array.iteri
    (fun ri _ ->
      t.rmap_producer.(ri) <- -1;
      t.rmap_value.(ri) <- t.regs.(ri);
      t.rmap_prot.(ri) <- t.reg_prot.(ri))
    t.rmap_producer;
  iter_rob t (fun e ->
      let insn = e.Rob_entry.insn in
      let subreg_dst =
        match insn.Insn.op with
        | Insn.Mov (Insn.W8, d, _) | Insn.Load (Insn.W8, d, _) -> Some d
        | _ -> None
      in
      Array.iter
        (fun r ->
          let ri = Reg.to_int r in
          t.rmap_producer.(ri) <- e.Rob_entry.seq;
          match subreg_dst with
          | Some d when (not insn.Insn.prot) && Reg.equal d r -> ()
          | _ -> t.rmap_prot.(ri) <- insn.Insn.prot)
        e.Rob_entry.dsts);
  Branch_pred.rsb_clear t.bp;
  t.fetch_stalled <- false;
  t.fetch_pc <- new_pc;
  t.stats.Stats.squashes <- t.stats.Stats.squashes + 1;
  t.stats.Stats.squashed_insns <- t.stats.Stats.squashed_insns + !flushed;
  Hw_trace.record t.trace (Hw_trace.E_squash { cycle = t.cycle; flushed = !flushed });
  invalidate_unresolved_memo t

(* ------------------------------------------------------------------ *)
(* Execute                                                             *)
(* ------------------------------------------------------------------ *)

let alu_latency t (op : Insn.op) =
  match op with
  | Insn.Binop (Insn.Mul, _, _) -> t.cfg.Config.mul_latency
  | _ -> t.cfg.Config.alu_latency

let set_dst (e : Rob_entry.t) r v =
  let n = Array.length e.Rob_entry.dsts in
  let rec loop i =
    if i < n then
      if Reg.equal e.Rob_entry.dsts.(i) r then e.Rob_entry.dst_val.(i) <- v
      else loop (i + 1)
  in
  loop 0

(* Begin executing [e]; all sources are ready.  Returns false when the
   instruction could not start (e.g. a load waiting on a store).  Sets
   [cycles_left]; results are computed here and become architectural when
   the entry commits. *)
let start_execution t (e : Rob_entry.t) =
  let insn = e.Rob_entry.insn in
  let old_of r = src_value e r Insn.Data in
  let started = ref true in
  (match insn.Insn.op with
  | Insn.Nop | Insn.Halt -> e.Rob_entry.cycles_left <- 1
  | Insn.Mov (w, d, s) ->
      let v = operand_value e s Insn.Data in
      let old = match w with Insn.W8 -> old_of d | _ -> 0L in
      set_dst e d (Sem.apply_width w ~old v);
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Lea (d, m) ->
      let read r = src_value e r Insn.Data in
      set_dst e d (Sem.effective_address read m);
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Binop (o, d, s) ->
      let r, fl = Sem.eval_binop o (old_of d) (operand_value e s Insn.Data) in
      set_dst e d r;
      set_dst e Reg.flags fl;
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Unop (o, d) ->
      let r, fl = Sem.eval_unop o (old_of d) in
      set_dst e d r;
      set_dst e Reg.flags fl;
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Div (d, n, s) | Insn.Rem (d, n, s) ->
      let nv = src_value e n Insn.Divide in
      let dv = operand_value e s Insn.Divide in
      let lat =
        if Int64.equal dv 0L then t.cfg.Config.div_base_latency
        else t.cfg.Config.div_base_latency + (Sem.bit_length nv / 8)
      in
      Hw_trace.record t.trace (Hw_trace.E_div_busy { cycle = t.cycle; latency = lat });
      if Int64.equal dv 0L then begin
        e.Rob_entry.fault <- true;
        set_dst e d Int64.minus_one
      end
      else begin
        let q =
          match insn.Insn.op with
          | Insn.Div _ -> Sem.eval_div nv dv
          | _ -> Sem.eval_rem nv dv
        in
        set_dst e d q
      end;
      e.Rob_entry.cycles_left <- lat
  | Insn.Cmp (a, s) ->
      set_dst e Reg.flags (Sem.eval_cmp (src_value e a Insn.Data) (operand_value e s Insn.Data));
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Test (a, s) ->
      set_dst e Reg.flags (Sem.eval_test (src_value e a Insn.Data) (operand_value e s Insn.Data));
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Setcc (c, d) ->
      let fl = src_value e Reg.flags Insn.Cond_in in
      set_dst e d (if Sem.eval_cond c fl then 1L else 0L);
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Cmov (c, d, s) ->
      let fl = src_value e Reg.flags Insn.Cond_in in
      let v =
        if Sem.eval_cond c fl then operand_value e s Insn.Data else old_of d
      in
      set_dst e d v;
      e.Rob_entry.cycles_left <- alu_latency t insn.Insn.op
  | Insn.Jcc (c, target) ->
      let fl = src_value e Reg.flags Insn.Cond_in in
      e.Rob_entry.actual_target <-
        (if Sem.eval_cond c fl then target else e.Rob_entry.pc + 1);
      e.Rob_entry.cycles_left <- 1
  | Insn.Jmp target ->
      e.Rob_entry.actual_target <- target;
      e.Rob_entry.cycles_left <- 1
  | Insn.Jmpi r ->
      e.Rob_entry.actual_target <- Int64.to_int (src_value e r Insn.Target);
      e.Rob_entry.cycles_left <- 1
  | Insn.Load (w, d, m) ->
      let addr = ea_of e m in
      let size = Insn.width_bytes w in
      (match forward_search t e addr size with
      | Fwd_wait -> started := false
      | Fwd_value st ->
          e.Rob_entry.addr <- addr;
          e.Rob_entry.msize <- size;
          e.Rob_entry.addr_ready <- true;
          e.Rob_entry.fwd_from <- st.Rob_entry.seq;
          let v = forwarded_value st addr size in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- st.Rob_entry.mem_prot;
          let old = match w with Insn.W8 -> old_of d | _ -> 0L in
          set_dst e d (Sem.apply_width w ~old (Sem.truncate_width w v));
          e.Rob_entry.cycles_left <- t.cfg.Config.store_forward_latency
      | Fwd_none ->
          e.Rob_entry.addr <- addr;
          e.Rob_entry.msize <- size;
          e.Rob_entry.addr_ready <- true;
          let v = Memory.read t.mem addr size in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- l1d_protected t addr size;
          let old = match w with Insn.W8 -> old_of d | _ -> 0L in
          set_dst e d (Sem.apply_width w ~old v);
          let lat = t.cfg.Config.load_agu_latency + hierarchy_access t addr in
          e.Rob_entry.cycles_left <- lat);
      if !started then begin
        t.stats.Stats.loads_executed <- t.stats.Stats.loads_executed + 1;
        if e.Rob_entry.mem_prot then
          t.stats.Stats.loads_protected_mem <-
            t.stats.Stats.loads_protected_mem + 1;
        t.policy.Policy.on_load_executed (api t) e
      end
  | Insn.Store (w, m, s) ->
      let addr = ea_of e m in
      let size = Insn.width_bytes w in
      e.Rob_entry.addr <- addr;
      e.Rob_entry.msize <- size;
      e.Rob_entry.addr_ready <- true;
      e.Rob_entry.mem_value <-
        Sem.truncate_width w (operand_value e s Insn.Data);
      (* The store's LSQ protection bit: its data operand's tag. *)
      e.Rob_entry.mem_prot <-
        (match s with
        | Insn.Reg r ->
            let i = Rob_entry.find_src e r Insn.Data in
            i >= 0 && e.Rob_entry.src_prot.(i)
        | Insn.Imm _ -> false);
      ignore (Tlb.access t.tlb addr);
      e.Rob_entry.cycles_left <- 1
  | Insn.Push s ->
      let sp = src_value e Reg.rsp Insn.Addr in
      let addr = Int64.sub sp 8L in
      e.Rob_entry.addr <- addr;
      e.Rob_entry.msize <- 8;
      e.Rob_entry.addr_ready <- true;
      e.Rob_entry.mem_value <- operand_value e s Insn.Data;
      e.Rob_entry.mem_prot <-
        (match s with
        | Insn.Reg r ->
            let i = Rob_entry.find_src e r Insn.Data in
            i >= 0 && e.Rob_entry.src_prot.(i)
        | Insn.Imm _ -> false);
      set_dst e Reg.rsp addr;
      ignore (Tlb.access t.tlb addr);
      e.Rob_entry.cycles_left <- 1
  | Insn.Call target ->
      let sp = src_value e Reg.rsp Insn.Addr in
      let addr = Int64.sub sp 8L in
      e.Rob_entry.addr <- addr;
      e.Rob_entry.msize <- 8;
      e.Rob_entry.addr_ready <- true;
      e.Rob_entry.mem_value <- Int64.of_int (e.Rob_entry.pc + 1);
      e.Rob_entry.mem_prot <- false;
      set_dst e Reg.rsp addr;
      e.Rob_entry.actual_target <- target;
      ignore (Tlb.access t.tlb addr);
      e.Rob_entry.cycles_left <- 1
  | Insn.Pop d ->
      let sp = src_value e Reg.rsp Insn.Addr in
      (match forward_search t e sp 8 with
      | Fwd_wait -> started := false
      | Fwd_value st ->
          e.Rob_entry.addr <- sp;
          e.Rob_entry.msize <- 8;
          e.Rob_entry.addr_ready <- true;
          e.Rob_entry.fwd_from <- st.Rob_entry.seq;
          let v = forwarded_value st sp 8 in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- st.Rob_entry.mem_prot;
          set_dst e d v;
          set_dst e Reg.rsp (Int64.add sp 8L);
          e.Rob_entry.cycles_left <- t.cfg.Config.store_forward_latency
      | Fwd_none ->
          e.Rob_entry.addr <- sp;
          e.Rob_entry.msize <- 8;
          e.Rob_entry.addr_ready <- true;
          let v = Memory.read t.mem sp 8 in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- l1d_protected t sp 8;
          set_dst e d v;
          set_dst e Reg.rsp (Int64.add sp 8L);
          e.Rob_entry.cycles_left <-
            t.cfg.Config.load_agu_latency + hierarchy_access t sp);
      if !started then begin
        t.stats.Stats.loads_executed <- t.stats.Stats.loads_executed + 1;
        t.policy.Policy.on_load_executed (api t) e
      end
  | Insn.Ret ->
      let sp = src_value e Reg.rsp Insn.Addr in
      (match forward_search t e sp 8 with
      | Fwd_wait -> started := false
      | Fwd_value st ->
          e.Rob_entry.addr <- sp;
          e.Rob_entry.msize <- 8;
          e.Rob_entry.addr_ready <- true;
          e.Rob_entry.fwd_from <- st.Rob_entry.seq;
          let v = forwarded_value st sp 8 in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- st.Rob_entry.mem_prot;
          set_dst e Reg.tmp v;
          set_dst e Reg.rsp (Int64.add sp 8L);
          e.Rob_entry.actual_target <- Int64.to_int v;
          e.Rob_entry.cycles_left <- t.cfg.Config.store_forward_latency
      | Fwd_none ->
          e.Rob_entry.addr <- sp;
          e.Rob_entry.msize <- 8;
          e.Rob_entry.addr_ready <- true;
          let v = Memory.read t.mem sp 8 in
          e.Rob_entry.mem_value <- v;
          e.Rob_entry.mem_prot <- l1d_protected t sp 8;
          set_dst e Reg.tmp v;
          set_dst e Reg.rsp (Int64.add sp 8L);
          e.Rob_entry.actual_target <- Int64.to_int v;
          e.Rob_entry.cycles_left <-
            t.cfg.Config.load_agu_latency + hierarchy_access t sp);
      if !started then begin
        t.stats.Stats.loads_executed <- t.stats.Stats.loads_executed + 1;
        t.policy.Policy.on_load_executed (api t) e
      end);
  if !started then begin
    e.Rob_entry.issued <- true;
    e.Rob_entry.t_issue <- t.cycle;
    (* A store whose address just resolved may expose a memory-order
       violation by a younger, already-executed load. *)
    if Rob_entry.is_store e then
      match check_order_violation t e with
      | Some ld ->
          t.stats.Stats.mem_order_violations <-
            t.stats.Stats.mem_order_violations + 1;
          mdp_flag t ld.Rob_entry.pc;
          squash t ~from_seq:ld.Rob_entry.seq ~new_pc:ld.Rob_entry.pc
      | None -> ()
  end;
  !started

(* Transmitters whose execution (as opposed to resolution) the policy can
   delay: memory accesses and divisions.  Branch resolution is gated
   separately. *)
let execution_gated (e : Rob_entry.t) =
  match e.Rob_entry.insn.Insn.op with
  | Insn.Load _ | Insn.Store _ | Insn.Push _ | Insn.Pop _ | Insn.Ret
  | Insn.Call _ | Insn.Div _ | Insn.Rem _ ->
      true
  | _ -> false

let execute_stage t =
  let ap = api t in
  let issued = ref 0 in
  (try
     iter_rob t (fun e ->
         (* Tick in-flight instructions. *)
         if e.Rob_entry.issued && not e.Rob_entry.executed then begin
           e.Rob_entry.cycles_left <- e.Rob_entry.cycles_left - 1;
           if e.Rob_entry.cycles_left <= 0 then begin
             e.Rob_entry.executed <- true;
             e.Rob_entry.t_complete <- t.cycle
           end
         end
         else if not e.Rob_entry.issued then begin
           if !issued < t.cfg.Config.issue_width && sources_ready t e then begin
             if
               execution_gated e
               && not (t.policy.Policy.may_execute_transmitter ap e)
             then
               t.stats.Stats.transmitter_stall_cycles <-
                 t.stats.Stats.transmitter_stall_cycles + 1
             else if
               Rob_entry.is_load e
               && mdp_flagged t e.Rob_entry.pc
               && older_store_addr_unknown t e
             then () (* memory-dependence predictor: wait for stores *)
             else if start_execution t e then incr issued
           end
         end)
   with Exit -> ())

(* ------------------------------------------------------------------ *)
(* Branch resolution                                                   *)
(* ------------------------------------------------------------------ *)

(* Resolve branches: confirm correctly-predicted ones and initiate at most
   one squash per cycle from the oldest eligible misprediction.

   With [squash_bug] set, the stage instead considers the oldest
   *detected* misprediction regardless of whether the policy allows it to
   resolve — so an older protected/tainted branch can block a younger
   unprotected one from squashing, a secret-dependent timing difference
   (the corner case AMuLeT* found in STT/SPT/SPT-SB, Section VII-B4b). *)
let resolve_stage t =
  let ap = api t in
  (* Confirm correct predictions (no squash needed). *)
  iter_rob t (fun e ->
      if
        e.Rob_entry.is_branch && e.Rob_entry.executed
        && (not e.Rob_entry.resolved)
        && (not e.Rob_entry.mispredicted)
        && e.Rob_entry.actual_target = e.Rob_entry.pred_target
      then
        if t.policy.Policy.may_resolve ap e then begin
          e.Rob_entry.resolved <- true;
          invalidate_unresolved_memo t
        end
        else
          t.stats.Stats.resolution_delay_cycles <-
            t.stats.Stats.resolution_delay_cycles + 1);
  (* Detect mispredictions. *)
  iter_rob t (fun e ->
      if
        e.Rob_entry.is_branch && e.Rob_entry.executed
        && (not e.Rob_entry.resolved)
        && e.Rob_entry.actual_target <> e.Rob_entry.pred_target
      then e.Rob_entry.mispredicted <- true);
  let candidate = ref None in
  (try
     iter_rob t (fun e ->
         if e.Rob_entry.is_branch && e.Rob_entry.executed
            && (not e.Rob_entry.resolved) && e.Rob_entry.mispredicted
         then begin
           if t.squash_bug then begin
             (* Buggy notification: the oldest detected misprediction wins
                the single notification slot even if its squash must be
                deferred. *)
             candidate := Some e;
             raise Exit
           end
           else if t.policy.Policy.may_resolve ap e then begin
             candidate := Some e;
             raise Exit
           end
           else
             t.stats.Stats.resolution_delay_cycles <-
               t.stats.Stats.resolution_delay_cycles + 1
         end)
   with Exit -> ());
  match !candidate with
  | Some e when t.policy.Policy.may_resolve ap e ->
      e.Rob_entry.resolved <- true;
      t.stats.Stats.branch_mispredicts <- t.stats.Stats.branch_mispredicts + 1;
      invalidate_unresolved_memo t;
      squash t ~from_seq:(e.Rob_entry.seq + 1) ~new_pc:e.Rob_entry.actual_target
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

(* ProtISA commit-side updates (Section IV-C2): stores write their LSQ
   protection bit into the L1D; unprefixed loads clear the protection of
   the bytes they accessed. *)
let commit_protisa_memory t (e : Rob_entry.t) =
  (match t.shadow_prot with
  | Some shadow ->
      if Rob_entry.is_store e then
        Protset.set_mem shadow e.Rob_entry.addr e.Rob_entry.msize
          ~protected:e.Rob_entry.mem_prot
      else if Rob_entry.is_load e && not e.Rob_entry.out_prot then
        Protset.set_mem shadow e.Rob_entry.addr e.Rob_entry.msize
          ~protected:false
  | None -> ());
  match t.cfg.Config.prot_mem with
  | Config.Prot_mem_l1d ->
      if Rob_entry.is_store e then
        Cache.set_protection t.l1d e.Rob_entry.addr e.Rob_entry.msize
          ~protected:e.Rob_entry.mem_prot
      else if Rob_entry.is_load e && not e.Rob_entry.out_prot then
        Cache.set_protection t.l1d e.Rob_entry.addr e.Rob_entry.msize
          ~protected:false
  | Config.Prot_mem_none | Config.Prot_mem_perfect -> ()

(* Stores to this address mark the start of measurement (end of the
   benchmark's warmup phase). *)
let measurement_marker = 0x7770L

let commit_one t (e : Rob_entry.t) =
  (* Architectural effects. *)
  if
    Rob_entry.is_store e
    && Int64.equal e.Rob_entry.addr measurement_marker
    && t.stats.Stats.marker_cycle = 0
  then t.stats.Stats.marker_cycle <- t.cycle;
  if Rob_entry.is_store e then begin
    Memory.write t.mem e.Rob_entry.addr e.Rob_entry.msize e.Rob_entry.mem_value;
    (* Writeback allocates in the L1D. *)
    ignore (hierarchy_access t e.Rob_entry.addr)
  end;
  commit_protisa_memory t e;
  Array.iteri
    (fun i r ->
      let ri = Reg.to_int r in
      t.regs.(ri) <- e.Rob_entry.dst_val.(i);
      t.reg_prot.(ri) <- e.Rob_entry.out_prot)
    e.Rob_entry.dsts;
  (* Release the rename-map mapping if this entry is still the youngest
     writer. *)
  Array.iter
    (fun r ->
      let ri = Reg.to_int r in
      if t.rmap_producer.(ri) = e.Rob_entry.seq then begin
        t.rmap_producer.(ri) <- -1;
        t.rmap_value.(ri) <- t.regs.(ri)
      end)
    e.Rob_entry.dsts;
  (* Train predictors. *)
  (match e.Rob_entry.insn.Insn.op with
  | Insn.Jcc (_, target) ->
      Branch_pred.update_direction t.bp e.Rob_entry.pc
        (e.Rob_entry.actual_target = target && target <> e.Rob_entry.pc + 1)
  | Insn.Jmpi _ ->
      Branch_pred.update_indirect t.bp e.Rob_entry.pc e.Rob_entry.actual_target
  | _ -> ());
  t.policy.Policy.on_commit (api t) e;
  Hw_trace.record t.trace
    (Hw_trace.E_timing
       {
         pc = e.Rob_entry.pc;
         fetch = e.Rob_entry.t_fetch;
         rename = e.Rob_entry.t_rename;
         issue = e.Rob_entry.t_issue;
         complete = e.Rob_entry.t_complete;
         commit = t.cycle;
       });
  (* Remove from the ROB. *)
  t.rob.(t.head_idx) <- None;
  t.head_idx <- (t.head_idx + 1) mod rob_size t;
  t.head_seq <- t.head_seq + 1;
  t.count <- t.count - 1;
  if Rob_entry.is_load e then t.lq_used <- t.lq_used - 1;
  if Rob_entry.is_store e then t.sq_used <- t.sq_used - 1;
  t.stats.Stats.committed <- t.stats.Stats.committed + 1;
  t.last_commit_cycle <- t.cycle

let commit_stage t =
  let committed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !committed < t.cfg.Config.commit_width && not t.done_ do
    match head_entry t with
    | None -> continue_ := false
    | Some e ->
        if not e.Rob_entry.executed then continue_ := false
        else if e.Rob_entry.is_branch && not e.Rob_entry.resolved then
          (* The resolution stage handles it (at the head the policy must
             allow resolution: the branch is non-speculative). *)
          continue_ := false
        else begin
          let was_halt = e.Rob_entry.insn.Insn.op = Insn.Halt in
          let faulted = e.Rob_entry.fault in
          let next_pc = e.Rob_entry.pc + 1 in
          commit_one t e;
          incr committed;
          if was_halt then begin
            t.done_ <- true;
            continue_ := false
          end
          else if faulted then begin
            (* Division fault: machine clear (squash everything younger
               and refetch). *)
            t.stats.Stats.machine_clears <- t.stats.Stats.machine_clears + 1;
            Hw_trace.record t.trace (Hw_trace.E_machine_clear { cycle = t.cycle });
            squash t ~from_seq:t.head_seq ~new_pc:next_pc;
            continue_ := false
          end
        end
  done

(* ------------------------------------------------------------------ *)
(* Watchdog and structured faults                                      *)
(* ------------------------------------------------------------------ *)

(* Abnormal terminations are reported as a [Sim_fault] carrying a
   pipeline-state dump rather than a bare exception, so harnesses can log
   the faulting run and continue with the rest of a grid or campaign. *)

type fault_kind =
  | Commit_stall (* no commit for [heartbeat] cycles: deadlock/livelock *)
  | Budget_exhausted (* the watchdog's hard cycle budget ran out *)
  | Invariant_violation of string (* from [Invariants], in [Fail] mode *)

type fault_info = {
  fault_kind : fault_kind;
  fault_cycle : int;
  fault_fetch_pc : int;
  fault_head_pc : int; (* pc of the ROB head entry; -1 when empty *)
  fault_head_seq : int;
  fault_rob_count : int;
  fault_last_commit : int; (* cycle of the last commit *)
  fault_policy : string;
}

exception Sim_fault of fault_info

let fault t kind =
  {
    fault_kind = kind;
    fault_cycle = t.cycle;
    fault_fetch_pc = t.fetch_pc;
    fault_head_pc =
      (match head_entry t with Some e -> e.Rob_entry.pc | None -> -1);
    fault_head_seq = t.head_seq;
    fault_rob_count = t.count;
    fault_last_commit = t.last_commit_cycle;
    fault_policy = t.policy.Policy.name;
  }

let fault_kind_name = function
  | Commit_stall -> "commit-stall"
  | Budget_exhausted -> "cycle-budget-exhausted"
  | Invariant_violation _ -> "invariant-violation"

let fault_to_string f =
  let detail =
    match f.fault_kind with Invariant_violation d -> ": " ^ d | _ -> ""
  in
  Printf.sprintf
    "%s%s (cycle=%d fetch_pc=%d head_pc=%d head_seq=%d rob=%d last_commit=%d \
     policy=%s)"
    (fault_kind_name f.fault_kind)
    detail f.fault_cycle f.fault_fetch_pc f.fault_head_pc f.fault_head_seq
    f.fault_rob_count f.fault_last_commit f.fault_policy

type watchdog = {
  heartbeat : int;
      (* maximum cycles without a commit before declaring a deadlock or
         livelock (the pipeline keeps cycling but makes no progress) *)
  budget : int option;
      (* hard per-run cycle cap: unlike [fuel] (which returns with
         [finished = false]), exceeding the budget is reported as a fault *)
}

let default_watchdog = { heartbeat = 20_000; budget = None }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let step ?(watchdog = default_watchdog) t =
  commit_stage t;
  if not t.done_ then begin
    resolve_stage t;
    execute_stage t;
    rename_stage t;
    fetch_stage t
  end;
  t.cycle <- t.cycle + 1;
  t.stats.Stats.cycles <- t.cycle;
  if not t.done_ then begin
    if t.cycle - t.last_commit_cycle > watchdog.heartbeat then
      raise (Sim_fault (fault t Commit_stall));
    match watchdog.budget with
    | Some b when t.cycle >= b -> raise (Sim_fault (fault t Budget_exhausted))
    | _ -> ()
  end

type result = {
  stats : Stats.t;
  trace : Hw_trace.t;
  regs : int64 array;
  mem : Memory.t;
  finished : bool; (* halted cleanly (vs. fuel exhausted) *)
}

let run ?trace ?squash_bug ?spec_model ?shared_l3 ?(fuel = 5_000_000)
    ?(watchdog = default_watchdog) ?on_cycle (cfg : Config.t)
    (policy : Policy.t) (program : Program.t) ~overlays =
  let t =
    create ?trace ?squash_bug ?spec_model ?shared_l3 cfg policy program
      ~overlays
  in
  while (not t.done_) && t.cycle < fuel do
    step ~watchdog t;
    match on_cycle with Some f -> f t | None -> ()
  done;
  {
    stats = t.stats;
    trace = t.trace;
    regs = t.regs;
    mem = t.mem;
    finished = t.done_;
  }

(* Diagnostic dump of pipeline state, for debugging. *)
let debug_dump t =
  Printf.printf "cycle=%d head_seq=%d count=%d fetch_pc=%d stalled=%b buf=%d done=%b\n"
    t.cycle t.head_seq t.count t.fetch_pc t.fetch_stalled
    (Queue.length t.fetch_buf) t.done_;
  iter_rob t (fun e ->
      Printf.printf
        "  seq=%d pc=%d %s issued=%b exec=%b resolved=%b mispred=%b cycles=%d ready=[%s]\n"
        e.Rob_entry.seq e.Rob_entry.pc
        (Insn.to_string e.Rob_entry.insn)
        e.Rob_entry.issued e.Rob_entry.executed e.Rob_entry.resolved
        e.Rob_entry.mispredicted e.Rob_entry.cycles_left
        (String.concat ","
           (Array.to_list
              (Array.map (fun b -> if b then "1" else "0") e.Rob_entry.src_ready))))

(* Invariant check used while debugging: every occupied slot must hold the
   sequence number its position implies. *)
let check_ring t =
  for i = 0 to t.count - 1 do
    let idx = (t.head_idx + i) mod rob_size t in
    match t.rob.(idx) with
    | Some e ->
        if e.Rob_entry.seq <> t.head_seq + i then begin
          debug_dump t;
          failwith
            (Printf.sprintf "ring desync: slot %d has seq %d, expected %d" i
               e.Rob_entry.seq (t.head_seq + i))
        end
    | None ->
        debug_dump t;
        failwith (Printf.sprintf "ring hole at slot %d (seq %d)" i (t.head_seq + i))
  done

let is_done (t : t) = t.done_

(* Snapshot the results of a pipeline driven externally via [step]. *)
let finish (t : t) =
  {
    stats = t.stats;
    trace = t.trace;
    regs = t.regs;
    mem = t.mem;
    finished = t.done_;
  }
