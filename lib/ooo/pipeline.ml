(* The speculative out-of-order core: a cycle-level model in the style
   of the gem5 O3 CPU.

   This module is a thin coordinator.  The machine state lives in
   [Pipeline_state]; each pipeline stage is its own module
   ([Stage_fetch], [Stage_rename], [Stage_issue_exec], [Stage_memory],
   [Stage_commit]) with [Squash] and [Mem_hierarchy] for the recovery
   and L1/L2/L3+TLB paths; cross-cutting concerns (stats, the hardware
   observer trace, the Policy defense notifications, the invariant
   checker) subscribe to the [Hooks] event bus installed by [create].
   See docs/architecture.md for the event contract.

   Wrong-path instructions really execute: transient loads fill and
   evict cache lines, divisions occupy the divider, and squashes have
   visible timing — these are the side channels the defenses must
   close.  Defense policies (Section VI) hook in through [Policy.t]:
   they can taint at rename, gate transmitter execution and branch
   resolution, and gate the forwarding of completed results to
   dependents. *)

open Protean_arch

(* Re-exported state types: [t] *is* [Pipeline_state.t], so existing
   consumers (and the invariant checker) keep working unchanged. *)

type t = Pipeline_state.t

type fetch_item = Pipeline_state.fetch_item = {
  mutable f_pc : int;
  mutable f_pred_target : int;
  mutable f_ready : int;
  mutable f_fetched : int;
}

let fetch_buf_capacity = Pipeline_state.fetch_buf_capacity

(* ROB / policy-API accessors. *)
let rob_size = Pipeline_state.rob_size
let get_entry = Pipeline_state.get_entry
let peek = Pipeline_state.peek
let head_entry = Pipeline_state.head_entry
let iter_rob = Pipeline_state.iter_rob
let tail_seq = Pipeline_state.tail_seq
let oldest_unresolved_branch = Pipeline_state.oldest_unresolved_branch
let l1d_protected = Pipeline_state.l1d_protected
let api = Pipeline_state.api
let measurement_marker = Stage_commit.measurement_marker

(* Brute-force cross-checking of the scheduler indexes each cycle
   (protean-sim --paranoid-sched / PROTEAN_PARANOID_SCHED=1).  Takes
   effect for pipelines created afterwards. *)
let set_paranoid_sched v = Pipeline_state.paranoid_sched := v

(* Event-driven skip-ahead (--no-skip-ahead / PROTEAN_NO_SKIP_AHEAD=1
   disables).  Takes effect for pipelines created afterwards; paranoid
   scheduling always forces the spinning machine, which is what the
   cross-check compares against. *)
let set_skip_ahead v = Pipeline_state.skip_ahead := v
let skip_ahead_enabled () = !Pipeline_state.skip_ahead

(* Structured faults and the watchdog. *)

type fault_kind = Pipeline_state.fault_kind =
  | Commit_stall
  | Budget_exhausted
  | Invariant_violation of string

type fault_info = Pipeline_state.fault_info = {
  fault_kind : fault_kind;
  fault_cycle : int;
  fault_fetch_pc : int;
  fault_head_pc : int;
  fault_head_seq : int;
  fault_rob_count : int;
  fault_last_commit : int;
  fault_policy : string;
  fault_core : int;
}

exception Sim_fault = Pipeline_state.Sim_fault

let fault = Pipeline_state.fault
let fault_kind_name = Pipeline_state.fault_kind_name
let fault_to_string = Pipeline_state.fault_to_string

type watchdog = Pipeline_state.watchdog = {
  heartbeat : int;
  budget : int option;
}

let default_watchdog = Pipeline_state.default_watchdog

(* Observer registration: extra subscribers (profilers, checkers) on top
   of the defaults installed by [create]. *)
let subscribe ?kinds (t : t) ~name handler =
  Hooks.subscribe ?kinds t.Pipeline_state.hooks ~name handler

let unsubscribe (t : t) name = Hooks.unsubscribe t.Pipeline_state.hooks name

(* Precompute the per-pc decode templates for [program], shareable
   across every [create] of the same program (any defense, any core). *)
let decode_program = Pipeline_state.decode_program

let create ?trace ?squash_bug ?spec_model ?shared_l3 ?decode (cfg : Config.t)
    (policy : Policy.t) (program : Protean_isa.Program.t) ~overlays =
  let t =
    Pipeline_state.create ?trace ?squash_bug ?spec_model ?shared_l3 ?decode cfg
      policy program ~overlays
  in
  Observers.install t;
  t

(* Event-driven skip-ahead.

   A cycle is *quiet* when no stage set [progress]: nothing fetched,
   renamed, issued, completed, resolved, committed or squashed, no
   source-readiness flip, and no per-cycle stall accounting (every
   blocked/stall emission site marks progress, because its counter must
   increment each spun cycle).  Replaying a quiet cycle changes nothing
   except the cycle counter and the in-flight [cycles_left] decrements —
   both of which [apply_skip] performs in bulk — so jumping from one is
   bit-exact: same architectural state, same stats, same trace, same
   event stream as the spinning machine.

   Policy gates are safe to invoke on a quiet cycle: no gate reads the
   clock, [may_execute_transmitter] and [may_resolve] are pure in every
   defense, and [may_forward] — the one gate that bumps policy-local
   counters (AccessDelay/ProtDelay block metrics) — has a single call
   site whose allow *and* deny branches both mark progress, so its
   per-spun-cycle increments are never elided.

   [skip_target] is the next-event horizon: the earliest future cycle at
   which the machine can make progress again.  Two event sources exist
   on a quiet machine (port-stall / writeback-deferral cycles are not
   quiet, so [port_busy_until] never bounds a skip):
   - an in-flight computation completes: its tick reaches zero during
     the cycle that starts at [cycle + cycles_left - 1] (post-tick
     [cycles_left] >= 1 on a quiet cycle, a deferred writeback having
     marked progress);
   - the frontend pipe delivers: the fetch-buffer front (earliest
     [f_ready], stamps are monotone) becomes visible to rename at
     [f_ready].
   The jump is capped so the watchdog heartbeat, the cycle budget and
   the driver's fuel bound ([until]) fire on exactly the cycle they
   would have under spinning; a genuinely stuck machine therefore still
   walks into its [Commit_stall] fault.  Undershooting the horizon is
   harmless (the landed-on cycle is quiet again and skips further);
   overshooting is impossible because every source of progress is either
   in the horizon or can only be enabled by an event already in it. *)

let quiet (t : t) =
  let open Pipeline_state in
  t.skip_enabled && (not t.progress) && not t.done_

let skip_target ?(watchdog = default_watchdog) ~until (t : t) =
  let open Pipeline_state in
  let horizon = ref max_int in
  let q = t.inflight in
  let a = q.Entryq.a in
  for i = q.Entryq.front to q.Entryq.back - 1 do
    let h = t.cycle + a.(i).Rob_entry.cycles_left - 1 in
    if h < !horizon then horizon := h
  done;
  (* The quiet cycle's pre-increment clock was [t.cycle - 1].  A front
     item with [f_ready >= t.cycle] was readiness-blocked then and
     enables rename at exactly [f_ready] (an [f_ready = t.cycle] item
     enables the very next cycle: target = t.cycle, no jump).  A front
     item already ready ([f_ready < t.cycle]) means rename was blocked
     structurally (ROB/LQ/SQ full) — hazards only other progress can
     clear, so the in-flight term bounds them. *)
  if not (Pipeline_state.fb_is_empty t) then begin
    let item = Pipeline_state.fb_peek t in
    if item.f_ready >= t.cycle && item.f_ready < !horizon then
      horizon := item.f_ready
  end;
  let target = min !horizon (t.last_commit_cycle + watchdog.heartbeat) in
  let target =
    match watchdog.budget with Some b -> min target (b - 1) | None -> target
  in
  min target until

(* Advance a quiet machine to [target] in one jump: bulk-apply the
   per-cycle decrements the spun cycles would have performed, move the
   clock, and account the span ([Stats.skipped_cycles] via the stats
   subscriber, the profiler's "skipped" pseudo-stage via [On_skip]). *)
let apply_skip (t : t) ~target =
  let open Pipeline_state in
  let k = target - t.cycle in
  if k > 0 then begin
    let q = t.inflight in
    let a = q.Entryq.a in
    for i = q.Entryq.front to q.Entryq.back - 1 do
      let e = a.(i) in
      e.Rob_entry.cycles_left <- e.Rob_entry.cycles_left - k
    done;
    t.cycle <- target;
    t.stats.Stats.cycles <- target;
    if Pipeline_state.wants t Hooks.k_skip then
      Pipeline_state.emit t (Hooks.On_skip { cycles = k })
  end

(* One cycle: commit → resolve → execute → rename → fetch (reverse stage
   order, so each instruction spends ≥ 1 cycle per stage), then the
   watchdog, then [On_cycle_end].  With a [Profile] observer attached,
   each stage boundary additionally emits [On_stage] (stage ids 0-4);
   without one, [prof] is false and the cycle pays one interest-mask
   test.  Under [--paranoid-sched] the scheduler indexes are
   cross-checked against a brute-force ROB scan every cycle.

   [until] is the driver's fuel bound (exclusive loop bound on
   [t.cycle]) and doubles as the skip-ahead opt-in: when given and the
   cycle ends quiet, the clock jumps to the next-event horizon (capped
   so watchdog/budget/fuel fire unchanged).  Drivers that step without
   [until] get the spinning machine. *)
let step ?(watchdog = default_watchdog) ?until (t : t) =
  let open Pipeline_state in
  let prof = Pipeline_state.wants t Hooks.k_stage in
  t.progress <- false;
  Stage_commit.run t;
  if prof then Pipeline_state.emit t (Hooks.On_stage 0);
  if not t.done_ then begin
    Stage_issue_exec.resolve t;
    if prof then Pipeline_state.emit t (Hooks.On_stage 1);
    Stage_issue_exec.run t;
    if prof then Pipeline_state.emit t (Hooks.On_stage 2);
    Stage_rename.run t;
    if prof then Pipeline_state.emit t (Hooks.On_stage 3);
    Stage_fetch.run t;
    if prof then Pipeline_state.emit t (Hooks.On_stage 4)
  end;
  t.cycle <- t.cycle + 1;
  t.stats.Stats.cycles <- t.cycle;
  if not t.done_ then begin
    if t.cycle - t.last_commit_cycle > watchdog.heartbeat then
      raise (Sim_fault (fault t Commit_stall));
    match watchdog.budget with
    | Some b when t.cycle >= b -> raise (Sim_fault (fault t Budget_exhausted))
    | _ -> ()
  end;
  if t.paranoid then (
    match Invariants.check_sched t with
    | [] -> ()
    | vs ->
        raise
          (Sim_fault
             (fault t
                (Invariant_violation (Invariants.violations_to_string vs)))));
  if Pipeline_state.wants t Hooks.k_cycle_end then
    Pipeline_state.emit t Hooks.On_cycle_end;
  match until with
  | Some u when quiet t ->
      apply_skip t ~target:(skip_target ~watchdog ~until:u t)
  | _ -> ()

type result = {
  stats : Stats.t;
  trace : Hw_trace.t;
  regs : int64 array;
  mem : Memory.t;
  finished : bool; (* halted cleanly (vs. fuel exhausted) *)
}

let is_done = Pipeline_state.is_done

(* Snapshot the results of a pipeline driven externally via [step]. *)
let finish (t : t) =
  let open Pipeline_state in
  {
    stats = t.stats;
    trace = t.trace;
    regs = t.regs;
    mem = t.mem;
    finished = t.done_;
  }

(* [on_start] runs once on the freshly created state, before the first
   cycle — the registration point for observers (profilers) that must
   see the whole run. *)
let run ?trace ?squash_bug ?spec_model ?shared_l3 ?decode
    ?(fuel = 5_000_000) ?(watchdog = default_watchdog) ?on_start ?on_cycle
    (cfg : Config.t) (policy : Policy.t) (program : Protean_isa.Program.t)
    ~overlays =
  let t =
    create ?trace ?squash_bug ?spec_model ?shared_l3 ?decode cfg policy
      program ~overlays
  in
  (match on_start with Some f -> f t | None -> ());
  let open Pipeline_state in
  while (not t.done_) && t.cycle < fuel do
    step ~watchdog ~until:fuel t;
    match on_cycle with Some f -> f t | None -> ()
  done;
  finish t

let debug_dump = Pipeline_state.debug_dump
let check_ring = Pipeline_state.check_ring
