(* The speculative out-of-order core: a cycle-level model in the style
   of the gem5 O3 CPU.

   This module is a thin coordinator.  The machine state lives in
   [Pipeline_state]; each pipeline stage is its own module
   ([Stage_fetch], [Stage_rename], [Stage_issue_exec], [Stage_memory],
   [Stage_commit]) with [Squash] and [Mem_hierarchy] for the recovery
   and L1/L2/L3+TLB paths; cross-cutting concerns (stats, the hardware
   observer trace, the Policy defense notifications, the invariant
   checker) subscribe to the [Hooks] event bus installed by [create].
   See docs/architecture.md for the event contract.

   Wrong-path instructions really execute: transient loads fill and
   evict cache lines, divisions occupy the divider, and squashes have
   visible timing — these are the side channels the defenses must
   close.  Defense policies (Section VI) hook in through [Policy.t]:
   they can taint at rename, gate transmitter execution and branch
   resolution, and gate the forwarding of completed results to
   dependents. *)

open Protean_arch

(* Re-exported state types: [t] *is* [Pipeline_state.t], so existing
   consumers (and the invariant checker) keep working unchanged. *)

type t = Pipeline_state.t

type fetch_item = Pipeline_state.fetch_item = {
  f_pc : int;
  f_insn : Protean_isa.Insn.t;
  f_pred_target : int;
  f_ready : int;
  f_fetched : int;
}

let fetch_buf_capacity = Pipeline_state.fetch_buf_capacity

(* ROB / policy-API accessors. *)
let rob_size = Pipeline_state.rob_size
let get_entry = Pipeline_state.get_entry
let peek = Pipeline_state.peek
let head_entry = Pipeline_state.head_entry
let iter_rob = Pipeline_state.iter_rob
let tail_seq = Pipeline_state.tail_seq
let oldest_unresolved_branch = Pipeline_state.oldest_unresolved_branch
let l1d_protected = Pipeline_state.l1d_protected
let api = Pipeline_state.api
let measurement_marker = Stage_commit.measurement_marker

(* Brute-force cross-checking of the scheduler indexes each cycle
   (protean-sim --paranoid-sched / PROTEAN_PARANOID_SCHED=1).  Takes
   effect for pipelines created afterwards. *)
let set_paranoid_sched v = Pipeline_state.paranoid_sched := v

(* Structured faults and the watchdog. *)

type fault_kind = Pipeline_state.fault_kind =
  | Commit_stall
  | Budget_exhausted
  | Invariant_violation of string

type fault_info = Pipeline_state.fault_info = {
  fault_kind : fault_kind;
  fault_cycle : int;
  fault_fetch_pc : int;
  fault_head_pc : int;
  fault_head_seq : int;
  fault_rob_count : int;
  fault_last_commit : int;
  fault_policy : string;
  fault_core : int;
}

exception Sim_fault = Pipeline_state.Sim_fault

let fault = Pipeline_state.fault
let fault_kind_name = Pipeline_state.fault_kind_name
let fault_to_string = Pipeline_state.fault_to_string

type watchdog = Pipeline_state.watchdog = {
  heartbeat : int;
  budget : int option;
}

let default_watchdog = Pipeline_state.default_watchdog

(* Observer registration: extra subscribers (profilers, checkers) on top
   of the defaults installed by [create]. *)
let subscribe ?kinds (t : t) ~name handler =
  Hooks.subscribe ?kinds t.Pipeline_state.hooks ~name handler

let unsubscribe (t : t) name = Hooks.unsubscribe t.Pipeline_state.hooks name

let create ?trace ?squash_bug ?spec_model ?shared_l3 (cfg : Config.t)
    (policy : Policy.t) (program : Protean_isa.Program.t) ~overlays =
  let t =
    Pipeline_state.create ?trace ?squash_bug ?spec_model ?shared_l3 cfg policy
      program ~overlays
  in
  Observers.install t;
  t

(* One cycle: commit → resolve → execute → rename → fetch (reverse stage
   order, so each instruction spends ≥ 1 cycle per stage), then the
   watchdog, then [On_cycle_end].  With a [Profile] observer attached,
   each stage boundary additionally emits [On_stage] (stage ids 0-4);
   without one, [prof] is false and the cycle pays one interest-mask
   test.  Under [--paranoid-sched] the scheduler indexes are
   cross-checked against a brute-force ROB scan every cycle. *)
let step ?(watchdog = default_watchdog) (t : t) =
  let open Pipeline_state in
  let prof = Pipeline_state.wants t Hooks.k_stage in
  Stage_commit.run t;
  if prof then Pipeline_state.emit t (Hooks.On_stage 0);
  if not t.done_ then begin
    Stage_issue_exec.resolve t;
    if prof then Pipeline_state.emit t (Hooks.On_stage 1);
    Stage_issue_exec.run t;
    if prof then Pipeline_state.emit t (Hooks.On_stage 2);
    Stage_rename.run t;
    if prof then Pipeline_state.emit t (Hooks.On_stage 3);
    Stage_fetch.run t;
    if prof then Pipeline_state.emit t (Hooks.On_stage 4)
  end;
  t.cycle <- t.cycle + 1;
  t.stats.Stats.cycles <- t.cycle;
  if not t.done_ then begin
    if t.cycle - t.last_commit_cycle > watchdog.heartbeat then
      raise (Sim_fault (fault t Commit_stall));
    match watchdog.budget with
    | Some b when t.cycle >= b -> raise (Sim_fault (fault t Budget_exhausted))
    | _ -> ()
  end;
  if t.paranoid then (
    match Invariants.check_sched t with
    | [] -> ()
    | vs ->
        raise
          (Sim_fault
             (fault t
                (Invariant_violation (Invariants.violations_to_string vs)))));
  if Pipeline_state.wants t Hooks.k_cycle_end then
    Pipeline_state.emit t Hooks.On_cycle_end

type result = {
  stats : Stats.t;
  trace : Hw_trace.t;
  regs : int64 array;
  mem : Memory.t;
  finished : bool; (* halted cleanly (vs. fuel exhausted) *)
}

let is_done = Pipeline_state.is_done

(* Snapshot the results of a pipeline driven externally via [step]. *)
let finish (t : t) =
  let open Pipeline_state in
  {
    stats = t.stats;
    trace = t.trace;
    regs = t.regs;
    mem = t.mem;
    finished = t.done_;
  }

(* [on_start] runs once on the freshly created state, before the first
   cycle — the registration point for observers (profilers) that must
   see the whole run. *)
let run ?trace ?squash_bug ?spec_model ?shared_l3 ?(fuel = 5_000_000)
    ?(watchdog = default_watchdog) ?on_start ?on_cycle (cfg : Config.t)
    (policy : Policy.t) (program : Protean_isa.Program.t) ~overlays =
  let t =
    create ?trace ?squash_bug ?spec_model ?shared_l3 cfg policy program
      ~overlays
  in
  (match on_start with Some f -> f t | None -> ());
  let open Pipeline_state in
  while (not t.done_) && t.cycle < fuel do
    step ~watchdog t;
    match on_cycle with Some f -> f t | None -> ()
  done;
  finish t

let debug_dump = Pipeline_state.debug_dump
let check_ring = Pipeline_state.check_ring
