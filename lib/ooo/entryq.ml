(* A growable array deque of ROB entries, used by the O(active) issue
   scheduler for the collections that want indexed access: the in-flight
   (issued, not yet executed) set and the live store/load queues.

   Live elements are [a.(front .. back-1)].  The store/load queues are
   kept seq-ascending (pushed at rename, popped at commit, truncated
   from the back by squashes), which makes [lower_bound] a binary
   search.  The in-flight set is *not* seq-ordered (issue order); its
   consumers compact or filter it with full scans.

   Slots outside the live window always hold [Rob_entry.null] so the
   deque never pins flushed entries for the GC. *)

type t = {
  mutable a : Rob_entry.t array;
  mutable front : int;
  mutable back : int;
}

let create ?(capacity = 16) () =
  { a = Array.make (max capacity 1) Rob_entry.null; front = 0; back = 0 }

let length q = q.back - q.front
let is_empty q = q.back = q.front

let clear q =
  Array.fill q.a q.front (q.back - q.front) Rob_entry.null;
  q.front <- 0;
  q.back <- 0

let first q = q.a.(q.front)

let push q e =
  if q.back = Array.length q.a then begin
    let n = length q in
    if q.front * 2 >= Array.length q.a && q.front > 0 then begin
      (* Plenty of dead space at the front: slide left instead of growing. *)
      Array.blit q.a q.front q.a 0 n;
      Array.fill q.a n (Array.length q.a - n) Rob_entry.null
    end
    else begin
      let fresh = Array.make (max 8 (Array.length q.a * 2)) Rob_entry.null in
      Array.blit q.a q.front fresh 0 n;
      q.a <- fresh
    end;
    q.front <- 0;
    q.back <- n
  end;
  q.a.(q.back) <- e;
  q.back <- q.back + 1

let drop_front q =
  q.a.(q.front) <- Rob_entry.null;
  q.front <- q.front + 1;
  if q.front = q.back then begin
    q.front <- 0;
    q.back <- 0
  end

(* Remove every element with seq >= [seq] (they form a suffix of a
   seq-ascending deque). *)
let truncate_ge q seq =
  while q.back > q.front && q.a.(q.back - 1).Rob_entry.seq >= seq do
    q.back <- q.back - 1;
    q.a.(q.back) <- Rob_entry.null
  done;
  if q.front = q.back then begin
    q.front <- 0;
    q.back <- 0
  end

(* Keep only elements with seq < [seq], preserving order; for unordered
   deques (the in-flight set).  Normalizes [front] to 0. *)
let filter_lt q seq =
  let w = ref 0 in
  for i = q.front to q.back - 1 do
    let e = q.a.(i) in
    if e.Rob_entry.seq < seq then begin
      q.a.(!w) <- e;
      incr w
    end
  done;
  Array.fill q.a !w (q.back - !w) Rob_entry.null;
  q.front <- 0;
  q.back <- !w

(* First index in [front, back) whose entry has seq >= [seq]; [back] when
   none.  Requires the deque seq-ascending. *)
let lower_bound q seq =
  let lo = ref q.front and hi = ref q.back in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if q.a.(mid).Rob_entry.seq < seq then lo := mid + 1 else hi := mid
  done;
  !lo

let iter f q =
  for i = q.front to q.back - 1 do
    f q.a.(i)
  done
