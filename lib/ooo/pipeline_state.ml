(* The shared pipeline state record and its primitive operations.

   Every stage module ([Stage_fetch] … [Stage_commit]), the memory
   hierarchy walker and the squash engine operate on this one typed
   record; cross-cutting observers react to [Hooks] events carried by
   the [hooks] bus embedded in the record.  [Pipeline] composes the
   stages into a cycle and owns the public API. *)

open Protean_isa
open Protean_arch

type fetch_item = {
  f_pc : int;
  f_insn : Insn.t;
  f_pred_target : int; (* -1 = no prediction (fetch stalled after this) *)
  f_ready : int; (* cycle at which the item can rename *)
  f_fetched : int;
}

type t = {
  cfg : Config.t;
  policy : Policy.t;
  spec_model : Policy.spec_model;
  squash_bug : bool;
      (* reintroduces the pending-squash corner case inherited from STT's
         gem5 implementation (Section VII-B4b) when true *)
  program : Program.t;
  mem : Memory.t; (* committed memory *)
  regs : int64 array; (* committed registers *)
  reg_prot : bool array; (* committed ProtISA register protections *)
  (* Rename map. *)
  rmap_producer : int array; (* per arch register: seq, or -1 *)
  rmap_value : int64 array;
  rmap_prot : bool array;
  (* Reorder buffer: a ring indexed by sequence number. *)
  rob : Rob_entry.t option array;
  mutable head_idx : int;
  mutable head_seq : int;
  mutable count : int;
  mutable next_seq : int;
  mutable lq_used : int;
  mutable sq_used : int;
  (* Frontend. *)
  mutable fetch_pc : int;
  mutable fetch_stalled : bool;
  fetch_buf : fetch_item Queue.t;
  bp : Branch_pred.t;
  mdp : Bytes.t;
      (* memory-dependence predictor (store-set style): a bit per load PC
         set after a memory-order violation; flagged loads wait until all
         older store addresses are known *)
  (* Memory hierarchy. *)
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t option;
  tlb : Tlb.t;
  shadow_prot : Protset.t option; (* Prot_mem_perfect variant *)
  (* Bookkeeping. *)
  trace : Hw_trace.t;
  stats : Stats.t;
  hooks : t Hooks.t;
  mutable cycle : int;
  mutable done_ : bool;
  mutable last_commit_cycle : int;
  mutable unresolved_memo_cycle : int;
  mutable unresolved_memo : int;
}

let fetch_buf_capacity = 48

let create ?(trace = false) ?(squash_bug = false)
    ?(spec_model = Policy.Atcommit) ?shared_l3 (cfg : Config.t)
    (policy : Policy.t) (program : Program.t) ~overlays =
  let mem = Memory.create () in
  List.iter
    (fun (d : Program.data_init) -> Memory.write_string mem d.addr d.bytes)
    program.Program.data;
  List.iter (fun (addr, bytes) -> Memory.write_string mem addr bytes) overlays;
  let regs = Array.make Reg.count 0L in
  regs.(Reg.to_int Reg.rsp) <- program.Program.stack_base;
  let l3 =
    match shared_l3 with
    | Some c -> Some c
    | None -> Option.map Cache.create cfg.Config.l3
  in
  {
    cfg;
    policy;
    spec_model;
    squash_bug;
    program;
    mem;
    regs;
    reg_prot = Array.make Reg.count false;
    rmap_producer = Array.make Reg.count (-1);
    rmap_value = Array.copy regs;
    rmap_prot = Array.make Reg.count false;
    rob = Array.make cfg.Config.rob_size None;
    head_idx = 0;
    head_seq = 0;
    count = 0;
    next_seq = 0;
    lq_used = 0;
    sq_used = 0;
    fetch_pc = program.Program.main;
    fetch_stalled = false;
    fetch_buf = Queue.create ();
    bp = Branch_pred.create cfg.Config.bp;
    mdp = Bytes.make 1024 '\000';
    l1d = Cache.create cfg.Config.l1d;
    l2 = Cache.create cfg.Config.l2;
    l3;
    tlb = Tlb.create cfg.Config.tlb_entries;
    shadow_prot =
      (match cfg.Config.prot_mem with
      | Config.Prot_mem_perfect -> Some (Protset.create ())
      | Config.Prot_mem_l1d | Config.Prot_mem_none -> None);
    trace = Hw_trace.create ~enabled:trace;
    stats = Stats.create ();
    hooks = Hooks.create ();
    cycle = 0;
    done_ = false;
    last_commit_cycle = 0;
    unresolved_memo_cycle = -1;
    unresolved_memo = max_int;
  }

let emit t ev = Hooks.emit t.hooks t ev

(* ------------------------------------------------------------------ *)
(* ROB ring operations                                                 *)
(* ------------------------------------------------------------------ *)

let rob_size t = Array.length t.rob
let rob_full t = t.count >= rob_size t

let idx_of_seq t seq = (t.head_idx + (seq - t.head_seq)) mod rob_size t

let get_entry t seq =
  if seq < t.head_seq || seq >= t.head_seq + t.count then None
  else t.rob.(idx_of_seq t seq)

let head_entry t = if t.count = 0 then None else t.rob.(t.head_idx)

(* Iterate over ROB entries from oldest to youngest. *)
let iter_rob t f =
  for i = 0 to t.count - 1 do
    match t.rob.((t.head_idx + i) mod rob_size t) with
    | Some e -> f e
    | None -> ()
  done

let tail_seq t = t.head_seq + t.count - 1

(* ------------------------------------------------------------------ *)
(* Policy API                                                          *)
(* ------------------------------------------------------------------ *)

let oldest_unresolved_branch t =
  if t.unresolved_memo_cycle = t.cycle then t.unresolved_memo
  else begin
    let min_seq = ref max_int in
    (try
       iter_rob t (fun e ->
           if e.Rob_entry.is_branch && not e.Rob_entry.resolved then begin
             min_seq := e.Rob_entry.seq;
             raise Exit
           end)
     with Exit -> ());
    t.unresolved_memo_cycle <- t.cycle;
    t.unresolved_memo <- !min_seq;
    !min_seq
  end

let invalidate_unresolved_memo t = t.unresolved_memo_cycle <- -1

let l1d_protected t addr size =
  match t.cfg.Config.prot_mem with
  | Config.Prot_mem_none -> true
  | Config.Prot_mem_l1d -> Cache.protected_bytes t.l1d addr size
  | Config.Prot_mem_perfect ->
      Protset.mem_protected (Option.get t.shadow_prot) addr size

let api t : Policy.api =
  {
    Policy.cfg = t.cfg;
    spec_model = t.spec_model;
    head_seq = (fun () -> if t.count = 0 then max_int else t.head_seq);
    oldest_unresolved_branch = (fun () -> oldest_unresolved_branch t);
    get_entry = (fun seq -> get_entry t seq);
    l1d_protected = (fun addr size -> l1d_protected t addr size);
    stats = t.stats;
  }

(* ------------------------------------------------------------------ *)
(* Watchdog and structured faults                                      *)
(* ------------------------------------------------------------------ *)

(* Abnormal terminations are reported as a [Sim_fault] carrying a
   pipeline-state dump rather than a bare exception, so harnesses can log
   the faulting run and continue with the rest of a grid or campaign. *)

type fault_kind =
  | Commit_stall (* no commit for [heartbeat] cycles: deadlock/livelock *)
  | Budget_exhausted (* the watchdog's hard cycle budget ran out *)
  | Invariant_violation of string (* from [Invariants], in [Fail] mode *)

type fault_info = {
  fault_kind : fault_kind;
  fault_cycle : int;
  fault_fetch_pc : int;
  fault_head_pc : int; (* pc of the ROB head entry; -1 when empty *)
  fault_head_seq : int;
  fault_rob_count : int;
  fault_last_commit : int; (* cycle of the last commit *)
  fault_policy : string;
  fault_core : int; (* core index under [Multicore]; 0 for single-core *)
}

exception Sim_fault of fault_info

let fault t kind =
  {
    fault_kind = kind;
    fault_cycle = t.cycle;
    fault_fetch_pc = t.fetch_pc;
    fault_head_pc =
      (match head_entry t with Some e -> e.Rob_entry.pc | None -> -1);
    fault_head_seq = t.head_seq;
    fault_rob_count = t.count;
    fault_last_commit = t.last_commit_cycle;
    fault_policy = t.policy.Policy.name;
    fault_core = 0;
  }

let fault_kind_name = function
  | Commit_stall -> "commit-stall"
  | Budget_exhausted -> "cycle-budget-exhausted"
  | Invariant_violation _ -> "invariant-violation"

let fault_to_string f =
  let detail =
    match f.fault_kind with Invariant_violation d -> ": " ^ d | _ -> ""
  in
  let core = if f.fault_core > 0 then Printf.sprintf " core=%d" f.fault_core else "" in
  Printf.sprintf
    "%s%s (cycle=%d fetch_pc=%d head_pc=%d head_seq=%d rob=%d last_commit=%d \
     policy=%s%s)"
    (fault_kind_name f.fault_kind)
    detail f.fault_cycle f.fault_fetch_pc f.fault_head_pc f.fault_head_seq
    f.fault_rob_count f.fault_last_commit f.fault_policy core

type watchdog = {
  heartbeat : int;
      (* maximum cycles without a commit before declaring a deadlock or
         livelock (the pipeline keeps cycling but makes no progress) *)
  budget : int option;
      (* hard per-run cycle cap: unlike [fuel] (which returns with
         [finished = false]), exceeding the budget is reported as a fault *)
}

let default_watchdog = { heartbeat = 20_000; budget = None }

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let is_done t = t.done_

(* Diagnostic dump of pipeline state, for debugging. *)
let debug_dump t =
  Printf.printf "cycle=%d head_seq=%d count=%d fetch_pc=%d stalled=%b buf=%d done=%b\n"
    t.cycle t.head_seq t.count t.fetch_pc t.fetch_stalled
    (Queue.length t.fetch_buf) t.done_;
  iter_rob t (fun e ->
      Printf.printf
        "  seq=%d pc=%d %s issued=%b exec=%b resolved=%b mispred=%b cycles=%d ready=[%s]\n"
        e.Rob_entry.seq e.Rob_entry.pc
        (Insn.to_string e.Rob_entry.insn)
        e.Rob_entry.issued e.Rob_entry.executed e.Rob_entry.resolved
        e.Rob_entry.mispredicted e.Rob_entry.cycles_left
        (String.concat ","
           (Array.to_list
              (Array.map (fun b -> if b then "1" else "0") e.Rob_entry.src_ready))))

(* Invariant check used while debugging: every occupied slot must hold the
   sequence number its position implies. *)
let check_ring t =
  for i = 0 to t.count - 1 do
    let idx = (t.head_idx + i) mod rob_size t in
    match t.rob.(idx) with
    | Some e ->
        if e.Rob_entry.seq <> t.head_seq + i then begin
          debug_dump t;
          failwith
            (Printf.sprintf "ring desync: slot %d has seq %d, expected %d" i
               e.Rob_entry.seq (t.head_seq + i))
        end
    | None ->
        debug_dump t;
        failwith (Printf.sprintf "ring hole at slot %d (seq %d)" i (t.head_seq + i))
  done
