(* The shared pipeline state record and its primitive operations.

   Every stage module ([Stage_fetch] … [Stage_commit]), the memory
   hierarchy walker and the squash engine operate on this one typed
   record; cross-cutting observers react to [Hooks] events carried by
   the [hooks] bus embedded in the record.  [Pipeline] composes the
   stages into a cycle and owns the public API.

   Besides the architectural/microarchitectural state, the record holds
   the O(active) issue scheduler's index structures (see
   docs/architecture.md, "Performance"): the ROB ring is a flat
   [Rob_entry.t array] with [Rob_entry.null] for empty slots, the
   unissued and unresolved-branch sets are intrusive doubly-linked lists
   threaded through the entries, and the in-flight/store/load sets are
   [Entryq] deques.  All of them are *redundant* indexes over the ring:
   [Invariants.check_sched] cross-checks them against a brute-force ROB
   scan (per cycle under [paranoid_sched]). *)

open Protean_isa
open Protean_arch

type fetch_item = {
  f_pc : int;
  f_insn : Insn.t;
  f_pred_target : int; (* -1 = no prediction (fetch stalled after this) *)
  f_ready : int; (* cycle at which the item can rename *)
  f_fetched : int;
}

type t = {
  cfg : Config.t;
  policy : Policy.t;
  spec_model : Policy.spec_model;
  squash_bug : bool;
      (* reintroduces the pending-squash corner case inherited from STT's
         gem5 implementation (Section VII-B4b) when true *)
  program : Program.t;
  mem : Memory.t; (* committed memory *)
  regs : int64 array; (* committed registers *)
  reg_prot : bool array; (* committed ProtISA register protections *)
  (* Rename map. *)
  rmap_producer : int array; (* per arch register: seq, or -1 *)
  rmap_value : int64 array;
  rmap_prot : bool array;
  (* Reorder buffer: a ring indexed by sequence number; [Rob_entry.null]
     marks an empty slot. *)
  rob : Rob_entry.t array;
  mutable head_idx : int;
  mutable head_seq : int;
  mutable count : int;
  mutable next_seq : int;
  mutable lq_used : int;
  mutable sq_used : int;
  (* O(active) scheduler indexes (redundant views over the ring). *)
  mutable uq_head : Rob_entry.t; (* unissued entries, seq-ascending DLL *)
  mutable uq_tail : Rob_entry.t;
  mutable bq_head : Rob_entry.t; (* unresolved branches, seq-ascending DLL *)
  mutable bq_tail : Rob_entry.t;
  inflight : Entryq.t; (* issued && not executed, issue order *)
  lsq_stores : Entryq.t; (* live stores, seq-ascending *)
  lsq_loads : Entryq.t; (* live loads, seq-ascending *)
  (* Structural execution ports ([Config.ports]; both arrays are empty
     when the model is off).  [port_busy_until] is the first cycle an
     unpipelined computation's port accepts new work again;
     [port_used] is per-cycle scratch marking ports already bound this
     cycle, cleared at the top of each issue scan. *)
  port_busy_until : int array;
  port_used : bool array;
  paranoid : bool; (* cross-check the indexes every cycle *)
  (* Per-pc operand templates: [Insn.reads]/[Insn.writes] precomputed so
     rename shares one immutable srcs/dsts array per program location. *)
  tmpl_srcs : (Reg.t * Insn.role) array array;
  tmpl_dsts : Reg.t array array;
  (* Frontend. *)
  mutable fetch_pc : int;
  mutable fetch_stalled : bool;
  fetch_buf : fetch_item Queue.t;
  bp : Branch_pred.t;
  mdp : Bytes.t;
      (* memory-dependence predictor (store-set style): a bit per load PC
         set after a memory-order violation; flagged loads wait until all
         older store addresses are known *)
  (* Memory hierarchy. *)
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t option;
  tlb : Tlb.t;
  shadow_prot : Protset.t option; (* Prot_mem_perfect variant *)
  (* Bookkeeping. *)
  trace : Hw_trace.t;
  stats : Stats.t;
  hooks : t Hooks.t;
  mutable api_memo : Policy.api option; (* built on first use, then reused *)
  mutable cycle : int;
  mutable done_ : bool;
  mutable last_commit_cycle : int;
}

let fetch_buf_capacity = 48

(* Opt-in brute-force cross-checking of the scheduler indexes, for fuzz
   campaigns chasing scheduler bugs: `protean-sim --paranoid-sched` or
   PROTEAN_PARANOID_SCHED=1.  Consulted at [create]; per-pipeline. *)
let paranoid_sched =
  ref
    (match Sys.getenv_opt "PROTEAN_PARANOID_SCHED" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let create ?(trace = false) ?(squash_bug = false)
    ?(spec_model = Policy.Atcommit) ?shared_l3 (cfg : Config.t)
    (policy : Policy.t) (program : Program.t) ~overlays =
  let mem = Memory.create () in
  List.iter
    (fun (d : Program.data_init) -> Memory.write_string mem d.addr d.bytes)
    program.Program.data;
  List.iter (fun (addr, bytes) -> Memory.write_string mem addr bytes) overlays;
  let regs = Array.make Reg.count 0L in
  regs.(Reg.to_int Reg.rsp) <- program.Program.stack_base;
  let l3 =
    match shared_l3 with
    | Some c -> Some c
    | None -> Option.map (Cache.create ~prot:false) cfg.Config.l3
  in
  let plen = Program.length program in
  let tmpl_srcs = Array.make plen [||] in
  let tmpl_dsts = Array.make plen [||] in
  for pc = 0 to plen - 1 do
    let insn = Program.insn program pc in
    tmpl_srcs.(pc) <- Array.of_list (Insn.reads insn.Insn.op);
    tmpl_dsts.(pc) <- Array.of_list (Insn.writes insn.Insn.op)
  done;
  {
    cfg;
    policy;
    spec_model;
    squash_bug;
    program;
    mem;
    regs;
    reg_prot = Array.make Reg.count false;
    rmap_producer = Array.make Reg.count (-1);
    rmap_value = Array.copy regs;
    rmap_prot = Array.make Reg.count false;
    rob = Array.make cfg.Config.rob_size Rob_entry.null;
    head_idx = 0;
    head_seq = 0;
    count = 0;
    next_seq = 0;
    lq_used = 0;
    sq_used = 0;
    uq_head = Rob_entry.null;
    uq_tail = Rob_entry.null;
    bq_head = Rob_entry.null;
    bq_tail = Rob_entry.null;
    inflight = Entryq.create ~capacity:64 ();
    lsq_stores = Entryq.create ~capacity:64 ();
    lsq_loads = Entryq.create ~capacity:64 ();
    port_busy_until =
      (match cfg.Config.ports with
      | None -> [||]
      | Some pc -> Array.make (Array.length pc.Config.port_caps) 0);
    port_used =
      (match cfg.Config.ports with
      | None -> [||]
      | Some pc -> Array.make (Array.length pc.Config.port_caps) false);
    paranoid = !paranoid_sched;
    tmpl_srcs;
    tmpl_dsts;
    fetch_pc = program.Program.main;
    fetch_stalled = false;
    fetch_buf = Queue.create ();
    bp = Branch_pred.create cfg.Config.bp;
    mdp = Bytes.make 1024 '\000';
    l1d = Cache.create cfg.Config.l1d;
    l2 = Cache.create ~prot:false cfg.Config.l2;
    l3;
    tlb = Tlb.create cfg.Config.tlb_entries;
    shadow_prot =
      (match cfg.Config.prot_mem with
      | Config.Prot_mem_perfect -> Some (Protset.create ())
      | Config.Prot_mem_l1d | Config.Prot_mem_none -> None);
    trace = Hw_trace.create ~enabled:trace;
    stats = Stats.create ();
    hooks = Hooks.create ();
    api_memo = None;
    cycle = 0;
    done_ = false;
    last_commit_cycle = 0;
  }

let emit t ev = Hooks.emit t.hooks t ev
let wants t kind = Hooks.wanted t.hooks kind

(* ------------------------------------------------------------------ *)
(* ROB ring operations                                                 *)
(* ------------------------------------------------------------------ *)

let rob_size t = Array.length t.rob
let rob_full t = t.count >= rob_size t

let idx_of_seq t seq = (t.head_idx + (seq - t.head_seq)) mod rob_size t

(* Allocation-free lookup: [Rob_entry.null] when [seq] is not live. *)
let peek t seq =
  if seq < t.head_seq || seq >= t.head_seq + t.count then Rob_entry.null
  else t.rob.(idx_of_seq t seq)

let get_entry t seq =
  let e = peek t seq in
  if Rob_entry.is_null e then None else Some e

let head_entry t = if t.count = 0 then None else Some t.rob.(t.head_idx)

(* Iterate over ROB entries from oldest to youngest. *)
let iter_rob t f =
  let n = rob_size t in
  for i = 0 to t.count - 1 do
    f t.rob.((t.head_idx + i) mod n)
  done

let tail_seq t = t.head_seq + t.count - 1

(* ------------------------------------------------------------------ *)
(* Scheduler index maintenance                                         *)
(* ------------------------------------------------------------------ *)

(* Unissued list: entries append at rename (seq-ascending by
   construction), unlink when they issue, truncate from the tail on a
   squash.  Dormant entries stay linked — the issue scan skips them with
   one flag test; what makes the scan O(active) is never visiting
   issued/executed/committed entries at all. *)

let uq_push t (e : Rob_entry.t) =
  if Rob_entry.is_null t.uq_tail then begin
    t.uq_head <- e;
    t.uq_tail <- e
  end
  else begin
    e.Rob_entry.uq_prev <- t.uq_tail;
    t.uq_tail.Rob_entry.uq_next <- e;
    t.uq_tail <- e
  end

let uq_unlink t (e : Rob_entry.t) =
  let p = e.Rob_entry.uq_prev and n = e.Rob_entry.uq_next in
  if Rob_entry.is_null p then t.uq_head <- n
  else p.Rob_entry.uq_next <- n;
  if Rob_entry.is_null n then t.uq_tail <- p
  else n.Rob_entry.uq_prev <- p;
  e.Rob_entry.uq_prev <- Rob_entry.null;
  e.Rob_entry.uq_next <- Rob_entry.null

(* Unresolved-branch list: append at rename, unlink the moment an entry
   resolves, truncate from the tail on a squash.  Its head therefore *is*
   the oldest unresolved branch — the CONTROL speculation model's query
   is O(1) instead of a memoized ROB scan. *)

let bq_push t (e : Rob_entry.t) =
  if Rob_entry.is_null t.bq_tail then begin
    t.bq_head <- e;
    t.bq_tail <- e
  end
  else begin
    e.Rob_entry.bq_prev <- t.bq_tail;
    t.bq_tail.Rob_entry.bq_next <- e;
    t.bq_tail <- e
  end

let bq_unlink t (e : Rob_entry.t) =
  let p = e.Rob_entry.bq_prev and n = e.Rob_entry.bq_next in
  if Rob_entry.is_null p then t.bq_head <- n
  else p.Rob_entry.bq_next <- n;
  if Rob_entry.is_null n then t.bq_tail <- p
  else n.Rob_entry.bq_prev <- p;
  e.Rob_entry.bq_prev <- Rob_entry.null;
  e.Rob_entry.bq_next <- Rob_entry.null

(* ------------------------------------------------------------------ *)
(* Policy API                                                          *)
(* ------------------------------------------------------------------ *)

let oldest_unresolved_branch t =
  if Rob_entry.is_null t.bq_head then max_int else t.bq_head.Rob_entry.seq

let l1d_protected t addr size =
  match t.cfg.Config.prot_mem with
  | Config.Prot_mem_none -> true
  | Config.Prot_mem_l1d -> Cache.protected_bytes t.l1d addr size
  | Config.Prot_mem_perfect ->
      Protset.mem_protected (Option.get t.shadow_prot) addr size

(* One api record per pipeline, built on first use: the closures are
   loop-invariant, so handing policies a fresh record per query (the old
   behavior) only fed the minor heap. *)
let api t : Policy.api =
  match t.api_memo with
  | Some a -> a
  | None ->
      let a =
        {
          Policy.cfg = t.cfg;
          spec_model = t.spec_model;
          head_seq = (fun () -> if t.count = 0 then max_int else t.head_seq);
          oldest_unresolved_branch = (fun () -> oldest_unresolved_branch t);
          get_entry = (fun seq -> get_entry t seq);
          peek = (fun seq -> peek t seq);
          l1d_protected = (fun addr size -> l1d_protected t addr size);
          stats = t.stats;
        }
      in
      t.api_memo <- Some a;
      a

(* ------------------------------------------------------------------ *)
(* Watchdog and structured faults                                      *)
(* ------------------------------------------------------------------ *)

(* Abnormal terminations are reported as a [Sim_fault] carrying a
   pipeline-state dump rather than a bare exception, so harnesses can log
   the faulting run and continue with the rest of a grid or campaign. *)

type fault_kind =
  | Commit_stall (* no commit for [heartbeat] cycles: deadlock/livelock *)
  | Budget_exhausted (* the watchdog's hard cycle budget ran out *)
  | Invariant_violation of string (* from [Invariants], in [Fail] mode *)

type fault_info = {
  fault_kind : fault_kind;
  fault_cycle : int;
  fault_fetch_pc : int;
  fault_head_pc : int; (* pc of the ROB head entry; -1 when empty *)
  fault_head_seq : int;
  fault_rob_count : int;
  fault_last_commit : int; (* cycle of the last commit *)
  fault_policy : string;
  fault_core : int; (* core index under [Multicore]; 0 for single-core *)
}

exception Sim_fault of fault_info

let fault t kind =
  {
    fault_kind = kind;
    fault_cycle = t.cycle;
    fault_fetch_pc = t.fetch_pc;
    fault_head_pc =
      (match head_entry t with Some e -> e.Rob_entry.pc | None -> -1);
    fault_head_seq = t.head_seq;
    fault_rob_count = t.count;
    fault_last_commit = t.last_commit_cycle;
    fault_policy = t.policy.Policy.name;
    fault_core = 0;
  }

let fault_kind_name = function
  | Commit_stall -> "commit-stall"
  | Budget_exhausted -> "cycle-budget-exhausted"
  | Invariant_violation _ -> "invariant-violation"

let fault_to_string f =
  let detail =
    match f.fault_kind with Invariant_violation d -> ": " ^ d | _ -> ""
  in
  let core = if f.fault_core > 0 then Printf.sprintf " core=%d" f.fault_core else "" in
  Printf.sprintf
    "%s%s (cycle=%d fetch_pc=%d head_pc=%d head_seq=%d rob=%d last_commit=%d \
     policy=%s%s)"
    (fault_kind_name f.fault_kind)
    detail f.fault_cycle f.fault_fetch_pc f.fault_head_pc f.fault_head_seq
    f.fault_rob_count f.fault_last_commit f.fault_policy core

type watchdog = {
  heartbeat : int;
      (* maximum cycles without a commit before declaring a deadlock or
         livelock (the pipeline keeps cycling but makes no progress) *)
  budget : int option;
      (* hard per-run cycle cap: unlike [fuel] (which returns with
         [finished = false]), exceeding the budget is reported as a fault *)
}

let default_watchdog = { heartbeat = 20_000; budget = None }

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let is_done t = t.done_

(* Diagnostic dump of pipeline state, for debugging. *)
let debug_dump t =
  Printf.printf "cycle=%d head_seq=%d count=%d fetch_pc=%d stalled=%b buf=%d done=%b\n"
    t.cycle t.head_seq t.count t.fetch_pc t.fetch_stalled
    (Queue.length t.fetch_buf) t.done_;
  iter_rob t (fun e ->
      Printf.printf
        "  seq=%d pc=%d %s issued=%b exec=%b resolved=%b mispred=%b cycles=%d ready=[%s]\n"
        e.Rob_entry.seq e.Rob_entry.pc
        (Insn.to_string e.Rob_entry.insn)
        e.Rob_entry.issued e.Rob_entry.executed e.Rob_entry.resolved
        e.Rob_entry.mispredicted e.Rob_entry.cycles_left
        (String.concat ","
           (Array.to_list
              (Array.map (fun b -> if b then "1" else "0") e.Rob_entry.src_ready))))

(* Invariant check used while debugging: every occupied slot must hold the
   sequence number its position implies. *)
let check_ring t =
  for i = 0 to t.count - 1 do
    let idx = (t.head_idx + i) mod rob_size t in
    let e = t.rob.(idx) in
    if Rob_entry.is_null e then begin
      debug_dump t;
      failwith (Printf.sprintf "ring hole at slot %d (seq %d)" i (t.head_seq + i))
    end
    else if e.Rob_entry.seq <> t.head_seq + i then begin
      debug_dump t;
      failwith
        (Printf.sprintf "ring desync: slot %d has seq %d, expected %d" i
           e.Rob_entry.seq (t.head_seq + i))
    end
  done
