(* The shared pipeline state record and its primitive operations.

   Every stage module ([Stage_fetch] … [Stage_commit]), the memory
   hierarchy walker and the squash engine operate on this one typed
   record; cross-cutting observers react to [Hooks] events carried by
   the [hooks] bus embedded in the record.  [Pipeline] composes the
   stages into a cycle and owns the public API.

   Besides the architectural/microarchitectural state, the record holds
   the O(active) issue scheduler's index structures (see
   docs/architecture.md, "Performance"): the ROB ring is a flat
   [Rob_entry.t array] with [Rob_entry.null] for empty slots, the
   unissued and unresolved-branch sets are intrusive doubly-linked lists
   threaded through the entries, and the in-flight/store/load sets are
   [Entryq] deques.  All of them are *redundant* indexes over the ring:
   [Invariants.check_sched] cross-checks them against a brute-force ROB
   scan (per cycle under [paranoid_sched]). *)

open Protean_isa
open Protean_arch

(* Fetch-buffer slots live in a pre-allocated ring ([fetch_ring]) and
   are overwritten in place — the frontend fetches several instructions
   per cycle, so a per-item allocation would dominate the minor heap.
   Mutable only for that recycling; stages treat a slot as read-only
   between push and pop.  The slot is deliberately all-int (the insn is
   re-derived from [f_pc] by rename) so slot writes never touch the GC
   write barrier. *)
type fetch_item = {
  mutable f_pc : int;
  mutable f_pred_target : int;
      (* -1 = no prediction (fetch stalled after this) *)
  mutable f_ready : int; (* cycle at which the item can rename *)
  mutable f_fetched : int;
}

(* The shared out-of-program instruction: what a runaway [fetch_pc]
   decodes to.  One static value so the fetch path never allocates. *)
let halt_insn = Insn.make Insn.Halt

type t = {
  cfg : Config.t;
  policy : Policy.t;
  spec_model : Policy.spec_model;
  squash_bug : bool;
      (* reintroduces the pending-squash corner case inherited from STT's
         gem5 implementation (Section VII-B4b) when true *)
  program : Program.t;
  mem : Memory.t; (* committed memory *)
  regs : int64 array; (* committed registers *)
  reg_prot : bool array; (* committed ProtISA register protections *)
  (* Rename map. *)
  rmap_producer : int array; (* per arch register: seq, or -1 *)
  rmap_value : int64 array;
  rmap_prot : bool array;
  (* Reorder buffer: a ring indexed by sequence number; [Rob_entry.null]
     marks an empty slot. *)
  rob : Rob_entry.t array;
  mutable head_idx : int;
  mutable head_seq : int;
  mutable count : int;
  mutable next_seq : int;
  mutable lq_used : int;
  mutable sq_used : int;
  (* O(active) scheduler indexes (redundant views over the ring). *)
  mutable uq_head : Rob_entry.t; (* unissued entries, seq-ascending DLL *)
  mutable uq_tail : Rob_entry.t;
  mutable bq_head : Rob_entry.t; (* unresolved branches, seq-ascending DLL *)
  mutable bq_tail : Rob_entry.t;
  inflight : Entryq.t; (* issued && not executed, issue order *)
  lsq_stores : Entryq.t; (* live stores, seq-ascending *)
  lsq_loads : Entryq.t; (* live loads, seq-ascending *)
  (* Structural execution ports ([Config.ports]; both arrays are empty
     when the model is off).  [port_busy_until] is the first cycle an
     unpipelined computation's port accepts new work again;
     [port_used] is per-cycle scratch marking ports already bound this
     cycle, cleared at the top of each issue scan. *)
  port_busy_until : int array;
  port_used : bool array;
  paranoid : bool; (* cross-check the indexes every cycle *)
  (* Per-pc operand templates: [Insn.reads]/[Insn.writes] precomputed so
     rename shares one immutable srcs/dsts array per program location. *)
  tmpl_srcs : (Reg.t * Insn.role) array array;
  tmpl_dsts : Reg.t array array;
  (* Per-pc free list of dead ROB entries ([Rob_entry.null]-terminated,
     chained through [uq_next]): commit releases, rename recycles via
     [Rob_entry.reset].  Loop bodies re-rename the same pcs over and
     over, so in steady state rename allocates nothing.  Safe because a
     committed entry has no inbound physical pointers (wakeup chains are
     cleared at execution, scheduler lists at issue/resolve, ROB/LSQ
     slots at commit) — every cross-entry reference is by sequence
     number, and [peek] range-checks those.  Squashed entries are pooled
     too, but only at the *end* of the flush: the index cleanup still
     walks their list/chain links, so [Squash.flush] parks them in
     [squash_scratch] (pre-allocated, ROB-sized) until the pipeline is
     consistent again. *)
  entry_pool : Rob_entry.t array;
  squash_scratch : Rob_entry.t array;
  (* Frontend. *)
  mutable fetch_pc : int;
  mutable fetch_stalled : bool;
  (* Fetch buffer: a fixed ring of [fetch_buf_capacity] recycled slots.
     [fetch_front] indexes the oldest item; [fetch_len] counts live
     items.  Use the [fb_*] operations below. *)
  fetch_ring : fetch_item array;
  mutable fetch_front : int;
  mutable fetch_len : int;
  bp : Branch_pred.t;
  mdp : Bytes.t;
      (* memory-dependence predictor (store-set style): a bit per load PC
         set after a memory-order violation; flagged loads wait until all
         older store addresses are known *)
  (* Memory hierarchy. *)
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t option;
  tlb : Tlb.t;
  shadow_prot : Protset.t option; (* Prot_mem_perfect variant *)
  (* Bookkeeping. *)
  trace : Hw_trace.t;
  stats : Stats.t;
  hooks : t Hooks.t;
  mutable api_memo : Policy.api option; (* built on first use, then reused *)
  mutable cycle : int;
  mutable done_ : bool;
  mutable last_commit_cycle : int;
  (* Event-driven skip-ahead (see [Pipeline.step]).  [progress] is reset
     at the top of every cycle and set by the stage modules at each
     meaningful-activity site (a fetch, a rename, an issue, a wakeup
     flip, a completion, a resolve, a squash, a commit, or any emitted
     stall/deny event — every site that mutates machine state or bumps a
     counter).  A cycle that ends with [progress = false] is *quiet*:
     replaying it changes nothing observable, so the cycle counter may
     jump to the next event horizon instead of spinning. *)
  mutable progress : bool;
  mutable skip_enabled : bool;
}

let fetch_buf_capacity = 48

(* Opt-in brute-force cross-checking of the scheduler indexes, for fuzz
   campaigns chasing scheduler bugs: `protean-sim --paranoid-sched` or
   PROTEAN_PARANOID_SCHED=1.  Consulted at [create]; per-pipeline. *)
let paranoid_sched =
  ref
    (match Sys.getenv_opt "PROTEAN_PARANOID_SCHED" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

(* Event-driven skip-ahead: on by default, disabled by `--no-skip-ahead`
   or PROTEAN_NO_SKIP_AHEAD=1 (the escape hatch), and force-disabled per
   pipeline under [paranoid_sched] — the paranoid machine *is* the
   spinning cross-check the golden corpora compare against.  Consulted
   at [create]; per-pipeline. *)
let skip_ahead =
  ref
    (match Sys.getenv_opt "PROTEAN_NO_SKIP_AHEAD" with
    | None | Some "" | Some "0" -> true
    | Some _ -> false)

(* Decode templates: the per-pc operand arrays rename shares across all
   instances of one program location.  Building them walks the whole
   program ([Insn.reads]/[Insn.writes] allocate per insn), so harnesses
   that simulate one instrumented binary under many defense
   configurations precompute them once and pass [?decode] to [create] —
   the templates are immutable and safe to share between pipelines (and
   domains). *)
let decode_program (program : Program.t) =
  let plen = Program.length program in
  let tmpl_srcs = Array.make plen [||] in
  let tmpl_dsts = Array.make plen [||] in
  for pc = 0 to plen - 1 do
    let insn = Program.insn program pc in
    tmpl_srcs.(pc) <- Array.of_list (Insn.reads insn.Insn.op);
    tmpl_dsts.(pc) <- Array.of_list (Insn.writes insn.Insn.op)
  done;
  (tmpl_srcs, tmpl_dsts)

let create ?(trace = false) ?(squash_bug = false)
    ?(spec_model = Policy.Atcommit) ?shared_l3 ?decode (cfg : Config.t)
    (policy : Policy.t) (program : Program.t) ~overlays =
  let mem = Memory.create () in
  List.iter
    (fun (d : Program.data_init) -> Memory.write_string mem d.addr d.bytes)
    program.Program.data;
  List.iter (fun (addr, bytes) -> Memory.write_string mem addr bytes) overlays;
  let regs = Array.make Reg.count 0L in
  regs.(Reg.to_int Reg.rsp) <- program.Program.stack_base;
  let l3 =
    match shared_l3 with
    | Some c -> Some c
    | None -> Option.map (Cache.create ~prot:false) cfg.Config.l3
  in
  let plen = Program.length program in
  let tmpl_srcs, tmpl_dsts =
    match decode with
    | Some ((s, _) as d) when Array.length s = plen -> d
    | Some _ -> invalid_arg "Pipeline_state.create: decode/program mismatch"
    | None -> decode_program program
  in
  {
    cfg;
    policy;
    spec_model;
    squash_bug;
    program;
    mem;
    regs;
    reg_prot = Array.make Reg.count false;
    rmap_producer = Array.make Reg.count (-1);
    rmap_value = Array.copy regs;
    rmap_prot = Array.make Reg.count false;
    rob = Array.make cfg.Config.rob_size Rob_entry.null;
    head_idx = 0;
    head_seq = 0;
    count = 0;
    next_seq = 0;
    lq_used = 0;
    sq_used = 0;
    uq_head = Rob_entry.null;
    uq_tail = Rob_entry.null;
    bq_head = Rob_entry.null;
    bq_tail = Rob_entry.null;
    inflight = Entryq.create ~capacity:64 ();
    lsq_stores = Entryq.create ~capacity:64 ();
    lsq_loads = Entryq.create ~capacity:64 ();
    port_busy_until =
      (match cfg.Config.ports with
      | None -> [||]
      | Some pc -> Array.make (Array.length pc.Config.port_caps) 0);
    port_used =
      (match cfg.Config.ports with
      | None -> [||]
      | Some pc -> Array.make (Array.length pc.Config.port_caps) false);
    paranoid = !paranoid_sched;
    tmpl_srcs;
    tmpl_dsts;
    entry_pool = Array.make plen Rob_entry.null;
    squash_scratch = Array.make cfg.Config.rob_size Rob_entry.null;
    fetch_pc = program.Program.main;
    fetch_stalled = false;
    fetch_ring =
      Array.init fetch_buf_capacity (fun _ ->
          { f_pc = -1; f_pred_target = -1; f_ready = -1; f_fetched = -1 });
    fetch_front = 0;
    fetch_len = 0;
    bp = Branch_pred.create cfg.Config.bp;
    mdp = Bytes.make 1024 '\000';
    l1d = Cache.create cfg.Config.l1d;
    l2 = Cache.create ~prot:false cfg.Config.l2;
    l3;
    tlb = Tlb.create cfg.Config.tlb_entries;
    shadow_prot =
      (match cfg.Config.prot_mem with
      | Config.Prot_mem_perfect -> Some (Protset.create ())
      | Config.Prot_mem_l1d | Config.Prot_mem_none -> None);
    trace = Hw_trace.create ~enabled:trace;
    stats = Stats.create ();
    hooks = Hooks.create ();
    api_memo = None;
    cycle = 0;
    done_ = false;
    last_commit_cycle = 0;
    progress = false;
    skip_enabled = !skip_ahead && not !paranoid_sched;
  }

let emit t ev = Hooks.emit t.hooks t ev
let wants t kind = Hooks.wanted t.hooks kind

(* ------------------------------------------------------------------ *)
(* ROB ring operations                                                 *)
(* ------------------------------------------------------------------ *)

let rob_size t = Array.length t.rob
let rob_full t = t.count >= rob_size t

(* Ring indexing without division: [head_idx < size] and the offset is
   in [0, size), so one conditional subtract replaces the [mod] — this
   is the hottest address computation in the simulator ([peek] runs per
   source per active entry per cycle). *)
let idx_of_seq t seq =
  let i = t.head_idx + (seq - t.head_seq) in
  let n = Array.length t.rob in
  if i >= n then i - n else i

(* Allocation-free lookup: [Rob_entry.null] when [seq] is not live. *)
let peek t seq =
  if seq < t.head_seq || seq >= t.head_seq + t.count then Rob_entry.null
  else t.rob.(idx_of_seq t seq)

let get_entry t seq =
  let e = peek t seq in
  if Rob_entry.is_null e then None else Some e

let head_entry t = if t.count = 0 then None else Some t.rob.(t.head_idx)

(* Iterate over ROB entries from oldest to youngest. *)
let iter_rob t f =
  let n = rob_size t in
  let idx = ref t.head_idx in
  for _ = 0 to t.count - 1 do
    f t.rob.(!idx);
    incr idx;
    if !idx >= n then idx := 0
  done

let tail_seq t = t.head_seq + t.count - 1

(* Entry recycling (see [entry_pool]).  [pool_put] is called from commit
   once the entry is out of every index; the free list borrows the then
   unused [uq_next] field, which [Rob_entry.reset] re-nulls on reuse. *)

let pool_put t (e : Rob_entry.t) =
  let pc = e.Rob_entry.pc in
  if pc >= 0 && pc < Array.length t.entry_pool then begin
    e.Rob_entry.uq_next <- t.entry_pool.(pc);
    t.entry_pool.(pc) <- e
  end

(* Pop a recyclable entry for [pc], or [Rob_entry.null].  The physical
   [insn] comparison guards against harnesses that patch program code
   between runs of one image (certificate fault injection): a patched pc
   simply falls back to a fresh allocation. *)
let pool_take t pc (insn : Insn.t) =
  if pc >= 0 && pc < Array.length t.entry_pool then begin
    let e = t.entry_pool.(pc) in
    if (not (Rob_entry.is_null e)) && e.Rob_entry.insn == insn then begin
      t.entry_pool.(pc) <- e.Rob_entry.uq_next;
      e
    end
    else Rob_entry.null
  end
  else Rob_entry.null

(* ------------------------------------------------------------------ *)
(* Fetch-buffer ring operations                                        *)
(* ------------------------------------------------------------------ *)

let fb_length t = t.fetch_len
let fb_is_empty t = t.fetch_len = 0
let fb_full t = t.fetch_len >= fetch_buf_capacity
let fb_peek t = t.fetch_ring.(t.fetch_front)

(* The returned item's slot stays valid until a later [fb_push] reuses
   it — pushes happen only in the fetch stage, after rename consumed the
   popped item, so the reference never outlives its contents. *)
let fb_pop t =
  let item = t.fetch_ring.(t.fetch_front) in
  let f = t.fetch_front + 1 in
  t.fetch_front <- (if f >= fetch_buf_capacity then 0 else f);
  t.fetch_len <- t.fetch_len - 1;
  item

let fb_push t ~pc ~pred_target ~ready ~fetched =
  let i =
    let j = t.fetch_front + t.fetch_len in
    if j >= fetch_buf_capacity then j - fetch_buf_capacity else j
  in
  let s = t.fetch_ring.(i) in
  s.f_pc <- pc;
  s.f_pred_target <- pred_target;
  s.f_ready <- ready;
  s.f_fetched <- fetched;
  t.fetch_len <- t.fetch_len + 1

let fb_clear t = t.fetch_len <- 0

(* Iterate oldest to youngest (diagnostics/invariants only). *)
let fb_iter f t =
  let idx = ref t.fetch_front in
  for _ = 0 to t.fetch_len - 1 do
    f t.fetch_ring.(!idx);
    incr idx;
    if !idx >= fetch_buf_capacity then idx := 0
  done

(* ------------------------------------------------------------------ *)
(* Scheduler index maintenance                                         *)
(* ------------------------------------------------------------------ *)

(* Unissued list: entries append at rename (seq-ascending by
   construction), unlink when they issue, truncate from the tail on a
   squash.  Dormant entries stay linked — the issue scan skips them with
   one flag test; what makes the scan O(active) is never visiting
   issued/executed/committed entries at all. *)

let uq_push t (e : Rob_entry.t) =
  if Rob_entry.is_null t.uq_tail then begin
    t.uq_head <- e;
    t.uq_tail <- e
  end
  else begin
    e.Rob_entry.uq_prev <- t.uq_tail;
    t.uq_tail.Rob_entry.uq_next <- e;
    t.uq_tail <- e
  end

let uq_unlink t (e : Rob_entry.t) =
  let p = e.Rob_entry.uq_prev and n = e.Rob_entry.uq_next in
  if Rob_entry.is_null p then t.uq_head <- n
  else p.Rob_entry.uq_next <- n;
  if Rob_entry.is_null n then t.uq_tail <- p
  else n.Rob_entry.uq_prev <- p;
  e.Rob_entry.uq_prev <- Rob_entry.null;
  e.Rob_entry.uq_next <- Rob_entry.null

(* Unresolved-branch list: append at rename, unlink the moment an entry
   resolves, truncate from the tail on a squash.  Its head therefore *is*
   the oldest unresolved branch — the CONTROL speculation model's query
   is O(1) instead of a memoized ROB scan. *)

let bq_push t (e : Rob_entry.t) =
  if Rob_entry.is_null t.bq_tail then begin
    t.bq_head <- e;
    t.bq_tail <- e
  end
  else begin
    e.Rob_entry.bq_prev <- t.bq_tail;
    t.bq_tail.Rob_entry.bq_next <- e;
    t.bq_tail <- e
  end

let bq_unlink t (e : Rob_entry.t) =
  let p = e.Rob_entry.bq_prev and n = e.Rob_entry.bq_next in
  if Rob_entry.is_null p then t.bq_head <- n
  else p.Rob_entry.bq_next <- n;
  if Rob_entry.is_null n then t.bq_tail <- p
  else n.Rob_entry.bq_prev <- p;
  e.Rob_entry.bq_prev <- Rob_entry.null;
  e.Rob_entry.bq_next <- Rob_entry.null

(* ------------------------------------------------------------------ *)
(* Policy API                                                          *)
(* ------------------------------------------------------------------ *)

let oldest_unresolved_branch t =
  if Rob_entry.is_null t.bq_head then max_int else t.bq_head.Rob_entry.seq

let l1d_protected t addr size =
  match t.cfg.Config.prot_mem with
  | Config.Prot_mem_none -> true
  | Config.Prot_mem_l1d -> Cache.protected_bytes t.l1d addr size
  | Config.Prot_mem_perfect ->
      Protset.mem_protected (Option.get t.shadow_prot) addr size

(* One api record per pipeline, built on first use: the closures are
   loop-invariant, so handing policies a fresh record per query (the old
   behavior) only fed the minor heap. *)
let api t : Policy.api =
  match t.api_memo with
  | Some a -> a
  | None ->
      let a =
        {
          Policy.cfg = t.cfg;
          spec_model = t.spec_model;
          head_seq = (fun () -> if t.count = 0 then max_int else t.head_seq);
          oldest_unresolved_branch = (fun () -> oldest_unresolved_branch t);
          get_entry = (fun seq -> get_entry t seq);
          peek = (fun seq -> peek t seq);
          l1d_protected = (fun addr size -> l1d_protected t addr size);
          stats = t.stats;
        }
      in
      t.api_memo <- Some a;
      a

(* ------------------------------------------------------------------ *)
(* Watchdog and structured faults                                      *)
(* ------------------------------------------------------------------ *)

(* Abnormal terminations are reported as a [Sim_fault] carrying a
   pipeline-state dump rather than a bare exception, so harnesses can log
   the faulting run and continue with the rest of a grid or campaign. *)

type fault_kind =
  | Commit_stall (* no commit for [heartbeat] cycles: deadlock/livelock *)
  | Budget_exhausted (* the watchdog's hard cycle budget ran out *)
  | Invariant_violation of string (* from [Invariants], in [Fail] mode *)

type fault_info = {
  fault_kind : fault_kind;
  fault_cycle : int;
  fault_fetch_pc : int;
  fault_head_pc : int; (* pc of the ROB head entry; -1 when empty *)
  fault_head_seq : int;
  fault_rob_count : int;
  fault_last_commit : int; (* cycle of the last commit *)
  fault_policy : string;
  fault_core : int; (* core index under [Multicore]; 0 for single-core *)
}

exception Sim_fault of fault_info

let fault t kind =
  {
    fault_kind = kind;
    fault_cycle = t.cycle;
    fault_fetch_pc = t.fetch_pc;
    fault_head_pc =
      (match head_entry t with Some e -> e.Rob_entry.pc | None -> -1);
    fault_head_seq = t.head_seq;
    fault_rob_count = t.count;
    fault_last_commit = t.last_commit_cycle;
    fault_policy = t.policy.Policy.name;
    fault_core = 0;
  }

let fault_kind_name = function
  | Commit_stall -> "commit-stall"
  | Budget_exhausted -> "cycle-budget-exhausted"
  | Invariant_violation _ -> "invariant-violation"

let fault_to_string f =
  let detail =
    match f.fault_kind with Invariant_violation d -> ": " ^ d | _ -> ""
  in
  let core = if f.fault_core > 0 then Printf.sprintf " core=%d" f.fault_core else "" in
  Printf.sprintf
    "%s%s (cycle=%d fetch_pc=%d head_pc=%d head_seq=%d rob=%d last_commit=%d \
     policy=%s%s)"
    (fault_kind_name f.fault_kind)
    detail f.fault_cycle f.fault_fetch_pc f.fault_head_pc f.fault_head_seq
    f.fault_rob_count f.fault_last_commit f.fault_policy core

type watchdog = {
  heartbeat : int;
      (* maximum cycles without a commit before declaring a deadlock or
         livelock (the pipeline keeps cycling but makes no progress) *)
  budget : int option;
      (* hard per-run cycle cap: unlike [fuel] (which returns with
         [finished = false]), exceeding the budget is reported as a fault *)
}

let default_watchdog = { heartbeat = 20_000; budget = None }

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let is_done t = t.done_

(* Diagnostic dump of pipeline state, for debugging. *)
let debug_dump t =
  Printf.printf "cycle=%d head_seq=%d count=%d fetch_pc=%d stalled=%b buf=%d done=%b\n"
    t.cycle t.head_seq t.count t.fetch_pc t.fetch_stalled t.fetch_len
    t.done_;
  iter_rob t (fun e ->
      Printf.printf
        "  seq=%d pc=%d %s issued=%b exec=%b resolved=%b mispred=%b cycles=%d ready=[%s]\n"
        e.Rob_entry.seq e.Rob_entry.pc
        (Insn.to_string e.Rob_entry.insn)
        e.Rob_entry.issued e.Rob_entry.executed e.Rob_entry.resolved
        e.Rob_entry.mispredicted e.Rob_entry.cycles_left
        (String.concat ","
           (Array.to_list
              (Array.map (fun b -> if b then "1" else "0") e.Rob_entry.src_ready))))

(* Invariant check used while debugging: every occupied slot must hold the
   sequence number its position implies. *)
let check_ring t =
  for i = 0 to t.count - 1 do
    let idx = (t.head_idx + i) mod rob_size t in
    let e = t.rob.(idx) in
    if Rob_entry.is_null e then begin
      debug_dump t;
      failwith (Printf.sprintf "ring hole at slot %d (seq %d)" i (t.head_seq + i))
    end
    else if e.Rob_entry.seq <> t.head_seq + i then begin
      debug_dump t;
      failwith
        (Printf.sprintf "ring desync: slot %d has seq %d, expected %d" i
           e.Rob_entry.seq (t.head_seq + i))
    end
  done
