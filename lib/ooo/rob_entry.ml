(* A reorder-buffer entry: one in-flight instruction with its renamed
   sources, results, memory/branch state, ProtISA protection tags, the
   defense policies' taint bookkeeping, and the intrusive links of the
   O(active) issue scheduler (unissued list, unresolved-branch list,
   producer→consumer wakeup chain). *)

open Protean_isa

type mem_kind = M_none | M_load | M_store

type t = {
  mutable seq : int;
      (* mutable only for entry recycling ([reset]); never reassigned
         while the entry is live in the ROB *)
  pc : int;
  insn : Insn.t;
  (* Renamed sources, in the order of [Insn.reads].  [srcs] and [dsts]
     are immutable and may be shared between entries of the same pc. *)
  srcs : (Reg.t * Insn.role) array;
  src_producer : int array; (* producer seq, or -1 when read from regfile *)
  src_val : int64 array;
  src_ready : bool array;
  src_prot : bool array; (* ProtISA protection tags captured at rename *)
  (* Destinations, in the order of [Insn.writes]. *)
  dsts : Reg.t array;
  dst_val : int64 array;
  mutable out_prot : bool;
  (* Execution status. *)
  mutable issued : bool;
  mutable cycles_left : int;
  mutable executed : bool; (* results computed and visible *)
  mutable fault : bool; (* division fault pending (machine clear at commit) *)
  mutable port : int;
      (* execution port bound at issue under [Config.ports]; -1 when
         unbound (not yet issued, or the structural model is off) *)
  (* Memory access state (LSQ). *)
  mem_kind : mem_kind;
  mutable addr : int64;
  mutable msize : int;
  mutable addr_ready : bool;
  mutable mem_value : int64; (* loaded value / store data *)
  mutable mem_prot : bool; (* LSQ protection bit (Section IV-C2b) *)
  mutable fwd_from : int; (* seq of the store this load forwarded from *)
  (* Branch state. *)
  is_branch : bool;
  mutable pred_target : int;
  mutable actual_target : int;
  mutable mispredicted : bool;
  mutable resolved : bool;
  (* Defense policy state. *)
  mutable taint_root : int;
      (* seq of the youngest speculative access instruction this entry's
         data transitively depends on; -1 when untainted (STT's YRoT) *)
  mutable access_at_rename : bool;
  mutable late_access : bool;
      (* ProtTrack false negative: predicted no-access, read protected
         memory; triggers the ProtDelay fallback (Section VI-B2b) *)
  mutable fwd_block_store : int;
      (* seq of a tainted store this load forwarded from; blocks wakeup
         until the store's data untaints (Section VI-B2c) *)
  mutable pred_no_access : bool;
  pol_src_pub : bool array;
      (* per-source scratch for policies that track their own notion of
         public data (SPT's transmitted-state), parallel to [srcs] *)
  mutable pol_out_pub : bool;
  (* O(active) scheduler state.  All links are [null]-terminated; [null]
     itself is a shared sentinel that must never be mutated. *)
  mutable dormant : bool;
      (* unissued and every non-ready source has a live, un-executed
         producer: skipped by the issue scan until a producer executes *)
  wl_next : t array;
      (* per-source wakeup-chain links.  Invariant: source slot [i] is a
         member of its producer's waiter chain iff the slot is non-ready
         and the producer is live and un-executed (membership is created
         at rename and cleared by the producer's execution or a squash).
         A chain node is the pair (entry, slot): [wl_next.(i)]/[wl_slot.(i)]
         name the next node. *)
  wl_slot : int array;
  mutable waiters : t; (* head entry of the chain of waiting consumers *)
  mutable waiters_slot : int; (* slot of the head node *)
  mutable uq_prev : t; (* unissued list (seq-ascending doubly linked) *)
  mutable uq_next : t;
  mutable bq_prev : t; (* unresolved-branch list (seq-ascending) *)
  mutable bq_next : t;
  (* Timing, for the timing-based adversary and statistics. *)
  mutable t_fetch : int;
  mutable t_rename : int;
  mutable t_issue : int;
  mutable t_complete : int;
}

(* The shared sentinel: one immutable-in-practice entry standing for
   "no entry" everywhere an [option] would otherwise allocate.  Never
   write through it. *)
let rec null =
  {
    seq = -1;
    pc = -1;
    insn = Insn.make Insn.Nop;
    srcs = [||];
    src_producer = [||];
    src_val = [||];
    src_ready = [||];
    src_prot = [||];
    dsts = [||];
    dst_val = [||];
    out_prot = false;
    issued = false;
    cycles_left = -1;
    executed = false;
    fault = false;
    port = -1;
    mem_kind = M_none;
    addr = 0L;
    msize = 0;
    addr_ready = false;
    mem_value = 0L;
    mem_prot = false;
    fwd_from = -1;
    is_branch = false;
    pred_target = -1;
    actual_target = -1;
    mispredicted = false;
    resolved = false;
    taint_root = -1;
    access_at_rename = false;
    late_access = false;
    fwd_block_store = -1;
    pred_no_access = false;
    pol_src_pub = [||];
    pol_out_pub = false;
    dormant = false;
    wl_next = [||];
    wl_slot = [||];
    waiters = null;
    waiters_slot = 0;
    uq_prev = null;
    uq_next = null;
    bq_prev = null;
    bq_next = null;
    t_fetch = -1;
    t_rename = -1;
    t_issue = -1;
    t_complete = -1;
  }

let is_null e = e == null

let mem_kind_of op =
  if Insn.is_load op then M_load
  else if Insn.is_store op then M_store
  else M_none

(* [srcs]/[dsts] may be passed in (shared, per-pc templates built at
   rename) to avoid recomputing [Insn.reads]/[Insn.writes] per entry. *)
let create ?srcs ?dsts ~seq ~pc ~(insn : Insn.t) ~t_fetch () =
  let srcs =
    match srcs with Some a -> a | None -> Array.of_list (Insn.reads insn.op)
  in
  let dsts =
    match dsts with Some a -> a | None -> Array.of_list (Insn.writes insn.op)
  in
  let n = Array.length srcs in
  {
    seq;
    pc;
    insn;
    srcs;
    src_producer = Array.make n (-1);
    src_val = Array.make n 0L;
    src_ready = Array.make n false;
    src_prot = Array.make n false;
    dsts;
    dst_val = Array.make (Array.length dsts) 0L;
    out_prot = insn.prot;
    issued = false;
    cycles_left = -1;
    executed = false;
    fault = false;
    port = -1;
    mem_kind = mem_kind_of insn.op;
    addr = 0L;
    msize = 0;
    addr_ready = false;
    mem_value = 0L;
    mem_prot = false;
    fwd_from = -1;
    is_branch = Insn.is_branch insn.op;
    pred_target = -1;
    actual_target = -1;
    mispredicted = false;
    resolved = false;
    taint_root = -1;
    access_at_rename = false;
    late_access = false;
    fwd_block_store = -1;
    pred_no_access = false;
    pol_src_pub = Array.make n false;
    pol_out_pub = false;
    dormant = false;
    wl_next = Array.make n null;
    wl_slot = Array.make n (-1);
    waiters = null;
    waiters_slot = 0;
    uq_prev = null;
    uq_next = null;
    bq_prev = null;
    bq_next = null;
    t_fetch;
    t_rename = -1;
    t_issue = -1;
    t_complete = -1;
  }

(* Recycle a dead entry for a new instruction at the *same pc* (the
   per-pc pool in [Pipeline_state]): every mutable field and array slot
   is restored to exactly what [create] would produce — or, for the
   slots noted below, is provably overwritten before its next read — so
   a reset entry is observably a fresh one.  The immutable fields ([pc], [insn],
   [srcs], [dsts], [mem_kind], [is_branch]) are correct by the pool's
   same-pc keying; the caller checks the insn is physically unchanged.
   Cheaper than [create]: no allocation, and — the real win — no minor
   collections copying short-lived-but-surviving entries into the major
   heap. *)
let reset e ~seq ~t_fetch =
  let n = Array.length e.srcs in
  e.seq <- seq;
  (* [src_producer], [src_prot], [src_val], [pol_src_pub] and [out_prot]
     are *not* cleared: rename unconditionally writes every
     [src_producer]/[src_prot] slot and [out_prot], [src_val] is written
     before its [src_ready] flag flips (and only read after), and the
     SPT policy's [on_rename] fills every [pol_src_pub] slot before any
     gate reads it — so stale values are dead on arrival.  The
     [wl_next]/[wl_slot] pairs aren't either: a slot is read only while
     it is a wakeup-chain member (walks start at a producer's
     [waiters]), membership is established by [register_waiters]
     overwriting the pair, and both chain teardowns ([complete_entry],
     the squash cleanup) null the member slots they visit.  The loops
     that remain are hand-rolled: [n] is tiny (<= 3) and [Array.fill] is
     an out-of-line C call. *)
  for i = 0 to n - 1 do
    e.src_ready.(i) <- false
  done;
  for i = 0 to Array.length e.dst_val - 1 do
    e.dst_val.(i) <- 0L
  done;
  e.issued <- false;
  e.cycles_left <- -1;
  e.executed <- false;
  e.fault <- false;
  e.port <- -1;
  e.addr <- 0L;
  e.msize <- 0;
  e.addr_ready <- false;
  e.mem_value <- 0L;
  e.mem_prot <- false;
  e.fwd_from <- -1;
  e.pred_target <- -1;
  e.actual_target <- -1;
  e.mispredicted <- false;
  e.resolved <- false;
  e.taint_root <- -1;
  e.access_at_rename <- false;
  e.late_access <- false;
  e.fwd_block_store <- -1;
  e.pred_no_access <- false;
  e.pol_out_pub <- false;
  e.dormant <- false;
  (* The link fields are already null on every pool path: [waiters] is
     nulled by [complete_entry] (commit pooling) or the squash flush,
     [uq_prev]/[bq_prev]/[bq_next] by the unlink that removed the entry
     from its list.  Only [uq_next] needs re-nulling — the free list
     borrows it. *)
  e.waiters_slot <- 0;
  e.uq_next <- null;
  e.t_fetch <- t_fetch;
  e.t_rename <- -1;
  e.t_issue <- -1;
  e.t_complete <- -1

let is_load e = e.mem_kind = M_load
let is_store e = e.mem_kind = M_store
let is_transmitter e = Insn.is_transmitter e.insn.Insn.op

(* Port-capability class for the structural execution-port model.
   Memory kind wins (RET/POP occupy the load AGU path, CALL/PUSH the
   store path — they access memory even though they also redirect
   control); then branches, then the unpipelined mul/div unit. *)
let op_class e : Config.op_class =
  match e.mem_kind with
  | M_load -> Config.Cls_load
  | M_store -> Config.Cls_store
  | M_none -> (
      if e.is_branch then Config.Cls_branch
      else
        match e.insn.Insn.op with
        | Insn.Div _ | Insn.Rem _ | Insn.Binop (Insn.Mul, _, _) ->
            Config.Cls_muldiv
        | _ -> Config.Cls_alu)

(* Does this entry have a protected *sensitive* register operand?  Access
   transmitters (Definition 1) additionally include loads whose sensitive
   memory input is protected, checked at execute via [mem_prot]. *)
let protected_sensitive_reg e =
  let n = Array.length e.srcs in
  let rec loop i =
    i < n
    && ((match snd e.srcs.(i) with
        | Insn.Addr | Insn.Cond_in | Insn.Target | Insn.Divide ->
            e.src_prot.(i)
        | Insn.Data -> false)
       || loop (i + 1))
  in
  loop 0

(* Any protected register input at all (including data inputs). *)
let protected_reg_input e =
  let n = Array.length e.src_prot in
  let rec loop i = i < n && (e.src_prot.(i) || loop (i + 1)) in
  loop 0

let find_src e reg role =
  let n = Array.length e.srcs in
  let rec loop i =
    if i >= n then -1
    else
      let r, ro = e.srcs.(i) in
      if Reg.equal r reg && ro = role then i else loop (i + 1)
  in
  loop 0
