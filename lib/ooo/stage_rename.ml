(* Rename/dispatch stage: drain the fetch buffer into the ROB.

   Owns the rename map (producer/value/protection per architectural
   register) and ROB/LSQ insertion, including ProtISA's output-tag rule
   for unprefixed sub-register writes (Section IV-B1).  Emits
   [On_rename] once the entry is in the ROB — the point where defense
   policies taint.

   Rename is also where the O(active) scheduler learns about an entry:
   it joins the unissued list (and the branch/store/load queues as
   applicable), and when every non-ready source has an un-executed
   in-flight producer the entry is parked *dormant* on one of those
   producers' wakeup chains — the issue scan will not look at it again
   until a producer executes, which is cycle-exact because such an entry
   could neither issue nor emit anything. *)

open Protean_isa
module S = Pipeline_state

(* Register [e]'s wakeup-chain memberships: every non-ready source slot
   whose producer is in flight and un-executed joins that producer's
   waiter chain (cleared again when the producer executes or a squash
   flushes [e]).  When *every* non-ready source is such a slot, [e] also
   goes dormant — the issue scan skips it until a producer executes.  An
   already-executed producer keeps the entry active: its forward may be
   policy-gated, which must emit [On_wakeup_blocked] every cycle the
   entry is considered. *)
let register_waiters (t : S.t) (e : Rob_entry.t) =
  let n = Array.length e.Rob_entry.src_ready in
  let pending = ref false in
  let executed_producer = ref false in
  for i = 0 to n - 1 do
    if not e.Rob_entry.src_ready.(i) then begin
      let p = S.peek t e.Rob_entry.src_producer.(i) in
      if Rob_entry.is_null p || p.Rob_entry.executed then
        executed_producer := true
      else begin
        pending := true;
        e.Rob_entry.wl_next.(i) <- p.Rob_entry.waiters;
        e.Rob_entry.wl_slot.(i) <- p.Rob_entry.waiters_slot;
        p.Rob_entry.waiters <- e;
        p.Rob_entry.waiters_slot <- i
      end
    end
  done;
  if !pending && not !executed_producer then e.Rob_entry.dormant <- true

(* [insn] is the decode of [item.f_pc], re-derived by [run] — the fetch
   slot itself carries only ints. *)
let rename_one (t : S.t) (item : S.fetch_item) (insn : Insn.t) =
  let pc = item.S.f_pc in
  let seq = t.S.next_seq in
  let e =
    if Program.in_bounds t.S.program pc then begin
      (* Recycle a dead entry for this pc when one is pooled (the common
         case in steady-state loops); [Rob_entry.reset] makes it
         bit-identical to a fresh allocation. *)
      let p = S.pool_take t pc insn in
      if not (Rob_entry.is_null p) then begin
        Rob_entry.reset p ~seq ~t_fetch:item.S.f_fetched;
        p
      end
      else
        Rob_entry.create ~srcs:t.S.tmpl_srcs.(pc) ~dsts:t.S.tmpl_dsts.(pc) ~seq
          ~pc ~insn ~t_fetch:item.S.f_fetched ()
    end
    else Rob_entry.create ~seq ~pc ~insn ~t_fetch:item.S.f_fetched ()
  in
  e.Rob_entry.t_rename <- t.S.cycle;
  (* Read sources through the rename map. *)
  let srcs = e.Rob_entry.srcs in
  for i = 0 to Array.length srcs - 1 do
    let r, _role = srcs.(i) in
    let ri = Reg.to_int r in
    let producer = t.S.rmap_producer.(ri) in
    e.Rob_entry.src_producer.(i) <- producer;
    e.Rob_entry.src_prot.(i) <- t.S.rmap_prot.(ri);
    if producer < 0 then begin
      e.Rob_entry.src_val.(i) <- t.S.rmap_value.(ri);
      e.Rob_entry.src_ready.(i) <- true
    end
  done;
  (* ProtISA output tag: PROT-prefixed instructions protect their outputs;
     unprefixed sub-register writes leave the old protection unchanged
     (Section IV-B1). *)
  let subreg_dst =
    match insn.Insn.op with
    | Insn.Mov (Insn.W8, d, _) | Insn.Load (Insn.W8, d, _) -> Some d
    | _ -> None
  in
  e.Rob_entry.out_prot <-
    (match subreg_dst with
    | Some d when not insn.Insn.prot -> t.S.rmap_prot.(Reg.to_int d)
    | _ -> insn.Insn.prot);
  (* Update the rename map. *)
  let dsts = e.Rob_entry.dsts in
  for i = 0 to Array.length dsts - 1 do
    let r = dsts.(i) in
    let ri = Reg.to_int r in
    t.S.rmap_producer.(ri) <- seq;
    match subreg_dst with
    | Some d when (not insn.Insn.prot) && Reg.equal d r -> ()
    | _ -> t.S.rmap_prot.(ri) <- insn.Insn.prot
  done;
  (* Branch prediction bookkeeping. *)
  if e.Rob_entry.is_branch then
    e.Rob_entry.pred_target <- item.S.f_pred_target;
  (* Insert into the ROB (division-free ring wrap). *)
  let idx =
    let i = t.S.head_idx + t.S.count in
    let n = S.rob_size t in
    if i >= n then i - n else i
  in
  if t.S.count = 0 then begin
    t.S.head_idx <- idx;
    t.S.head_seq <- seq
  end;
  t.S.rob.(idx) <- e;
  t.S.count <- t.S.count + 1;
  t.S.next_seq <- seq + 1;
  if Rob_entry.is_load e then begin
    t.S.lq_used <- t.S.lq_used + 1;
    Entryq.push t.S.lsq_loads e
  end;
  if Rob_entry.is_store e then begin
    t.S.sq_used <- t.S.sq_used + 1;
    Entryq.push t.S.lsq_stores e
  end;
  (* Scheduler indexes. *)
  S.uq_push t e;
  if e.Rob_entry.is_branch then begin
    S.bq_push t e;
    if S.wants t Hooks.k_window_open then S.emit t (Hooks.On_window_open e)
  end;
  register_waiters t e;
  t.S.progress <- true;
  if S.wants t Hooks.k_rename then S.emit t (Hooks.On_rename e)

let run (t : S.t) =
  let renamed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !renamed < t.S.cfg.Config.rename_width do
    if S.fb_is_empty t then continue_ := false
    else begin
      let item = S.fb_peek t in
      if item.S.f_ready > t.S.cycle || S.rob_full t then continue_ := false
      else begin
        let pc = item.S.f_pc in
        let insn =
          if Program.in_bounds t.S.program pc then Program.insn t.S.program pc
          else S.halt_insn
        in
        let is_ld = Insn.is_load insn.Insn.op in
        let is_st = Insn.is_store insn.Insn.op in
        if
          (is_ld && t.S.lq_used >= t.S.cfg.Config.lq_size)
          || (is_st && t.S.sq_used >= t.S.cfg.Config.sq_size)
        then continue_ := false
        else begin
          ignore (S.fb_pop t);
          rename_one t item insn;
          incr renamed
        end
      end
    end
  done
