(* Rename/dispatch stage: drain the fetch buffer into the ROB.

   Owns the rename map (producer/value/protection per architectural
   register) and ROB/LSQ insertion, including ProtISA's output-tag rule
   for unprefixed sub-register writes (Section IV-B1).  Emits
   [On_rename] once the entry is in the ROB — the point where defense
   policies taint. *)

open Protean_isa
module S = Pipeline_state

let rename_one (t : S.t) (item : S.fetch_item) =
  let insn = item.S.f_insn in
  let seq = t.S.next_seq in
  let e =
    Rob_entry.create ~seq ~pc:item.S.f_pc ~insn ~t_fetch:item.S.f_fetched
  in
  e.Rob_entry.t_rename <- t.S.cycle;
  (* Read sources through the rename map. *)
  Array.iteri
    (fun i (r, _role) ->
      let ri = Reg.to_int r in
      let producer = t.S.rmap_producer.(ri) in
      e.Rob_entry.src_producer.(i) <- producer;
      e.Rob_entry.src_prot.(i) <- t.S.rmap_prot.(ri);
      if producer < 0 then begin
        e.Rob_entry.src_val.(i) <- t.S.rmap_value.(ri);
        e.Rob_entry.src_ready.(i) <- true
      end)
    e.Rob_entry.srcs;
  (* ProtISA output tag: PROT-prefixed instructions protect their outputs;
     unprefixed sub-register writes leave the old protection unchanged
     (Section IV-B1). *)
  let subreg_dst =
    match insn.Insn.op with
    | Insn.Mov (Insn.W8, d, _) | Insn.Load (Insn.W8, d, _) -> Some d
    | _ -> None
  in
  e.Rob_entry.out_prot <-
    (match subreg_dst with
    | Some d when not insn.Insn.prot -> t.S.rmap_prot.(Reg.to_int d)
    | _ -> insn.Insn.prot);
  (* Update the rename map. *)
  Array.iter
    (fun r ->
      let ri = Reg.to_int r in
      t.S.rmap_producer.(ri) <- seq;
      (match subreg_dst with
      | Some d when (not insn.Insn.prot) && Reg.equal d r -> ()
      | _ -> t.S.rmap_prot.(ri) <- insn.Insn.prot))
    e.Rob_entry.dsts;
  (* Branch prediction bookkeeping. *)
  if e.Rob_entry.is_branch then
    e.Rob_entry.pred_target <- item.S.f_pred_target;
  (* Insert into the ROB. *)
  let idx = (t.S.head_idx + t.S.count) mod S.rob_size t in
  if t.S.count = 0 then begin
    t.S.head_idx <- idx;
    t.S.head_seq <- seq
  end;
  t.S.rob.(idx) <- Some e;
  t.S.count <- t.S.count + 1;
  t.S.next_seq <- seq + 1;
  if Rob_entry.is_load e then t.S.lq_used <- t.S.lq_used + 1;
  if Rob_entry.is_store e then t.S.sq_used <- t.S.sq_used + 1;
  S.emit t (Hooks.On_rename e)

let run (t : S.t) =
  let renamed = ref 0 in
  let continue_ = ref true in
  while !continue_ && !renamed < t.S.cfg.Config.rename_width do
    match Queue.peek_opt t.S.fetch_buf with
    | None -> continue_ := false
    | Some item ->
        if item.S.f_ready > t.S.cycle || S.rob_full t then continue_ := false
        else begin
          let is_ld = Insn.is_load item.S.f_insn.Insn.op in
          let is_st = Insn.is_store item.S.f_insn.Insn.op in
          if
            (is_ld && t.S.lq_used >= t.S.cfg.Config.lq_size)
            || (is_st && t.S.sq_used >= t.S.cfg.Config.sq_size)
          then continue_ := false
          else begin
            ignore (Queue.pop t.S.fetch_buf);
            rename_one t item;
            incr renamed
          end
        end
  done
