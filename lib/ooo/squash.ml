(* The squash engine: flush wrong-path state and restart fetch.

   Used by branch resolution (mispredictions), the memory stage
   (order-violation recovery) and commit (machine clears).  The flush
   itself — ROB truncation, LSQ accounting, rename-map rebuild with
   ProtISA protection replay, RSB clear — is structural state owned
   here; observers learn about it from the [On_squash] event emitted
   once the pipeline is consistent again.

   The flush also rebuilds every scheduler index exactly:
   - unissued/branch lists: truncated from the tail (both seq-ascending),
   - in-flight deque and live store/load queues: filtered/truncated,
   - wakeup chains: flushed consumers are removed from surviving
     producers' chains.  A flushed *producer*'s chain needs no care —
     its waiters are younger than it, hence also flushed.
   Truncation must be eager (not lazy tombstoning) because squashed
   sequence numbers are reused: a stale entry left in an index could
   later alias a re-renamed entry with the same seq. *)

open Protean_isa
module S = Pipeline_state

(* Remove every entry with seq >= [from_seq] and refetch at [new_pc].
   Flushed entries are parked in [squash_scratch] and released to the
   per-pc entry pool only once every index is consistent — the list
   truncations and the wakeup-chain cleanup below still read (and write)
   their link fields. *)
let flush (t : S.t) ~from_seq ~new_pc =
  let flushed = ref 0 in
  let keep = from_seq - t.S.head_seq in
  let keep = if keep < 0 then 0 else keep in
  for i = keep to t.S.count - 1 do
    let idx =
      let j = t.S.head_idx + i in
      let n = S.rob_size t in
      if j >= n then j - n else j
    in
    let e = t.S.rob.(idx) in
    if not (Rob_entry.is_null e) then begin
      t.S.squash_scratch.(!flushed) <- e;
      incr flushed;
      if Rob_entry.is_load e then t.S.lq_used <- t.S.lq_used - 1;
      if Rob_entry.is_store e then t.S.sq_used <- t.S.sq_used - 1;
      (* Release an execution port held across cycles by a flushed,
         still-computing unpipelined entry.  The cycles_left > 0 guard
         matters: such a holder's [port_busy_until] lies in the future,
         so nothing else can have re-bound the port since it issued —
         the reset cannot free a port an older survivor occupies.  (A
         finished-but-writeback-deferred entry holds no port: its
         busy-until already lapsed.) *)
      (match t.S.cfg.Config.ports with
      | Some pc
        when e.Rob_entry.port >= 0
             && (not e.Rob_entry.executed)
             && e.Rob_entry.cycles_left > 0
             && not
                  pc.Config.cls_pipelined.(Config.op_class_index
                                             (Rob_entry.op_class e)) ->
          t.S.port_busy_until.(e.Rob_entry.port) <- 0
      | _ -> ());
      e.Rob_entry.dormant <- false;
      e.Rob_entry.waiters <- Rob_entry.null
    end;
    t.S.rob.(idx) <- Rob_entry.null
  done;
  t.S.count <- min t.S.count keep;
  (* Squashed sequence numbers are reused so the ROB ring stays
     contiguous.  Every surviving reference (source producers, taint
     roots, forwarding stores) points at strictly older entries, so no
     alias with a reused number can arise. *)
  t.S.next_seq <- t.S.head_seq + t.S.count;
  (* Scheduler indexes: drop everything from [from_seq] on. *)
  while
    (not (Rob_entry.is_null t.S.uq_tail))
    && t.S.uq_tail.Rob_entry.seq >= from_seq
  do
    S.uq_unlink t t.S.uq_tail
  done;
  while
    (not (Rob_entry.is_null t.S.bq_tail))
    && t.S.bq_tail.Rob_entry.seq >= from_seq
  do
    let b = t.S.bq_tail in
    S.bq_unlink t b;
    if S.wants t Hooks.k_window_close then
      S.emit t (Hooks.On_window_close { entry = b; cause = Hooks.W_flushed })
  done;
  Entryq.truncate_ge t.S.lsq_stores from_seq;
  Entryq.truncate_ge t.S.lsq_loads from_seq;
  Entryq.filter_lt t.S.inflight from_seq;
  (* Remove flushed consumers from surviving producers' wakeup chains
     (chain nodes are (entry, source-slot) pairs; surviving members keep
     their membership, rebuilt by prepending). *)
  S.iter_rob t (fun p ->
      if not (Rob_entry.is_null p.Rob_entry.waiters) then begin
        let kept = ref Rob_entry.null and kept_slot = ref 0 in
        let c = ref p.Rob_entry.waiters in
        let s = ref p.Rob_entry.waiters_slot in
        while not (Rob_entry.is_null !c) do
          let cur = !c and slot = !s in
          c := cur.Rob_entry.wl_next.(slot);
          s := cur.Rob_entry.wl_slot.(slot);
          if cur.Rob_entry.seq < from_seq then begin
            cur.Rob_entry.wl_next.(slot) <- !kept;
            cur.Rob_entry.wl_slot.(slot) <- !kept_slot;
            kept := cur;
            kept_slot := slot
          end
          else begin
            cur.Rob_entry.wl_next.(slot) <- Rob_entry.null;
            cur.Rob_entry.wl_slot.(slot) <- -1
          end
        done;
        p.Rob_entry.waiters <- !kept;
        p.Rob_entry.waiters_slot <- !kept_slot
      end);
  let scratched = !flushed in
  flushed := !flushed + S.fb_length t;
  S.fb_clear t;
  (* Rebuild the rename map from the committed state plus surviving
     entries, replaying ProtISA's protection updates in order. *)
  Array.iteri
    (fun ri _ ->
      t.S.rmap_producer.(ri) <- -1;
      t.S.rmap_value.(ri) <- t.S.regs.(ri);
      t.S.rmap_prot.(ri) <- t.S.reg_prot.(ri))
    t.S.rmap_producer;
  S.iter_rob t (fun e ->
      let insn = e.Rob_entry.insn in
      let subreg_dst =
        match insn.Insn.op with
        | Insn.Mov (Insn.W8, d, _) | Insn.Load (Insn.W8, d, _) -> Some d
        | _ -> None
      in
      Array.iter
        (fun r ->
          let ri = Reg.to_int r in
          t.S.rmap_producer.(ri) <- e.Rob_entry.seq;
          match subreg_dst with
          | Some d when (not insn.Insn.prot) && Reg.equal d r -> ()
          | _ -> t.S.rmap_prot.(ri) <- insn.Insn.prot)
        e.Rob_entry.dsts);
  Branch_pred.rsb_clear t.S.bp;
  (* Every index is consistent: recycle the flushed entries.  Their
     remaining link-field garbage is reset on reuse. *)
  for i = 0 to scratched - 1 do
    S.pool_put t t.S.squash_scratch.(i);
    t.S.squash_scratch.(i) <- Rob_entry.null
  done;
  t.S.fetch_stalled <- false;
  t.S.fetch_pc <- new_pc;
  t.S.progress <- true;
  if S.wants t Hooks.k_squash then
    S.emit t (Hooks.On_squash { from_seq; new_pc; flushed = !flushed })
