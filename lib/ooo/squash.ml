(* The squash engine: flush wrong-path state and restart fetch.

   Used by branch resolution (mispredictions), the memory stage
   (order-violation recovery) and commit (machine clears).  The flush
   itself — ROB truncation, LSQ accounting, rename-map rebuild with
   ProtISA protection replay, RSB clear — is structural state owned
   here; observers learn about it from the [On_squash] event emitted
   once the pipeline is consistent again. *)

open Protean_isa
module S = Pipeline_state

(* Remove every entry with seq >= [from_seq] and refetch at [new_pc]. *)
let flush (t : S.t) ~from_seq ~new_pc =
  let flushed = ref 0 in
  let keep = from_seq - t.S.head_seq in
  let keep = if keep < 0 then 0 else keep in
  for i = keep to t.S.count - 1 do
    let idx = (t.S.head_idx + i) mod S.rob_size t in
    (match t.S.rob.(idx) with
    | Some e ->
        incr flushed;
        if Rob_entry.is_load e then t.S.lq_used <- t.S.lq_used - 1;
        if Rob_entry.is_store e then t.S.sq_used <- t.S.sq_used - 1
    | None -> ());
    t.S.rob.(idx) <- None
  done;
  t.S.count <- min t.S.count keep;
  (* Squashed sequence numbers are reused so the ROB ring stays
     contiguous.  Every surviving reference (source producers, taint
     roots, forwarding stores) points at strictly older entries, so no
     alias with a reused number can arise. *)
  t.S.next_seq <- t.S.head_seq + t.S.count;
  flushed := !flushed + Queue.length t.S.fetch_buf;
  Queue.clear t.S.fetch_buf;
  (* Rebuild the rename map from the committed state plus surviving
     entries, replaying ProtISA's protection updates in order. *)
  Array.iteri
    (fun ri _ ->
      t.S.rmap_producer.(ri) <- -1;
      t.S.rmap_value.(ri) <- t.S.regs.(ri);
      t.S.rmap_prot.(ri) <- t.S.reg_prot.(ri))
    t.S.rmap_producer;
  S.iter_rob t (fun e ->
      let insn = e.Rob_entry.insn in
      let subreg_dst =
        match insn.Insn.op with
        | Insn.Mov (Insn.W8, d, _) | Insn.Load (Insn.W8, d, _) -> Some d
        | _ -> None
      in
      Array.iter
        (fun r ->
          let ri = Reg.to_int r in
          t.S.rmap_producer.(ri) <- e.Rob_entry.seq;
          match subreg_dst with
          | Some d when (not insn.Insn.prot) && Reg.equal d r -> ()
          | _ -> t.S.rmap_prot.(ri) <- insn.Insn.prot)
        e.Rob_entry.dsts);
  Branch_pred.rsb_clear t.S.bp;
  t.S.fetch_stalled <- false;
  t.S.fetch_pc <- new_pc;
  S.invalidate_unresolved_memo t;
  S.emit t (Hooks.On_squash { from_seq; new_pc; flushed = !flushed })
