(* Set-associative cache with LRU replacement and, for the L1D, the
   per-byte protection bits of ProtISA's memory ProtSet tracking
   (Section IV-C2a).

   The cache models timing and tag state only; data always comes from the
   memory module (architectural state) or the LSQ.  Protection bits are
   attached to L1D lines: a line fill starts with every byte protected
   (evictions make ProtISA forget what was unprotected), committing
   unprefixed loads clear the bits of accessed bytes, and stores write
   their data operand's protection.

   Protection tracking is per-instance ([create ~prot:false] for the
   L2/L3, whose bytes ProtISA never tracks): untracked caches share one
   dummy protection buffer between all lines and skip the per-fill
   reset.  Sets are materialized lazily on the first miss that touches
   them — an empty set behaves exactly like one whose ways are all
   invalid, so a multi-megabyte L3 costs one pointer per set to create
   instead of half a million line records. *)

type line = {
  mutable tag : int64;
  mutable valid : bool;
  mutable lru : int; (* higher = more recently used *)
  mutable prot : Bytes.t; (* one byte per line byte: 1 = protected *)
}

type t = {
  cfg : Config.cache_cfg;
  nsets : int;
  lbits : int; (* log2 line size *)
  track_prot : bool;
  shared_prot : Bytes.t; (* every line's [prot] when not tracking *)
  sets : line array array; (* [||] = untouched set (all ways invalid) *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(prot = true) (cfg : Config.cache_cfg) =
  let nsets = Config.cache_sets cfg in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  {
    cfg;
    nsets;
    lbits = log2 cfg.line;
    track_prot = prot;
    shared_prot = Bytes.make cfg.line '\001';
    sets = Array.make nsets [||];
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let set_index t addr =
  Int64.to_int
    (Int64.rem
       (Int64.shift_right_logical addr t.lbits)
       (Int64.of_int t.nsets))

let tag_of t addr = Int64.shift_right_logical addr t.lbits
let line_addr t addr = Int64.shift_left (tag_of t addr) t.lbits
let line_offset t addr = Int64.to_int (Int64.logand addr (Int64.of_int (t.cfg.line - 1)))

(* Materialize a set's ways on first (miss) use. *)
let get_set t idx =
  let s = t.sets.(idx) in
  if Array.length s > 0 then s
  else begin
    let s =
      Array.init t.cfg.ways (fun _ ->
          {
            tag = 0L;
            valid = false;
            lru = 0;
            prot =
              (if t.track_prot then Bytes.make t.cfg.line '\001'
               else t.shared_prot);
          })
    in
    t.sets.(idx) <- s;
    s
  end

(* Read-only lookup: an unmaterialized set holds nothing. *)
let find t addr =
  let set = t.sets.(set_index t addr) in
  let tag = tag_of t addr in
  let rec loop i =
    if i >= Array.length set then None
    else if set.(i).valid && Int64.equal set.(i).tag tag then Some set.(i)
    else loop (i + 1)
  in
  loop 0

let touch t line =
  t.clock <- t.clock + 1;
  line.lru <- t.clock

type result = {
  hit : bool;
  set : int;
  tag : int64;
  evicted : int64 option; (* line address of the victim, if any *)
}

(* Access the line containing [addr]: update LRU, allocate on miss
   (evicting the LRU way).  Newly-filled lines have all bytes protected. *)
let access t addr =
  t.accesses <- t.accesses + 1;
  let set_idx = set_index t addr in
  let tag = tag_of t addr in
  match find t addr with
  | Some line ->
      touch t line;
      { hit = true; set = set_idx; tag; evicted = None }
  | None ->
      t.misses <- t.misses + 1;
      let set = get_set t set_idx in
      let victim =
        Array.fold_left
          (fun acc line ->
            match acc with
            | None -> Some line
            | Some best ->
                if (not line.valid) && best.valid then Some line
                else if line.valid = best.valid && line.lru < best.lru then
                  Some line
                else acc)
          None set
      in
      let line = Option.get victim in
      let evicted =
        if line.valid then Some (Int64.shift_left line.tag t.lbits) else None
      in
      line.valid <- true;
      line.tag <- tag;
      if t.track_prot then Bytes.fill line.prot 0 t.cfg.line '\001';
      touch t line;
      { hit = false; set = set_idx; tag; evicted }

let _probe t addr = find t addr

(* --- Protection bits ------------------------------------------------ *)

(* Are any of the [size] bytes at [addr] protected?  Bytes not present in
   the cache are protected by definition. *)
let protected_bytes t addr size =
  let rec loop i =
    if i >= size then false
    else
      let a = Int64.add addr (Int64.of_int i) in
      match find t a with
      | None -> true
      | Some line ->
          Bytes.get line.prot (line_offset t a) = '\001' || loop (i + 1)
  in
  loop 0

(* Set the protection of the [size] bytes at [addr] that are present. *)
let set_protection t addr size ~protected =
  let v = if protected then '\001' else '\000' in
  for i = 0 to size - 1 do
    let a = Int64.add addr (Int64.of_int i) in
    match find t a with
    | None -> ()
    | Some line -> Bytes.set line.prot (line_offset t a) v
  done

let stats t = (t.accesses, t.misses)
