(* The pipeline hook bus.

   Every cross-cutting concern — statistics, the hardware observer trace,
   the invariant checker, fault injection and the Policy defense
   notifications — observes the core through one registration point
   instead of hand-threaded callbacks.  Stage modules *emit* typed
   events at fixed program points; subscribers react.

   Contract (see docs/architecture.md for the full table):
   - Events are emitted synchronously, in program order, at exactly the
     program points listed below; subscribers run in registration order.
   - Subscribers may mutate bookkeeping state they own (stats counters,
     the trace, policy-private tables, ROB-entry policy fields) but must
     not touch the pipeline's structural state (ROB ring, rename map,
     LSQ counters, fetch state) — the stage modules own those.
   - A subscriber may raise (the invariant checker's [Fail] mode raises
     [Pipeline_state.Sim_fault]); the emission point then unwinds, so
     raising subscribers should be registered last.
   - [emit] iterates a snapshot of the subscriber array: a handler that
     subscribes or unsubscribes (itself included) takes effect from the
     *next* emission, never mid-delivery.

   Interest mask: every event has a small integer [kind]; each
   subscriber declares the kinds it consumes and the bus keeps
   [interest], the OR of all subscriber masks.  Emission sites that
   would allocate an event record guard on [wanted bus kind] first, so
   an event nobody listens to costs one load and one bit test — no
   allocation, no subscriber loop.  [emit] additionally filters
   per-subscriber, so a handler never sees a kind it did not declare.

   The bus is parameterized over the state type to break the circular
   dependency with [Pipeline_state] (whose record carries its bus). *)

type mem_step =
  | M_tlb_fill of int64 (* page *)
  | M_fill of { level : int; set : int; tag : int64 }
  | M_evict of { level : int; line : int64 }

(* How a speculation window (the lifetime of an unresolved branch in the
   branch queue) ended. *)
type window_close_cause =
  | W_resolved (* branch resolved correctly: the window never diverged *)
  | W_mispredicted (* the branch itself mispredicted and squashed *)
  | W_flushed (* an older mispredict/clear truncated the branch queue *)

type event =
  | On_fetch of { pc : int; insn : Protean_isa.Insn.t }
      (* an instruction entered the fetch buffer *)
  | On_rename of Rob_entry.t
      (* entry renamed and inserted into the ROB (the Policy taint point) *)
  | On_wakeup of { consumer : Rob_entry.t; producer : Rob_entry.t }
      (* an executed in-flight producer forwarded a value to a source *)
  | On_wakeup_blocked of { consumer : Rob_entry.t; producer : Rob_entry.t }
      (* the policy refused the forward this cycle (wakeup delay) *)
  | On_exec_blocked of Rob_entry.t
      (* a ready transmitter was denied execution this cycle *)
  | On_resolve_blocked of Rob_entry.t
      (* an executed branch was denied resolution this cycle *)
  | On_forward of { load : Rob_entry.t; store : Rob_entry.t }
      (* store-to-load forwarding hit in the LSQ *)
  | On_load_executed of Rob_entry.t
      (* a load (or pop/ret) read memory or the LSQ *)
  | On_mem_access of {
      addr : int64;
      l1_hit : bool;
      latency : int;
      path : mem_step list;
          (* fills/evicts down the hierarchy, in order; built only when
             some subscriber declared [k_mem_path] *)
    }
  | On_div_busy of { latency : int } (* the divider was occupied *)
  | On_mispredict of Rob_entry.t
      (* a mispredicted branch won the squash slot this cycle *)
  | On_order_violation of { store : Rob_entry.t; load : Rob_entry.t }
      (* a store's address resolved under an already-executed younger load *)
  | On_squash of { from_seq : int; new_pc : int; flushed : int }
      (* emitted after the ROB flush and rename-map rebuild *)
  | On_machine_clear (* a faulting instruction committed *)
  | On_commit of Rob_entry.t
      (* after architectural effects, before ROB removal *)
  | On_cycle_end (* end of [Pipeline.step], after the watchdog *)
  | On_stage of int
      (* a pipeline stage finished this cycle (stage id, see [Profile]);
         only emitted when a subscriber declared [k_stage] *)
  | On_port_bound of { port : int; entry : Rob_entry.t }
      (* an issuing entry won execution port [port] (structural model) *)
  | On_port_stall of Rob_entry.t
      (* a ready entry found no compatible free port this cycle *)
  | On_wb_queued of Rob_entry.t
      (* a finished computation was deferred by the CDB broadcast budget *)
  | On_skip of { cycles : int }
      (* event-driven skip-ahead advanced the cycle counter by [cycles]
         quiet cycles in one jump (emitted once per skipped span, after
         the counter moved) *)
  | On_window_open of Rob_entry.t
      (* an unresolved branch entered the branch queue at rename: a
         speculation window opened (the entry is its trigger) *)
  | On_window_close of { entry : Rob_entry.t; cause : window_close_cause }
      (* the branch left the branch queue: resolved correctly,
         mispredicted (emitted before the squash), or flushed by an
         older squash *)

(* Event kinds: one bit per constructor, plus pseudo-kinds that gate
   optional *detail* inside an event ([k_mem_path] gates the [path] list
   of [On_mem_access]). *)

type kind = int

let k_fetch = 0
let k_rename = 1
let k_wakeup = 2
let k_wakeup_blocked = 3
let k_exec_blocked = 4
let k_resolve_blocked = 5
let k_forward = 6
let k_load_executed = 7
let k_mem_access = 8
let k_div_busy = 9
let k_mispredict = 10
let k_order_violation = 11
let k_squash = 12
let k_machine_clear = 13
let k_commit = 14
let k_cycle_end = 15
let k_stage = 16
let k_mem_path = 17 (* pseudo: request the On_mem_access fill/evict path *)
let k_port_bound = 18
let k_port_stall = 19
let k_wb_queued = 20
let k_skip = 21
let k_window_open = 22
let k_window_close = 23
let n_kinds = 24
let mask_all = (1 lsl n_kinds) - 1

let kind_of_event = function
  | On_fetch _ -> k_fetch
  | On_rename _ -> k_rename
  | On_wakeup _ -> k_wakeup
  | On_wakeup_blocked _ -> k_wakeup_blocked
  | On_exec_blocked _ -> k_exec_blocked
  | On_resolve_blocked _ -> k_resolve_blocked
  | On_forward _ -> k_forward
  | On_load_executed _ -> k_load_executed
  | On_mem_access _ -> k_mem_access
  | On_div_busy _ -> k_div_busy
  | On_mispredict _ -> k_mispredict
  | On_order_violation _ -> k_order_violation
  | On_squash _ -> k_squash
  | On_machine_clear -> k_machine_clear
  | On_commit _ -> k_commit
  | On_cycle_end -> k_cycle_end
  | On_stage _ -> k_stage
  | On_port_bound _ -> k_port_bound
  | On_port_stall _ -> k_port_stall
  | On_wb_queued _ -> k_wb_queued
  | On_skip _ -> k_skip
  | On_window_open _ -> k_window_open
  | On_window_close _ -> k_window_close

let mask_of_kinds kinds =
  List.fold_left (fun m k -> m lor (1 lsl k)) 0 kinds

type 'state handler = 'state -> event -> unit

type 'state subscriber = {
  name : string;
  mask : int;
  handler : 'state handler;
  on_remove : (unit -> unit) option;
      (* finalizer run by [unsubscribe]: stateful subscribers (the
         profiler) flush partial samples here instead of dropping them *)
}

type 'state t = {
  mutable subs : 'state subscriber array;
  mutable interest : int; (* OR of every subscriber's mask *)
}

let create () = { subs = [||]; interest = 0 }

(* Fast-path guard for emission sites: does anyone care about [kind]? *)
let wanted bus kind = bus.interest land (1 lsl kind) <> 0

(* Subscribe/unsubscribe replace [bus.subs] wholesale (never mutate the
   array in place): [emit] reads the array once per emission, so handlers
   may re-register freely without corrupting an in-flight delivery. *)

let subscribe ?kinds ?on_remove bus ~name handler =
  let mask =
    match kinds with None -> mask_all | Some ks -> mask_of_kinds ks
  in
  bus.subs <- Array.append bus.subs [| { name; mask; handler; on_remove } |];
  bus.interest <- bus.interest lor mask

let unsubscribe bus name =
  let old = bus.subs in
  let n = Array.length old in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    if old.(i).name <> name then incr kept
  done;
  if !kept <> n then begin
    (if !kept = 0 then bus.subs <- [||]
     else begin
       let fresh = Array.make !kept old.(0) in
       let j = ref 0 in
       for i = 0 to n - 1 do
         if old.(i).name <> name then begin
           fresh.(!j) <- old.(i);
           incr j
         end
       done;
       bus.subs <- fresh
     end);
    (* Recompute interest so the last subscriber of a kind leaving also
       clears its bit — emission sites go back to the zero-cost path. *)
    let interest = ref 0 in
    Array.iter (fun s -> interest := !interest lor s.mask) bus.subs;
    bus.interest <- !interest;
    (* Run finalizers after the subscriber array is consistent: an
       [on_remove] that re-subscribes or emits must see the bus without
       the departed subscriber. *)
    for i = 0 to n - 1 do
      if old.(i).name = name then
        match old.(i).on_remove with None -> () | Some f -> f ()
    done
  end

let subscribers bus = Array.to_list (Array.map (fun s -> s.name) bus.subs)

let emit bus state ev =
  let subs = bus.subs (* snapshot *) in
  let m = 1 lsl kind_of_event ev in
  for i = 0 to Array.length subs - 1 do
    let s = subs.(i) in
    if s.mask land m <> 0 then s.handler state ev
  done
