(* The pipeline hook bus.

   Every cross-cutting concern — statistics, the hardware observer trace,
   the invariant checker, fault injection and the Policy defense
   notifications — observes the core through one registration point
   instead of hand-threaded callbacks.  Stage modules *emit* typed
   events at fixed program points; subscribers react.

   Contract (see docs/architecture.md for the full table):
   - Events are emitted synchronously, in program order, at exactly the
     program points listed below; subscribers run in registration order.
   - Subscribers may mutate bookkeeping state they own (stats counters,
     the trace, policy-private tables, ROB-entry policy fields) but must
     not touch the pipeline's structural state (ROB ring, rename map,
     LSQ counters, fetch state) — the stage modules own those.
   - A subscriber may raise (the invariant checker's [Fail] mode raises
     [Pipeline_state.Sim_fault]); the emission point then unwinds, so
     raising subscribers should be registered last.

   The bus is parameterized over the state type to break the circular
   dependency with [Pipeline_state] (whose record carries its bus). *)

type mem_step =
  | M_tlb_fill of int64 (* page *)
  | M_fill of { level : int; set : int; tag : int64 }
  | M_evict of { level : int; line : int64 }

type event =
  | On_fetch of { pc : int; insn : Protean_isa.Insn.t }
      (* an instruction entered the fetch buffer *)
  | On_rename of Rob_entry.t
      (* entry renamed and inserted into the ROB (the Policy taint point) *)
  | On_wakeup of { consumer : Rob_entry.t; producer : Rob_entry.t }
      (* an executed in-flight producer forwarded a value to a source *)
  | On_wakeup_blocked of { consumer : Rob_entry.t; producer : Rob_entry.t }
      (* the policy refused the forward this cycle (wakeup delay) *)
  | On_exec_blocked of Rob_entry.t
      (* a ready transmitter was denied execution this cycle *)
  | On_resolve_blocked of Rob_entry.t
      (* an executed branch was denied resolution this cycle *)
  | On_forward of { load : Rob_entry.t; store : Rob_entry.t }
      (* store-to-load forwarding hit in the LSQ *)
  | On_load_executed of Rob_entry.t
      (* a load (or pop/ret) read memory or the LSQ *)
  | On_mem_access of {
      addr : int64;
      l1_hit : bool;
      latency : int;
      path : mem_step list; (* fills/evicts down the hierarchy, in order *)
    }
  | On_div_busy of { latency : int } (* the divider was occupied *)
  | On_mispredict of Rob_entry.t
      (* a mispredicted branch won the squash slot this cycle *)
  | On_order_violation of { store : Rob_entry.t; load : Rob_entry.t }
      (* a store's address resolved under an already-executed younger load *)
  | On_squash of { from_seq : int; new_pc : int; flushed : int }
      (* emitted after the ROB flush and rename-map rebuild *)
  | On_machine_clear (* a faulting instruction committed *)
  | On_commit of Rob_entry.t
      (* after architectural effects, before ROB removal *)
  | On_cycle_end (* end of [Pipeline.step], after the watchdog *)

type 'state handler = 'state -> event -> unit
type 'state subscriber = { name : string; handler : 'state handler }
type 'state t = { mutable subs : 'state subscriber array }

let create () = { subs = [||] }

let subscribe bus ~name handler =
  bus.subs <- Array.append bus.subs [| { name; handler } |]

let unsubscribe bus name =
  bus.subs <-
    Array.of_list (List.filter (fun s -> s.name <> name) (Array.to_list bus.subs))

let subscribers bus = Array.to_list (Array.map (fun s -> s.name) bus.subs)

let emit bus state ev =
  let subs = bus.subs in
  for i = 0 to Array.length subs - 1 do
    subs.(i).handler state ev
  done
