(* Lockstep multicore simulation for the multi-thread (PARSEC-style)
   workloads: one pipeline per thread, sharing the last-level cache, all
   stepped cycle-by-cycle; the run ends when every core has halted
   (runtime = the slowest thread, a barrier at program end).

   Threads operate on disjoint address spaces (each core has its own
   memory image), so no coherence traffic is modelled; the shared L3
   still creates the capacity interactions that matter for the
   evaluation's normalized runtimes.

   Each core is the same stage-module composition as a single-core run
   ([Pipeline.step] = commit → resolve → execute → rename → fetch over
   the core's [Pipeline_state]), including the per-core watchdog and,
   when requested, a per-core invariant checker subscribed to the
   core's hook bus — so a deadlocked or corrupted core raises a
   structured [Pipeline.Sim_fault] (tagged with its core index in
   [fault_core]) instead of silently burning fuel. *)

type result = {
  cycles : int;
  per_core : Pipeline.result array;
  finished : bool;
}

(* [on_core i t] runs once per freshly created core, before the first
   cycle — the registration point for per-core observers (profilers). *)
let run ?squash_bug ?spec_model ?decode ?(fuel = 10_000_000)
    ?(watchdog = Pipeline.default_watchdog) ?(invariants = Invariants.Off)
    ?invariant_every ?on_core (cfg : Config.t)
    ~(make_policy : unit -> Policy.t)
    (programs : Protean_isa.Program.t array) =
  let shared_l3 = Option.map (Cache.create ~prot:false) cfg.Config.l3 in
  let cores =
    Array.mapi
      (fun i program ->
        (* [decode], when given, carries one precomputed template pair
           per core program (see [Pipeline.decode_program]). *)
        let decode =
          match decode with Some d -> Some d.(i) | None -> None
        in
        Pipeline.create ?squash_bug ?spec_model ?shared_l3 ?decode cfg
          (make_policy ()) program ~overlays:[])
      programs
  in
  (match invariants with
  | Invariants.Off -> ()
  | mode ->
      Array.iter
        (fun core -> Invariants.attach ?every:invariant_every mode core)
        cores);
  (match on_core with
  | Some f -> Array.iteri f cores
  | None -> ());
  let cycles = ref 0 in
  let all_done () = Array.for_all Pipeline.is_done cores in
  (* Joint skip-ahead: per-core stepping never skips (a lone core
     jumping would break the lockstep clock every core's shared-L3
     interactions assume), but when a lockstep cycle ends with *every*
     live core quiet, all of them can jump together to the earliest of
     their next-event horizons.  Quiet cores touch no shared state (any
     L3 access coincides with per-core progress), so the joint jump is
     bit-exact for the same reason the single-core one is.  Live cores
     share the lockstep clock (a halted core's clock freezes, and its
     [quiet] is false), so one minimum serves them all; capping by
     [fuel] makes the lockstep loop terminate on the exact cycle the
     spinning run would. *)
  while (not (all_done ())) && !cycles < fuel do
    Array.iteri
      (fun i core ->
        if not (Pipeline.is_done core) then
          try Pipeline.step ~watchdog core
          with Pipeline.Sim_fault f ->
            raise (Pipeline.Sim_fault { f with Pipeline.fault_core = i }))
      cores;
    incr cycles;
    let live = ref 0 in
    let all_quiet = ref true in
    Array.iter
      (fun core ->
        if not (Pipeline.is_done core) then begin
          incr live;
          all_quiet := !all_quiet && Pipeline.quiet core
        end)
      cores;
    if !live > 0 && !all_quiet then begin
      let target = ref fuel in
      Array.iter
        (fun core ->
          if not (Pipeline.is_done core) then
            target :=
              min !target (Pipeline.skip_target ~watchdog ~until:fuel core))
        cores;
      if !target > !cycles then begin
        Array.iter
          (fun core ->
            if not (Pipeline.is_done core) then
              Pipeline.apply_skip core ~target:!target)
          cores;
        cycles := !target
      end
    end
  done;
  {
    cycles = !cycles;
    per_core = Array.map Pipeline.finish cores;
    finished = all_done ();
  }
