(* Lockstep multicore simulation for the multi-thread (PARSEC-style)
   workloads: one pipeline per thread, sharing the last-level cache, all
   stepped cycle-by-cycle; the run ends when every core has halted
   (runtime = the slowest thread, a barrier at program end).

   Threads operate on disjoint address spaces (each core has its own
   memory image), so no coherence traffic is modelled; the shared L3
   still creates the capacity interactions that matter for the
   evaluation's normalized runtimes.

   Each core is the same stage-module composition as a single-core run
   ([Pipeline.step] = commit → resolve → execute → rename → fetch over
   the core's [Pipeline_state]), including the per-core watchdog and,
   when requested, a per-core invariant checker subscribed to the
   core's hook bus — so a deadlocked or corrupted core raises a
   structured [Pipeline.Sim_fault] (tagged with its core index in
   [fault_core]) instead of silently burning fuel. *)

type result = {
  cycles : int;
  per_core : Pipeline.result array;
  finished : bool;
}

(* [on_core i t] runs once per freshly created core, before the first
   cycle — the registration point for per-core observers (profilers). *)
let run ?squash_bug ?spec_model ?(fuel = 10_000_000)
    ?(watchdog = Pipeline.default_watchdog) ?(invariants = Invariants.Off)
    ?invariant_every ?on_core (cfg : Config.t)
    ~(make_policy : unit -> Policy.t)
    (programs : Protean_isa.Program.t array) =
  let shared_l3 = Option.map (Cache.create ~prot:false) cfg.Config.l3 in
  let cores =
    Array.map
      (fun program ->
        Pipeline.create ?squash_bug ?spec_model ?shared_l3 cfg (make_policy ())
          program ~overlays:[])
      programs
  in
  (match invariants with
  | Invariants.Off -> ()
  | mode ->
      Array.iter
        (fun core -> Invariants.attach ?every:invariant_every mode core)
        cores);
  (match on_core with
  | Some f -> Array.iteri f cores
  | None -> ());
  let cycles = ref 0 in
  let all_done () = Array.for_all Pipeline.is_done cores in
  while (not (all_done ())) && !cycles < fuel do
    Array.iteri
      (fun i core ->
        if not (Pipeline.is_done core) then
          try Pipeline.step ~watchdog core
          with Pipeline.Sim_fault f ->
            raise (Pipeline.Sim_fault { f with Pipeline.fault_core = i }))
      cores;
    incr cycles
  done;
  {
    cycles = !cycles;
    per_core = Array.map Pipeline.finish cores;
    finished = all_done ();
  }
