(** The AMuLeT* fuzzing loop (Section VII-B): relational testing of
    microarchitectures against hardware-software security contracts.

    For each random program and input pair: run the SEQ contract executor
    on both inputs and skip the pair unless the traces are equal; run the
    hardware configuration on both inputs recording attacker-visible
    events; report a violation when the adversary's views differ;
    classify it as a false positive when the committed instruction
    streams differ (sequential, not transient, divergence — the automated
    post-processing filter of Section VII-B1e).

    Long campaigns additionally get a robustness layer: a per-program
    exception barrier with retry-once-then-skip ([run_resilient]),
    watchdog-enforced per-simulation cycle budgets, counterexample
    shrinking, JSON checkpoint/resume, and a fault-injection self-test
    ([self_test]) that verifies the campaign would actually flag a broken
    defense. *)

open Protean_isa
open Protean_arch
open Protean_ooo

type adversary =
  | Cache_tlb  (** AMuLeT's default: data-cache and TLB tag changes *)
  | Timing
      (** AMuLeT*'s addition: per-stage cycles of committed instructions,
          squash timing and divider activity — what an SMT receiver sees *)

val adversary_name : adversary -> string

type instrumentation = I_none | I_pass of Protean_protcc.Protcc.pass

type campaign = {
  seed : int;
  programs : int;
  inputs_per_program : int;
  gen_klass : Gen.klass_gen;
  mode_of : Observer.typing -> Observer.mode;
      (** contract observer mode (may consume the ProtCC-CTS typing) *)
  instrumentation : instrumentation;
  adversary : adversary;
  config : Config.t;
  squash_bug : bool;
  spec_model : Policy.spec_model;
  timeout_cycles : int option;
      (** per-simulation watchdog budget: a hardware run exceeding it
          raises {!Pipeline.Sim_fault}, which {!run_resilient} turns into
          a reported per-program skip *)
  check_certs : bool;
      (** audit each instrumented program's protection certificates
          against the SEQ executor on the campaign's own input pairs —
          every campaign doubles as a translation-validation soundness
          audit of ProtCC *)
  cert_fault : Protean_defense.Fault_inject.cert_mode option;
      (** pass-mutation injection: compile results (binary and/or
          certificates) are mutated as by a broken pass; a campaign with
          [check_certs] must then report certificate violations *)
}

val default_campaign : campaign

type outcome = {
  mutable tests : int;  (** contract-equivalent pairs compared *)
  mutable skipped : int;  (** pairs filtered by contract-equivalence *)
  mutable violations : int;
  mutable false_positives : int;
  mutable example : (int * int) option;
      (** (program seed, input index) of the first violation *)
  mutable certs_checked : int;  (** certificates audited ([check_certs]) *)
  mutable cert_claims : int;  (** individual (pc, register) claims *)
  mutable cert_violations : int;
  mutable cert_example : string option;
      (** first certificate violation, rendered *)
}

val program_seed : campaign -> int -> int
(** Generator seed of the campaign's [index]-th program. *)

val run : campaign -> Protean_defense.Defense.t -> outcome
(** The plain campaign loop: no barrier, first simulator fault aborts. *)

(** {1 Per-program primitives}

    The campaign decomposed per program, for parallel drivers
    ([Protean_harness.Parallel]): programs are independent (per-program
    seeded RNG), so running [test_program] for each index and merging
    the sub-outcomes in index order reproduces [run] exactly. *)

val fresh_outcome : unit -> outcome

val merge_outcome : into:outcome -> outcome -> unit
(** Add [b]'s counters into [into]; keeps [into]'s violation example
    when it already has one (so index-order merging preserves the
    serial campaign's first example). *)

val generate_program : campaign -> int -> Program.t
(** The campaign's [index]-th random program (before instrumentation). *)

type witness
(** Everything needed to replay one violating input pair. *)

val test_program :
  ?witness:witness option ref ->
  ?cert_witness:Protean_protcc.Certify.violation option ref ->
  campaign ->
  Protean_defense.Defense.t ->
  index:int ->
  program:Program.t ->
  outcome
(** Run every input pair of program [index] into a fresh outcome; the
    caller merges it on success, so a mid-program fault never leaves
    half-counted pairs behind.  [witness] captures the first violation
    for {!shrink_witness}; [cert_witness] the first certificate
    violation, for drivers that escalate it to a structured
    {!Protean_protcc.Certify.Cert_violation} cell fault. *)

val describe_exn : exn -> string
(** [Sim_fault] dumps rendered via {!Pipeline.fault_to_string}; other
    exceptions via [Printexc]. *)

(** {1 Counterexample shrinking} *)

val pair_violates :
  campaign ->
  Protean_defense.Defense.t ->
  Program.t ->
  Observer.mode ->
  public:int64 * string ->
  secret_a:int64 * string ->
  secret_b:int64 * string ->
  bool
(** Replay one already-instrumented (program, input pair) and report
    whether it is a (true-positive) contract violation.  Simulator
    faults count as "no violation". *)

type shrunk = {
  sh_program : Program.t;  (** instrumented, shrunk *)
  sh_original_insns : int;
  sh_insns : int;  (** live (non-nop, pre-halt) instructions left *)
  sh_attempts : int;  (** candidate replays spent *)
  sh_verified : bool;  (** the shrunk program still violates *)
}

val shrink_witness :
  ?budget:int -> campaign -> Protean_defense.Defense.t -> witness -> shrunk
(** Shrink a captured {!witness} (nop-out live instructions while the
    violation persists); used by parallel drivers after the campaign. *)

(** {1 Leakage attribution} *)

val attribute_witness :
  campaign ->
  Protean_defense.Defense.t ->
  witness ->
  Protean_telemetry.Window.attribution option
(** Replay both halves of a captured violation with a full-mode
    speculation-window ledger ({!Protean_ooo.Spec_window}) attached and
    attribute the leak: the leaking transmitter pc, the access its
    tainted operand derived from, the trigger window (id, pc, nesting
    depth), and a heuristic gadget-family classification — "v1"
    (conditional trigger, bounds-check bypass), "v2" (indirect branch),
    "rsb" (return misprediction), "v4" (global transmitter divergence
    driven by a memory-order violation, no window divergence), or
    "unknown".  Replay faults degrade to [None]. *)

(** {1 Campaign checkpointing} *)

module Checkpoint : sig
  type t = {
    ck_seed : int;
    ck_programs : int;
    ck_inputs : int;
    ck_next : int;  (** next program index to run *)
    ck_tests : int;
    ck_skipped : int;
    ck_violations : int;
    ck_false_positives : int;
    ck_faulted : int;
    ck_example_seed : int;  (** -1 = no violation example yet *)
    ck_example_input : int;
  }

  val to_json : t -> string
  val of_json : string -> t option
  val save : string -> t -> unit
  (** Atomic (write-then-rename) save. *)

  val load : ?warn:(string -> unit) -> string -> t option
  (** [None] when the file is absent or malformed.  A file that exists
      but fails to parse (e.g. truncated by a crash mid-write of a
      non-atomic copy) additionally invokes [warn] (default: a warning
      line on stderr) before being ignored, so a silently restarted
      campaign leaves a trace. *)

  val matches : campaign -> t -> bool
  (** Does the checkpoint belong to this campaign (seed, sizes)? *)
end

(** {1 Crash-resilient campaigns} *)

type skip = {
  sk_index : int;  (** program index in the campaign *)
  sk_seed : int;  (** its generator seed *)
  sk_reason : string;
}

type report = {
  r_outcome : outcome;
  r_completed : int;  (** programs fully tested (including resumed ones) *)
  r_skipped : skip list;  (** programs dropped after retry, oldest first *)
  r_resumed_from : int option;
      (** index a matching checkpoint resumed at *)
  r_counterexample : shrunk option;  (** shrunk first violation *)
  r_attribution : Protean_telemetry.Window.attribution option;
      (** {!attribute_witness} on the first violation *)
}

val run_resilient :
  ?checkpoint:string ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  ?program_of:(int -> Program.t option) ->
  campaign ->
  Protean_defense.Defense.t ->
  report
(** Run a campaign with a per-program exception barrier: a program whose
    simulation faults (watchdog, invariant failure, any exception) is
    retried once, then skipped with a structured report, and the campaign
    continues.  [checkpoint] names a JSON state file saved after every
    program and resumed from when it matches the campaign.  [shrink]
    (default true) shrinks the first violating program.  [program_of]
    overrides the generated program at selected indices (harness
    self-tests). *)

(** {1 Fuzzer self-test via fault injection} *)

type gap = {
  g_mode : Protean_defense.Fault_inject.mode;
  g_tests : int;
  g_violations : int;
  g_detected : bool;  (** the campaign flagged the injected fault *)
}

val self_test :
  ?modes:Protean_defense.Fault_inject.mode list ->
  campaign ->
  Protean_defense.Defense.t ->
  gap list
(** Inject each fault mode into the defense and rerun the campaign; a
    mode whose campaign reports no violation is a detector gap. *)

val gaps : gap list -> gap list
(** The undetected subset of a {!self_test} result. *)

val campaign_for :
  ?seed:int -> programs:int -> inputs:int -> string -> campaign
(** Campaign skeleton for a named contract ("arch", "cts", "ct",
    "unprot"): observer mode, generator class and ProtCC instrumentation
    set consistently.  Raises [Invalid_argument] on unknown names. *)

val canonical_pairings :
  (Protean_defense.Fault_inject.mode * string * string) list
(** For each fault mode, a (defense id, contract) pairing in which the
    faulted layer is load-bearing, so the fault is observable.  Layered
    defenses mask single-layer faults (e.g. ProtTrack's taint layer
    compensates for dropped protection bits), so self-testing all modes
    against one defense reports spurious gaps. *)

val self_test_matrix :
  ?seed:int ->
  ?programs:int ->
  ?inputs:int ->
  ?timeout_cycles:int ->
  unit ->
  (string * string * gap) list
(** Run {!self_test} over {!canonical_pairings}; every returned gap
    should have [g_detected = true] for a healthy fuzzer.  Returns
    (defense id, contract, gap) per mode. *)

(** Contract shorthands (observer-mode constructors). *)

val arch_seq : Observer.typing -> Observer.mode
val ct_seq : Observer.typing -> Observer.mode
val cts_seq : Observer.typing -> Observer.mode
val unprot_seq : Observer.typing -> Observer.mode
