(** Random test-program generator — the llvm-stress-based generator of
    AMuLeT* (Section VII-B1a).

    Programs operate on a public array (identical across a test pair), a
    secret array (varied by the fuzzer) and a probe array large enough to
    act as a cache side channel.  Generation is class-aware: the
    generator tracks secret-holding registers and confines them per the
    class under test.  Spectre gadgets with slow (cold-load) guards open
    real transient windows; an architectural re-quarantine keeps test
    pairs contract-equivalent. *)

val public_base : int
val public_size : int
val secret_base : int
val secret_size : int
val probe_base : int
val probe_size : int
val cold_base : int
val cold_size : int

type klass_gen =
  | G_arch  (** never architecturally touches the secret region *)
  | G_ct  (** holds secrets, never passes them to sensitive operands *)
  | G_unr  (** unconstrained, including secret-dependent branches *)
  | G_gadget
      (** every slot emits the v1 bounds-check-bypass gadget; used by the
          attribution smoke tests (deterministic leaks under [unsafe]) *)

type spec = { seed : int; klass : klass_gen; blocks : int; block_len : int }

val default_spec : spec

val generate : spec -> Protean_isa.Program.t
(** Deterministic in [spec.seed]; always terminates (forward-only
    branches). *)

val random_bytes : Random.State.t -> int -> string

val random_public : Random.State.t -> int64 * string
(** A public-region overlay, shared across a test pair. *)

val random_secret : Random.State.t -> int64 * string
(** A secret-region overlay, varied between the two runs of a pair. *)
