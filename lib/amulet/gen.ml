(* Random test-program generator (the llvm-stress-based generator of
   AMuLeT*, Section VII-B1a).

   Programs operate on three data regions:
   - a *public* array whose contents are identical across a test pair;
   - a *secret* array whose contents the fuzzer varies;
   - a *probe* array large enough to act as a cache side-channel.

   Generation is class-aware: the generator tracks which registers hold
   secret-derived data and confines them according to the class under
   test (ARCH code never architecturally touches the secret region; CT
   code may hold secrets but never passes them to transmitter-sensitive
   operands; UNR code is unconstrained).  Spectre gadgets — bounds-check
   style branches guarding a secret load followed by a secret-indexed
   probe load — are inserted so that mispredictions open real transient
   leaks, with an architectural re-quarantine so that architecturally-dead
   gadgets keep test pairs contract-equivalent. *)

open Protean_isa

let public_base = 0x2000
let public_size = 256
let secret_base = 0x6000
let secret_size = 64
let probe_base = 0xA000
let probe_size = 4096

(* A cold, zero-initialized region used to delay gadget guards: loads from
   it miss the caches, widening the transient window (the fuzzing
   equivalent of an attacker flushing the bounds variable). *)
let cold_base = 0xE000
let cold_size = 4096

type klass_gen =
  | G_arch
  | G_ct
  | G_unr
  | G_gadget
      (* every slot emits the full v1 bounds-check-bypass gadget:
         deterministic leak bait for attribution smoke tests *)

type spec = {
  seed : int;
  klass : klass_gen;
  blocks : int;
  block_len : int;
}

let default_spec = { seed = 0; klass = G_arch; blocks = 6; block_len = 7 }

module Regset = struct
  type t = int

  let empty = 0
  let mem r s = s land (1 lsl Reg.to_int r) <> 0
  let add r s = s lor (1 lsl Reg.to_int r)
  let remove r s = s land lnot (1 lsl Reg.to_int r)
end

type gstate = {
  rng : Random.State.t;
  asm : Asm.ctx;
  mutable secret : Regset.t; (* registers currently holding secrets *)
  klass : klass_gen;
  mutable fresh : int; (* fresh label counter *)
}

(* Working registers (rsp excluded; rbp reserved as a scratch pointer). *)
let pool =
  [
    Reg.rax; Reg.rcx; Reg.rdx; Reg.rbx; Reg.rsi; Reg.rdi; Reg.r8; Reg.r9;
    Reg.r10; Reg.r11; Reg.r12; Reg.r13; Reg.r14; Reg.r15;
  ]

let pick g xs = List.nth xs (Random.State.int g.rng (List.length xs))

let any_reg g = pick g pool
let public_reg g =
  let pub = List.filter (fun r -> not (Regset.mem r g.secret)) pool in
  match pub with [] -> Reg.rbp | _ -> pick g pub

let mark_secret g r = g.secret <- Regset.add r g.secret
let mark_public g r = g.secret <- Regset.remove r g.secret
let is_secret g r = Regset.mem r g.secret

let fresh_label g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s_%d" prefix g.fresh

(* Emit index-masking into rbp: rbp = (src & mask) + base. *)
let masked_addr g src ~base ~mask =
  Asm.mov g.asm Reg.rbp (Asm.r src);
  Asm.and_ g.asm Reg.rbp (Asm.i mask);
  Asm.add g.asm Reg.rbp (Asm.i base);
  Reg.rbp

(* --- random instruction kinds --------------------------------------- *)

let gen_alu g =
  let dst = any_reg g in
  let op = pick g Insn.[ Add; Sub; And; Or; Xor; Shl; Shr; Mul ] in
  let src =
    if Random.State.bool g.rng then Insn.Reg (any_reg g)
    else Insn.Imm (Int64.of_int (Random.State.int g.rng 256))
  in
  (match op with
  | Insn.Shl | Insn.Shr ->
      (* Keep shift amounts small and public. *)
      Asm.binop g.asm op dst (Asm.i (1 + Random.State.int g.rng 7))
  | _ -> Asm.binop g.asm op dst src);
  let src_secret =
    match src with Insn.Reg r -> is_secret g r | Insn.Imm _ -> false
  in
  if is_secret g dst || src_secret then mark_secret g dst else mark_public g dst

let gen_mov g =
  let dst = any_reg g in
  if Random.State.bool g.rng then begin
    let src = any_reg g in
    Asm.mov g.asm dst (Asm.r src);
    if is_secret g src then mark_secret g dst else mark_public g dst
  end
  else begin
    Asm.mov g.asm dst (Asm.i (Random.State.int g.rng 4096));
    mark_public g dst
  end

let gen_load_public g =
  let idx = public_reg g in
  let dst = any_reg g in
  let a = masked_addr g idx ~base:public_base ~mask:(public_size - 8) in
  Asm.load g.asm dst (Asm.mb a);
  mark_public g dst

(* A load of secret data with a public address: legal for CT/UNR code. *)
let gen_load_secret g =
  let idx = public_reg g in
  let dst = any_reg g in
  let a = masked_addr g idx ~base:secret_base ~mask:(secret_size - 8) in
  Asm.load g.asm dst (Asm.mb a);
  mark_secret g dst

let gen_store g =
  let idx = public_reg g in
  let data =
    match g.klass with
    | G_arch | G_gadget -> public_reg g
    | G_ct | G_unr -> any_reg g
  in
  (* Secret stores go to the (never publicly re-read) upper half of the
     secret region so the generator's register secrecy tracking stays
     sound for memory too. *)
  let base, mask =
    if is_secret g data then (secret_base + secret_size, secret_size - 8)
    else (public_base, public_size - 8)
  in
  let a = masked_addr g idx ~base ~mask in
  Asm.store g.asm (Asm.mb a) (Asm.r data)

let gen_div g =
  let dst = any_reg g in
  let n =
    match g.klass with
    | G_unr -> any_reg g
    | G_arch | G_ct | G_gadget -> public_reg g
  in
  let d = public_reg g in
  (* Architecturally nonzero public divisor. *)
  Asm.mov g.asm Reg.rbp (Asm.r d);
  Asm.and_ g.asm Reg.rbp (Asm.i 63);
  Asm.or_ g.asm Reg.rbp (Asm.i 3);
  Asm.div g.asm dst n (Asm.r Reg.rbp);
  if is_secret g n then mark_secret g dst else mark_public g dst

let gen_cmov g =
  let c = pick g Insn.[ Z; Nz; Lt; Ge ] in
  let a = public_reg g in
  Asm.cmp g.asm a (Asm.i (Random.State.int g.rng 64));
  let dst = any_reg g in
  let src = any_reg g in
  Asm.cmov g.asm c dst (Asm.r src);
  if is_secret g dst || is_secret g src then mark_secret g dst
  else mark_public g dst

(* Secret-dependent control flow: only unrestricted code may do this
   (test pairs where the branch outcome differs get filtered by
   contract-equivalence). *)
let gen_secret_branch g =
  let s = any_reg g in
  let skip = fresh_label g "sb" in
  Asm.test g.asm s (Asm.i 1);
  Asm.jz g.asm skip;
  let dst = any_reg g in
  Asm.add g.asm dst (Asm.i 1);
  if is_secret g s then mark_secret g dst;
  Asm.label g.asm skip

(* The Spectre gadget: a branch whose condition hangs off a chain of two
   dependent cold loads guards a secret load and a secret-indexed probe
   load.  The guard condition is architecturally always nonzero (the body
   is dead code), but the slow condition chain means the branch resolves
   long after the predictor has sent the frontend down the body: the
   secret transiently reaches a cache-modulating transmitter.  This is
   exactly the structure of a Spectre bounds-check-bypass with a flushed
   bound. *)
let gen_gadget g =
  let idx = public_reg g in
  let s = any_reg g in
  let w = any_reg g in
  let skip = fresh_label g "gadget" in
  (* Window widener: two dependent cold loads feeding the guard. *)
  let off1 = Random.State.int g.rng (cold_size - 64) land lnot 7 in
  Asm.mov g.asm w (Asm.i (cold_base + off1));
  Asm.load g.asm w (Asm.mb w);
  Asm.and_ g.asm w (Asm.i (cold_size - 64));
  Asm.add g.asm w (Asm.i cold_base);
  Asm.load g.asm w (Asm.mb w);
  Asm.or_ g.asm w (Asm.i 1) (* architecturally always nonzero *);
  Asm.test g.asm w (Asm.r w);
  Asm.jnz g.asm skip;
  (* Transient-only body: secret load + secret-indexed probe load. *)
  let a = masked_addr g idx ~base:secret_base ~mask:(secret_size - 8) in
  Asm.load g.asm s (Asm.mb a);
  if Random.State.int g.rng 100 < 40 then begin
    (* Pending-squash probe (Section VII-B4b): a transient branch whose
       predicate is the (tainted/protected) secret, followed by a younger
       *untainted* misprediction.  On buggy hardware the older secret
       branch's misprediction conditionally occupies the notification
       slot and delays the younger squash — a secret-dependent timing. *)
    let l1 = fresh_label g "bq" in
    let l2 = fresh_label g "bq" in
    Asm.test g.asm s (Asm.i 1);
    Asm.jz g.asm l1 (* tainted, mispredicted iff the secret bit is 0 *);
    Asm.nop g.asm;
    Asm.label g.asm l1;
    Asm.cmp g.asm Reg.rsp (Asm.i 0);
    Asm.jnz g.asm l2 (* untainted, always mispredicted when cold *);
    Asm.nop g.asm;
    Asm.label g.asm l2
  end;
  Asm.and_ g.asm s (Asm.i 63);
  Asm.shl g.asm s (Asm.i 6);
  Asm.add g.asm s (Asm.i probe_base);
  Asm.load g.asm s (Asm.mb s);
  Asm.label g.asm skip;
  (* Architecturally the body never ran; keep the generator's view of
     [s] and [w] public and deterministic. *)
  Asm.mov g.asm s (Asm.i 0);
  Asm.mov g.asm w (Asm.i 0);
  mark_public g s;
  mark_public g w

let gen_insn g =
  let w = Random.State.int g.rng 100 in
  match g.klass with
  | G_arch ->
      if w < 30 then gen_alu g
      else if w < 45 then gen_mov g
      else if w < 65 then gen_load_public g
      else if w < 75 then gen_store g
      else if w < 80 then gen_div g
      else if w < 88 then gen_cmov g
      else gen_gadget g
  | G_ct ->
      if w < 25 then gen_alu g
      else if w < 40 then gen_mov g
      else if w < 52 then gen_load_public g
      else if w < 64 then gen_load_secret g
      else if w < 74 then gen_store g
      else if w < 79 then gen_div g
      else if w < 86 then gen_cmov g
      else gen_gadget g
  | G_unr ->
      if w < 25 then gen_alu g
      else if w < 38 then gen_mov g
      else if w < 50 then gen_load_public g
      else if w < 60 then gen_load_secret g
      else if w < 70 then gen_store g
      else if w < 75 then gen_div g
      else if w < 82 then gen_cmov g
      else if w < 90 then gen_secret_branch g
      else gen_gadget g
  | G_gadget -> gen_gadget g

(* The gadget's transient body never runs architecturally, so a
   gadget-only program is Arch-class: it never touches the secret. *)
let klass_of_gen = function
  | G_arch | G_gadget -> Program.Arch
  | G_ct -> Program.Ct
  | G_unr -> Program.Unr

let generate (spec : spec) =
  let rng = Random.State.make [| spec.seed; 0x9e3779b9 |] in
  let asm = Asm.create () in
  let g = { rng; asm; secret = Regset.empty; klass = spec.klass; fresh = 0 } in
  Asm.data asm ~addr:(Int64.of_int public_base) (String.make public_size '\000');
  Asm.data asm
    ~addr:(Int64.of_int secret_base)
    ~secret:true
    (String.make (2 * secret_size) '\000');
  Asm.data asm ~addr:(Int64.of_int probe_base) (String.make probe_size '\000');
  Asm.data asm ~addr:(Int64.of_int cold_base) (String.make cold_size '\000');
  Asm.func asm ~klass:(klass_of_gen spec.klass) "main";
  (* Seed registers from the public array so inputs influence control
     flow and addresses. *)
  List.iteri
    (fun k reg ->
      if k < 6 then begin
        Asm.mov g.asm Reg.rbp (Asm.i (public_base + (8 * k)));
        Asm.load g.asm reg (Asm.mb Reg.rbp)
      end
      else Asm.mov g.asm reg (Asm.i (k * 17)))
    pool;
  for b = 0 to spec.blocks - 1 do
    Asm.label asm (Printf.sprintf "block_%d" b);
    for _ = 1 to spec.block_len do
      gen_insn g
    done;
    (* Forward-only terminators guarantee termination. *)
    if b < spec.blocks - 1 && Random.State.int g.rng 100 < 40 then begin
      let target =
        Printf.sprintf "block_%d"
          (b + 1 + Random.State.int g.rng (spec.blocks - b - 1))
      in
      let c = pick g Insn.[ Z; Nz; Lt; Ge; B; Ae ] in
      let a = public_reg g in
      Asm.cmp g.asm a (Asm.i (Random.State.int g.rng 128));
      Asm.jcc g.asm c target
    end
  done;
  Asm.label asm (Printf.sprintf "block_%d" spec.blocks);
  Asm.halt asm;
  Asm.finish asm

(* Random input overlays: [public] is shared across a test pair, [secret]
   varies. *)
let random_bytes rng n = String.init n (fun _ -> Char.chr (Random.State.int rng 256))

let random_public rng = (Int64.of_int public_base, random_bytes rng public_size)
let random_secret rng =
  (Int64.of_int secret_base, random_bytes rng (2 * secret_size))
