(* The AMuLeT* fuzzing loop (Section VII-B): relational testing of
   microarchitectures against hardware-software security contracts.

   For each random program and input pair:
   1. run the SEQ contract executor under the configured observer mode on
      both inputs; skip the pair unless the contract traces are equal
      (the inputs are then contract-equivalent);
   2. run the hardware configuration under test on both inputs, recording
      attacker-visible events;
   3. compare the adversary's views: a difference on contract-equivalent
      inputs is a contract violation;
   4. classify as a false positive if the committed instruction streams of
      the two hardware executions differ (sequential, not transient,
      divergence — AMuLeT*'s automated post-processing filter).

   Long campaigns additionally get a robustness layer:
   - [run_resilient] wraps every program in an exception barrier
     (retry once, then skip and report) with a per-program cycle budget
     enforced by the pipeline watchdog, shrinks the first violating
     program, and checkpoints progress to a JSON state file;
   - [self_test] injects deliberate faults into the defense under test
     ([Fault_inject]) and reports any injected fault the campaign fails
     to flag — a detector gap. *)

open Protean_isa
open Protean_arch
open Protean_ooo
module Fault_inject = Protean_defense.Fault_inject

type adversary = Cache_tlb | Timing

let adversary_name = function Cache_tlb -> "cache+tlb" | Timing -> "timing"

type instrumentation =
  | I_none (* unmodified binary *)
  | I_pass of Protean_protcc.Protcc.pass

type campaign = {
  seed : int;
  programs : int;
  inputs_per_program : int;
  gen_klass : Gen.klass_gen;
  mode_of : Observer.typing -> Observer.mode;
      (* the contract's observer mode (may consume the CTS typing) *)
  instrumentation : instrumentation;
  adversary : adversary;
  config : Config.t;
  squash_bug : bool;
  spec_model : Policy.spec_model;
  timeout_cycles : int option;
      (* per-simulation watchdog budget: a run exceeding it raises
         [Pipeline.Sim_fault], which [run_resilient] turns into a skip *)
  check_certs : bool;
      (* audit each instrumented program's protection certificates
         against the SEQ executor (translation validation of ProtCC) on
         the same input pairs the campaign tests *)
  cert_fault : Protean_defense.Fault_inject.cert_mode option;
      (* pass-mutation injection: compile results are mutated as by a
         broken pass, so a campaign with [check_certs] must report
         certificate violations (checker self-test) *)
}

let default_campaign =
  {
    seed = 1;
    programs = 20;
    inputs_per_program = 6;
    gen_klass = Gen.G_arch;
    mode_of = (fun _ -> Observer.Arch_mode);
    instrumentation = I_none;
    adversary = Cache_tlb;
    config = Config.test_core;
    squash_bug = false;
    spec_model = Policy.Atcommit;
    timeout_cycles = None;
    check_certs = false;
    cert_fault = None;
  }

type outcome = {
  mutable tests : int; (* contract-equivalent pairs actually compared *)
  mutable skipped : int; (* pairs filtered by contract-equivalence *)
  mutable violations : int;
  mutable false_positives : int;
  mutable example : (int * int) option; (* (program seed, input index) *)
  mutable certs_checked : int; (* certificates audited (check_certs) *)
  mutable cert_claims : int; (* individual (pc, register) claims *)
  mutable cert_violations : int;
  mutable cert_example : string option; (* first rendered Cert_violation *)
}

let fresh_outcome () =
  {
    tests = 0;
    skipped = 0;
    violations = 0;
    false_positives = 0;
    example = None;
    certs_checked = 0;
    cert_claims = 0;
    cert_violations = 0;
    cert_example = None;
  }

let merge_outcome ~into:(a : outcome) (b : outcome) =
  a.tests <- a.tests + b.tests;
  a.skipped <- a.skipped + b.skipped;
  a.violations <- a.violations + b.violations;
  a.false_positives <- a.false_positives + b.false_positives;
  if a.example = None then a.example <- b.example;
  a.certs_checked <- a.certs_checked + b.certs_checked;
  a.cert_claims <- a.cert_claims + b.cert_claims;
  a.cert_violations <- a.cert_violations + b.cert_violations;
  if a.cert_example = None then a.cert_example <- b.cert_example

(* Committed-PC projection of a hardware trace: equal streams mean any
   adversary-view divergence is transient leakage (true positive). *)
let committed_stream trace =
  List.filter_map
    (function
      | Hw_trace.E_timing { pc; _ } -> Some pc
      | _ -> None)
    (Hw_trace.all trace)

let adversary_view adversary trace =
  match adversary with
  | Cache_tlb -> Hw_trace.cache_tlb_view trace
  | Timing -> Hw_trace.timing_view trace

let run_hw campaign (defense : Protean_defense.Defense.t) program overlays =
  let watchdog =
    { Pipeline.default_watchdog with Pipeline.budget = campaign.timeout_cycles }
  in
  Pipeline.run ~trace:true ~squash_bug:campaign.squash_bug
    ~spec_model:campaign.spec_model ~watchdog ~fuel:400_000 campaign.config
    (defense.Protean_defense.Defense.make ())
    program ~overlays

type pair_status = P_skipped | P_clean | P_violation | P_false_positive

(* Test one (program, input-pair); updates [out] and reports the pair's
   classification. *)
let test_pair campaign defense program mode ~public ~secret_a ~secret_b out
    ~tag =
  let overlays_a = [ public; secret_a ] in
  let overlays_b = [ public; secret_b ] in
  let ca = Contract.run ~fuel:50_000 mode program ~overlays:overlays_a in
  let cb = Contract.run ~fuel:50_000 mode program ~overlays:overlays_b in
  if ca.Contract.exhausted || cb.Contract.exhausted then begin
    out.skipped <- out.skipped + 1;
    P_skipped
  end
  else if not (Contract.traces_equal ca.Contract.trace cb.Contract.trace)
  then begin
    out.skipped <- out.skipped + 1;
    P_skipped
  end
  else begin
    let ha = run_hw campaign defense program overlays_a in
    let hb = run_hw campaign defense program overlays_b in
    out.tests <- out.tests + 1;
    let va = adversary_view campaign.adversary ha.Pipeline.trace in
    let vb = adversary_view campaign.adversary hb.Pipeline.trace in
    if not (Hw_trace.view_equal va vb) then begin
      let fp =
        committed_stream ha.Pipeline.trace <> committed_stream hb.Pipeline.trace
      in
      if fp then begin
        out.false_positives <- out.false_positives + 1;
        P_false_positive
      end
      else begin
        out.violations <- out.violations + 1;
        if out.example = None then out.example <- Some tag;
        P_violation
      end
    end
    else P_clean
  end

(* Instrument a generated program per the campaign, returning the program
   to run, the CTS typing table for the observer, and the full compile
   result (with certificates) for the checker.  An armed [cert_fault]
   mutates the result exactly as a broken pass would, so the campaign's
   hardware runs see the faulty binary too. *)
let prepare campaign program =
  match campaign.instrumentation with
  | I_none -> (program, Hashtbl.create 0, None)
  | I_pass pass ->
      let r = Protean_protcc.Protcc.instrument ~pass_override:pass program in
      let r =
        match campaign.cert_fault with
        | Some mode -> Fault_inject.mutate mode r
        | None -> r
      in
      (r.Protean_protcc.Protcc.program, r.Protean_protcc.Protcc.typing, Some r)

let program_seed campaign index = campaign.seed + (index * 7919)

let generate_program campaign index =
  Gen.generate
    {
      Gen.default_spec with
      Gen.seed = program_seed campaign index;
      klass = campaign.gen_klass;
    }

(* Everything needed to replay one violating input pair, for shrinking. *)
type witness = {
  w_program : Program.t; (* instrumented program that violated *)
  w_mode : Observer.mode;
  w_public : int64 * string;
  w_secret_a : int64 * string;
  w_secret_b : int64 * string;
  w_tag : int * int;
}

(* Run every input pair of program [index] into a fresh outcome; the
   caller merges it on success, so a mid-program fault never leaves
   half-counted pairs behind.  [witness] captures the first violation. *)
let test_program ?witness ?cert_witness campaign defense ~index ~program =
  let out = fresh_outcome () in
  let pseed = program_seed campaign index in
  let original = program in
  let program, typing, compile = prepare campaign program in
  let mode = campaign.mode_of typing in
  let rng = Random.State.make [| pseed; 0xfeed |] in
  let public = Gen.random_public rng in
  let base_secret = Gen.random_secret rng in
  (* Same RNG draw order as the plain loop below consumed, so enabling
     the certificate audit does not perturb the campaign's inputs. *)
  let others =
    List.init campaign.inputs_per_program (fun _ -> Gen.random_secret rng)
  in
  (match (campaign.check_certs, compile) with
  | true, Some res ->
      (* Translation validation: audit the pass's certificates on the
         very input pairs this campaign tests. *)
      let inputs =
        List.map
          (fun other -> ([ public; base_secret ], [ public; other ]))
          others
      in
      let stats =
        Protean_protcc.Certify.audit ~inputs ~original res
      in
      out.certs_checked <- stats.Protean_protcc.Certify.checked;
      out.cert_claims <- stats.Protean_protcc.Certify.claims;
      out.cert_violations <-
        List.length stats.Protean_protcc.Certify.violations;
      (match stats.Protean_protcc.Certify.violations with
      | v :: _ ->
          out.cert_example <-
            Some (Protean_protcc.Certify.violation_to_string v);
          (match cert_witness with
          | Some r when !r = None -> r := Some v
          | _ -> ())
      | [] -> ())
  | _ -> ());
  List.iteri
    (fun k0 other ->
    let k = k0 + 1 in
    let status =
      test_pair campaign defense program mode ~public ~secret_a:base_secret
        ~secret_b:other out ~tag:(pseed, k)
    in
    match (status, witness) with
    | P_violation, Some w when !w = None ->
        w :=
          Some
            {
              w_program = program;
              w_mode = mode;
              w_public = public;
              w_secret_a = base_secret;
              w_secret_b = other;
              w_tag = (pseed, k);
            }
    | _ -> ())
    others;
  out

let run campaign (defense : Protean_defense.Defense.t) =
  let out = fresh_outcome () in
  for index = 0 to campaign.programs - 1 do
    let program = generate_program campaign index in
    merge_outcome ~into:out (test_program campaign defense ~index ~program)
  done;
  out

(* --- counterexample shrinking --------------------------------------- *)

(* Does the witness pair still violate when [w_program]'s code is
   replaced?  Runs the full contract-equivalence + adversary-view pipe,
   so a shrink step that changes the committed behaviour (breaking
   contract equivalence, or turning the divergence sequential) is
   rejected rather than misreported. *)
let pair_violates campaign defense program mode ~public ~secret_a ~secret_b =
  let scratch = fresh_outcome () in
  match
    test_pair campaign defense program mode ~public ~secret_a ~secret_b
      scratch ~tag:(0, 0)
  with
  | P_violation -> true
  | P_skipped | P_clean | P_false_positive -> false
  | exception Pipeline.Sim_fault _ -> false

type shrunk = {
  sh_program : Program.t; (* instrumented, shrunk *)
  sh_original_insns : int;
  sh_insns : int; (* live (non-nop, pre-halt) instructions left *)
  sh_attempts : int; (* candidate executions spent *)
  sh_verified : bool; (* the shrunk program still violates *)
}

let live_insns code cut =
  let n = ref 0 in
  for i = 0 to cut - 1 do
    match code.(i).Insn.op with Insn.Nop -> () | _ -> incr n
  done;
  !n

(* Greedy structural shrinking of a violating program: first truncate the
   tail (replacing a suffix with [halt]), then nop out surviving
   instructions one at a time, keeping every step that preserves the
   violation.  Branch targets are absolute, so both operations leave the
   surviving code's control flow intact. *)
let shrink_witness ?(budget = 64) campaign defense (w : witness) =
  let halt = Insn.make Insn.Halt in
  let nop = Insn.make Insn.Nop in
  let code0 = w.w_program.Program.code in
  let len = Array.length code0 in
  let attempts = ref 0 in
  let violates code =
    incr attempts;
    pair_violates campaign defense
      (Program.with_code w.w_program code)
      w.w_mode ~public:w.w_public ~secret_a:w.w_secret_a
      ~secret_b:w.w_secret_b
  in
  let truncate_at c =
    Array.mapi (fun i insn -> if i >= c then halt else insn) code0
  in
  (* Phase 1: pull the halt boundary towards the entry point. *)
  let cut = ref len in
  let step = ref (len / 2) in
  while !step >= 1 && !attempts < budget do
    let c = !cut - !step in
    if c > w.w_program.Program.main && violates (truncate_at c) then cut := c
    else step := !step / 2
  done;
  (* Phase 2: nop out individual surviving instructions. *)
  let code = ref (truncate_at !cut) in
  for i = 0 to !cut - 1 do
    if !attempts < budget then begin
      match !code.(i).Insn.op with
      | Insn.Nop | Insn.Halt -> ()
      | _ ->
          let cand = Array.copy !code in
          cand.(i) <- nop;
          if violates cand then code := cand
    end
  done;
  let final = Program.with_code w.w_program !code in
  {
    sh_program = final;
    sh_original_insns = len;
    sh_insns = live_insns !code !cut;
    sh_attempts = !attempts;
    sh_verified =
      pair_violates campaign defense final w.w_mode ~public:w.w_public
        ~secret_a:w.w_secret_a ~secret_b:w.w_secret_b;
  }

(* --- leakage attribution --------------------------------------------- *)

module Twindow = Protean_telemetry.Window

(* Replay one hardware run of the witness with a full-mode speculation
   ledger attached, returning the detached ledger. *)
let run_hw_ledger campaign (defense : Protean_defense.Defense.t) program
    overlays =
  let slot = ref None in
  let watchdog =
    { Pipeline.default_watchdog with Pipeline.budget = campaign.timeout_cycles }
  in
  ignore
    (Pipeline.run ~trace:true ~squash_bug:campaign.squash_bug
       ~spec_model:campaign.spec_model ~watchdog ~fuel:400_000
       ~on_start:(fun t -> slot := Some (t, Spec_window.attach ~full:true t))
       campaign.config
       (defense.Protean_defense.Defense.make ())
       program ~overlays);
  match !slot with
  | Some (t, led) ->
      Spec_window.detach t led;
      led
  | None -> invalid_arg "Fuzz.run_hw_ledger: on_start never fired"

let attribution_of_window (w : Spec_window.window)
    (x : Spec_window.xmit option) =
  {
    Twindow.at_family = Spec_window.trigger_family w.Spec_window.w_trigger;
    at_xmit_pc = (match x with Some x -> x.Spec_window.x_pc | None -> -1);
    at_src_pc = (match x with Some x -> x.Spec_window.x_src_pc | None -> -1);
    at_window_id = w.Spec_window.w_id;
    at_window_pc = w.Spec_window.w_pc;
    at_window_depth = w.Spec_window.w_depth;
  }

(* Execution-order (pc, addr) walk over two transmitter logs (the ledger
   stores them newest first): the first differing entry is the earliest
   access the two runs disagree on — the divergence the adversary saw.
   Prefer the tainted side of the disagreement: that is the entry whose
   operand carried transient data. *)
let first_diverging_xmit la lb =
  let rec go xs ys =
    match (xs, ys) with
    | (x : Spec_window.xmit) :: xs', (y : Spec_window.xmit) :: ys' ->
        if
          x.Spec_window.x_pc = y.Spec_window.x_pc
          && x.Spec_window.x_addr = y.Spec_window.x_addr
        then go xs' ys'
        else if x.Spec_window.x_tainted then Some x
        else if y.Spec_window.x_tainted then Some y
        else Some x
    | x :: _, [] -> Some x
    | [], y :: _ -> Some y
    | [], [] -> None
  in
  go (List.rev la) (List.rev lb)

(* Attribute a captured violation: replay both halves of the witness
   pair with full ledgers and locate the leak.

   Heuristic, strongest evidence first:
   1. a *leaky* window (closed by its own misprediction with >= 1
      tainted transmitter under it) on either run — the canonical
      transient-leak shape; the record names its first tainted
      transmitter and the access its operand derived from, and the
      family follows the trigger (v1 conditional / v2 indirect / rsb
      return);
   2. otherwise, the first window (aligned by id — both runs execute the
      same code, so ids agree up to the divergence) whose transmitter
      logs differ between the runs;
   3. otherwise a window-less divergence of the global transmitter logs:
      with memory-order violations on either run that is the v4
      (store-bypass) shape, else "unknown".

   Replay faults degrade to [None] rather than aborting the campaign's
   reporting. *)
let attribute_witness campaign defense (w : witness) =
  match
    ( run_hw_ledger campaign defense w.w_program [ w.w_public; w.w_secret_a ],
      run_hw_ledger campaign defense w.w_program [ w.w_public; w.w_secret_b ] )
  with
  | exception _ -> None
  | la, lb -> (
      let first_tainted log =
        List.find_opt
          (fun (x : Spec_window.xmit) -> x.Spec_window.x_tainted)
          (List.rev log)
      in
      let leaky =
        match (Spec_window.leaky_windows la, Spec_window.leaky_windows lb) with
        | w :: _, [] | [], w :: _ -> Some w
        | wa :: _, wb :: _ ->
            Some
              (if wa.Spec_window.w_id <= wb.Spec_window.w_id then wa else wb)
        | [], [] -> None
      in
      match leaky with
      | Some lw ->
          let x =
            match first_tainted lw.Spec_window.w_log with
            | Some _ as x -> x
            | None -> (
                match List.rev lw.Spec_window.w_log with
                | x :: _ -> Some x
                | [] -> None)
          in
          Some (attribution_of_window lw x)
      | None -> (
          let by_id led =
            List.map
              (fun (w : Spec_window.window) -> (w.Spec_window.w_id, w))
              (Spec_window.closed_windows led)
          in
          let wa = by_id la and wb = by_id lb in
          let ids =
            List.sort_uniq compare (List.map fst wa @ List.map fst wb)
          in
          let diverged =
            List.find_map
              (fun id ->
                match (List.assoc_opt id wa, List.assoc_opt id wb) with
                | Some a, Some b -> (
                    match
                      first_diverging_xmit a.Spec_window.w_log
                        b.Spec_window.w_log
                    with
                    | Some x -> Some (a, Some x)
                    | None -> None)
                | Some a, None ->
                    Some (a, first_diverging_xmit a.Spec_window.w_log [])
                | None, Some b ->
                    Some (b, first_diverging_xmit [] b.Spec_window.w_log)
                | None, None -> None)
              ids
          in
          match diverged with
          | Some (w, x) -> Some (attribution_of_window w x)
          | None ->
              let family =
                if
                  Spec_window.order_violations la > 0
                  || Spec_window.order_violations lb > 0
                then "v4"
                else "unknown"
              in
              let x =
                first_diverging_xmit
                  (List.rev (Spec_window.global_log la))
                  (List.rev (Spec_window.global_log lb))
              in
              Some
                {
                  Twindow.at_family = family;
                  at_xmit_pc =
                    (match x with
                    | Some x -> x.Spec_window.x_pc
                    | None -> -1);
                  at_src_pc =
                    (match x with
                    | Some x -> x.Spec_window.x_src_pc
                    | None -> -1);
                  at_window_id = -1;
                  at_window_pc = -1;
                  at_window_depth = -1;
                }))

(* --- campaign checkpointing ------------------------------------------ *)

module Checkpoint = struct
  (* Campaign progress persisted after every program, so an interrupted
     multi-hour run resumes where it stopped instead of restarting.  The
     format is a single flat JSON object of integers. *)
  type t = {
    ck_seed : int;
    ck_programs : int;
    ck_inputs : int;
    ck_next : int; (* next program index to run *)
    ck_tests : int;
    ck_skipped : int;
    ck_violations : int;
    ck_false_positives : int;
    ck_faulted : int;
    ck_example_seed : int; (* -1 = no violation example yet *)
    ck_example_input : int;
  }

  let to_json c =
    Printf.sprintf
      "{\"version\":1,\"seed\":%d,\"programs\":%d,\"inputs\":%d,\"next\":%d,\"tests\":%d,\"skipped\":%d,\"violations\":%d,\"false_positives\":%d,\"faulted\":%d,\"example_seed\":%d,\"example_input\":%d}"
      c.ck_seed c.ck_programs c.ck_inputs c.ck_next c.ck_tests c.ck_skipped
      c.ck_violations c.ck_false_positives c.ck_faulted c.ck_example_seed
      c.ck_example_input

  (* Minimal parser for the flat integer-object format above; returns
     [None] on any malformed input rather than raising. *)
  let int_field s key =
    let pat = "\"" ^ key ^ "\":" in
    let plen = String.length pat and slen = String.length s in
    let rec find i =
      if i + plen > slen then None
      else if String.sub s i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let stop = ref start in
        if !stop < slen && s.[!stop] = '-' then incr stop;
        while !stop < slen && s.[!stop] >= '0' && s.[!stop] <= '9' do
          incr stop
        done;
        if !stop = start then None
        else int_of_string_opt (String.sub s start (!stop - start))

  let of_json s =
    let ( let* ) = Option.bind in
    let* version = int_field s "version" in
    if version <> 1 then None
    else
      let* ck_seed = int_field s "seed" in
      let* ck_programs = int_field s "programs" in
      let* ck_inputs = int_field s "inputs" in
      let* ck_next = int_field s "next" in
      let* ck_tests = int_field s "tests" in
      let* ck_skipped = int_field s "skipped" in
      let* ck_violations = int_field s "violations" in
      let* ck_false_positives = int_field s "false_positives" in
      let* ck_faulted = int_field s "faulted" in
      let* ck_example_seed = int_field s "example_seed" in
      let* ck_example_input = int_field s "example_input" in
      Some
        {
          ck_seed;
          ck_programs;
          ck_inputs;
          ck_next;
          ck_tests;
          ck_skipped;
          ck_violations;
          ck_false_positives;
          ck_faulted;
          ck_example_seed;
          ck_example_input;
        }

  let save path c =
    (* Write-then-rename so an interruption mid-write never corrupts the
       previous checkpoint. *)
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (to_json c);
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path

  let default_warn path =
    Protean_telemetry.Log.warn ~src:"checkpoint"
      ~fields:[ ("path", path) ]
      "%s exists but is truncated or malformed; ignoring it and restarting \
       the campaign from program 0"
      path

  let load ?(warn = default_warn) path =
    if not (Sys.file_exists path) then None
    else begin
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match of_json s with
      | Some c -> Some c
      | None ->
          (* A truncated or corrupt checkpoint must not abort the run —
             the campaign is re-runnable from scratch — but silently
             restarting a multi-hour campaign deserves a diagnostic. *)
          warn path;
          None
    end

  let matches campaign c =
    c.ck_seed = campaign.seed
    && c.ck_programs = campaign.programs
    && c.ck_inputs = campaign.inputs_per_program
end

(* --- crash-resilient campaigns --------------------------------------- *)

type skip = {
  sk_index : int; (* program index in the campaign *)
  sk_seed : int; (* its generator seed *)
  sk_reason : string;
}

type report = {
  r_outcome : outcome;
  r_completed : int; (* programs fully tested (including resumed ones) *)
  r_skipped : skip list; (* programs dropped after retry, oldest first *)
  r_resumed_from : int option; (* index a matching checkpoint resumed at *)
  r_counterexample : shrunk option; (* shrunk first violation *)
  r_attribution : Twindow.attribution option;
      (* ledger replay of the first violation *)
}

let describe_exn = function
  | Pipeline.Sim_fault f -> Pipeline.fault_to_string f
  | Protean_protcc.Certify.Cert_violation v ->
      Protean_protcc.Certify.violation_to_string v
  | e -> Printexc.to_string e

(* Run a campaign with a per-program exception barrier: a program whose
   simulation faults (watchdog, invariant failure, or any other
   exception) is retried once and then skipped with a structured report,
   instead of aborting the whole campaign.  [checkpoint] names a JSON
   state file for resume; [program_of] lets harnesses splice specific
   programs into the campaign (used by the robustness self-tests). *)
let run_resilient ?checkpoint ?(shrink = true) ?(shrink_budget = 64)
    ?program_of campaign (defense : Protean_defense.Defense.t) =
  let out = fresh_outcome () in
  let start, prior_faults, resumed_from =
    match Option.map Checkpoint.load checkpoint with
    | Some (Some c) when Checkpoint.matches campaign c ->
        out.tests <- c.Checkpoint.ck_tests;
        out.skipped <- c.Checkpoint.ck_skipped;
        out.violations <- c.Checkpoint.ck_violations;
        out.false_positives <- c.Checkpoint.ck_false_positives;
        if c.Checkpoint.ck_example_seed >= 0 then
          out.example <-
            Some (c.Checkpoint.ck_example_seed, c.Checkpoint.ck_example_input);
        (c.Checkpoint.ck_next, c.Checkpoint.ck_faulted, Some c.Checkpoint.ck_next)
    | _ -> (0, 0, None)
  in
  let skips = ref [] in
  let faulted = ref prior_faults in
  let witness = ref None in
  for index = start to campaign.programs - 1 do
    let pseed = program_seed campaign index in
    let program =
      match program_of with
      | Some f -> ( match f index with
          | Some p -> p
          | None -> generate_program campaign index)
      | None -> generate_program campaign index
    in
    let attempt () = test_program ~witness campaign defense ~index ~program in
    (match attempt () with
    | sub -> merge_outcome ~into:out sub
    | exception _ -> (
        (* Retry once — then skip the program and continue the campaign. *)
        match attempt () with
        | sub -> merge_outcome ~into:out sub
        | exception e ->
            incr faulted;
            skips :=
              { sk_index = index; sk_seed = pseed; sk_reason = describe_exn e }
              :: !skips));
    match checkpoint with
    | Some path ->
        Checkpoint.save path
          {
            Checkpoint.ck_seed = campaign.seed;
            ck_programs = campaign.programs;
            ck_inputs = campaign.inputs_per_program;
            ck_next = index + 1;
            ck_tests = out.tests;
            ck_skipped = out.skipped;
            ck_violations = out.violations;
            ck_false_positives = out.false_positives;
            ck_faulted = !faulted;
            ck_example_seed = (match out.example with Some (s, _) -> s | None -> -1);
            ck_example_input =
              (match out.example with Some (_, k) -> k | None -> -1);
          }
    | None -> ()
  done;
  let counterexample =
    match !witness with
    | Some w when shrink ->
        Some (shrink_witness ~budget:shrink_budget campaign defense w)
    | _ -> None
  in
  let attribution =
    match !witness with
    | Some w -> attribute_witness campaign defense w
    | None -> None
  in
  {
    r_outcome = out;
    r_completed = campaign.programs - !faulted;
    r_skipped = List.rev !skips;
    r_resumed_from = resumed_from;
    r_counterexample = counterexample;
    r_attribution = attribution;
  }

(* --- fuzzer self-test via fault injection ----------------------------- *)

type gap = {
  g_mode : Fault_inject.mode;
  g_tests : int;
  g_violations : int;
  g_detected : bool; (* the campaign flagged the injected fault *)
}

(* Inject each fault mode into [defense] and rerun the campaign: a mode
   whose campaign reports no violation is a detector gap — the harness
   would also miss a comparable real bug. *)
let self_test ?(modes = Fault_inject.all_modes) campaign defense =
  List.map
    (fun m ->
      let faulty = Fault_inject.inject m defense in
      let r = run_resilient ~shrink:false campaign faulty in
      {
        g_mode = m;
        g_tests = r.r_outcome.tests;
        g_violations = r.r_outcome.violations;
        g_detected = r.r_outcome.violations > 0;
      })
    modes

let gaps reports = List.filter (fun g -> not g.g_detected) reports

(* Campaign skeleton for a named contract (the CLI's --contract values). *)
let campaign_for ?(seed = 1) ~programs ~inputs contract =
  let mode_of, gen_klass, instrumentation =
    match contract with
    | "arch" -> ((fun _ -> Observer.Arch_mode), Gen.G_arch, I_none)
    | "cts" ->
        ( (fun typing -> Observer.Cts_mode typing),
          Gen.G_ct,
          I_pass Protean_protcc.Protcc.P_cts )
    | "ct" ->
        ((fun _ -> Observer.Ct_mode), Gen.G_ct, I_pass Protean_protcc.Protcc.P_ct)
    | "unprot" ->
        ( (fun _ -> Observer.Unprot_mode),
          Gen.G_ct,
          I_pass (Protean_protcc.Protcc.P_rand (seed, 0.5)) )
    | s -> invalid_arg ("Fuzz.campaign_for: unknown contract " ^ s)
  in
  {
    default_campaign with
    seed;
    programs;
    inputs_per_program = inputs;
    mode_of;
    gen_klass;
    instrumentation;
  }

(* The defenses are layered, so a fault in one layer is often masked by
   another (e.g. dropping ProtISA protection bits under ProtTrack leaves
   its STT-style taint layer intact).  Each fault mode is therefore
   paired with a defense and contract where the broken layer is
   load-bearing: a functioning fuzzer MUST flag every row, so any miss
   is a detector gap regardless of which defense the user fuzzes. *)
let canonical_pairings =
  [
    (Fault_inject.F_unprotect, "prot-delay", "ct");
    (Fault_inject.F_drop_taint, "stt", "arch");
    (Fault_inject.F_corrupt_predictor, "prot-track", "arch");
    (Fault_inject.F_open_execute_gate, "prot-track", "ct");
    (Fault_inject.F_open_forward_gate, "nda", "arch");
    (Fault_inject.F_open_resolve_gate, "prot-track", "ct");
  ]

let self_test_matrix ?(seed = 1) ?(programs = 8) ?(inputs = 3) ?timeout_cycles
    () =
  List.map
    (fun (m, defense_id, contract) ->
      let campaign =
        { (campaign_for ~seed ~programs ~inputs contract) with timeout_cycles }
      in
      let d = Protean_defense.Defense.find defense_id in
      match self_test ~modes:[ m ] campaign d with
      | [ g ] -> (defense_id, contract, g)
      | _ -> assert false)
    canonical_pairings

(* --- contract shorthands -------------------------------------------- *)

let arch_seq = (fun _ -> Observer.Arch_mode)
let ct_seq = (fun _ -> Observer.Ct_mode)
let cts_seq = (fun typing -> Observer.Cts_mode typing)
let unprot_seq = (fun _ -> Observer.Unprot_mode)
