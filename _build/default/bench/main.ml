(* Bechamel benchmark harness: one Test.make per paper table/figure
   (Section A-G1's table-*.py / figure-*.py scripts).

   Each benchmark regenerates a scaled-down version of its table or
   figure — same simulation and analysis code paths as the full
   `protean-tables` runs, restricted to a representative benchmark subset
   (the artifact's `--bench` shortcuts) so a Bechamel iteration stays in
   the hundreds of milliseconds.  Table/figure text output is suppressed
   during timing. *)

open Bechamel
open Toolkit
module E = Protean_harness.Experiment
module Tables = Protean_harness.Tables
module Figures = Protean_harness.Figures
module Studies = Protean_harness.Studies
module Fuzz = Protean_amulet.Fuzz
module Defense = Protean_defense.Defense

(* Run [f] with standard-formatter output discarded. *)
let silently f =
  let buf = Buffer.create 4096 in
  let old = Format.get_formatter_output_functions () in
  Format.set_formatter_output_functions (Buffer.add_substring buf) (fun () -> ());
  Fun.protect
    ~finally:(fun () ->
      Format.print_flush ();
      let out, flush = old in
      Format.set_formatter_output_functions out flush)
    f

(* Representative per-suite subsets (the artifact's quick mode: the
   benchmark with the shortest host runtime per suite, §A-F1). *)
let quick_table_v =
  [ "lbm"; "hacl.poly1305"; "bearssl"; "ossl.bnexp"; "nginx.c1r1" ]

let quick_spec = [ "perlbench"; "leela" ]
let quick_parsec = [ "swaptions.p" ]

let table_i () =
  silently (fun () ->
      Tables.table_i ~benches:quick_table_v (E.create_session ()))

let table_ii () =
  silently (fun () -> Tables.table_ii ~programs:3 ~inputs:2 ())

let table_iv () =
  silently (fun () ->
      Tables.table_iv ~benches:(quick_spec @ quick_parsec) (E.create_session ()))

let table_v () =
  silently (fun () ->
      Tables.table_v ~benches:quick_table_v (E.create_session ()))

let figure_5 () =
  silently (fun () -> Figures.figure_5 ~benches:quick_spec (E.create_session ()))

let figure_6 () =
  silently (fun () ->
      Figures.figure_6 ~benches:(quick_spec @ quick_parsec) (E.create_session ()))

let protcc_overhead () =
  silently (fun () ->
      Studies.protcc_overhead ~benches:quick_spec (E.create_session ()))

let l1d_variants () =
  silently (fun () ->
      Studies.l1d_variants ~benches:quick_spec (E.create_session ()))

let ablation () =
  silently (fun () ->
      Studies.ablation_access ~benches:quick_spec (E.create_session ()))

let control_model () =
  silently (fun () ->
      Studies.control_model ~benches:quick_spec (E.create_session ()))

let bugfix_cost () =
  silently (fun () ->
      Studies.bugfix_cost ~benches:quick_spec (E.create_session ()))

let tests =
  [
    Test.make ~name:"table-i" (Staged.stage table_i);
    Test.make ~name:"table-ii" (Staged.stage table_ii);
    Test.make ~name:"table-iv" (Staged.stage table_iv);
    Test.make ~name:"table-v" (Staged.stage table_v);
    Test.make ~name:"figure-5" (Staged.stage figure_5);
    Test.make ~name:"figure-6" (Staged.stage figure_6);
    Test.make ~name:"protcc-overhead (IX-A2)" (Staged.stage protcc_overhead);
    Test.make ~name:"l1d-variants (IX-A3)" (Staged.stage l1d_variants);
    Test.make ~name:"ablation-access (IX-A4)" (Staged.stage ablation);
    Test.make ~name:"control-model (IX-A6)" (Staged.stage control_model);
    Test.make ~name:"bugfix-cost (IX-A7)" (Staged.stage bugfix_cost);
  ]

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let tbl = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-28s %12.3f ms/run\n%!" name (est /. 1e6)
      | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
    tbl

let () =
  print_endline "PROTEAN benchmark harness: one entry per paper table/figure";
  print_endline "(scaled-down benchmark subsets; see protean-tables for full runs)";
  print_endline "";
  List.iter benchmark tests
