(* Out-of-order pipeline tests: architectural equivalence with the
   sequential machine under every defense, plus targeted micro-behaviours
   (forwarding, misprediction recovery, machine clears). *)

open Protean_isa
module Pipeline = Protean_ooo.Pipeline
module Config = Protean_ooo.Config
module Defense = Protean_defense.Defense

let defenses = Defense.all

let equivalence_tests =
  List.concat_map
    (fun (pname, program) ->
      List.map
        (fun (d : Defense.t) ->
          Alcotest.test_case
            (Printf.sprintf "%s under %s" pname d.Defense.id)
            `Quick
            (fun () ->
              Helpers.check_equivalence ~policy:(d.Defense.make ()) pname
                program))
        defenses)
    Helpers.all_programs

(* Instrumented programs must also run correctly under PROTEAN. *)
let instrumented_equivalence =
  let passes =
    [
      ("cts", Protean_protcc.Protcc.P_cts);
      ("ct", Protean_protcc.Protcc.P_ct);
      ("unr", Protean_protcc.Protcc.P_unr);
      ("rand", Protean_protcc.Protcc.P_rand (42, 0.5));
    ]
  in
  List.concat_map
    (fun (pname, program) ->
      List.concat_map
        (fun (passname, pass) ->
          let compiled =
            Protean_protcc.Protcc.instrument ~pass_override:pass program
          in
          List.map
            (fun (d : Defense.t) ->
              Alcotest.test_case
                (Printf.sprintf "%s/%s under %s" pname passname d.Defense.id)
                `Quick
                (fun () ->
                  Helpers.check_equivalence ~policy:(d.Defense.make ())
                    (pname ^ "/" ^ passname)
                    compiled.Protean_protcc.Protcc.program))
            [ Defense.prot_delay; Defense.prot_track ])
        passes)
    Helpers.all_programs

(* The CONTROL speculation model must also preserve architectural
   results. *)
let control_model_tests =
  List.map
    (fun (pname, program) ->
      Alcotest.test_case (pname ^ " under CONTROL/stt") `Quick (fun () ->
          Helpers.check_equivalence ~spec_model:Protean_ooo.Policy.Control
            ~policy:(Defense.stt.Defense.make ())
            pname program))
    Helpers.all_programs

(* Mispredictions and squashes must occur on branchy code (otherwise no
   transient window exists and the security evaluation is vacuous). *)
let test_mispredictions_happen () =
  let program = Helpers.branchy () in
  let result =
    Pipeline.run ~fuel:1_000_000 Config.test_core Protean_ooo.Policy.unsafe
      program ~overlays:[]
  in
  Alcotest.(check bool)
    "some mispredictions" true
    (result.Pipeline.stats.Protean_ooo.Stats.branch_mispredicts > 0)

let test_machine_clear () =
  let program = Helpers.division () in
  let result =
    Pipeline.run ~fuel:1_000_000 Config.test_core Protean_ooo.Policy.unsafe
      program ~overlays:[]
  in
  Alcotest.(check int)
    "one machine clear" 1
    result.Pipeline.stats.Protean_ooo.Stats.machine_clears

(* Store-to-load forwarding: a load right after a store to the same
   address must not wait for the store to commit. *)
let test_forwarding_fast () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (Asm.i 1234);
  Asm.store c (Asm.mbd Reg.rsp (-8)) (Asm.r Reg.rax);
  Asm.load c Reg.rbx (Asm.mbd Reg.rsp (-8));
  Asm.halt c;
  let program = Asm.finish c in
  let result =
    Pipeline.run ~fuel:10_000 Config.test_core Protean_ooo.Policy.unsafe
      program ~overlays:[]
  in
  Alcotest.(check bool) "finished" true result.Pipeline.finished;
  Alcotest.(check int64)
    "forwarded value" 1234L
    result.Pipeline.regs.(Reg.to_int Reg.rbx)

(* Defense overhead sanity: SPT-SB must be slower than unsafe on
   transmitter-heavy code. *)
let test_sptsb_slower () =
  let program = Helpers.pointer_chase 12 in
  let unsafe =
    Pipeline.run ~fuel:1_000_000 Config.test_core Protean_ooo.Policy.unsafe
      program ~overlays:[]
  in
  let sb =
    Pipeline.run ~fuel:1_000_000 Config.test_core
      (Defense.spt_sb.Defense.make ()) program ~overlays:[]
  in
  Alcotest.(check bool)
    "spt-sb slower" true
    (sb.Pipeline.stats.Protean_ooo.Stats.cycles
    > unsafe.Pipeline.stats.Protean_ooo.Stats.cycles)

(* ROB ring invariant: stepping random generated programs (with their
   mispredictions, squashes and machine clears) never desyncs the ring. *)
let prop_rob_ring_invariant =
  QCheck2.Test.make ~name:"ROB ring stays consistent" ~count:10
    QCheck2.Gen.(int_range 0 50_000)
    (fun seed ->
      let program =
        Protean_amulet.Gen.generate
          { Protean_amulet.Gen.default_spec with Protean_amulet.Gen.seed }
      in
      let t =
        Pipeline.create Config.test_core Protean_ooo.Policy.unsafe program
          ~overlays:[]
      in
      let steps = ref 0 in
      while (not (Pipeline.is_done t)) && !steps < 100_000 do
        Pipeline.step t;
        Pipeline.check_ring t;
        incr steps
      done;
      Pipeline.is_done t)

(* E-core configuration equivalence. *)
let ecore_equivalence =
  List.map
    (fun (pname, program) ->
      Alcotest.test_case (pname ^ " on E-core") `Quick (fun () ->
          Helpers.check_equivalence ~config:Config.e_core
            ~policy:Protean_ooo.Policy.unsafe pname program))
    Helpers.all_programs

(* Multicore: lockstep threads finish and each core's result matches its
   own sequential run. *)
let test_multicore_equivalence () =
  let programs = Protean_workloads.Parsec.simple_threads (fun tid ->
      Protean_workloads.Parsec.canneal ~moves:64 tid)
  in
  let r =
    Protean_ooo.Multicore.run ~fuel:2_000_000 Config.test_core
      ~make_policy:(fun () -> Protean_ooo.Policy.unsafe)
      programs
  in
  Alcotest.(check bool) "finished" true r.Protean_ooo.Multicore.finished;
  Array.iteri
    (fun i (core : Pipeline.result) ->
      let seq = Helpers.run_sequential programs.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "core %d regs" i)
        true
        (Helpers.regs_equal seq.Protean_arch.Exec.regs core.Pipeline.regs))
    r.Protean_ooo.Multicore.per_core

(* Determinism: the same run twice gives identical cycle counts and
   adversary traces. *)
let test_determinism () =
  let program = Helpers.branchy () in
  let go () =
    let r =
      Pipeline.run ~trace:true ~fuel:1_000_000 Config.test_core
        (Defense.prot_track.Defense.make ()) program ~overlays:[]
    in
    (r.Pipeline.stats.Protean_ooo.Stats.cycles,
     Protean_ooo.Hw_trace.all r.Pipeline.trace)
  in
  let c1, t1 = go () in
  let c2, t2 = go () in
  Alcotest.(check int) "cycles deterministic" c1 c2;
  Alcotest.(check bool) "trace deterministic" true (t1 = t2)

(* TAGE predictor: correctness is unaffected, and it learns a strongly
   biased pattern at least as well as the bimodal tables. *)
let tage_equivalence =
  List.map
    (fun (pname, program) ->
      Alcotest.test_case (pname ^ " with TAGE") `Quick (fun () ->
          Helpers.check_equivalence
            ~config:(Config.with_tage Config.test_core)
            ~policy:Protean_ooo.Policy.unsafe pname program))
    Helpers.all_programs

let test_tage_learns_pattern () =
  (* An alternating-direction branch: TAGE's history tables learn it;
     the bimodal predictor cannot. *)
  let tg = Protean_ooo.Tage.create () in
  let pc = 100 in
  let correct = ref 0 in
  let taken = ref false in
  for _ = 1 to 400 do
    taken := not !taken;
    let snap = Protean_ooo.Tage.snapshot tg pc in
    let p = Protean_ooo.Tage.predict_with tg snap in
    Protean_ooo.Tage.push_history tg p;
    if p = !taken then incr correct
    else Protean_ooo.Tage.repair_last tg !taken (* misprediction repair *);
    Protean_ooo.Tage.update_with tg snap !taken
  done;
  Alcotest.(check bool)
    (Printf.sprintf "alternating pattern learned (%d/400)" !correct)
    true (!correct > 300)

let tests =
  equivalence_tests @ instrumented_equivalence @ control_model_tests
  @ ecore_equivalence @ tage_equivalence
  @ [ Alcotest.test_case "TAGE learns alternation" `Quick test_tage_learns_pattern ]
  @ [
      QCheck_alcotest.to_alcotest prop_rob_ring_invariant;
      Alcotest.test_case "multicore equivalence" `Quick test_multicore_equivalence;
      Alcotest.test_case "determinism" `Quick test_determinism;
    ]
  @ [
      Alcotest.test_case "mispredictions happen" `Quick test_mispredictions_happen;
      Alcotest.test_case "div fault machine clear" `Quick test_machine_clear;
      Alcotest.test_case "store-to-load forwarding" `Quick test_forwarding_fast;
      Alcotest.test_case "spt-sb has overhead" `Quick test_sptsb_slower;
    ]
