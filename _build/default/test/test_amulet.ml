(* Security-evaluation tests: the AMuLeT* fuzzer must find violations on
   the unsafe baseline and none on PROTEAN; the pending-squash bug must
   be detectable under the timing adversary and only there; and random
   generated programs must behave identically on the sequential machine
   and the pipeline under every defense. *)

module Fuzz = Protean_amulet.Fuzz
module Gen = Protean_amulet.Gen
module Defense = Protean_defense.Defense
module Protcc = Protean_protcc.Protcc
module Pipeline = Protean_ooo.Pipeline
module Config = Protean_ooo.Config

let small c = { c with Fuzz.programs = 8; inputs_per_program = 3; seed = 5 }

let arch_campaign = small Fuzz.default_campaign

let ct_campaign =
  small
    {
      Fuzz.default_campaign with
      Fuzz.mode_of = Fuzz.ct_seq;
      gen_klass = Gen.G_ct;
      instrumentation = Fuzz.I_pass Protcc.P_ct;
    }

let cts_campaign =
  small
    {
      Fuzz.default_campaign with
      Fuzz.mode_of = Fuzz.cts_seq;
      gen_klass = Gen.G_ct;
      instrumentation = Fuzz.I_pass Protcc.P_cts;
    }

let unprot_campaign =
  small
    {
      Fuzz.default_campaign with
      Fuzz.mode_of = Fuzz.unprot_seq;
      gen_klass = Gen.G_ct;
      instrumentation = Fuzz.I_pass (Protcc.P_rand (3, 0.5));
    }

let test_unsafe_leaks () =
  let out = Fuzz.run arch_campaign Defense.unsafe in
  Alcotest.(check bool) "tests ran" true (out.Fuzz.tests > 0);
  Alcotest.(check bool) "violations found" true (out.Fuzz.violations > 0)

let protean_clean name campaign defense () =
  let out = Fuzz.run campaign defense in
  Alcotest.(check bool) (name ^ " ran tests") true (out.Fuzz.tests > 0);
  Alcotest.(check int) (name ^ " zero violations") 0 out.Fuzz.violations

let test_baselines_clean () =
  (* STT upholds ARCH-SEQ; SPT and SPT-SB uphold CT-SEQ on unmodified
     binaries (Section VII-B4c). *)
  let ct_base = { ct_campaign with Fuzz.instrumentation = Fuzz.I_none } in
  List.iter
    (fun (name, campaign, d) ->
      let out = Fuzz.run campaign d in
      Alcotest.(check int) (name ^ " clean") 0 out.Fuzz.violations)
    [
      ("stt/arch", arch_campaign, Defense.stt);
      ("spt/ct", ct_base, Defense.spt);
      ("spt-sb/ct", ct_base, Defense.spt_sb);
    ]

let test_squash_bug_found_by_timing () =
  let c = { ct_campaign with Fuzz.adversary = Fuzz.Timing; squash_bug = true } in
  let buggy = Fuzz.run c Defense.prot_track in
  Alcotest.(check bool) "timing adversary finds the pending-squash bug" true
    (buggy.Fuzz.violations > 0);
  let fixed = Fuzz.run { c with Fuzz.squash_bug = false } Defense.prot_track in
  Alcotest.(check int) "fixed implementation is clean" 0 fixed.Fuzz.violations

let test_timing_adversary_clean_protean () =
  let c = { ct_campaign with Fuzz.adversary = Fuzz.Timing } in
  let out = Fuzz.run c Defense.prot_track in
  Alcotest.(check int) "prot-track clean under timing" 0 out.Fuzz.violations

(* Generated programs are deterministic and architecture-equivalent on
   the pipeline under every defense. *)
let prop_generated_equivalence =
  QCheck2.Test.make ~name:"generated programs: seq == ooo under all defenses"
    ~count:10
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let program = Gen.generate { Gen.default_spec with Gen.seed } in
      let seq = Helpers.run_sequential program in
      List.for_all
        (fun (d : Defense.t) ->
          let r =
            Pipeline.run ~fuel:500_000 Config.test_core (d.Defense.make ())
              program ~overlays:[]
          in
          r.Pipeline.finished
          && Helpers.regs_equal seq.Protean_arch.Exec.regs r.Pipeline.regs)
        [ Defense.unsafe; Defense.stt; Defense.spt; Defense.prot_track; Defense.prot_delay ])

let tests =
  [
    Alcotest.test_case "unsafe baseline leaks" `Quick test_unsafe_leaks;
    Alcotest.test_case "prot-track clean (CT-SEQ)" `Quick
      (protean_clean "prot-track" ct_campaign Defense.prot_track);
    Alcotest.test_case "prot-delay clean (CT-SEQ)" `Quick
      (protean_clean "prot-delay" ct_campaign Defense.prot_delay);
    Alcotest.test_case "prot-track clean (CTS-SEQ)" `Quick
      (protean_clean "prot-track" cts_campaign Defense.prot_track);
    Alcotest.test_case "prot-track clean (UNPROT-SEQ)" `Quick
      (protean_clean "prot-track" unprot_campaign Defense.prot_track);
    Alcotest.test_case "prot-delay clean (UNPROT-SEQ)" `Quick
      (protean_clean "prot-delay" unprot_campaign Defense.prot_delay);
    Alcotest.test_case "baselines clean" `Quick test_baselines_clean;
    Alcotest.test_case "squash bug found by timing adversary" `Quick
      test_squash_bug_found_by_timing;
    Alcotest.test_case "timing adversary clean on fixed" `Quick
      test_timing_adversary_clean_protean;
    QCheck_alcotest.to_alcotest prop_generated_equivalence;
  ]
