(* ISA-level tests: register naming, operand metadata, the assembler and
   the binary encoder (including PROT-prefix round-trips). *)

open Protean_isa

let test_reg_names () =
  Alcotest.(check string) "rax" "rax" (Reg.name Reg.rax);
  Alcotest.(check string) "flags" "flags" (Reg.name Reg.flags);
  Alcotest.(check bool) "of_name inverse" true
    (List.for_all (fun r -> Reg.equal (Reg.of_name (Reg.name r)) r) Reg.all);
  Alcotest.(check bool) "rsp is gpr" true (Reg.is_gpr Reg.rsp);
  Alcotest.(check bool) "flags not gpr" false (Reg.is_gpr Reg.flags)

let test_reads_writes () =
  let op = Insn.Binop (Insn.Add, Reg.rax, Insn.Reg Reg.rbx) in
  Alcotest.(check bool) "add reads rax rbx" true
    (List.mem Reg.rax (Insn.read_regs op) && List.mem Reg.rbx (Insn.read_regs op));
  Alcotest.(check bool) "add writes flags" true
    (List.mem Reg.flags (Insn.writes op));
  let load = Insn.Load (Insn.W64, Reg.rcx, Asm.mb Reg.rdi) in
  Alcotest.(check bool) "load addr role" true
    (List.exists (fun (r, role) -> Reg.equal r Reg.rdi && role = Insn.Addr)
       (Insn.reads load));
  (* W8 loads merge: destination counts as a read *)
  let load8 = Insn.Load (Insn.W8, Reg.rcx, Asm.mb Reg.rdi) in
  Alcotest.(check bool) "w8 load reads dst" true
    (List.mem Reg.rcx (Insn.read_regs load8))

let test_transmitters () =
  let check op expected =
    Alcotest.(check bool) (Insn.to_string (Insn.make op)) expected
      (Insn.is_transmitter op)
  in
  check (Insn.Load (Insn.W64, Reg.rax, Asm.mb Reg.rdi)) true;
  check (Insn.Store (Insn.W64, Asm.mb Reg.rdi, Asm.r Reg.rax)) true;
  check (Insn.Jcc (Insn.Z, 3)) true;
  check (Insn.Div (Reg.rax, Reg.rbx, Asm.r Reg.rcx)) true;
  check Insn.Ret true;
  check (Insn.Binop (Insn.Add, Reg.rax, Asm.i 1)) false;
  check (Insn.Cmov (Insn.Z, Reg.rax, Asm.r Reg.rbx)) false;
  check (Insn.Cmp (Reg.rax, Asm.i 0)) false

let test_asm_labels () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.jmp c "end";
  Asm.mov c Reg.rax (Asm.i 1);
  Asm.label c "end";
  Asm.halt c;
  let p = Asm.finish c in
  (match p.Program.code.(0).Insn.op with
  | Insn.Jmp 2 -> ()
  | op -> Alcotest.failf "bad target: %a" Insn.pp_op op);
  Alcotest.(check int) "func size" 3
    (match Program.find_func p "main" with
    | Some f -> f.Program.size
    | None -> -1)

let test_asm_duplicate_label () =
  let c = Asm.create () in
  Asm.label c "x";
  Alcotest.check_raises "duplicate" (Invalid_argument "Asm.label: duplicate label x")
    (fun () -> Asm.label c "x")

let test_encode_roundtrip_basic () =
  let insns =
    [
      Insn.make ~prot:true (Insn.Mov (Insn.W64, Reg.rax, Asm.i64 (-5L)));
      Insn.make (Insn.Load (Insn.W8, Reg.rbx, Asm.mbd Reg.rsp (-16)));
      Insn.make ~prot:true (Insn.Store (Insn.W32, Asm.mbis Reg.rdi Reg.rcx 4, Asm.r Reg.rdx));
      Insn.make (Insn.Jcc (Insn.Ae, 12345));
      Insn.make Insn.Ret;
      Insn.make (Insn.Div (Reg.rax, Reg.rbx, Asm.i 7));
    ]
  in
  let code = Array.of_list insns in
  let decoded = Encode.decode_program (Encode.encode_program code) in
  Alcotest.(check int) "length" (Array.length code) (Array.length decoded);
  Array.iteri
    (fun i insn ->
      Alcotest.(check string) "insn" (Insn.to_string insn) (Insn.to_string decoded.(i));
      Alcotest.(check bool) "prot" insn.Insn.prot decoded.(i).Insn.prot)
    code

(* Property: encode/decode is the identity on random instructions. *)
let arbitrary_insn =
  let open QCheck2.Gen in
  let reg = map Reg.of_int (int_range 0 15) in
  let imm = map Int64.of_int (int_range (-1000000) 1000000) in
  let src = oneof [ map (fun r -> Insn.Reg r) reg; map (fun v -> Insn.Imm v) imm ] in
  let width = oneofl [ Insn.W8; Insn.W32; Insn.W64 ] in
  let cond =
    oneofl Insn.[ Z; Nz; Lt; Le; Gt; Ge; B; Be; A; Ae ]
  in
  let mem =
    map3
      (fun base index disp -> { Insn.base; index; scale = 8; disp })
      (opt reg) (opt reg) (int_range (-4096) 4096)
  in
  let op =
    oneof
      [
        map3 (fun w d s -> Insn.Mov (w, d, s)) width reg src;
        map2 (fun d m -> Insn.Lea (d, m)) reg mem;
        map3 (fun w d m -> Insn.Load (w, d, m)) width reg mem;
        map3 (fun w m s -> Insn.Store (w, m, s)) width mem src;
        map3
          (fun o d s -> Insn.Binop (o, d, s))
          (oneofl Insn.[ Add; Sub; And; Or; Xor; Shl; Shr; Sar; Mul ])
          reg src;
        map2 (fun c d -> Insn.Setcc (c, d)) cond reg;
        map3 (fun c d s -> Insn.Cmov (c, d, s)) cond reg src;
        map2 (fun c t -> Insn.Jcc (c, t)) cond (int_range 0 100000);
        map (fun t -> Insn.Jmp t) (int_range 0 100000);
        map (fun r -> Insn.Jmpi r) reg;
        map (fun t -> Insn.Call t) (int_range 0 100000);
        return Insn.Ret;
        map (fun s -> Insn.Push s) src;
        map (fun d -> Insn.Pop d) reg;
        return Insn.Nop;
        return Insn.Halt;
      ]
  in
  map2 (fun op prot -> { Insn.op; prot }) op bool

let prop_encode_roundtrip =
  QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:500 arbitrary_insn
    (fun insn ->
      let decoded = Encode.decode_program (Encode.encode_program [| insn |]) in
      Array.length decoded = 1
      && String.equal (Insn.to_string decoded.(0)) (Insn.to_string insn)
      && decoded.(0).Insn.prot = insn.Insn.prot)

let prop_metadata_table_roundtrip =
  QCheck2.Test.make ~name:"metadata-table encoding roundtrip" ~count:300
    QCheck2.Gen.(list_size (int_range 1 20) arbitrary_insn)
    (fun insns ->
      let code = Array.of_list insns in
      let bytes, table = Encode.encode_metadata_table code in
      let decoded = Encode.decode_with_metadata bytes table in
      Array.length decoded = Array.length code
      && Array.for_all2
           (fun (a : Insn.t) (b : Insn.t) ->
             String.equal (Insn.to_string a) (Insn.to_string b)
             && a.Insn.prot = b.Insn.prot)
           code decoded)

let prop_prot_prefix_size =
  QCheck2.Test.make ~name:"PROT prefix adds exactly one byte" ~count:200
    arbitrary_insn (fun insn ->
      let with_prot = Encode.encoded_size { insn with Insn.prot = true } in
      let without = Encode.encoded_size { insn with Insn.prot = false } in
      with_prot = without + 1)

let tests =
  [
    Alcotest.test_case "register names" `Quick test_reg_names;
    Alcotest.test_case "reads/writes metadata" `Quick test_reads_writes;
    Alcotest.test_case "transmitter classification" `Quick test_transmitters;
    Alcotest.test_case "assembler labels" `Quick test_asm_labels;
    Alcotest.test_case "duplicate label rejected" `Quick test_asm_duplicate_label;
    Alcotest.test_case "encode roundtrip basic" `Quick test_encode_roundtrip_basic;
    QCheck_alcotest.to_alcotest prop_encode_roundtrip;
    QCheck_alcotest.to_alcotest prop_metadata_table_roundtrip;
    QCheck_alcotest.to_alcotest prop_prot_prefix_size;
  ]
