(* Edge-case and failure-injection tests across modules. *)

open Protean_isa
module Exec = Protean_arch.Exec
module Contract = Protean_arch.Contract
module Observer = Protean_arch.Observer
module Cache = Protean_ooo.Cache
module Config = Protean_ooo.Config
module Pipeline = Protean_ooo.Pipeline

let test_decode_malformed () =
  Alcotest.check_raises "bad opcode"
    (Invalid_argument "Encode: bad opcode 200") (fun () ->
      ignore (Encode.decode_program (String.make 1 (Char.chr 200))))

let test_asm_undefined_label () =
  let c = Asm.create () in
  Asm.func c "main";
  Asm.jmp c "nowhere";
  Alcotest.check_raises "undefined label"
    (Invalid_argument "Asm.finish: undefined label nowhere") (fun () ->
      ignore (Asm.finish c))

let test_fuel_exhaustion () =
  (* An infinite loop must report finished = false, not hang. *)
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.label c "spin";
  Asm.add c Reg.rax (Asm.i 1);
  Asm.jmp c "spin";
  let p = Asm.finish c in
  let r =
    Pipeline.run ~fuel:5_000 Config.test_core Protean_ooo.Policy.unsafe p
      ~overlays:[]
  in
  Alcotest.(check bool) "not finished" false r.Pipeline.finished

let test_out_of_bounds_pc_halts () =
  (* Falling off the end of the code array halts cleanly. *)
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (Asm.i 7);
  let p = Asm.finish c in
  let st = Exec.init p in
  Exec.run_to_halt ~fuel:100 p st;
  Alcotest.(check bool) "halted" true st.Exec.halted;
  let r =
    Pipeline.run ~fuel:10_000 Config.test_core Protean_ooo.Policy.unsafe p
      ~overlays:[]
  in
  Alcotest.(check bool) "pipeline finished" true r.Pipeline.finished;
  Alcotest.(check int64) "result" 7L r.Pipeline.regs.(Reg.to_int Reg.rax)

(* L1D eviction erases protection knowledge: after evicting a line whose
   bytes were unprotected, the bytes read as protected again
   (Section IV-C2a: ProtISA forgets on eviction). *)
let test_cache_eviction_forgets_protection () =
  let cfg = { Config.size_kib = 1; ways = 1; line = 64; latency = 1 } in
  let cache = Cache.create cfg in
  (* 1 KiB direct-mapped: 16 sets; addresses 0 and 1024 conflict. *)
  ignore (Cache.access cache 0L);
  Cache.set_protection cache 0L 8 ~protected:false;
  Alcotest.(check bool) "unprotected while resident" false
    (Cache.protected_bytes cache 0L 8);
  ignore (Cache.access cache 1024L) (* evicts line 0 *);
  Alcotest.(check bool) "protected after eviction" true
    (Cache.protected_bytes cache 0L 8);
  (* refill: the line returns all-protected *)
  ignore (Cache.access cache 0L);
  Alcotest.(check bool) "refill is protected" true
    (Cache.protected_bytes cache 0L 8)

(* Call pushes a public return address: the stack slot must be
   unprotected in the architectural ProtSet. *)
let test_protset_call_pushes_public () =
  let c = Asm.create () in
  Asm.set_main c;
  Asm.func c ~klass:Program.Unr "main";
  Asm.call c "f";
  Asm.halt c;
  Asm.func c ~klass:Program.Unr "f";
  Asm.ret c;
  let p = Asm.finish c in
  let st = Exec.init p in
  let ps = Protean_arch.Protset.create () in
  let sp = Int64.sub p.Program.stack_base 8L in
  (* step the call only *)
  Protean_arch.Protset.step ps (Exec.step p st);
  Alcotest.(check bool) "return address unprotected" false
    (Protean_arch.Protset.mem_protected ps sp 8)

(* CTS observer: publicly-typed defs are exposed, secret-typed are not. *)
let test_cts_observer_typing () =
  let c = Asm.create () in
  Asm.data c ~addr:0x6000L ~secret:true (String.make 8 '\000');
  Asm.func c ~klass:Program.Cts "main";
  Asm.mov c Reg.rdi (Asm.i 0x6000);
  Asm.load c Reg.rax (Asm.mb Reg.rdi) (* secret *);
  Asm.mov c Reg.rbx (Asm.r Reg.rax) (* secret copy: pc 2 *);
  Asm.halt c;
  let p = Asm.finish c in
  let typing : Observer.typing = Hashtbl.create 4 in
  (* Claim (wrongly, for the test) that pc 2's rbx is publicly typed:
     then the two secrets must distinguish the traces. *)
  Hashtbl.replace typing 2 [ Reg.rbx ];
  let ov v =
    [ (0x6000L, let b = Buffer.create 8 in Buffer.add_int64_le b v; Buffer.contents b) ]
  in
  let a = Contract.run (Observer.Cts_mode typing) p ~overlays:(ov 1L) in
  let b = Contract.run (Observer.Cts_mode typing) p ~overlays:(ov 2L) in
  Alcotest.(check bool) "public def exposes value" false
    (Contract.traces_equal a.Contract.trace b.Contract.trace);
  (* With an empty typing the traces are equal (nothing exposed). *)
  let empty : Observer.typing = Hashtbl.create 1 in
  let a = Contract.run (Observer.Cts_mode empty) p ~overlays:(ov 1L) in
  let b = Contract.run (Observer.Cts_mode empty) p ~overlays:(ov 2L) in
  Alcotest.(check bool) "secret defs hidden" true
    (Contract.traces_equal a.Contract.trace b.Contract.trace)

let test_first_divergence () =
  let t1 = [| Observer.O_pc 0; Observer.O_pc 1 |] in
  let t2 = [| Observer.O_pc 0; Observer.O_pc 2 |] in
  Alcotest.(check (option int)) "diverges at 1" (Some 1)
    (Contract.first_divergence t1 t2);
  Alcotest.(check (option int)) "equal" None (Contract.first_divergence t1 t1);
  let t3 = [| Observer.O_pc 0 |] in
  Alcotest.(check (option int)) "length mismatch" (Some 1)
    (Contract.first_divergence t1 t3)

(* Deep recursion: stack discipline across many frames under defenses. *)
let test_deep_recursion () =
  let c = Asm.create () in
  Asm.set_main c;
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rdi (Asm.i 40);
  Asm.call c "down";
  Asm.halt c;
  Asm.func c ~klass:Program.Arch "down";
  Asm.test c Reg.rdi (Asm.r Reg.rdi);
  Asm.jz c "base";
  Asm.push c (Asm.r Reg.rdi);
  Asm.sub c Reg.rdi (Asm.i 1);
  Asm.call c "down";
  Asm.pop c Reg.rdi;
  Asm.add c Reg.rax (Asm.r Reg.rdi);
  Asm.ret c;
  Asm.label c "base";
  Asm.mov c Reg.rax (Asm.i 0);
  Asm.ret c;
  let p = Asm.finish c in
  List.iter
    (fun (d : Protean_defense.Defense.t) ->
      Helpers.check_equivalence
        ~policy:(d.Protean_defense.Defense.make ())
        ("deep recursion " ^ d.Protean_defense.Defense.id)
        p)
    Protean_defense.Defense.all

let tests =
  [
    Alcotest.test_case "decode malformed" `Quick test_decode_malformed;
    Alcotest.test_case "asm undefined label" `Quick test_asm_undefined_label;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "out-of-bounds pc halts" `Quick test_out_of_bounds_pc_halts;
    Alcotest.test_case "eviction forgets protection" `Quick
      test_cache_eviction_forgets_protection;
    Alcotest.test_case "call pushes public" `Quick test_protset_call_pushes_public;
    Alcotest.test_case "cts observer typing" `Quick test_cts_observer_typing;
    Alcotest.test_case "first divergence" `Quick test_first_divergence;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
  ]
