(* Architectural machine tests: sequential semantics, flags, memory,
   ProtSet tracking and the contract observers. *)

open Protean_isa
module Exec = Protean_arch.Exec
module Memory = Protean_arch.Memory
module Sem = Protean_arch.Sem
module Protset = Protean_arch.Protset
module Observer = Protean_arch.Observer
module Contract = Protean_arch.Contract

let reg st r = st.Exec.regs.(Reg.to_int r)

let run_prog p =
  let st = Exec.init p in
  Exec.run_to_halt ~fuel:100_000 p st;
  st

let test_arith_flags () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (Asm.i 5);
  Asm.sub c Reg.rax (Asm.i 5);
  Asm.setcc c Insn.Z Reg.rbx (* 1: result was zero *);
  Asm.mov c Reg.rcx (Asm.i 3);
  Asm.cmp c Reg.rcx (Asm.i 10);
  Asm.setcc c Insn.Lt Reg.rdx (* 1: 3 < 10 *);
  Asm.setcc c Insn.B Reg.rsi (* 1: 3 <u 10 *);
  Asm.mov c Reg.rdi (Asm.i (-1));
  Asm.cmp c Reg.rdi (Asm.i 1);
  Asm.setcc c Insn.Lt Reg.r8 (* 1: -1 < 1 signed *);
  Asm.setcc c Insn.B Reg.r9 (* 0: 0xfff... not <u 1 *);
  Asm.halt c;
  let st = run_prog (Asm.finish c) in
  Alcotest.(check int64) "zf" 1L (reg st Reg.rbx);
  Alcotest.(check int64) "lt" 1L (reg st Reg.rdx);
  Alcotest.(check int64) "b" 1L (reg st Reg.rsi);
  Alcotest.(check int64) "signed lt" 1L (reg st Reg.r8);
  Alcotest.(check int64) "unsigned not below" 0L (reg st Reg.r9)

let test_width_semantics () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (Asm.i64 0x1122334455667788L);
  Asm.mov c ~w:Insn.W32 Reg.rax (Asm.i64 0xaabbccddL) (* zero-extends *);
  Asm.mov c Reg.rbx (Asm.i64 0x1111111111111111L);
  Asm.mov c ~w:Insn.W8 Reg.rbx (Asm.i 0xff) (* merges low byte *);
  Asm.halt c;
  let st = run_prog (Asm.finish c) in
  Alcotest.(check int64) "w32 zero-extend" 0xaabbccddL (reg st Reg.rax);
  Alcotest.(check int64) "w8 merge" 0x11111111111111ffL (reg st Reg.rbx)

let test_div_fault_suppressed () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (Asm.i 100);
  Asm.mov c Reg.rbx (Asm.i 0);
  Asm.div c Reg.rcx Reg.rax (Asm.r Reg.rbx);
  Asm.halt c;
  let st = run_prog (Asm.finish c) in
  Alcotest.(check int64) "div/0 = all ones" Int64.minus_one (reg st Reg.rcx);
  Alcotest.(check bool) "halted" true st.Exec.halted

let test_memory_endianness () =
  let m = Memory.create () in
  Memory.write m 0x100L 8 0x0102030405060708L;
  Alcotest.(check int64) "byte 0 is LSB" 8L (Int64.of_int (Memory.read_byte m 0x100L));
  Alcotest.(check int64) "read back" 0x0102030405060708L (Memory.read m 0x100L 8);
  Alcotest.(check int64) "partial" 0x0708L (Memory.read m 0x100L 2);
  Alcotest.(check int64) "unmapped reads zero" 0L (Memory.read m 0x999999L 8)

let test_protset_rules () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Unr "main";
  Asm.mov c ~prot:true Reg.rax (Asm.i 1) (* protect rax *);
  Asm.mov c Reg.rbx (Asm.i 2) (* unprotect rbx *);
  Asm.mov c Reg.rdi (Asm.i 0x5000);
  Asm.store c (Asm.mb Reg.rdi) (Asm.r Reg.rax) (* secret store: mem protected *);
  Asm.store c (Asm.mbd Reg.rdi 8) (Asm.r Reg.rbx) (* public store: unprot *);
  Asm.load c ~prot:true Reg.rcx (Asm.mb Reg.rdi) (* PROT load: mem unchanged *);
  Asm.load c Reg.rdx (Asm.mbd Reg.rdi 8) (* unprefixed: mem + dst unprot *);
  Asm.halt c;
  let p = Asm.finish c in
  let st = Exec.init p in
  let ps = Protset.create () in
  let rec loop () =
    if not st.Exec.halted then begin
      let eff = Exec.step p st in
      Protset.step ps eff;
      loop ()
    end
  in
  loop ();
  Alcotest.(check bool) "rax protected" true (Protset.reg_protected ps Reg.rax);
  Alcotest.(check bool) "rbx unprotected" false (Protset.reg_protected ps Reg.rbx);
  Alcotest.(check bool) "rcx protected (PROT load)" true (Protset.reg_protected ps Reg.rcx);
  Alcotest.(check bool) "rdx unprotected" false (Protset.reg_protected ps Reg.rdx);
  Alcotest.(check bool) "secret bytes protected" true
    (Protset.mem_protected ps 0x5000L 8);
  Alcotest.(check bool) "public bytes unprotected" false
    (Protset.mem_protected ps 0x5008L 8)

(* W8 sub-register writes leave full-register protection unchanged when
   unprefixed (Section IV-B1). *)
let test_protset_subregister () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Unr "main";
  Asm.mov c ~prot:true Reg.rax (Asm.i 1);
  Asm.mov c ~w:Insn.W8 Reg.rax (Asm.i 0) (* unprefixed W8: rax stays protected *);
  Asm.mov c ~prot:true Reg.rbx (Asm.i 1);
  Asm.mov c ~w:Insn.W32 Reg.rbx (Asm.i 0) (* W32 is a full write: unprotects *);
  Asm.halt c;
  let p = Asm.finish c in
  let st = Exec.init p in
  let ps = Protset.create () in
  while not st.Exec.halted do
    Protset.step ps (Exec.step p st)
  done;
  Alcotest.(check bool) "w8 keeps protection" true (Protset.reg_protected ps Reg.rax);
  Alcotest.(check bool) "w32 unprotects" false (Protset.reg_protected ps Reg.rbx)

(* Observer modes: secret-independent programs give equal traces when
   only secrets vary; a program that loads a secret differs under ARCH
   but not under CT when addresses are public. *)
let secret_prog ~use_secret =
  let c = Asm.create () in
  Asm.data c ~addr:0x6000L ~secret:true (String.make 8 '\000');
  Asm.func c ~klass:Program.Ct "main";
  Asm.mov c Reg.rdi (Asm.i 0x6000);
  if use_secret then Asm.load c Reg.rax (Asm.mb Reg.rdi)
  else Asm.mov c Reg.rax (Asm.i 7);
  Asm.add c Reg.rax (Asm.r Reg.rax);
  Asm.halt c;
  Asm.finish c

let overlay v = [ (0x6000L, let b = Buffer.create 8 in Buffer.add_int64_le b v; Buffer.contents b) ]

let test_observer_modes () =
  let p = secret_prog ~use_secret:true in
  let arch_a = Contract.run Observer.Arch_mode p ~overlays:(overlay 1L) in
  let arch_b = Contract.run Observer.Arch_mode p ~overlays:(overlay 2L) in
  Alcotest.(check bool) "ARCH exposes loaded secret" false
    (Contract.traces_equal arch_a.Contract.trace arch_b.Contract.trace);
  let ct_a = Contract.run Observer.Ct_mode p ~overlays:(overlay 1L) in
  let ct_b = Contract.run Observer.Ct_mode p ~overlays:(overlay 2L) in
  Alcotest.(check bool) "CT hides secret data" true
    (Contract.traces_equal ct_a.Contract.trace ct_b.Contract.trace)

let test_unprot_observer () =
  (* An unprefixed load of the secret exposes it under UNPROT-SEQ; a
     PROT-prefixed load hides it. *)
  let make_prog prot =
    let c = Asm.create () in
    Asm.data c ~addr:0x6000L ~secret:true (String.make 8 '\000');
    Asm.func c ~klass:Program.Unr "main";
    Asm.mov c Reg.rdi (Asm.i 0x6000);
    Asm.load c ~prot Reg.rax (Asm.mb Reg.rdi);
    Asm.halt c;
    Asm.finish c
  in
  let diff prot =
    let p = make_prog prot in
    let a = Contract.run Observer.Unprot_mode p ~overlays:(overlay 1L) in
    let b = Contract.run Observer.Unprot_mode p ~overlays:(overlay 2L) in
    not (Contract.traces_equal a.Contract.trace b.Contract.trace)
  in
  Alcotest.(check bool) "unprefixed load exposes" true (diff false);
  Alcotest.(check bool) "PROT load hides" false (diff true)

(* Property: Exec matches Sem on binop/flags algebra for random values. *)
let prop_sub_flags =
  QCheck2.Test.make ~name:"sub flags match comparisons" ~count:300
    QCheck2.Gen.(pair (map Int64.of_int int) (map Int64.of_int int))
    (fun (a, b) ->
      let fl = Sem.eval_cmp a b in
      Sem.eval_cond Insn.Z fl = Int64.equal a b
      && Sem.eval_cond Insn.Lt fl = (Int64.compare a b < 0)
      && Sem.eval_cond Insn.B fl = (Int64.unsigned_compare a b < 0)
      && Sem.eval_cond Insn.Ge fl = (Int64.compare a b >= 0)
      && Sem.eval_cond Insn.Ae fl = (Int64.unsigned_compare a b >= 0))

let tests =
  [
    Alcotest.test_case "arithmetic flags" `Quick test_arith_flags;
    Alcotest.test_case "width semantics" `Quick test_width_semantics;
    Alcotest.test_case "div fault suppressed" `Quick test_div_fault_suppressed;
    Alcotest.test_case "memory endianness" `Quick test_memory_endianness;
    Alcotest.test_case "protset rules" `Quick test_protset_rules;
    Alcotest.test_case "protset subregister" `Quick test_protset_subregister;
    Alcotest.test_case "observer modes" `Quick test_observer_modes;
    Alcotest.test_case "unprot observer" `Quick test_unprot_observer;
    QCheck_alcotest.to_alcotest prop_sub_flags;
  ]
