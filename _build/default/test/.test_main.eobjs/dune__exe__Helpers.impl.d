test/helpers.ml: Alcotest Array Asm Buffer Bytes Char Insn Int64 List Printf Program Protean_arch Protean_isa Protean_ooo Reg String
