test/test_workloads.ml: Alcotest Array Int64 List Program Protean_arch Protean_isa Protean_workloads QCheck2 String
