test/test_main.ml: Alcotest Test_amulet Test_arch Test_defense Test_edge Test_harness Test_isa Test_ooo Test_protcc Test_workloads
