test/test_defense.ml: Alcotest Asm Helpers Insn Int64 List Printf Program Protean_defense Protean_isa Protean_ooo Protean_workloads Reg String
