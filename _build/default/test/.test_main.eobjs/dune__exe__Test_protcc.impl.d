test/test_protcc.ml: Alcotest Array Asm Char Helpers Insn List Printf Program Protean_amulet Protean_arch Protean_isa Protean_protcc QCheck2 QCheck_alcotest Reg String
