test/test_edge.ml: Alcotest Array Asm Buffer Char Encode Hashtbl Helpers Int64 List Program Protean_arch Protean_defense Protean_isa Protean_ooo Reg String
