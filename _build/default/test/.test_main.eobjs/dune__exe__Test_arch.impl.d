test/test_arch.ml: Alcotest Array Asm Buffer Insn Int64 Program Protean_arch Protean_isa QCheck2 QCheck_alcotest Reg String
