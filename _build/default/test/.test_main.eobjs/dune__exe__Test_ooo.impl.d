test/test_ooo.ml: Alcotest Array Asm Helpers List Printf Program Protean_amulet Protean_arch Protean_defense Protean_isa Protean_ooo Protean_protcc Protean_workloads QCheck2 QCheck_alcotest Reg
