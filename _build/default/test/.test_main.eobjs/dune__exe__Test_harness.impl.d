test/test_harness.ml: Alcotest Buffer Format Helpers Protean_harness Protean_isa Protean_protcc Protean_workloads String
