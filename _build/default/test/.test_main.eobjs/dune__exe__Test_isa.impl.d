test/test_isa.ml: Alcotest Array Asm Encode Insn Int64 List Program Protean_isa QCheck2 QCheck_alcotest Reg String
