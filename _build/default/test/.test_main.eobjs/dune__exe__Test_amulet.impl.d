test/test_amulet.ml: Alcotest Helpers List Protean_amulet Protean_arch Protean_defense Protean_ooo Protean_protcc QCheck2 QCheck_alcotest
