(* Workload validation: every crypto kernel's simulated output matches
   its pure-OCaml reference implementation, and every benchmark runs to
   completion (sequentially and on the pipeline). *)

open Protean_isa
module W = Protean_workloads
module Exec = Protean_arch.Exec
module Memory = Protean_arch.Memory

let run p =
  let st = Exec.init p in
  Exec.run_to_halt ~fuel:30_000_000 p st;
  Alcotest.(check bool) "halted" true st.Exec.halted;
  st

let check_bytes name addr expected st =
  let got = Memory.read_string st.Exec.mem addr (String.length expected) in
  if not (String.equal got expected) then Alcotest.failf "%s: output mismatch" name

let mod61 v = Int64.rem v W.Ckit.p61

let test_chacha20 () =
  let st = run (W.Chacha20.make ~blocks:2 ()) in
  check_bytes "chacha20" 0x3000L (W.Chacha20.ref_output 2) st

let test_chacha20_looped () =
  let st = run (W.Chacha20.make ~variant:`Looped ~blocks:2 ()) in
  check_bytes "chacha20-looped" 0x3000L (W.Chacha20.ref_output 2) st

let test_salsa20 () =
  let st = run (W.Salsa20.make ()) in
  check_bytes "salsa20" 0x3000L (W.Salsa20.ref_output 10) st

let test_sha256 () =
  let st = run (W.Sha256.make ~blocks:2 ()) in
  check_bytes "sha256" 0x2500L (W.Sha256.ref_digest 2) st

let test_poly1305 () =
  let st = run (W.Poly1305.make ~words:32 ()) in
  Alcotest.(check bool) "tag" true
    (W.Poly1305.tags_match (Memory.read st.Exec.mem 0x2600L 8) 32)

let test_x25519 () =
  let st = run (W.X25519.make ()) in
  let x2, z2 = W.X25519.ref_ladder () in
  Alcotest.(check int64) "x2" x2 (mod61 (Memory.read st.Exec.mem 0x2300L 8));
  Alcotest.(check int64) "z2" z2 (mod61 (Memory.read st.Exec.mem 0x2308L 8))

let test_speck () =
  let st = run (W.Speck.make ~blocks:4 ()) in
  check_bytes "speck" 0x2500L (W.Speck.ref_encrypt 4) st

let test_xtea () =
  let st = run (W.Xtea.make ~blocks:4 ()) in
  check_bytes "xtea" 0x2200L (W.Xtea.ref_encrypt 4) st

let test_djbsort () =
  let st = run (W.Djbsort.make ~n:32 ()) in
  check_bytes "djbsort" 0x2000L (W.Djbsort.ref_sorted 32) st

let test_djbsort_network_sorts () =
  (* The Batcher network itself must sort any input (property test over
     the network structure). *)
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"batcher network sorts" ~count:100
       QCheck2.Gen.(array_size (return 16) (int_range 0 1000))
       (fun arr ->
         let a = Array.copy arr in
         List.iter
           (fun (i, j) ->
             if a.(i) > a.(j) then begin
               let t = a.(i) in
               a.(i) <- a.(j);
               a.(j) <- t
             end)
           (W.Djbsort.batcher 16);
         let sorted = Array.copy arr in
         Array.sort compare sorted;
         a = sorted))

let test_modexp () =
  let st = run (W.Unr_crypto.modexp ()) in
  Alcotest.(check int64) "g^e" (W.Unr_crypto.ref_modexp ())
    (mod61 (Memory.read st.Exec.mem 0x2100L 8))

let test_dh () =
  let st = run (W.Unr_crypto.dh ()) in
  let a, b = W.Unr_crypto.ref_dh () in
  Alcotest.(check int64) "public" a (mod61 (Memory.read st.Exec.mem 0x2100L 8));
  Alcotest.(check int64) "shared" b (mod61 (Memory.read st.Exec.mem 0x2108L 8))

let test_ecadd () =
  let st = run (W.Unr_crypto.ecadd ()) in
  let x, y = W.Unr_crypto.ref_ecadd () in
  Alcotest.(check int64) "x" x (mod61 (Memory.read st.Exec.mem 0x2100L 8));
  Alcotest.(check int64) "y" y (mod61 (Memory.read st.Exec.mem 0x2108L 8))

let test_field_arithmetic () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"fmul is multiplication mod p" ~count:300
       QCheck2.Gen.(pair (map Int64.of_int (int_bound max_int)) (map Int64.of_int (int_bound max_int)))
       (fun (a, b) ->
         let a = Int64.rem (Int64.abs a) W.Ckit.p61 in
         let b = Int64.rem (Int64.abs b) W.Ckit.p61 in
         (* reference via 128-bit-free check: (a*b mod p) computed by
            repeated squaring decomposition *)
         let expected =
           let rec go acc a b =
             if Int64.equal b 0L then acc
             else
               let acc =
                 if Int64.logand b 1L = 1L then Int64.rem (Int64.add acc a) W.Ckit.p61
                 else acc
               in
               go acc (Int64.rem (Int64.add a a) W.Ckit.p61) (Int64.shift_right_logical b 1)
           in
           go 0L a b
         in
         Int64.equal (W.Ckit.fmul a b) expected))

(* Every registered benchmark halts sequentially. *)
let suite_halt_tests =
  List.map
    (fun (b : W.Suite.benchmark) ->
      Alcotest.test_case (b.W.Suite.name ^ " halts") `Quick (fun () ->
          match b.W.Suite.kind with
          | W.Suite.Single f -> ignore (run (f ()))
          | W.Suite.Multi f -> Array.iter (fun p -> ignore (run p)) (f ())))
    W.Suite.all

(* The multi-class nginx program has one function per class. *)
let test_nginx_classes () =
  let p = W.Nginx_sim.make ~clients:1 ~requests:1 () in
  let classes =
    List.map (fun (f : Program.func) -> f.Program.klass) p.Program.funcs
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Program.string_of_klass k ^ " present")
        true (List.mem k classes))
    [ Program.Arch; Program.Cts; Program.Ct; Program.Unr ]

let tests =
  [
    Alcotest.test_case "chacha20 vs RFC reference" `Quick test_chacha20;
    Alcotest.test_case "chacha20 looped variant" `Quick test_chacha20_looped;
    Alcotest.test_case "salsa20 core" `Quick test_salsa20;
    Alcotest.test_case "sha256 compression" `Quick test_sha256;
    Alcotest.test_case "poly1305 MAC" `Quick test_poly1305;
    Alcotest.test_case "x25519 ladder" `Quick test_x25519;
    Alcotest.test_case "speck encryption" `Quick test_speck;
    Alcotest.test_case "xtea encryption" `Quick test_xtea;
    Alcotest.test_case "djbsort network" `Quick test_djbsort;
    Alcotest.test_case "batcher property" `Quick test_djbsort_network_sorts;
    Alcotest.test_case "modexp" `Quick test_modexp;
    Alcotest.test_case "diffie-hellman" `Quick test_dh;
    Alcotest.test_case "ec point add" `Quick test_ecadd;
    Alcotest.test_case "field arithmetic" `Quick test_field_arithmetic;
    Alcotest.test_case "nginx multi-class" `Quick test_nginx_classes;
  ]
  @ suite_halt_tests
