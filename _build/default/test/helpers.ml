(* Shared test fixtures: small hand-written programs exercising each
   pipeline feature, plus equivalence checking between the sequential
   reference machine and the out-of-order core. *)

open Protean_isa
module Exec = Protean_arch.Exec
module Memory = Protean_arch.Memory

let r = Asm.r
let i = Asm.i

(* Sum of 1..n via a loop: rax = n*(n+1)/2. *)
let sum_loop n =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (i 0);
  Asm.mov c Reg.rcx (i 1);
  Asm.label c "loop";
  Asm.add c Reg.rax (r Reg.rcx);
  Asm.add c Reg.rcx (i 1);
  Asm.cmp c Reg.rcx (i n);
  Asm.jle c "loop";
  Asm.halt c;
  Asm.finish c

(* Store an array then sum it back: exercises stores, loads, forwarding
   and cache behaviour. *)
let store_load_sum n =
  let base = 0x2000 in
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rdi (i base);
  Asm.mov c Reg.rcx (i 0);
  Asm.label c "fill";
  Asm.mov c Reg.rax (r Reg.rcx);
  Asm.mul c Reg.rax (i 3);
  Asm.store c (Asm.mbis Reg.rdi Reg.rcx 8) (r Reg.rax);
  Asm.add c Reg.rcx (i 1);
  Asm.cmp c Reg.rcx (i n);
  Asm.jlt c "fill";
  Asm.mov c Reg.rax (i 0);
  Asm.mov c Reg.rcx (i 0);
  Asm.label c "sum";
  Asm.load c Reg.rdx (Asm.mbis Reg.rdi Reg.rcx 8);
  Asm.add c Reg.rax (r Reg.rdx);
  Asm.add c Reg.rcx (i 1);
  Asm.cmp c Reg.rcx (i n);
  Asm.jlt c "sum";
  Asm.halt c;
  Asm.finish c

(* Call/ret: rax = square(7) + square(9). *)
let call_ret () =
  let c = Asm.create () in
  Asm.set_main c;
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rdi (i 7);
  Asm.call c "square";
  Asm.mov c Reg.rbx (r Reg.rax);
  Asm.mov c Reg.rdi (i 9);
  Asm.call c "square";
  Asm.add c Reg.rax (r Reg.rbx);
  Asm.halt c;
  Asm.func c ~klass:Program.Arch "square";
  Asm.mov c Reg.rax (r Reg.rdi);
  Asm.mul c Reg.rax (r Reg.rdi);
  Asm.ret c;
  Asm.finish c

(* Division, including a suppressed divide-by-zero. *)
let division () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (i 1000);
  Asm.mov c Reg.rbx (i 7);
  Asm.div c Reg.rcx Reg.rax (r Reg.rbx);
  Asm.rem c Reg.rdx Reg.rax (r Reg.rbx);
  Asm.mov c Reg.rsi (i 0);
  Asm.div c Reg.rdi Reg.rax (r Reg.rsi) (* faults: rdi = -1 *);
  Asm.add c Reg.rcx (r Reg.rdx);
  Asm.halt c;
  Asm.finish c

(* Data-dependent branches over initialized data. *)
let branchy () =
  let base = 0x3000 in
  let c = Asm.create () in
  Asm.data c ~addr:(Int64.of_int base)
    (String.init 64 (fun k -> Char.chr ((k * 37) land 0xff)));
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rdi (i base);
  Asm.mov c Reg.rcx (i 0);
  Asm.mov c Reg.rax (i 0);
  Asm.label c "loop";
  Asm.load c Reg.rdx ~w:Insn.W8 (Asm.mbi Reg.rdi Reg.rcx);
  Asm.test c Reg.rdx (i 1);
  Asm.jz c "even";
  Asm.add c Reg.rax (r Reg.rdx);
  Asm.jmp c "next";
  Asm.label c "even";
  Asm.sub c Reg.rax (r Reg.rdx);
  Asm.label c "next";
  Asm.add c Reg.rcx (i 1);
  Asm.cmp c Reg.rcx (i 64);
  Asm.jlt c "loop";
  Asm.halt c;
  Asm.finish c

(* Push/pop and stack discipline. *)
let stack_ops () =
  let c = Asm.create () in
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rax (i 11);
  Asm.mov c Reg.rbx (i 22);
  Asm.push c (r Reg.rax);
  Asm.push c (r Reg.rbx);
  Asm.pop c Reg.rcx;
  Asm.pop c Reg.rdx;
  Asm.add c Reg.rcx (r Reg.rdx);
  Asm.halt c;
  Asm.finish c

(* Pointer chase through a linked list in memory. *)
let pointer_chase n =
  let base = 0x4000 in
  let c = Asm.create () in
  (* node k at base + 16k: [next; value] *)
  let buf = Buffer.create (16 * n) in
  for k = 0 to n - 1 do
    let next = if k = n - 1 then 0 else base + (16 * (k + 1)) in
    Buffer.add_int64_le buf (Int64.of_int next);
    Buffer.add_int64_le buf (Int64.of_int (k * 5))
  done;
  Asm.data c ~addr:(Int64.of_int base) (Buffer.contents buf);
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rdi (i base);
  Asm.mov c Reg.rax (i 0);
  Asm.label c "loop";
  Asm.load c Reg.rdx (Asm.mbd Reg.rdi 8);
  Asm.add c Reg.rax (r Reg.rdx);
  Asm.load c Reg.rdi (Asm.mb Reg.rdi);
  Asm.test c Reg.rdi (r Reg.rdi);
  Asm.jnz c "loop";
  Asm.halt c;
  Asm.finish c

let all_programs =
  [
    ("sum_loop", sum_loop 20);
    ("store_load_sum", store_load_sum 16);
    ("call_ret", call_ret ());
    ("division", division ());
    ("branchy", branchy ());
    ("stack_ops", stack_ops ());
    ("pointer_chase", pointer_chase 12);
  ]

(* --- equivalence checking ------------------------------------------- *)

let run_sequential ?(overlays = []) program =
  let state = Exec.init program in
  Exec.overlay state overlays;
  Exec.run_to_halt ~fuel:1_000_000 program state;
  state

let regs_equal (a : int64 array) (b : int64 array) =
  (* Compare general-purpose registers; flags and the hidden temporary
     are microarchitectural detail. *)
  List.for_all (fun r -> Int64.equal a.(Reg.to_int r) b.(Reg.to_int r)) Reg.all_gprs

let mem_equal ?(exclude = fun _ -> false) (a : Memory.t) (b : Memory.t) =
  let ok = ref true in
  let check pn bytes other_mem =
    if not (exclude pn) then
      let other = Memory.read_string other_mem (Int64.shift_left pn 12) 4096 in
      if not (String.equal (Bytes.to_string bytes) other) then ok := false
  in
  Memory.iter_pages a (fun pn bytes -> check pn bytes b);
  Memory.iter_pages b (fun pn bytes -> check pn bytes a);
  !ok

(* Pages holding the stack: return addresses pushed by [call] legitimately
   differ between a base binary and its relaid-out ProtCC binary. *)
let stack_pages (p : Protean_isa.Program.t) pn =
  let sp_page = Int64.shift_right_logical p.Protean_isa.Program.stack_base 12 in
  Int64.equal pn sp_page || Int64.equal pn (Int64.sub sp_page 1L)

(* Check that the pipeline under [policy] produces the sequential
   machine's architectural results. *)
let check_equivalence ?(config = Protean_ooo.Config.test_core) ?spec_model
    ?(overlays = []) ~policy name program =
  let seq = run_sequential ~overlays program in
  let result =
    Protean_ooo.Pipeline.run ?spec_model ~fuel:2_000_000 config policy program
      ~overlays
  in
  Alcotest.(check bool) (name ^ ": finished") true result.Protean_ooo.Pipeline.finished;
  if not (regs_equal seq.Exec.regs result.Protean_ooo.Pipeline.regs) then begin
    List.iter
      (fun reg ->
        let a = seq.Exec.regs.(Reg.to_int reg) in
        let b = result.Protean_ooo.Pipeline.regs.(Reg.to_int reg) in
        if not (Int64.equal a b) then
          Printf.printf "  %s: seq=%Ld ooo=%Ld\n" (Reg.name reg) a b)
      Reg.all_gprs;
    Alcotest.fail (name ^ ": register state diverged")
  end;
  if not (mem_equal seq.Exec.mem result.Protean_ooo.Pipeline.mem) then
    Alcotest.fail (name ^ ": memory state diverged")
