(* Defense-mechanism unit tests: targeted micro-programs checking the
   stall/forward decisions each policy makes. *)

open Protean_isa
module Pipeline = Protean_ooo.Pipeline
module Config = Protean_ooo.Config
module Stats = Protean_ooo.Stats
module Defense = Protean_defense.Defense

let run ?(config = Config.test_core) policy p =
  Pipeline.run ~fuel:500_000 config policy p ~overlays:[]

(* A Spectre-style gadget: slow guard, transient secret load + dependent
   probe load. *)
let gadget_program () =
  let c = Asm.create () in
  Asm.data c ~addr:0x6000L ~secret:true (String.make 64 '\042');
  Asm.data c ~addr:0xA000L (String.make 4096 '\000');
  Asm.data c ~addr:0xE000L (String.make 256 '\000');
  Asm.func c ~klass:Program.Arch "main";
  (* slow condition chain *)
  Asm.mov c Reg.rbx (Asm.i 0xE000);
  Asm.load c Reg.rbx (Asm.mb Reg.rbx);
  Asm.or_ c Reg.rbx (Asm.i 1);
  Asm.test c Reg.rbx (Asm.r Reg.rbx);
  Asm.jnz c "skip";
  (* transient body *)
  Asm.mov c Reg.rdi (Asm.i 0x6000);
  Asm.load c Reg.rax (Asm.mb Reg.rdi);
  Asm.and_ c Reg.rax (Asm.i 63);
  Asm.shl c Reg.rax (Asm.i 6);
  Asm.add c Reg.rax (Asm.i 0xA000);
  Asm.load c Reg.rax (Asm.mb Reg.rax);
  Asm.label c "skip";
  Asm.mov c Reg.rax (Asm.i 0);
  Asm.halt c;
  Asm.finish c

let count_probe_fills trace =
  List.length
    (List.filter
       (function
         | Protean_ooo.Hw_trace.E_cache_fill { tag; _ } ->
             (* probe array lines have addresses 0xA000..0xAFFF *)
             let addr = Int64.shift_left tag 6 in
             Int64.compare addr 0xA000L >= 0 && Int64.compare addr 0xB000L < 0
         | _ -> false)
       (Protean_ooo.Hw_trace.all trace))

let probe_touched policy =
  let p = gadget_program () in
  let r =
    Pipeline.run ~trace:true ~fuel:500_000 Config.test_core policy p
      ~overlays:[]
  in
  count_probe_fills r.Pipeline.trace > 0

let test_unsafe_transient_leak () =
  Alcotest.(check bool) "unsafe lets the probe load execute transiently" true
    (probe_touched Protean_ooo.Policy.unsafe)

let test_defenses_block_gadget () =
  List.iter
    (fun (d : Defense.t) ->
      Alcotest.(check bool)
        (d.Defense.id ^ " blocks the transient probe access")
        false
        (probe_touched (d.Defense.make ())))
    [ Defense.stt; Defense.spt; Defense.spt_sb; Defense.prot_delay; Defense.prot_track ]

(* NDA (AccessDelay) blocks the dependent probe load even though it does
   not gate transmitter execution directly. *)
let test_nda_blocks_dependents () =
  Alcotest.(check bool) "nda blocks" false (probe_touched (Defense.nda.Defense.make ()))

(* ProtTrack's access predictor: after warmup on unprotected data, loads
   are predicted no-access and mispredictions are rare. *)
let test_predictor_learns () =
  let p = Helpers.store_load_sum 32 in
  let r = run (Defense.prot_track.Defense.make ()) p in
  let s = r.Pipeline.stats in
  Alcotest.(check bool) "lookups happened" true (s.Stats.access_pred_lookups > 0);
  Alcotest.(check bool) "misprediction rate < 30%" true
    (float_of_int s.Stats.access_pred_mispredicts
     /. float_of_int (max 1 s.Stats.access_pred_lookups)
    < 0.3)

(* Ordering: PROTEAN-Track is at least as fast as the ablated
   AccessTrack-on-ProtISA configuration, and the unselective ProtDelay is
   at least as slow as ProtDelay, on an ARCH workload. *)
let test_ablation_ordering () =
  let p = Protean_workloads.Wasm.milc ~passes:3 () in
  let cyc d = (run ~config:Config.p_core (d ()) p).Pipeline.stats.Stats.cycles in
  let track = cyc Defense.prot_track.Defense.make in
  let nopred = cyc Defense.prot_track_nopred.Defense.make in
  let delay = cyc Defense.prot_delay.Defense.make in
  let unsel = cyc Defense.prot_delay_unselective.Defense.make in
  Alcotest.(check bool) "predictor helps" true (track <= nopred);
  Alcotest.(check bool) "selective wakeup helps" true (delay <= unsel)

(* SPT's w32 fix: the fixed configuration is never slower. *)
let test_spt_w32_fix () =
  let c = Asm.create () in
  Asm.data c ~addr:0x3000L (String.make 2048 '\001');
  Asm.func c ~klass:Program.Arch "main";
  Asm.mov c Reg.rcx (Asm.i 0);
  Asm.label c "loop";
  (* 32-bit write of a public constant, then use as an index *)
  Asm.mov c ~w:Insn.W32 Reg.rax (Asm.i 64);
  Asm.add c Reg.rax (Asm.r Reg.rcx);
  Asm.and_ c Reg.rax (Asm.i 1023);
  Asm.load c Reg.rbx (Asm.mem ~index:Reg.rax ~disp:0x3000 ());
  Asm.add c Reg.rcx (Asm.i 1);
  Asm.cmp c Reg.rcx (Asm.i 512);
  Asm.jlt c "loop";
  Asm.halt c;
  let p = Asm.finish c in
  let fixed = (run (Defense.spt.Defense.make ()) p).Pipeline.stats.Stats.cycles in
  let broken =
    (run (Defense.spt_no_w32_fix.Defense.make ()) p).Pipeline.stats.Stats.cycles
  in
  Alcotest.(check bool) "fix does not hurt" true (fixed <= broken)

(* The Section IX-A3 variants: disabling the protection-tagged L1D can
   only slow PROTEAN down; a perfect shadow can only speed it up. *)
let test_l1d_variants_ordering () =
  let p = Protean_workloads.Wasm.milc ~passes:3 () in
  let cyc mode =
    let config = Config.with_prot_mem mode Config.p_core in
    (run ~config (Defense.prot_track.Defense.make ()) p).Pipeline.stats.Stats.cycles
  in
  let none = cyc Config.Prot_mem_none in
  let l1d = cyc Config.Prot_mem_l1d in
  let perfect = cyc Config.Prot_mem_perfect in
  Alcotest.(check bool) "tagged L1D beats disabled" true (l1d <= none);
  Alcotest.(check bool) "perfect shadow beats tagged L1D" true (perfect <= l1d)

(* Fig. 5's headline: a 1024-entry access predictor performs within a
   few percent of an infinitely-sized one. *)
let test_predictor_size_convergence () =
  let p = Protean_workloads.Wasm.milc ~passes:3 () in
  let cyc n =
    let d = Defense.prot_track_entries n in
    (run ~config:Config.p_core (d.Defense.make ()) p).Pipeline.stats.Stats.cycles
  in
  let finite = cyc 1024 in
  let infinite = cyc 0 in
  let ratio = float_of_int finite /. float_of_int infinite in
  Alcotest.(check bool)
    (Printf.sprintf "1024 entries within 5%% of infinite (%.3f)" ratio)
    true
    (ratio < 1.05);
  (* A tiny predictor must not be better than the infinite one. *)
  let tiny = cyc 16 in
  Alcotest.(check bool) "16 entries >= infinite" true (tiny >= infinite)

let tests =
  [
    Alcotest.test_case "predictor size convergence" `Quick
      test_predictor_size_convergence;
    Alcotest.test_case "unsafe transient leak" `Quick test_unsafe_transient_leak;
    Alcotest.test_case "defenses block the gadget" `Quick test_defenses_block_gadget;
    Alcotest.test_case "nda blocks dependents" `Quick test_nda_blocks_dependents;
    Alcotest.test_case "access predictor learns" `Quick test_predictor_learns;
    Alcotest.test_case "ablation ordering" `Quick test_ablation_ordering;
    Alcotest.test_case "spt w32 fix" `Quick test_spt_w32_fix;
    Alcotest.test_case "l1d variant ordering" `Quick test_l1d_variants_ordering;
  ]
