(* ProtCC tests: the paper's Fig. 3 example under each pass, semantic
   preservation, and the security invariants of the analyses. *)

open Protean_isa
module Protcc = Protean_protcc.Protcc
module Exec = Protean_arch.Exec

(* The paper's Fig. 3a example:
     x = *p; y = 0; if (x >= 0) y = A[x]; return y;
   with Rp=rdi, Rx=rax, Ry=rbx, A at 0x4000. *)
let fig3 klass =
  let c = Asm.create () in
  Asm.data c ~addr:0x4000L (String.init 64 (fun i -> Char.chr i));
  Asm.data c ~addr:0x5000L ~secret:true (String.make 8 '\007');
  Asm.func c ~klass "foo";
  Asm.load c Reg.rax (Asm.mb Reg.rdi) (* x = *p *);
  Asm.mov c Reg.rbx (Asm.i 0) (* y = 0 *);
  Asm.cmp c Reg.rax (Asm.i 0);
  Asm.jlt c "skip";
  Asm.and_ c Reg.rax (Asm.i 63);
  Asm.load c Reg.rbx (Asm.mbi Reg.rdi Reg.rax) (* y = A[x] (base=p) *);
  Asm.label c "skip";
  Asm.halt c;
  Asm.finish c

let count_prot p =
  Array.fold_left (fun n (i : Insn.t) -> if i.Insn.prot then n + 1 else n) 0
    p.Program.code

let instrument klass pass =
  let p = fig3 klass in
  Protcc.instrument ~pass_override:pass p

let test_arch_noop () =
  let r = instrument Program.Arch Protcc.P_arch in
  Alcotest.(check int) "no PROT prefixes" 0 (count_prot r.Protcc.program);
  Alcotest.(check int) "no insertions" 0 r.Protcc.inserted_moves

let test_ct_pass () =
  let r = instrument Program.Ct Protcc.P_ct in
  let p = r.Protcc.program in
  (* The first load's output rax is bound-to-leak only on the not-taken
     path; at the load it is neither past-leaked nor bound-to-leak on all
     paths, so it is PROT-prefixed, and an identity move appears on the
     fall-through edge where rax becomes bound-to-leak. *)
  Alcotest.(check bool) "some PROT prefixes" true (count_prot p > 0);
  Alcotest.(check bool) "identity moves inserted" true (r.Protcc.inserted_moves > 0);
  let has_id_move =
    Array.exists
      (fun (i : Insn.t) ->
        match i.Insn.op with
        | Insn.Mov (Insn.W64, d, Insn.Reg s) -> Reg.equal d s
        | _ -> false)
      p.Program.code
  in
  Alcotest.(check bool) "mov r,r present" true has_id_move

let test_unr_pass () =
  let r = instrument Program.Unr Protcc.P_unr in
  let p = r.Protcc.program in
  (* Everything except constant/stack-derived outputs is protected: the
     `mov rbx, 0` stays unprefixed; both loads are prefixed. *)
  Array.iter
    (fun (i : Insn.t) ->
      match i.Insn.op with
      | Insn.Mov (_, _, Insn.Imm _) ->
          Alcotest.(check bool) "constant mov unprefixed" false i.Insn.prot
      | Insn.Load _ ->
          Alcotest.(check bool) "loads prefixed" true i.Insn.prot
      | _ -> ())
    p.Program.code

let test_cts_entry_moves () =
  let r = instrument Program.Cts Protcc.P_cts in
  (* rdi is a sensitive (address) operand: it must be publicly typed and
     unprotected at entry via an identity move. *)
  let p = r.Protcc.program in
  let first_is_id_rdi =
    Array.exists
      (fun (i : Insn.t) ->
        match i.Insn.op with
        | Insn.Mov (Insn.W64, d, Insn.Reg s) ->
            Reg.equal d Reg.rdi && Reg.equal s Reg.rdi
        | _ -> false)
      p.Program.code
  in
  Alcotest.(check bool) "entry unprotects rdi" true first_is_id_rdi

(* Semantic preservation: every pass preserves architectural results on
   the shared test programs (PROT prefixes and identity moves are
   semantically transparent). *)
let preservation_tests =
  let passes =
    [
      ("arch", Protcc.P_arch);
      ("cts", Protcc.P_cts);
      ("ct", Protcc.P_ct);
      ("unr", Protcc.P_unr);
      ("rand", Protcc.P_rand (99, 0.3));
    ]
  in
  List.concat_map
    (fun (pname, program) ->
      List.map
        (fun (passname, pass) ->
          Alcotest.test_case
            (Printf.sprintf "%s preserved under %s" pname passname)
            `Quick
            (fun () ->
              let base = Helpers.run_sequential program in
              let r = Protcc.instrument ~pass_override:pass program in
              let inst = Helpers.run_sequential r.Protcc.program in
              Alcotest.(check bool) "registers equal" true
                (Helpers.regs_equal base.Exec.regs inst.Exec.regs);
              (* stack pages hold relayout-dependent return addresses *)
              Alcotest.(check bool) "memory equal" true
                (Helpers.mem_equal
                   ~exclude:(Helpers.stack_pages program)
                   base.Exec.mem inst.Exec.mem)))
        passes)
    Helpers.all_programs

(* Branch-target remapping: relayout moves code but control flow still
   reaches the same architectural result (covered above); additionally
   the function table must stay consistent. *)
let test_relayout_functions () =
  let p = Helpers.call_ret () in
  let r = Protcc.instrument ~pass_override:Protcc.P_ct p in
  let p' = r.Protcc.program in
  List.iter
    (fun (f : Program.func) ->
      Alcotest.(check bool)
        (f.Program.fname ^ " entry in bounds")
        true
        (f.Program.entry >= 0
        && f.Program.entry + f.Program.size <= Array.length p'.Program.code))
    p'.Program.funcs

(* Security invariant (CTS): a register holding loaded secret data that
   never flows to a transmitter must be PROT-prefixed. *)
let test_cts_protects_secrets () =
  let c = Asm.create () in
  Asm.data c ~addr:0x5000L ~secret:true (String.make 8 '\001');
  Asm.func c ~klass:Program.Cts "main";
  Asm.mov c Reg.rdi (Asm.i 0x5000);
  Asm.load c Reg.rax (Asm.mb Reg.rdi) (* secret *);
  Asm.add c Reg.rax (Asm.r Reg.rax) (* derived secret *);
  Asm.store c (Asm.mb Reg.rdi) (Asm.r Reg.rax);
  Asm.halt c;
  let r = Protcc.instrument ~pass_override:Protcc.P_cts (Asm.finish c) in
  let prot_of_load =
    Array.to_list r.Protcc.program.Program.code
    |> List.filter_map (fun (i : Insn.t) ->
           match i.Insn.op with
           | Insn.Load _ -> Some i.Insn.prot
           | Insn.Binop (Insn.Add, _, _) -> Some i.Insn.prot
           | _ -> None)
  in
  Alcotest.(check (list bool)) "secret load and add protected" [ true; true ]
    prot_of_load

(* Property: on random generated programs, every pass preserves the
   architectural result. *)
let prop_pass_preserves =
  QCheck2.Test.make ~name:"ProtCC passes preserve semantics" ~count:30
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 3))
    (fun (seed, which) ->
      let program =
        Protean_amulet.Gen.generate
          { Protean_amulet.Gen.default_spec with Protean_amulet.Gen.seed }
      in
      let pass =
        match which with
        | 0 -> Protcc.P_cts
        | 1 -> Protcc.P_ct
        | 2 -> Protcc.P_unr
        | _ -> Protcc.P_rand (seed, 0.5)
      in
      let base = Helpers.run_sequential program in
      let r = Protcc.instrument ~pass_override:pass program in
      let inst = Helpers.run_sequential r.Protcc.program in
      Helpers.regs_equal base.Exec.regs inst.Exec.regs
      && Helpers.mem_equal ~exclude:(Helpers.stack_pages program) base.Exec.mem
           inst.Exec.mem)

(* Section V-C annotations: declaring rdi public at entry lets
   ProtCC-UNR leave rdi-derived addressing unprotected, reducing the
   number of PROT prefixes. *)
let test_annotations_refine () =
  (* A function whose arithmetic derives entirely from the argument rdi:
     without the annotation ProtCC-UNR must protect every result; with
     "rdi is public" the whole chain stays unprotected. *)
  let p =
    let c = Asm.create () in
    Asm.func c ~klass:Program.Unr "foo";
    Asm.mov c Reg.rax (Asm.r Reg.rdi);
    Asm.add c Reg.rax (Asm.r Reg.rdi);
    Asm.add c Reg.rax (Asm.i 1);
    Asm.mov c Reg.rbx (Asm.r Reg.rax);
    Asm.halt c;
    Asm.finish c
  in
  let plain = Protcc.instrument ~pass_override:Protcc.P_unr p in
  let annotated =
    Protcc.instrument
      ~annotations:[ ("foo", [ Reg.rdi ]) ]
      ~pass_override:Protcc.P_unr p
  in
  Alcotest.(check bool) "fewer PROT prefixes with annotations" true
    (count_prot annotated.Protcc.program < count_prot plain.Protcc.program);
  (* Semantics unchanged. *)
  let a = Helpers.run_sequential plain.Protcc.program in
  let b = Helpers.run_sequential annotated.Protcc.program in
  Alcotest.(check bool) "same result" true
    (Helpers.regs_equal a.Exec.regs b.Exec.regs)

let tests =
  [
    Alcotest.test_case "ProtCC-ARCH is a no-op" `Quick test_arch_noop;
    Alcotest.test_case "annotations refine ProtSets" `Quick
      test_annotations_refine;
    Alcotest.test_case "ProtCC-CT on Fig.3" `Quick test_ct_pass;
    Alcotest.test_case "ProtCC-UNR on Fig.3" `Quick test_unr_pass;
    Alcotest.test_case "ProtCC-CTS entry moves" `Quick test_cts_entry_moves;
    Alcotest.test_case "relayout function table" `Quick test_relayout_functions;
    Alcotest.test_case "CTS protects secrets" `Quick test_cts_protects_secrets;
    QCheck_alcotest.to_alcotest prop_pass_preserves;
  ]
  @ preservation_tests
